// ReplicaManager unit + acceptance tests: provisioning byte-identical
// replicas, probe-driven health transitions, epoch-fenced failover (a stale
// or revoked route can never serve), online re-replication, and the S6
// telemetry closures — replicated-insert ack counters close against
// replication_factor x inserts, and the epoch gauge is monotone across a
// forced failover. Chaos-level kill-mid-batch coverage lives in
// tests/test_chaos_failover.cpp.
#include "core/replication.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/crc32.h"
#include "common/sim_clock.h"
#include "core/engine.h"
#include "dataset/synthetic.h"
#include "rdma/queue_pair.h"
#include "telemetry/metrics.h"

namespace dhnsw {
namespace {

Dataset SmallDataset() {
  return MakeSynthetic(
      {.dim = 8, .num_base = 500, .num_queries = 10, .num_clusters = 4, .seed = 77});
}

DhnswConfig SmallConfig(uint32_t factor) {
  DhnswConfig config = DhnswConfig::Defaults();
  config.meta.num_representatives = 4;
  config.compute.cache_capacity = 4;
  config.replication.factor = factor;
  return config;
}

uint32_t RegionCrc(DhnswEngine& engine, rdma::RKey rkey) {
  const rdma::MemoryRegion* region = engine.fabric().FindRegion(rkey);
  EXPECT_NE(region, nullptr);
  return region == nullptr ? 0 : Crc32c(region->host_span());
}

/// Walks `slot`'s current primary to dead via the probe loop (node crash
/// modeled with the whole-node reachability switch).
void KillPrimary(DhnswEngine& engine, uint32_t slot = 0) {
  ReplicaManager* manager = engine.replication();
  ASSERT_NE(manager, nullptr);
  const rdma::RKey primary = manager->PrimaryRoute(slot).rkey;
  auto owner = engine.fabric().OwnerOf(primary);
  ASSERT_TRUE(owner.ok());
  engine.fabric().SetNodeReachable(owner.value(), false);
  for (uint32_t i = 0; i < manager->options().dead_after_misses; ++i) manager->Tick();
}

TEST(ReplicationTest, FactorOneDisablesTheSubsystem) {
  const Dataset ds = SmallDataset();
  auto built = DhnswEngine::Build(ds.base, SmallConfig(1));
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  EXPECT_EQ(built.value().replication(), nullptr);
  EXPECT_TRUE(built.value().SearchAll(ds.queries, 5, 64).ok());
}

TEST(ReplicationTest, ProvisionClonesByteIdenticalReplicas) {
  const Dataset ds = SmallDataset();
  auto built = DhnswEngine::Build(ds.base, SmallConfig(3));
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  DhnswEngine& engine = built.value();
  ReplicaManager* manager = engine.replication();
  ASSERT_NE(manager, nullptr);

  EXPECT_EQ(manager->factor(), 3u);
  EXPECT_EQ(manager->num_slots(), 1u);
  EXPECT_EQ(manager->SlotEpoch(0), 1u);
  EXPECT_EQ(manager->AliveCount(0), 3u);

  const std::vector<ReplicaManager::Route> routes = manager->WriteRoutes(0);
  ASSERT_EQ(routes.size(), 3u);
  const uint32_t primary_crc = RegionCrc(engine, routes[0].rkey);
  for (size_t r = 1; r < routes.size(); ++r) {
    EXPECT_EQ(RegionCrc(engine, routes[r].rkey), primary_crc) << "replica " << r;
  }

  const std::string topology = manager->TopologyText();
  EXPECT_NE(topology.find("replication factor 3"), std::string::npos);
  EXPECT_NE(topology.find("replica 2"), std::string::npos);
  EXPECT_NE(topology.find(" *"), std::string::npos);
}

TEST(ReplicationTest, ProbeLoopWalksAliveSuspectedDeadAndRecovers) {
  const Dataset ds = SmallDataset();
  auto built = DhnswEngine::Build(ds.base, SmallConfig(2));
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  DhnswEngine& engine = built.value();
  ReplicaManager* manager = engine.replication();

  // Take the SECONDARY down: health walks without triggering a failover.
  const rdma::RKey secondary = manager->WriteRoutes(0)[1].rkey;
  auto owner = engine.fabric().OwnerOf(secondary);
  ASSERT_TRUE(owner.ok());

  engine.fabric().SetNodeReachable(owner.value(), false);
  EXPECT_EQ(manager->Tick(), 0u);  // one miss: still alive
  EXPECT_EQ(manager->health(0, 1), ReplicaHealth::kAlive);
  EXPECT_EQ(manager->Tick(), 1u);  // second miss: suspected
  EXPECT_EQ(manager->health(0, 1), ReplicaHealth::kSuspected);

  // A suspected replica that answers again recovers fully.
  engine.fabric().SetNodeReachable(owner.value(), true);
  EXPECT_EQ(manager->Tick(), 1u);
  EXPECT_EQ(manager->health(0, 1), ReplicaHealth::kAlive);
  EXPECT_EQ(manager->SlotEpoch(0), 1u) << "no failover for a secondary blip";

  // Sustained unreachability kills it.
  engine.fabric().SetNodeReachable(owner.value(), false);
  for (uint32_t i = 0; i < manager->options().dead_after_misses; ++i) manager->Tick();
  EXPECT_EQ(manager->health(0, 1), ReplicaHealth::kDead);
  EXPECT_TRUE(engine.fabric().IsRegionRevoked(secondary));
  EXPECT_EQ(manager->PrimaryRoute(0).replica, 0u) << "primary unaffected";
}

TEST(ReplicationTest, PrimaryDeathFailsOverFencedAndServiceContinues) {
  const Dataset ds = SmallDataset();
  auto built = DhnswEngine::Build(ds.base, SmallConfig(2));
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  DhnswEngine& engine = built.value();
  ReplicaManager* manager = engine.replication();

  auto before = engine.SearchAll(ds.queries, 5, 64);
  ASSERT_TRUE(before.ok());
  const rdma::RKey old_primary = manager->PrimaryRoute(0).rkey;

  KillPrimary(engine);
  EXPECT_EQ(manager->health(0, 0), ReplicaHealth::kDead);
  EXPECT_EQ(manager->PrimaryRoute(0).replica, 1u);
  EXPECT_EQ(manager->SlotEpoch(0), 2u);
  const rdma::RKey new_primary = manager->PrimaryRoute(0).rkey;
  EXPECT_NE(new_primary, old_primary);

  // --- fencing acceptance ---
  SimClock clock;
  rdma::QueuePair qp(&engine.fabric(), &clock);
  std::vector<uint8_t> probe(8);
  // A compute instance still stamping the pre-failover epoch is rejected.
  const Status stale = qp.Read(new_primary, 0, probe, /*expected_epoch=*/1);
  EXPECT_EQ(stale.code(), StatusCode::kUnavailable);
  EXPECT_NE(stale.message().find("fenced"), std::string::npos) << stale.ToString();
  // The dead primary's rkey is revoked: even UNFENCED ops are refused, so a
  // stale returning node can neither serve reads nor absorb writes.
  EXPECT_EQ(qp.Read(old_primary, 0, probe, 0).code(), StatusCode::kUnavailable);
  // The current epoch admits.
  EXPECT_TRUE(qp.Read(new_primary, 0, probe, 2).ok());

  // Compute instances re-resolve routes transparently: same answers.
  engine.compute(0).InvalidateCache();
  auto after = engine.SearchAll(ds.queries, 5, 64);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  ASSERT_EQ(after.value().results.size(), before.value().results.size());
  for (size_t qi = 0; qi < after.value().results.size(); ++qi) {
    ASSERT_EQ(after.value().results[qi].size(), before.value().results[qi].size()) << qi;
    for (size_t j = 0; j < after.value().results[qi].size(); ++j) {
      EXPECT_EQ(after.value().results[qi][j].id, before.value().results[qi][j].id);
    }
  }
}

TEST(ReplicationTest, RereplicateRestoresFactorAtBumpedEpoch) {
  const Dataset ds = SmallDataset();
  auto built = DhnswEngine::Build(ds.base, SmallConfig(2));
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  DhnswEngine& engine = built.value();
  ReplicaManager* manager = engine.replication();
  telemetry::Counter* rereps =
      telemetry::DefaultRegistry().GetCounter("dhnsw_replication_rereplications_total");
  telemetry::Counter* copied =
      telemetry::DefaultRegistry().GetCounter("dhnsw_replication_copied_bytes_total");

  KillPrimary(engine);
  ASSERT_EQ(manager->AliveCount(0), 1u);
  const uint64_t rereps_before = rereps->value();
  const uint64_t copied_before = copied->value();

  ASSERT_TRUE(manager->RereplicateAll().ok());
  EXPECT_EQ(manager->AliveCount(0), 2u);
  EXPECT_EQ(manager->SlotEpoch(0), 3u);
  EXPECT_EQ(rereps->value() - rereps_before, 1u);
  EXPECT_GT(copied->value(), copied_before);

  // The streamed copy is byte-identical to the surviving source.
  const std::vector<ReplicaManager::Route> routes = manager->WriteRoutes(0);
  ASSERT_EQ(routes.size(), 2u);
  EXPECT_EQ(RegionCrc(engine, routes[0].rkey), RegionCrc(engine, routes[1].rkey));

  // Already at factor: a second call is a no-op.
  ASSERT_TRUE(manager->RereplicateAll().ok());
  EXPECT_EQ(manager->SlotEpoch(0), 3u);

  engine.compute(0).InvalidateCache();
  EXPECT_TRUE(engine.SearchAll(ds.queries, 5, 64).ok());
}

// --- S6: telemetry closure ---

TEST(ReplicationTest, InsertAckCountersCloseAgainstFactorTimesInserts) {
  const Dataset ds = SmallDataset();
  const uint32_t kFactor = 2;
  auto built = DhnswEngine::Build(ds.base, SmallConfig(kFactor));
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  DhnswEngine& engine = built.value();
  telemetry::Counter* insert_acks =
      telemetry::DefaultRegistry().GetCounter("dhnsw_replication_insert_acks_total");
  telemetry::Counter* faa_acks =
      telemetry::DefaultRegistry().GetCounter("dhnsw_replication_faa_acks_total");

  const uint64_t insert_acks_before = insert_acks->value();
  const uint64_t faa_acks_before = faa_acks->value();

  uint64_t inserted = 0;
  for (size_t i = 0; i < 6; ++i) {
    auto id = engine.Insert(ds.queries[i]);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ++inserted;
  }

  // Closure: every durable insert was CRC-acked by every replica — exactly
  // factor x inserts record-write acks, and (single inserts allocate one
  // overflow cell each) factor x inserts allocation acks.
  EXPECT_EQ(insert_acks->value() - insert_acks_before, kFactor * inserted);
  EXPECT_EQ(faa_acks->value() - faa_acks_before, kFactor * inserted);

  // The fan-out kept the replica sets byte-identical (records AND counters).
  ReplicaManager* manager = engine.replication();
  const std::vector<ReplicaManager::Route> routes = manager->WriteRoutes(0);
  ASSERT_EQ(routes.size(), 2u);
  EXPECT_EQ(RegionCrc(engine, routes[0].rkey), RegionCrc(engine, routes[1].rkey));

  // The inserted vectors are findable — and stay findable after a failover
  // flips every search onto the replicated copy.
  engine.compute(0).InvalidateCache();
  auto before = engine.SearchAll(ds.queries, 5, 64);
  ASSERT_TRUE(before.ok());
  KillPrimary(engine);
  engine.compute(0).InvalidateCache();
  auto after = engine.SearchAll(ds.queries, 5, 64);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  for (size_t qi = 0; qi < ds.queries.size(); ++qi) {
    ASSERT_FALSE(after.value().results[qi].empty());
    // Query qi was inserted verbatim for qi < 6: its own id must surface.
    if (qi < 6) {
      EXPECT_EQ(after.value().results[qi][0].id, before.value().results[qi][0].id) << qi;
    }
  }
}

TEST(ReplicationTest, EpochGaugeIsMonotoneAcrossForcedFailover) {
  const Dataset ds = SmallDataset();
  auto built = DhnswEngine::Build(ds.base, SmallConfig(2));
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  DhnswEngine& engine = built.value();
  telemetry::Gauge* epoch = telemetry::DefaultRegistry().GetGauge("dhnsw_replication_epoch");

  const int64_t provisioned = epoch->value();
  EXPECT_EQ(provisioned, 1);

  KillPrimary(engine);
  const int64_t failed_over = epoch->value();
  EXPECT_GT(failed_over, provisioned);

  ASSERT_TRUE(engine.replication()->RereplicateAll().ok());
  const int64_t readmitted = epoch->value();
  EXPECT_GT(readmitted, failed_over);

  // Factor/min-alive gauges reflect the restored deployment.
  EXPECT_EQ(telemetry::DefaultRegistry().GetGauge("dhnsw_replication_factor")->value(), 2);
  EXPECT_EQ(
      telemetry::DefaultRegistry().GetGauge("dhnsw_replication_min_alive_replicas")->value(),
      2);
}

}  // namespace
}  // namespace dhnsw
