#include "dataset/dataset.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>

#include "dataset/ground_truth.h"
#include "dataset/synthetic.h"
#include "dataset/vecs_io.h"
#include "index/flat_index.h"

namespace dhnsw {
namespace {

TEST(VectorSetTest, AppendAndAccess) {
  VectorSet vs(3);
  vs.Append(std::vector<float>{1, 2, 3});
  vs.Append(std::vector<float>{4, 5, 6});
  EXPECT_EQ(vs.size(), 2u);
  EXPECT_FLOAT_EQ(vs[1][2], 6.0f);
  EXPECT_EQ(vs.flat().size(), 6u);
}

TEST(VectorSetTest, ConstructFromFlatData) {
  VectorSet vs(2, {1, 2, 3, 4});
  EXPECT_EQ(vs.size(), 2u);
  EXPECT_FLOAT_EQ(vs[0][1], 2.0f);
}

TEST(SyntheticTest, ShapesMatchSpec) {
  const Dataset ds = MakeSynthetic({.dim = 10, .num_base = 500, .num_queries = 20,
                                    .num_clusters = 5, .seed = 1});
  EXPECT_EQ(ds.base.dim(), 10u);
  EXPECT_EQ(ds.base.size(), 500u);
  EXPECT_EQ(ds.queries.size(), 20u);
  EXPECT_TRUE(ds.ground_truth.empty());
}

TEST(SyntheticTest, DeterministicForSeed) {
  const SyntheticSpec spec{.dim = 8, .num_base = 100, .num_queries = 10,
                           .num_clusters = 4, .seed = 99};
  const Dataset a = MakeSynthetic(spec);
  const Dataset b = MakeSynthetic(spec);
  for (size_t i = 0; i < a.base.size(); ++i) {
    for (uint32_t d = 0; d < a.base.dim(); ++d) {
      ASSERT_FLOAT_EQ(a.base[i][d], b.base[i][d]);
    }
  }
}

TEST(SyntheticTest, DifferentSeedsDiffer) {
  SyntheticSpec spec{.dim = 8, .num_base = 50, .num_queries = 5, .num_clusters = 4};
  spec.seed = 1;
  const Dataset a = MakeSynthetic(spec);
  spec.seed = 2;
  const Dataset b = MakeSynthetic(spec);
  bool any_diff = false;
  for (uint32_t d = 0; d < 8; ++d) any_diff |= (a.base[0][d] != b.base[0][d]);
  EXPECT_TRUE(any_diff);
}

TEST(SyntheticTest, SiftLikeIs128d) {
  const Dataset ds = MakeSiftLike(200, 10);
  EXPECT_EQ(ds.base.dim(), 128u);
  EXPECT_EQ(ds.name, "sift-like");
}

TEST(SyntheticTest, GistLikeIs960d) {
  const Dataset ds = MakeGistLike(50, 5);
  EXPECT_EQ(ds.base.dim(), 960u);
  EXPECT_EQ(ds.name, "gist-like");
}

TEST(SyntheticTest, ClusteredDataIsActuallyClustered) {
  // With tight clusters, a point's nearest neighbors should overwhelmingly
  // come from its own cluster: mean NN distance << typical inter-center gap.
  const Dataset ds = MakeSynthetic({.dim = 16, .num_base = 1000, .num_queries = 1,
                                    .num_clusters = 10, .box_half_width = 100.0f,
                                    .cluster_stddev = 1.0f, .seed = 3});
  FlatIndex flat(16);
  flat.AddBatch(ds.base.flat());
  double nn_sum = 0;
  for (size_t i = 0; i < 50; ++i) {
    const auto top = flat.Search(ds.base[i], 2);  // [0] = itself
    nn_sum += std::sqrt(top[1].distance);
  }
  // Intra-cluster NN distance ~ stddev * sqrt(dim) ~ 4; inter-center ~ 100s.
  EXPECT_LT(nn_sum / 50.0, 20.0);
}

TEST(GroundTruthTest, MatchesFlatIndex) {
  Dataset ds = MakeSynthetic({.dim = 8, .num_base = 300, .num_queries = 10,
                              .num_clusters = 3, .seed = 4});
  ComputeGroundTruth(&ds, 5);
  ASSERT_EQ(ds.gt_k, 5u);
  ASSERT_EQ(ds.ground_truth.size(), 50u);

  FlatIndex flat(8);
  flat.AddBatch(ds.base.flat());
  for (size_t qi = 0; qi < ds.queries.size(); ++qi) {
    const auto want = flat.Search(ds.queries[qi], 5);
    const auto got = ds.GroundTruthFor(qi);
    for (size_t j = 0; j < 5; ++j) EXPECT_EQ(got[j], want[j].id);
  }
}

TEST(GroundTruthTest, ParallelMatchesSerial) {
  Dataset a = MakeSynthetic({.dim = 8, .num_base = 200, .num_queries = 8,
                             .num_clusters = 3, .seed = 5});
  Dataset b = a;
  ComputeGroundTruth(&a, 4, Metric::kL2, 1);
  ComputeGroundTruth(&b, 4, Metric::kL2, 4);
  EXPECT_EQ(a.ground_truth, b.ground_truth);
}

TEST(RecallTest, PerfectRecallIsOne) {
  std::vector<Scored> found = {{0.1f, 1}, {0.2f, 2}, {0.3f, 3}};
  std::vector<uint32_t> exact = {1, 2, 3};
  EXPECT_DOUBLE_EQ(RecallAtK(found, exact, 3), 1.0);
}

TEST(RecallTest, OrderInsensitiveWithinTopK) {
  std::vector<Scored> found = {{0.1f, 3}, {0.2f, 1}, {0.3f, 2}};
  std::vector<uint32_t> exact = {1, 2, 3};
  EXPECT_DOUBLE_EQ(RecallAtK(found, exact, 3), 1.0);
}

TEST(RecallTest, PartialRecall) {
  std::vector<Scored> found = {{0.1f, 1}, {0.2f, 9}, {0.3f, 8}};
  std::vector<uint32_t> exact = {1, 2, 3};
  EXPECT_NEAR(RecallAtK(found, exact, 3), 1.0 / 3.0, 1e-12);
}

TEST(RecallTest, ShortResultListCountsMissing) {
  std::vector<Scored> found = {{0.1f, 1}};
  std::vector<uint32_t> exact = {1, 2};
  EXPECT_DOUBLE_EQ(RecallAtK(found, exact, 2), 0.5);
}

TEST(VecsIoTest, FvecsRoundTrip) {
  VectorSet vs(4);
  vs.Append(std::vector<float>{1.5f, -2.0f, 3.25f, 0.0f});
  vs.Append(std::vector<float>{9.0f, 8.0f, 7.0f, 6.0f});
  const std::string path = ::testing::TempDir() + "/roundtrip.fvecs";
  ASSERT_TRUE(WriteFvecs(path, vs).ok());

  auto back = ReadFvecs(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value().dim(), 4u);
  ASSERT_EQ(back.value().size(), 2u);
  EXPECT_FLOAT_EQ(back.value()[0][2], 3.25f);
  EXPECT_FLOAT_EQ(back.value()[1][3], 6.0f);
  std::remove(path.c_str());
}

TEST(VecsIoTest, FvecsMaxRowsLimits) {
  VectorSet vs(2);
  for (int i = 0; i < 5; ++i) vs.Append(std::vector<float>{float(i), float(i)});
  const std::string path = ::testing::TempDir() + "/limit.fvecs";
  ASSERT_TRUE(WriteFvecs(path, vs).ok());
  auto back = ReadFvecs(path, 3);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().size(), 3u);
  std::remove(path.c_str());
}

TEST(VecsIoTest, IvecsRoundTrip) {
  IvecsData data;
  data.row_dim = 3;
  data.values = {1, 2, 3, 10, 20, 30};
  const std::string path = ::testing::TempDir() + "/gt.ivecs";
  ASSERT_TRUE(WriteIvecs(path, data).ok());
  auto back = ReadIvecs(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().row_dim, 3u);
  EXPECT_EQ(back.value().values, data.values);
  std::remove(path.c_str());
}

TEST(VecsIoTest, MissingFileIsIoError) {
  EXPECT_EQ(ReadFvecs("/nonexistent/nope.fvecs").status().code(), StatusCode::kIoError);
}

TEST(VecsIoTest, TruncatedFileIsCorruption) {
  const std::string path = ::testing::TempDir() + "/trunc.fvecs";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const int32_t dim = 8;
  std::fwrite(&dim, sizeof dim, 1, f);
  const float partial[3] = {1, 2, 3};  // claims 8, writes 3
  std::fwrite(partial, sizeof(float), 3, f);
  std::fclose(f);
  EXPECT_EQ(ReadFvecs(path).status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(VecsIoTest, ImplausibleDimensionIsCorruption) {
  const std::string path = ::testing::TempDir() + "/baddim.fvecs";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const int32_t dim = -5;
  std::fwrite(&dim, sizeof dim, 1, f);
  std::fclose(f);
  EXPECT_EQ(ReadFvecs(path).status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(VecsIoTest, BvecsWidensToFloat) {
  const std::string path = ::testing::TempDir() + "/bytes.bvecs";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const int32_t dim = 4;
  const uint8_t row[4] = {0, 1, 128, 255};
  std::fwrite(&dim, sizeof dim, 1, f);
  std::fwrite(row, 1, 4, f);
  std::fclose(f);
  auto back = ReadBvecs(path);
  ASSERT_TRUE(back.ok());
  EXPECT_FLOAT_EQ(back.value()[0][0], 0.0f);
  EXPECT_FLOAT_EQ(back.value()[0][3], 255.0f);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dhnsw
