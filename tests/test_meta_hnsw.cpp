#include "core/meta_hnsw.h"

#include <gtest/gtest.h>

#include <set>

#include "dataset/synthetic.h"
#include "index/flat_index.h"
#include "serialize/cluster_blob.h"

namespace dhnsw {
namespace {

Dataset SmallClustered() {
  return MakeSynthetic({.dim = 8, .num_base = 2000, .num_queries = 30,
                        .num_clusters = 12, .seed = 77});
}

TEST(MetaHnswTest, BuildSamplesRequestedRepresentatives) {
  const Dataset ds = SmallClustered();
  MetaHnswOptions options;
  options.num_representatives = 50;
  auto meta = MetaHnsw::Build(ds.base, options);
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta.value().num_partitions(), 50u);
  EXPECT_EQ(meta.value().dim(), 8u);
}

TEST(MetaHnswTest, RepresentativesClampedToBaseSize) {
  const Dataset ds = MakeSynthetic({.dim = 4, .num_base = 20, .num_queries = 1,
                                    .num_clusters = 2, .seed = 1});
  MetaHnswOptions options;
  options.num_representatives = 500;
  auto meta = MetaHnsw::Build(ds.base, options);
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta.value().num_partitions(), 20u);
}

TEST(MetaHnswTest, EmptyBaseFails) {
  VectorSet empty(4);
  EXPECT_FALSE(MetaHnsw::Build(empty, MetaHnswOptions{}).ok());
}

TEST(MetaHnswTest, AtMostThreeLayers) {
  const Dataset ds = SmallClustered();
  MetaHnswOptions options;
  options.num_representatives = 500;
  auto meta = MetaHnsw::Build(ds.base, options);
  ASSERT_TRUE(meta.ok());
  // Paper §3.1: meta-HNSW is a three-layer HNSW (levels 0..2).
  EXPECT_LE(meta.value().index().max_level_in_graph(), 2);
}

TEST(MetaHnswTest, RepresentativeIdsAreDistinctBaseRows) {
  const Dataset ds = SmallClustered();
  MetaHnswOptions options;
  options.num_representatives = 100;
  auto meta = MetaHnsw::Build(ds.base, options);
  ASSERT_TRUE(meta.ok());
  std::set<uint32_t> ids;
  for (uint32_t p = 0; p < meta.value().num_partitions(); ++p) {
    const uint32_t gid = meta.value().representative_global_id(p);
    EXPECT_LT(gid, ds.base.size());
    ids.insert(gid);
  }
  EXPECT_EQ(ids.size(), 100u);
}

TEST(MetaHnswTest, RepresentativeVectorMatchesBaseRow) {
  const Dataset ds = SmallClustered();
  MetaHnswOptions options;
  options.num_representatives = 40;
  auto meta = MetaHnsw::Build(ds.base, options);
  ASSERT_TRUE(meta.ok());
  for (uint32_t p = 0; p < 40; ++p) {
    const uint32_t gid = meta.value().representative_global_id(p);
    const auto stored = meta.value().index().vector(p);
    const auto base_row = ds.base[gid];
    for (uint32_t d = 0; d < 8; ++d) ASSERT_FLOAT_EQ(stored[d], base_row[d]);
  }
}

TEST(MetaHnswTest, RouteOneFindsNearestRepresentativeMostly) {
  const Dataset ds = SmallClustered();
  MetaHnswOptions options;
  options.num_representatives = 60;
  options.ef_route = 40;
  auto built = MetaHnsw::Build(ds.base, options);
  ASSERT_TRUE(built.ok());
  const MetaHnsw& meta = built.value();

  // Exact nearest representative via brute force.
  FlatIndex flat(8);
  for (uint32_t p = 0; p < meta.num_partitions(); ++p) {
    flat.Add(meta.index().vector(p));
  }
  int agree = 0;
  const int n = 100;
  for (int i = 0; i < n; ++i) {
    const uint32_t routed = meta.RouteOne(ds.base[i]);
    const uint32_t exact = flat.Search(ds.base[i], 1)[0].id;
    agree += (routed == exact);
  }
  EXPECT_GT(agree, 90);  // HNSW routing on 60 nodes is near-exact
}

TEST(MetaHnswTest, RouteManyReturnsDistinctOrderedPartitions) {
  const Dataset ds = SmallClustered();
  MetaHnswOptions options;
  options.num_representatives = 60;
  auto built = MetaHnsw::Build(ds.base, options);
  ASSERT_TRUE(built.ok());

  const auto routed = built.value().RouteMany(ds.queries[0], 5);
  ASSERT_EQ(routed.size(), 5u);
  std::set<uint32_t> distinct(routed.begin(), routed.end());
  EXPECT_EQ(distinct.size(), 5u);
  // Best-first: distances to representatives must be non-decreasing.
  const auto& index = built.value().index();
  float prev = -1.0f;
  for (uint32_t p : routed) {
    const float d = L2Sq(index.vector(p), ds.queries[0]);
    EXPECT_GE(d, prev);
    prev = d;
  }
}

TEST(MetaHnswTest, RouteManyClampsToPartitionCount) {
  const Dataset ds = MakeSynthetic({.dim = 4, .num_base = 30, .num_queries = 2,
                                    .num_clusters = 2, .seed = 9});
  MetaHnswOptions options;
  options.num_representatives = 10;
  auto built = MetaHnsw::Build(ds.base, options);
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built.value().RouteMany(ds.queries[0], 50).size(), 10u);
}

TEST(MetaHnswTest, BlobRoundTripRoutesIdentically) {
  const Dataset ds = SmallClustered();
  MetaHnswOptions options;
  options.num_representatives = 80;
  auto built = MetaHnsw::Build(ds.base, options);
  ASSERT_TRUE(built.ok());

  const std::vector<uint8_t> blob = built.value().ToBlob();
  auto restored = MetaHnsw::FromBlob(blob);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  restored.value().set_ef_route(built.value().ef_route());

  EXPECT_EQ(restored.value().num_partitions(), 80u);
  for (size_t qi = 0; qi < ds.queries.size(); ++qi) {
    EXPECT_EQ(built.value().RouteMany(ds.queries[qi], 3),
              restored.value().RouteMany(ds.queries[qi], 3));
  }
}

TEST(MetaHnswTest, FromBlobRejectsSubHnswBlob) {
  // A regular cluster blob (partition id != sentinel) must be rejected.
  HnswIndex index(4, {.M = 4, .ef_construction = 20});
  index.Add(std::vector<float>{1, 2, 3, 4});
  Cluster c(3, std::move(index), {0});
  EXPECT_FALSE(MetaHnsw::FromBlob(EncodeCluster(c)).ok());
}

TEST(MetaHnswTest, FootprintIsLightweight) {
  // Paper: meta-HNSW costs 0.373 MB on SIFT1M (500 reps x 128-d). Our blob
  // for the same shape should be the same order of magnitude.
  const Dataset ds = MakeSiftLike(5000, 1);
  MetaHnswOptions options;
  options.num_representatives = 500;
  auto built = MetaHnsw::Build(ds.base, options);
  ASSERT_TRUE(built.ok());
  const size_t bytes = built.value().ToBlob().size();
  EXPECT_GT(bytes, 250u * 1024);   // vectors alone are 500*128*4 = 256 KB
  EXPECT_LT(bytes, 1024u * 1024);  // well under 1 MB
}

}  // namespace
}  // namespace dhnsw
