#include "core/meta_hnsw.h"

#include <gtest/gtest.h>

#include <set>

#include "dataset/synthetic.h"
#include "index/flat_index.h"
#include "serialize/cluster_blob.h"

namespace dhnsw {
namespace {

Dataset SmallClustered() {
  return MakeSynthetic({.dim = 8, .num_base = 2000, .num_queries = 30,
                        .num_clusters = 12, .seed = 77});
}

TEST(MetaHnswTest, BuildSamplesRequestedRepresentatives) {
  const Dataset ds = SmallClustered();
  MetaHnswOptions options;
  options.num_representatives = 50;
  auto meta = MetaHnsw::Build(ds.base, options);
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta.value().num_partitions(), 50u);
  EXPECT_EQ(meta.value().dim(), 8u);
}

TEST(MetaHnswTest, RepresentativesClampedToBaseSize) {
  const Dataset ds = MakeSynthetic({.dim = 4, .num_base = 20, .num_queries = 1,
                                    .num_clusters = 2, .seed = 1});
  MetaHnswOptions options;
  options.num_representatives = 500;
  auto meta = MetaHnsw::Build(ds.base, options);
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta.value().num_partitions(), 20u);
}

TEST(MetaHnswTest, EmptyBaseFails) {
  VectorSet empty(4);
  EXPECT_FALSE(MetaHnsw::Build(empty, MetaHnswOptions{}).ok());
}

TEST(MetaHnswTest, AtMostThreeLayers) {
  const Dataset ds = SmallClustered();
  MetaHnswOptions options;
  options.num_representatives = 500;
  auto meta = MetaHnsw::Build(ds.base, options);
  ASSERT_TRUE(meta.ok());
  // Paper §3.1: meta-HNSW is a three-layer HNSW (levels 0..2).
  EXPECT_LE(meta.value().index().max_level_in_graph(), 2);
}

TEST(MetaHnswTest, RepresentativeIdsAreDistinctBaseRows) {
  const Dataset ds = SmallClustered();
  MetaHnswOptions options;
  options.num_representatives = 100;
  auto meta = MetaHnsw::Build(ds.base, options);
  ASSERT_TRUE(meta.ok());
  std::set<uint32_t> ids;
  for (uint32_t p = 0; p < meta.value().num_partitions(); ++p) {
    const uint32_t gid = meta.value().representative_global_id(p);
    EXPECT_LT(gid, ds.base.size());
    ids.insert(gid);
  }
  EXPECT_EQ(ids.size(), 100u);
}

TEST(MetaHnswTest, RepresentativeVectorMatchesBaseRow) {
  const Dataset ds = SmallClustered();
  MetaHnswOptions options;
  options.num_representatives = 40;
  auto meta = MetaHnsw::Build(ds.base, options);
  ASSERT_TRUE(meta.ok());
  for (uint32_t p = 0; p < 40; ++p) {
    const uint32_t gid = meta.value().representative_global_id(p);
    const auto stored = meta.value().index().vector(p);
    const auto base_row = ds.base[gid];
    for (uint32_t d = 0; d < 8; ++d) ASSERT_FLOAT_EQ(stored[d], base_row[d]);
  }
}

TEST(MetaHnswTest, RouteOneFindsNearestRepresentativeMostly) {
  const Dataset ds = SmallClustered();
  MetaHnswOptions options;
  options.num_representatives = 60;
  options.ef_route = 40;
  auto built = MetaHnsw::Build(ds.base, options);
  ASSERT_TRUE(built.ok());
  const MetaHnsw& meta = built.value();

  // Exact nearest representative via brute force.
  FlatIndex flat(8);
  for (uint32_t p = 0; p < meta.num_partitions(); ++p) {
    flat.Add(meta.index().vector(p));
  }
  int agree = 0;
  const int n = 100;
  for (int i = 0; i < n; ++i) {
    const uint32_t routed = meta.RouteOne(ds.base[i]);
    const uint32_t exact = flat.Search(ds.base[i], 1)[0].id;
    agree += (routed == exact);
  }
  EXPECT_GT(agree, 90);  // HNSW routing on 60 nodes is near-exact
}

TEST(MetaHnswTest, RouteManyReturnsDistinctOrderedPartitions) {
  const Dataset ds = SmallClustered();
  MetaHnswOptions options;
  options.num_representatives = 60;
  auto built = MetaHnsw::Build(ds.base, options);
  ASSERT_TRUE(built.ok());

  const auto routed = built.value().RouteMany(ds.queries[0], 5);
  ASSERT_EQ(routed.size(), 5u);
  std::set<uint32_t> distinct(routed.begin(), routed.end());
  EXPECT_EQ(distinct.size(), 5u);
  // Best-first: distances to representatives must be non-decreasing.
  const auto& index = built.value().index();
  float prev = -1.0f;
  for (uint32_t p : routed) {
    const float d = L2Sq(index.vector(p), ds.queries[0]);
    EXPECT_GE(d, prev);
    prev = d;
  }
}

TEST(MetaHnswTest, RouteManyClampsToPartitionCount) {
  const Dataset ds = MakeSynthetic({.dim = 4, .num_base = 30, .num_queries = 2,
                                    .num_clusters = 2, .seed = 9});
  MetaHnswOptions options;
  options.num_representatives = 10;
  auto built = MetaHnsw::Build(ds.base, options);
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built.value().RouteMany(ds.queries[0], 50).size(), 10u);
}

TEST(MetaHnswTest, BlobRoundTripRoutesIdentically) {
  const Dataset ds = SmallClustered();
  MetaHnswOptions options;
  options.num_representatives = 80;
  auto built = MetaHnsw::Build(ds.base, options);
  ASSERT_TRUE(built.ok());

  const std::vector<uint8_t> blob = built.value().ToBlob();
  auto restored = MetaHnsw::FromBlob(blob);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  restored.value().set_ef_route(built.value().ef_route());

  EXPECT_EQ(restored.value().num_partitions(), 80u);
  for (size_t qi = 0; qi < ds.queries.size(); ++qi) {
    EXPECT_EQ(built.value().RouteMany(ds.queries[qi], 3),
              restored.value().RouteMany(ds.queries[qi], 3));
  }
}

// Regression (empty-cluster handling): with 200 duplicate rows and a few far
// outliers, the k-means seeds nearly always land on duplicates, every point
// ties onto centroid 0, and clusters 1..r-1 go empty. The old code kept the
// stale duplicate centroids forever, so the medoid snap returned r copies of
// the duplicate point and the outliers never got a partition. The fix
// re-seeds each empty cluster from the farthest point of the largest
// cluster, which peels the outliers into their own partitions.
TEST(MetaHnswTest, KmeansReseedsEmptyClustersFromLargestCluster) {
  const uint32_t dim = 4;
  const size_t dup = 200;
  VectorSet base(dim);
  for (size_t i = 0; i < dup; ++i) {
    base.Append(std::vector<float>{0.f, 0.f, 0.f, 0.f});
  }
  base.Append(std::vector<float>{100.f, 0.f, 0.f, 0.f});
  base.Append(std::vector<float>{0.f, 100.f, 0.f, 0.f});
  base.Append(std::vector<float>{0.f, 0.f, 100.f, 0.f});
  base.Append(std::vector<float>{0.f, 0.f, 0.f, 100.f});

  MetaHnswOptions options;
  options.num_representatives = 4;
  options.selection = RepresentativeSelection::kKmeans;
  options.kmeans_iterations = 8;
  auto built = MetaHnsw::Build(base, options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();

  int outlier_reps = 0;
  for (uint32_t p = 0; p < built.value().num_partitions(); ++p) {
    if (built.value().representative_global_id(p) >= dup) ++outlier_reps;
  }
  // At least 3 of the 4 partitions must be anchored on outliers (one
  // partition keeps the duplicate mass).
  EXPECT_GE(outlier_reps, 3);
}

TEST(MetaHnswTest, KmeansRepresentativesIdenticalAcrossThreadCounts) {
  const Dataset ds = SmallClustered();
  auto reps_with = [&](uint32_t threads) {
    MetaHnswOptions options;
    options.num_representatives = 24;
    options.selection = RepresentativeSelection::kKmeans;
    options.build_threads = threads;
    auto built = MetaHnsw::Build(ds.base, options);
    EXPECT_TRUE(built.ok());
    std::vector<uint32_t> ids;
    for (uint32_t p = 0; p < built.value().num_partitions(); ++p) {
      ids.push_back(built.value().representative_global_id(p));
    }
    return ids;
  };
  const auto r1 = reps_with(1);
  EXPECT_EQ(r1, reps_with(2));
  EXPECT_EQ(r1, reps_with(8));
}

TEST(MetaHnswTest, FromBlobRejectsSubHnswBlob) {
  // A regular cluster blob (partition id != sentinel) must be rejected.
  HnswIndex index(4, {.M = 4, .ef_construction = 20});
  index.Add(std::vector<float>{1, 2, 3, 4});
  Cluster c(3, std::move(index), {0});
  EXPECT_FALSE(MetaHnsw::FromBlob(EncodeCluster(c)).ok());
}

TEST(MetaHnswTest, FootprintIsLightweight) {
  // Paper: meta-HNSW costs 0.373 MB on SIFT1M (500 reps x 128-d). Our blob
  // for the same shape should be the same order of magnitude.
  const Dataset ds = MakeSiftLike(5000, 1);
  MetaHnswOptions options;
  options.num_representatives = 500;
  auto built = MetaHnsw::Build(ds.base, options);
  ASSERT_TRUE(built.ok());
  const size_t bytes = built.value().ToBlob().size();
  EXPECT_GT(bytes, 250u * 1024);   // vectors alone are 500*128*4 = 256 KB
  EXPECT_LT(bytes, 1024u * 1024);  // well under 1 MB
}

}  // namespace
}  // namespace dhnsw
