#include "core/client_router.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "dataset/ground_truth.h"
#include "dataset/synthetic.h"

namespace dhnsw {
namespace {

struct Rig {
  Dataset ds;
  DhnswEngine engine;
};

Rig BuildRig(size_t instances) {
  Dataset ds = MakeSynthetic({.dim = 8, .num_base = 1500, .num_queries = 60,
                              .num_clusters = 8, .seed = 121});
  DhnswConfig config = DhnswConfig::Defaults();
  config.meta.num_representatives = 16;
  config.sub_hnsw = HnswOptions{.M = 8, .ef_construction = 50};
  config.compute.clusters_per_query = 3;
  config.compute.cache_capacity = 5;
  config.num_compute_nodes = instances;
  auto engine = DhnswEngine::Build(ds.base, config);
  EXPECT_TRUE(engine.ok());
  return Rig{std::move(ds), std::move(engine).value()};
}

TEST(ClientRouterTest, EmptyPoolRejected) {
  ClientRouter router({});
  VectorSet queries(8);
  queries.Append(std::vector<float>(8, 0.0f));
  EXPECT_EQ(router.SearchBatch(queries, 5, 32).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ClientRouterTest, ShardedMatchesSingleNode) {
  Rig rig = BuildRig(3);
  auto single = rig.engine.compute(0).SearchAll(rig.ds.queries, 10, 48);
  ASSERT_TRUE(single.ok());

  auto sharded = rig.engine.SearchSharded(rig.ds.queries, 10, 48);
  ASSERT_TRUE(sharded.ok());
  ASSERT_EQ(sharded.value().results.size(), rig.ds.queries.size());
  for (size_t qi = 0; qi < rig.ds.queries.size(); ++qi) {
    const auto& a = single.value().results[qi];
    const auto& b = sharded.value().results[qi];
    ASSERT_EQ(a.size(), b.size()) << "query " << qi;
    for (size_t j = 0; j < a.size(); ++j) {
      EXPECT_EQ(a[j].id, b[j].id) << "query " << qi;
    }
  }
}

TEST(ClientRouterTest, EveryInstanceDoesWork) {
  Rig rig = BuildRig(3);
  auto result = rig.engine.SearchSharded(rig.ds.queries, 5, 32);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().per_instance.size(), 3u);
  for (const BatchBreakdown& b : result.value().per_instance) {
    EXPECT_EQ(b.num_queries, 20u);  // 60 queries / 3 instances
    EXPECT_GT(b.round_trips, 0u);
  }
}

TEST(ClientRouterTest, LatencyIsMaxOverInstances) {
  Rig rig = BuildRig(2);
  auto result = rig.engine.SearchSharded(rig.ds.queries, 5, 32);
  ASSERT_TRUE(result.ok());
  double max_shard = 0;
  for (const BatchBreakdown& b : result.value().per_instance) {
    max_shard = std::max(max_shard, b.network_us + b.meta_us + b.sub_us + b.deserialize_us);
  }
  EXPECT_DOUBLE_EQ(result.value().batch_latency_us, max_shard);
  EXPECT_GT(result.value().throughput_qps, 0.0);
}

TEST(ClientRouterTest, MoreQueriesThanInstancesHandlesRemainder) {
  Rig rig = BuildRig(7);  // 60 % 7 != 0 -> uneven shards
  auto result = rig.engine.SearchSharded(rig.ds.queries, 5, 32);
  ASSERT_TRUE(result.ok());
  size_t total = 0;
  for (const BatchBreakdown& b : result.value().per_instance) total += b.num_queries;
  EXPECT_EQ(total, rig.ds.queries.size());
  for (const auto& r : result.value().results) EXPECT_FALSE(r.empty());
}

TEST(ClientRouterTest, FewerQueriesThanInstances) {
  Rig rig = BuildRig(4);
  VectorSet two(8);
  two.Append(rig.ds.queries[0]);
  two.Append(rig.ds.queries[1]);
  auto result = rig.engine.SearchSharded(two, 5, 32);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().results.size(), 2u);
  for (const auto& r : result.value().results) EXPECT_FALSE(r.empty());
}

TEST(ClientRouterTest, RecallMatchesQuality) {
  Rig rig = BuildRig(3);
  ComputeGroundTruth(&rig.ds, 10);
  auto result = rig.engine.SearchSharded(rig.ds.queries, 10, 64);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(MeanRecallAtK(rig.ds, result.value().results, 10), 0.8);
}

}  // namespace
}  // namespace dhnsw
