#include "index/hnsw.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "dataset/ground_truth.h"
#include "dataset/synthetic.h"
#include "index/flat_index.h"

namespace dhnsw {
namespace {

std::vector<float> RandomVector(Xoshiro256& rng, uint32_t dim, float scale = 1.0f) {
  std::vector<float> v(dim);
  for (auto& x : v) x = (rng.NextFloat() - 0.5f) * scale;
  return v;
}

TEST(HnswTest, EmptyIndexSearchIsEmpty) {
  HnswIndex index(4);
  EXPECT_TRUE(index.empty());
  EXPECT_TRUE(index.Search(std::vector<float>{0, 0, 0, 0}, 3, 10).empty());
  EXPECT_TRUE(index.Validate().ok());
}

TEST(HnswTest, SingleElement) {
  HnswIndex index(2);
  EXPECT_EQ(index.Add(std::vector<float>{1.0f, 2.0f}), 0u);
  const auto top = index.Search(std::vector<float>{0.0f, 0.0f}, 1, 10);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].id, 0u);
  EXPECT_FLOAT_EQ(top[0].distance, 5.0f);
  EXPECT_TRUE(index.Validate().ok());
}

TEST(HnswTest, ExactOnTinySets) {
  // With efSearch >= n the search must be exact on small sets.
  Xoshiro256 rng(6);
  HnswIndex index(4);
  FlatIndex flat(4);
  for (int i = 0; i < 50; ++i) {
    const auto v = RandomVector(rng, 4);
    index.Add(v);
    flat.Add(v);
  }
  for (int t = 0; t < 20; ++t) {
    const auto q = RandomVector(rng, 4);
    const auto got = index.Search(q, 5, 64);
    const auto want = flat.Search(q, 5);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, want[i].id) << "trial " << t << " rank " << i;
    }
  }
}

TEST(HnswTest, ValidateAfterManyInserts) {
  Xoshiro256 rng(7);
  HnswIndex index(8, {.M = 8, .ef_construction = 50});
  for (int i = 0; i < 500; ++i) index.Add(RandomVector(rng, 8));
  EXPECT_TRUE(index.Validate().ok());
  EXPECT_EQ(index.size(), 500u);
}

TEST(HnswTest, DegreesNeverExceedCaps) {
  Xoshiro256 rng(8);
  HnswOptions options{.M = 4, .ef_construction = 30};
  HnswIndex index(4, options);
  for (int i = 0; i < 300; ++i) index.Add(RandomVector(rng, 4));
  for (uint32_t id = 0; id < index.size(); ++id) {
    for (uint32_t layer = 0; layer <= index.level(id); ++layer) {
      EXPECT_LE(index.neighbors(id, layer).size(), index.MaxDegree(layer));
    }
  }
}

TEST(HnswTest, EntryPointOnTopLevel) {
  Xoshiro256 rng(9);
  HnswIndex index(4);
  for (int i = 0; i < 200; ++i) index.Add(RandomVector(rng, 4));
  EXPECT_EQ(index.level(index.entry_point()),
            static_cast<uint32_t>(index.max_level_in_graph()));
}

TEST(HnswTest, MaxLevelCapRespected) {
  Xoshiro256 rng(10);
  HnswOptions options;
  options.max_level = 2;  // three layers, like the meta-HNSW
  HnswIndex index(4, options);
  for (int i = 0; i < 2000; ++i) index.Add(RandomVector(rng, 4));
  EXPECT_LE(index.max_level_in_graph(), 2);
  for (uint32_t id = 0; id < index.size(); ++id) EXPECT_LE(index.level(id), 2u);
}

TEST(HnswTest, DeterministicForSeed) {
  Xoshiro256 data_rng(11);
  std::vector<std::vector<float>> data;
  for (int i = 0; i < 200; ++i) data.push_back(RandomVector(data_rng, 4));

  HnswOptions options;
  options.seed = 77;
  HnswIndex a(4, options), b(4, options);
  for (const auto& v : data) {
    a.Add(v);
    b.Add(v);
  }
  ASSERT_EQ(a.size(), b.size());
  for (uint32_t id = 0; id < a.size(); ++id) {
    ASSERT_EQ(a.level(id), b.level(id));
    for (uint32_t layer = 0; layer <= a.level(id); ++layer) {
      const auto na = a.neighbors(id, layer);
      const auto nb = b.neighbors(id, layer);
      ASSERT_TRUE(std::equal(na.begin(), na.end(), nb.begin(), nb.end()));
    }
  }
}

TEST(HnswTest, SearchIsDeterministic) {
  Xoshiro256 rng(12);
  HnswIndex index(8);
  for (int i = 0; i < 400; ++i) index.Add(RandomVector(rng, 8));
  const auto q = RandomVector(rng, 8);
  const auto r1 = index.Search(q, 10, 32);
  const auto r2 = index.Search(q, 10, 32);
  ASSERT_EQ(r1.size(), r2.size());
  for (size_t i = 0; i < r1.size(); ++i) EXPECT_EQ(r1[i].id, r2[i].id);
}

TEST(HnswTest, EfClampedUpToK) {
  Xoshiro256 rng(13);
  HnswIndex index(4);
  for (int i = 0; i < 100; ++i) index.Add(RandomVector(rng, 4));
  // ef = 1 but k = 10: must still return 10 results.
  const auto top = index.Search(RandomVector(rng, 4), 10, 1);
  EXPECT_EQ(top.size(), 10u);
}

TEST(HnswTest, ResultsSortedAndUnique) {
  Xoshiro256 rng(14);
  HnswIndex index(4);
  for (int i = 0; i < 300; ++i) index.Add(RandomVector(rng, 4));
  const auto top = index.Search(RandomVector(rng, 4), 20, 50);
  std::set<uint32_t> ids;
  for (size_t i = 0; i < top.size(); ++i) {
    if (i > 0) EXPECT_LE(top[i - 1].distance, top[i].distance);
    ids.insert(top[i].id);
  }
  EXPECT_EQ(ids.size(), top.size());
}

TEST(HnswTest, RecallImprovesWithEf) {
  Dataset ds = MakeSynthetic({.dim = 16, .num_base = 3000, .num_queries = 50,
                              .num_clusters = 20, .seed = 42});
  ComputeGroundTruth(&ds, 10);

  HnswIndex index(16, {.M = 12, .ef_construction = 100});
  for (size_t i = 0; i < ds.base.size(); ++i) index.Add(ds.base[i]);

  auto recall_at_ef = [&](uint32_t ef) {
    std::vector<std::vector<Scored>> results;
    for (size_t qi = 0; qi < ds.queries.size(); ++qi) {
      results.push_back(index.Search(ds.queries[qi], 10, ef));
    }
    return MeanRecallAtK(ds, results, 10);
  };

  const double r_low = recall_at_ef(10);
  const double r_high = recall_at_ef(200);
  EXPECT_GE(r_high, r_low);
  EXPECT_GT(r_high, 0.95);  // near-exact at ef=200 on 3k points
}

TEST(HnswTest, HighRecallVsBruteForce) {
  Xoshiro256 rng(15);
  const uint32_t dim = 16;
  HnswIndex index(dim, {.M = 16, .ef_construction = 200});
  FlatIndex flat(dim);
  for (int i = 0; i < 2000; ++i) {
    const auto v = RandomVector(rng, dim, 10.0f);
    index.Add(v);
    flat.Add(v);
  }
  int hits = 0, total = 0;
  for (int t = 0; t < 50; ++t) {
    const auto q = RandomVector(rng, dim, 10.0f);
    const auto got = index.Search(q, 10, 100);
    const auto want = flat.Search(q, 10);
    std::set<uint32_t> want_ids;
    for (const auto& s : want) want_ids.insert(s.id);
    for (const auto& s : got) hits += want_ids.count(s.id);
    total += 10;
  }
  EXPECT_GT(static_cast<double>(hits) / total, 0.9);
}

TEST(HnswTest, IncrementalInsertsSearchable) {
  // Vectors added after initial build must be findable (dynamic insert).
  Xoshiro256 rng(16);
  HnswIndex index(4);
  for (int i = 0; i < 200; ++i) index.Add(RandomVector(rng, 4));
  const std::vector<float> special = {100.0f, 100.0f, 100.0f, 100.0f};
  const uint32_t id = index.Add(special);
  const auto top = index.Search(special, 1, 10);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].id, id);
  EXPECT_TRUE(index.Validate().ok());
}

TEST(HnswTest, FromRawRoundTripPreservesStructureAndResults) {
  Xoshiro256 rng(17);
  HnswIndex index(8, {.M = 8, .ef_construction = 60});
  for (int i = 0; i < 300; ++i) index.Add(RandomVector(rng, 8));

  // Extract raw parts.
  std::vector<uint32_t> levels(index.size());
  std::vector<std::vector<std::vector<uint32_t>>> links(index.size());
  for (uint32_t id = 0; id < index.size(); ++id) {
    levels[id] = index.level(id);
    links[id].resize(levels[id] + 1);
    for (uint32_t layer = 0; layer <= levels[id]; ++layer) {
      const auto nbs = index.neighbors(id, layer);
      links[id][layer].assign(nbs.begin(), nbs.end());
    }
  }
  auto rebuilt = HnswIndex::FromRaw(
      8, index.options(),
      std::vector<float>(index.vectors().begin(), index.vectors().end()), levels,
      links, index.entry_point());
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();

  const auto q = RandomVector(rng, 8);
  const auto r1 = index.Search(q, 10, 50);
  const auto r2 = rebuilt.value().Search(q, 10, 50);
  ASSERT_EQ(r1.size(), r2.size());
  for (size_t i = 0; i < r1.size(); ++i) EXPECT_EQ(r1[i].id, r2[i].id);
}

TEST(HnswTest, FromRawRejectsBadAdjacency) {
  std::vector<float> vectors = {0.0f, 0.0f, 1.0f, 1.0f};
  std::vector<uint32_t> levels = {0, 0};
  std::vector<std::vector<std::vector<uint32_t>>> links(2);
  links[0] = {{5}};  // neighbor id 5 out of range
  links[1] = {{0}};
  auto r = HnswIndex::FromRaw(2, HnswOptions{}, vectors, levels, links, 0);
  EXPECT_FALSE(r.ok());
}

TEST(HnswTest, FromRawRejectsSizeMismatch) {
  auto r = HnswIndex::FromRaw(3, HnswOptions{}, {1.0f, 2.0f}, {0}, {{{}}}, 0);
  EXPECT_FALSE(r.ok());
}

TEST(HnswTest, SetNeighborsValidates) {
  HnswIndex index(2);
  index.Add(std::vector<float>{0, 0});
  index.Add(std::vector<float>{1, 1});
  const uint32_t ids_ok[] = {1};
  EXPECT_TRUE(index.SetNeighbors(0, 0, ids_ok).ok());
  const uint32_t ids_bad[] = {7};
  EXPECT_FALSE(index.SetNeighbors(0, 0, ids_bad).ok());
  EXPECT_FALSE(index.SetNeighbors(9, 0, ids_ok).ok());
}

/// Parameterized sweep over M: recall@10 with generous ef should be high for
/// all reasonable M, and the index must stay structurally valid.
class HnswMSweepTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(HnswMSweepTest, RecallAndInvariants) {
  const uint32_t m = GetParam();
  Xoshiro256 rng(100 + m);
  const uint32_t dim = 8;
  HnswIndex index(dim, {.M = m, .ef_construction = 80});
  FlatIndex flat(dim);
  for (int i = 0; i < 1000; ++i) {
    const auto v = RandomVector(rng, dim, 5.0f);
    index.Add(v);
    flat.Add(v);
  }
  ASSERT_TRUE(index.Validate().ok());

  int hits = 0;
  constexpr int kQueries = 20, kK = 10;
  for (int t = 0; t < kQueries; ++t) {
    const auto q = RandomVector(rng, dim, 5.0f);
    const auto got = index.Search(q, kK, 80);
    const auto want = flat.Search(q, kK);
    std::set<uint32_t> want_ids;
    for (const auto& s : want) want_ids.insert(s.id);
    for (const auto& s : got) hits += want_ids.count(s.id);
  }
  EXPECT_GT(static_cast<double>(hits) / (kQueries * kK), 0.8) << "M=" << m;
}

INSTANTIATE_TEST_SUITE_P(Sweep, HnswMSweepTest, ::testing::Values(4, 8, 16, 32));

}  // namespace
}  // namespace dhnsw
