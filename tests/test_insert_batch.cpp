// Batched insertion (coalesced FAA + doorbell-batched WRITEs).
#include <gtest/gtest.h>

#include "core/engine.h"
#include "dataset/synthetic.h"

namespace dhnsw {
namespace {

DhnswConfig SmallConfig(uint64_t overflow = 1 << 16) {
  DhnswConfig config = DhnswConfig::Defaults();
  config.meta.num_representatives = 10;
  config.sub_hnsw = HnswOptions{.M = 8, .ef_construction = 40};
  config.compute.clusters_per_query = 3;
  config.compute.cache_capacity = 4;
  config.layout.overflow_bytes_per_group = overflow;
  return config;
}

Dataset SmallData() {
  return MakeSynthetic({.dim = 8, .num_base = 900, .num_queries = 10,
                        .num_clusters = 6, .seed = 141});
}

VectorSet MakeBatch(const Dataset& ds, size_t n, uint64_t seed) {
  Xoshiro256 rng(seed);
  VectorSet batch(8);
  for (size_t i = 0; i < n; ++i) {
    const size_t src = rng.NextBounded(ds.base.size());
    std::vector<float> v(ds.base[src].begin(), ds.base[src].end());
    v[0] += 0.1f;
    batch.Append(v);
  }
  return batch;
}

TEST(InsertBatchTest, AllVectorsRetrievable) {
  Dataset ds = SmallData();
  auto engine = DhnswEngine::Build(ds.base, SmallConfig());
  ASSERT_TRUE(engine.ok());

  const VectorSet batch = MakeBatch(ds, 50, 1);
  std::vector<size_t> rejected;
  auto first_id = engine.value().InsertBatch(batch, &rejected);
  ASSERT_TRUE(first_id.ok()) << first_id.status().ToString();
  EXPECT_EQ(first_id.value(), ds.base.size());
  EXPECT_TRUE(rejected.empty());

  auto result = engine.value().SearchAll(batch, 1, 48);
  ASSERT_TRUE(result.ok());
  for (size_t i = 0; i < batch.size(); ++i) {
    ASSERT_FALSE(result.value().results[i].empty());
    EXPECT_LT(result.value().results[i][0].distance, 1e-3f) << "row " << i;
  }
}

TEST(InsertBatchTest, FewerRoundTripsThanSingleInserts) {
  Dataset ds = SmallData();
  auto batch_engine = DhnswEngine::Build(ds.base, SmallConfig());
  auto single_engine = DhnswEngine::Build(ds.base, SmallConfig());
  ASSERT_TRUE(batch_engine.ok());
  ASSERT_TRUE(single_engine.ok());

  const VectorSet batch = MakeBatch(ds, 60, 2);

  const auto before_batch = batch_engine.value().compute(0).qp_stats();
  ASSERT_TRUE(batch_engine.value().InsertBatch(batch).ok());
  const auto rt_batch =
      (batch_engine.value().compute(0).qp_stats() - before_batch).round_trips;

  const auto before_single = single_engine.value().compute(0).qp_stats();
  for (size_t i = 0; i < batch.size(); ++i) {
    ASSERT_TRUE(single_engine.value().Insert(batch[i]).ok());
  }
  const auto rt_single =
      (single_engine.value().compute(0).qp_stats() - before_single).round_trips;

  EXPECT_EQ(rt_single, 2 * batch.size());  // 2 rings per vector
  EXPECT_LT(rt_batch, rt_single / 2);      // ~2 rings per touched partition
}

TEST(InsertBatchTest, MatchesSingleInsertResults) {
  Dataset ds = SmallData();
  auto a = DhnswEngine::Build(ds.base, SmallConfig());
  auto b = DhnswEngine::Build(ds.base, SmallConfig());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());

  const VectorSet batch = MakeBatch(ds, 40, 3);
  ASSERT_TRUE(a.value().InsertBatch(batch).ok());
  for (size_t i = 0; i < batch.size(); ++i) {
    ASSERT_TRUE(b.value().Insert(batch[i]).ok());
  }

  auto ra = a.value().SearchAll(ds.queries, 10, 48);
  auto rb = b.value().SearchAll(ds.queries, 10, 48);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  for (size_t qi = 0; qi < ds.queries.size(); ++qi) {
    ASSERT_EQ(ra.value().results[qi].size(), rb.value().results[qi].size());
    for (size_t j = 0; j < ra.value().results[qi].size(); ++j) {
      EXPECT_EQ(ra.value().results[qi][j].id, rb.value().results[qi][j].id);
    }
  }
}

TEST(InsertBatchTest, PartitionOverflowRejectsOnlyThatGroup) {
  Dataset ds = SmallData();
  // Room for ~4 records per group (8-dim record = 40 B).
  auto engine = DhnswEngine::Build(ds.base, SmallConfig(/*overflow=*/160));
  ASSERT_TRUE(engine.ok());

  // 30 copies of one vector all route to one partition: group too large.
  VectorSet same(8);
  for (int i = 0; i < 30; ++i) same.Append(ds.base[0]);
  std::vector<size_t> rejected;
  auto first_id = engine.value().InsertBatch(same, &rejected);
  ASSERT_TRUE(first_id.ok());
  EXPECT_EQ(rejected.size(), 30u);  // whole group rejected atomically

  // A small group still fits afterwards (rollback restored the budget).
  VectorSet few(8);
  few.Append(ds.base[0]);
  few.Append(ds.base[0]);
  std::vector<size_t> rejected2;
  ASSERT_TRUE(engine.value().InsertBatch(few, &rejected2).ok());
  EXPECT_TRUE(rejected2.empty());
}

TEST(InsertBatchTest, SizeMismatchRejected) {
  Dataset ds = SmallData();
  auto engine = DhnswEngine::Build(ds.base, SmallConfig());
  ASSERT_TRUE(engine.ok());
  VectorSet batch(8);
  batch.Append(std::vector<float>(8, 1.0f));
  const uint32_t ids[2] = {1, 2};
  EXPECT_FALSE(engine.value().compute(0).InsertBatch(batch, ids).ok());
}

TEST(InsertBatchTest, EmptyBatchIsNoop) {
  Dataset ds = SmallData();
  auto engine = DhnswEngine::Build(ds.base, SmallConfig());
  ASSERT_TRUE(engine.ok());
  VectorSet empty(8);
  auto result = engine.value().InsertBatch(empty);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(engine.value().next_global_id(), ds.base.size());
}

TEST(InsertBatchTest, WorksOnShardedPool) {
  Dataset ds = SmallData();
  DhnswConfig config = SmallConfig();
  config.num_memory_nodes = 3;
  auto engine = DhnswEngine::Build(ds.base, config);
  ASSERT_TRUE(engine.ok());

  const VectorSet batch = MakeBatch(ds, 30, 4);
  std::vector<size_t> rejected;
  ASSERT_TRUE(engine.value().InsertBatch(batch, &rejected).ok());
  EXPECT_TRUE(rejected.empty());

  auto result = engine.value().SearchAll(batch, 1, 48);
  ASSERT_TRUE(result.ok());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_LT(result.value().results[i][0].distance, 1e-3f);
  }
}

}  // namespace
}  // namespace dhnsw
