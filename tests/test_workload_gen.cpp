// Statistical + determinism tests for the open-loop workload generator
// (core/workload_gen.h). The generator's contracts, in test order:
//   - Poisson interarrivals have mean 1/qps and CV^2 ~= 1;
//   - the bursty process keeps the same mean but is overdispersed (CV^2 > 1);
//   - Zipf topic frequencies follow the rank-frequency power law (log-log
//     slope ~= -s);
//   - the read/write mix is EXACT, not a coin-flip expectation;
//   - same seed => bit-identical schedules; different seed => different;
//   - insert ids are dense and pre-assigned from first_insert_id.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "core/workload_gen.h"
#include "dataset/synthetic.h"

namespace dhnsw {
namespace {

Dataset SmallData() {
  return MakeSynthetic({.dim = 8, .num_base = 2000, .num_queries = 4,
                        .num_clusters = 8, .seed = 11});
}

std::vector<double> InterarrivalsUs(const std::vector<WorkloadOp>& ops) {
  std::vector<double> gaps;
  gaps.reserve(ops.size());
  uint64_t prev = 0;
  for (const WorkloadOp& op : ops) {
    gaps.push_back(static_cast<double>(op.arrival_ns - prev) / 1e3);
    prev = op.arrival_ns;
  }
  return gaps;
}

void MeanVar(const std::vector<double>& xs, double* mean, double* var) {
  double m = 0.0;
  for (double x : xs) m += x;
  m /= static_cast<double>(xs.size());
  double v = 0.0;
  for (double x : xs) v += (x - m) * (x - m);
  v /= static_cast<double>(xs.size() - 1);
  *mean = m;
  *var = v;
}

TEST(WorkloadGenTest, PoissonInterarrivalMeanAndVarianceWithinTolerance) {
  Dataset ds = SmallData();
  WorkloadGenOptions opt;
  opt.seed = 5;
  opt.num_ops = 40'000;
  opt.target_qps = 100'000.0;  // mean gap 10us
  opt.arrivals = ArrivalProcess::kPoisson;
  opt.read_fraction = 1.0;
  auto ops = WorkloadGenerator(ds.base, opt).Generate();

  double mean_us = 0.0, var_us2 = 0.0;
  MeanVar(InterarrivalsUs(ops), &mean_us, &var_us2);
  // Exponential(mean 10us): variance = mean^2. 40k samples => ~3 sigma
  // bounds of a few percent; 10% tolerances are comfortably outside noise
  // while still catching a wrong distribution (uniform: var = mean^2/3).
  EXPECT_NEAR(mean_us, 10.0, 1.0);
  EXPECT_NEAR(var_us2 / (mean_us * mean_us), 1.0, 0.15);
}

TEST(WorkloadGenTest, BurstyKeepsMeanRateButOverdisperses) {
  Dataset ds = SmallData();
  WorkloadGenOptions opt;
  opt.seed = 5;
  opt.num_ops = 40'000;
  opt.target_qps = 100'000.0;
  opt.read_fraction = 1.0;

  opt.arrivals = ArrivalProcess::kBursty;
  auto bursty = WorkloadGenerator(ds.base, opt).Generate();
  double mean_us = 0.0, var_us2 = 0.0;
  MeanVar(InterarrivalsUs(bursty), &mean_us, &var_us2);

  // Same long-run rate (f*hot + (1-f)*quiet = target by construction)...
  EXPECT_NEAR(mean_us, 10.0, 1.5);
  // ...but a two-state modulated Poisson is strictly overdispersed: CV^2
  // exceeds the Poisson process' 1.0.
  EXPECT_GT(var_us2 / (mean_us * mean_us), 1.25);
}

TEST(WorkloadGenTest, UniformArrivalsAreEquallySpaced) {
  Dataset ds = SmallData();
  WorkloadGenOptions opt;
  opt.num_ops = 100;
  opt.target_qps = 1e6;  // 1us spacing
  opt.arrivals = ArrivalProcess::kUniform;
  auto ops = WorkloadGenerator(ds.base, opt).Generate();
  for (size_t i = 0; i < ops.size(); ++i) {
    EXPECT_EQ(ops[i].arrival_ns, (i + 1) * 1000u);
  }
}

TEST(WorkloadGenTest, ZipfRankFrequencySlopeMatchesExponent) {
  Dataset ds = SmallData();
  WorkloadGenOptions opt;
  opt.seed = 17;
  opt.num_ops = 60'000;
  opt.zipf_s = 1.1;
  opt.num_topics = 16;
  opt.read_fraction = 1.0;
  auto ops = WorkloadGenerator(ds.base, opt).Generate();

  std::vector<uint64_t> freq(opt.num_topics, 0);
  for (const WorkloadOp& op : ops) ++freq[op.topic];
  // By construction topic rank == topic id (p ~ 1/(t+1)^s). Least-squares
  // fit of log(freq) on log(rank) over the well-populated head.
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  const size_t fit = 12;
  for (size_t t = 0; t < fit; ++t) {
    ASSERT_GT(freq[t], 50u) << "topic " << t << " too sparse to fit";
    const double x = std::log(static_cast<double>(t + 1));
    const double y = std::log(static_cast<double>(freq[t]));
    sx += x; sy += y; sxx += x * x; sxy += x * y;
  }
  const double n = static_cast<double>(fit);
  const double slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
  EXPECT_NEAR(slope, -opt.zipf_s, 0.15);
}

TEST(WorkloadGenTest, ReadWriteMixIsExact) {
  Dataset ds = SmallData();
  for (double rf : {1.0, 0.9, 0.75, 0.5, 0.0}) {
    WorkloadGenOptions opt;
    opt.num_ops = 1000;
    opt.read_fraction = rf;
    WorkloadGenerator gen(ds.base, opt);
    auto ops = gen.Generate();

    size_t inserts = 0;
    size_t max_prefix_error = 0;
    const double w = 1.0 - rf;
    for (size_t i = 0; i < ops.size(); ++i) {
      if (ops[i].kind == WorkloadOp::Kind::kInsert) ++inserts;
      // The staircase keeps every prefix within 1 op of the ideal mix.
      const double ideal = static_cast<double>(i + 1) * w;
      max_prefix_error = std::max(
          max_prefix_error,
          static_cast<size_t>(std::fabs(static_cast<double>(inserts) - ideal)));
    }
    EXPECT_EQ(inserts, static_cast<size_t>(std::floor(1000 * w))) << "rf=" << rf;
    EXPECT_EQ(inserts, gen.NumInserts()) << "rf=" << rf;
    EXPECT_LE(max_prefix_error, 1u) << "rf=" << rf;
  }
}

TEST(WorkloadGenTest, InsertIdsAreDenseFromFirstInsertId) {
  Dataset ds = SmallData();
  WorkloadGenOptions opt;
  opt.num_ops = 400;
  opt.read_fraction = 0.7;
  opt.first_insert_id = 9000;
  auto ops = WorkloadGenerator(ds.base, opt).Generate();

  uint32_t expected = 9000;
  for (const WorkloadOp& op : ops) {
    if (op.kind != WorkloadOp::Kind::kInsert) continue;
    EXPECT_EQ(op.global_id, expected);
    ++expected;
  }
  EXPECT_EQ(expected, 9000 + 120);  // floor(400 * 0.3)
}

TEST(WorkloadGenTest, SameSeedBitIdenticalDifferentSeedNot) {
  Dataset ds = SmallData();
  WorkloadGenOptions opt;
  opt.seed = 123;
  opt.num_ops = 500;
  opt.read_fraction = 0.8;
  opt.num_tenants = 4;
  opt.arrivals = ArrivalProcess::kBursty;
  auto a = WorkloadGenerator(ds.base, opt).Generate();
  auto b = WorkloadGenerator(ds.base, opt).Generate();

  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind) << i;
    EXPECT_EQ(a[i].arrival_ns, b[i].arrival_ns) << i;
    EXPECT_EQ(a[i].tenant, b[i].tenant) << i;
    EXPECT_EQ(a[i].topic, b[i].topic) << i;
    EXPECT_EQ(a[i].global_id, b[i].global_id) << i;
    ASSERT_EQ(a[i].vector.size(), b[i].vector.size()) << i;
    EXPECT_EQ(std::memcmp(a[i].vector.data(), b[i].vector.data(),
                          a[i].vector.size() * sizeof(float)),
              0)
        << i;
  }

  opt.seed = 124;
  auto c = WorkloadGenerator(ds.base, opt).Generate();
  bool any_diff = false;
  for (size_t i = 0; i < a.size() && !any_diff; ++i) {
    any_diff = a[i].arrival_ns != c[i].arrival_ns || a[i].topic != c[i].topic;
  }
  EXPECT_TRUE(any_diff);
}

TEST(WorkloadGenTest, TenantsAllCoveredAndInRange) {
  Dataset ds = SmallData();
  WorkloadGenOptions opt;
  opt.seed = 3;
  opt.num_ops = 2000;
  opt.num_tenants = 8;
  auto ops = WorkloadGenerator(ds.base, opt).Generate();

  std::vector<uint64_t> per_tenant(opt.num_tenants, 0);
  for (const WorkloadOp& op : ops) {
    ASSERT_LT(op.tenant, opt.num_tenants);
    ++per_tenant[op.tenant];
  }
  for (uint32_t t = 0; t < opt.num_tenants; ++t) {
    EXPECT_GT(per_tenant[t], 100u) << "tenant " << t;
  }
}

TEST(WorkloadGenTest, PayloadsStayNearTheirTopicSlice) {
  Dataset ds = SmallData();
  WorkloadGenOptions opt;
  opt.seed = 29;
  opt.num_ops = 200;
  opt.num_topics = 8;
  opt.noise_stddev = 0.0f;  // payloads are exact base-row copies
  WorkloadGenerator gen(ds.base, opt);
  auto ops = gen.Generate();

  for (const WorkloadOp& op : ops) {
    ASSERT_EQ(op.vector.size(), ds.base.dim());
    // Zero-noise payloads must be some row of the claimed topic's slice.
    const size_t n = ds.base.size();
    const size_t begin = static_cast<size_t>(op.topic) * n / opt.num_topics;
    const size_t end = static_cast<size_t>(op.topic + 1) * n / opt.num_topics;
    bool found = false;
    for (size_t row = begin; row < end && !found; ++row) {
      found = std::memcmp(op.vector.data(), ds.base[row].data(),
                          op.vector.size() * sizeof(float)) == 0;
    }
    EXPECT_TRUE(found) << "payload not in topic " << op.topic << " slice";
  }
}

}  // namespace
}  // namespace dhnsw
