#include "serialize/overflow.h"

#include <gtest/gtest.h>

#include <vector>

namespace dhnsw {
namespace {

TEST(OverflowTest, RecordSizeIsEightAligned) {
  for (uint32_t dim : {1u, 2u, 3u, 4u, 127u, 128u, 960u}) {
    EXPECT_EQ(OverflowRecordSize(dim) % 8, 0u) << "dim " << dim;
    EXPECT_GE(OverflowRecordSize(dim), 12 + dim * 4) << "dim " << dim;
  }
}

TEST(OverflowTest, RecordRoundTrip) {
  const std::vector<float> v = {1.5f, -2.5f, 3.0f};
  std::vector<uint8_t> buf(OverflowRecordSize(3));
  EncodeOverflowRecord(4242, v, buf);
  auto rec = DecodeOverflowRecord(buf, 3);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec.value().global_id, 4242u);
  EXPECT_EQ(rec.value().vector, v);
}

TEST(OverflowTest, TruncatedRecordFails) {
  std::vector<uint8_t> buf(OverflowRecordSize(4) - 1);
  EXPECT_EQ(DecodeOverflowRecord(buf, 4).status().code(), StatusCode::kCorruption);
}

TEST(OverflowTest, AreaDecodesMultipleRecords) {
  const uint32_t dim = 5;
  const size_t rec = OverflowRecordSize(dim);
  std::vector<uint8_t> area(rec * 3);
  for (uint32_t i = 0; i < 3; ++i) {
    std::vector<float> v(dim, static_cast<float>(i));
    EncodeOverflowRecord(100 + i, v, std::span<uint8_t>(area).subspan(i * rec, rec));
  }
  auto records = DecodeOverflowArea(area, rec * 3, dim);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records.value().size(), 3u);
  for (uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(records.value()[i].global_id, 100 + i);
    EXPECT_FLOAT_EQ(records.value()[i].vector[dim - 1], static_cast<float>(i));
  }
}

TEST(OverflowTest, EmptyAreaDecodesToNothing) {
  std::vector<uint8_t> area(1024);
  auto records = DecodeOverflowArea(area, 0, 8);
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records.value().empty());
}

TEST(OverflowTest, UsedBeyondAreaFails) {
  std::vector<uint8_t> area(64);
  EXPECT_FALSE(DecodeOverflowArea(area, 128, 4).ok());
}

TEST(OverflowTest, NonMultipleUsedFails) {
  const uint32_t dim = 4;
  std::vector<uint8_t> area(OverflowRecordSize(dim) * 2);
  EXPECT_FALSE(DecodeOverflowArea(area, OverflowRecordSize(dim) + 1, dim).ok());
}

TEST(OverflowTest, EncodedRecordsCarryCommitBit) {
  std::vector<uint8_t> buf(OverflowRecordSize(2));
  EncodeOverflowRecord(5, std::vector<float>{1, 2}, buf);
  auto rec = DecodeOverflowRecord(buf, 2);
  ASSERT_TRUE(rec.ok());
  EXPECT_TRUE(rec.value().is_committed());
  EXPECT_FALSE(rec.value().is_tombstone());

  EncodeOverflowTombstone(5, 2, buf);
  rec = DecodeOverflowRecord(buf, 2);
  ASSERT_TRUE(rec.ok());
  EXPECT_TRUE(rec.value().is_committed());
  EXPECT_TRUE(rec.value().is_tombstone());
}

TEST(OverflowTest, UncommittedSlotsAreSkippedByAreaDecode) {
  // Simulates a reader racing an insert: the slot is claimed (used counter
  // advanced) but still zero-filled — it must not surface as a record.
  const uint32_t dim = 3;
  const size_t rec = OverflowRecordSize(dim);
  std::vector<uint8_t> area(rec * 3, 0);  // all three slots claimed
  EncodeOverflowRecord(7, std::vector<float>{1, 2, 3},
                       std::span<uint8_t>(area).subspan(0, rec));
  // slot 1 left zero-filled (in flight); slot 2 written.
  EncodeOverflowRecord(9, std::vector<float>{4, 5, 6},
                       std::span<uint8_t>(area).subspan(2 * rec, rec));
  auto records = DecodeOverflowArea(area, rec * 3, dim);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records.value().size(), 2u);
  EXPECT_EQ(records.value()[0].global_id, 7u);
  EXPECT_EQ(records.value()[1].global_id, 9u);
}

TEST(OverflowTest, PaddingBytesDoNotLeak) {
  // dim=2: record is 12 + 8 = 20 -> padded to 24; the pad must be zeroed.
  std::vector<uint8_t> buf(OverflowRecordSize(2), 0xAB);
  const std::vector<float> v = {7.0f, -7.0f};
  EncodeOverflowRecord(1, v, buf);
  for (size_t i = 20; i < buf.size(); ++i) EXPECT_EQ(buf[i], 0);
}

TEST(OverflowTest, BitFlipInCommittedRecordIsDetected) {
  const uint32_t dim = 4;
  std::vector<uint8_t> buf(OverflowRecordSize(dim));
  EncodeOverflowRecord(77, std::vector<float>{1, 2, 3, 4}, buf);
  ASSERT_TRUE(DecodeOverflowRecord(buf, dim).ok());

  // Flip one payload bit: the per-record CRC must catch it.
  buf[14] ^= 0x04;
  EXPECT_EQ(DecodeOverflowRecord(buf, dim).status().code(), StatusCode::kCorruption);
  buf[14] ^= 0x04;

  // Damage to the id is equally fatal...
  buf[0] ^= 0x80;
  EXPECT_EQ(DecodeOverflowRecord(buf, dim).status().code(), StatusCode::kCorruption);
  buf[0] ^= 0x80;

  // ...and a damaged area surfaces the corruption instead of bad data.
  std::vector<uint8_t> area(buf);
  area[16] ^= 0x01;
  EXPECT_EQ(DecodeOverflowArea(area, area.size(), dim).status().code(),
            StatusCode::kCorruption);
}

}  // namespace
}  // namespace dhnsw
