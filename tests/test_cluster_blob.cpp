#include "serialize/cluster_blob.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dhnsw {
namespace {

Cluster MakeCluster(uint32_t partition_id, uint32_t count, uint32_t dim, uint64_t seed) {
  Xoshiro256 rng(seed);
  HnswIndex index(dim, {.M = 6, .ef_construction = 40, .seed = seed});
  std::vector<uint32_t> gids;
  std::vector<float> v(dim);
  for (uint32_t i = 0; i < count; ++i) {
    for (auto& x : v) x = rng.NextFloat() * 10.0f;
    index.Add(v);
    gids.push_back(1000 + i * 3);  // arbitrary non-dense global ids
  }
  return Cluster(partition_id, std::move(index), std::move(gids));
}

TEST(ClusterBlobTest, RoundTripPreservesEverything) {
  const Cluster original = MakeCluster(7, 120, 12, 42);
  const std::vector<uint8_t> blob = EncodeCluster(original);

  auto decoded = DecodeCluster(blob, HnswOptions{});
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const Cluster& c = decoded.value();

  EXPECT_EQ(c.partition_id, 7u);
  EXPECT_EQ(c.global_ids, original.global_ids);
  ASSERT_EQ(c.index.size(), original.index.size());
  EXPECT_EQ(c.index.dim(), original.index.dim());
  EXPECT_EQ(c.index.entry_point(), original.index.entry_point());
  EXPECT_EQ(c.index.max_level_in_graph(), original.index.max_level_in_graph());

  for (uint32_t id = 0; id < c.index.size(); ++id) {
    ASSERT_EQ(c.index.level(id), original.index.level(id));
    for (uint32_t layer = 0; layer <= c.index.level(id); ++layer) {
      const auto a = c.index.neighbors(id, layer);
      const auto b = original.index.neighbors(id, layer);
      ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
    }
    const auto va = c.index.vector(id);
    const auto vb = original.index.vector(id);
    for (uint32_t d = 0; d < c.index.dim(); ++d) ASSERT_FLOAT_EQ(va[d], vb[d]);
  }
}

TEST(ClusterBlobTest, DecodedIndexSearchesIdentically) {
  const Cluster original = MakeCluster(0, 200, 8, 43);
  const std::vector<uint8_t> blob = EncodeCluster(original);
  auto decoded = DecodeCluster(blob, HnswOptions{});
  ASSERT_TRUE(decoded.ok());

  Xoshiro256 rng(44);
  std::vector<float> q(8);
  for (int t = 0; t < 10; ++t) {
    for (auto& x : q) x = rng.NextFloat() * 10.0f;
    const auto r1 = original.index.Search(q, 5, 30);
    const auto r2 = decoded.value().index.Search(q, 5, 30);
    ASSERT_EQ(r1.size(), r2.size());
    for (size_t i = 0; i < r1.size(); ++i) EXPECT_EQ(r1[i].id, r2[i].id);
  }
}

TEST(ClusterBlobTest, EncodedSizeMatchesActual) {
  for (uint32_t count : {1u, 10u, 100u}) {
    const Cluster c = MakeCluster(1, count, 6, count);
    EXPECT_EQ(EncodedClusterSize(c), EncodeCluster(c).size()) << "count " << count;
  }
}

TEST(ClusterBlobTest, PeekHeaderWithoutFullDecode) {
  const Cluster c = MakeCluster(9, 50, 4, 45);
  const std::vector<uint8_t> blob = EncodeCluster(c);
  auto header = PeekClusterHeader(blob);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header.value().partition_id, 9u);
  EXPECT_EQ(header.value().count, 50u);
  EXPECT_EQ(header.value().dim, 4u);
  EXPECT_EQ(header.value().payload_size + ClusterHeader::kEncodedSize, blob.size());
}

TEST(ClusterBlobTest, TrailingBytesAreIgnored) {
  const Cluster c = MakeCluster(2, 30, 4, 46);
  std::vector<uint8_t> blob = EncodeCluster(c);
  blob.resize(blob.size() + 1024, 0xCC);  // e.g. overflow area read along
  auto decoded = DecodeCluster(blob, HnswOptions{});
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().index.size(), 30u);
}

TEST(ClusterBlobTest, CorruptPayloadDetectedByCrc) {
  const Cluster c = MakeCluster(3, 40, 4, 47);
  std::vector<uint8_t> blob = EncodeCluster(c);
  blob[ClusterHeader::kEncodedSize + 10] ^= 0xFF;
  EXPECT_EQ(DecodeCluster(blob, HnswOptions{}).status().code(), StatusCode::kCorruption);
}

TEST(ClusterBlobTest, BadMagicRejected) {
  const Cluster c = MakeCluster(3, 10, 4, 48);
  std::vector<uint8_t> blob = EncodeCluster(c);
  blob[0] ^= 0x01;
  EXPECT_EQ(DecodeCluster(blob, HnswOptions{}).status().code(), StatusCode::kCorruption);
}

TEST(ClusterBlobTest, TruncatedBlobRejected) {
  const Cluster c = MakeCluster(3, 10, 4, 49);
  std::vector<uint8_t> blob = EncodeCluster(c);
  blob.resize(blob.size() / 2);
  EXPECT_FALSE(DecodeCluster(blob, HnswOptions{}).ok());
}

TEST(ClusterBlobTest, TinyBufferRejected) {
  std::vector<uint8_t> blob(10, 0);
  EXPECT_FALSE(DecodeCluster(blob, HnswOptions{}).ok());
  EXPECT_FALSE(PeekClusterHeader(blob).ok());
}

TEST(ClusterBlobTest, SingleVectorCluster) {
  const Cluster c = MakeCluster(5, 1, 16, 50);
  auto decoded = DecodeCluster(EncodeCluster(c), HnswOptions{});
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().index.size(), 1u);
  const auto top = decoded.value().index.Search(decoded.value().index.vector(0), 1, 4);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].id, 0u);
}

TEST(ClusterBlobTest, PreservesMOption) {
  Xoshiro256 rng(51);
  HnswIndex index(4, {.M = 24, .ef_construction = 40});
  std::vector<float> v(4);
  for (int i = 0; i < 20; ++i) {
    for (auto& x : v) x = rng.NextFloat();
    index.Add(v);
  }
  Cluster c(0, std::move(index), std::vector<uint32_t>(20, 0));
  for (uint32_t i = 0; i < 20; ++i) c.global_ids[i] = i;
  auto decoded = DecodeCluster(EncodeCluster(c), HnswOptions{});
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().index.options().M, 24u);
}

}  // namespace
}  // namespace dhnsw
