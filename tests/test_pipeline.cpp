// Pipelined-vs-sequential differential suite: with pipeline_depth >= 2 a
// wave's cluster READs are posted before the previous wave's sub-searches
// start and drain on the prefetch worker (ComputeNode::IssueWaveLoads /
// ReapWaveLoads). Overlap is a wall-clock-only effect — every fabric-visible
// op, fault decision, retry, cache mutation, and simulated timestamp must be
// BIT-IDENTICAL to the blocking path. These tests replay the same seeded
// batches under both modes (and across search_threads) and compare
// everything observable.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "chaos_harness.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace dhnsw {
namespace {

struct Observed {
  BatchResult result;
  uint64_t sim_ns = 0;
  uint64_t round_trips = 0;
  uint64_t injected_faults = 0;
  uint64_t backoff_ns = 0;
  size_t cache_size = 0;
  std::vector<uint32_t> cached;  ///< resident cluster ids, ascending
};

Observed ObserveNode(ChaosHarness& h, BatchResult result) {
  ComputeNode& node = h.engine().compute(0);
  Observed obs;
  obs.result = std::move(result);
  obs.sim_ns = node.clock().now_ns();
  obs.round_trips = node.qp_stats().round_trips;
  obs.injected_faults = node.qp_stats().injected_faults;
  obs.backoff_ns = obs.result.breakdown.backoff_ns;
  obs.cache_size = node.cache_size();
  for (uint32_t c = 0; c < h.config().num_clusters; ++c) {
    if (node.IsCached(c)) obs.cached.push_back(c);
  }
  return obs;
}

Observed RunTransient(uint32_t pipeline_depth, size_t search_threads, uint64_t plan_seed,
                      bool partial_results) {
  ChaosHarness h({.transport = rdma::TransportOptions::Sim()});
  ComputeNode& node = h.engine().compute(0);
  node.mutable_options()->pipeline_depth = pipeline_depth;
  node.mutable_options()->search_threads = search_threads;

  RetryPolicy retry = RetryPolicy::Default();
  retry.max_attempts = ChaosHarness::kTransientTriggerBudget + 4;
  auto run = h.RunUnderPlan(h.MakeTransientPlan(plan_seed), retry, partial_results);
  EXPECT_TRUE(run.ok()) << run.status().ToString();
  return ObserveNode(h, std::move(run).value());
}

void ExpectIdentical(const Observed& a, const Observed& b, const char* what) {
  EXPECT_TRUE(SameResults(a.result, b.result)) << what;
  EXPECT_EQ(a.sim_ns, b.sim_ns) << what;
  EXPECT_EQ(a.round_trips, b.round_trips) << what;
  EXPECT_EQ(a.injected_faults, b.injected_faults) << what;
  EXPECT_EQ(a.backoff_ns, b.backoff_ns) << what;
  EXPECT_EQ(a.cache_size, b.cache_size) << what;
  EXPECT_EQ(a.cached, b.cached) << what;
  ASSERT_EQ(a.result.statuses.size(), b.result.statuses.size()) << what;
  for (size_t qi = 0; qi < a.result.statuses.size(); ++qi) {
    EXPECT_EQ(a.result.statuses[qi].code(), b.result.statuses[qi].code())
        << what << " query " << qi;
  }
}

// The headline contract: pipelined execution is indistinguishable from the
// sequential path in everything but wall-clock, across thread counts, even
// while a transient fault schedule fires on the prefetched READs.
TEST(PipelineTest, BitIdenticalToSequentialUnderTransientFaults) {
  for (size_t threads : {size_t{1}, size_t{4}}) {
    const Observed sequential = RunTransient(1, threads, 31, false);
    const Observed pipelined = RunTransient(2, threads, 31, false);
    ASSERT_GT(pipelined.injected_faults, 0u) << "schedule 31 never fired";
    ExpectIdentical(sequential, pipelined,
                    threads == 1 ? "depth 1 vs 2, threads 1" : "depth 1 vs 2, threads 4");
  }
}

TEST(PipelineTest, DepthZeroAndOneBothMeanSequential) {
  const Observed d0 = RunTransient(0, 1, 31, false);
  const Observed d1 = RunTransient(1, 1, 31, false);
  ExpectIdentical(d0, d1, "depth 0 vs 1");
}

// Transient kUnavailable faults striking prefetched clusters must heal on the
// shared retry machinery: with a budget that outlasts the schedule's trigger
// budget, the answers converge to the fault-free oracle.
TEST(PipelineTest, TransientFaultsOnPrefetchedClustersConverge) {
  ChaosHarness h({.transport = rdma::TransportOptions::Sim()});
  ComputeNode& node = h.engine().compute(0);
  node.mutable_options()->pipeline_depth = 2;

  RetryPolicy retry = RetryPolicy::Default();
  retry.max_attempts = ChaosHarness::kTransientTriggerBudget + 4;
  auto run = h.RunUnderPlan(h.MakeTransientPlan(31), retry, false);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_GT(node.qp_stats().injected_faults, 0u);
  EXPECT_TRUE(SameResults(h.baseline(), run.value()));
  for (const Status& st : run.value().statuses) EXPECT_TRUE(st.ok());
}

// Permanent outage of one cluster: graceful degradation (per-query statuses,
// candidates kept from healthy clusters) must be identical either way.
TEST(PipelineTest, PermanentFailureDegradationParity) {
  auto run_permanent = [](uint32_t pipeline_depth) {
    ChaosHarness h({.transport = rdma::TransportOptions::Sim()});
    h.engine().compute(0).mutable_options()->pipeline_depth = pipeline_depth;
    uint32_t victim = 0;
    auto run = h.RunUnderPlan(h.MakePermanentPlan(&victim), RetryPolicy::Default(),
                              /*partial_results=*/true);
    EXPECT_TRUE(run.ok()) << run.status().ToString();
    Observed obs = ObserveNode(h, std::move(run).value());
    EXPECT_GT(obs.result.breakdown.failed_loads, 0u);
    return obs;
  };
  const Observed sequential = run_permanent(1);
  const Observed pipelined = run_permanent(2);
  ExpectIdentical(sequential, pipelined, "permanent degradation");
  EXPECT_EQ(sequential.result.breakdown.failed_loads,
            pipelined.result.breakdown.failed_loads);
}

// Without partial_results a permanent failure must fail the whole batch — and
// the abandoned prefetch must not leak into the next batch: a follow-up
// fault-free run on the SAME node returns correct answers.
TEST(PipelineTest, FailedBatchLeavesNoStalePrefetchBehind) {
  ChaosHarness h({.transport = rdma::TransportOptions::Sim()});
  ComputeNode& node = h.engine().compute(0);
  node.mutable_options()->pipeline_depth = 2;
  uint32_t victim = 0;
  auto failing = h.RunUnderPlan(h.MakePermanentPlan(&victim), RetryPolicy::Default(),
                                /*partial_results=*/false);
  EXPECT_FALSE(failing.ok());

  // Fabric faults are cleared by RunUnderPlan; the QP must be clean too.
  auto healthy = h.engine().SearchAll(h.dataset().queries, h.config().k,
                                      h.config().ef_search);
  ASSERT_TRUE(healthy.ok()) << healthy.status().ToString();
  EXPECT_TRUE(SameResults(h.baseline(), healthy.value()));
  for (const Status& st : healthy.value().statuses) EXPECT_TRUE(st.ok());
}

// Warm-cache behaviour probes the LRU state the pipeline leaves behind: the
// second identical batch must see the same cache_hits count (same resident
// set AND same recency order driving the same evictions) as sequential.
TEST(PipelineTest, WarmCacheSecondBatchHitsMatchSequential) {
  auto two_batches = [](uint32_t pipeline_depth) {
    ChaosHarness h({.transport = rdma::TransportOptions::Sim()});
    ComputeNode& node = h.engine().compute(0);
    node.mutable_options()->pipeline_depth = pipeline_depth;
    auto first = h.engine().SearchAll(h.dataset().queries, h.config().k,
                                      h.config().ef_search);
    EXPECT_TRUE(first.ok());
    auto second = h.engine().SearchAll(h.dataset().queries, h.config().k,
                                       h.config().ef_search);
    EXPECT_TRUE(second.ok());
    return std::make_pair(second.value().breakdown.cache_hits,
                          node.cache_hits());
  };
  const auto [plan_hits_seq, lru_hits_seq] = two_batches(1);
  const auto [plan_hits_pipe, lru_hits_pipe] = two_batches(2);
  EXPECT_EQ(plan_hits_seq, plan_hits_pipe);
  EXPECT_EQ(lru_hits_seq, lru_hits_pipe);
  EXPECT_GT(plan_hits_pipe, 0u);
}

// The prefetch pipeline has its own footprint in the process metrics.
TEST(PipelineTest, PrefetchWavesCounterAdvances) {
  telemetry::Counter* waves =
      telemetry::DefaultRegistry().GetCounter("dhnsw_compute_prefetch_waves_total");
  const uint64_t before = waves->value();

  ChaosHarness h({.transport = rdma::TransportOptions::Sim()});
  h.engine().compute(0).mutable_options()->pipeline_depth = 2;
  auto run = h.engine().SearchAll(h.dataset().queries, h.config().k, h.config().ef_search);
  ASSERT_TRUE(run.ok());
  EXPECT_GT(waves->value(), before);
}

// Same-seed pipelined chaos runs serialize byte-identical wall-free JSONL —
// including the new sim-instantaneous "stage.prefetch" spans — and CI
// archives + byte-compares the export (see the pipeline job).
TEST(PipelineTest, TraceJsonlByteIdenticalAcrossSameSeedPipelinedRuns) {
  const auto run_traced = [](uint64_t plan_seed) {
    ChaosHarness h({.transport = rdma::TransportOptions::Sim()});
    h.engine().compute(0).mutable_options()->pipeline_depth = 2;
    h.engine().EnableTracing(1 << 16);
    RetryPolicy retry = RetryPolicy::Default();
    retry.max_attempts = ChaosHarness::kTransientTriggerBudget + 4;
    auto run = h.RunUnderPlan(h.MakeTransientPlan(plan_seed), retry, false);
    EXPECT_TRUE(run.ok()) << run.status().ToString();
    const telemetry::TraceBuffer& trace = h.engine().compute(0).trace();
    EXPECT_GT(trace.size(), 0u);
    EXPECT_EQ(trace.dropped(), 0u);
    return TraceToJsonl(trace, telemetry::TraceExportOptions{.include_wall = false});
  };

  const std::string first = run_traced(31);
  const std::string second = run_traced(31);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second) << "same-seed pipelined traces diverged";

  EXPECT_NE(first.find("\"stage.prefetch\""), std::string::npos);
  EXPECT_NE(first.find("\"stage.load\""), std::string::npos);
  EXPECT_NE(first.find("\"rdma.ring\""), std::string::npos);
  EXPECT_EQ(first.find("wall_ns"), std::string::npos);

  if (const char* dir = std::getenv("DHNSW_TRACE_ARTIFACT_DIR")) {
    const std::string path = std::string(dir) + "/pipeline_trace_seed31.jsonl";
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr) << path;
    ASSERT_EQ(std::fwrite(first.data(), 1, first.size(), f), first.size());
    ASSERT_EQ(std::fclose(f), 0);
  }
}

}  // namespace
}  // namespace dhnsw
