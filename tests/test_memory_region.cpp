#include "rdma/memory_region.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <thread>
#include <vector>

namespace dhnsw::rdma {
namespace {

TEST(MemoryRegionTest, ZeroInitialized) {
  MemoryRegion region(1, 4096);
  for (uint8_t b : region.host_span()) EXPECT_EQ(b, 0);
}

TEST(MemoryRegionTest, DmaWriteThenReadRoundTrip) {
  MemoryRegion region(1, 1024);
  const std::vector<uint8_t> payload = {10, 20, 30, 40};
  region.DmaWrite(100, payload);
  std::vector<uint8_t> out(4);
  region.DmaRead(100, out);
  EXPECT_EQ(out, payload);
}

TEST(MemoryRegionTest, ValidateRange) {
  MemoryRegion region(1, 128);
  EXPECT_TRUE(region.ValidateRange(0, 128).ok());
  EXPECT_TRUE(region.ValidateRange(128, 0).ok());
  EXPECT_FALSE(region.ValidateRange(0, 129).ok());
  EXPECT_FALSE(region.ValidateRange(129, 0).ok());
  EXPECT_FALSE(region.ValidateRange(64, 65).ok());
  // Overflow-resistant: offset + length wrapping must not pass.
  EXPECT_FALSE(region.ValidateRange(UINT64_MAX, 2).ok());
}

TEST(MemoryRegionTest, CompareSwapSucceedsOnMatch) {
  MemoryRegion region(1, 64);
  const uint64_t old = region.AtomicCompareSwap(0, 0, 777);
  EXPECT_EQ(old, 0u);
  uint64_t now;
  region.DmaRead(0, {reinterpret_cast<uint8_t*>(&now), 8});
  EXPECT_EQ(now, 777u);
}

TEST(MemoryRegionTest, CompareSwapFailsOnMismatch) {
  MemoryRegion region(1, 64);
  region.AtomicCompareSwap(8, 0, 5);
  const uint64_t old = region.AtomicCompareSwap(8, 99, 123);  // expect mismatch
  EXPECT_EQ(old, 5u);
  uint64_t now;
  region.DmaRead(8, {reinterpret_cast<uint8_t*>(&now), 8});
  EXPECT_EQ(now, 5u);  // unchanged
}

TEST(MemoryRegionTest, FetchAddReturnsOldAndAdds) {
  MemoryRegion region(1, 64);
  EXPECT_EQ(region.AtomicFetchAdd(16, 10), 0u);
  EXPECT_EQ(region.AtomicFetchAdd(16, 5), 10u);
  uint64_t now;
  region.DmaRead(16, {reinterpret_cast<uint8_t*>(&now), 8});
  EXPECT_EQ(now, 15u);
}

TEST(MemoryRegionTest, FetchAddWithNegativeTwosComplement) {
  MemoryRegion region(1, 64);
  region.AtomicFetchAdd(0, 100);
  region.AtomicFetchAdd(0, static_cast<uint64_t>(-40LL));
  uint64_t now;
  region.DmaRead(0, {reinterpret_cast<uint8_t*>(&now), 8});
  EXPECT_EQ(now, 60u);
}

TEST(MemoryRegionTest, ConcurrentFetchAddIsLossless) {
  MemoryRegion region(1, 64);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) region.AtomicFetchAdd(0, 1);
    });
  }
  for (auto& th : threads) th.join();
  uint64_t now;
  region.DmaRead(0, {reinterpret_cast<uint8_t*>(&now), 8});
  EXPECT_EQ(now, static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(MemoryRegionTest, ConcurrentCasAllocatesDistinctSlots) {
  // CAS-based slot claim: each thread claims slot values until success;
  // every claimed value must be unique.
  MemoryRegion region(1, 64);
  constexpr int kThreads = 4;
  constexpr int kClaims = 200;
  std::vector<std::vector<uint64_t>> claimed(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kClaims; ++i) {
        for (;;) {
          uint64_t current;
          region.DmaRead(0, {reinterpret_cast<uint8_t*>(&current), 8});
          if (region.AtomicCompareSwap(0, current, current + 1) == current) {
            claimed[t].push_back(current);
            break;
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  std::vector<uint64_t> all;
  for (auto& v : claimed) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  for (size_t i = 0; i < all.size(); ++i) EXPECT_EQ(all[i], i);
}

}  // namespace
}  // namespace dhnsw::rdma
