#include "core/compute_node.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "dataset/ground_truth.h"
#include "dataset/synthetic.h"

namespace dhnsw {
namespace {

/// Shared small system: one memory node + engine-built layout; tests attach
/// extra compute nodes with the options they need.
class ComputeNodeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ds_ = new Dataset(MakeSynthetic({.dim = 8, .num_base = 2000, .num_queries = 40,
                                     .num_clusters = 12, .seed = 61}));
    ComputeGroundTruth(ds_, 10);

    DhnswConfig config = DhnswConfig::Defaults();
    config.meta.num_representatives = 24;
    config.sub_hnsw = HnswOptions{.M = 8, .ef_construction = 60};
    config.layout.overflow_bytes_per_group = 8192;
    config.compute.clusters_per_query = 3;
    config.compute.cache_capacity = 6;
    auto engine = DhnswEngine::Build(ds_->base, config);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    engine_ = new DhnswEngine(std::move(engine).value());
  }

  static void TearDownTestSuite() {
    delete engine_;
    delete ds_;
    engine_ = nullptr;
    ds_ = nullptr;
  }

  /// Fresh compute node with custom options on the shared fabric.
  static std::unique_ptr<ComputeNode> Attach(ComputeOptions options) {
    auto node = std::make_unique<ComputeNode>(&engine_->fabric(),
                                              engine_->memory_handle(), options);
    EXPECT_TRUE(node->Connect().ok());
    return node;
  }

  static ComputeOptions BaseOptions(EngineMode mode) {
    ComputeOptions options;
    options.mode = mode;
    options.clusters_per_query = 3;
    options.cache_capacity = 6;
    options.doorbell_batch = 8;
    return options;
  }

  static Dataset* ds_;
  static DhnswEngine* engine_;
};

Dataset* ComputeNodeTest::ds_ = nullptr;
DhnswEngine* ComputeNodeTest::engine_ = nullptr;

TEST_F(ComputeNodeTest, ConnectCachesMetaHnsw) {
  auto node = Attach(BaseOptions(EngineMode::kFull));
  EXPECT_TRUE(node->connected());
  EXPECT_EQ(node->meta().num_partitions(), 24u);
  EXPECT_EQ(node->num_clusters(), 24u);
}

TEST_F(ComputeNodeTest, SearchBeforeConnectFails) {
  ComputeNode node(&engine_->fabric(), engine_->memory_handle(),
                   BaseOptions(EngineMode::kFull));
  EXPECT_EQ(node.SearchAll(ds_->queries, 10, 32).status().code(),
            StatusCode::kUnavailable);
}

TEST_F(ComputeNodeTest, ReasonableRecallOnClusteredData) {
  auto node = Attach(BaseOptions(EngineMode::kFull));
  auto result = node->SearchAll(ds_->queries, 10, 64);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const double recall = MeanRecallAtK(*ds_, result.value().results, 10);
  EXPECT_GT(recall, 0.8) << "recall@10 = " << recall;
}

TEST_F(ComputeNodeTest, AllModesReturnIdenticalResults) {
  // The three schemes differ only in data movement, never in answers.
  auto naive = Attach(BaseOptions(EngineMode::kNaive));
  auto nodb = Attach(BaseOptions(EngineMode::kNoDoorbell));
  auto full = Attach(BaseOptions(EngineMode::kFull));

  auto r_naive = naive->SearchAll(ds_->queries, 10, 48);
  auto r_nodb = nodb->SearchAll(ds_->queries, 10, 48);
  auto r_full = full->SearchAll(ds_->queries, 10, 48);
  ASSERT_TRUE(r_naive.ok());
  ASSERT_TRUE(r_nodb.ok());
  ASSERT_TRUE(r_full.ok());

  for (size_t qi = 0; qi < ds_->queries.size(); ++qi) {
    const auto& a = r_naive.value().results[qi];
    const auto& b = r_nodb.value().results[qi];
    const auto& c = r_full.value().results[qi];
    ASSERT_EQ(a.size(), b.size());
    ASSERT_EQ(a.size(), c.size());
    for (size_t j = 0; j < a.size(); ++j) {
      EXPECT_EQ(a[j].id, b[j].id) << "query " << qi;
      EXPECT_EQ(a[j].id, c[j].id) << "query " << qi;
    }
  }
}

TEST_F(ComputeNodeTest, RoundTripOrderingAcrossModes) {
  // Naive must burn the most round trips; doorbell batching must cut them
  // further below no-doorbell. (Each node refreshes metadata once per batch.)
  auto naive = Attach(BaseOptions(EngineMode::kNaive));
  auto nodb = Attach(BaseOptions(EngineMode::kNoDoorbell));
  auto full = Attach(BaseOptions(EngineMode::kFull));

  const uint64_t rt_naive = naive->SearchAll(ds_->queries, 10, 48).value().breakdown.round_trips;
  const uint64_t rt_nodb = nodb->SearchAll(ds_->queries, 10, 48).value().breakdown.round_trips;
  const uint64_t rt_full = full->SearchAll(ds_->queries, 10, 48).value().breakdown.round_trips;

  EXPECT_GT(rt_naive, rt_nodb);
  EXPECT_GT(rt_nodb, rt_full);
  // Naive: one RT per (query, cluster) pair + 1 metadata refresh.
  EXPECT_EQ(rt_naive, ds_->queries.size() * 3 + 1);
}

TEST_F(ComputeNodeTest, NetworkTimeOrderingAcrossModes) {
  // Simulator contract: the 5x naive/d-HNSW gap reasons about deterministic
  // NicModel charges. On a real socket network_us is measured wall time,
  // where loopback noise under a loaded test machine can compress the
  // ratio — so this test pins its own sim-backed engine instead of the
  // env-respecting shared fixture.
  DhnswConfig config = DhnswConfig::Defaults();
  config.meta.num_representatives = 24;
  config.sub_hnsw = HnswOptions{.M = 8, .ef_construction = 60};
  config.layout.overflow_bytes_per_group = 8192;
  config.compute.clusters_per_query = 3;
  config.compute.cache_capacity = 6;
  config.transport = rdma::TransportOptions::Sim();
  auto engine = DhnswEngine::Build(ds_->base, config);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  auto attach = [&](EngineMode mode) {
    auto node = std::make_unique<ComputeNode>(&engine.value().fabric(),
                                              engine.value().memory_handle(),
                                              BaseOptions(mode));
    EXPECT_TRUE(node->Connect().ok());
    return node;
  };
  auto naive = attach(EngineMode::kNaive);
  auto full = attach(EngineMode::kFull);
  const double net_naive =
      naive->SearchAll(ds_->queries, 10, 48).value().breakdown.network_us;
  const double net_full =
      full->SearchAll(ds_->queries, 10, 48).value().breakdown.network_us;
  EXPECT_GT(net_naive, net_full * 5) << "expected a large naive/d-HNSW gap";
}

TEST_F(ComputeNodeTest, CacheCarriesAcrossBatches) {
  auto node = Attach(BaseOptions(EngineMode::kFull));
  auto first = node->SearchAll(ds_->queries, 10, 32);
  ASSERT_TRUE(first.ok());
  EXPECT_GT(node->cache_size(), 0u);
  // Re-running the same batch: everything it kept resident is a hit.
  auto second = node->SearchAll(ds_->queries, 10, 32);
  ASSERT_TRUE(second.ok());
  EXPECT_GT(second.value().breakdown.cache_hits, 0u);
  EXPECT_LT(second.value().breakdown.clusters_loaded,
            first.value().breakdown.clusters_loaded);
}

TEST_F(ComputeNodeTest, NaiveModeNeverCaches) {
  auto node = Attach(BaseOptions(EngineMode::kNaive));
  ASSERT_TRUE(node->SearchAll(ds_->queries, 10, 32).ok());
  EXPECT_EQ(node->cache_size(), 0u);
}

TEST_F(ComputeNodeTest, InvalidateCacheForcesReload) {
  auto node = Attach(BaseOptions(EngineMode::kFull));
  ASSERT_TRUE(node->SearchAll(ds_->queries, 10, 32).ok());
  node->InvalidateCache();
  EXPECT_EQ(node->cache_size(), 0u);
  auto again = node->SearchAll(ds_->queries, 10, 32);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().breakdown.cache_hits, 0u);
}

TEST_F(ComputeNodeTest, BatchRangeOutOfBoundsFails) {
  auto node = Attach(BaseOptions(EngineMode::kFull));
  EXPECT_FALSE(node->SearchBatch(ds_->queries, 30, 20, 10, 32).ok());
}

TEST_F(ComputeNodeTest, DimMismatchFails) {
  auto node = Attach(BaseOptions(EngineMode::kFull));
  VectorSet wrong(4);
  wrong.Append(std::vector<float>(4, 0.0f));
  EXPECT_FALSE(node->SearchAll(wrong, 10, 32).ok());
}

TEST_F(ComputeNodeTest, BreakdownAccountsAllPhases) {
  auto node = Attach(BaseOptions(EngineMode::kFull));
  auto result = node->SearchAll(ds_->queries, 10, 48);
  ASSERT_TRUE(result.ok());
  const BatchBreakdown& b = result.value().breakdown;
  EXPECT_EQ(b.num_queries, ds_->queries.size());
  EXPECT_GT(b.network_us, 0.0);
  EXPECT_GT(b.meta_us, 0.0);
  EXPECT_GT(b.sub_us, 0.0);
  EXPECT_GT(b.bytes_read, 0u);
  EXPECT_GT(b.round_trips, 0u);
  EXPECT_GT(b.per_query_network_us(), 0.0);
}

TEST_F(ComputeNodeTest, SearchWithThreadsMatchesSequential) {
  ComputeOptions seq = BaseOptions(EngineMode::kFull);
  ComputeOptions par = BaseOptions(EngineMode::kFull);
  par.search_threads = 4;
  auto a = Attach(seq)->SearchAll(ds_->queries, 10, 48);
  auto b = Attach(par)->SearchAll(ds_->queries, 10, 48);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t qi = 0; qi < ds_->queries.size(); ++qi) {
    ASSERT_EQ(a.value().results[qi].size(), b.value().results[qi].size());
    for (size_t j = 0; j < a.value().results[qi].size(); ++j) {
      EXPECT_EQ(a.value().results[qi][j].id, b.value().results[qi][j].id);
    }
  }
}

TEST_F(ComputeNodeTest, UnreachableMemoryNodeSurfacesError) {
  auto node = Attach(BaseOptions(EngineMode::kFull));
  node->InvalidateCache();
  engine_->fabric().SetNodeReachable(engine_->memory_handle().node, false);
  const auto result = node->SearchAll(ds_->queries, 10, 32);
  EXPECT_FALSE(result.ok());
  engine_->fabric().SetNodeReachable(engine_->memory_handle().node, true);
  EXPECT_TRUE(node->SearchAll(ds_->queries, 10, 32).ok());
}

TEST_F(ComputeNodeTest, TinyCacheStillAnswersCorrectly) {
  ComputeOptions options = BaseOptions(EngineMode::kFull);
  options.cache_capacity = 1;  // forces many waves per batch
  auto node = Attach(options);
  auto tiny = node->SearchAll(ds_->queries, 10, 48);
  ASSERT_TRUE(tiny.ok());
  auto big = Attach(BaseOptions(EngineMode::kFull))->SearchAll(ds_->queries, 10, 48);
  ASSERT_TRUE(big.ok());
  for (size_t qi = 0; qi < ds_->queries.size(); ++qi) {
    ASSERT_EQ(tiny.value().results[qi].size(), big.value().results[qi].size());
    for (size_t j = 0; j < tiny.value().results[qi].size(); ++j) {
      EXPECT_EQ(tiny.value().results[qi][j].id, big.value().results[qi][j].id);
    }
  }
}

TEST_F(ComputeNodeTest, InsertedVectorIsFoundByLaterQueries) {
  auto node = Attach(BaseOptions(EngineMode::kFull));

  // A vector far from everything, then queried exactly.
  std::vector<float> outlier(8, 500.0f);
  auto receipt = node->Insert(outlier, /*global_id=*/900001);
  ASSERT_TRUE(receipt.ok()) << receipt.status().ToString();

  VectorSet probe(8);
  probe.Append(outlier);
  auto result = node->SearchAll(probe, 1, 32);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().results[0].size(), 1u);
  EXPECT_EQ(result.value().results[0][0].id, 900001u);
  EXPECT_FLOAT_EQ(result.value().results[0][0].distance, 0.0f);
}

TEST_F(ComputeNodeTest, InsertVisibleToOtherComputeNodes) {
  auto writer = Attach(BaseOptions(EngineMode::kFull));
  auto reader = Attach(BaseOptions(EngineMode::kFull));

  std::vector<float> outlier(8, -400.0f);
  ASSERT_TRUE(writer->Insert(outlier, 900002).ok());

  VectorSet probe(8);
  probe.Append(outlier);
  auto result = reader->SearchAll(probe, 1, 32);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result.value().results[0].empty());
  EXPECT_EQ(result.value().results[0][0].id, 900002u);
}

TEST_F(ComputeNodeTest, InsertDimMismatchFails) {
  auto node = Attach(BaseOptions(EngineMode::kFull));
  EXPECT_FALSE(node->Insert(std::vector<float>(5, 1.0f), 1).ok());
}

TEST_F(ComputeNodeTest, OverflowCapacityExhaustionReportsCapacity) {
  // A dedicated small system with a tiny overflow area.
  Dataset ds = MakeSynthetic({.dim = 8, .num_base = 200, .num_queries = 2,
                              .num_clusters = 2, .seed = 62});
  DhnswConfig config = DhnswConfig::Defaults();
  config.meta.num_representatives = 2;
  config.sub_hnsw = HnswOptions{.M = 4, .ef_construction = 20};
  config.layout.overflow_bytes_per_group = 128;  // fits only a couple records
  auto engine = DhnswEngine::Build(ds.base, config);
  ASSERT_TRUE(engine.ok());

  // record = 8 + 32 = 40 bytes; capacity 128 -> 3 records shared per group.
  std::vector<float> v(8, 1.0f);
  int inserted = 0;
  Status last = Status::Ok();
  for (int i = 0; i < 10; ++i) {
    auto id = engine.value().Insert(v);
    if (id.ok()) {
      ++inserted;
    } else {
      last = id.status();
      break;
    }
  }
  EXPECT_GT(inserted, 0);
  EXPECT_LE(inserted, 3);
  EXPECT_EQ(last.code(), StatusCode::kCapacity);
}

}  // namespace
}  // namespace dhnsw
