#include "common/logging.h"

#include <gtest/gtest.h>

namespace dhnsw {
namespace {

TEST(LoggingTest, LevelRoundTrip) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, MacroCompilesAndRespectsLevel) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  // These must be filtered (no crash, no output assertion needed — the
  // level gate short-circuits before the stream is built).
  DHNSW_LOG(kDebug) << "invisible " << 42;
  DHNSW_LOG(kInfo) << "also invisible";
  SetLogLevel(original);
}

TEST(LoggingTest, EmitsAtOrAboveLevel) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);
  DHNSW_LOG(kWarn) << "one warning line from test_logging (expected)";
  SetLogLevel(original);
}

}  // namespace
}  // namespace dhnsw
