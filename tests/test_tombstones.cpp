// Tombstone deletes + link-overflow-on-load (extensions over the paper's
// insert path; see serialize/overflow.h).
#include <gtest/gtest.h>

#include "core/engine.h"
#include "dataset/ground_truth.h"
#include "dataset/synthetic.h"

namespace dhnsw {
namespace {

DhnswConfig SmallConfig() {
  DhnswConfig config = DhnswConfig::Defaults();
  config.meta.num_representatives = 12;
  config.sub_hnsw = HnswOptions{.M = 8, .ef_construction = 50};
  config.compute.clusters_per_query = 3;
  config.compute.cache_capacity = 4;
  config.layout.overflow_bytes_per_group = 1 << 16;
  return config;
}

Dataset SmallData() {
  return MakeSynthetic({.dim = 8, .num_base = 1200, .num_queries = 20,
                        .num_clusters = 8, .seed = 91});
}

TEST(TombstoneTest, RemovedBaseVectorDisappearsFromResults) {
  Dataset ds = SmallData();
  auto engine = DhnswEngine::Build(ds.base, SmallConfig());
  ASSERT_TRUE(engine.ok());

  // Query for base row 5 exactly: it must be its own nearest neighbor.
  VectorSet probe(8);
  probe.Append(ds.base[5]);
  auto before = engine.value().SearchAll(probe, 1, 48);
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(before.value().results[0][0].id, 5u);

  ASSERT_TRUE(engine.value().Remove(ds.base[5], 5).ok());

  auto after = engine.value().SearchAll(probe, 5, 48);
  ASSERT_TRUE(after.ok());
  for (const Scored& s : after.value().results[0]) {
    EXPECT_NE(s.id, 5u) << "deleted vector still returned";
  }
}

TEST(TombstoneTest, RemovedInsertDisappears) {
  Dataset ds = SmallData();
  auto engine = DhnswEngine::Build(ds.base, SmallConfig());
  ASSERT_TRUE(engine.ok());

  std::vector<float> outlier(8, 777.0f);
  auto id = engine.value().Insert(outlier);
  ASSERT_TRUE(id.ok());

  VectorSet probe(8);
  probe.Append(outlier);
  auto mid = engine.value().SearchAll(probe, 1, 32);
  ASSERT_TRUE(mid.ok());
  ASSERT_EQ(mid.value().results[0][0].id, id.value());

  ASSERT_TRUE(engine.value().Remove(outlier, id.value()).ok());
  auto after = engine.value().SearchAll(probe, 3, 32);
  ASSERT_TRUE(after.ok());
  for (const Scored& s : after.value().results[0]) {
    EXPECT_NE(s.id, id.value());
  }
}

TEST(TombstoneTest, RemoveVisibleAcrossComputeNodes) {
  Dataset ds = SmallData();
  DhnswConfig config = SmallConfig();
  config.num_compute_nodes = 2;
  auto engine = DhnswEngine::Build(ds.base, config);
  ASSERT_TRUE(engine.ok());

  ASSERT_TRUE(engine.value().compute(0).Remove(ds.base[7], 7).ok());

  VectorSet probe(8);
  probe.Append(ds.base[7]);
  auto result = engine.value().compute(1).SearchAll(probe, 5, 48);
  ASSERT_TRUE(result.ok());
  for (const Scored& s : result.value().results[0]) EXPECT_NE(s.id, 7u);
}

TEST(TombstoneTest, RecallUnaffectedForSurvivors) {
  Dataset ds = SmallData();
  ComputeGroundTruth(&ds, 5);
  auto engine = DhnswEngine::Build(ds.base, SmallConfig());
  ASSERT_TRUE(engine.ok());

  // Delete 20 vectors that are NOT ground-truth hits for any query.
  std::set<uint32_t> protected_ids;
  for (size_t qi = 0; qi < ds.queries.size(); ++qi) {
    for (uint32_t gid : ds.GroundTruthFor(qi)) protected_ids.insert(gid);
  }
  uint32_t removed = 0;
  for (uint32_t gid = 0; gid < ds.base.size() && removed < 20; ++gid) {
    if (protected_ids.count(gid)) continue;
    ASSERT_TRUE(engine.value().Remove(ds.base[gid], gid).ok());
    ++removed;
  }

  auto result = engine.value().SearchAll(ds.queries, 5, 64);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(MeanRecallAtK(ds, result.value().results, 5), 0.8);
}

TEST(TombstoneTest, DoubleRemoveIsHarmless) {
  Dataset ds = SmallData();
  auto engine = DhnswEngine::Build(ds.base, SmallConfig());
  ASSERT_TRUE(engine.ok());
  EXPECT_TRUE(engine.value().Remove(ds.base[3], 3).ok());
  EXPECT_TRUE(engine.value().Remove(ds.base[3], 3).ok());  // idempotent effect

  VectorSet probe(8);
  probe.Append(ds.base[3]);
  auto result = engine.value().SearchAll(probe, 5, 48);
  ASSERT_TRUE(result.ok());
  for (const Scored& s : result.value().results[0]) EXPECT_NE(s.id, 3u);
}

TEST(TombstoneTest, LinkOverflowOnLoadMatchesScanMode) {
  Dataset ds = SmallData();
  DhnswConfig scan_config = SmallConfig();
  DhnswConfig link_config = SmallConfig();
  link_config.compute.link_overflow_on_load = true;

  auto scan = DhnswEngine::Build(ds.base, scan_config);
  auto link = DhnswEngine::Build(ds.base, link_config);
  ASSERT_TRUE(scan.ok());
  ASSERT_TRUE(link.ok());

  // Same inserts + removals on both engines.
  Xoshiro256 rng(17);
  for (int i = 0; i < 30; ++i) {
    const size_t src = rng.NextBounded(ds.base.size());
    std::vector<float> v(ds.base[src].begin(), ds.base[src].end());
    v[0] += 0.25f;
    ASSERT_TRUE(scan.value().Insert(v).ok());
    ASSERT_TRUE(link.value().Insert(v).ok());
  }
  ASSERT_TRUE(scan.value().Remove(ds.base[11], 11).ok());
  ASSERT_TRUE(link.value().Remove(ds.base[11], 11).ok());

  auto r_scan = scan.value().SearchAll(ds.queries, 10, 64);
  auto r_link = link.value().SearchAll(ds.queries, 10, 64);
  ASSERT_TRUE(r_scan.ok());
  ASSERT_TRUE(r_link.ok());
  // Linked mode re-runs graph search over the same vector set; with a
  // generous ef both modes must surface (nearly) the same neighbors. Require
  // exact agreement on the top-1 and >=9/10 overlap on the top-10.
  for (size_t qi = 0; qi < ds.queries.size(); ++qi) {
    const auto& a = r_scan.value().results[qi];
    const auto& b = r_link.value().results[qi];
    ASSERT_FALSE(a.empty());
    ASSERT_FALSE(b.empty());
    EXPECT_EQ(a[0].id, b[0].id) << "query " << qi;
    std::set<uint32_t> ids_a, ids_b;
    for (const Scored& s : a) ids_a.insert(s.id);
    size_t overlap = 0;
    for (const Scored& s : b) overlap += ids_a.count(s.id);
    EXPECT_GE(overlap, 9u) << "query " << qi;
  }
}

}  // namespace
}  // namespace dhnsw
