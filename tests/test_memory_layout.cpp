#include "core/memory_layout.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

namespace dhnsw {
namespace {

LayoutConfig SmallConfig(uint64_t overflow = 4096) {
  LayoutConfig config;
  config.overflow_bytes_per_group = overflow;
  config.alignment = 64;
  return config;
}

TEST(MemoryLayoutTest, PlanBasicInvariants) {
  const std::vector<uint64_t> blobs = {1000, 2000, 1500, 800, 3000};
  auto plan = PlanLayout(16, Metric::kL2, 72, 5000, blobs, SmallConfig());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const LayoutPlan& p = plan.value();

  EXPECT_EQ(p.header.num_clusters, 5u);
  EXPECT_EQ(p.header.dim, 16u);
  EXPECT_EQ(p.header.record_size, 72u);
  EXPECT_EQ(p.header.table_offset, RegionHeader::kEncodedSize);
  EXPECT_GE(p.header.meta_blob_offset,
            p.header.table_offset + 5 * ClusterMeta::kEncodedSize);
  EXPECT_EQ(p.header.meta_blob_size, 5000u);
  EXPECT_GT(p.total_size, p.header.meta_blob_offset + 5000);
}

TEST(MemoryLayoutTest, NoRangesOverlap) {
  const std::vector<uint64_t> blobs = {1000, 2000, 1500, 800, 3000, 400, 10000};
  auto plan = PlanLayout(8, Metric::kL2, 40, 2048, blobs, SmallConfig(2048));
  ASSERT_TRUE(plan.ok());
  const LayoutPlan& p = plan.value();

  // Collect every byte range: header, table, meta blob, each cluster's
  // blob + full overflow reach.
  struct R {
    uint64_t begin, end;
    const char* what;
  };
  std::vector<R> ranges;
  ranges.push_back({0, RegionHeader::kEncodedSize, "header"});
  ranges.push_back({p.header.table_offset,
                    p.header.table_offset + blobs.size() * ClusterMeta::kEncodedSize,
                    "table"});
  ranges.push_back({p.header.meta_blob_offset,
                    p.header.meta_blob_offset + p.header.meta_blob_size, "meta"});
  for (size_t c = 0; c < p.entries.size(); ++c) {
    const ClusterMeta& m = p.entries[c];
    ranges.push_back({m.blob_offset, m.blob_offset + m.blob_size, "blob"});
    // A cluster's records can reach at most `overflow_capacity` bytes from
    // its base (forward or backward) — but the capacity is SHARED with the
    // partner, so only check blob ranges + the group's single overflow span.
  }
  std::sort(ranges.begin(), ranges.end(), [](const R& a, const R& b) {
    return a.begin < b.begin;
  });
  for (size_t i = 1; i < ranges.size(); ++i) {
    EXPECT_LE(ranges[i - 1].end, ranges[i].begin)
        << ranges[i - 1].what << " overlaps " << ranges[i].what;
  }
  for (const R& r : ranges) EXPECT_LE(r.end, p.total_size);
}

TEST(MemoryLayoutTest, PairsShareOverflowBetweenThem) {
  const std::vector<uint64_t> blobs = {1000, 2000};
  auto plan = PlanLayout(8, Metric::kL2, 40, 128, blobs, SmallConfig(4096));
  ASSERT_TRUE(plan.ok());
  const ClusterMeta& a = plan.value().entries[0];
  const ClusterMeta& b = plan.value().entries[1];

  EXPECT_EQ(a.direction, OverflowDirection::kForward);
  EXPECT_EQ(b.direction, OverflowDirection::kBackward);
  EXPECT_EQ(a.partner, 1u);
  EXPECT_EQ(b.partner, 0u);
  EXPECT_EQ(a.overflow_capacity, b.overflow_capacity);
  // The shared area lies exactly between blob A's end and blob B's start.
  EXPECT_GE(a.overflow_base, a.blob_offset + a.blob_size);
  EXPECT_EQ(b.overflow_base, b.blob_offset);
  EXPECT_EQ(b.blob_offset - a.overflow_base, a.overflow_capacity);
}

TEST(MemoryLayoutTest, OddClusterCountGetsSoloGroup) {
  const std::vector<uint64_t> blobs = {1000, 2000, 3000};
  auto plan = PlanLayout(8, Metric::kL2, 40, 128, blobs, SmallConfig());
  ASSERT_TRUE(plan.ok());
  const ClusterMeta& last = plan.value().entries[2];
  EXPECT_EQ(last.partner, ClusterMeta::kNoPartner);
  EXPECT_EQ(last.direction, OverflowDirection::kForward);
}

TEST(MemoryLayoutTest, ReadRangeForwardCoversBlobPlusOverflow) {
  ClusterMeta m;
  m.blob_offset = 1000;
  m.blob_size = 500;
  m.overflow_base = 1504;  // aligned past blob end
  m.direction = OverflowDirection::kForward;
  m.record_size = 40;
  const auto range = m.ReadRange(120);
  EXPECT_EQ(range.offset, 1000u);
  // Covers blob (500) + 4 bytes alignment gap + 120 used overflow bytes.
  EXPECT_EQ(range.length, 624u);
  EXPECT_EQ(m.OverflowOffsetInRead(), 504u);
  EXPECT_EQ(m.BlobOffsetInRead(120), 0u);
}

TEST(MemoryLayoutTest, ReadRangeBackwardCoversOverflowPlusBlob) {
  ClusterMeta m;
  m.blob_offset = 8000;
  m.blob_size = 500;
  m.overflow_base = 8000;  // records end where blob starts
  m.direction = OverflowDirection::kBackward;
  m.record_size = 40;
  const auto range = m.ReadRange(80);
  EXPECT_EQ(range.offset, 7920u);
  EXPECT_EQ(range.length, 580u);
  EXPECT_EQ(m.OverflowOffsetInRead(), 0u);
  EXPECT_EQ(m.BlobOffsetInRead(80), 80u);
}

TEST(MemoryLayoutTest, RecordOffsetsAreContiguousForward) {
  ClusterMeta m;
  m.overflow_base = 2000;
  m.direction = OverflowDirection::kForward;
  m.record_size = 48;
  EXPECT_EQ(m.RecordOffset(0), 2000u);
  EXPECT_EQ(m.RecordOffset(48), 2048u);
}

TEST(MemoryLayoutTest, RecordOffsetsAreContiguousBackward) {
  ClusterMeta m;
  m.overflow_base = 2000;
  m.direction = OverflowDirection::kBackward;
  m.record_size = 48;
  EXPECT_EQ(m.RecordOffset(0), 2000u - 48u);
  EXPECT_EQ(m.RecordOffset(48), 2000u - 96u);
  // With used = 96, ReadRange must start exactly at the oldest record.
  m.blob_offset = 2000;
  m.blob_size = 100;
  EXPECT_EQ(m.ReadRange(96).offset, m.RecordOffset(48));
}

TEST(MemoryLayoutTest, UsedCounterOffsetIsEightAligned) {
  const std::vector<uint64_t> blobs = {100, 100, 100};
  auto plan = PlanLayout(8, Metric::kL2, 40, 64, blobs, SmallConfig());
  ASSERT_TRUE(plan.ok());
  for (uint32_t c = 0; c < 3; ++c) {
    EXPECT_EQ(plan.value().UsedCounterOffset(c) % 8, 0u);
  }
}

TEST(MemoryLayoutTest, OverflowAtLeastOneRecord) {
  LayoutConfig tiny;
  tiny.overflow_bytes_per_group = 1;  // pathological
  const std::vector<uint64_t> blobs = {100, 100};
  auto plan = PlanLayout(8, Metric::kL2, 40, 64, blobs, tiny);
  ASSERT_TRUE(plan.ok());
  EXPECT_GE(plan.value().entries[0].overflow_capacity, 40u);
}

TEST(MemoryLayoutTest, RejectsBadArguments) {
  const std::vector<uint64_t> blobs = {100};
  EXPECT_FALSE(PlanLayout(8, Metric::kL2, 40, 0, {}, SmallConfig()).ok());
  EXPECT_FALSE(PlanLayout(8, Metric::kL2, 0, 0, blobs, SmallConfig()).ok());
  EXPECT_FALSE(PlanLayout(8, Metric::kL2, 42, 0, blobs, SmallConfig()).ok());  // not %8
  LayoutConfig bad;
  bad.alignment = 48;  // not a power of two
  EXPECT_FALSE(PlanLayout(8, Metric::kL2, 40, 0, blobs, bad).ok());
}

TEST(MemoryLayoutTest, RegionHeaderCodecRoundTrip) {
  RegionHeader h;
  h.num_clusters = 12;
  h.dim = 128;
  h.metric = static_cast<uint32_t>(Metric::kCosine);
  h.record_size = 520;
  h.table_offset = 64;
  h.meta_blob_offset = 832;
  h.meta_blob_size = 99999;
  h.layout_version = 7;

  std::vector<uint8_t> buf(RegionHeader::kEncodedSize);
  EncodeRegionHeader(h, buf);
  auto back = DecodeRegionHeader(buf);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().num_clusters, 12u);
  EXPECT_EQ(back.value().dim, 128u);
  EXPECT_EQ(back.value().metric, static_cast<uint32_t>(Metric::kCosine));
  EXPECT_EQ(back.value().record_size, 520u);
  EXPECT_EQ(back.value().meta_blob_size, 99999u);
  EXPECT_EQ(back.value().layout_version, 7u);
}

TEST(MemoryLayoutTest, RegionHeaderRejectsBadMagic) {
  RegionHeader h;
  std::vector<uint8_t> buf(RegionHeader::kEncodedSize);
  EncodeRegionHeader(h, buf);
  buf[0] ^= 0xFF;
  EXPECT_FALSE(DecodeRegionHeader(buf).ok());
}

TEST(MemoryLayoutTest, ClusterMetaCodecRoundTrip) {
  ClusterMeta m;
  m.blob_offset = 123456;
  m.blob_size = 7890;
  m.overflow_base = 131346;
  m.overflow_capacity = 1 << 20;
  m.overflow_used = 520 * 3;
  m.direction = OverflowDirection::kBackward;
  m.partner = 42;
  m.record_size = 520;

  std::vector<uint8_t> buf(ClusterMeta::kEncodedSize);
  EncodeClusterMeta(m, buf);
  auto back = DecodeClusterMeta(buf);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().blob_offset, m.blob_offset);
  EXPECT_EQ(back.value().blob_size, m.blob_size);
  EXPECT_EQ(back.value().overflow_base, m.overflow_base);
  EXPECT_EQ(back.value().overflow_capacity, m.overflow_capacity);
  EXPECT_EQ(back.value().overflow_used, m.overflow_used);
  EXPECT_EQ(back.value().direction, OverflowDirection::kBackward);
  EXPECT_EQ(back.value().partner, 42u);
  EXPECT_EQ(back.value().record_size, 520u);
}

TEST(MemoryLayoutTest, UsedFieldLandsAtDocumentedOffset) {
  ClusterMeta m;
  m.overflow_used = 0x1122334455667788ull;
  std::vector<uint8_t> buf(ClusterMeta::kEncodedSize);
  EncodeClusterMeta(m, buf);
  uint64_t raw = 0;
  std::memcpy(&raw, buf.data() + ClusterMeta::kUsedFieldOffset, 8);
  EXPECT_EQ(raw, m.overflow_used);  // little-endian host assumption of tests
}

}  // namespace
}  // namespace dhnsw
