#include "core/memory_node.h"

#include <gtest/gtest.h>

#include "core/partitioner.h"
#include "dataset/synthetic.h"
#include "rdma/queue_pair.h"

namespace dhnsw {
namespace {

struct Provisioned {
  Dataset ds;
  rdma::Fabric fabric;
  std::unique_ptr<MemoryNode> node;
  std::unique_ptr<MetaHnsw> meta;
  Partitioning parts;
};

std::unique_ptr<Provisioned> BuildProvisioned() {
  auto out = std::make_unique<Provisioned>();
  out->ds = MakeSynthetic({.dim = 8, .num_base = 800, .num_queries = 5,
                           .num_clusters = 6, .seed = 31});
  MetaHnswOptions mopts;
  mopts.num_representatives = 16;
  auto meta = MetaHnsw::Build(out->ds.base, mopts);
  EXPECT_TRUE(meta.ok());
  out->meta = std::make_unique<MetaHnsw>(std::move(meta).value());

  PartitionerOptions popts;
  popts.sub_hnsw = HnswOptions{.M = 6, .ef_construction = 30};
  auto parts = PartitionDataset(out->ds.base, *out->meta, popts);
  EXPECT_TRUE(parts.ok());
  out->parts = std::move(parts).value();

  out->node = std::make_unique<MemoryNode>(&out->fabric);
  LayoutConfig layout;
  layout.overflow_bytes_per_group = 4096;
  EXPECT_TRUE(out->node->Provision(*out->meta, out->parts.clusters, layout).ok());
  return out;
}

TEST(MemoryNodeTest, ProvisionPublishesHandle) {
  auto p = BuildProvisioned();
  EXPECT_TRUE(p->node->provisioned());
  EXPECT_NE(p->node->handle().rkey, 0u);
  EXPECT_EQ(p->node->handle().region_size, p->node->plan().total_size);
}

TEST(MemoryNodeTest, DoubleProvisionFails) {
  auto p = BuildProvisioned();
  LayoutConfig layout;
  EXPECT_FALSE(p->node->Provision(*p->meta, p->parts.clusters, layout).ok());
}

TEST(MemoryNodeTest, RegionHeaderIsDecodableViaRdma) {
  auto p = BuildProvisioned();
  SimClock clock;
  rdma::QueuePair qp(&p->fabric, &clock);
  AlignedBuffer buf(RegionHeader::kEncodedSize, 64);
  ASSERT_TRUE(qp.Read(p->node->handle().rkey, 0, buf.span()).ok());
  auto header = DecodeRegionHeader(buf.span());
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header.value().num_clusters, 16u);
  EXPECT_EQ(header.value().dim, 8u);
}

TEST(MemoryNodeTest, MetaBlobIsDecodableViaRdma) {
  auto p = BuildProvisioned();
  SimClock clock;
  rdma::QueuePair qp(&p->fabric, &clock);
  const RegionHeader& h = p->node->plan().header;
  AlignedBuffer buf(h.meta_blob_size, 64);
  ASSERT_TRUE(qp.Read(p->node->handle().rkey, h.meta_blob_offset, buf.span()).ok());
  auto meta = MetaHnsw::FromBlob(buf.span());
  ASSERT_TRUE(meta.ok()) << meta.status().ToString();
  EXPECT_EQ(meta.value().num_partitions(), 16u);
}

TEST(MemoryNodeTest, EveryClusterBlobIsDecodableViaRdma) {
  auto p = BuildProvisioned();
  SimClock clock;
  rdma::QueuePair qp(&p->fabric, &clock);
  for (uint32_t c = 0; c < p->node->plan().entries.size(); ++c) {
    const ClusterMeta& m = p->node->plan().entries[c];
    AlignedBuffer buf(m.blob_size, 64);
    ASSERT_TRUE(qp.Read(p->node->handle().rkey, m.blob_offset, buf.span()).ok());
    auto cluster = DecodeCluster(buf.span(), HnswOptions{});
    ASSERT_TRUE(cluster.ok()) << "cluster " << c << ": " << cluster.status().ToString();
    EXPECT_EQ(cluster.value().partition_id, c);
    EXPECT_EQ(cluster.value().index.size(), p->parts.clusters[c].index.size());
  }
}

TEST(MemoryNodeTest, MetadataTableMatchesPlan) {
  auto p = BuildProvisioned();
  for (uint32_t c = 0; c < p->node->plan().entries.size(); ++c) {
    auto meta = p->node->InspectClusterMeta(c);
    ASSERT_TRUE(meta.ok());
    EXPECT_EQ(meta.value().blob_offset, p->node->plan().entries[c].blob_offset);
    EXPECT_EQ(meta.value().overflow_used, 0u);
  }
  EXPECT_FALSE(p->node->InspectClusterMeta(999).ok());
}

TEST(MemoryNodeTest, ProvisionWithoutClustersFails) {
  auto p = BuildProvisioned();
  rdma::Fabric fabric2;
  MemoryNode node2(&fabric2);
  EXPECT_FALSE(node2.Provision(*p->meta, {}, LayoutConfig{}).ok());
  EXPECT_FALSE(node2.provisioned());
}

}  // namespace
}  // namespace dhnsw
