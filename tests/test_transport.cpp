// Transport subsystem tests (DESIGN.md §14).
//
// Covers backend selection (config + DHNSW_TRANSPORT), the TCP backend's
// one-sided semantics (round trips, doorbell batching, fencing, node
// reachability), the every-backend ArmFaults contract, NicModelConfig JSON
// round-trips for the calibration artifact, and — the core guarantee — that
// a snapshot restored under the TCP backend answers queries bit-identically
// to the simulator.

#include "rdma/transport.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "core/engine.h"
#include "dataset/synthetic.h"
#include "rdma/fabric.h"
#include "rdma/nic_model.h"
#include "rdma/queue_pair.h"
#include "telemetry/trace.h"

namespace dhnsw {
namespace {

using rdma::Fabric;
using rdma::NicModelConfig;
using rdma::ParseTransportKind;
using rdma::TransportKind;
using rdma::TransportKindName;
using rdma::TransportOptions;

TEST(TransportKindTest, ParseAndNameRoundTrip) {
  for (TransportKind kind : {TransportKind::kSim, TransportKind::kTcp,
                             TransportKind::kVerbs}) {
    auto parsed = ParseTransportKind(TransportKindName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), kind);
  }
  EXPECT_EQ(ParseTransportKind("rocev2").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseTransportKind("").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(TransportKindTest, EnvOverrideResolvesOnlyWhenKindUnset) {
  const char* saved = std::getenv("DHNSW_TRANSPORT");
  const std::string saved_copy = saved != nullptr ? saved : "";

  ::setenv("DHNSW_TRANSPORT", "tcp", 1);
  EXPECT_EQ(TransportOptions{}.Resolve(), TransportKind::kTcp);
  // An explicit kind always beats the environment: tests that pin the sim
  // stay on the sim even under DHNSW_TRANSPORT=tcp.
  EXPECT_EQ(TransportOptions::Sim().Resolve(), TransportKind::kSim);

  ::setenv("DHNSW_TRANSPORT", "no-such-backend", 1);
  EXPECT_EQ(TransportOptions{}.Resolve(), TransportKind::kSim);

  ::unsetenv("DHNSW_TRANSPORT");
  EXPECT_EQ(TransportOptions{}.Resolve(), TransportKind::kSim);

  if (saved != nullptr) ::setenv("DHNSW_TRANSPORT", saved_copy.c_str(), 1);
}

TEST(TransportKindTest, VerbsFallsBackWhenNoDevice) {
  TransportOptions options;
  options.kind = TransportKind::kVerbs;
  auto transport = rdma::MakeTransport(options);
  ASSERT_TRUE(transport.ok()) << transport.status().ToString();
  // With ibverbs headers + a device this is kVerbs; everywhere else the
  // factory must degrade to the TCP backend rather than fail.
  const TransportKind kind = transport.value()->kind();
  EXPECT_TRUE(kind == TransportKind::kVerbs || kind == TransportKind::kTcp);
}

/// Fixture owning a TCP-backed fabric with one registered region, mirroring
/// the sim-backed fixture in test_queue_pair.cpp.
class TcpTransportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(fabric_.transport().kind(), TransportKind::kTcp);
    mem_node_ = fabric_.AddNode("mem");
    fabric_.AddNode("compute");
    auto rkey = fabric_.RegisterMemory(mem_node_, kRegionSize);
    ASSERT_TRUE(rkey.ok());
    rkey_ = rkey.value();
  }

  static constexpr size_t kRegionSize = 1 << 20;
  Fabric fabric_{NicModelConfig{}, TransportOptions::Tcp()};
  rdma::NodeId mem_node_ = 0;
  rdma::RKey rkey_ = 0;
  SimClock clock_;
};

TEST_F(TcpTransportTest, WriteThenReadRoundTripsThroughSocket) {
  rdma::QueuePair qp(&fabric_, &clock_);
  std::vector<uint8_t> out(256);
  std::iota(out.begin(), out.end(), uint8_t{1});
  ASSERT_TRUE(qp.Write(rkey_, 4096, out).ok());
  std::vector<uint8_t> in(256, 0);
  ASSERT_TRUE(qp.Read(rkey_, 4096, in).ok());
  EXPECT_EQ(in, out);
  EXPECT_EQ(qp.stats().round_trips, 2u);
  // Real backend: the clock charge is measured wall time, not the NicModel.
  EXPECT_GT(qp.stats().sim_network_ns, 0u);
}

TEST_F(TcpTransportTest, AtomicsExecuteOnTheServerSide) {
  rdma::QueuePair qp(&fabric_, &clock_);
  auto faa = qp.FetchAdd(rkey_, 128, 7);
  ASSERT_TRUE(faa.ok());
  EXPECT_EQ(faa.value(), 0u);  // returns the pre-add value
  faa = qp.FetchAdd(rkey_, 128, 5);
  ASSERT_TRUE(faa.ok());
  EXPECT_EQ(faa.value(), 7u);

  auto cas = qp.CompareSwap(rkey_, 128, /*compare=*/12, /*swap=*/99);
  ASSERT_TRUE(cas.ok());
  EXPECT_EQ(cas.value(), 12u);  // matched: swapped in 99
  cas = qp.CompareSwap(rkey_, 128, /*compare=*/12, /*swap=*/1);
  ASSERT_TRUE(cas.ok());
  EXPECT_EQ(cas.value(), 99u);  // mismatch: returns current value
}

TEST_F(TcpTransportTest, DoorbellBatchIsOneSocketRoundTrip) {
  rdma::QueuePair qp(&fabric_, &clock_, /*max_doorbell_wrs=*/16);
  std::vector<std::vector<uint8_t>> bufs(8, std::vector<uint8_t>(64));
  for (size_t i = 0; i < bufs.size(); ++i) {
    qp.PostRead(rkey_, i * 1024, bufs[i], i);
  }
  EXPECT_EQ(qp.RingDoorbell(), 1u);
  EXPECT_EQ(qp.stats().round_trips, 1u);
  EXPECT_EQ(qp.stats().work_requests, 8u);
  rdma::Completion c;
  size_t completions = 0;
  while (qp.PollCompletion(&c)) {
    EXPECT_EQ(c.status, rdma::WcStatus::kSuccess);
    ++completions;
  }
  EXPECT_EQ(completions, 8u);
}

TEST_F(TcpTransportTest, EpochFenceEnforcedAcrossTheWire) {
  rdma::QueuePair qp(&fabric_, &clock_);
  fabric_.SetRegionEpoch(rkey_, 5);
  std::vector<uint8_t> buf(8, 0);
  EXPECT_FALSE(qp.Read(rkey_, 0, buf, /*expected_epoch=*/4).ok());
  EXPECT_TRUE(qp.Read(rkey_, 0, buf, /*expected_epoch=*/5).ok());
  EXPECT_TRUE(qp.Read(rkey_, 0, buf).ok());  // epoch 0 = unfenced op

  fabric_.RevokeRegion(rkey_);
  EXPECT_FALSE(qp.Read(rkey_, 0, buf, /*expected_epoch=*/5).ok());
}

TEST_F(TcpTransportTest, UnreachableNodeFailsThenRecovers) {
  rdma::QueuePair qp(&fabric_, &clock_);
  std::vector<uint8_t> buf(8, 0);
  fabric_.SetNodeReachable(mem_node_, false);
  EXPECT_FALSE(qp.Read(rkey_, 0, buf).ok());
  fabric_.SetNodeReachable(mem_node_, true);
  EXPECT_TRUE(qp.Read(rkey_, 0, buf).ok());
}

TEST_F(TcpTransportTest, TwoTcpFabricsCoexistOnEphemeralPorts) {
  // Both bind port 0; a fixed port here would collide under parallel ctest.
  Fabric other(NicModelConfig{}, TransportOptions::Tcp());
  ASSERT_EQ(other.transport().kind(), TransportKind::kTcp);
  const rdma::NodeId node = other.AddNode("mem2");
  auto rkey = other.RegisterMemory(node, 4096);
  ASSERT_TRUE(rkey.ok());

  SimClock clock2;
  rdma::QueuePair qp1(&fabric_, &clock_);
  rdma::QueuePair qp2(&other, &clock2);
  std::vector<uint8_t> a(16, 0xAA);
  std::vector<uint8_t> b(16, 0xBB);
  ASSERT_TRUE(qp1.Write(rkey_, 0, a).ok());
  ASSERT_TRUE(qp2.Write(rkey.value(), 0, b).ok());
  std::vector<uint8_t> back(16, 0);
  ASSERT_TRUE(qp2.Read(rkey.value(), 0, back).ok());
  EXPECT_EQ(back, b);
}

TEST(TransportFaultTest, ArmFaultsWorksOnEveryBackend) {
  // Since the chaos decorator landed, FaultPlans arm on real transports too:
  // the sim evaluates per-WR in its backend, real backends through
  // ChaosChannel (tests/test_chaos_transport.cpp covers the semantics).
  rdma::FaultPlan plan(42);
  rdma::FaultRule rule;
  rule.kind = rdma::FaultKind::kUnreachable;
  plan.Add(rule);

  Fabric sim(NicModelConfig{}, TransportOptions::Sim());
  EXPECT_TRUE(sim.ArmFaults(plan).ok());
  sim.ClearFaults();

  Fabric tcp(NicModelConfig{}, TransportOptions::Tcp());
  EXPECT_TRUE(tcp.ArmFaults(plan).ok());
  EXPECT_NE(tcp.fault_plan(), nullptr);
  tcp.ClearFaults();
  EXPECT_EQ(tcp.fault_plan(), nullptr);
}

TEST(NicModelJsonTest, CalibrationArtifactRoundTrips) {
  NicModelConfig config;
  EXPECT_EQ(config.source, "connectx6-datasheet");

  config.base_round_trip_ns = 2345;
  config.bandwidth_gbps = 87.5;
  config.per_wr_dma_ns = 199;
  config.doorbell_linear_limit = 24;
  config.doorbell_saturated_ns = 777;
  config.atomic_extra_ns = 512;
  config.source = "calibrated-tcp";

  auto loaded = NicModelConfig::LoadFromJson(config.ToJson());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().base_round_trip_ns, 2345u);
  EXPECT_DOUBLE_EQ(loaded.value().bandwidth_gbps, 87.5);
  EXPECT_EQ(loaded.value().per_wr_dma_ns, 199u);
  EXPECT_EQ(loaded.value().doorbell_linear_limit, 24u);
  EXPECT_EQ(loaded.value().doorbell_saturated_ns, 777u);
  EXPECT_EQ(loaded.value().atomic_extra_ns, 512u);
  EXPECT_EQ(loaded.value().source, "calibrated-tcp");
}

TEST(NicModelJsonTest, MalformedJsonIsRejected) {
  EXPECT_FALSE(NicModelConfig::LoadFromJson("not json at all").ok());
  // Absent keys keep their defaults (forward-compatible artifact loading)...
  auto empty = NicModelConfig::LoadFromJson("{}");
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty.value().base_round_trip_ns, NicModelConfig{}.base_round_trip_ns);
  // ...but a present key with a garbage value is an error.
  EXPECT_FALSE(
      NicModelConfig::LoadFromJson("{\"base_round_trip_ns\":\"fast\"}").ok());
  EXPECT_FALSE(
      NicModelConfig::LoadFromJson(
          "{\"base_round_trip_ns\":1,\"bandwidth_gbps\":0,\"per_wr_dma_ns\":1,"
          "\"doorbell_linear_limit\":1,\"doorbell_saturated_ns\":1,"
          "\"atomic_extra_ns\":1,\"source\":\"x\"}")
          .ok());
}

// ---------------------------------------------------------------------------
// Differential suite: the TCP backend must answer bit-identically to the sim
// for the same built index. Build once under the sim, snapshot, then restore
// the same bytes under each backend and compare every result id + distance.
// ---------------------------------------------------------------------------

DhnswConfig DifferentialConfig(TransportKind kind) {
  DhnswConfig config = DhnswConfig::Defaults();
  config.meta.num_representatives = 8;
  config.sub_hnsw = HnswOptions{.M = 8, .ef_construction = 50};
  config.compute.clusters_per_query = 3;
  config.compute.cache_capacity = 4;
  config.transport.kind = kind;
  return config;
}

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(TransportDifferentialTest, TcpRestoreAnswersBitIdenticallyToSim) {
  Dataset ds = MakeSynthetic({.dim = 8, .num_base = 800, .num_queries = 16,
                              .num_clusters = 6, .seed = 808});
  auto built =
      DhnswEngine::Build(ds.base, DifferentialConfig(TransportKind::kSim));
  ASSERT_TRUE(built.ok()) << built.status().ToString();

  const std::string path = TempPath("transport_diff.dsnp");
  ASSERT_TRUE(built.value().SaveSnapshot(path).ok());
  const auto num_base = static_cast<uint32_t>(ds.base.size());

  auto sim = DhnswEngine::BuildFromSnapshot(
      path, DifferentialConfig(TransportKind::kSim), num_base);
  ASSERT_TRUE(sim.ok()) << sim.status().ToString();
  auto tcp = DhnswEngine::BuildFromSnapshot(
      path, DifferentialConfig(TransportKind::kTcp), num_base);
  ASSERT_TRUE(tcp.ok()) << tcp.status().ToString();
  ASSERT_EQ(tcp.value().fabric().transport().kind(), TransportKind::kTcp);

  auto r_sim = sim.value().SearchAll(ds.queries, 5, 48);
  auto r_tcp = tcp.value().SearchAll(ds.queries, 5, 48);
  ASSERT_TRUE(r_sim.ok()) << r_sim.status().ToString();
  ASSERT_TRUE(r_tcp.ok()) << r_tcp.status().ToString();
  ASSERT_EQ(r_sim.value().results.size(), r_tcp.value().results.size());
  for (size_t qi = 0; qi < r_sim.value().results.size(); ++qi) {
    const auto& a = r_sim.value().results[qi];
    const auto& b = r_tcp.value().results[qi];
    ASSERT_EQ(a.size(), b.size()) << "query " << qi;
    for (size_t j = 0; j < a.size(); ++j) {
      EXPECT_EQ(a[j].id, b[j].id) << "query " << qi << " rank " << j;
      EXPECT_EQ(a[j].distance, b[j].distance) << "query " << qi << " rank " << j;
    }
  }

  // Mutation path: the same insert lands identically through either backend
  // (exercises WRITE payloads and the overflow FAA over the socket).
  std::vector<float> outlier(8, 123.0f);
  auto id_sim = sim.value().Insert(outlier);
  auto id_tcp = tcp.value().Insert(outlier);
  ASSERT_TRUE(id_sim.ok()) << id_sim.status().ToString();
  ASSERT_TRUE(id_tcp.ok()) << id_tcp.status().ToString();
  EXPECT_EQ(id_sim.value(), id_tcp.value());

  VectorSet probe(8);
  probe.Append(outlier);
  auto p_sim = sim.value().SearchAll(probe, 1, 32);
  auto p_tcp = tcp.value().SearchAll(probe, 1, 32);
  ASSERT_TRUE(p_sim.ok());
  ASSERT_TRUE(p_tcp.ok());
  ASSERT_FALSE(p_sim.value().results[0].empty());
  ASSERT_FALSE(p_tcp.value().results[0].empty());
  EXPECT_EQ(p_sim.value().results[0][0].id, id_sim.value());
  EXPECT_EQ(p_tcp.value().results[0][0].id, id_tcp.value());

  std::remove(path.c_str());
}

TEST(TransportDifferentialTest, TraceSpansCarryTransportLabelOnTcpOnly) {
  Dataset ds = MakeSynthetic({.dim = 8, .num_base = 400, .num_queries = 4,
                              .num_clusters = 4, .seed = 909});

  auto run = [&](TransportKind kind) -> std::string {
    auto engine = DhnswEngine::Build(ds.base, DifferentialConfig(kind));
    EXPECT_TRUE(engine.ok()) << engine.status().ToString();
    engine.value().compute(0).EnableTracing(512);
    auto r = engine.value().SearchAll(ds.queries, 3, 32);
    EXPECT_TRUE(r.ok());
    return telemetry::TraceToJsonl(engine.value().compute(0).trace());
  };

  const std::string sim_trace = run(TransportKind::kSim);
  const std::string tcp_trace = run(TransportKind::kTcp);
  ASSERT_FALSE(sim_trace.empty());
  ASSERT_FALSE(tcp_trace.empty());
  // Sim traces stay byte-compatible with the pre-transport format: no label.
  EXPECT_EQ(sim_trace.find("\"transport\""), std::string::npos);
  EXPECT_NE(tcp_trace.find("\"transport\":\"tcp\""), std::string::npos);
}

}  // namespace
}  // namespace dhnsw
