// Parallel bulk-build suite: level-sequence parity, sequential-fallback graph
// identity, recall parity of batch-parallel insertion, shrink stress under
// small degree caps, deterministic-mode byte identity across thread counts
// (engine + provision), and the DHNSW_DETERMINISTIC_BUILD env gate.
//
// Run under TSan (the CI build-parallel job does) these tests double as the
// data-race check for the per-node locking discipline.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/engine.h"
#include "core/memory_node.h"
#include "core/meta_hnsw.h"
#include "core/partitioner.h"
#include "dataset/ground_truth.h"
#include "dataset/synthetic.h"
#include "index/hnsw.h"

namespace dhnsw {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<char> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

std::vector<float> FlatRows(const VectorSet& set) {
  return std::vector<float>(set.flat().begin(), set.flat().end());
}

TEST(ParallelBuildTest, BatchLevelSequenceMatchesSequentialDraw) {
  const Dataset ds = MakeSynthetic({.dim = 8, .num_base = 1500, .num_queries = 1,
                                    .num_clusters = 10, .seed = 11});
  const HnswOptions options{.M = 8, .ef_construction = 40, .seed = 99};

  HnswIndex sequential(8, options);
  for (size_t i = 0; i < ds.base.size(); ++i) sequential.Add(ds.base[i]);

  ThreadPool pool(8);
  HnswIndex parallel(8, options);
  const std::vector<float> rows = FlatRows(ds.base);
  parallel.AddBatchParallel(rows, ds.base.size(), &pool);

  ASSERT_EQ(parallel.size(), sequential.size());
  for (uint32_t id = 0; id < parallel.size(); ++id) {
    ASSERT_EQ(parallel.level(id), sequential.level(id)) << "id " << id;
  }
  EXPECT_TRUE(parallel.Validate().ok()) << parallel.Validate().ToString();
}

TEST(ParallelBuildTest, NullPoolFallbackReproducesSequentialGraphExactly) {
  const Dataset ds = MakeSynthetic({.dim = 8, .num_base = 600, .num_queries = 1,
                                    .num_clusters = 6, .seed = 12});
  const HnswOptions options{.M = 6, .ef_construction = 30, .seed = 7};

  HnswIndex sequential(8, options);
  for (size_t i = 0; i < ds.base.size(); ++i) sequential.Add(ds.base[i]);

  HnswIndex fallback(8, options);
  const std::vector<float> rows = FlatRows(ds.base);
  fallback.AddBatchParallel(rows, ds.base.size(), nullptr);

  ASSERT_EQ(fallback.size(), sequential.size());
  EXPECT_EQ(fallback.entry_point(), sequential.entry_point());
  for (uint32_t id = 0; id < fallback.size(); ++id) {
    ASSERT_EQ(fallback.level(id), sequential.level(id));
    for (uint32_t layer = 0; layer <= fallback.level(id); ++layer) {
      const auto a = fallback.neighbors(id, layer);
      const auto b = sequential.neighbors(id, layer);
      ASSERT_EQ(std::vector<uint32_t>(a.begin(), a.end()),
                std::vector<uint32_t>(b.begin(), b.end()))
          << "id " << id << " layer " << layer;
    }
  }
}

TEST(ParallelBuildTest, BatchParallelRecallParityWithSequential) {
  Dataset ds = MakeSynthetic({.dim = 16, .num_base = 2000, .num_queries = 40,
                              .num_clusters = 12, .seed = 13});
  ComputeGroundTruth(&ds, 10);
  const HnswOptions options{.M = 16, .ef_construction = 200, .seed = 5};

  HnswIndex sequential(16, options);
  for (size_t i = 0; i < ds.base.size(); ++i) sequential.Add(ds.base[i]);

  ThreadPool pool(8);
  HnswIndex parallel(16, options);
  const std::vector<float> rows = FlatRows(ds.base);
  parallel.AddBatchParallel(rows, ds.base.size(), &pool);
  ASSERT_TRUE(parallel.Validate().ok()) << parallel.Validate().ToString();

  // Generous ef so both graphs saturate; parity is the claim, not a race.
  auto mean_recall = [&](const HnswIndex& index) {
    double sum = 0.0;
    for (size_t qi = 0; qi < ds.queries.size(); ++qi) {
      const auto found = index.Search(ds.queries[qi], 10, 200);
      sum += RecallAtK(found, ds.GroundTruthFor(qi), 10);
    }
    return sum / static_cast<double>(ds.queries.size());
  };
  const double seq = mean_recall(sequential);
  const double par = mean_recall(parallel);
  EXPECT_GT(seq, 0.95);
  EXPECT_GT(par, 0.95);
  EXPECT_NEAR(seq, par, 0.03);
}

TEST(ParallelBuildTest, ShrinkStressSmallDegreeCapStaysValid) {
  // M = 4 makes every layer-0 list overflow constantly, hammering the
  // back-link shrink path from 8 threads at once.
  const Dataset ds = MakeSynthetic({.dim = 8, .num_base = 3000, .num_queries = 5,
                                    .num_clusters = 20, .seed = 14});
  ThreadPool pool(8);
  HnswIndex index(8, HnswOptions{.M = 4, .ef_construction = 30, .seed = 3});
  const std::vector<float> rows = FlatRows(ds.base);
  index.AddBatchParallel(rows, ds.base.size(), &pool);

  ASSERT_TRUE(index.Validate().ok()) << index.Validate().ToString();
  // The graph must still answer queries (no orphaned entry point etc.).
  for (size_t qi = 0; qi < ds.queries.size(); ++qi) {
    EXPECT_EQ(index.Search(ds.queries[qi], 10, 64).size(), 10u);
  }
}

DhnswConfig ParallelConfig() {
  DhnswConfig config = DhnswConfig::Defaults();
  config.meta.num_representatives = 16;
  config.sub_hnsw = HnswOptions{.M = 8, .ef_construction = 50};
  config.compute.clusters_per_query = 4;
  config.pq.enabled = true;
  config.pq.m = 4;
  config.transport.kind = rdma::TransportKind::kSim;
  return config;
}

TEST(ParallelBuildTest, DeterministicModeSnapshotBytesIdenticalAcrossThreadCounts) {
  const Dataset ds = MakeSynthetic({.dim = 16, .num_base = 2000, .num_queries = 5,
                                    .num_clusters = 10, .seed = 15});
  auto snapshot_with = [&](size_t threads, const char* name) {
    DhnswConfig config = ParallelConfig();
    config.build_threads = threads;
    config.deterministic_build = true;
    auto engine = DhnswEngine::Build(ds.base, config);
    EXPECT_TRUE(engine.ok()) << engine.status().ToString();
    const std::string path = TempPath(name);
    EXPECT_TRUE(engine.value().SaveSnapshot(path).ok());
    auto bytes = ReadFileBytes(path);
    std::remove(path.c_str());
    return bytes;
  };
  const auto t1 = snapshot_with(1, "det_t1.dsnp");
  const auto t2 = snapshot_with(2, "det_t2.dsnp");
  const auto t8 = snapshot_with(8, "det_t8.dsnp");
  ASSERT_FALSE(t1.empty());
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t1, t8);
}

TEST(ParallelBuildTest, DeterministicEnvVarForcesReproducibleBuild) {
  const Dataset ds = MakeSynthetic({.dim = 16, .num_base = 1500, .num_queries = 5,
                                    .num_clusters = 8, .seed = 16});
  auto snapshot = [&](DhnswConfig config, const char* name) {
    auto engine = DhnswEngine::Build(ds.base, config);
    EXPECT_TRUE(engine.ok()) << engine.status().ToString();
    const std::string path = TempPath(name);
    EXPECT_TRUE(engine.value().SaveSnapshot(path).ok());
    auto bytes = ReadFileBytes(path);
    std::remove(path.c_str());
    return bytes;
  };

  DhnswConfig reference = ParallelConfig();
  reference.build_threads = 1;
  reference.deterministic_build = true;
  const auto expected = snapshot(reference, "env_ref.dsnp");

  // 8 threads, few partitions: without the gate this takes the intra-graph
  // (nondeterministic) path; the env var must force it back to sequential.
  DhnswConfig gated = ParallelConfig();
  gated.meta.num_representatives = 4;
  gated.build_threads = 8;
  gated.deterministic_build = false;
  DhnswConfig gated_ref = gated;
  gated_ref.build_threads = 1;
  gated_ref.deterministic_build = true;

  ::setenv("DHNSW_DETERMINISTIC_BUILD", "1", 1);
  const auto gated_bytes = snapshot(gated, "env_gated.dsnp");
  ::unsetenv("DHNSW_DETERMINISTIC_BUILD");
  const auto gated_expected = snapshot(gated_ref, "env_gated_ref.dsnp");

  ASSERT_FALSE(expected.empty());
  EXPECT_EQ(gated_bytes, gated_expected);
}

TEST(ParallelBuildTest, FastModeEngineRecallParity) {
  // 4 partitions, 8 build threads: the partitioner takes the intra-graph
  // batch-parallel path. Fast mode must match the deterministic build's
  // recall (the documented parity claim), not its bytes.
  Dataset ds = MakeSynthetic({.dim = 16, .num_base = 3000, .num_queries = 40,
                              .num_clusters = 10, .seed = 17});
  ComputeGroundTruth(&ds, 10);

  auto recall_with = [&](bool deterministic) {
    DhnswConfig config = ParallelConfig();
    config.pq.enabled = false;
    config.meta.num_representatives = 4;
    config.compute.clusters_per_query = 3;
    config.sub_hnsw = HnswOptions{.M = 16, .ef_construction = 150};
    config.build_threads = 8;
    config.deterministic_build = deterministic;
    auto engine = DhnswEngine::Build(ds.base, config);
    EXPECT_TRUE(engine.ok()) << engine.status().ToString();
    auto result = engine.value().SearchAll(ds.queries, 10, 150);
    EXPECT_TRUE(result.ok());
    return MeanRecallAtK(ds, result.value().results, 10);
  };
  const double det = recall_with(true);
  const double fast = recall_with(false);
  EXPECT_GT(det, 0.9);
  EXPECT_GT(fast, 0.9);
  EXPECT_NEAR(det, fast, 0.03);
}

TEST(ParallelBuildTest, ProvisionParallelEncodeBytesMatchSequential) {
  const Dataset ds = MakeSynthetic({.dim = 16, .num_base = 1200, .num_queries = 2,
                                    .num_clusters = 8, .seed = 18});
  MetaHnswOptions mopts;
  mopts.num_representatives = 12;
  auto meta = MetaHnsw::Build(ds.base, mopts);
  ASSERT_TRUE(meta.ok());
  // PQ codebook so the parallel encode also covers the codes sections.
  {
    std::vector<float> samples(ds.base.flat().begin(),
                               ds.base.flat().begin() + 512 * 16);
    auto q = ProductQuantizer::Train(16, 4, samples, 4, 42);
    ASSERT_TRUE(q.ok());
    meta.value().set_quantizer(std::move(q).value());
  }
  PartitionerOptions popts;
  popts.sub_hnsw = HnswOptions{.M = 6, .ef_construction = 30};
  auto parts = PartitionDataset(ds.base, meta.value(), popts);
  ASSERT_TRUE(parts.ok());

  auto provision_bytes = [&](size_t encode_threads) {
    rdma::Fabric fabric;
    MemoryNode node(&fabric);
    LayoutConfig layout;
    layout.overflow_bytes_per_group = 4096;
    Status st = node.Provision(meta.value(), parts.value().clusters, layout,
                               /*layout_version=*/0, /*num_shards=*/2, encode_threads);
    EXPECT_TRUE(st.ok()) << st.ToString();
    std::vector<char> all;
    for (uint32_t s = 0; s < node.handle().num_shards(); ++s) {
      rdma::MemoryRegion* region = fabric.FindRegion(node.handle().rkey_for_slot(s));
      EXPECT_NE(region, nullptr);
      const auto span = region->host_span();
      all.insert(all.end(), span.begin(), span.end());
    }
    return all;
  };
  const auto seq = provision_bytes(1);
  const auto par = provision_bytes(4);
  ASSERT_FALSE(seq.empty());
  EXPECT_EQ(seq, par);
}

}  // namespace
}  // namespace dhnsw
