#include "chaos_harness.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/rng.h"

namespace dhnsw {
namespace {

/// Hard failure helper for the harness constructor (runs outside any gtest
/// assertion scope; must not be compiled away in Release like assert()).
void CheckOk(const Status& status, const char* what) {
  if (status.ok()) return;
  std::fprintf(stderr, "ChaosHarness: %s failed: %s\n", what,
               status.message().c_str());
  std::abort();
}

DhnswConfig MakeConfig(const ChaosHarness::Config& c) {
  DhnswConfig config = DhnswConfig::Defaults();
  config.meta.num_representatives = c.num_clusters;  // one partition per rep
  config.compute.mode = c.mode;
  config.compute.clusters_per_query = c.clusters_per_query;
  config.compute.cache_capacity = c.num_clusters;  // one cold load per cluster
  config.replication.factor = c.replication_factor;
  config.num_compute_nodes = c.num_compute_nodes;
  // FaultPlans arm on every backend since the chaos decorator landed, so the
  // harness follows DHNSW_TRANSPORT by default (content-oracle suites hold
  // on real sockets too). Suites that byte-compare simulated time pin Sim()
  // through this knob.
  config.transport = c.transport;
  return config;
}

}  // namespace

ChaosHarness::ChaosHarness(Config config)
    : config_(config),
      dataset_(MakeSynthetic({.dim = config.dim,
                              .num_base = config.num_base,
                              .num_queries = config.num_queries,
                              .num_clusters = config.num_clusters,
                              .seed = config.data_seed})) {
  auto built = DhnswEngine::Build(dataset_.base, MakeConfig(config_));
  CheckOk(built.status(), "engine build");
  engine_.emplace(std::move(built).value());

  auto clean = engine_->SearchAll(dataset_.queries, config_.k, config_.ef_search);
  CheckOk(clean.status(), "baseline search");
  baseline_ = std::move(clean).value();
}

Result<BatchResult> ChaosHarness::RunUnderPlan(const rdma::FaultPlan& plan,
                                               const RetryPolicy& retry,
                                               bool partial_results) {
  ComputeNode& node = engine_->compute(0);
  node.InvalidateCache();  // every cluster must cross the (faulty) wire again
  ComputeOptions* opts = node.mutable_options();
  opts->retry = retry;
  opts->partial_results = partial_results;

  DHNSW_RETURN_IF_ERROR(engine_->fabric().ArmFaults(plan));  // fresh injector state per run
  auto result = node.SearchAll(dataset_.queries, config_.k, config_.ef_search);
  engine_->fabric().ClearFaults();

  opts->retry = RetryPolicy::Disabled();
  opts->partial_results = false;
  return result;
}

rdma::FaultPlan ChaosHarness::MakeTransientPlan(uint64_t seed) const {
  // Bit-flips must stay clear of the metadata table: its per-entry CRC skips
  // the FAA-mutated `overflow_used` counter, so a flip there would be silent.
  // Everything at or past the first cluster blob is CRC-protected (blob
  // payload, overflow records) or dead padding — detected or harmless.
  const LayoutPlan& plan = engine_->memory_node()->plan();
  uint64_t blob_area = UINT64_MAX;
  for (const ClusterMeta& e : plan.entries) {
    blob_area = std::min(blob_area, e.blob_offset);
  }

  Xoshiro256 rng(seed * 0x9e3779b97f4a7c15ULL + 0x5bf0);
  rdma::FaultPlan fault_plan(seed);
  uint64_t budget = kTransientTriggerBudget;
  const uint64_t num_rules = 3 + rng.NextBounded(2);
  for (uint64_t i = 0; i < num_rules && budget > 0; ++i) {
    rdma::FaultRule rule;
    rule.opcode = rdma::Opcode::kRead;  // search path is read-only
    rule.max_triggers = 1 + rng.NextBounded(std::min<uint64_t>(2, budget));
    budget -= rule.max_triggers;
    rule.skip_first = rng.NextBounded(4);
    if (rng.NextBounded(2) == 1) rule.every_nth = 1 + rng.NextBounded(3);
    switch (rng.NextBounded(4)) {
      case 0:
        rule.kind = rdma::FaultKind::kUnreachable;
        break;
      case 1:
        rule.kind = rdma::FaultKind::kTimeout;
        rule.delay_ns = 10'000 + rng.NextBounded(90'000);
        break;
      case 2:
        rule.kind = rdma::FaultKind::kBitFlip;
        rule.offset_lo = blob_area;
        rule.bit_flips = 1 + static_cast<uint32_t>(rng.NextBounded(3));
        break;
      default:
        rule.kind = rdma::FaultKind::kDelay;
        rule.delay_ns = 5'000 + rng.NextBounded(45'000);
        break;
    }
    fault_plan.Add(rule);
  }
  return fault_plan;
}

rdma::FaultPlan ChaosHarness::MakePermanentPlan(uint32_t* victim) {
  // Kill the byte range of one cluster's blob: its loads fail forever while
  // the header/table/meta-HNSW (and every other cluster) stay reachable.
  // Pick the cluster the most queries route to, so the schedule provably
  // exercises the partial-result path.
  std::vector<uint32_t> hits(engine_->num_partitions(), 0);
  for (size_t qi = 0; qi < dataset_.queries.size(); ++qi) {
    for (uint32_t c : RoutesOf(qi)) ++hits[c];
  }
  const uint32_t target = static_cast<uint32_t>(
      std::max_element(hits.begin(), hits.end()) - hits.begin());
  if (victim != nullptr) *victim = target;

  const ClusterMeta& meta = engine_->memory_node()->plan().entries[target];
  rdma::FaultRule rule;
  rule.kind = rdma::FaultKind::kUnreachable;
  rule.opcode = rdma::Opcode::kRead;
  rule.offset_lo = meta.blob_offset;
  rule.offset_hi = meta.blob_offset + meta.blob_size;
  // max_triggers stays UINT64_MAX: permanent outage.
  return rdma::FaultPlan(target).Add(rule);
}

rdma::FaultPlan ChaosHarness::MakeKillPrimaryPlan(uint64_t skip_first, uint32_t slot) const {
  const ReplicaManager* manager = engine_->replication();
  const rdma::RKey primary = manager != nullptr
                                 ? manager->PrimaryRoute(slot).rkey
                                 : engine_->memory_handle().rkey_for_slot(slot);
  rdma::FaultRule rule;
  rule.kind = rdma::FaultKind::kUnreachable;
  rule.rkey = primary;  // every verb against the region, probes included
  rule.skip_first = skip_first;
  // max_triggers stays UINT64_MAX: the crashed node never comes back. (Its
  // rkey is revoked at failover anyway; see Fabric::RevokeRegion.)
  return rdma::FaultPlan(slot).Add(rule);
}

std::vector<uint32_t> ChaosHarness::RoutesOf(size_t qi) {
  return engine_->compute(0).meta().RouteMany(dataset_.queries[qi],
                                              config_.clusters_per_query);
}

bool SameResults(const BatchResult& a, const BatchResult& b) {
  if (a.results.size() != b.results.size()) return false;
  for (size_t i = 0; i < a.results.size(); ++i) {
    if (a.results[i].size() != b.results[i].size()) return false;
    for (size_t j = 0; j < a.results[i].size(); ++j) {
      if (a.results[i][j].id != b.results[i][j].id) return false;
      if (a.results[i][j].distance != b.results[i][j].distance) return false;
    }
  }
  return true;
}

}  // namespace dhnsw
