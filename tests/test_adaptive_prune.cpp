// Adaptive cluster pruning (ComputeOptions::adaptive_prune_factor).
#include <gtest/gtest.h>

#include "core/engine.h"
#include "dataset/ground_truth.h"
#include "dataset/synthetic.h"

namespace dhnsw {
namespace {

class AdaptivePruneTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ds_ = new Dataset(MakeSynthetic({.dim = 16, .num_base = 3000, .num_queries = 40,
                                     .num_clusters = 15, .seed = 181}));
    ComputeGroundTruth(ds_, 10);
    DhnswConfig config = DhnswConfig::Defaults();
    config.meta.num_representatives = 30;
    config.sub_hnsw = HnswOptions{.M = 8, .ef_construction = 60};
    config.compute.clusters_per_query = 6;
    config.compute.cache_capacity = 30;
    auto engine = DhnswEngine::Build(ds_->base, config);
    ASSERT_TRUE(engine.ok());
    engine_ = new DhnswEngine(std::move(engine).value());
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete ds_;
  }

  static std::unique_ptr<ComputeNode> Attach(double prune_factor) {
    ComputeOptions options;
    options.clusters_per_query = 6;
    options.cache_capacity = 30;
    options.adaptive_prune_factor = prune_factor;
    auto node = std::make_unique<ComputeNode>(&engine_->fabric(),
                                              engine_->memory_handle(), options);
    EXPECT_TRUE(node->Connect().ok());
    return node;
  }

  static Dataset* ds_;
  static DhnswEngine* engine_;
};

Dataset* AdaptivePruneTest::ds_ = nullptr;
DhnswEngine* AdaptivePruneTest::engine_ = nullptr;

TEST_F(AdaptivePruneTest, DisabledMeansNoPruning) {
  auto node = Attach(0.0);
  auto result = node->SearchAll(ds_->queries, 10, 48);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().breakdown.pruned_searches, 0u);
  EXPECT_EQ(result.value().breakdown.pruned_loads, 0u);
}

TEST_F(AdaptivePruneTest, HugeFactorChangesNothing) {
  auto off = Attach(0.0);
  auto lax = Attach(1e9);
  auto r_off = off->SearchAll(ds_->queries, 10, 48);
  auto r_lax = lax->SearchAll(ds_->queries, 10, 48);
  ASSERT_TRUE(r_off.ok());
  ASSERT_TRUE(r_lax.ok());
  for (size_t qi = 0; qi < ds_->queries.size(); ++qi) {
    const auto& a = r_off.value().results[qi];
    const auto& b = r_lax.value().results[qi];
    ASSERT_EQ(a.size(), b.size());
    for (size_t j = 0; j < a.size(); ++j) EXPECT_EQ(a[j].id, b[j].id);
  }
}

TEST_F(AdaptivePruneTest, AggressiveFactorPrunesWork) {
  // factor << 1: prune clusters whose *lower bound* (rep distance minus the
  // covering radius) exceeds a fraction of the kth best — aggressive.
  auto node = Attach(0.2);
  auto result = node->SearchAll(ds_->queries, 10, 48);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.value().breakdown.pruned_searches +
                result.value().breakdown.pruned_loads,
            0u);
}

TEST_F(AdaptivePruneTest, SoundFactorLosesNoRecall) {
  // factor 1.0 under L2 is the sound triangle-inequality criterion: a pruned
  // cluster provably cannot improve the query's top-k, so recall matches the
  // unpruned run exactly (up to distance ties).
  auto off = Attach(0.0);
  auto sound = Attach(1.0);
  auto r_off = off->SearchAll(ds_->queries, 10, 48);
  auto r_sound = sound->SearchAll(ds_->queries, 10, 48);
  ASSERT_TRUE(r_off.ok());
  ASSERT_TRUE(r_sound.ok());
  const double recall_off = MeanRecallAtK(*ds_, r_off.value().results, 10);
  const double recall_sound = MeanRecallAtK(*ds_, r_sound.value().results, 10);
  EXPECT_GE(recall_sound, recall_off - 1e-9)
      << "sound pruning lost recall: " << recall_sound << " vs " << recall_off;
}

TEST_F(AdaptivePruneTest, PrunedLoadsReduceBytes) {
  auto off = Attach(0.0);
  auto tight = Attach(0.2);
  const auto bytes_off =
      off->SearchAll(ds_->queries, 10, 48).value().breakdown.bytes_read;
  const auto bd_tight = tight->SearchAll(ds_->queries, 10, 48).value().breakdown;
  if (bd_tight.pruned_loads > 0) {
    EXPECT_LT(bd_tight.bytes_read, bytes_off);
  }
  EXPECT_GT(bd_tight.pruned_searches + bd_tight.pruned_loads, 0u);
}

TEST_F(AdaptivePruneTest, ResultsRemainSortedAndValid) {
  auto node = Attach(0.5);
  auto result = node->SearchAll(ds_->queries, 10, 48);
  ASSERT_TRUE(result.ok());
  for (const auto& top : result.value().results) {
    for (size_t j = 1; j < top.size(); ++j) {
      EXPECT_LE(top[j - 1].distance, top[j].distance);
    }
  }
}

}  // namespace
}  // namespace dhnsw
