#include "core/batch_scheduler.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

namespace dhnsw {
namespace {

std::function<bool(uint32_t)> CachedSet(std::unordered_set<uint32_t> cached) {
  return [cached = std::move(cached)](uint32_t c) { return cached.count(c) != 0; };
}

TEST(BatchSchedulerTest, EmptyBatchYieldsNoWaves) {
  const BatchPlan plan = PlanBatch({}, CachedSet({}), 4);
  EXPECT_TRUE(plan.waves.empty());
  EXPECT_EQ(plan.unique_clusters, 0u);
}

TEST(BatchSchedulerTest, EveryClusterLoadedAtMostOnce) {
  // Paper §3.3: "each sub-HNSW is loaded from the memory pool only once."
  const std::vector<std::vector<uint32_t>> routes = {
      {1, 4}, {3, 4}, {4, 5}, {3, 1}, {5, 1}};
  const BatchPlan plan = PlanBatch(routes, CachedSet({}), 8);
  std::set<uint32_t> loaded;
  for (const LoadWave& wave : plan.waves) {
    for (uint32_t c : wave.to_load) {
      EXPECT_TRUE(loaded.insert(c).second) << "cluster " << c << " loaded twice";
    }
  }
  EXPECT_EQ(loaded, std::set<uint32_t>({1, 3, 4, 5}));
  EXPECT_EQ(plan.unique_clusters, 4u);
}

TEST(BatchSchedulerTest, AllWorkItemsCovered) {
  const std::vector<std::vector<uint32_t>> routes = {{1, 2}, {2, 3}, {1, 3}};
  const BatchPlan plan = PlanBatch(routes, CachedSet({}), 2);
  std::set<std::pair<uint32_t, uint32_t>> seen;
  for (const LoadWave& wave : plan.waves) {
    for (const WorkItem& item : wave.work) {
      EXPECT_TRUE(seen.insert({item.query_index, item.cluster}).second);
    }
  }
  std::set<std::pair<uint32_t, uint32_t>> want;
  for (uint32_t qi = 0; qi < routes.size(); ++qi) {
    for (uint32_t c : routes[qi]) want.insert({qi, c});
  }
  EXPECT_EQ(seen, want);
}

TEST(BatchSchedulerTest, CachedClustersAreNotLoaded) {
  const std::vector<std::vector<uint32_t>> routes = {{1, 2}, {2, 3}};
  const BatchPlan plan = PlanBatch(routes, CachedSet({2}), 4);
  EXPECT_EQ(plan.cache_hits, 1u);
  for (const LoadWave& wave : plan.waves) {
    for (uint32_t c : wave.to_load) EXPECT_NE(c, 2u);
  }
  // But cluster 2's work still happens.
  bool work_for_2 = false;
  for (const LoadWave& wave : plan.waves) {
    for (const WorkItem& item : wave.work) work_for_2 |= (item.cluster == 2);
  }
  EXPECT_TRUE(work_for_2);
}

TEST(BatchSchedulerTest, WavesRespectCacheCapacity) {
  std::vector<std::vector<uint32_t>> routes;
  for (uint32_t c = 0; c < 20; ++c) routes.push_back({c});
  const BatchPlan plan = PlanBatch(routes, CachedSet({}), 3);
  for (const LoadWave& wave : plan.waves) {
    EXPECT_LE(wave.to_load.size(), 3u);
  }
  EXPECT_EQ(plan.waves.size(), 7u);  // ceil(20/3)
}

TEST(BatchSchedulerTest, ZeroCapacityTreatedAsOne) {
  const std::vector<std::vector<uint32_t>> routes = {{1, 2}};
  const BatchPlan plan = PlanBatch(routes, CachedSet({}), 0);
  for (const LoadWave& wave : plan.waves) EXPECT_LE(wave.to_load.size(), 1u);
}

TEST(BatchSchedulerTest, WaveWorkOnlyReferencesResidentClusters) {
  const std::vector<std::vector<uint32_t>> routes = {
      {1, 2}, {3, 4}, {5, 6}, {1, 6}};
  const std::unordered_set<uint32_t> cached = {5};
  const BatchPlan plan = PlanBatch(routes, CachedSet(cached), 2);
  for (const LoadWave& wave : plan.waves) {
    std::set<uint32_t> resident(wave.to_load.begin(), wave.to_load.end());
    for (const WorkItem& item : wave.work) {
      EXPECT_TRUE(resident.count(item.cluster) || cached.count(item.cluster))
          << "work for non-resident cluster " << item.cluster;
    }
  }
}

TEST(BatchSchedulerTest, DedupSavingsCounted) {
  // 4 queries all wanting the same 2 clusters: 8 pair-loads naive, 2 actual.
  const std::vector<std::vector<uint32_t>> routes = {
      {7, 9}, {7, 9}, {7, 9}, {7, 9}};
  const BatchPlan plan = PlanBatch(routes, CachedSet({}), 8);
  EXPECT_EQ(plan.unique_clusters, 2u);
  EXPECT_EQ(plan.dedup_saved_loads, 8u - 2u);
}

TEST(BatchSchedulerTest, PopularClustersLoadFirst) {
  // Cluster 9 demanded by 3 queries, cluster 1 by one: 9 must appear in an
  // earlier-or-equal wave than 1.
  const std::vector<std::vector<uint32_t>> routes = {{9}, {9}, {9, 1}};
  const BatchPlan plan = PlanBatch(routes, CachedSet({}), 1);
  size_t wave_of_9 = 99, wave_of_1 = 99;
  for (size_t w = 0; w < plan.waves.size(); ++w) {
    for (uint32_t c : plan.waves[w].to_load) {
      if (c == 9) wave_of_9 = w;
      if (c == 1) wave_of_1 = w;
    }
  }
  EXPECT_LT(wave_of_9, wave_of_1);
}

TEST(BatchSchedulerTest, WorkGroupedByQueryWithinWave) {
  const std::vector<std::vector<uint32_t>> routes = {{1, 2}, {1, 2}, {1, 2}};
  const BatchPlan plan = PlanBatch(routes, CachedSet({}), 8);
  for (const LoadWave& wave : plan.waves) {
    for (size_t i = 1; i < wave.work.size(); ++i) {
      EXPECT_LE(wave.work[i - 1].query_index, wave.work[i].query_index);
    }
  }
}

TEST(BatchSchedulerTest, DuplicateClusterWithinQueryCountedOnce) {
  const std::vector<std::vector<uint32_t>> routes = {{4, 4, 4}};
  const BatchPlan plan = PlanBatch(routes, CachedSet({}), 4);
  EXPECT_EQ(plan.unique_clusters, 1u);
  size_t items = 0;
  for (const LoadWave& wave : plan.waves) items += wave.work.size();
  EXPECT_EQ(items, 1u);
}

}  // namespace
}  // namespace dhnsw
