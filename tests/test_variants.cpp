// Variant knobs: k-means representative selection and flat-scan sub-search.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "core/engine.h"
#include "dataset/ground_truth.h"
#include "dataset/synthetic.h"

namespace dhnsw {
namespace {

Dataset Clustered() {
  return MakeSynthetic({.dim = 8, .num_base = 2000, .num_queries = 30,
                        .num_clusters = 10, .seed = 211});
}

TEST(KmeansSelectionTest, ProducesDistinctRealDataPoints) {
  Dataset ds = Clustered();
  MetaHnswOptions options;
  options.num_representatives = 20;
  options.selection = RepresentativeSelection::kKmeans;
  options.kmeans_iterations = 5;
  auto meta = MetaHnsw::Build(ds.base, options);
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta.value().num_partitions(), 20u);

  std::set<uint32_t> ids;
  for (uint32_t p = 0; p < 20; ++p) {
    const uint32_t gid = meta.value().representative_global_id(p);
    ASSERT_LT(gid, ds.base.size());
    EXPECT_TRUE(ids.insert(gid).second) << "duplicate representative " << gid;
    // Medoid snap: the stored meta vector IS the base row.
    const auto stored = meta.value().index().vector(p);
    for (uint32_t d = 0; d < 8; ++d) ASSERT_FLOAT_EQ(stored[d], ds.base[gid][d]);
  }
}

TEST(KmeansSelectionTest, BalancesPartitionsBetterThanUniform) {
  Dataset ds = Clustered();
  auto balance = [&](RepresentativeSelection selection) {
    DhnswConfig config = DhnswConfig::Defaults();
    config.meta.num_representatives = 16;
    config.meta.selection = selection;
    config.sub_hnsw = HnswOptions{.M = 8, .ef_construction = 40};
    auto engine = DhnswEngine::Build(ds.base, config);
    EXPECT_TRUE(engine.ok());
    // Coefficient of variation of partition sizes: lower == more balanced.
    const auto& sizes = engine.value().partition_sizes();
    double mean = 0;
    for (uint32_t s : sizes) mean += s;
    mean /= static_cast<double>(sizes.size());
    double var = 0;
    for (uint32_t s : sizes) var += (s - mean) * (s - mean);
    var /= static_cast<double>(sizes.size());
    return std::sqrt(var) / mean;
  };
  const double cv_uniform = balance(RepresentativeSelection::kUniformSample);
  const double cv_kmeans = balance(RepresentativeSelection::kKmeans);
  EXPECT_LT(cv_kmeans, cv_uniform)
      << "kmeans CV " << cv_kmeans << " vs uniform CV " << cv_uniform;
}

TEST(KmeansSelectionTest, EndToEndRecallAtLeastComparable) {
  Dataset ds = Clustered();
  ComputeGroundTruth(&ds, 10);
  auto recall_with = [&](RepresentativeSelection selection) {
    DhnswConfig config = DhnswConfig::Defaults();
    config.meta.num_representatives = 16;
    config.meta.selection = selection;
    config.sub_hnsw = HnswOptions{.M = 8, .ef_construction = 50};
    config.compute.clusters_per_query = 4;
    auto engine = DhnswEngine::Build(ds.base, config);
    EXPECT_TRUE(engine.ok());
    auto result = engine.value().SearchAll(ds.queries, 10, 64);
    EXPECT_TRUE(result.ok());
    return MeanRecallAtK(ds, result.value().results, 10);
  };
  const double uniform = recall_with(RepresentativeSelection::kUniformSample);
  const double kmeans = recall_with(RepresentativeSelection::kKmeans);
  EXPECT_GT(kmeans, uniform - 0.05);
  EXPECT_GT(kmeans, 0.75);
}

TEST(FlatSubSearchTest, MatchesGraphModeWithGenerousEf) {
  Dataset ds = Clustered();
  DhnswConfig graph_config = DhnswConfig::Defaults();
  graph_config.meta.num_representatives = 12;
  graph_config.sub_hnsw = HnswOptions{.M = 8, .ef_construction = 60};
  graph_config.compute.clusters_per_query = 3;
  DhnswConfig flat_config = graph_config;
  flat_config.compute.sub_search = SubSearchMode::kFlatScan;

  auto graph = DhnswEngine::Build(ds.base, graph_config);
  auto flat = DhnswEngine::Build(ds.base, flat_config);
  ASSERT_TRUE(graph.ok());
  ASSERT_TRUE(flat.ok());

  // Flat scan is exact within routed partitions; graph with huge ef too.
  auto r_graph = graph.value().SearchAll(ds.queries, 10, 500);
  auto r_flat = flat.value().SearchAll(ds.queries, 10, 1);  // ef ignored
  ASSERT_TRUE(r_graph.ok());
  ASSERT_TRUE(r_flat.ok());
  for (size_t qi = 0; qi < ds.queries.size(); ++qi) {
    const auto& a = r_graph.value().results[qi];
    const auto& b = r_flat.value().results[qi];
    ASSERT_EQ(a.size(), b.size());
    for (size_t j = 0; j < a.size(); ++j) {
      EXPECT_EQ(a[j].id, b[j].id) << "query " << qi << " rank " << j;
    }
  }
}

TEST(FlatSubSearchTest, SeesInsertsAndRespectsTombstones) {
  Dataset ds = Clustered();
  DhnswConfig config = DhnswConfig::Defaults();
  config.meta.num_representatives = 10;
  config.sub_hnsw = HnswOptions{.M = 8, .ef_construction = 40};
  config.compute.clusters_per_query = 3;
  config.compute.sub_search = SubSearchMode::kFlatScan;
  config.layout.overflow_bytes_per_group = 1 << 15;
  auto engine = DhnswEngine::Build(ds.base, config);
  ASSERT_TRUE(engine.ok());

  std::vector<float> outlier(8, 900.0f);
  auto id = engine.value().Insert(outlier);
  ASSERT_TRUE(id.ok());
  VectorSet probe(8);
  probe.Append(outlier);
  auto found = engine.value().SearchAll(probe, 1, 1);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value().results[0][0].id, id.value());

  ASSERT_TRUE(engine.value().Remove(outlier, id.value()).ok());
  auto gone = engine.value().SearchAll(probe, 3, 1);
  ASSERT_TRUE(gone.ok());
  for (const Scored& s : gone.value().results[0]) EXPECT_NE(s.id, id.value());
}

}  // namespace
}  // namespace dhnsw
