#include "common/topk.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"

namespace dhnsw {
namespace {

TEST(TopKHeapTest, EmptyBehaviour) {
  TopKHeap heap(3);
  EXPECT_TRUE(heap.empty());
  EXPECT_EQ(heap.size(), 0u);
  EXPECT_FALSE(heap.full());
  EXPECT_TRUE(heap.WouldAccept(1e30f));
  EXPECT_TRUE(heap.TakeSorted().empty());
}

TEST(TopKHeapTest, ZeroKRejectsEverything) {
  TopKHeap heap(0);
  EXPECT_FALSE(heap.Push(0.0f, 1));
  EXPECT_TRUE(heap.TakeSorted().empty());
}

TEST(TopKHeapTest, KeepsKSmallest) {
  TopKHeap heap(3);
  for (uint32_t i = 0; i < 10; ++i) {
    heap.Push(static_cast<float>(10 - i), i);  // distances 10..1
  }
  const std::vector<Scored> out = heap.TakeSorted();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_FLOAT_EQ(out[0].distance, 1.0f);
  EXPECT_FLOAT_EQ(out[1].distance, 2.0f);
  EXPECT_FLOAT_EQ(out[2].distance, 3.0f);
  EXPECT_EQ(out[0].id, 9u);
}

TEST(TopKHeapTest, RejectsWorseThanRootWhenFull) {
  TopKHeap heap(2);
  EXPECT_TRUE(heap.Push(1.0f, 1));
  EXPECT_TRUE(heap.Push(2.0f, 2));
  EXPECT_TRUE(heap.full());
  EXPECT_FALSE(heap.Push(3.0f, 3));
  EXPECT_FALSE(heap.WouldAccept(2.5f));
  EXPECT_TRUE(heap.WouldAccept(1.5f));
  EXPECT_TRUE(heap.Push(0.5f, 4));
  const std::vector<Scored> out = heap.TakeSorted();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].id, 4u);
  EXPECT_EQ(out[1].id, 1u);
}

TEST(TopKHeapTest, SortedIsNonDestructive) {
  TopKHeap heap(4);
  heap.Push(3.0f, 3);
  heap.Push(1.0f, 1);
  heap.Push(2.0f, 2);
  const std::vector<Scored> snap = heap.Sorted();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].id, 1u);
  EXPECT_EQ(heap.size(), 3u);  // untouched
}

TEST(TopKHeapTest, WorstTracksKthBest) {
  TopKHeap heap(2);
  heap.Push(5.0f, 1);
  EXPECT_FLOAT_EQ(heap.worst(), 5.0f);
  heap.Push(3.0f, 2);
  EXPECT_FLOAT_EQ(heap.worst(), 5.0f);
  heap.Push(1.0f, 3);
  EXPECT_FLOAT_EQ(heap.worst(), 3.0f);
}

/// Property sweep: for random inputs and many k, the heap must agree with
/// a full sort.
class TopKHeapPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(TopKHeapPropertyTest, MatchesFullSort) {
  const size_t k = GetParam();
  Xoshiro256 rng(k * 977 + 5);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 1 + rng.NextBounded(500);
    std::vector<Scored> all;
    TopKHeap heap(k);
    for (size_t i = 0; i < n; ++i) {
      const float d = rng.NextFloat() * 100.0f;
      all.push_back({d, static_cast<uint32_t>(i)});
      heap.Push(d, static_cast<uint32_t>(i));
    }
    std::sort(all.begin(), all.end());
    all.resize(std::min(all.size(), k));
    const std::vector<Scored> got = heap.TakeSorted();
    ASSERT_EQ(got.size(), all.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_FLOAT_EQ(got[i].distance, all[i].distance) << "k=" << k << " i=" << i;
      EXPECT_EQ(got[i].id, all[i].id) << "k=" << k << " i=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, TopKHeapPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 10, 50, 100, 1000));

TEST(ScoredTest, OrderingTiesBreakOnId) {
  const Scored a{1.0f, 3}, b{1.0f, 5};
  EXPECT_TRUE(a < b);
  EXPECT_FALSE(b < a);
}

}  // namespace
}  // namespace dhnsw
