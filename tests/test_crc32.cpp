#include "common/crc32.h"

#include <gtest/gtest.h>

#include <string_view>
#include <vector>

namespace dhnsw {
namespace {

std::span<const uint8_t> Bytes(std::string_view s) {
  return {reinterpret_cast<const uint8_t*>(s.data()), s.size()};
}

TEST(Crc32cTest, KnownVector) {
  // The canonical CRC-32C check value: crc32c("123456789") == 0xE3069283.
  EXPECT_EQ(Crc32c(Bytes("123456789")), 0xE3069283u);
}

TEST(Crc32cTest, EmptyIsZero) {
  EXPECT_EQ(Crc32c({}), 0u);
}

TEST(Crc32cTest, RfcTestVectors) {
  // From RFC 3720 (iSCSI) appendix: 32 zero bytes and 32 0xFF bytes.
  std::vector<uint8_t> zeros(32, 0x00);
  EXPECT_EQ(Crc32c(zeros), 0x8A9136AAu);
  std::vector<uint8_t> ones(32, 0xFF);
  EXPECT_EQ(Crc32c(ones), 0x62A8AB43u);
}

TEST(Crc32cTest, SensitiveToSingleBitFlip) {
  std::vector<uint8_t> data(100, 0x5A);
  const uint32_t base = Crc32c(data);
  for (size_t byte : {0u, 50u, 99u}) {
    data[byte] ^= 0x01;
    EXPECT_NE(Crc32c(data), base) << "flip at byte " << byte;
    data[byte] ^= 0x01;
  }
  EXPECT_EQ(Crc32c(data), base);
}

TEST(Crc32cTest, SensitiveToReordering) {
  const uint32_t ab = Crc32c(Bytes("ab"));
  const uint32_t ba = Crc32c(Bytes("ba"));
  EXPECT_NE(ab, ba);
}

TEST(Crc32cTest, ChainingViaSeedEqualsOneShot) {
  const auto all = Bytes("hello, disaggregated world");
  const uint32_t one_shot = Crc32c(all);
  const uint32_t first = Crc32c(all.subspan(0, 10));
  const uint32_t chained = Crc32c(all.subspan(10), first);
  EXPECT_EQ(chained, one_shot);
}

}  // namespace
}  // namespace dhnsw
