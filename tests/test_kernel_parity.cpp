// Cross-tier numerical parity for the SIMD distance kernels.
//
// Contract under test (index/distance.h):
//  - every tier in AvailableTiers() matches the scalar reference within
//    4 ULPs, for every metric, across dims covering sub-vector tails,
//    exact vector widths, unroll boundaries, and the paper's 128/960;
//  - the gather and rows batched kernels are bit-identical to the same
//    tier's pairwise kernel applied per element;
//  - the cosine zero-vector convention (distance exactly 1.0f) holds in
//    every tier, including the batched forms.
//
// CI runs this binary twice: natively dispatched and with
// DHNSW_FORCE_SCALAR=1 (where it degenerates to scalar-vs-scalar, proving
// the harness itself is sound).
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/rng.h"
#include "index/distance.h"

namespace dhnsw {
namespace {

constexpr int32_t kUlpBudget = 4;
constexpr size_t kDims[] = {1, 3, 4, 7, 8, 31, 32, 100, 128, 960};
constexpr Metric kMetrics[] = {Metric::kL2, Metric::kInnerProduct, Metric::kCosine};

std::vector<float> RandomVector(size_t dim, Xoshiro256& rng) {
  std::vector<float> v(dim);
  for (float& x : v) x = static_cast<float>(rng.NextDouble() * 2.0 - 1.0);
  return v;
}

/// Strictly positive entries: keeps every partial sum cancellation-free, so
/// ULP distance between accumulation orders is meaningful (a signed dot
/// product summing to ~0 can differ by many ULPs between *correct* kernels
/// purely from reassociation — that case is covered by the magnitude-relative
/// test below instead).
std::vector<float> PositiveVector(size_t dim, Xoshiro256& rng) {
  std::vector<float> v(dim);
  for (float& x : v) x = static_cast<float>(rng.NextDouble() * 0.9 + 0.1);
  return v;
}

std::string Context(SimdTier tier, Metric metric, size_t dim) {
  return std::string(SimdTierName(tier)) + "/" + std::string(MetricName(metric)) +
         "/dim=" + std::to_string(dim);
}

TEST(KernelParityTest, EveryTierWithinUlpBudgetOfScalar) {
  // ULP distance is only meaningful on cancellation-free results, and each
  // metric cancels on different data:
  //  - inner product: signed entries make the dot sum through ~0, so it gets
  //    strictly positive data (all terms one sign);
  //  - cosine: positive data is highly correlated (similarity ~1), making the
  //    final `1 - dot/denom` cancel, so it gets signed data (distance ~1);
  //  - L2 accumulates squares — cancellation-free either way.
  // The signed-data inner product case is covered by the magnitude-relative
  // test below.
  const KernelTable& scalar = KernelsForTier(SimdTier::kScalar);
  Xoshiro256 rng(0x9a17e5u);
  for (size_t dim : kDims) {
    for (int rep = 0; rep < 8; ++rep) {
      const std::vector<float> sa = RandomVector(dim, rng);
      const std::vector<float> sb = RandomVector(dim, rng);
      const std::vector<float> pa = PositiveVector(dim, rng);
      const std::vector<float> pb = PositiveVector(dim, rng);
      for (Metric metric : kMetrics) {
        const float* a = metric == Metric::kInnerProduct ? pa.data() : sa.data();
        const float* b = metric == Metric::kInnerProduct ? pb.data() : sb.data();
        const float ref = scalar.Pair(metric)(a, b, dim);
        for (SimdTier tier : AvailableTiers()) {
          const float got = KernelsForTier(tier).Pair(metric)(a, b, dim);
          EXPECT_LE(UlpDiff(ref, got), kUlpBudget)
              << Context(tier, metric, dim) << " ref=" << ref << " got=" << got;
        }
      }
    }
  }
}

TEST(KernelParityTest, SignedDataStaysWithinMagnitudeRelativeTolerance) {
  // With signed entries a dot product can cancel to ~0, so the error of any
  // summation order must be judged against the magnitude of the terms, not
  // the (tiny) result. Budget: 16 eps of the sum of |term|s.
  const KernelTable& scalar = KernelsForTier(SimdTier::kScalar);
  Xoshiro256 rng(0x9051u);
  for (size_t dim : kDims) {
    for (int rep = 0; rep < 8; ++rep) {
      const std::vector<float> a = RandomVector(dim, rng);
      const std::vector<float> b = RandomVector(dim, rng);
      double magnitude = 1.0;
      for (size_t i = 0; i < dim; ++i) {
        magnitude += std::abs(static_cast<double>(a[i]) * b[i]);
      }
      const double budget = 16.0 * 1.1920929e-7 * magnitude;  // 16 eps
      for (Metric metric : kMetrics) {
        const float ref = scalar.Pair(metric)(a.data(), b.data(), dim);
        for (SimdTier tier : AvailableTiers()) {
          const float got = KernelsForTier(tier).Pair(metric)(a.data(), b.data(), dim);
          EXPECT_LE(std::abs(static_cast<double>(ref) - got), budget)
              << Context(tier, metric, dim) << " ref=" << ref << " got=" << got;
        }
      }
    }
  }
}

TEST(KernelParityTest, GatherIsBitIdenticalToPairWithinTier) {
  Xoshiro256 rng(0x6a7be5u);
  constexpr size_t kRows = 200;
  for (size_t dim : kDims) {
    const std::vector<float> query = RandomVector(dim, rng);
    const std::vector<float> base = RandomVector(kRows * dim, rng);
    std::vector<uint32_t> ids;
    for (int i = 0; i < 40; ++i) {
      ids.push_back(static_cast<uint32_t>(rng.NextBounded(kRows)));
    }
    std::vector<float> out(ids.size());
    for (SimdTier tier : AvailableTiers()) {
      const KernelTable& table = KernelsForTier(tier);
      for (Metric metric : kMetrics) {
        table.Gather(metric)(query.data(), base.data(), dim, ids.data(),
                             ids.size(), out.data());
        for (size_t j = 0; j < ids.size(); ++j) {
          const float ref = table.Pair(metric)(query.data(),
                                               base.data() + ids[j] * dim, dim);
          EXPECT_EQ(UlpDiff(ref, out[j]), 0)
              << Context(tier, metric, dim) << " j=" << j;
        }
      }
    }
  }
}

TEST(KernelParityTest, RowsIsBitIdenticalToPairWithinTier) {
  Xoshiro256 rng(0x205a5u);
  constexpr size_t kRows = 64;
  for (size_t dim : kDims) {
    const std::vector<float> query = RandomVector(dim, rng);
    const std::vector<float> rows = RandomVector(kRows * dim, rng);
    std::vector<float> out(kRows);
    for (SimdTier tier : AvailableTiers()) {
      const KernelTable& table = KernelsForTier(tier);
      for (Metric metric : kMetrics) {
        table.Rows(metric)(query.data(), rows.data(), dim, kRows, out.data());
        for (size_t j = 0; j < kRows; ++j) {
          const float ref = table.Pair(metric)(query.data(),
                                               rows.data() + j * dim, dim);
          EXPECT_EQ(UlpDiff(ref, out[j]), 0)
              << Context(tier, metric, dim) << " j=" << j;
        }
      }
    }
  }
}

TEST(KernelParityTest, CosineZeroVectorConventionHoldsInEveryTier) {
  for (size_t dim : kDims) {
    const std::vector<float> zero(dim, 0.0f);
    std::vector<float> unit(dim, 0.0f);
    unit[0] = 1.0f;
    const uint32_t ids[2] = {0, 1};
    std::vector<float> both = zero;
    both.insert(both.end(), unit.begin(), unit.end());
    float out[2];
    for (SimdTier tier : AvailableTiers()) {
      const KernelTable& t = KernelsForTier(tier);
      EXPECT_EQ(t.cosine(zero.data(), unit.data(), dim), 1.0f)
          << Context(tier, Metric::kCosine, dim);
      EXPECT_EQ(t.cosine(unit.data(), zero.data(), dim), 1.0f)
          << Context(tier, Metric::kCosine, dim);
      EXPECT_EQ(t.cosine(zero.data(), zero.data(), dim), 1.0f)
          << Context(tier, Metric::kCosine, dim);
      t.cosine_gather(zero.data(), both.data(), dim, ids, 2, out);
      EXPECT_EQ(out[0], 1.0f);
      EXPECT_EQ(out[1], 1.0f);
      t.cosine_rows(zero.data(), both.data(), dim, 2, out);
      EXPECT_EQ(out[0], 1.0f);
      EXPECT_EQ(out[1], 1.0f);
    }
  }
}

TEST(KernelParityTest, DistanceBatchMatchesActivePairKernel) {
  Xoshiro256 rng(0xba7c4u);
  constexpr size_t kRows = 50;
  for (size_t dim : {size_t{7}, size_t{128}}) {
    const std::vector<float> query = RandomVector(dim, rng);
    const std::vector<float> base = RandomVector(kRows * dim, rng);
    const std::vector<uint32_t> ids = {0, 3, 49, 17, 3};  // dups allowed
    std::vector<float> out(ids.size());
    for (Metric metric : kMetrics) {
      DistanceBatch(metric, query, base.data(), dim, ids, out.data());
      for (size_t j = 0; j < ids.size(); ++j) {
        const float ref = Distance(metric, query,
                                   {base.data() + ids[j] * dim, dim});
        EXPECT_EQ(UlpDiff(ref, out[j]), 0)
            << std::string(MetricName(metric)) << " dim=" << dim << " j=" << j;
      }
    }
  }
}

// --- ADC (PQ asymmetric distance) kernels ----------------------------------
// Contract is stronger than for the float kernels: BIT-identical across every
// tier (UlpDiff == 0), because the deterministic-trace tests compare whole
// search outputs across native and DHNSW_FORCE_SCALAR=1 runs.

std::vector<float> RandomLut(size_t m, Xoshiro256& rng) {
  std::vector<float> lut(m * 256);
  for (float& x : lut) x = static_cast<float>(rng.NextDouble() * 2.0 - 1.0);
  return lut;
}

std::vector<uint8_t> RandomCodes(size_t count, Xoshiro256& rng) {
  std::vector<uint8_t> codes(count);
  for (uint8_t& c : codes) c = static_cast<uint8_t>(rng.NextBounded(256));
  return codes;
}

constexpr size_t kAdcMs[] = {1, 2, 7, 8, 9, 15, 16, 17, 32, 48};

TEST(KernelParityTest, AdcIsBitIdenticalAcrossTiers) {
  const KernelTable& scalar = KernelsForTier(SimdTier::kScalar);
  Xoshiro256 rng(0xadc0de01u);
  for (size_t m : kAdcMs) {
    for (int rep = 0; rep < 8; ++rep) {
      const std::vector<float> lut = RandomLut(m, rng);
      const std::vector<uint8_t> code = RandomCodes(m, rng);
      const float ref = scalar.adc(lut.data(), code.data(), m);
      for (SimdTier tier : AvailableTiers()) {
        const float got = KernelsForTier(tier).adc(lut.data(), code.data(), m);
        EXPECT_EQ(UlpDiff(ref, got), 0)
            << SimdTierName(tier) << "/m=" << m << " ref=" << ref << " got=" << got;
      }
    }
  }
}

TEST(KernelParityTest, AdcGatherIsBitIdenticalToAdcWithinAndAcrossTiers) {
  Xoshiro256 rng(0xadc0de02u);
  constexpr size_t kRows = 100;
  const KernelTable& scalar = KernelsForTier(SimdTier::kScalar);
  for (size_t m : kAdcMs) {
    const std::vector<float> lut = RandomLut(m, rng);
    const std::vector<uint8_t> codes = RandomCodes(kRows * m, rng);
    std::vector<uint32_t> ids;
    for (int i = 0; i < 40; ++i) {
      ids.push_back(static_cast<uint32_t>(rng.NextBounded(kRows)));
    }
    std::vector<float> out(ids.size());
    for (SimdTier tier : AvailableTiers()) {
      const KernelTable& table = KernelsForTier(tier);
      table.adc_gather(lut.data(), codes.data(), m, ids.data(), ids.size(), out.data());
      for (size_t j = 0; j < ids.size(); ++j) {
        const float ref = scalar.adc(lut.data(), codes.data() + ids[j] * m, m);
        EXPECT_EQ(UlpDiff(ref, out[j]), 0) << SimdTierName(tier) << "/m=" << m << " j=" << j;
      }
    }
  }
}

TEST(KernelParityTest, AdcRowsIsBitIdenticalToAdcWithinAndAcrossTiers) {
  Xoshiro256 rng(0xadc0de03u);
  constexpr size_t kRows = 64;
  const KernelTable& scalar = KernelsForTier(SimdTier::kScalar);
  for (size_t m : kAdcMs) {
    const std::vector<float> lut = RandomLut(m, rng);
    const std::vector<uint8_t> codes = RandomCodes(kRows * m, rng);
    std::vector<float> out(kRows);
    for (SimdTier tier : AvailableTiers()) {
      const KernelTable& table = KernelsForTier(tier);
      table.adc_rows(lut.data(), codes.data(), m, kRows, out.data());
      for (size_t j = 0; j < kRows; ++j) {
        const float ref = scalar.adc(lut.data(), codes.data() + j * m, m);
        EXPECT_EQ(UlpDiff(ref, out[j]), 0) << SimdTierName(tier) << "/m=" << m << " j=" << j;
      }
    }
  }
}

TEST(KernelParityTest, AdcZeroLutAndDegenerateShapes) {
  // An all-zero LUT must sum to exactly +0.0 in every tier (the zero-residual
  // cluster case), and n = 0 batched calls must not touch `out`.
  for (size_t m : kAdcMs) {
    const std::vector<float> lut(m * 256, 0.0f);
    const std::vector<uint8_t> code(m, 0xab);
    float sentinel = 42.0f;
    for (SimdTier tier : AvailableTiers()) {
      const KernelTable& t = KernelsForTier(tier);
      EXPECT_EQ(t.adc(lut.data(), code.data(), m), 0.0f) << SimdTierName(tier) << "/m=" << m;
      t.adc_rows(lut.data(), code.data(), m, 0, &sentinel);
      t.adc_gather(lut.data(), code.data(), m, nullptr, 0, &sentinel);
      EXPECT_EQ(sentinel, 42.0f);
    }
  }
}

TEST(KernelParityTest, ActiveTierIsListedAsAvailable) {
  bool found = false;
  for (SimdTier tier : AvailableTiers()) {
    if (tier == ActiveTier()) found = true;
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(AvailableTiers().front(), SimdTier::kScalar);
  EXPECT_EQ(ActiveKernels().tier, ActiveTier());
}

TEST(UlpDiffTest, BasicProperties) {
  EXPECT_EQ(UlpDiff(1.0f, 1.0f), 0);
  EXPECT_EQ(UlpDiff(0.0f, -0.0f), 0);  // signed zeros are the same value
  EXPECT_EQ(UlpDiff(1.0f, std::nextafter(1.0f, 2.0f)), 1);
  EXPECT_EQ(UlpDiff(1.0f, std::nextafter(std::nextafter(1.0f, 2.0f), 2.0f)), 2);
  // Straddling zero still counts representable steps.
  const float tiny = std::nextafter(0.0f, 1.0f);
  EXPECT_EQ(UlpDiff(tiny, -tiny), 2);
  // Non-finite values saturate (never "close").
  const float inf = std::numeric_limits<float>::infinity();
  const float nan = std::numeric_limits<float>::quiet_NaN();
  EXPECT_EQ(UlpDiff(1.0f, inf), std::numeric_limits<int32_t>::max());
  EXPECT_EQ(UlpDiff(1.0f, nan), std::numeric_limits<int32_t>::max());
  EXPECT_EQ(UlpDiff(nan, nan), 0);  // both-NaN compares equal for parity tests
  EXPECT_TRUE(UlpClose(1.0f, 1.0f, 0));
  EXPECT_FALSE(UlpClose(1.0f, 1.5f, 4));
}

}  // namespace
}  // namespace dhnsw
