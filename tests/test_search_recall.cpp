// Recall invariance for the vectorized search hot path: swapping the scalar
// loops for batched SIMD kernels and pooled scratch must not change what the
// graph search returns.
//
// Checks, for every metric:
//  - HnswIndex search is deterministic (same query, same results),
//  - recall@10 against a FlatIndex exact scan stays high,
//  - the allocation-free overload matches the allocating one,
// and at the ComputeNode level that search_threads=1 and search_threads=4
// return identical results (the kernels are per-thread stateless; the pooled
// scratch must not leak state across queries).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "core/compute_node.h"
#include "core/engine.h"
#include "dataset/ground_truth.h"
#include "dataset/synthetic.h"
#include "index/flat_index.h"
#include "index/hnsw.h"

namespace dhnsw {
namespace {

constexpr uint32_t kDim = 24;
constexpr size_t kBase = 2000;
constexpr size_t kQueries = 50;
constexpr size_t kK = 10;

std::vector<float> RandomVector(uint32_t dim, Xoshiro256& rng) {
  std::vector<float> v(dim);
  for (float& x : v) x = static_cast<float>(rng.NextDouble() * 2.0 - 1.0);
  return v;
}

class RecallInvarianceTest : public ::testing::TestWithParam<Metric> {};

TEST_P(RecallInvarianceTest, HighRecallAgainstExactScanAndDeterministic) {
  const Metric metric = GetParam();
  HnswOptions options;
  options.M = 12;
  options.ef_construction = 100;
  options.metric = metric;
  HnswIndex index(kDim, options);
  FlatIndex flat(kDim, metric);

  Xoshiro256 rng(0x5eca11u);
  for (size_t i = 0; i < kBase; ++i) {
    const std::vector<float> v = RandomVector(kDim, rng);
    index.Add(v);
    flat.Add(v);
  }

  size_t hits = 0;
  std::vector<Scored> out;
  for (size_t q = 0; q < kQueries; ++q) {
    const std::vector<float> query = RandomVector(kDim, rng);
    const std::vector<Scored> approx = index.Search(query, kK, 80);
    ASSERT_EQ(approx.size(), kK);

    // Determinism: a repeated search returns the same ids and distances,
    // whichever Search overload serves it.
    index.Search(query, kK, 80, &out);
    ASSERT_EQ(out.size(), approx.size());
    for (size_t j = 0; j < kK; ++j) {
      EXPECT_EQ(approx[j].id, out[j].id) << "query " << q;
      EXPECT_EQ(approx[j].distance, out[j].distance) << "query " << q;
    }

    const std::vector<Scored> exact = flat.Search(query, kK);
    for (const Scored& e : exact) {
      for (const Scored& a : approx) {
        if (a.id == e.id) {
          ++hits;
          break;
        }
      }
    }
  }
  const double recall = static_cast<double>(hits) / (kQueries * kK);
  EXPECT_GT(recall, 0.85) << "recall@" << kK << " = " << recall << " under "
                          << std::string(MetricName(metric));
}

INSTANTIATE_TEST_SUITE_P(AllMetrics, RecallInvarianceTest,
                         ::testing::Values(Metric::kL2, Metric::kInnerProduct,
                                           Metric::kCosine),
                         [](const ::testing::TestParamInfo<Metric>& param) {
                           return std::string(MetricName(param.param));
                         });

TEST(SearchThreadInvarianceTest, IdenticalResultsAcrossSearchThreads) {
  Dataset ds = MakeSynthetic({.dim = 8, .num_base = 1500, .num_queries = 32,
                              .num_clusters = 10, .seed = 77});
  ComputeGroundTruth(&ds, kK);

  DhnswConfig config = DhnswConfig::Defaults();
  config.meta.num_representatives = 20;
  config.sub_hnsw = HnswOptions{.M = 8, .ef_construction = 60};
  config.compute.clusters_per_query = 3;
  auto engine = DhnswEngine::Build(ds.base, config);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  auto run = [&](size_t threads) {
    ComputeOptions options;
    options.mode = EngineMode::kFull;
    options.clusters_per_query = 3;
    options.search_threads = threads;
    ComputeNode node(&engine.value().fabric(), engine.value().memory_handle(),
                     options);
    EXPECT_TRUE(node.Connect().ok());
    auto result = node.SearchAll(ds.queries, kK, 48);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).value().results;
  };

  const auto serial = run(1);
  const auto parallel = run(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t qi = 0; qi < serial.size(); ++qi) {
    ASSERT_EQ(serial[qi].size(), parallel[qi].size()) << "query " << qi;
    for (size_t j = 0; j < serial[qi].size(); ++j) {
      EXPECT_EQ(serial[qi][j].id, parallel[qi][j].id) << "query " << qi;
      EXPECT_EQ(serial[qi][j].distance, parallel[qi][j].distance)
          << "query " << qi;
    }
  }

  const double recall = MeanRecallAtK(ds, serial, kK);
  EXPECT_GT(recall, 0.8) << "recall@10 = " << recall;
}

}  // namespace
}  // namespace dhnsw
