#include "index/distance.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"

namespace dhnsw {
namespace {

TEST(DistanceTest, L2SqHandComputed) {
  const std::vector<float> a = {1.0f, 2.0f, 3.0f};
  const std::vector<float> b = {4.0f, 6.0f, 3.0f};
  EXPECT_FLOAT_EQ(L2Sq(a, b), 9.0f + 16.0f);
}

TEST(DistanceTest, L2SqIdentityIsZero) {
  const std::vector<float> a = {0.5f, -1.5f, 2.5f, 7.0f};
  EXPECT_FLOAT_EQ(L2Sq(a, a), 0.0f);
}

TEST(DistanceTest, L2SqSymmetric) {
  Xoshiro256 rng(1);
  std::vector<float> a(64), b(64);
  for (auto& x : a) x = rng.NextFloat();
  for (auto& x : b) x = rng.NextFloat();
  EXPECT_FLOAT_EQ(L2Sq(a, b), L2Sq(b, a));
}

TEST(DistanceTest, InnerProductIsNegatedDot) {
  const std::vector<float> a = {1.0f, 2.0f};
  const std::vector<float> b = {3.0f, 4.0f};
  EXPECT_FLOAT_EQ(InnerProduct(a, b), -11.0f);
}

TEST(DistanceTest, InnerProductOrdersByLargerDot) {
  // Bigger dot product == closer (smaller "distance").
  const std::vector<float> q = {1.0f, 0.0f};
  const std::vector<float> close = {5.0f, 0.0f};
  const std::vector<float> far = {1.0f, 0.0f};
  EXPECT_LT(InnerProduct(q, close), InnerProduct(q, far));
}

TEST(DistanceTest, CosineOfParallelVectorsIsZero) {
  const std::vector<float> a = {1.0f, 2.0f, 3.0f};
  const std::vector<float> b = {2.0f, 4.0f, 6.0f};
  EXPECT_NEAR(CosineDistance(a, b), 0.0f, 1e-6f);
}

TEST(DistanceTest, CosineOfOrthogonalVectorsIsOne) {
  const std::vector<float> a = {1.0f, 0.0f};
  const std::vector<float> b = {0.0f, 1.0f};
  EXPECT_NEAR(CosineDistance(a, b), 1.0f, 1e-6f);
}

TEST(DistanceTest, CosineOfOppositeVectorsIsTwo) {
  const std::vector<float> a = {1.0f, 1.0f};
  const std::vector<float> b = {-1.0f, -1.0f};
  EXPECT_NEAR(CosineDistance(a, b), 2.0f, 1e-6f);
}

TEST(DistanceTest, CosineZeroVectorConvention) {
  const std::vector<float> zero = {0.0f, 0.0f};
  const std::vector<float> a = {1.0f, 2.0f};
  EXPECT_FLOAT_EQ(CosineDistance(zero, a), 1.0f);
}

TEST(DistanceTest, DispatcherMatchesKernels) {
  Xoshiro256 rng(2);
  std::vector<float> a(32), b(32);
  for (auto& x : a) x = rng.NextFloat() - 0.5f;
  for (auto& x : b) x = rng.NextFloat() - 0.5f;
  EXPECT_FLOAT_EQ(Distance(Metric::kL2, a, b), L2Sq(a, b));
  EXPECT_FLOAT_EQ(Distance(Metric::kInnerProduct, a, b), InnerProduct(a, b));
  EXPECT_FLOAT_EQ(Distance(Metric::kCosine, a, b), CosineDistance(a, b));
}

TEST(DistanceTest, FunctionPointerMatchesDispatch) {
  std::vector<float> a = {1.0f, 2.0f}, b = {3.0f, 5.0f};
  for (Metric m : {Metric::kL2, Metric::kInnerProduct, Metric::kCosine}) {
    EXPECT_FLOAT_EQ(DistanceFunction(m)(a, b), Distance(m, a, b));
  }
}

TEST(DistanceTest, MetricNamesDistinct) {
  EXPECT_EQ(MetricName(Metric::kL2), "l2");
  EXPECT_EQ(MetricName(Metric::kInnerProduct), "ip");
  EXPECT_EQ(MetricName(Metric::kCosine), "cosine");
}

TEST(DistanceTest, L2TriangleInequalityOnSqrt) {
  Xoshiro256 rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<float> a(16), b(16), c(16);
    for (auto& x : a) x = rng.NextFloat();
    for (auto& x : b) x = rng.NextFloat();
    for (auto& x : c) x = rng.NextFloat();
    const double ab = std::sqrt(static_cast<double>(L2Sq(a, b)));
    const double bc = std::sqrt(static_cast<double>(L2Sq(b, c)));
    const double ac = std::sqrt(static_cast<double>(L2Sq(a, c)));
    EXPECT_LE(ac, ab + bc + 1e-5);
  }
}

}  // namespace
}  // namespace dhnsw
