#include "core/compactor.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "dataset/ground_truth.h"
#include "dataset/synthetic.h"

namespace dhnsw {
namespace {

DhnswConfig SmallConfig(uint64_t overflow_per_group = 1 << 14) {
  DhnswConfig config = DhnswConfig::Defaults();
  config.meta.num_representatives = 10;
  config.sub_hnsw = HnswOptions{.M = 8, .ef_construction = 50};
  config.compute.clusters_per_query = 3;
  config.compute.cache_capacity = 4;
  config.layout.overflow_bytes_per_group = overflow_per_group;
  return config;
}

Dataset SmallData() {
  return MakeSynthetic({.dim = 8, .num_base = 800, .num_queries = 15,
                        .num_clusters = 6, .seed = 101});
}

TEST(CompactorTest, FoldsInsertsIntoBlobs) {
  Dataset ds = SmallData();
  auto engine = DhnswEngine::Build(ds.base, SmallConfig());
  ASSERT_TRUE(engine.ok());

  std::vector<std::vector<float>> inserted;
  for (int i = 0; i < 40; ++i) {
    std::vector<float> v(ds.base[i].begin(), ds.base[i].end());
    v[0] += 0.5f;
    ASSERT_TRUE(engine.value().Insert(v).ok());
    inserted.push_back(std::move(v));
  }

  auto stats = engine.value().Compact();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.value().live_records_folded, 40u);
  EXPECT_EQ(stats.value().tombstones_applied, 0u);
  EXPECT_EQ(stats.value().clusters, 10u);
  EXPECT_GT(stats.value().bytes_read, 0u);

  // After compaction the overflow counters are zero again...
  for (uint32_t c = 0; c < 10; ++c) {
    auto meta = engine.value().memory_node()->InspectClusterMeta(c);
    ASSERT_TRUE(meta.ok());
    EXPECT_EQ(meta.value().overflow_used, 0u);
  }
  // ...and every folded vector is still retrievable (now via the graph).
  VectorSet probes(8);
  for (const auto& v : inserted) probes.Append(v);
  auto result = engine.value().SearchAll(probes, 1, 48);
  ASSERT_TRUE(result.ok());
  for (size_t i = 0; i < inserted.size(); ++i) {
    ASSERT_FALSE(result.value().results[i].empty());
    EXPECT_GE(result.value().results[i][0].id, ds.base.size()) << "probe " << i;
    EXPECT_LT(result.value().results[i][0].distance, 1e-3f);
  }
}

TEST(CompactorTest, AppliesTombstones) {
  Dataset ds = SmallData();
  auto engine = DhnswEngine::Build(ds.base, SmallConfig());
  ASSERT_TRUE(engine.ok());

  for (uint32_t gid = 0; gid < 10; ++gid) {
    ASSERT_TRUE(engine.value().Remove(ds.base[gid], gid).ok());
  }
  auto stats = engine.value().Compact();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().tombstones_applied, 10u);

  // Deleted ids stay gone post-compaction (now physically absent).
  for (uint32_t gid = 0; gid < 10; ++gid) {
    VectorSet probe(8);
    probe.Append(ds.base[gid]);
    auto result = engine.value().SearchAll(probe, 5, 48);
    ASSERT_TRUE(result.ok());
    for (const Scored& s : result.value().results[0]) EXPECT_NE(s.id, gid);
  }
}

TEST(CompactorTest, FreesCapacityForNewInserts) {
  Dataset ds = SmallData();
  // Tiny overflow: a few records per group.
  auto engine = DhnswEngine::Build(ds.base, SmallConfig(/*overflow=*/120));
  ASSERT_TRUE(engine.ok());

  // Fill until Capacity.
  std::vector<float> v(ds.base[0].begin(), ds.base[0].end());
  Status last = Status::Ok();
  int ok_before = 0;
  for (int i = 0; i < 50; ++i) {
    auto id = engine.value().Insert(v);
    if (!id.ok()) {
      last = id.status();
      break;
    }
    ++ok_before;
  }
  ASSERT_EQ(last.code(), StatusCode::kCapacity);

  auto stats = engine.value().Compact();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().live_records_folded, static_cast<uint32_t>(ok_before));

  // Inserts work again.
  EXPECT_TRUE(engine.value().Insert(v).ok());
}

TEST(CompactorTest, BumpsLayoutVersion) {
  Dataset ds = SmallData();
  auto engine = DhnswEngine::Build(ds.base, SmallConfig());
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine.value().Compact().ok());
  EXPECT_EQ(engine.value().memory_node()->plan().header.layout_version, 1u);
  ASSERT_TRUE(engine.value().Compact().ok());
  EXPECT_EQ(engine.value().memory_node()->plan().header.layout_version, 2u);
}

TEST(CompactorTest, RecallPreservedAcrossCompaction) {
  Dataset ds = SmallData();
  ComputeGroundTruth(&ds, 5);
  auto engine = DhnswEngine::Build(ds.base, SmallConfig());
  ASSERT_TRUE(engine.ok());

  auto before = engine.value().SearchAll(ds.queries, 5, 64);
  ASSERT_TRUE(before.ok());
  const double recall_before = MeanRecallAtK(ds, before.value().results, 5);

  ASSERT_TRUE(engine.value().Compact().ok());
  auto after = engine.value().SearchAll(ds.queries, 5, 64);
  ASSERT_TRUE(after.ok());
  const double recall_after = MeanRecallAtK(ds, after.value().results, 5);
  EXPECT_NEAR(recall_after, recall_before, 0.05);
}

TEST(CompactorTest, CosineMetricSurvivesCompaction) {
  Dataset ds = SmallData();
  DhnswConfig config = DhnswConfig::Defaults(Metric::kCosine);
  config.meta.num_representatives = 8;
  config.sub_hnsw.M = 8;
  config.compute.clusters_per_query = 3;
  auto engine = DhnswEngine::Build(ds.base, config);
  ASSERT_TRUE(engine.ok());
  ComputeGroundTruth(&ds, 5, Metric::kCosine);

  ASSERT_TRUE(engine.value().Compact().ok());
  auto result = engine.value().SearchAll(ds.queries, 5, 64);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(MeanRecallAtK(ds, result.value().results, 5), 0.65);
}

TEST(CompactorTest, ComputeNodesKeepWorkingAfterReconnect) {
  Dataset ds = SmallData();
  DhnswConfig config = SmallConfig();
  config.num_compute_nodes = 2;
  auto engine = DhnswEngine::Build(ds.base, config);
  ASSERT_TRUE(engine.ok());

  ASSERT_TRUE(engine.value().Compact().ok());
  // Both instances must be live on the new region.
  for (size_t i = 0; i < 2; ++i) {
    auto result = engine.value().compute(i).SearchAll(ds.queries, 5, 32);
    EXPECT_TRUE(result.ok()) << "instance " << i;
  }
}

}  // namespace
}  // namespace dhnsw
