#include "common/binary_io.h"

#include <gtest/gtest.h>

#include <limits>

namespace dhnsw {
namespace {

TEST(BinaryIoTest, PrimitiveRoundTrip) {
  std::vector<uint8_t> buf;
  BinaryWriter w(&buf);
  w.PutU8(0xAB);
  w.PutU16(0xBEEF);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFull);
  w.PutI32(-12345);
  w.PutF32(3.25f);

  BinaryReader r(buf);
  uint8_t u8;
  uint16_t u16;
  uint32_t u32;
  uint64_t u64;
  int32_t i32;
  float f32;
  ASSERT_TRUE(r.GetU8(&u8).ok());
  ASSERT_TRUE(r.GetU16(&u16).ok());
  ASSERT_TRUE(r.GetU32(&u32).ok());
  ASSERT_TRUE(r.GetU64(&u64).ok());
  ASSERT_TRUE(r.GetI32(&i32).ok());
  ASSERT_TRUE(r.GetF32(&f32).ok());
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u16, 0xBEEF);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(i32, -12345);
  EXPECT_FLOAT_EQ(f32, 3.25f);
  EXPECT_TRUE(r.exhausted());
}

TEST(BinaryIoTest, LittleEndianOnWire) {
  std::vector<uint8_t> buf;
  BinaryWriter w(&buf);
  w.PutU32(0x01020304u);
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf[0], 0x04);
  EXPECT_EQ(buf[1], 0x03);
  EXPECT_EQ(buf[2], 0x02);
  EXPECT_EQ(buf[3], 0x01);
}

TEST(BinaryIoTest, FloatSpecialValuesSurvive) {
  std::vector<uint8_t> buf;
  BinaryWriter w(&buf);
  const float values[] = {0.0f, -0.0f, std::numeric_limits<float>::infinity(),
                          -std::numeric_limits<float>::infinity(),
                          std::numeric_limits<float>::denorm_min(),
                          std::numeric_limits<float>::max()};
  for (float v : values) w.PutF32(v);
  BinaryReader r(buf);
  for (float expected : values) {
    float got;
    ASSERT_TRUE(r.GetF32(&got).ok());
    EXPECT_EQ(std::memcmp(&got, &expected, 4), 0);  // bit-exact
  }
}

TEST(BinaryIoTest, ArraysRoundTrip) {
  std::vector<uint8_t> buf;
  BinaryWriter w(&buf);
  const std::vector<float> floats = {1.5f, -2.5f, 0.0f};
  const std::vector<uint32_t> ints = {7, 8, 9, 10};
  w.PutF32Array(floats);
  w.PutU32Array(ints);

  BinaryReader r(buf);
  std::vector<float> floats2(3);
  std::vector<uint32_t> ints2(4);
  ASSERT_TRUE(r.GetF32Array(floats2).ok());
  ASSERT_TRUE(r.GetU32Array(ints2).ok());
  EXPECT_EQ(floats2, floats);
  EXPECT_EQ(ints2, ints);
}

TEST(BinaryIoTest, BytesRoundTrip) {
  std::vector<uint8_t> buf;
  BinaryWriter w(&buf);
  const std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
  w.PutBytes(payload);
  BinaryReader r(buf);
  std::vector<uint8_t> out(5);
  ASSERT_TRUE(r.GetBytes(out).ok());
  EXPECT_EQ(out, payload);
}

TEST(BinaryIoTest, TruncatedReadsFailCleanly) {
  std::vector<uint8_t> buf = {1, 2};
  BinaryReader r(buf);
  uint32_t v;
  const Status st = r.GetU32(&v);
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
  // Failed read must not consume anything usable afterwards beyond bounds.
  uint16_t v16;
  EXPECT_TRUE(r.GetU16(&v16).ok());
}

TEST(BinaryIoTest, TruncatedArrayFails) {
  std::vector<uint8_t> buf(7, 0);  // 7 bytes < 2 floats
  BinaryReader r(buf);
  std::vector<float> out(2);
  EXPECT_EQ(r.GetF32Array(out).code(), StatusCode::kCorruption);
}

TEST(BinaryIoTest, SkipAndRemaining) {
  std::vector<uint8_t> buf(10, 0);
  BinaryReader r(buf);
  EXPECT_EQ(r.remaining(), 10u);
  ASSERT_TRUE(r.Skip(4).ok());
  EXPECT_EQ(r.offset(), 4u);
  EXPECT_EQ(r.remaining(), 6u);
  EXPECT_EQ(r.Skip(7).code(), StatusCode::kCorruption);
}

TEST(BinaryIoTest, WriterAlignTo) {
  std::vector<uint8_t> buf;
  BinaryWriter w(&buf);
  w.PutU8(1);
  w.AlignTo(8);
  EXPECT_EQ(buf.size(), 8u);
  w.PutU8(2);
  w.AlignTo(8);
  EXPECT_EQ(buf.size(), 16u);
  w.AlignTo(8);  // already aligned: no-op
  EXPECT_EQ(buf.size(), 16u);
}

TEST(BinaryIoTest, ReaderAlignTo) {
  std::vector<uint8_t> buf(16, 0);
  BinaryReader r(buf);
  ASSERT_TRUE(r.Skip(3).ok());
  ASSERT_TRUE(r.AlignTo(8).ok());
  EXPECT_EQ(r.offset(), 8u);
  ASSERT_TRUE(r.AlignTo(8).ok());
  EXPECT_EQ(r.offset(), 8u);
}

}  // namespace
}  // namespace dhnsw
