#include "dataset/workload.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "core/engine.h"
#include "dataset/synthetic.h"
#include "index/flat_index.h"

namespace dhnsw {
namespace {

Dataset Base() {
  return MakeSynthetic({.dim = 8, .num_base = 2000, .num_queries = 1,
                        .num_clusters = 10, .seed = 151});
}

TEST(QueryStreamTest, BatchShape) {
  Dataset ds = Base();
  QueryStream stream(ds.base, {.shape = WorkloadShape::kUniform, .seed = 1});
  const VectorSet batch = stream.NextBatch(50);
  EXPECT_EQ(batch.size(), 50u);
  EXPECT_EQ(batch.dim(), 8u);
}

TEST(QueryStreamTest, DeterministicForSeed) {
  Dataset ds = Base();
  WorkloadSpec spec{.shape = WorkloadShape::kZipfian, .seed = 7};
  QueryStream a(ds.base, spec), b(ds.base, spec);
  const VectorSet ba = a.NextBatch(20), bb = b.NextBatch(20);
  for (size_t i = 0; i < 20; ++i) {
    for (uint32_t d = 0; d < 8; ++d) ASSERT_FLOAT_EQ(ba[i][d], bb[i][d]);
  }
}

TEST(QueryStreamTest, QueriesStayNearTheData) {
  Dataset ds = Base();
  QueryStream stream(ds.base, {.shape = WorkloadShape::kUniform,
                               .noise_stddev = 0.05f, .seed = 2});
  const VectorSet batch = stream.NextBatch(30);
  // Each query is base row + small noise: its nearest base vector should be
  // very close relative to the data spread.
  FlatIndex flat(8);
  flat.AddBatch(ds.base.flat());
  for (size_t i = 0; i < batch.size(); ++i) {
    const auto top = flat.Search(batch[i], 1);
    EXPECT_LT(std::sqrt(top[0].distance), 20.0f);
  }
}

TEST(QueryStreamTest, ZipfianIsSkewedTowardHeadTopics) {
  Dataset ds = Base();
  WorkloadSpec spec{.shape = WorkloadShape::kZipfian, .zipf_s = 1.2,
                    .num_topics = 20, .noise_stddev = 0.0f, .seed = 3};
  QueryStream stream(ds.base, spec);
  FlatIndex flat(8);
  flat.AddBatch(ds.base.flat());

  std::map<uint32_t, int> topic_counts;
  const VectorSet batch = stream.NextBatch(2000);
  for (size_t i = 0; i < batch.size(); ++i) {
    const uint32_t row = flat.Search(batch[i], 1)[0].id;  // noise==0: exact row
    ++topic_counts[stream.TopicOf(row)];
  }
  // Head topic should dominate the tail topic by a wide margin.
  EXPECT_GT(topic_counts[0], 10 * std::max(1, topic_counts[19]));
}

TEST(QueryStreamTest, DriftingHotSetMoves) {
  Dataset ds = Base();
  WorkloadSpec spec{.shape = WorkloadShape::kDrifting, .num_topics = 10,
                    .hot_topics = 2, .noise_stddev = 0.0f, .seed = 4};
  QueryStream stream(ds.base, spec);
  FlatIndex flat(8);
  flat.AddBatch(ds.base.flat());

  auto hot_topics_of = [&](const VectorSet& batch) {
    std::set<uint32_t> topics;
    for (size_t i = 0; i < batch.size(); ++i) {
      topics.insert(stream.TopicOf(flat.Search(batch[i], 1)[0].id));
    }
    return topics;
  };
  const auto first = hot_topics_of(stream.NextBatch(100));
  EXPECT_LE(first.size(), 2u);
  // After 5 more batches the hot window has moved past the original topics.
  VectorSet later;
  for (int i = 0; i < 5; ++i) later = stream.NextBatch(100);
  const auto moved = hot_topics_of(later);
  EXPECT_NE(first, moved);
}

TEST(QueryStreamTest, SkewedTrafficImprovesCacheHitRate) {
  // The systems-level consequence: a Zipfian stream concentrates cluster
  // demand, so the LRU carries more across batches than under uniform.
  Dataset ds = Base();
  DhnswConfig config = DhnswConfig::Defaults();
  config.meta.num_representatives = 20;
  config.sub_hnsw = HnswOptions{.M = 8, .ef_construction = 40};
  config.compute.clusters_per_query = 3;
  config.compute.cache_capacity = 4;  // 20% of clusters
  auto engine = DhnswEngine::Build(ds.base, config);
  ASSERT_TRUE(engine.ok());

  auto loads_over_batches = [&](WorkloadShape shape, uint32_t zipf_topics) {
    WorkloadSpec spec;
    spec.shape = shape;
    spec.num_topics = zipf_topics;
    spec.zipf_s = 1.4;
    spec.seed = 5;
    QueryStream stream(ds.base, spec);
    ComputeNode& node = engine.value().compute(0);
    node.InvalidateCache();
    uint64_t loads = 0;
    for (int b = 0; b < 6; ++b) {
      const VectorSet batch = stream.NextBatch(60);
      auto result = node.SearchAll(batch, 5, 32);
      EXPECT_TRUE(result.ok());
      loads += result.value().breakdown.clusters_loaded;
    }
    return loads;
  };

  // Skew concentrates demand on few clusters, so the zipf stream needs
  // fewer network loads to serve the same number of queries.
  const uint64_t uniform_loads = loads_over_batches(WorkloadShape::kUniform, 20);
  const uint64_t zipf_loads = loads_over_batches(WorkloadShape::kZipfian, 20);
  EXPECT_LT(zipf_loads, uniform_loads);
}

}  // namespace
}  // namespace dhnsw
