// Telemetry subsystem tests: instrument semantics, registry idempotence,
// trace buffer bounds, JSONL export stability, and the end-to-end contracts
// the instrumented engine must keep — per-stage spans accounting for the
// batch latency and cluster-level cache hit/miss bookkeeping closing against
// the scheduler's unique-cluster demand.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "common/lru_cache.h"
#include "core/engine.h"
#include "dataset/synthetic.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace dhnsw {
namespace {

using telemetry::Counter;
using telemetry::Gauge;
using telemetry::Histogram;
using telemetry::MetricRegistry;
using telemetry::ShardedCounter;
using telemetry::TraceBuffer;
using telemetry::TraceContext;
using telemetry::TraceEvent;
using telemetry::TraceExportOptions;
using telemetry::TraceScope;

TEST(MetricRegistryTest, GetIsIdempotentByName) {
  MetricRegistry registry;
  Counter* a = registry.GetCounter("requests");
  Counter* b = registry.GetCounter("requests");
  EXPECT_EQ(a, b);
  a->Add(3);
  EXPECT_EQ(b->value(), 3u);

  // Distinct names and kinds get distinct instruments.
  EXPECT_NE(registry.GetGauge("resident"), nullptr);
  EXPECT_NE(registry.GetHistogram("latency"), nullptr);
  EXPECT_NE(registry.GetShardedCounter("hot"), nullptr);
}

TEST(MetricRegistryTest, SnapshotFindsValuesByName) {
  MetricRegistry registry;
  registry.GetCounter("c")->Add(7);
  registry.GetGauge("g")->Set(-4);
  registry.GetHistogram("h")->Record(100);
  registry.GetShardedCounter("s")->Add(9);

  const telemetry::MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.Value("c"), 7);
  EXPECT_EQ(snap.Value("g"), -4);
  EXPECT_EQ(snap.Value("s"), 9);
  EXPECT_EQ(snap.Value("absent", -1), -1);
  ASSERT_NE(snap.Find("h"), nullptr);
  EXPECT_EQ(snap.Find("h")->value, 1);   // histogram count
  EXPECT_EQ(snap.Find("h")->sum, 100u);
  // Samples come out sorted by name.
  for (size_t i = 1; i < snap.samples.size(); ++i) {
    EXPECT_LT(snap.samples[i - 1].name, snap.samples[i].name);
  }
}

TEST(MetricRegistryTest, ResetAllZeroesButKeepsPointers) {
  MetricRegistry registry;
  Counter* c = registry.GetCounter("c");
  Gauge* g = registry.GetGauge("g");
  c->Add(5);
  g->Set(5);
  registry.ResetAll();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(g->value(), 0);
  EXPECT_EQ(registry.GetCounter("c"), c);
}

TEST(HistogramTest, BucketBoundsArePowersOfTwo) {
  EXPECT_EQ(Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(2), 3u);
  EXPECT_EQ(Histogram::BucketUpperBound(3), 7u);
  EXPECT_EQ(Histogram::BucketUpperBound(10), 1023u);
  EXPECT_EQ(Histogram::BucketUpperBound(Histogram::kBuckets - 1), UINT64_MAX);

  Histogram h;
  h.Record(0);  // bucket 0
  h.Record(1);  // bucket 1
  h.Record(2);  // bucket 2: [2, 3]
  h.Record(3);
  h.Record(1000);  // bucket 10: [512, 1023]
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 2u);
  EXPECT_EQ(h.bucket_count(10), 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 1006u);
  EXPECT_DOUBLE_EQ(h.mean(), 1006.0 / 5.0);
}

TEST(HistogramTest, ApproxPercentileReturnsBucketUpperBound) {
  Histogram h;
  EXPECT_EQ(h.ApproxPercentile(50.0), 0u);  // empty contract: 0
  for (int i = 0; i < 90; ++i) h.Record(2);     // bucket 2, upper bound 3
  for (int i = 0; i < 10; ++i) h.Record(5000);  // bucket 13, upper bound 8191
  EXPECT_EQ(h.ApproxPercentile(50.0), 3u);
  EXPECT_EQ(h.ApproxPercentile(99.0), 8191u);
  EXPECT_EQ(h.ApproxPercentile(0.0), 3u);  // nearest-rank: never below rank 1
}

TEST(ShardedCounterTest, SumsAcrossThreads) {
  ShardedCounter counter;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < 1000; ++i) counter.Add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.value(), 8000u);
  counter.Reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(TraceBufferTest, BoundedAppendDropsAndCounts) {
  TraceBuffer buffer(2);
  EXPECT_TRUE(buffer.enabled());
  buffer.Append(TraceEvent{"a", 1});
  buffer.Append(TraceEvent{"b", 1});
  buffer.Append(TraceEvent{"c", 1});  // over capacity: dropped, counted
  EXPECT_EQ(buffer.size(), 2u);
  EXPECT_EQ(buffer.dropped(), 1u);

  // Clear forgets events but keeps the reservation (capacity + enabled).
  buffer.Clear();
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_EQ(buffer.dropped(), 0u);
  EXPECT_EQ(buffer.capacity(), 2u);
  EXPECT_TRUE(buffer.enabled());

  // A default (capacity 0) buffer is disabled: appends are silent no-ops.
  TraceBuffer off;
  EXPECT_FALSE(off.enabled());
  off.Append(TraceEvent{"x", 1});
  EXPECT_EQ(off.size(), 0u);
  EXPECT_EQ(off.dropped(), 0u);
}

TEST(TraceBufferTest, DisabledContextIsANoOp) {
  TraceContext ctx;  // default: no buffer, no clock
  EXPECT_FALSE(ctx.enabled());
  ctx.Event("nothing");                 // must not crash
  { TraceScope scope(ctx, "nothing"); }  // must not crash
}

TEST(TraceJsonlTest, FixedKeyOrderAndOptionalFields) {
  TraceBuffer buffer(4);
  buffer.Append(TraceEvent{"batch", 3, TraceEvent::kNoQuery, 10, 25, 999, 7, 8});
  buffer.Append(TraceEvent{"query.sub", 3, 2, 11, 12, 5, 42, 0});

  const std::string deterministic =
      TraceToJsonl(buffer, TraceExportOptions{.include_wall = false});
  EXPECT_EQ(deterministic,
            "{\"name\":\"batch\",\"batch\":3,\"sim_start_ns\":10,\"sim_end_ns\":25,"
            "\"a\":7,\"b\":8}\n"
            "{\"name\":\"query.sub\",\"batch\":3,\"query\":2,\"sim_start_ns\":11,"
            "\"sim_end_ns\":12,\"a\":42,\"b\":0}\n");

  const std::string with_wall = TraceToJsonl(buffer);  // default includes wall
  EXPECT_NE(with_wall.find("\"wall_ns\":999"), std::string::npos);
  // Identical buffers serialize byte-identically (the CI determinism check).
  EXPECT_EQ(deterministic, TraceToJsonl(buffer, TraceExportOptions{.include_wall = false}));
}

TEST(LruCacheTelemetryTest, CountersAndGaugeTrackCacheTraffic) {
  MetricRegistry registry;
  Counter* hits = registry.GetCounter("hits");
  Counter* misses = registry.GetCounter("misses");
  Gauge* entries = registry.GetGauge("entries");

  LruCache<int, int> cache(2);
  cache.AttachTelemetry(hits, misses, entries);

  EXPECT_EQ(cache.Get(1), nullptr);  // miss
  cache.Put(1, 10);
  cache.Put(2, 20);
  EXPECT_NE(cache.Get(1), nullptr);  // hit
  cache.Put(3, 30);                  // evicts 2 (1 was just touched)
  EXPECT_EQ(cache.Get(2), nullptr);  // miss (evicted)

  EXPECT_EQ(hits->value(), 1u);
  EXPECT_EQ(misses->value(), 2u);
  EXPECT_EQ(entries->value(), 2);  // {1, 3} resident

  cache.Erase(1);
  EXPECT_EQ(entries->value(), 1);
  cache.Clear();
  EXPECT_EQ(entries->value(), 0);
}

// ---------------------------------------------------------------------------
// End-to-end contracts on the instrumented engine.
// ---------------------------------------------------------------------------

DhnswConfig SmallConfig() {
  DhnswConfig config = DhnswConfig::Defaults();
  config.meta.num_representatives = 6;
  config.sub_hnsw = HnswOptions{.M = 8, .ef_construction = 40};
  config.compute.clusters_per_query = 3;
  config.compute.cache_capacity = 2;  // smaller than the per-batch demand
  return config;
}

/// Cluster-level cache accounting must close: every unique cluster a batch
/// demands is accounted either as a hit (resident at plan time or becoming
/// resident mid-batch) or as a miss (loaded), across repeated batches and
/// evictions — with pruning off and no faults there is no third outcome.
TEST(TelemetryEngineTest, CacheHitsPlusMissesEqualUniqueClustersRequested) {
  Dataset ds = MakeSynthetic({.dim = 8, .num_base = 900, .num_queries = 30,
                              .num_clusters = 6, .seed = 211});
  auto engine = DhnswEngine::Build(ds.base, SmallConfig());
  ASSERT_TRUE(engine.ok());

  MetricRegistry& reg = telemetry::DefaultRegistry();
  const auto read = [&reg] {
    const telemetry::MetricsSnapshot snap = reg.Snapshot();
    struct View {
      int64_t hits, misses, unique;
    } v{snap.Value("dhnsw_compute_cache_hit_clusters_total"),
        snap.Value("dhnsw_compute_cache_miss_clusters_total"),
        snap.Value("dhnsw_scheduler_unique_clusters_total")};
    return v;
  };

  const auto before = read();
  // Three identical batches: the first is all-cold; later ones mix hits with
  // re-misses forced by the capacity-2 cache evicting mid-batch.
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(engine.value().SearchAll(ds.queries, 5, 32).ok());
  }
  const auto after = read();

  const int64_t hits = after.hits - before.hits;
  const int64_t misses = after.misses - before.misses;
  const int64_t unique = after.unique - before.unique;
  EXPECT_GT(misses, 0);
  EXPECT_GT(unique, 0);
  EXPECT_EQ(hits + misses, unique)
      << "hits " << hits << " + misses " << misses << " != unique " << unique;
  // Capacity 2 < per-batch demand, so even repeated identical batches keep
  // missing (eviction pressure), and the first batch was fully cold.
  EXPECT_GE(misses, unique / 3);
}

/// The disjoint stage.* spans must account for >= 95% of the batch umbrella
/// span, in both time bases — the coverage contract that makes the trace a
/// trustworthy latency breakdown.
TEST(TelemetryEngineTest, StageSpansCoverBatchLatency) {
  Dataset ds = MakeSynthetic({.dim = 32, .num_base = 4000, .num_queries = 200,
                              .num_clusters = 8, .seed = 212});
  DhnswConfig config = DhnswConfig::Defaults();
  config.meta.num_representatives = 10;
  config.sub_hnsw = HnswOptions{.M = 12, .ef_construction = 60};
  config.compute.clusters_per_query = 3;
  config.compute.cache_capacity = 10;
  auto engine = DhnswEngine::Build(ds.base, config);
  ASSERT_TRUE(engine.ok());

  engine.value().EnableTracing(1 << 16);
  ASSERT_TRUE(engine.value().SearchAll(ds.queries, 10, 64).ok());

  const telemetry::TraceBuffer& trace = engine.value().trace(0);
  ASSERT_GT(trace.size(), 0u);
  ASSERT_EQ(trace.dropped(), 0u);

  uint64_t batch_wall = 0, batch_sim = 0;
  uint64_t stage_wall = 0, stage_sim = 0;
  for (const TraceEvent& e : trace.events()) {
    const std::string_view name(e.name);
    if (name == "batch") {
      batch_wall += e.wall_ns;
      batch_sim += e.sim_end_ns - e.sim_start_ns;
    } else if (name.rfind("stage.", 0) == 0) {
      stage_wall += e.wall_ns;
      stage_sim += e.sim_end_ns - e.sim_start_ns;
    }
  }
  ASSERT_GT(batch_wall, 0u);
  // Simulated time only advances inside fabric operations, all of which sit
  // under a stage span — coverage is exact.
  EXPECT_EQ(stage_sim, batch_sim);
  // Wall time has small out-of-stage gaps (heap setup, wave bookkeeping,
  // metric flushes); they must stay under 5% of the batch.
  EXPECT_GE(static_cast<double>(stage_wall), 0.95 * static_cast<double>(batch_wall))
      << "stages cover only " << 100.0 * static_cast<double>(stage_wall) /
             static_cast<double>(batch_wall) << "% of the batch wall time";
}

/// Engine-level snapshot/export plumbing: topology gauges are published and
/// the Prometheus text carries the instrumented families.
TEST(TelemetryEngineTest, MetricsSnapshotPublishesTopology) {
  Dataset ds = MakeSynthetic({.dim = 8, .num_base = 600, .num_queries = 10,
                              .num_clusters = 4, .seed = 213});
  // The topology assertions count the bare (sim) rdma instruments; real
  // backends report under {transport="..."}-labelled names instead.
  DhnswConfig topo_config = SmallConfig();
  topo_config.transport = rdma::TransportOptions::Sim();
  auto engine = DhnswEngine::Build(ds.base, topo_config);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine.value().SearchAll(ds.queries, 5, 32).ok());

  const telemetry::MetricsSnapshot snap = engine.value().MetricsSnapshot();
  EXPECT_EQ(snap.Value("dhnsw_engine_partitions"), 6);
  EXPECT_EQ(snap.Value("dhnsw_engine_compute_nodes"), 1);
  EXPECT_GT(snap.Value("dhnsw_engine_region_bytes"), 0);
  EXPECT_GT(snap.Value("dhnsw_compute_batches_total"), 0);
  EXPECT_GT(snap.Value("dhnsw_rdma_round_trips_total"), 0);

  const std::string text = engine.value().MetricsText();
  EXPECT_NE(text.find("# TYPE dhnsw_engine_partitions gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE dhnsw_compute_batch_network_ns histogram"),
            std::string::npos);
}

}  // namespace
}  // namespace dhnsw
