#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace dhnsw {
namespace {

TEST(SplitMix64Test, DeterministicForSeed) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(SplitMix64Test, DifferentSeedsDiffer) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro256Test, DeterministicForSeed) {
  Xoshiro256 a(99), b(99);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Xoshiro256Test, DoubleInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Xoshiro256Test, FloatInUnitInterval) {
  Xoshiro256 rng(8);
  for (int i = 0; i < 10000; ++i) {
    const float f = rng.NextFloat();
    EXPECT_GE(f, 0.0f);
    EXPECT_LT(f, 1.0f);
  }
}

TEST(Xoshiro256Test, BoundedStaysInBounds) {
  Xoshiro256 rng(9);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(Xoshiro256Test, BoundedZeroReturnsZero) {
  Xoshiro256 rng(10);
  EXPECT_EQ(rng.NextBounded(0), 0u);
}

TEST(Xoshiro256Test, BoundedCoversSmallRangeUniformly) {
  Xoshiro256 rng(11);
  constexpr uint64_t kBound = 10;
  constexpr int kDraws = 100000;
  int counts[kBound] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBounded(kBound)];
  // Each bucket expects 10000; allow 10% slack — far beyond 5-sigma.
  for (uint64_t v = 0; v < kBound; ++v) {
    EXPECT_GT(counts[v], 9000) << "bucket " << v;
    EXPECT_LT(counts[v], 11000) << "bucket " << v;
  }
}

TEST(Xoshiro256Test, GaussianMomentsMatchStandardNormal) {
  Xoshiro256 rng(12);
  constexpr int kDraws = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / kDraws;
  const double var = sum_sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Xoshiro256Test, StreamsAreNotTriviallyRepeating) {
  Xoshiro256 rng(13);
  std::set<uint64_t> seen;
  for (int i = 0; i < 10000; ++i) seen.insert(rng.Next());
  EXPECT_EQ(seen.size(), 10000u);  // collision in 1e4 draws of u64 ~ impossible
}

}  // namespace
}  // namespace dhnsw
