#include "index/lsh.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "index/flat_index.h"

namespace dhnsw {
namespace {

std::vector<float> RandomData(Xoshiro256& rng, size_t n, uint32_t dim, float scale) {
  std::vector<float> data(n * dim);
  for (auto& x : data) x = (rng.NextFloat() - 0.5f) * scale;
  return data;
}

TEST(LshTest, EmptySearchIsEmpty) {
  LshIndex index(8);
  index.Build({});
  size_t candidates = 99;
  EXPECT_TRUE(index.Search(std::vector<float>(8, 0.0f), 5, &candidates).empty());
  EXPECT_EQ(candidates, 0u);
}

TEST(LshTest, ExactDuplicateAlwaysFound) {
  // A query identical to an indexed vector hashes to the same bucket in
  // every table — it must always be candidate #1.
  Xoshiro256 rng(11);
  const auto data = RandomData(rng, 1000, 16, 10.0f);
  LshIndex index(16, {.num_tables = 4, .num_bits = 10});
  index.Build(data);
  for (uint32_t probe : {0u, 100u, 500u}) {
    const std::span<const float> q{data.data() + probe * 16, 16};
    const auto top = index.Search(q, 1);
    ASSERT_FALSE(top.empty());
    EXPECT_FLOAT_EQ(top[0].distance, 0.0f);
  }
}

TEST(LshTest, MoreTablesImproveRecall) {
  Xoshiro256 rng(12);
  const uint32_t dim = 32;
  const auto data = RandomData(rng, 4000, dim, 10.0f);
  FlatIndex flat(dim);
  flat.AddBatch(data);

  auto recall_with = [&](uint32_t tables) {
    LshIndex index(dim, {.num_tables = tables, .num_bits = 12, .seed = 99});
    index.Build(data);
    int hits = 0;
    Xoshiro256 qrng(13);
    for (int t = 0; t < 30; ++t) {
      const auto q = RandomData(qrng, 1, dim, 10.0f);
      const auto got = index.Search(q, 10);
      const auto want = flat.Search(q, 10);
      std::set<uint32_t> want_ids;
      for (const auto& s : want) want_ids.insert(s.id);
      for (const auto& s : got) hits += want_ids.count(s.id);
    }
    return hits;
  };

  const int r1 = recall_with(1);
  const int r16 = recall_with(16);
  EXPECT_GT(r16, r1);
}

TEST(LshTest, MultiprobeExpandsCandidates) {
  Xoshiro256 rng(14);
  const uint32_t dim = 24;
  const auto data = RandomData(rng, 3000, dim, 10.0f);

  LshIndex plain(dim, {.num_tables = 4, .num_bits = 14, .multiprobe = 0, .seed = 7});
  LshIndex multi(dim, {.num_tables = 4, .num_bits = 14, .multiprobe = 1, .seed = 7});
  plain.Build(data);
  multi.Build(data);

  size_t plain_total = 0, multi_total = 0;
  Xoshiro256 qrng(15);
  for (int t = 0; t < 20; ++t) {
    const auto q = RandomData(qrng, 1, dim, 10.0f);
    size_t c1 = 0, c2 = 0;
    plain.Search(q, 10, &c1);
    multi.Search(q, 10, &c2);
    plain_total += c1;
    multi_total += c2;
    EXPECT_GE(c2, c1);
  }
  EXPECT_GT(multi_total, plain_total);
}

TEST(LshTest, CandidatesAreSubsetReRankedExactly) {
  // Whatever LSH returns must be in exact ascending distance order and a
  // subset of the true ranking restricted to its candidate pool.
  Xoshiro256 rng(16);
  const uint32_t dim = 16;
  const auto data = RandomData(rng, 1000, dim, 10.0f);
  LshIndex index(dim, {.num_tables = 6, .num_bits = 10});
  index.Build(data);
  const auto q = RandomData(rng, 1, dim, 10.0f);
  const auto got = index.Search(q, 10);
  for (size_t i = 1; i < got.size(); ++i) {
    EXPECT_LE(got[i - 1].distance, got[i].distance);
  }
  for (const auto& s : got) {
    EXPECT_FLOAT_EQ(s.distance, L2Sq({data.data() + s.id * dim, dim}, q));
  }
}

TEST(LshTest, DeterministicForSeed) {
  Xoshiro256 rng(17);
  const auto data = RandomData(rng, 500, 8, 10.0f);
  LshIndex a(8, {.num_tables = 3, .num_bits = 8, .seed = 42});
  LshIndex b(8, {.num_tables = 3, .num_bits = 8, .seed = 42});
  a.Build(data);
  b.Build(data);
  const auto q = RandomData(rng, 1, 8, 10.0f);
  const auto r1 = a.Search(q, 5);
  const auto r2 = b.Search(q, 5);
  ASSERT_EQ(r1.size(), r2.size());
  for (size_t i = 0; i < r1.size(); ++i) EXPECT_EQ(r1[i].id, r2[i].id);
}

TEST(LshTest, BitsClampedToValidRange) {
  LshIndex index(4, {.num_tables = 1, .num_bits = 200});  // clamped to 63
  index.Build(std::vector<float>{1, 2, 3, 4});
  EXPECT_EQ(index.size(), 1u);
  const auto top = index.Search(std::vector<float>{1, 2, 3, 4}, 1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].id, 0u);
}

}  // namespace
}  // namespace dhnsw
