// Fabric/queue-pair level tests of the deterministic fault-injection layer:
// arming/clearing plans, per-WR completion statuses, transient trigger
// budgets, payload bit-flips, injected latency, and the determinism contract.
#include "rdma/fault_injection.h"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "rdma/queue_pair.h"

namespace dhnsw::rdma {
namespace {

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    mem_node_ = fabric_.AddNode("mem");
    fabric_.AddNode("compute");
    auto rkey = fabric_.RegisterMemory(mem_node_, kRegionSize);
    ASSERT_TRUE(rkey.ok());
    rkey_ = rkey.value();
  }

  static FaultRule Permanent(FaultKind kind) {
    FaultRule rule;
    rule.kind = kind;
    return rule;
  }

  static constexpr size_t kRegionSize = 1 << 20;
  // Fault injection is simulator-only by construction (Fabric::ArmFaults
  // refuses on real transports): pin the sim backend for the whole suite.
  Fabric fabric_{NicModelConfig{}, TransportOptions::Sim()};
  NodeId mem_node_ = 0;
  RKey rkey_ = 0;
  SimClock clock_;
};

TEST_F(FaultInjectionTest, ArmAndClearRoundTrip) {
  EXPECT_EQ(fabric_.fault_plan(), nullptr);
  ASSERT_TRUE(fabric_.ArmFaults(FaultPlan(42).Add(Permanent(FaultKind::kUnreachable))).ok());
  auto armed = fabric_.fault_plan();
  ASSERT_NE(armed, nullptr);
  EXPECT_EQ(armed->seed(), 42u);
  EXPECT_EQ(armed->rules().size(), 1u);
  fabric_.ClearFaults();
  EXPECT_EQ(fabric_.fault_plan(), nullptr);
}

TEST_F(FaultInjectionTest, UnreachableFaultDoesNotExecuteTheOp) {
  QueuePair qp(&fabric_, &clock_);
  std::vector<uint8_t> payload = {1, 2, 3, 4};
  ASSERT_TRUE(qp.Write(rkey_, 64, payload).ok());

  FaultRule rule = Permanent(FaultKind::kUnreachable);
  rule.opcode = Opcode::kWrite;
  ASSERT_TRUE(fabric_.ArmFaults(FaultPlan(1).Add(rule)).ok());

  std::vector<uint8_t> overwrite = {9, 9, 9, 9};
  Status st = qp.Write(rkey_, 64, overwrite);
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_EQ(qp.stats().injected_faults, 1u);

  // Reads are outside the rule's scope; the original bytes must be intact.
  std::vector<uint8_t> in(4, 0);
  ASSERT_TRUE(qp.Read(rkey_, 64, in).ok());
  EXPECT_EQ(in, payload);
}

TEST_F(FaultInjectionTest, TimeoutMapsToDeadlineExceededAndChargesTime) {
  QueuePair qp(&fabric_, &clock_);
  std::vector<uint8_t> buf(8);
  ASSERT_TRUE(qp.Read(rkey_, 0, buf).ok());
  const uint64_t clean_op_ns = clock_.now_ns();

  FaultRule rule = Permanent(FaultKind::kTimeout);
  rule.delay_ns = 1'000'000;
  ASSERT_TRUE(fabric_.ArmFaults(FaultPlan(2).Add(rule)).ok());

  const uint64_t before = clock_.now_ns();
  EXPECT_EQ(qp.Read(rkey_, 0, buf).code(), StatusCode::kDeadlineExceeded);
  // A timed-out op costs at least the fault-free op plus the injected wait.
  EXPECT_GE(clock_.now_ns() - before, clean_op_ns + rule.delay_ns);
}

TEST_F(FaultInjectionTest, DelayFaultSucceedsButChargesExtraTime) {
  QueuePair qp(&fabric_, &clock_);
  std::vector<uint8_t> buf(64);
  ASSERT_TRUE(qp.Read(rkey_, 0, buf).ok());
  const uint64_t clean_op_ns = clock_.now_ns();

  FaultRule rule = Permanent(FaultKind::kDelay);
  rule.delay_ns = 777'000;
  ASSERT_TRUE(fabric_.ArmFaults(FaultPlan(3).Add(rule)).ok());

  const uint64_t before = clock_.now_ns();
  EXPECT_TRUE(qp.Read(rkey_, 0, buf).ok());
  EXPECT_EQ(clock_.now_ns() - before, clean_op_ns + rule.delay_ns);
}

TEST_F(FaultInjectionTest, ReadBitFlipCorruptsLocalBufferNotRemoteMemory) {
  QueuePair qp(&fabric_, &clock_);
  std::vector<uint8_t> payload(32);
  std::iota(payload.begin(), payload.end(), 0);
  ASSERT_TRUE(qp.Write(rkey_, 128, payload).ok());

  FaultRule rule = Permanent(FaultKind::kBitFlip);
  rule.opcode = Opcode::kRead;
  rule.bit_flips = 1;
  ASSERT_TRUE(fabric_.ArmFaults(FaultPlan(4).Add(rule)).ok());

  std::vector<uint8_t> in(32, 0);
  ASSERT_TRUE(qp.Read(rkey_, 128, in).ok());  // bit-flips still "succeed"
  size_t diffs = 0;
  for (size_t i = 0; i < in.size(); ++i) diffs += (in[i] != payload[i]);
  EXPECT_EQ(diffs, 1u);

  // The remote region itself was not damaged: a clean read round-trips.
  fabric_.ClearFaults();
  std::vector<uint8_t> again(32, 0);
  ASSERT_TRUE(qp.Read(rkey_, 128, again).ok());
  EXPECT_EQ(again, payload);
}

TEST_F(FaultInjectionTest, WriteBitFlipCorruptsRemoteMemoryNotTheSource) {
  QueuePair qp(&fabric_, &clock_);
  FaultRule rule = Permanent(FaultKind::kBitFlip);
  rule.opcode = Opcode::kWrite;
  ASSERT_TRUE(fabric_.ArmFaults(FaultPlan(5).Add(rule)).ok());

  std::vector<uint8_t> payload(16, 0xAA);
  const std::vector<uint8_t> source_copy = payload;
  ASSERT_TRUE(qp.Write(rkey_, 0, payload).ok());
  EXPECT_EQ(payload, source_copy);  // caller's buffer is never mutated

  fabric_.ClearFaults();
  std::vector<uint8_t> in(16, 0);
  ASSERT_TRUE(qp.Read(rkey_, 0, in).ok());
  size_t diffs = 0;
  for (size_t i = 0; i < in.size(); ++i) diffs += (in[i] != payload[i]);
  EXPECT_EQ(diffs, 1u);
}

TEST_F(FaultInjectionTest, FlushReportsPerWrStatusesIndependently) {
  QueuePair qp(&fabric_, &clock_, /*max_doorbell_wrs=*/16);
  // Fail only WRs that touch [512, 1024); siblings in the same doorbell
  // batch must complete fine — first-error-wins semantics are gone.
  FaultRule rule = Permanent(FaultKind::kUnreachable);
  rule.offset_lo = 512;
  rule.offset_hi = 1024;
  ASSERT_TRUE(fabric_.ArmFaults(FaultPlan(6).Add(rule)).ok());

  std::vector<std::vector<uint8_t>> bufs(8, std::vector<uint8_t>(64));
  for (size_t i = 0; i < bufs.size(); ++i) {
    qp.PostRead(rkey_, i * 256, bufs[i], /*wr_id=*/i);
  }
  const std::vector<Completion> completions = qp.Flush();
  ASSERT_EQ(completions.size(), 8u);
  for (const Completion& c : completions) {
    const uint64_t offset = c.wr_id * 256;
    const bool in_window = offset >= 512 && offset < 1024;
    EXPECT_EQ(c.status == WcStatus::kRemoteUnreachable, in_window)
        << "wr " << c.wr_id;
  }
  EXPECT_EQ(qp.stats().injected_faults, 2u);  // offsets 512 and 768
}

TEST_F(FaultInjectionTest, TransientBudgetExpiresAndSkipFirstDelays) {
  QueuePair qp(&fabric_, &clock_);
  FaultRule rule = Permanent(FaultKind::kUnreachable);
  rule.skip_first = 2;
  rule.max_triggers = 3;
  ASSERT_TRUE(fabric_.ArmFaults(FaultPlan(7).Add(rule)).ok());

  std::vector<uint8_t> buf(8);
  for (int op = 0; op < 10; ++op) {
    const Status st = qp.Read(rkey_, 0, buf);
    const bool should_fail = op >= 2 && op < 5;  // skip 2, then 3 triggers
    EXPECT_EQ(!st.ok(), should_fail) << "op " << op;
  }
  EXPECT_EQ(qp.stats().injected_faults, 3u);
}

TEST_F(FaultInjectionTest, EveryNthFiresPeriodically) {
  QueuePair qp(&fabric_, &clock_);
  FaultRule rule = Permanent(FaultKind::kUnreachable);
  rule.every_nth = 3;
  ASSERT_TRUE(fabric_.ArmFaults(FaultPlan(8).Add(rule)).ok());

  std::vector<uint8_t> buf(8);
  int failures = 0;
  for (int op = 0; op < 9; ++op) failures += !qp.Read(rkey_, 0, buf).ok();
  EXPECT_EQ(failures, 3);
}

TEST_F(FaultInjectionTest, ZeroProbabilityNeverFires) {
  QueuePair qp(&fabric_, &clock_);
  FaultRule rule = Permanent(FaultKind::kUnreachable);
  rule.probability = 0.0;
  ASSERT_TRUE(fabric_.ArmFaults(FaultPlan(9).Add(rule)).ok());
  std::vector<uint8_t> buf(8);
  for (int op = 0; op < 50; ++op) EXPECT_TRUE(qp.Read(rkey_, 0, buf).ok());
  EXPECT_EQ(qp.stats().injected_faults, 0u);
}

TEST_F(FaultInjectionTest, ProbabilisticRuleIsDeterministicAcrossFabrics) {
  // Two independent fabrics with the same plan seed and the same op sequence
  // must make identical decisions — the whole determinism contract.
  auto run = [](uint64_t plan_seed) {
    Fabric fabric(NicModelConfig{}, TransportOptions::Sim());
    const NodeId mem = fabric.AddNode("mem");
    const RKey rkey = fabric.RegisterMemory(mem, 1 << 16).value();
    SimClock clock;
    QueuePair qp(&fabric, &clock);
    FaultRule rule;
    rule.kind = FaultKind::kUnreachable;
    rule.probability = 0.4;
    EXPECT_TRUE(fabric.ArmFaults(FaultPlan(plan_seed).Add(rule)).ok());
    std::vector<uint8_t> buf(8);
    std::vector<bool> outcomes;
    for (int op = 0; op < 64; ++op) outcomes.push_back(qp.Read(rkey, 0, buf).ok());
    return outcomes;
  };
  const auto a = run(1234);
  EXPECT_EQ(a, run(1234));
  EXPECT_NE(a, run(99887766));  // different seed, different schedule
  EXPECT_GT(std::count(a.begin(), a.end(), false), 0);
  EXPECT_GT(std::count(a.begin(), a.end(), true), 0);
}

TEST_F(FaultInjectionTest, ReArmingResetsTriggerBudgets) {
  QueuePair qp(&fabric_, &clock_);
  FaultRule rule = Permanent(FaultKind::kUnreachable);
  rule.max_triggers = 1;
  std::vector<uint8_t> buf(8);

  ASSERT_TRUE(fabric_.ArmFaults(FaultPlan(10).Add(rule)).ok());
  EXPECT_FALSE(qp.Read(rkey_, 0, buf).ok());  // budget spent
  EXPECT_TRUE(qp.Read(rkey_, 0, buf).ok());

  ASSERT_TRUE(fabric_.ArmFaults(FaultPlan(10).Add(rule)).ok());  // fresh plan object
  EXPECT_FALSE(qp.Read(rkey_, 0, buf).ok());  // budget is back
}

TEST_F(FaultInjectionTest, RkeyScopeLimitsTheBlastRadius) {
  auto rkey2 = fabric_.RegisterMemory(mem_node_, 4096);
  ASSERT_TRUE(rkey2.ok());
  FaultRule rule = Permanent(FaultKind::kUnreachable);
  rule.rkey = rkey2.value();
  ASSERT_TRUE(fabric_.ArmFaults(FaultPlan(11).Add(rule)).ok());

  QueuePair qp(&fabric_, &clock_);
  std::vector<uint8_t> buf(8);
  EXPECT_TRUE(qp.Read(rkey_, 0, buf).ok());
  EXPECT_EQ(qp.Read(rkey2.value(), 0, buf).code(), StatusCode::kUnavailable);
}

TEST_F(FaultInjectionTest, AtomicsCanFaultToo) {
  QueuePair qp(&fabric_, &clock_);
  FaultRule rule = Permanent(FaultKind::kUnreachable);
  rule.opcode = Opcode::kFetchAdd;
  ASSERT_TRUE(fabric_.ArmFaults(FaultPlan(12).Add(rule)).ok());

  auto faa = qp.FetchAdd(rkey_, 0, 5);
  EXPECT_EQ(faa.status().code(), StatusCode::kUnavailable);
  // The add must NOT have landed (timeout/unreachable model: op not executed).
  fabric_.ClearFaults();
  auto read_back = qp.FetchAdd(rkey_, 0, 0);
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(read_back.value(), 0u);
}

TEST_F(FaultInjectionTest, OneShotsRejectUndrainedCompletionQueues) {
  QueuePair qp(&fabric_, &clock_);
  std::vector<uint8_t> buf(8);
  qp.PostRead(rkey_, 0, buf, 1);
  qp.RingDoorbell();
  // CQ has an unpolled completion: one-shots must refuse instead of
  // mis-attributing it.
  EXPECT_EQ(qp.Read(rkey_, 0, buf).code(), StatusCode::kInternal);
  Completion c;
  ASSERT_TRUE(qp.PollCompletion(&c));
  EXPECT_TRUE(qp.Read(rkey_, 0, buf).ok());
}

TEST_F(FaultInjectionTest, FaultKindNamesAreStable) {
  EXPECT_EQ(FaultKindName(FaultKind::kUnreachable), "unreachable");
  EXPECT_EQ(FaultKindName(FaultKind::kTimeout), "timeout");
  EXPECT_EQ(FaultKindName(FaultKind::kBitFlip), "bit-flip");
  EXPECT_EQ(FaultKindName(FaultKind::kDelay), "delay");
}

}  // namespace
}  // namespace dhnsw::rdma
