// Recovery-layer tests at the engine level: mid-batch memory-node outages
// degrade to per-query partial results with IDENTICAL semantics across the
// three engine modes, failed loads never pollute the LRU cluster cache, and
// transient faults are healed by the retry/backoff budget (charged to the
// simulated clock, visible in the batch breakdown).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/retry_policy.h"
#include "core/engine.h"
#include "dataset/synthetic.h"
#include "rdma/fault_injection.h"

namespace dhnsw {
namespace {

struct Rig {
  Dataset ds;
  DhnswEngine engine;
};

Rig BuildRig(EngineMode mode, size_t num_memory_nodes = 1) {
  Dataset ds = MakeSynthetic({.dim = 8, .num_base = 900, .num_queries = 16,
                              .num_clusters = 6, .seed = 424});
  DhnswConfig config = DhnswConfig::Defaults();
  // The rig arms FaultPlans and asserts SimClock-charged backoff — both
  // simulator-only contracts — so pin the sim backend.
  config.transport = rdma::TransportOptions::Sim();
  config.meta.num_representatives = 6;
  config.compute.mode = mode;
  config.compute.clusters_per_query = 3;
  config.compute.cache_capacity = 6;
  config.num_memory_nodes = num_memory_nodes;
  auto engine = DhnswEngine::Build(ds.base, config);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  return {std::move(ds), std::move(engine).value()};
}

/// Clusters stored on memory-node slot `slot` (round-robin shard layout).
std::vector<uint32_t> ClustersOnSlot(const DhnswEngine& engine, uint32_t slot) {
  std::vector<uint32_t> out;
  const LayoutPlan& plan = engine.memory_node()->plan();
  for (uint32_t c = 0; c < plan.entries.size(); ++c) {
    if (plan.entries[c].node_slot == slot) out.push_back(c);
  }
  return out;
}

// Regression: BackoffNs used to compute pow(multiplier, failures - 1) in the
// double domain and cast to uint64_t BEFORE clamping. With a large attempt
// budget the product overflows the uint64_t range and the cast is undefined
// behaviour (it produced 0 on x86-64, silently erasing the backoff). The clamp
// must happen while the value is still a double.
TEST(FaultRecoveryTest, BackoffClampsInDoubleDomainUnderLargeAttemptBudgets) {
  RetryPolicy policy;
  policy.max_attempts = 64;
  policy.initial_backoff_ns = 1000;
  policy.backoff_multiplier = 10.0;  // 1000 * 10^63 >> 2^64
  policy.max_backoff_ns = 5'000'000;
  EXPECT_EQ(policy.BackoffNs(0), 0u);
  EXPECT_EQ(policy.BackoffNs(1), 1000u);
  EXPECT_EQ(policy.BackoffNs(2), 10'000u);
  for (uint32_t f = 5; f <= 64; ++f) {
    EXPECT_EQ(policy.BackoffNs(f), policy.max_backoff_ns) << "failures=" << f;
  }
  // Far beyond the attempt budget the value must still be the clamp, never a
  // wrapped/UB cast result.
  EXPECT_EQ(policy.BackoffNs(200), policy.max_backoff_ns);
  EXPECT_EQ(policy.BackoffNs(4096), policy.max_backoff_ns);

  // Monotone non-decreasing up to the clamp.
  uint64_t prev = 0;
  for (uint32_t f = 1; f <= 64; ++f) {
    const uint64_t ns = policy.BackoffNs(f);
    EXPECT_GE(ns, prev);
    prev = ns;
  }
}

TEST(FaultRecoveryTest, MidBatchNodeFailureIsIdenticalAcrossModes) {
  // Kill the secondary memory node between batches; every mode must return
  // the same per-query statuses and the same surviving result ids.
  std::vector<std::vector<StatusCode>> codes;
  std::vector<std::vector<std::vector<uint32_t>>> ids;
  for (EngineMode mode :
       {EngineMode::kNaive, EngineMode::kNoDoorbell, EngineMode::kFull}) {
    Rig rig = BuildRig(mode, /*num_memory_nodes=*/2);
    const std::vector<uint32_t> lost = ClustersOnSlot(rig.engine, 1);
    ASSERT_FALSE(lost.empty());

    rig.engine.compute(0).mutable_options()->partial_results = true;
    rig.engine.fabric().SetNodeReachable(rig.engine.memory_handle().shard_nodes[1],
                                         false);
    auto run = rig.engine.SearchAll(rig.ds.queries, 5, 200);
    ASSERT_TRUE(run.ok()) << EngineModeName(mode) << ": " << run.status().ToString();
    ASSERT_EQ(run.value().statuses.size(), rig.ds.queries.size());
    EXPECT_GT(run.value().breakdown.failed_loads, 0u) << EngineModeName(mode);

    std::vector<StatusCode> mode_codes;
    std::vector<std::vector<uint32_t>> mode_ids;
    size_t degraded = 0;
    for (size_t qi = 0; qi < run.value().results.size(); ++qi) {
      const Status& st = run.value().statuses[qi];
      mode_codes.push_back(st.code());
      degraded += !st.ok();
      const auto routed =
          rig.engine.compute(0).meta().RouteMany(rig.ds.queries[qi], 3);
      const bool touches_lost = std::any_of(
          routed.begin(), routed.end(), [&](uint32_t c) {
            return std::find(lost.begin(), lost.end(), c) != lost.end();
          });
      EXPECT_EQ(!st.ok(), touches_lost) << EngineModeName(mode) << " query " << qi;
      std::vector<uint32_t> q;
      for (const Scored& s : run.value().results[qi]) q.push_back(s.id);
      mode_ids.push_back(std::move(q));
    }
    EXPECT_GT(degraded, 0u);
    EXPECT_LT(degraded, rig.ds.queries.size());  // batch never fully poisoned
    codes.push_back(std::move(mode_codes));
    ids.push_back(std::move(mode_ids));
  }
  for (size_t m = 1; m < codes.size(); ++m) {
    EXPECT_EQ(codes[m], codes[0]) << "mode " << m;
    EXPECT_EQ(ids[m], ids[0]) << "mode " << m;
  }
}

TEST(FaultRecoveryTest, WithoutPartialResultsNodeFailureFailsTheBatch) {
  Rig rig = BuildRig(EngineMode::kFull, 2);
  rig.engine.fabric().SetNodeReachable(rig.engine.memory_handle().shard_nodes[1],
                                       false);
  auto run = rig.engine.SearchAll(rig.ds.queries, 5, 200);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kUnavailable);
}

TEST(FaultRecoveryTest, FailedLoadsNeverPolluteTheCache) {
  Rig rig = BuildRig(EngineMode::kFull, 2);
  const std::vector<uint32_t> lost = ClustersOnSlot(rig.engine, 1);
  ASSERT_FALSE(lost.empty());
  ComputeNode& node = rig.engine.compute(0);
  node.mutable_options()->partial_results = true;

  rig.engine.fabric().SetNodeReachable(rig.engine.memory_handle().shard_nodes[1],
                                       false);
  ASSERT_TRUE(rig.engine.SearchAll(rig.ds.queries, 5, 200).ok());
  for (uint32_t c : lost) {
    EXPECT_FALSE(node.IsCached(c)) << "failed cluster " << c << " was cached";
  }

  // After the node comes back, the same batch heals completely: every cluster
  // loads, every query is OK — nothing stale or poisoned is left behind.
  rig.engine.fabric().SetNodeReachable(rig.engine.memory_handle().shard_nodes[1],
                                       true);
  auto healed = rig.engine.SearchAll(rig.ds.queries, 5, 200);
  ASSERT_TRUE(healed.ok());
  for (const Status& st : healed.value().statuses) EXPECT_TRUE(st.ok());
  for (uint32_t c : lost) EXPECT_TRUE(node.IsCached(c));
}

TEST(FaultRecoveryTest, TransientFaultsHealViaBackoffChargedToSimClock) {
  Rig rig = BuildRig(EngineMode::kFull);
  ComputeNode& node = rig.engine.compute(0);
  auto baseline = rig.engine.SearchAll(rig.ds.queries, 5, 200);
  ASSERT_TRUE(baseline.ok());

  // Three transient unreachable completions on cluster READs, then clean.
  rdma::FaultRule rule;
  rule.kind = rdma::FaultKind::kUnreachable;
  rule.opcode = rdma::Opcode::kRead;
  rule.max_triggers = 3;
  ASSERT_TRUE(rig.engine.fabric().ArmFaults(rdma::FaultPlan(5).Add(rule)).ok());

  node.InvalidateCache();
  node.mutable_options()->retry = RetryPolicy::Default();
  const uint64_t before_ns = node.clock().now_ns();
  auto healed = rig.engine.SearchAll(rig.ds.queries, 5, 200);
  rig.engine.fabric().ClearFaults();
  ASSERT_TRUE(healed.ok()) << healed.status().ToString();

  EXPECT_GT(healed.value().breakdown.retries, 0u);
  EXPECT_GT(healed.value().breakdown.backoff_ns, 0u);
  // Backoff is charged to the simulated clock, not wall time.
  EXPECT_GE(node.clock().now_ns() - before_ns, healed.value().breakdown.backoff_ns);
  // And the answers match the fault-free run bit-exactly.
  ASSERT_EQ(healed.value().results.size(), baseline.value().results.size());
  for (size_t qi = 0; qi < healed.value().results.size(); ++qi) {
    ASSERT_EQ(healed.value().results[qi].size(), baseline.value().results[qi].size());
    for (size_t j = 0; j < healed.value().results[qi].size(); ++j) {
      EXPECT_EQ(healed.value().results[qi][j].id, baseline.value().results[qi][j].id);
    }
  }
}

TEST(FaultRecoveryTest, DeadlineBoundsTheRetryBudget) {
  Rig rig = BuildRig(EngineMode::kFull);
  ComputeNode& node = rig.engine.compute(0);

  // Permanent outage + a tight per-batch deadline: the batch must give up
  // quickly (deadline says stop) instead of burning all max_attempts.
  rdma::FaultRule rule;
  rule.kind = rdma::FaultKind::kUnreachable;
  rule.opcode = rdma::Opcode::kRead;
  ASSERT_TRUE(rig.engine.fabric().ArmFaults(rdma::FaultPlan(6).Add(rule)).ok());

  node.InvalidateCache();
  RetryPolicy tight = RetryPolicy::Default();
  tight.max_attempts = 1000;
  tight.initial_backoff_ns = 1'000'000;
  tight.deadline_ns = 3'000'000;  // only a couple of backoffs fit
  node.mutable_options()->retry = tight;
  auto run = rig.engine.SearchAll(rig.ds.queries, 5, 200);
  rig.engine.fabric().ClearFaults();
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kUnavailable);
}

TEST(FaultRecoveryTest, InsertRetriesThroughTransientFaults) {
  Rig rig = BuildRig(EngineMode::kFull);
  rig.engine.compute(0).mutable_options()->retry = RetryPolicy::Default();

  // One transient unreachable on the FAA path, one on the WRITE path: the
  // insert protocol must retry both legs without double-allocating slots.
  rdma::FaultRule faa;
  faa.kind = rdma::FaultKind::kUnreachable;
  faa.opcode = rdma::Opcode::kFetchAdd;
  faa.max_triggers = 1;
  rdma::FaultRule write;
  write.kind = rdma::FaultKind::kUnreachable;
  write.opcode = rdma::Opcode::kWrite;
  write.max_triggers = 1;
  ASSERT_TRUE(rig.engine.fabric().ArmFaults(rdma::FaultPlan(7).Add(faa).Add(write)).ok());

  std::vector<float> v(rig.ds.base[0].begin(), rig.ds.base[0].end());
  auto id = rig.engine.Insert(v);
  rig.engine.fabric().ClearFaults();
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  // The vector is findable afterwards — the retried legs really landed.
  VectorSet probe(rig.engine.dim());
  probe.Append(v);
  auto found = rig.engine.SearchAll(probe, 3, 200);
  ASSERT_TRUE(found.ok());
  const auto& top = found.value().results[0];
  EXPECT_TRUE(std::any_of(top.begin(), top.end(),
                          [&](const Scored& s) { return s.id == id.value(); }));
}

TEST(FaultRecoveryTest, InsertWithoutRetryFailsCleanly) {
  Rig rig = BuildRig(EngineMode::kFull);
  rdma::FaultRule rule;
  rule.kind = rdma::FaultKind::kUnreachable;
  rule.opcode = rdma::Opcode::kFetchAdd;
  ASSERT_TRUE(rig.engine.fabric().ArmFaults(rdma::FaultPlan(8).Add(rule)).ok());

  std::vector<float> v(rig.ds.base[0].begin(), rig.ds.base[0].end());
  auto id = rig.engine.Insert(v);
  EXPECT_FALSE(id.ok());
  EXPECT_EQ(id.status().code(), StatusCode::kUnavailable);
  rig.engine.fabric().ClearFaults();
}

}  // namespace
}  // namespace dhnsw
