// Seed-determinism acceptance tests: the same (config, data seed, fault
// plan) replays byte-identically — same result ids AND bit-exact distances,
// same simulated-ns total, same wire counters — across independent runs and
// across search_threads settings. This is what makes a chaos failure
// reproducible from nothing but the seed that found it.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "chaos_harness.h"
#include "telemetry/trace.h"

namespace dhnsw {
namespace {

struct Observed {
  BatchResult result;
  uint64_t sim_ns = 0;        ///< compute instance's clock after the run
  uint64_t round_trips = 0;
  uint64_t injected_faults = 0;
  uint64_t backoff_ns = 0;
};

Observed RunOnce(size_t search_threads, uint64_t plan_seed) {
  ChaosHarness h({.transport = rdma::TransportOptions::Sim()});
  ComputeNode& node = h.engine().compute(0);
  node.mutable_options()->search_threads = search_threads;

  RetryPolicy retry = RetryPolicy::Default();
  retry.max_attempts = ChaosHarness::kTransientTriggerBudget + 4;
  auto run = h.RunUnderPlan(h.MakeTransientPlan(plan_seed), retry, false);
  EXPECT_TRUE(run.ok()) << run.status().ToString();

  Observed obs;
  obs.result = std::move(run).value();
  obs.sim_ns = node.clock().now_ns();
  obs.round_trips = node.qp_stats().round_trips;
  obs.injected_faults = node.qp_stats().injected_faults;
  obs.backoff_ns = obs.result.breakdown.backoff_ns;
  return obs;
}

void ExpectIdentical(const Observed& a, const Observed& b, const char* what) {
  EXPECT_TRUE(SameResults(a.result, b.result)) << what;
  EXPECT_EQ(a.sim_ns, b.sim_ns) << what;
  EXPECT_EQ(a.round_trips, b.round_trips) << what;
  EXPECT_EQ(a.injected_faults, b.injected_faults) << what;
  EXPECT_EQ(a.backoff_ns, b.backoff_ns) << what;
}

TEST(ChaosDeterminismTest, IdenticalAcrossIndependentRuns) {
  const Observed first = RunOnce(1, 31);
  const Observed second = RunOnce(1, 31);
  ASSERT_GT(first.injected_faults, 0u) << "schedule 31 never fired";
  ExpectIdentical(first, second, "run 1 vs run 2");
}

TEST(ChaosDeterminismTest, IdenticalAcrossSearchThreadCounts) {
  // RDMA traffic (and thus fault decisions, retries, and simulated time) is
  // issued from the batch's caller thread; intra-instance search parallelism
  // must not perturb any of it.
  const Observed serial = RunOnce(1, 31);
  for (size_t threads : {2, 4}) {
    const Observed parallel = RunOnce(threads, 31);
    ExpectIdentical(serial, parallel, "search_threads");
  }
}

TEST(ChaosDeterminismTest, DifferentPlanSeedsGiveDifferentSchedules) {
  const Observed a = RunOnce(1, 31);
  const Observed b = RunOnce(1, 32);
  // Same data, same oracle answers — but a different fault schedule shows up
  // in the wire/time accounting.
  EXPECT_TRUE(SameResults(a.result, b.result));
  EXPECT_NE(a.sim_ns, b.sim_ns);
}

// The trace subsystem must inherit the same determinism: a chaos run's span
// log (in the wall-free export form) is a pure function of the seeds. Two
// fresh deployments replaying the same plan must serialize byte-identical
// JSONL — this is what CI byte-compares and archives.
TEST(ChaosDeterminismTest, TraceJsonlIsByteIdenticalAcrossSameSeedRuns) {
  const auto run_traced = [](uint64_t plan_seed) {
    ChaosHarness h({.transport = rdma::TransportOptions::Sim()});
    h.engine().EnableTracing(1 << 16);
    RetryPolicy retry = RetryPolicy::Default();
    retry.max_attempts = ChaosHarness::kTransientTriggerBudget + 4;
    auto run = h.RunUnderPlan(h.MakeTransientPlan(plan_seed), retry, false);
    EXPECT_TRUE(run.ok()) << run.status().ToString();
    const telemetry::TraceBuffer& trace = h.engine().compute(0).trace();
    EXPECT_GT(trace.size(), 0u);
    EXPECT_EQ(trace.dropped(), 0u);
    return TraceToJsonl(trace, telemetry::TraceExportOptions{.include_wall = false});
  };

  const std::string first = run_traced(31);
  const std::string second = run_traced(31);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second) << "same-seed chaos traces diverged";

  // The trace shows the batch anatomy including the fabric traffic the
  // fault schedule perturbs.
  EXPECT_NE(first.find("\"name\":\"batch\""), std::string::npos);
  EXPECT_NE(first.find("\"stage.load\""), std::string::npos);
  EXPECT_NE(first.find("\"rdma.ring\""), std::string::npos);
  // wall_ns is omitted in the deterministic form by construction.
  EXPECT_EQ(first.find("wall_ns"), std::string::npos);

  // A different schedule perturbs simulated time, so the trace differs.
  const std::string other = run_traced(32);
  EXPECT_NE(first, other);

  // CI artifact hook: archive the canonical trace when the env var is set.
  if (const char* dir = std::getenv("DHNSW_TRACE_ARTIFACT_DIR")) {
    const std::string path = std::string(dir) + "/chaos_trace_seed31.jsonl";
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr) << path;
    ASSERT_EQ(std::fwrite(first.data(), 1, first.size(), f), first.size());
    ASSERT_EQ(std::fclose(f), 0);
  }
}

TEST(ChaosDeterminismTest, PermanentSchedulesReplayIdenticallyToo) {
  auto run_permanent = [] {
    ChaosHarness h({.transport = rdma::TransportOptions::Sim()});
    uint32_t victim = 0;
    auto run = h.RunUnderPlan(h.MakePermanentPlan(&victim), RetryPolicy::Default(),
                              /*partial_results=*/true);
    EXPECT_TRUE(run.ok());
    Observed obs;
    obs.result = std::move(run).value();
    obs.sim_ns = h.engine().compute(0).clock().now_ns();
    obs.round_trips = h.engine().compute(0).qp_stats().round_trips;
    obs.injected_faults = h.engine().compute(0).qp_stats().injected_faults;
    obs.backoff_ns = obs.result.breakdown.backoff_ns;
    return obs;
  };
  const Observed a = run_permanent();
  const Observed b = run_permanent();
  ExpectIdentical(a, b, "permanent schedule");
  for (size_t qi = 0; qi < a.result.statuses.size(); ++qi) {
    EXPECT_EQ(a.result.statuses[qi].code(), b.result.statuses[qi].code()) << qi;
  }
}

}  // namespace
}  // namespace dhnsw
