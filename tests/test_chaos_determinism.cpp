// Seed-determinism acceptance tests: the same (config, data seed, fault
// plan) replays byte-identically — same result ids AND bit-exact distances,
// same simulated-ns total, same wire counters — across independent runs and
// across search_threads settings. This is what makes a chaos failure
// reproducible from nothing but the seed that found it.
#include <gtest/gtest.h>

#include <vector>

#include "chaos_harness.h"

namespace dhnsw {
namespace {

struct Observed {
  BatchResult result;
  uint64_t sim_ns = 0;        ///< compute instance's clock after the run
  uint64_t round_trips = 0;
  uint64_t injected_faults = 0;
  uint64_t backoff_ns = 0;
};

Observed RunOnce(size_t search_threads, uint64_t plan_seed) {
  ChaosHarness h({});
  ComputeNode& node = h.engine().compute(0);
  node.mutable_options()->search_threads = search_threads;

  RetryPolicy retry = RetryPolicy::Default();
  retry.max_attempts = ChaosHarness::kTransientTriggerBudget + 4;
  auto run = h.RunUnderPlan(h.MakeTransientPlan(plan_seed), retry, false);
  EXPECT_TRUE(run.ok()) << run.status().ToString();

  Observed obs;
  obs.result = std::move(run).value();
  obs.sim_ns = node.clock().now_ns();
  obs.round_trips = node.qp_stats().round_trips;
  obs.injected_faults = node.qp_stats().injected_faults;
  obs.backoff_ns = obs.result.breakdown.backoff_ns;
  return obs;
}

void ExpectIdentical(const Observed& a, const Observed& b, const char* what) {
  EXPECT_TRUE(SameResults(a.result, b.result)) << what;
  EXPECT_EQ(a.sim_ns, b.sim_ns) << what;
  EXPECT_EQ(a.round_trips, b.round_trips) << what;
  EXPECT_EQ(a.injected_faults, b.injected_faults) << what;
  EXPECT_EQ(a.backoff_ns, b.backoff_ns) << what;
}

TEST(ChaosDeterminismTest, IdenticalAcrossIndependentRuns) {
  const Observed first = RunOnce(1, 31);
  const Observed second = RunOnce(1, 31);
  ASSERT_GT(first.injected_faults, 0u) << "schedule 31 never fired";
  ExpectIdentical(first, second, "run 1 vs run 2");
}

TEST(ChaosDeterminismTest, IdenticalAcrossSearchThreadCounts) {
  // RDMA traffic (and thus fault decisions, retries, and simulated time) is
  // issued from the batch's caller thread; intra-instance search parallelism
  // must not perturb any of it.
  const Observed serial = RunOnce(1, 31);
  for (size_t threads : {2, 4}) {
    const Observed parallel = RunOnce(threads, 31);
    ExpectIdentical(serial, parallel, "search_threads");
  }
}

TEST(ChaosDeterminismTest, DifferentPlanSeedsGiveDifferentSchedules) {
  const Observed a = RunOnce(1, 31);
  const Observed b = RunOnce(1, 32);
  // Same data, same oracle answers — but a different fault schedule shows up
  // in the wire/time accounting.
  EXPECT_TRUE(SameResults(a.result, b.result));
  EXPECT_NE(a.sim_ns, b.sim_ns);
}

TEST(ChaosDeterminismTest, PermanentSchedulesReplayIdenticallyToo) {
  auto run_permanent = [] {
    ChaosHarness h({});
    uint32_t victim = 0;
    auto run = h.RunUnderPlan(h.MakePermanentPlan(&victim), RetryPolicy::Default(),
                              /*partial_results=*/true);
    EXPECT_TRUE(run.ok());
    Observed obs;
    obs.result = std::move(run).value();
    obs.sim_ns = h.engine().compute(0).clock().now_ns();
    obs.round_trips = h.engine().compute(0).qp_stats().round_trips;
    obs.injected_faults = h.engine().compute(0).qp_stats().injected_faults;
    obs.backoff_ns = obs.result.breakdown.backoff_ns;
    return obs;
  };
  const Observed a = run_permanent();
  const Observed b = run_permanent();
  ExpectIdentical(a, b, "permanent schedule");
  for (size_t qi = 0; qi < a.result.statuses.size(); ++qi) {
    EXPECT_EQ(a.result.statuses[qi].code(), b.result.statuses[qi].code()) << qi;
  }
}

}  // namespace
}  // namespace dhnsw
