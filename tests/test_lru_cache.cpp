#include "common/lru_cache.h"

#include <gtest/gtest.h>

#include <string>

namespace dhnsw {
namespace {

TEST(LruCacheTest, BasicPutGet) {
  LruCache<int, std::string> cache(2);
  cache.Put(1, "one");
  cache.Put(2, "two");
  ASSERT_NE(cache.Get(1), nullptr);
  EXPECT_EQ(*cache.Get(1), "one");
  EXPECT_EQ(cache.size(), 2u);
}

TEST(LruCacheTest, MissReturnsNull) {
  LruCache<int, int> cache(2);
  EXPECT_EQ(cache.Get(5), nullptr);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache<int, int> cache(2);
  cache.Put(1, 10);
  cache.Put(2, 20);
  cache.Get(1);       // 1 becomes MRU
  cache.Put(3, 30);   // evicts 2
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(3));
}

TEST(LruCacheTest, PutRefreshesRecency) {
  LruCache<int, int> cache(2);
  cache.Put(1, 10);
  cache.Put(2, 20);
  cache.Put(1, 11);   // overwrite refreshes
  cache.Put(3, 30);   // evicts 2, not 1
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_EQ(*cache.Peek(1), 11);
  EXPECT_FALSE(cache.Contains(2));
}

TEST(LruCacheTest, ZeroCapacityStoresNothing) {
  LruCache<int, int> cache(0);
  EXPECT_EQ(cache.Put(1, 10), nullptr);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Contains(1));
}

TEST(LruCacheTest, PinnedEntrySurvivesEviction) {
  LruCache<int, int> cache(2);
  cache.Put(1, 10);
  cache.Put(2, 20);
  ASSERT_TRUE(cache.Pin(1));
  cache.Get(2);       // 1 is now LRU but pinned
  cache.Put(3, 30);   // must evict 2 instead
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(3));
  EXPECT_TRUE(cache.Unpin(1));
}

TEST(LruCacheTest, AllPinnedMayExceedCapacityTransiently) {
  LruCache<int, int> cache(2);
  cache.Put(1, 10);
  cache.Put(2, 20);
  cache.Pin(1);
  cache.Pin(2);
  cache.Put(3, 30);
  EXPECT_EQ(cache.size(), 3u);  // nothing evictable
  cache.Unpin(1);
  cache.Unpin(2);
  cache.Put(4, 40);             // now eviction can restore capacity
  EXPECT_LE(cache.size(), 2u + 1u);
}

TEST(LruCacheTest, PinsNest) {
  LruCache<int, int> cache(1);
  cache.Put(1, 10);
  cache.Pin(1);
  cache.Pin(1);
  EXPECT_TRUE(cache.Unpin(1));
  cache.Put(2, 20);  // still pinned once -> 1 survives
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_TRUE(cache.Unpin(1));
  EXPECT_FALSE(cache.Unpin(1));  // not pinned anymore
}

TEST(LruCacheTest, PinUnknownKeyFails) {
  LruCache<int, int> cache(1);
  EXPECT_FALSE(cache.Pin(9));
  EXPECT_FALSE(cache.Unpin(9));
}

TEST(LruCacheTest, EraseRemoves) {
  LruCache<int, int> cache(2);
  cache.Put(1, 10);
  EXPECT_TRUE(cache.Erase(1));
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_FALSE(cache.Erase(1));
}

TEST(LruCacheTest, ClearEmpties) {
  LruCache<int, int> cache(4);
  for (int i = 0; i < 4; ++i) cache.Put(i, i);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_TRUE(cache.KeysByRecency().empty());
}

TEST(LruCacheTest, SetCapacityShrinksAndEvicts) {
  LruCache<int, int> cache(4);
  for (int i = 0; i < 4; ++i) cache.Put(i, i);
  cache.Get(0);  // 0 MRU; LRU order now 1,2,3
  cache.set_capacity(2);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.Contains(0));
  EXPECT_TRUE(cache.Contains(3));
}

TEST(LruCacheTest, ShrinkWhilePinnedDefersEvictionToUnpin) {
  LruCache<int, int> cache(4);
  for (int i = 0; i < 4; ++i) cache.Put(i, i);  // LRU order: 0,1,2,3 (0 oldest)
  ASSERT_TRUE(cache.Pin(1));
  ASSERT_TRUE(cache.Pin(2));
  cache.set_capacity(1);
  // Contract: size may exceed the new capacity only by the pinned count.
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_LE(cache.size(), cache.capacity() + 2);
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(2));
  // Releasing a pin completes the deferred shrink: the now-unpinned LRU
  // entry goes, without waiting for the next Put.
  EXPECT_TRUE(cache.Unpin(2));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));
  // Size is back within capacity, so the last unpin evicts nothing.
  EXPECT_TRUE(cache.Unpin(1));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.Contains(1));
}

TEST(LruCacheTest, EvictToCapacityTerminatesWhenAllPinned) {
  LruCache<int, int> cache(8);
  for (int i = 0; i < 8; ++i) {
    cache.Put(i, i);
    ASSERT_TRUE(cache.Pin(i));
  }
  // Nothing is evictable: the scan must finish after one pass over the
  // recency list instead of spinning, leaving every pinned entry resident.
  cache.set_capacity(0);
  EXPECT_EQ(cache.size(), 8u);
  // Each unpin drains one more entry toward the (zero) capacity.
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(cache.Unpin(i));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(LruCacheTest, StatsCountHitsAndMisses) {
  LruCache<int, int> cache(2);
  cache.Put(1, 10);
  cache.Get(1);
  cache.Get(1);
  cache.Get(2);
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 1u);
  cache.ResetStats();
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
}

TEST(LruCacheTest, PeekDoesNotTouchRecencyOrStats) {
  LruCache<int, int> cache(2);
  cache.Put(1, 10);
  cache.Put(2, 20);
  (void)cache.Peek(1);            // would save 1 if it refreshed recency
  cache.Put(3, 30);               // evicts 1 (still LRU)
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(LruCacheTest, RecencyOrderIsMruFirst) {
  LruCache<int, int> cache(3);
  cache.Put(1, 1);
  cache.Put(2, 2);
  cache.Put(3, 3);
  cache.Get(1);
  const auto keys = cache.KeysByRecency();
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys.front(), 1);
  EXPECT_EQ(keys.back(), 2);
}

// --- Weighted (byte-budget) mode -------------------------------------------

TEST(LruCacheWeightTest, WeightedPutsEvictByTotalWeightNotCount) {
  LruCache<int, int> cache(100);
  cache.Put(1, 10, 40);
  cache.Put(2, 20, 40);
  EXPECT_EQ(cache.total_weight(), 80u);
  cache.Put(3, 30, 40);  // 120 > 100: evicts LRU (1)
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(3));
  EXPECT_EQ(cache.total_weight(), 80u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(LruCacheWeightTest, EntryHeavierThanBudgetIsNotStored) {
  LruCache<int, int> cache(100);
  cache.Put(1, 10, 60);
  EXPECT_EQ(cache.Put(2, 20, 101), nullptr);
  // The oversize put must not have evicted anything either.
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_EQ(cache.total_weight(), 60u);
}

TEST(LruCacheWeightTest, OneHeavyEntryEvictsManyLightOnes) {
  LruCache<int, int> cache(100);
  for (int i = 0; i < 10; ++i) cache.Put(i, i, 10);
  EXPECT_EQ(cache.size(), 10u);
  cache.Put(99, 99, 95);  // displaces 10 light entries, keeps itself
  EXPECT_TRUE(cache.Contains(99));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.total_weight(), 95u);
}

TEST(LruCacheWeightTest, HeavierReplacementEvictsOthersNotItself) {
  LruCache<int, int> cache(100);
  cache.Put(1, 10, 50);
  cache.Put(2, 20, 40);
  cache.Put(1, 11, 60);  // replacement grows 1 to 60: total 100, still fits
  EXPECT_EQ(cache.total_weight(), 100u);
  cache.Put(1, 12, 70);  // total would be 110: evicts 2, never evicts 1 itself
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_EQ(*cache.Peek(1), 12);
  EXPECT_EQ(cache.total_weight(), 70u);
}

TEST(LruCacheWeightTest, ShrinkDefersEvictionWhilePinnedThenCompletesOnUnpin) {
  LruCache<int, int> cache(100);
  cache.Put(1, 10, 50);
  cache.Put(2, 20, 50);
  ASSERT_TRUE(cache.Pin(1));
  ASSERT_TRUE(cache.Pin(2));
  cache.set_capacity(40);  // both pinned: nothing evictable yet
  EXPECT_EQ(cache.total_weight(), 100u);
  EXPECT_TRUE(cache.Unpin(1));  // 1 becomes evictable; 100 > 40 resumes shrink
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(2));  // still pinned, survives over budget
  EXPECT_EQ(cache.total_weight(), 50u);
  EXPECT_TRUE(cache.Unpin(2));
  EXPECT_FALSE(cache.Contains(2));  // 50 > 40: deferred shrink finishes
  EXPECT_EQ(cache.total_weight(), 0u);
}

TEST(LruCacheWeightTest, EraseAndClearRestoreWeightAccounting) {
  LruCache<int, int> cache(100);
  cache.Put(1, 10, 30);
  cache.Put(2, 20, 30);
  EXPECT_TRUE(cache.Erase(1));
  EXPECT_EQ(cache.total_weight(), 30u);
  cache.Clear();
  EXPECT_EQ(cache.total_weight(), 0u);
  // Freed budget is reusable.
  cache.Put(3, 30, 100);
  EXPECT_TRUE(cache.Contains(3));
}

TEST(LruCacheWeightTest, DefaultWeightKeepsEntryCountSemantics) {
  LruCache<int, int> cache(2);
  cache.Put(1, 10);
  cache.Put(2, 20);
  cache.Put(3, 30);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.total_weight(), cache.size());
}

/// Property sweep over capacities: after any sequence of puts, size never
/// exceeds capacity (nothing pinned), and the retained set is exactly the
/// `capacity` most recently used keys.
class LruCapacityTest : public ::testing::TestWithParam<size_t> {};

TEST_P(LruCapacityTest, RetainsMostRecent) {
  const size_t cap = GetParam();
  LruCache<int, int> cache(cap);
  const int total = 100;
  for (int i = 0; i < total; ++i) cache.Put(i, i);
  EXPECT_EQ(cache.size(), std::min<size_t>(cap, total));
  for (int i = 0; i < total; ++i) {
    const bool expect_present = i >= total - static_cast<int>(cap);
    EXPECT_EQ(cache.Contains(i), expect_present) << "key " << i << " cap " << cap;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, LruCapacityTest, ::testing::Values(1, 2, 3, 7, 50, 100, 200));

}  // namespace
}  // namespace dhnsw
