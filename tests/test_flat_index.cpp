#include "index/flat_index.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dhnsw {
namespace {

TEST(FlatIndexTest, EmptySearchReturnsNothing) {
  FlatIndex index(4);
  EXPECT_TRUE(index.Search(std::vector<float>{0, 0, 0, 0}, 5).empty());
}

TEST(FlatIndexTest, AddAssignsDenseIds) {
  FlatIndex index(2);
  EXPECT_EQ(index.Add(std::vector<float>{0, 0}), 0u);
  EXPECT_EQ(index.Add(std::vector<float>{1, 1}), 1u);
  EXPECT_EQ(index.size(), 2u);
  EXPECT_FLOAT_EQ(index.vector(1)[0], 1.0f);
}

TEST(FlatIndexTest, FindsExactNearest) {
  FlatIndex index(1);
  for (float v : {10.0f, 20.0f, 30.0f, 40.0f}) index.Add({&v, 1});
  const auto top = index.Search(std::vector<float>{22.0f}, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].id, 1u);  // 20 is closest to 22
  EXPECT_EQ(top[1].id, 2u);  // then 30
  EXPECT_FLOAT_EQ(top[0].distance, 4.0f);
}

TEST(FlatIndexTest, ResultsSortedAscending) {
  FlatIndex index(2);
  Xoshiro256 rng(4);
  for (int i = 0; i < 200; ++i) {
    std::vector<float> v = {rng.NextFloat(), rng.NextFloat()};
    index.Add(v);
  }
  const auto top = index.Search(std::vector<float>{0.5f, 0.5f}, 20);
  ASSERT_EQ(top.size(), 20u);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_LE(top[i - 1].distance, top[i].distance);
  }
}

TEST(FlatIndexTest, KLargerThanSizeReturnsAll) {
  FlatIndex index(1);
  for (float v : {1.0f, 2.0f}) index.Add({&v, 1});
  EXPECT_EQ(index.Search(std::vector<float>{0.0f}, 10).size(), 2u);
}

TEST(FlatIndexTest, AddBatch) {
  FlatIndex index(3);
  const std::vector<float> batch = {1, 2, 3, 4, 5, 6};
  index.AddBatch(batch);
  EXPECT_EQ(index.size(), 2u);
  EXPECT_FLOAT_EQ(index.vector(1)[2], 6.0f);
}

TEST(FlatIndexTest, InnerProductMetricPrefersLargeDot) {
  FlatIndex index(2, Metric::kInnerProduct);
  index.Add(std::vector<float>{1.0f, 0.0f});
  index.Add(std::vector<float>{10.0f, 0.0f});
  const auto top = index.Search(std::vector<float>{1.0f, 0.0f}, 1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].id, 1u);  // larger dot wins under IP
}

TEST(FlatIndexTest, MatchesNaiveScanOnRandomData) {
  FlatIndex index(8);
  Xoshiro256 rng(5);
  std::vector<std::vector<float>> rows;
  for (int i = 0; i < 300; ++i) {
    std::vector<float> v(8);
    for (auto& x : v) x = rng.NextFloat();
    rows.push_back(v);
    index.Add(v);
  }
  std::vector<float> q(8);
  for (auto& x : q) x = rng.NextFloat();

  // Naive reference.
  uint32_t best = 0;
  float best_d = 1e30f;
  for (uint32_t i = 0; i < rows.size(); ++i) {
    const float d = L2Sq(rows[i], q);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  const auto top = index.Search(q, 1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].id, best);
  EXPECT_FLOAT_EQ(top[0].distance, best_d);
}

}  // namespace
}  // namespace dhnsw
