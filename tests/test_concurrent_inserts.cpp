// Concurrency test for the lock-free insert protocol: multiple compute
// instances (one per thread, as in the paper's deployment) insert into the
// same memory pool simultaneously. The FAA-based slot allocation must hand
// out non-overlapping record slots, and every successful insert must be
// retrievable afterwards.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <thread>

#include "core/engine.h"
#include "dataset/synthetic.h"

namespace dhnsw {
namespace {

TEST(ConcurrentInsertTest, ParallelInsertsNeverCollideOrVanish) {
  Dataset ds = MakeSynthetic({.dim = 8, .num_base = 1000, .num_queries = 2,
                              .num_clusters = 6, .seed = 201});
  DhnswConfig config = DhnswConfig::Defaults();
  config.meta.num_representatives = 12;
  config.sub_hnsw = HnswOptions{.M = 8, .ef_construction = 40};
  config.compute.clusters_per_query = 3;
  config.compute.cache_capacity = 5;
  config.num_compute_nodes = 4;
  config.layout.overflow_bytes_per_group = 1 << 18;
  auto built = DhnswEngine::Build(ds.base, config);
  ASSERT_TRUE(built.ok());
  DhnswEngine& engine = built.value();

  constexpr int kThreads = 4;
  constexpr int kPerThread = 100;

  struct PerThread {
    std::vector<std::pair<uint32_t, std::vector<float>>> inserted;
    std::vector<uint64_t> slots;  // remote offsets claimed
    int capacity_errors = 0;
  };
  std::vector<PerThread> results(kThreads);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(300 + t);
      ComputeNode& node = engine.compute(t);
      for (int i = 0; i < kPerThread; ++i) {
        const uint32_t gid = 1'000'000 + t * kPerThread + i;
        // Perturbed copy of a random base row.
        const size_t src = rng.NextBounded(ds.base.size());
        std::vector<float> v(ds.base[src].begin(), ds.base[src].end());
        v[0] += 0.01f * static_cast<float>(t + 1);
        auto receipt = node.Insert(v, gid);
        if (receipt.ok()) {
          results[t].inserted.emplace_back(gid, std::move(v));
          results[t].slots.push_back(receipt.value().remote_offset);
        } else if (receipt.status().code() == StatusCode::kCapacity) {
          ++results[t].capacity_errors;
        } else {
          ADD_FAILURE() << "unexpected insert error: "
                        << receipt.status().ToString();
          return;
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  // 1. No two successful inserts claimed the same remote slot.
  std::set<uint64_t> slots;
  size_t total_ok = 0;
  for (const PerThread& r : results) {
    total_ok += r.inserted.size();
    for (uint64_t slot : r.slots) {
      EXPECT_TRUE(slots.insert(slot).second) << "slot collision at " << slot;
    }
  }
  EXPECT_GT(total_ok, 0u);

  // 2. Every successful insert is retrievable from a fresh instance.
  ComputeOptions probe_options;
  probe_options.clusters_per_query = 3;
  probe_options.cache_capacity = 12;
  ComputeNode probe(&engine.fabric(), engine.memory_handle(), probe_options);
  ASSERT_TRUE(probe.Connect().ok());
  for (const PerThread& r : results) {
    for (const auto& [gid, v] : r.inserted) {
      VectorSet q(8);
      q.Append(v);
      auto result = probe.SearchAll(q, 5, 64);
      ASSERT_TRUE(result.ok());
      bool found = false;
      for (const Scored& s : result.value().results[0]) found |= (s.id == gid);
      EXPECT_TRUE(found) << "inserted gid " << gid << " not retrievable";
    }
  }
}

TEST(ConcurrentInsertTest, MixedReadersAndWritersStayConsistent) {
  Dataset ds = MakeSynthetic({.dim = 8, .num_base = 1500, .num_queries = 50,
                              .num_clusters = 8, .seed = 202});
  DhnswConfig config = DhnswConfig::Defaults();
  config.meta.num_representatives = 16;
  config.sub_hnsw = HnswOptions{.M = 8, .ef_construction = 40};
  config.compute.clusters_per_query = 3;
  config.compute.cache_capacity = 6;
  config.num_compute_nodes = 3;
  config.layout.overflow_bytes_per_group = 1 << 17;
  auto built = DhnswEngine::Build(ds.base, config);
  ASSERT_TRUE(built.ok());
  DhnswEngine& engine = built.value();

  std::atomic<bool> stop{false};
  std::atomic<int> reader_errors{0};
  std::atomic<int> reader_batches{0};

  // Two reader instances hammer queries while one writer inserts.
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&, t] {
      while (!stop.load()) {
        auto result = engine.compute(t).SearchAll(ds.queries, 5, 32);
        if (!result.ok()) {
          reader_errors.fetch_add(1);
        } else {
          reader_batches.fetch_add(1);
          // Answers must always be well-formed.
          for (const auto& top : result.value().results) {
            if (top.size() > 5) reader_errors.fetch_add(1);
          }
        }
      }
    });
  }

  Xoshiro256 rng(203);
  int inserted = 0;
  for (int i = 0; i < 150; ++i) {
    const size_t src = rng.NextBounded(ds.base.size());
    std::vector<float> v(ds.base[src].begin(), ds.base[src].end());
    v[3] += 0.25f;
    auto id = engine.compute(2).Insert(v, 2'000'000 + i);
    if (id.ok()) ++inserted;
  }
  // On a loaded machine the inserts can outrun the readers; keep the readers
  // alive until at least one full batch completed so the assertions below
  // measure what they mean to.
  while (reader_batches.load() == 0 && reader_errors.load() == 0) {
    std::this_thread::yield();
  }
  stop.store(true);
  for (auto& th : readers) th.join();

  EXPECT_EQ(reader_errors.load(), 0);
  EXPECT_GT(reader_batches.load(), 0);
  EXPECT_GT(inserted, 0);
}

}  // namespace
}  // namespace dhnsw
