// Coverage for HNSW construction options (Algorithm 4's switches, metric
// variants) that the main hnsw test leaves at their defaults.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "index/flat_index.h"
#include "index/hnsw.h"

namespace dhnsw {
namespace {

std::vector<float> RandomVector(Xoshiro256& rng, uint32_t dim, float scale = 1.0f) {
  std::vector<float> v(dim);
  for (auto& x : v) x = (rng.NextFloat() - 0.5f) * scale;
  return v;
}

double RecallVsFlat(const HnswIndex& index, const FlatIndex& flat, Xoshiro256& rng,
                    uint32_t dim, int queries, size_t k, uint32_t ef) {
  int hits = 0;
  for (int t = 0; t < queries; ++t) {
    const auto q = RandomVector(rng, dim, 5.0f);
    const auto got = index.Search(q, k, ef);
    const auto want = flat.Search(q, k);
    std::set<uint32_t> want_ids;
    for (const auto& s : want) want_ids.insert(s.id);
    for (const auto& s : got) hits += want_ids.count(s.id);
  }
  return static_cast<double>(hits) / (queries * static_cast<double>(k));
}

struct OptionCase {
  const char* name;
  bool extend_candidates;
  bool keep_pruned;
};

class HnswOptionSweep : public ::testing::TestWithParam<OptionCase> {};

TEST_P(HnswOptionSweep, ValidGraphAndGoodRecall) {
  const OptionCase& oc = GetParam();
  HnswOptions options;
  options.M = 8;
  options.ef_construction = 60;
  options.extend_candidates = oc.extend_candidates;
  options.keep_pruned_connections = oc.keep_pruned;

  Xoshiro256 rng(271);
  const uint32_t dim = 8;
  HnswIndex index(dim, options);
  FlatIndex flat(dim);
  for (int i = 0; i < 1200; ++i) {
    const auto v = RandomVector(rng, dim, 5.0f);
    index.Add(v);
    flat.Add(v);
  }
  ASSERT_TRUE(index.Validate().ok()) << oc.name;
  EXPECT_GT(RecallVsFlat(index, flat, rng, dim, 25, 10, 80), 0.8) << oc.name;
}

INSTANTIATE_TEST_SUITE_P(
    Switches, HnswOptionSweep,
    ::testing::Values(OptionCase{"plain", false, false},
                      OptionCase{"extend", true, false},
                      OptionCase{"keep_pruned", false, true},
                      OptionCase{"both", true, true}),
    [](const ::testing::TestParamInfo<OptionCase>& info) { return info.param.name; });

class HnswMetricSweep : public ::testing::TestWithParam<Metric> {};

TEST_P(HnswMetricSweep, MatchesFlatUnderSameMetric) {
  const Metric metric = GetParam();
  HnswOptions options;
  options.M = 12;
  options.ef_construction = 80;
  options.metric = metric;

  Xoshiro256 rng(272);
  const uint32_t dim = 12;
  HnswIndex index(dim, options);
  FlatIndex flat(dim, metric);
  for (int i = 0; i < 800; ++i) {
    // Offset away from the origin so cosine is well-conditioned.
    auto v = RandomVector(rng, dim, 4.0f);
    v[0] += 6.0f;
    index.Add(v);
    flat.Add(v);
  }
  ASSERT_TRUE(index.Validate().ok());

  int top1_hits = 0;
  const int queries = 40;
  for (int t = 0; t < queries; ++t) {
    auto q = RandomVector(rng, dim, 4.0f);
    q[0] += 6.0f;
    const auto got = index.Search(q, 1, 80);
    const auto want = flat.Search(q, 1);
    ASSERT_FALSE(got.empty());
    top1_hits += (got[0].id == want[0].id);
  }
  EXPECT_GT(top1_hits, queries * 8 / 10) << MetricName(metric);
}

INSTANTIATE_TEST_SUITE_P(Metrics, HnswMetricSweep,
                         ::testing::Values(Metric::kL2, Metric::kInnerProduct,
                                           Metric::kCosine),
                         [](const ::testing::TestParamInfo<Metric>& info) {
                           return std::string(MetricName(info.param));
                         });

TEST(HnswOptionsTest, SmallMIsClampedToTwo) {
  HnswOptions options;
  options.M = 1;
  HnswIndex index(4, options);
  EXPECT_EQ(index.options().M, 2u);
}

TEST(HnswOptionsTest, DuplicateVectorsAreHandled) {
  // Exact duplicates stress neighbor selection (zero distances everywhere).
  HnswIndex index(4, {.M = 4, .ef_construction = 20});
  const std::vector<float> v = {1.0f, 2.0f, 3.0f, 4.0f};
  for (int i = 0; i < 50; ++i) index.Add(v);
  EXPECT_TRUE(index.Validate().ok());
  const auto top = index.Search(v, 10, 20);
  EXPECT_EQ(top.size(), 10u);
  for (const auto& s : top) EXPECT_FLOAT_EQ(s.distance, 0.0f);
}

TEST(HnswOptionsTest, AddWithLevelForcesLevel) {
  HnswIndex index(4, {.M = 4, .ef_construction = 20});
  index.AddWithLevel(std::vector<float>{0, 0, 0, 0}, 3);
  EXPECT_EQ(index.level(0), 3u);
  EXPECT_EQ(index.max_level_in_graph(), 3);
  index.AddWithLevel(std::vector<float>{1, 1, 1, 1}, 5);
  EXPECT_EQ(index.level(1), 5u);
  EXPECT_EQ(index.entry_point(), 1u);  // new top level takes over
  EXPECT_TRUE(index.Validate().ok());
}

TEST(HnswOptionsTest, LevelDistributionIsGeometricIsh) {
  HnswOptions options;
  options.M = 16;
  options.seed = 273;
  HnswIndex index(4, options);
  Xoshiro256 rng(274);
  int level0 = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    const uint32_t id = index.Add(RandomVector(rng, 4));
    level0 += (index.level(id) == 0);
  }
  // P(level 0) = 1 - 1/M = 93.75% for M=16; allow generous slack.
  EXPECT_GT(level0, n * 85 / 100);
  EXPECT_LT(level0, n * 99 / 100);
}

}  // namespace
}  // namespace dhnsw
