#include "index/kdtree.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "index/flat_index.h"

namespace dhnsw {
namespace {

std::vector<float> RandomData(Xoshiro256& rng, size_t n, uint32_t dim, float scale) {
  std::vector<float> data(n * dim);
  for (auto& x : data) x = (rng.NextFloat() - 0.5f) * scale;
  return data;
}

TEST(KdTreeTest, EmptySearchIsEmpty) {
  KdTreeIndex tree(4);
  tree.Build({});
  EXPECT_TRUE(tree.Search(std::vector<float>{0, 0, 0, 0}, 3, 10).empty());
  EXPECT_EQ(tree.size(), 0u);
}

TEST(KdTreeTest, SingleLeafIsExact) {
  Xoshiro256 rng(1);
  KdTreeIndex tree(4, {.leaf_size = 64});
  const auto data = RandomData(rng, 50, 4, 10.0f);  // fits one leaf
  tree.Build(data);
  EXPECT_EQ(tree.num_leaves(), 1u);

  FlatIndex flat(4);
  flat.AddBatch(data);
  const auto q = RandomData(rng, 1, 4, 10.0f);
  const auto got = tree.Search(q, 5, 1);
  const auto want = flat.Search(q, 5);
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i].id, want[i].id);
}

TEST(KdTreeTest, ExactSearchMatchesFlatInLowDim) {
  // KD-trees shine in low dimension: exact search must equal brute force.
  Xoshiro256 rng(2);
  const uint32_t dim = 4;
  const auto data = RandomData(rng, 2000, dim, 100.0f);
  KdTreeIndex tree(dim, {.leaf_size = 8});
  tree.Build(data);
  FlatIndex flat(dim);
  flat.AddBatch(data);

  for (int t = 0; t < 30; ++t) {
    const auto q = RandomData(rng, 1, dim, 100.0f);
    const auto got = tree.SearchExact(q, 10);
    const auto want = flat.Search(q, 10);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, want[i].id) << "trial " << t << " rank " << i;
    }
  }
}

TEST(KdTreeTest, MoreLeavesNeverHurtRecall) {
  Xoshiro256 rng(3);
  const uint32_t dim = 16;
  const auto data = RandomData(rng, 3000, dim, 50.0f);
  KdTreeIndex tree(dim, {.leaf_size = 16});
  tree.Build(data);
  FlatIndex flat(dim);
  flat.AddBatch(data);

  auto recall_at = [&](size_t max_leaves) {
    int hits = 0;
    Xoshiro256 qrng(4);
    for (int t = 0; t < 20; ++t) {
      const auto q = RandomData(qrng, 1, dim, 50.0f);
      const auto got = tree.Search(q, 10, max_leaves);
      const auto want = flat.Search(q, 10);
      std::set<uint32_t> want_ids;
      for (const auto& s : want) want_ids.insert(s.id);
      for (const auto& s : got) hits += want_ids.count(s.id);
    }
    return hits;
  };

  const int r1 = recall_at(1);
  const int r16 = recall_at(16);
  const int r_all = recall_at(tree.num_leaves());
  EXPECT_LE(r1, r16);
  EXPECT_LE(r16, r_all);
  EXPECT_EQ(r_all, 20 * 10);  // exhaustive == exact
}

TEST(KdTreeTest, HighDimensionalCurseShows) {
  // The paper's motivation: in high dimension, limited-backtracking KD
  // search needs to visit a large share of the leaves for decent recall.
  Xoshiro256 rng(5);
  const uint32_t dim = 64;
  const auto data = RandomData(rng, 4000, dim, 10.0f);
  KdTreeIndex tree(dim, {.leaf_size = 16});
  tree.Build(data);
  FlatIndex flat(dim);
  flat.AddBatch(data);

  int hits = 0;
  Xoshiro256 qrng(6);
  const size_t few_leaves = tree.num_leaves() / 50;  // 2% of leaves
  for (int t = 0; t < 20; ++t) {
    const auto q = RandomData(qrng, 1, dim, 10.0f);
    const auto got = tree.Search(q, 10, std::max<size_t>(few_leaves, 1));
    const auto want = flat.Search(q, 10);
    std::set<uint32_t> want_ids;
    for (const auto& s : want) want_ids.insert(s.id);
    for (const auto& s : got) hits += want_ids.count(s.id);
  }
  EXPECT_LT(hits, 20 * 10 * 7 / 10) << "high-dim KD search should struggle at 2% leaves";
}

TEST(KdTreeTest, ResultsSortedAndDeterministic) {
  Xoshiro256 rng(7);
  const auto data = RandomData(rng, 500, 8, 10.0f);
  KdTreeIndex tree(8);
  tree.Build(data);
  const auto q = RandomData(rng, 1, 8, 10.0f);
  const auto r1 = tree.Search(q, 10, 5);
  const auto r2 = tree.Search(q, 10, 5);
  ASSERT_EQ(r1.size(), r2.size());
  for (size_t i = 0; i < r1.size(); ++i) {
    EXPECT_EQ(r1[i].id, r2[i].id);
    if (i > 0) EXPECT_LE(r1[i - 1].distance, r1[i].distance);
  }
}

TEST(KdTreeTest, RebuildReplacesContents) {
  KdTreeIndex tree(2, {.leaf_size = 2});
  tree.Build(std::vector<float>{0, 0, 1, 1, 2, 2});
  EXPECT_EQ(tree.size(), 3u);
  tree.Build(std::vector<float>{5, 5});
  EXPECT_EQ(tree.size(), 1u);
  const auto top = tree.SearchExact(std::vector<float>{5, 5}, 1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].id, 0u);
  EXPECT_FLOAT_EQ(top[0].distance, 0.0f);
}

}  // namespace
}  // namespace dhnsw
