#include "core/engine.h"

#include <gtest/gtest.h>

#include <numeric>

#include "dataset/ground_truth.h"
#include "dataset/synthetic.h"

namespace dhnsw {
namespace {

DhnswConfig SmallConfig() {
  DhnswConfig config = DhnswConfig::Defaults();
  config.meta.num_representatives = 20;
  config.sub_hnsw = HnswOptions{.M = 8, .ef_construction = 50};
  config.compute.clusters_per_query = 3;
  config.compute.cache_capacity = 5;
  return config;
}

TEST(EngineTest, BuildOnEmptyBaseFails) {
  VectorSet empty(8);
  EXPECT_FALSE(DhnswEngine::Build(empty, SmallConfig()).ok());
}

TEST(EngineTest, BuildExposesTopology) {
  const Dataset ds = MakeSynthetic({.dim = 8, .num_base = 1000, .num_queries = 10,
                                    .num_clusters = 8, .seed = 71});
  auto engine = DhnswEngine::Build(ds.base, SmallConfig());
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ(engine.value().num_partitions(), 20u);
  EXPECT_EQ(engine.value().dim(), 8u);
  EXPECT_EQ(engine.value().num_compute_nodes(), 1u);
  EXPECT_GT(engine.value().meta_blob_bytes(), 0u);

  const auto& sizes = engine.value().partition_sizes();
  EXPECT_EQ(sizes.size(), 20u);
  EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), 0u), 1000u);
}

TEST(EngineTest, MultipleComputeNodesAllServeQueries) {
  const Dataset ds = MakeSynthetic({.dim = 8, .num_base = 800, .num_queries = 10,
                                    .num_clusters = 6, .seed = 72});
  DhnswConfig config = SmallConfig();
  config.num_compute_nodes = 3;
  auto engine = DhnswEngine::Build(ds.base, config);
  ASSERT_TRUE(engine.ok());
  ASSERT_EQ(engine.value().num_compute_nodes(), 3u);

  std::vector<std::vector<std::vector<Scored>>> per_node;
  for (size_t i = 0; i < 3; ++i) {
    auto r = engine.value().compute(i).SearchAll(ds.queries, 5, 32);
    ASSERT_TRUE(r.ok());
    per_node.push_back(r.value().results);
  }
  // Instances are replicas of the same logic — identical answers.
  for (size_t qi = 0; qi < ds.queries.size(); ++qi) {
    for (size_t i = 1; i < 3; ++i) {
      ASSERT_EQ(per_node[0][qi].size(), per_node[i][qi].size());
      for (size_t j = 0; j < per_node[0][qi].size(); ++j) {
        EXPECT_EQ(per_node[0][qi][j].id, per_node[i][qi][j].id);
      }
    }
  }
}

TEST(EngineTest, EndToEndRecallAtTen) {
  Dataset ds = MakeSynthetic({.dim = 16, .num_base = 4000, .num_queries = 50,
                              .num_clusters = 15, .seed = 73});
  ComputeGroundTruth(&ds, 10);

  DhnswConfig config = SmallConfig();
  config.meta.num_representatives = 40;
  config.compute.clusters_per_query = 4;
  config.compute.cache_capacity = 10;
  auto engine = DhnswEngine::Build(ds.base, config);
  ASSERT_TRUE(engine.ok());

  auto result = engine.value().SearchAll(ds.queries, 10, 64);
  ASSERT_TRUE(result.ok());
  const double recall = MeanRecallAtK(ds, result.value().results, 10);
  EXPECT_GT(recall, 0.8) << "engine recall@10 = " << recall;
}

TEST(EngineTest, InsertAssignsMonotonicGlobalIds) {
  const Dataset ds = MakeSynthetic({.dim = 8, .num_base = 500, .num_queries = 2,
                                    .num_clusters = 4, .seed = 74});
  DhnswConfig config = SmallConfig();
  config.layout.overflow_bytes_per_group = 1 << 16;
  auto engine = DhnswEngine::Build(ds.base, config);
  ASSERT_TRUE(engine.ok());

  std::vector<float> v(8, 3.0f);
  auto id1 = engine.value().Insert(v);
  auto id2 = engine.value().Insert(v);
  ASSERT_TRUE(id1.ok());
  ASSERT_TRUE(id2.ok());
  EXPECT_EQ(id1.value(), 500u);
  EXPECT_EQ(id2.value(), 501u);
  EXPECT_FALSE(engine.value().Insert(v, /*via_instance=*/9).ok());
}

TEST(EngineTest, ManyInsertsThenSearchFindsThem) {
  const Dataset ds = MakeSynthetic({.dim = 8, .num_base = 600, .num_queries = 2,
                                    .num_clusters = 5, .seed = 75});
  DhnswConfig config = SmallConfig();
  config.layout.overflow_bytes_per_group = 1 << 18;
  auto engine = DhnswEngine::Build(ds.base, config);
  ASSERT_TRUE(engine.ok());

  // Insert a tight far-away cluster of 20 vectors, then query its center.
  VectorSet probe(8);
  std::vector<float> center(8, 300.0f);
  probe.Append(center);
  std::vector<uint32_t> new_ids;
  for (int i = 0; i < 20; ++i) {
    std::vector<float> v(center);
    v[0] += static_cast<float>(i) * 0.01f;
    auto id = engine.value().Insert(v);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    new_ids.push_back(id.value());
  }

  auto result = engine.value().SearchAll(probe, 10, 64);
  ASSERT_TRUE(result.ok());
  const auto& top = result.value().results[0];
  ASSERT_EQ(top.size(), 10u);
  for (const Scored& s : top) {
    EXPECT_GE(s.id, 600u) << "expected only inserted vectors in the top-10";
  }
}

TEST(EngineTest, DefaultsCarryMetric) {
  const DhnswConfig config = DhnswConfig::Defaults(Metric::kCosine);
  EXPECT_EQ(config.meta.metric, Metric::kCosine);
  EXPECT_EQ(config.sub_hnsw.metric, Metric::kCosine);
  EXPECT_EQ(config.compute.sub_hnsw_template.metric, Metric::kCosine);
}

TEST(EngineTest, CosineMetricEndToEnd) {
  Dataset ds = MakeSynthetic({.dim = 12, .num_base = 1500, .num_queries = 20,
                              .num_clusters = 8, .seed = 76});
  ComputeGroundTruth(&ds, 5, Metric::kCosine);

  DhnswConfig config = DhnswConfig::Defaults(Metric::kCosine);
  config.meta.num_representatives = 20;
  config.sub_hnsw.M = 8;
  config.compute.clusters_per_query = 4;
  auto engine = DhnswEngine::Build(ds.base, config);
  ASSERT_TRUE(engine.ok());
  auto result = engine.value().SearchAll(ds.queries, 5, 64);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(MeanRecallAtK(ds, result.value().results, 5), 0.7);
}

}  // namespace
}  // namespace dhnsw
