// Model-based randomized stress test: interleave inserts, removes, batched
// inserts, compactions, snapshots, and queries against a simple in-memory
// model (the set of live vectors). After every phase, exact-match probes
// must agree with the model: live vectors are found at distance ~0, dead
// ones never appear.
#include <gtest/gtest.h>

#include <map>

#include "core/engine.h"
#include "dataset/synthetic.h"

namespace dhnsw {
namespace {

class StressModelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StressModelTest, EngineAgreesWithModelThroughRandomOps) {
  const uint64_t seed = GetParam();
  Xoshiro256 rng(seed);

  Dataset ds = MakeSynthetic({.dim = 8, .num_base = 700, .num_queries = 1,
                              .num_clusters = 5, .seed = seed + 1000});
  DhnswConfig config = DhnswConfig::Defaults();
  config.meta.num_representatives = 8;
  config.sub_hnsw = HnswOptions{.M = 8, .ef_construction = 50};
  config.compute.clusters_per_query = 3;
  config.compute.cache_capacity = 4;
  config.layout.overflow_bytes_per_group = 1 << 15;
  auto built = DhnswEngine::Build(ds.base, config);
  ASSERT_TRUE(built.ok());
  DhnswEngine engine = std::move(built).value();

  // Model: global id -> vector, for every LIVE vector.
  std::map<uint32_t, std::vector<float>> live;
  for (uint32_t i = 0; i < ds.base.size(); ++i) {
    live.emplace(i, std::vector<float>(ds.base[i].begin(), ds.base[i].end()));
  }
  std::vector<uint32_t> dead;

  auto random_live_id = [&]() {
    auto it = live.begin();
    std::advance(it, rng.NextBounded(live.size()));
    return it->first;
  };

  auto verify = [&](const char* phase) {
    // Probe a sample of live vectors: each must be its own nearest neighbor
    // (or tie at distance 0). Probe dead ids: never returned.
    for (int probe = 0; probe < 12; ++probe) {
      const uint32_t gid = random_live_id();
      VectorSet q(8);
      q.Append(live[gid]);
      auto result = engine.SearchAll(q, 3, 64);
      ASSERT_TRUE(result.ok()) << phase;
      ASSERT_FALSE(result.value().results[0].empty()) << phase;
      EXPECT_FLOAT_EQ(result.value().results[0][0].distance, 0.0f)
          << phase << " live gid " << gid;
      for (const Scored& s : result.value().results[0]) {
        EXPECT_TRUE(live.count(s.id)) << phase << ": dead id " << s.id << " returned";
      }
    }
    for (uint32_t gid : dead) {
      if (!live.count(gid)) {
        // Its vector may still have exact-duplicate live twins; only check
        // that the dead id itself is absent.
        VectorSet q(8);
        q.Append(std::vector<float>(8, 0.0f));
      }
    }
  };

  for (int round = 0; round < 4; ++round) {
    // ~40 random mutations per round.
    for (int op = 0; op < 40; ++op) {
      const uint64_t dice = rng.NextBounded(10);
      if (dice < 5) {
        // Insert a perturbed copy of a live vector.
        std::vector<float> v = live[random_live_id()];
        v[0] += 0.25f + rng.NextFloat();
        auto id = engine.Insert(v);
        if (id.ok()) {
          live.emplace(id.value(), std::move(v));
        } else {
          ASSERT_EQ(id.status().code(), StatusCode::kCapacity);
          auto stats = engine.Compact();  // reclaim and retry once
          ASSERT_TRUE(stats.ok());
          auto id2 = engine.Insert(v);
          ASSERT_TRUE(id2.ok());
          live.emplace(id2.value(), std::move(v));
        }
      } else if (dice < 8) {
        // Remove a random live vector (keep a floor so probes have targets).
        if (live.size() > 50) {
          const uint32_t gid = random_live_id();
          auto st = engine.Remove(live[gid], gid);
          if (st.code() == StatusCode::kCapacity) {
            ASSERT_TRUE(engine.Compact().ok());
            st = engine.Remove(live[gid], gid);
          }
          ASSERT_TRUE(st.ok());
          live.erase(gid);
          dead.push_back(gid);
        }
      } else if (dice == 8) {
        // Small batched insert.
        VectorSet batch(8);
        std::vector<std::vector<float>> rows;
        for (int j = 0; j < 5; ++j) {
          std::vector<float> v = live[random_live_id()];
          v[2] += 0.5f + rng.NextFloat();
          batch.Append(v);
          rows.push_back(std::move(v));
        }
        std::vector<size_t> rejected;
        auto first = engine.InsertBatch(batch, &rejected);
        if (first.ok()) {
          std::set<size_t> rejected_set(rejected.begin(), rejected.end());
          for (size_t j = 0; j < rows.size(); ++j) {
            if (!rejected_set.count(j)) {
              live.emplace(first.value() + static_cast<uint32_t>(j), std::move(rows[j]));
            }
          }
        }
      }
      // dice == 9: no-op (query-only tick)
    }
    verify("after mutations");

    if (round == 1) {
      ASSERT_TRUE(engine.Compact().ok());
      verify("after compaction");
    }
    if (round == 2) {
      const std::string path = ::testing::TempDir() + "/stress_" +
                               std::to_string(seed) + ".dsnp";
      ASSERT_TRUE(engine.SaveSnapshot(path).ok());
      auto restored =
          DhnswEngine::BuildFromSnapshot(path, config, engine.next_global_id());
      ASSERT_TRUE(restored.ok());
      engine = std::move(restored).value();
      std::remove(path.c_str());
      verify("after snapshot restart");
    }
  }

  // Final sweep: a full query pass stays healthy.
  VectorSet probes(8);
  for (int i = 0; i < 20; ++i) probes.Append(live[random_live_id()]);
  auto final_result = engine.SearchAll(probes, 5, 64);
  ASSERT_TRUE(final_result.ok());
  for (const auto& top : final_result.value().results) {
    ASSERT_FALSE(top.empty());
    EXPECT_FLOAT_EQ(top[0].distance, 0.0f);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressModelTest, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace dhnsw
