#include "rdma/queue_pair.h"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

namespace dhnsw::rdma {
namespace {

class QueuePairTest : public ::testing::Test {
 protected:
  void SetUp() override {
    mem_node_ = fabric_.AddNode("mem");
    fabric_.AddNode("compute");
    auto rkey = fabric_.RegisterMemory(mem_node_, kRegionSize);
    ASSERT_TRUE(rkey.ok());
    rkey_ = rkey.value();
  }

  static constexpr size_t kRegionSize = 1 << 20;
  // Exact NicModel cost assertions are a simulator-only contract: pin the
  // sim backend so the suite stays valid under DHNSW_TRANSPORT=tcp.
  Fabric fabric_{NicModelConfig{}, TransportOptions::Sim()};
  NodeId mem_node_ = 0;
  RKey rkey_ = 0;
  SimClock clock_;
};

TEST_F(QueuePairTest, WriteThenReadRoundTrip) {
  QueuePair qp(&fabric_, &clock_);
  std::vector<uint8_t> out(16);
  std::iota(out.begin(), out.end(), 1);
  ASSERT_TRUE(qp.Write(rkey_, 256, out).ok());
  std::vector<uint8_t> in(16, 0);
  ASSERT_TRUE(qp.Read(rkey_, 256, in).ok());
  EXPECT_EQ(in, out);
}

TEST_F(QueuePairTest, EachOneShotOpIsOneRoundTrip) {
  QueuePair qp(&fabric_, &clock_);
  std::vector<uint8_t> buf(8);
  qp.Write(rkey_, 0, buf);
  qp.Read(rkey_, 0, buf);
  qp.FetchAdd(rkey_, 0, 1);
  EXPECT_EQ(qp.stats().round_trips, 3u);
  EXPECT_EQ(qp.stats().work_requests, 3u);
}

TEST_F(QueuePairTest, DoorbellBatchIsSingleRoundTrip) {
  QueuePair qp(&fabric_, &clock_, /*max_doorbell_wrs=*/16);
  std::vector<std::vector<uint8_t>> bufs(8, std::vector<uint8_t>(64));
  for (size_t i = 0; i < bufs.size(); ++i) {
    qp.PostRead(rkey_, i * 1024, bufs[i], i);
  }
  EXPECT_EQ(qp.pending_wrs(), 8u);
  const uint32_t rings = qp.RingDoorbell();
  EXPECT_EQ(rings, 1u);
  EXPECT_EQ(qp.stats().round_trips, 1u);
  EXPECT_EQ(qp.stats().work_requests, 8u);
  EXPECT_EQ(qp.pending_wrs(), 0u);
}

TEST_F(QueuePairTest, DoorbellWindowSplitsLargeBatches) {
  QueuePair qp(&fabric_, &clock_, /*max_doorbell_wrs=*/4);
  std::vector<std::vector<uint8_t>> bufs(10, std::vector<uint8_t>(8));
  for (size_t i = 0; i < bufs.size(); ++i) qp.PostRead(rkey_, i * 64, bufs[i]);
  const uint32_t rings = qp.RingDoorbell();
  EXPECT_EQ(rings, 3u);  // ceil(10/4)
  EXPECT_EQ(qp.stats().round_trips, 3u);
}

TEST_F(QueuePairTest, CompletionsCarryWrIdsInOrder) {
  QueuePair qp(&fabric_, &clock_);
  std::vector<uint8_t> buf(8);
  qp.PostRead(rkey_, 0, buf, 111);
  qp.PostRead(rkey_, 8, buf, 222);
  qp.RingDoorbell();
  Completion c;
  ASSERT_TRUE(qp.PollCompletion(&c));
  EXPECT_EQ(c.wr_id, 111u);
  ASSERT_TRUE(qp.PollCompletion(&c));
  EXPECT_EQ(c.wr_id, 222u);
  EXPECT_FALSE(qp.PollCompletion(&c));
}

TEST_F(QueuePairTest, SimulatedTimeAdvancesPerRing) {
  QueuePair qp(&fabric_, &clock_);
  std::vector<uint8_t> buf(4096);
  EXPECT_EQ(clock_.now_ns(), 0u);
  qp.Read(rkey_, 0, buf);
  const uint64_t after_one = clock_.now_ns();
  EXPECT_GT(after_one, 0u);
  qp.Read(rkey_, 0, buf);
  EXPECT_EQ(clock_.now_ns(), 2 * after_one);  // deterministic model
  EXPECT_EQ(qp.stats().sim_network_ns, clock_.now_ns());
}

TEST_F(QueuePairTest, BatchedReadsCheaperThanIndividual) {
  QueuePair batched(&fabric_, nullptr, 16);
  QueuePair individual(&fabric_, nullptr, 16);
  std::vector<std::vector<uint8_t>> bufs(8, std::vector<uint8_t>(4096));

  for (size_t i = 0; i < bufs.size(); ++i) batched.PostRead(rkey_, i * 8192, bufs[i]);
  batched.RingDoorbell();

  for (size_t i = 0; i < bufs.size(); ++i) {
    individual.PostRead(rkey_, i * 8192, bufs[i]);
    individual.RingDoorbell();
  }
  EXPECT_LT(batched.stats().sim_network_ns, individual.stats().sim_network_ns);
  EXPECT_EQ(batched.stats().bytes_read, individual.stats().bytes_read);
}

TEST_F(QueuePairTest, CompareSwapSemantics) {
  QueuePair qp(&fabric_, &clock_);
  auto old1 = qp.CompareSwap(rkey_, 64, 0, 42);
  ASSERT_TRUE(old1.ok());
  EXPECT_EQ(old1.value(), 0u);
  auto old2 = qp.CompareSwap(rkey_, 64, 0, 99);  // mismatch: stays 42
  ASSERT_TRUE(old2.ok());
  EXPECT_EQ(old2.value(), 42u);
  uint64_t now = 0;
  std::vector<uint8_t> buf(8);
  ASSERT_TRUE(qp.Read(rkey_, 64, buf).ok());
  std::memcpy(&now, buf.data(), 8);
  EXPECT_EQ(now, 42u);
}

TEST_F(QueuePairTest, FetchAddSemantics) {
  QueuePair qp(&fabric_, &clock_);
  auto r1 = qp.FetchAdd(rkey_, 128, 10);
  auto r2 = qp.FetchAdd(rkey_, 128, 32);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1.value(), 0u);
  EXPECT_EQ(r2.value(), 10u);
}

TEST_F(QueuePairTest, MisalignedAtomicFails) {
  QueuePair qp(&fabric_, &clock_);
  EXPECT_FALSE(qp.FetchAdd(rkey_, 13, 1).ok());
  EXPECT_FALSE(qp.CompareSwap(rkey_, 7, 0, 1).ok());
}

TEST_F(QueuePairTest, OutOfBoundsAccessCompletesWithError) {
  QueuePair qp(&fabric_, &clock_);
  std::vector<uint8_t> buf(64);
  const Status st = qp.Read(rkey_, kRegionSize - 8, buf);
  EXPECT_EQ(st.code(), StatusCode::kOutOfRange);
}

TEST_F(QueuePairTest, UnknownRkeyFails) {
  QueuePair qp(&fabric_, &clock_);
  std::vector<uint8_t> buf(8);
  EXPECT_FALSE(qp.Read(12345, 0, buf).ok());
}

TEST_F(QueuePairTest, UnreachableNodeSurfacesUnavailable) {
  QueuePair qp(&fabric_, &clock_);
  std::vector<uint8_t> buf(8);
  fabric_.SetNodeReachable(mem_node_, false);
  const Status st = qp.Read(rkey_, 0, buf);
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  fabric_.SetNodeReachable(mem_node_, true);
  EXPECT_TRUE(qp.Read(rkey_, 0, buf).ok());
}

TEST_F(QueuePairTest, FlushReturnsAllCompletions) {
  QueuePair qp(&fabric_, &clock_);
  std::vector<uint8_t> buf(8);
  qp.PostRead(rkey_, 0, buf, 1);
  qp.PostWrite(rkey_, 8, buf, 2);
  const std::vector<Completion> cs = qp.Flush();
  ASSERT_EQ(cs.size(), 2u);
  EXPECT_EQ(cs[0].wr_id, 1u);
  EXPECT_EQ(cs[1].wr_id, 2u);
  EXPECT_EQ(cs[1].opcode, Opcode::kWrite);
}

TEST_F(QueuePairTest, StatsTrackBytesByDirection) {
  QueuePair qp(&fabric_, &clock_);
  std::vector<uint8_t> buf(100);
  qp.Write(rkey_, 0, buf);
  std::vector<uint8_t> buf2(40);
  qp.Read(rkey_, 0, buf2);
  EXPECT_EQ(qp.stats().bytes_written, 100u);
  EXPECT_EQ(qp.stats().bytes_read, 40u);
  EXPECT_EQ(qp.stats().reads, 1u);
  EXPECT_EQ(qp.stats().writes, 1u);
  qp.ResetStats();
  EXPECT_EQ(qp.stats().bytes_read, 0u);
}

TEST_F(QueuePairTest, StatsDeltaSubtraction) {
  QueuePair qp(&fabric_, &clock_);
  std::vector<uint8_t> buf(8);
  qp.Read(rkey_, 0, buf);
  const QpStats snapshot = qp.stats();
  qp.Read(rkey_, 0, buf);
  qp.Read(rkey_, 0, buf);
  const QpStats delta = qp.stats() - snapshot;
  EXPECT_EQ(delta.round_trips, 2u);
  EXPECT_EQ(delta.bytes_read, 16u);
}

}  // namespace
}  // namespace dhnsw::rdma
