// Deterministic chaos-test harness (see tests/test_chaos_harness.cpp).
//
// Builds a small d-HNSW deployment once, records the fault-free answer as an
// oracle, then replays the same query batch under seeded randomized fault
// schedules armed on the fabric:
//   - transient schedules (bounded trigger budgets) must CONVERGE: with a
//     retry budget that outlasts the faults, results are byte-identical to
//     the oracle;
//   - permanent schedules (a cluster's byte range unreachable forever) must
//     DEGRADE: affected queries carry non-OK statuses and keep candidates
//     from their healthy clusters; unaffected queries still match the oracle.
//
// Everything is a pure function of the seeds: dataset, engine build, fault
// decisions (per-QP injector streams), and backoff (simulated clock), so a
// failure reproduces exactly from the seed that found it.
#pragma once

#include <cstdint>
#include <optional>

#include "core/engine.h"
#include "dataset/synthetic.h"
#include "rdma/fault_injection.h"

namespace dhnsw {

class ChaosHarness {
 public:
  struct Config {
    uint64_t data_seed = 7;
    uint32_t dim = 8;
    uint32_t num_base = 1500;
    uint32_t num_queries = 24;
    uint32_t num_clusters = 6;
    EngineMode mode = EngineMode::kFull;
    uint32_t clusters_per_query = 3;
    size_t k = 5;
    uint32_t ef_search = 300;  ///< generous: sub-searches near-exhaustive
    /// Memory-pool replication factor (1 = single copy, replication off).
    /// Factor >= 2 arms failure detection + epoch-fenced failover, letting
    /// kill-the-primary schedules CONVERGE instead of degrade.
    uint32_t replication_factor = 1;
    /// Compute instances the engine provisions (the scale-out chaos tests
    /// drive a ComputePool over all of them; single-node suites keep 1).
    uint32_t num_compute_nodes = 1;
    /// Transport backend. Default (unset kind) honours DHNSW_TRANSPORT, so
    /// chaos suites run against real sockets in the tcp-chaos CI job. Tests
    /// that byte-compare simulated clocks / backoff ns / trace JSONL must
    /// pin rdma::TransportOptions::Sim() — wall time is not deterministic.
    rdma::TransportOptions transport{};
  };

  explicit ChaosHarness(Config config);

  /// Fault-free reference answer, computed at construction.
  const BatchResult& baseline() const noexcept { return baseline_; }

  /// Replays the batch under `plan` with the given recovery knobs on a cold
  /// cache. Arms the plan (fresh per-QP injector state), runs, then clears
  /// the fabric's faults again.
  Result<BatchResult> RunUnderPlan(const rdma::FaultPlan& plan, const RetryPolicy& retry,
                                   bool partial_results);

  /// Seeded randomized transient schedule: a handful of rules (unreachable /
  /// timeout / latency spikes / payload bit-flips on READs) whose combined
  /// trigger budget is bounded, so `max_attempts` retries strictly greater
  /// than that budget always converge.
  rdma::FaultPlan MakeTransientPlan(uint64_t seed) const;
  /// Trigger budget an adequate retry policy must outlast.
  static constexpr uint64_t kTransientTriggerBudget = 6;

  /// Permanent outage of one cluster's byte range on the primary shard: its
  /// loads fail forever, but the metadata table and every other cluster stay
  /// reachable. Returns the victim cluster id via `victim`.
  rdma::FaultPlan MakePermanentPlan(uint32_t* victim);

  /// Kills `slot`'s CURRENT primary memory node mid-batch: after letting
  /// `skip_first` matching ops through (per queue pair), every access to the
  /// primary's region — any verb, including the manager's health probes —
  /// fails forever, modeling a node crash. With replication_factor >= 2 a
  /// retry budget that outlasts detection (skip window + dead_after_misses
  /// reports) converges onto the promoted replica; with factor 1 the slot is
  /// simply gone. Resolves the primary at call time, so calling it again
  /// after a failover targets the promoted replica.
  rdma::FaultPlan MakeKillPrimaryPlan(uint64_t skip_first, uint32_t slot = 0) const;

  /// Cluster ids query `qi` routes to (mode-independent).
  std::vector<uint32_t> RoutesOf(size_t qi);

  const Config& config() const noexcept { return config_; }
  const Dataset& dataset() const noexcept { return dataset_; }
  DhnswEngine& engine() noexcept { return *engine_; }

 private:
  Config config_;
  Dataset dataset_;
  std::optional<DhnswEngine> engine_;
  BatchResult baseline_;
};

/// True when both runs produced byte-identical top-k lists (ids + distances).
bool SameResults(const BatchResult& a, const BatchResult& b);

}  // namespace dhnsw
