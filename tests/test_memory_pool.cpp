// Multi-instance memory pool (paper Fig. 2 shows a memory *pool*; the
// testbed used one instance). Cluster groups shard round-robin across
// memory instances; the metadata table and meta-HNSW stay on the primary.
#include <gtest/gtest.h>

#include <set>

#include "core/engine.h"
#include "dataset/ground_truth.h"
#include "dataset/synthetic.h"

namespace dhnsw {
namespace {

DhnswConfig PoolConfig(size_t memory_nodes) {
  DhnswConfig config = DhnswConfig::Defaults();
  config.meta.num_representatives = 12;
  config.sub_hnsw = HnswOptions{.M = 8, .ef_construction = 50};
  config.compute.clusters_per_query = 3;
  config.compute.cache_capacity = 4;
  config.num_memory_nodes = memory_nodes;
  config.layout.overflow_bytes_per_group = 1 << 14;
  return config;
}

Dataset PoolData() {
  return MakeSynthetic({.dim = 8, .num_base = 1500, .num_queries = 25,
                        .num_clusters = 8, .seed = 131});
}

TEST(MemoryPoolTest, LayoutDistributesGroupsRoundRobin) {
  const std::vector<uint64_t> blobs = {100, 100, 100, 100, 100, 100, 100, 100};
  LayoutConfig config;
  config.overflow_bytes_per_group = 1024;
  auto plan = PlanLayout(8, Metric::kL2, 40, 64, blobs, config, /*num_shards=*/3);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan.value().num_shards(), 3u);
  // 4 groups of 2 clusters -> slots 0,1,2,0.
  EXPECT_EQ(plan.value().entries[0].node_slot, 0u);
  EXPECT_EQ(plan.value().entries[1].node_slot, 0u);
  EXPECT_EQ(plan.value().entries[2].node_slot, 1u);
  EXPECT_EQ(plan.value().entries[3].node_slot, 1u);
  EXPECT_EQ(plan.value().entries[4].node_slot, 2u);
  EXPECT_EQ(plan.value().entries[6].node_slot, 0u);
  for (uint64_t size : plan.value().shard_sizes) EXPECT_GT(size, 0u);
}

TEST(MemoryPoolTest, SingleShardPlanMatchesLegacyBehaviour) {
  const std::vector<uint64_t> blobs = {500, 700};
  LayoutConfig config;
  auto plan = PlanLayout(8, Metric::kL2, 40, 64, blobs, config, 1);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().num_shards(), 1u);
  EXPECT_EQ(plan.value().shard_sizes[0], plan.value().total_size);
  for (const ClusterMeta& m : plan.value().entries) EXPECT_EQ(m.node_slot, 0u);
}

TEST(MemoryPoolTest, ZeroShardsRejected) {
  const std::vector<uint64_t> blobs = {100};
  EXPECT_FALSE(PlanLayout(8, Metric::kL2, 40, 64, blobs, LayoutConfig{}, 0).ok());
}

TEST(MemoryPoolTest, HandleExposesAllShards) {
  Dataset ds = PoolData();
  auto engine = DhnswEngine::Build(ds.base, PoolConfig(3));
  ASSERT_TRUE(engine.ok());
  const MemoryNodeHandle& handle = engine.value().memory_handle();
  EXPECT_EQ(handle.num_shards(), 3u);
  EXPECT_EQ(handle.rkey_for_slot(0), handle.rkey);
  std::set<rdma::RKey> rkeys(handle.shard_rkeys.begin(), handle.shard_rkeys.end());
  EXPECT_EQ(rkeys.size(), 3u);  // distinct regions
  std::set<rdma::NodeId> nodes(handle.shard_nodes.begin(), handle.shard_nodes.end());
  EXPECT_EQ(nodes.size(), 3u);  // distinct memory instances
}

TEST(MemoryPoolTest, ShardedAnswersMatchSingleInstance) {
  Dataset ds = PoolData();
  auto single = DhnswEngine::Build(ds.base, PoolConfig(1));
  auto pooled = DhnswEngine::Build(ds.base, PoolConfig(3));
  ASSERT_TRUE(single.ok());
  ASSERT_TRUE(pooled.ok());

  auto r1 = single.value().SearchAll(ds.queries, 10, 48);
  auto r2 = pooled.value().SearchAll(ds.queries, 10, 48);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  for (size_t qi = 0; qi < ds.queries.size(); ++qi) {
    ASSERT_EQ(r1.value().results[qi].size(), r2.value().results[qi].size());
    for (size_t j = 0; j < r1.value().results[qi].size(); ++j) {
      EXPECT_EQ(r1.value().results[qi][j].id, r2.value().results[qi][j].id) << qi;
    }
  }
}

TEST(MemoryPoolTest, DoorbellRingsNeverSpanShards) {
  // With 3 shards and a doorbell window of 16, a batch that loads every
  // cluster needs at least one ring per shard touched.
  Dataset ds = PoolData();
  DhnswConfig config = PoolConfig(3);
  config.compute.doorbell_batch = 16;
  config.compute.clusters_per_query = 12;  // touch all partitions
  auto engine = DhnswEngine::Build(ds.base, config);
  ASSERT_TRUE(engine.ok());
  auto result = engine.value().SearchAll(ds.queries, 5, 32);
  ASSERT_TRUE(result.ok());
  // 12 clusters over 3 shards = 4 per shard; window 16 would fit them all in
  // one ring if destinations didn't matter. Expect >= 3 load rings (+1
  // metadata refresh).
  EXPECT_GE(result.value().breakdown.round_trips, 4u);
}

TEST(MemoryPoolTest, InsertsLandOnTheOwningShard) {
  Dataset ds = PoolData();
  auto engine = DhnswEngine::Build(ds.base, PoolConfig(3));
  ASSERT_TRUE(engine.ok());

  std::vector<float> outlier(8, 640.0f);
  auto id = engine.value().Insert(outlier);
  ASSERT_TRUE(id.ok());

  VectorSet probe(8);
  probe.Append(outlier);
  auto result = engine.value().SearchAll(probe, 1, 32);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result.value().results[0].empty());
  EXPECT_EQ(result.value().results[0][0].id, id.value());
}

TEST(MemoryPoolTest, CompactionPreservesShardCount) {
  Dataset ds = PoolData();
  auto engine = DhnswEngine::Build(ds.base, PoolConfig(3));
  ASSERT_TRUE(engine.ok());
  std::vector<float> v(8, 2.0f);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(engine.value().Insert(v).ok());

  auto stats = engine.value().Compact();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(engine.value().memory_handle().num_shards(), 3u);
  EXPECT_TRUE(engine.value().SearchAll(ds.queries, 5, 32).ok());
}

TEST(MemoryPoolTest, SnapshotRoundTripsThePool) {
  Dataset ds = PoolData();
  auto engine = DhnswEngine::Build(ds.base, PoolConfig(3));
  ASSERT_TRUE(engine.ok());

  const std::string path = ::testing::TempDir() + "/pool.dsnp";
  ASSERT_TRUE(engine.value().SaveSnapshot(path).ok());

  auto restored = DhnswEngine::BuildFromSnapshot(
      path, PoolConfig(3), static_cast<uint32_t>(ds.base.size()));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.value().memory_handle().num_shards(), 3u);

  auto r1 = engine.value().SearchAll(ds.queries, 5, 48);
  auto r2 = restored.value().SearchAll(ds.queries, 5, 48);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  for (size_t qi = 0; qi < ds.queries.size(); ++qi) {
    for (size_t j = 0; j < r1.value().results[qi].size(); ++j) {
      EXPECT_EQ(r1.value().results[qi][j].id, r2.value().results[qi][j].id);
    }
  }
  std::remove(path.c_str());
}

TEST(MemoryPoolTest, OneShardDownFailsLoudly) {
  Dataset ds = PoolData();
  auto engine = DhnswEngine::Build(ds.base, PoolConfig(2));
  ASSERT_TRUE(engine.ok());
  const MemoryNodeHandle& handle = engine.value().memory_handle();

  // Kill the secondary shard; clusters there become unreachable.
  engine.value().fabric().SetNodeReachable(handle.shard_nodes[1], false);
  engine.value().compute(0).InvalidateCache();
  auto result = engine.value().SearchAll(ds.queries, 5, 32);
  EXPECT_FALSE(result.ok());

  engine.value().fabric().SetNodeReachable(handle.shard_nodes[1], true);
  EXPECT_TRUE(engine.value().SearchAll(ds.queries, 5, 32).ok());
}

TEST(MemoryPoolTest, MoreShardsThanGroupsIsFine) {
  Dataset ds = MakeSynthetic({.dim = 8, .num_base = 300, .num_queries = 5,
                              .num_clusters = 2, .seed = 132});
  DhnswConfig config = PoolConfig(8);
  config.meta.num_representatives = 4;  // 2 groups < 8 shards
  auto engine = DhnswEngine::Build(ds.base, config);
  ASSERT_TRUE(engine.ok());
  EXPECT_TRUE(engine.value().SearchAll(ds.queries, 3, 32).ok());
}

}  // namespace
}  // namespace dhnsw
