#include "common/status.h"

#include <gtest/gtest.h>

namespace dhnsw {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("cluster 7");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "cluster 7");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: cluster 7");
}

TEST(StatusTest, EveryFactoryProducesItsCode) {
  EXPECT_EQ(Status::InvalidArgument("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Capacity("").code(), StatusCode::kCapacity);
  EXPECT_EQ(Status::Corruption("").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::Unavailable("").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::Internal("").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::IoError("").code(), StatusCode::kIoError);
}

TEST(StatusTest, CodeNamesAreUnique) {
  const StatusCode codes[] = {
      StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
      StatusCode::kOutOfRange, StatusCode::kCapacity, StatusCode::kCorruption,
      StatusCode::kUnavailable, StatusCode::kInternal, StatusCode::kUnimplemented,
      StatusCode::kIoError};
  for (size_t i = 0; i < std::size(codes); ++i) {
    for (size_t j = i + 1; j < std::size(codes); ++j) {
      EXPECT_NE(StatusCodeName(codes[i]), StatusCodeName(codes[j]));
    }
  }
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::Ok(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::Corruption("bad bytes"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string(1000, 'x'));
  ASSERT_TRUE(r.ok());
  std::string s = std::move(r).value();
  EXPECT_EQ(s.size(), 1000u);
}

namespace helpers {
Status FailIf(bool fail) {
  if (fail) return Status::Internal("asked to fail");
  return Status::Ok();
}
Status Chain(bool fail) {
  DHNSW_RETURN_IF_ERROR(FailIf(fail));
  return Status::Ok();
}
Result<int> Produce(bool fail) {
  if (fail) return Status::NotFound("no value");
  return 7;
}
Result<int> Consume(bool fail) {
  DHNSW_ASSIGN_OR_RETURN(int v, Produce(fail));
  return v * 2;
}
}  // namespace helpers

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(helpers::Chain(false).ok());
  EXPECT_EQ(helpers::Chain(true).code(), StatusCode::kInternal);
}

TEST(StatusMacrosTest, AssignOrReturnPropagates) {
  Result<int> ok = helpers::Consume(false);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 14);
  Result<int> err = helpers::Consume(true);
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace dhnsw
