// Product quantization end to end: codebook training + codec (index/pq.h),
// the PQ extension sections of the cluster blob (serialize/cluster_blob.h),
// and the engine-level `payload` read paths (ComputeOptions::payload):
//  - ADC scores match the exact distance to the reconstruction;
//  - a `payload=pq` deployment at dim 256 moves >= 8x fewer payload bytes
//    than `payload=raw`, verified through dhnsw_compute_bytes_loaded_total;
//  - `pq+rerank` recall@10 stays within 0.02 of raw on a SIFT-like slice;
//  - truncated / corrupted PQ sections fail kCorruption with a byte offset;
//  - same-seed runs with compression produce byte-identical wall-free traces.
#include "index/pq.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/engine.h"
#include "dataset/ground_truth.h"
#include "dataset/synthetic.h"
#include "index/distance.h"
#include "serialize/cluster_blob.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace dhnsw {
namespace {

std::vector<float> RandomResiduals(size_t n, uint32_t dim, uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<float> out(n * dim);
  for (float& x : out) x = static_cast<float>(rng.NextDouble() * 2.0 - 1.0);
  return out;
}

// --- ProductQuantizer -------------------------------------------------------

TEST(ProductQuantizerTest, TrainValidatesArguments) {
  const std::vector<float> samples = RandomResiduals(32, 8, 1);
  EXPECT_FALSE(ProductQuantizer::Train(8, 3, samples, 4, 1).ok());   // 3 !| 8
  EXPECT_FALSE(ProductQuantizer::Train(8, 0, samples, 4, 1).ok());
  EXPECT_FALSE(ProductQuantizer::Train(8, 2, {}, 4, 1).ok());        // no data
  EXPECT_TRUE(ProductQuantizer::Train(8, 2, samples, 4, 1).ok());
}

TEST(ProductQuantizerTest, TrainIsDeterministicPerSeed) {
  const std::vector<float> samples = RandomResiduals(600, 16, 7);
  auto a = ProductQuantizer::Train(16, 4, samples, 8, 99);
  auto b = ProductQuantizer::Train(16, 4, samples, 8, 99);
  auto c = ProductQuantizer::Train(16, 4, samples, 8, 100);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  const auto ca = a.value().centroids();
  const auto cb = b.value().centroids();
  ASSERT_EQ(ca.size(), cb.size());
  for (size_t i = 0; i < ca.size(); ++i) EXPECT_EQ(ca[i], cb[i]) << i;
  bool any_diff = false;
  for (size_t i = 0; i < ca.size(); ++i) any_diff |= ca[i] != c.value().centroids()[i];
  EXPECT_TRUE(any_diff);
}

TEST(ProductQuantizerTest, EncodeDecodeReducesErrorVsZero) {
  // Reconstruction from an m=4 codebook must beat the trivial all-zeros
  // "reconstruction" by a wide margin on the training distribution.
  const uint32_t dim = 16;
  const std::vector<float> samples = RandomResiduals(2000, dim, 21);
  auto pq = ProductQuantizer::Train(dim, 4, samples, 10, 5);
  ASSERT_TRUE(pq.ok());
  std::vector<uint8_t> code(pq.value().code_size());
  std::vector<float> rec(dim);
  double err = 0.0, norm = 0.0;
  for (size_t i = 0; i < 200; ++i) {
    const std::span<const float> v(samples.data() + i * dim, dim);
    pq.value().Encode(v, code);
    pq.value().Decode(code, rec);
    for (uint32_t d = 0; d < dim; ++d) {
      err += static_cast<double>(v[d] - rec[d]) * (v[d] - rec[d]);
      norm += static_cast<double>(v[d]) * v[d];
    }
  }
  EXPECT_LT(err, 0.5 * norm);
}

TEST(ProductQuantizerTest, SerializationRoundTripsBitExact) {
  const std::vector<float> samples = RandomResiduals(500, 24, 3);
  auto pq = ProductQuantizer::Train(24, 6, samples, 6, 11);
  ASSERT_TRUE(pq.ok());
  auto back = ProductQuantizer::FromBytes(pq.value().ToBytes());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value().dim(), 24u);
  EXPECT_EQ(back.value().m(), 6u);
  const auto a = pq.value().centroids();
  const auto b = back.value().centroids();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]) << i;
}

TEST(ProductQuantizerTest, AdcEqualsExactDistanceToReconstruction) {
  // Contract (pq.h): adc(lut, code) + bias ==
  //   Pair(metric)(query, centroid + Decode(code)) up to summation-order ULPs.
  const uint32_t dim = 32;
  const std::vector<float> samples = RandomResiduals(1500, dim, 17);
  auto pq = ProductQuantizer::Train(dim, 8, samples, 8, 23);
  ASSERT_TRUE(pq.ok());

  Xoshiro256 rng(0xfeedu);
  std::vector<float> query(dim), centroid(dim), rec(dim), target(dim);
  std::vector<float> lut(pq.value().lut_floats()), scratch(dim);
  std::vector<uint8_t> code(pq.value().code_size());
  const KernelTable& kernels = ActiveKernels();
  for (Metric metric : {Metric::kL2, Metric::kInnerProduct}) {
    for (int rep = 0; rep < 20; ++rep) {
      for (auto& x : query) x = static_cast<float>(rng.NextDouble() * 2.0 - 1.0);
      for (auto& x : centroid) x = static_cast<float>(rng.NextDouble() * 2.0 - 1.0);
      const std::span<const float> sample(samples.data() + rep * dim, dim);
      pq.value().Encode(sample, code);
      pq.value().Decode(code, rec);
      for (uint32_t d = 0; d < dim; ++d) target[d] = centroid[d] + rec[d];

      const float bias =
          pq.value().BuildAdcLut(metric, query, centroid, lut.data(), scratch.data());
      const float adc = kernels.adc(lut.data(), code.data(), pq.value().m()) + bias;
      const float exact = kernels.Pair(metric)(query.data(), target.data(), dim);
      // Magnitude-relative budget: the LUT precomputation sums per-subspace
      // in a different order than the flat pairwise kernel.
      double magnitude = 1.0;
      for (uint32_t d = 0; d < dim; ++d) {
        magnitude += std::abs(static_cast<double>(query[d]) * target[d]) +
                     std::abs(static_cast<double>(target[d]) * target[d]);
      }
      EXPECT_LE(std::abs(static_cast<double>(adc) - exact), 64.0 * 1.1920929e-7 * magnitude)
          << MetricName(metric) << " rep=" << rep << " adc=" << adc << " exact=" << exact;
    }
  }
}

// --- Blob extension sections ------------------------------------------------

Cluster MakeCluster(uint32_t partition_id, uint32_t count, uint32_t dim, uint64_t seed) {
  Xoshiro256 rng(seed);
  HnswIndex index(dim, {.M = 6, .ef_construction = 40, .seed = seed});
  std::vector<uint32_t> gids;
  std::vector<float> v(dim);
  for (uint32_t i = 0; i < count; ++i) {
    for (auto& x : v) x = rng.NextFloat() * 10.0f;
    index.Add(v);
    gids.push_back(500 + i * 2);
  }
  return Cluster(partition_id, std::move(index), std::move(gids));
}

struct EncodedPq {
  ProductQuantizer pq;
  std::vector<uint8_t> blob;
  uint64_t head_size = 0;
  uint32_t count = 0;
};

EncodedPq MakeEncodedPqCluster(uint32_t count, uint32_t dim, uint64_t seed) {
  const Cluster cluster = MakeCluster(3, count, dim, seed);
  const std::vector<float> samples = RandomResiduals(512, dim, seed + 1);
  auto pq = ProductQuantizer::Train(dim, 4, samples, 6, seed);
  EXPECT_TRUE(pq.ok());
  std::vector<uint8_t> codes(static_cast<size_t>(count) * pq.value().m());
  for (uint32_t i = 0; i < count; ++i) {
    pq.value().Encode(cluster.index.vector(i),
                      std::span<uint8_t>(codes).subspan(
                          static_cast<size_t>(i) * pq.value().m(), pq.value().m()));
  }
  ClusterPqExtensions ext;
  ext.codes = codes;
  ext.code_m = pq.value().m();
  uint64_t head = 0;
  std::vector<uint8_t> blob = EncodeCluster(cluster, ext, &head);
  return EncodedPq{std::move(pq).value(), std::move(blob), head, count};
}

TEST(PqBlobTest, PrefixDecodeRecoversGraphAndCodes) {
  const EncodedPq enc = MakeEncodedPqCluster(80, 12, 31);
  ASSERT_GT(enc.head_size, 0u);
  ASSERT_LT(enc.head_size, enc.blob.size());

  // Decode from EXACTLY the prefix a payload=pq READ returns.
  auto pc = DecodePqCluster(std::span<const uint8_t>(enc.blob).first(enc.head_size));
  ASSERT_TRUE(pc.ok()) << pc.status().ToString();
  EXPECT_EQ(pc.value().partition_id, 3u);
  EXPECT_EQ(pc.value().count, enc.count);
  EXPECT_EQ(pc.value().m, enc.pq.m());
  EXPECT_EQ(pc.value().codes.size(), static_cast<size_t>(enc.count) * enc.pq.m());

  // The full blob still decodes on the raw path, graph identical.
  auto raw = DecodeCluster(enc.blob, HnswOptions{});
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  EXPECT_EQ(raw.value().global_ids, pc.value().global_ids);
  for (uint32_t id = 0; id < enc.count; ++id) {
    ASSERT_EQ(raw.value().index.level(id), pc.value().levels[id]);
    for (uint32_t layer = 0; layer <= pc.value().levels[id]; ++layer) {
      const auto a = raw.value().index.neighbors(id, layer);
      const auto b = pc.value().neighbors(id, layer);
      ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()))
          << "id=" << id << " layer=" << layer;
    }
  }
}

TEST(PqBlobTest, TruncatedPrefixFailsCorruptionWithOffset) {
  const EncodedPq enc = MakeEncodedPqCluster(40, 8, 32);
  for (size_t cut : {enc.head_size - 1, enc.head_size / 2, size_t{50}}) {
    auto pc = DecodePqCluster(std::span<const uint8_t>(enc.blob).first(cut));
    ASSERT_FALSE(pc.ok()) << "cut=" << cut;
    EXPECT_EQ(pc.status().code(), StatusCode::kCorruption) << "cut=" << cut;
  }
  // The just-too-short case reports where the prefix ended.
  auto pc = DecodePqCluster(std::span<const uint8_t>(enc.blob).first(enc.head_size - 1));
  EXPECT_NE(pc.status().ToString().find("offset"), std::string::npos)
      << pc.status().ToString();
}

TEST(PqBlobTest, CorruptedSectionBytesFailCorruption) {
  const EncodedPq enc = MakeEncodedPqCluster(40, 8, 33);
  // Flip one byte inside the extension area (section body -> CRC mismatch).
  std::vector<uint8_t> bad = enc.blob;
  bad[ClusterHeader::kEncodedSize + 12] ^= 0xff;
  auto pc = DecodePqCluster(std::span<const uint8_t>(bad).first(enc.head_size));
  ASSERT_FALSE(pc.ok());
  EXPECT_EQ(pc.status().code(), StatusCode::kCorruption);
  EXPECT_NE(pc.status().ToString().find("offset"), std::string::npos)
      << pc.status().ToString();

  // Flip one byte in the graph prefix (payload -> graph_crc mismatch).
  bad = enc.blob;
  bad[enc.head_size - 3] ^= 0xff;
  auto pc2 = DecodePqCluster(std::span<const uint8_t>(bad).first(enc.head_size));
  ASSERT_FALSE(pc2.ok());
  EXPECT_EQ(pc2.status().code(), StatusCode::kCorruption);
}

TEST(PqBlobTest, BlobWithoutCodesSectionIsRejected) {
  const Cluster cluster = MakeCluster(1, 20, 8, 34);
  const std::vector<uint8_t> blob = EncodeCluster(cluster);
  auto pc = DecodePqCluster(blob);
  ASSERT_FALSE(pc.ok());
  EXPECT_EQ(pc.status().code(), StatusCode::kCorruption);
}

TEST(PqBlobTest, CodebookRidesTheMetaBlob) {
  const std::vector<float> samples = RandomResiduals(400, 8, 35);
  auto pq = ProductQuantizer::Train(8, 2, samples, 6, 35);
  ASSERT_TRUE(pq.ok());
  const Cluster cluster = MakeCluster(0, 10, 8, 35);
  ClusterPqExtensions ext;
  ext.codebook = &pq.value();
  const std::vector<uint8_t> blob = EncodeCluster(cluster, ext, nullptr);

  auto decoded = DecodeClusterCodebook(blob);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_TRUE(decoded.value().has_value());
  EXPECT_EQ(decoded.value()->dim(), 8u);

  // A codebook-free blob yields nullopt, not an error.
  auto plain = DecodeClusterCodebook(EncodeCluster(cluster));
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(plain.value().has_value());
}

// --- Engine-level payload modes ---------------------------------------------

DhnswConfig PqEngineConfig(uint32_t pq_m = 8) {
  DhnswConfig config = DhnswConfig::Defaults();
  config.meta.num_representatives = 8;
  config.sub_hnsw = HnswOptions{.M = 8, .ef_construction = 60};
  config.compute.clusters_per_query = 3;
  config.compute.cache_capacity = 4;
  config.pq.enabled = true;
  config.pq.m = pq_m;
  config.pq.train_iterations = 8;
  config.pq.train_sample_cap = 4096;
  return config;
}

TEST(PqEngineTest, PayloadPqNeedsAPqDeployment) {
  Dataset ds = MakeSynthetic({.dim = 16, .num_base = 400, .num_queries = 4,
                              .num_clusters = 4, .seed = 404});
  DhnswConfig config = PqEngineConfig(4);
  config.pq.enabled = false;
  config.compute.payload = PayloadMode::kPq;
  auto engine = DhnswEngine::Build(ds.base, config);
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kInvalidArgument);
}

TEST(PqEngineTest, PqRejectsCosineAndNonDividingM) {
  Dataset ds = MakeSynthetic({.dim = 16, .num_base = 300, .num_queries = 2,
                              .num_clusters = 3, .seed = 405});
  DhnswConfig bad_m = PqEngineConfig(5);  // 5 does not divide 16
  EXPECT_EQ(DhnswEngine::Build(ds.base, bad_m).status().code(),
            StatusCode::kInvalidArgument);

  DhnswConfig cosine = DhnswConfig::Defaults(Metric::kCosine);
  cosine.meta.num_representatives = 4;
  cosine.pq.enabled = true;
  cosine.pq.m = 4;
  EXPECT_EQ(DhnswEngine::Build(ds.base, cosine).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(PqEngineTest, PqPayloadMovesAtLeast8xFewerBytesAtDim256) {
  // The acceptance ratio: raw payload = dim*4 = 1024 B/vector; the pq prefix
  // replaces the rows with m = 8 code bytes/vector. Graph + ids overhead is
  // identical on both sides, so dim 256 clears 8x with margin.
  Dataset ds = MakeSynthetic({.dim = 256, .num_base = 1200, .num_queries = 16,
                              .num_clusters = 8, .seed = 256256});
  telemetry::Counter* bytes_loaded =
      telemetry::DefaultRegistry().GetCounter("dhnsw_compute_bytes_loaded_total");

  DhnswConfig raw_config = PqEngineConfig(8);
  raw_config.compute.payload = PayloadMode::kRaw;
  auto raw = DhnswEngine::Build(ds.base, raw_config);
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  const uint64_t raw_before = bytes_loaded->value();
  auto raw_result = raw.value().SearchAll(ds.queries, 10, 64);
  ASSERT_TRUE(raw_result.ok());
  const uint64_t raw_bytes = bytes_loaded->value() - raw_before;

  DhnswConfig pq_config = PqEngineConfig(8);
  pq_config.compute.payload = PayloadMode::kPq;
  auto pq = DhnswEngine::Build(ds.base, pq_config);
  ASSERT_TRUE(pq.ok()) << pq.status().ToString();
  const uint64_t pq_before = bytes_loaded->value();
  auto pq_result = pq.value().SearchAll(ds.queries, 10, 64);
  ASSERT_TRUE(pq_result.ok());
  const uint64_t pq_bytes = bytes_loaded->value() - pq_before;

  ASSERT_GT(pq_bytes, 0u);
  EXPECT_GE(raw_bytes, 8 * pq_bytes)
      << "raw=" << raw_bytes << " pq=" << pq_bytes << " ratio="
      << static_cast<double>(raw_bytes) / static_cast<double>(pq_bytes);
  // Both modes route to the same clusters and return the same number of rows.
  ASSERT_EQ(raw_result.value().results.size(), pq_result.value().results.size());
}

TEST(PqEngineTest, PqRerankRecallWithin002OfRawOnSiftSlice) {
  Dataset ds = MakeSiftLike(4000, 64, 77);
  ComputeGroundTruth(&ds, 10);

  DhnswConfig raw_config = PqEngineConfig(8);
  raw_config.compute.payload = PayloadMode::kRaw;
  auto raw = DhnswEngine::Build(ds.base, raw_config);
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  auto raw_result = raw.value().SearchAll(ds.queries, 10, 96);
  ASSERT_TRUE(raw_result.ok());
  const double raw_recall = MeanRecallAtK(ds, raw_result.value().results, 10);

  DhnswConfig rr_config = PqEngineConfig(8);
  rr_config.compute.payload = PayloadMode::kPqRerank;
  rr_config.compute.rerank_depth = 32;
  auto rr = DhnswEngine::Build(ds.base, rr_config);
  ASSERT_TRUE(rr.ok()) << rr.status().ToString();
  auto rr_result = rr.value().SearchAll(ds.queries, 10, 96);
  ASSERT_TRUE(rr_result.ok());
  const double rr_recall = MeanRecallAtK(ds, rr_result.value().results, 10);

  EXPECT_GE(rr_recall, raw_recall - 0.02)
      << "raw=" << raw_recall << " pq+rerank=" << rr_recall;
  // The re-rank stage actually ran and fetched exact rows.
  EXPECT_GT(rr_result.value().breakdown.rerank_candidates, 0u);
  EXPECT_GT(rr_result.value().breakdown.rerank_bytes, 0u);
  EXPECT_EQ(rr_result.value().breakdown.rerank_fallbacks, 0u);
}

TEST(PqEngineTest, ByteBudgetCacheKeepsResultsIdentical) {
  Dataset ds = MakeSynthetic({.dim = 32, .num_base = 1500, .num_queries = 20,
                              .num_clusters = 6, .seed = 909});
  DhnswConfig base_config = PqEngineConfig(8);
  base_config.compute.payload = PayloadMode::kPq;

  auto unlimited = DhnswEngine::Build(ds.base, base_config);
  ASSERT_TRUE(unlimited.ok());
  auto a = unlimited.value().SearchAll(ds.queries, 5, 48);
  ASSERT_TRUE(a.ok());

  DhnswConfig budget_config = base_config;
  budget_config.compute.cache_budget_bytes = 64 * 1024;  // a few clusters
  auto budgeted = DhnswEngine::Build(ds.base, budget_config);
  ASSERT_TRUE(budgeted.ok());
  auto b = budgeted.value().SearchAll(ds.queries, 5, 48);
  ASSERT_TRUE(b.ok());

  ASSERT_EQ(a.value().results.size(), b.value().results.size());
  for (size_t q = 0; q < a.value().results.size(); ++q) {
    ASSERT_EQ(a.value().results[q].size(), b.value().results[q].size()) << q;
    for (size_t j = 0; j < a.value().results[q].size(); ++j) {
      EXPECT_EQ(a.value().results[q][j].id, b.value().results[q][j].id) << q;
    }
  }
}

TEST(PqEngineTest, CompactionPreservesPqDeployment) {
  Dataset ds = MakeSynthetic({.dim = 16, .num_base = 800, .num_queries = 10,
                              .num_clusters = 4, .seed = 606});
  DhnswConfig config = PqEngineConfig(4);
  config.compute.payload = PayloadMode::kPqRerank;
  auto engine = DhnswEngine::Build(ds.base, config);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  std::vector<float> v(16, 0.5f);
  for (int i = 0; i < 10; ++i) {
    v[0] = static_cast<float>(i);
    ASSERT_TRUE(engine.value().Insert(v).ok());
  }
  auto stats = engine.value().Compact();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  // The compacted region must still carry codes: payload=pq+rerank reconnected
  // above and keeps answering.
  auto result = engine.value().SearchAll(ds.queries, 5, 32);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (const auto& per_query : result.value().results) EXPECT_EQ(per_query.size(), 5u);
}

TEST(PqEngineTest, SameSeedTracesAreByteIdenticalUnderCompression) {
  Dataset ds = MakeSynthetic({.dim = 32, .num_base = 900, .num_queries = 12,
                              .num_clusters = 5, .seed = 515});
  for (PayloadMode mode : {PayloadMode::kPq, PayloadMode::kPqRerank}) {
    DhnswConfig config = PqEngineConfig(8);
    config.compute.payload = mode;
    // Byte-identical same-seed traces are a simulator-only contract.
    config.transport = rdma::TransportOptions::Sim();
    std::string first;
    for (int run = 0; run < 2; ++run) {
      auto engine = DhnswEngine::Build(ds.base, config);
      ASSERT_TRUE(engine.ok()) << engine.status().ToString();
      engine.value().EnableTracing(4096);
      ASSERT_TRUE(engine.value().SearchAll(ds.queries, 5, 48).ok());
      const std::string jsonl = telemetry::TraceToJsonl(
          engine.value().trace(), telemetry::TraceExportOptions{.include_wall = false});
      ASSERT_FALSE(jsonl.empty());
      if (run == 0) {
        first = jsonl;
      } else {
        EXPECT_EQ(first, jsonl) << PayloadModeName(mode);
      }
    }
  }
}

}  // namespace
}  // namespace dhnsw
