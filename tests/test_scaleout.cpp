// Scale-out differential suite (DESIGN.md §12): N ComputeNode instances
// running CONCURRENTLY behind a ComputePool must be indistinguishable — at
// quiescence — from one node replaying the same schedule sequentially.
//
// Why quiescence and not per-op: concurrent inserts allocate overflow slots
// with remote FAAs, so the slot ORDER interleaves nondeterministically, but
// the record SET is fixed by the schedule. A fresh cold-cache search after
// the traffic therefore has a deterministic answer, and that is what gets
// byte-compared against the single-node sequential oracle — across pool
// sizes {2,4,8}, search_threads {1,4}, and pipeline_depth {1,2}.
//
// Also here: the per-op differential for read-only traffic (searches are
// pure functions of the query, so even per-op results must match), the
// RetryBudget cross-inflation regression (concurrent nodes' sim clocks and
// backoff must equal their solo runs exactly), paced-mode admission-control
// behaviour, load-aware weighted sharding, and the same-seed wall-free trace
// byte-identity contract CI archives.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "chaos_harness.h"
#include "core/compute_pool.h"
#include "core/engine.h"
#include "core/workload_gen.h"
#include "dataset/synthetic.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace dhnsw {
namespace {

constexpr size_t kK = 5;
constexpr uint32_t kEf = 200;
constexpr uint32_t kNumTenants = 3;

Dataset ScaleData() {
  return MakeSynthetic({.dim = 8, .num_base = 1200, .num_queries = 24,
                        .num_clusters = 6, .seed = 77});
}

DhnswConfig ScaleConfig(size_t nodes) {
  DhnswConfig config = DhnswConfig::Defaults();
  config.meta.num_representatives = 6;
  config.sub_hnsw.M = 8;
  config.sub_hnsw.ef_construction = 60;
  config.compute.clusters_per_query = 3;
  config.compute.cache_capacity = 4;  // < clusters: LRU churn under traffic
  config.num_compute_nodes = nodes;
  config.layout.overflow_bytes_per_group = 1 << 18;
  return config;
}

std::vector<WorkloadOp> ScaleOps(const Dataset& ds, double read_fraction,
                                 size_t num_ops = 160, uint64_t seed = 21) {
  WorkloadGenOptions opt;
  opt.seed = seed;
  opt.num_ops = num_ops;
  opt.arrivals = ArrivalProcess::kPoisson;
  opt.zipf_s = 1.1;
  opt.num_topics = 6;
  opt.read_fraction = read_fraction;
  opt.num_tenants = kNumTenants;
  opt.first_insert_id = static_cast<uint32_t>(ds.base.size());
  return WorkloadGenerator(ds.base, opt).Generate();
}

ComputePoolOptions ScalePoolOptions() {
  ComputePoolOptions popt;
  popt.dispatch = DispatchPolicy::kLeastAssigned;
  popt.k = kK;
  popt.ef_search = kEf;
  popt.num_tenants = kNumTenants;
  popt.admission.node_queue_capacity = 64;
  popt.admission.tenant_inflight_limit = 0;
  return popt;
}

/// Replays one op exactly the way a pool worker does, so the oracle and the
/// concurrent runs share the code path being compared.
Status ReplayOp(ComputeNode& node, const WorkloadOp& op,
                std::vector<Scored>* results) {
  if (op.kind == WorkloadOp::Kind::kSearch) {
    VectorSet one(node.dim());
    one.Append(op.vector);
    auto run = node.SearchBatch(one, 0, 1, kK, kEf);
    if (!run.ok()) return run.status();
    if (results != nullptr) *results = run.value().results[0];
    return run.value().statuses.empty() ? Status::Ok() : run.value().statuses[0];
  }
  return node.Insert(op.vector, op.global_id).status();
}

struct OracleRun {
  std::vector<std::vector<Scored>> per_op;  ///< search ops only
  BatchResult quiescence;
};

/// Single-node sequential execution of the schedule + cold verification
/// search: the ground truth every concurrent geometry must reproduce.
OracleRun SequentialOracle(const Dataset& ds, const std::vector<WorkloadOp>& ops) {
  auto built = DhnswEngine::Build(ds.base, ScaleConfig(1));
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  DhnswEngine& engine = built.value();

  OracleRun out;
  out.per_op.resize(ops.size());
  for (size_t i = 0; i < ops.size(); ++i) {
    const Status st = ReplayOp(engine.compute(0), ops[i], &out.per_op[i]);
    EXPECT_TRUE(st.ok()) << "oracle op " << i << ": " << st.ToString();
  }
  engine.compute(0).InvalidateCache();
  auto verify = engine.SearchAll(ds.queries, kK, kEf);
  EXPECT_TRUE(verify.ok()) << verify.status().ToString();
  out.quiescence = std::move(verify).value();
  return out;
}

/// Concurrent pool execution of the same schedule on N nodes; returns the
/// cold quiescence verification search.
BatchResult PoolQuiescence(const Dataset& ds, const std::vector<WorkloadOp>& ops,
                           size_t nodes, size_t threads, uint32_t depth,
                           PoolRunStats* stats_out = nullptr,
                           std::vector<OpOutcome>* outcomes = nullptr) {
  auto built = DhnswEngine::Build(ds.base, ScaleConfig(nodes));
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  DhnswEngine& engine = built.value();
  for (size_t i = 0; i < nodes; ++i) {
    engine.compute(i).mutable_options()->search_threads = threads;
    engine.compute(i).mutable_options()->pipeline_depth = depth;
  }

  PoolRunStats stats;
  {
    ComputePool pool(engine.compute_nodes(), ScalePoolOptions());
    stats = pool.Run(ops, PoolRunMode::kDrain, outcomes);
  }
  EXPECT_EQ(stats.admitted, ops.size());
  EXPECT_EQ(stats.completed_ok, ops.size()) << stats.failed << " ops failed";
  if (stats_out != nullptr) *stats_out = stats;

  engine.compute(0).InvalidateCache();
  auto verify = engine.SearchAll(ds.queries, kK, kEf);
  EXPECT_TRUE(verify.ok()) << verify.status().ToString();
  return std::move(verify).value();
}

// The headline invariant: every (N, threads, pipeline_depth) geometry ends
// in the same quiescent state as the single-node sequential replay.
TEST(ScaleoutTest, QuiescenceOracleIdenticalAcrossPoolGeometries) {
  const Dataset ds = ScaleData();
  const auto ops = ScaleOps(ds, /*read_fraction=*/0.8);
  const OracleRun oracle = SequentialOracle(ds, ops);
  ASSERT_EQ(oracle.quiescence.results.size(), ds.queries.size());

  for (size_t nodes : {size_t{2}, size_t{4}, size_t{8}}) {
    for (size_t threads : {size_t{1}, size_t{4}}) {
      for (uint32_t depth : {1u, 2u}) {
        const BatchResult got = PoolQuiescence(ds, ops, nodes, threads, depth);
        EXPECT_TRUE(SameResults(oracle.quiescence, got))
            << "divergence at N=" << nodes << " threads=" << threads
            << " depth=" << depth;
      }
    }
  }
}

// Read-only traffic is a pure function of each query — even PER-OP results
// must match the sequential replay, not just the quiescent state.
TEST(ScaleoutTest, SearchOnlyPerOpResultsMatchSequential) {
  const Dataset ds = ScaleData();
  const auto ops = ScaleOps(ds, /*read_fraction=*/1.0, /*num_ops=*/96);
  const OracleRun oracle = SequentialOracle(ds, ops);

  std::vector<OpOutcome> outcomes;
  PoolRunStats stats;
  (void)PoolQuiescence(ds, ops, /*nodes=*/4, /*threads=*/1, /*depth=*/2, &stats,
                       &outcomes);
  ASSERT_EQ(outcomes.size(), ops.size());
  for (size_t i = 0; i < ops.size(); ++i) {
    ASSERT_TRUE(outcomes[i].status.ok()) << "op " << i;
    ASSERT_EQ(outcomes[i].results.size(), oracle.per_op[i].size()) << "op " << i;
    for (size_t j = 0; j < oracle.per_op[i].size(); ++j) {
      EXPECT_EQ(outcomes[i].results[j].id, oracle.per_op[i][j].id) << "op " << i;
      EXPECT_EQ(outcomes[i].results[j].distance, oracle.per_op[i][j].distance)
          << "op " << i;
    }
  }
  // Every node actually served traffic (least-assigned spreads 96 ops evenly).
  for (uint64_t per_node : stats.per_node_ops) EXPECT_EQ(per_node, 24u);
}

// Regression for the shared-SimClock hazard: each RetryBudget must charge
// backoff to ITS node's private clock. Four nodes retrying through the same
// seeded transient fault schedule concurrently must observe exactly the sim
// timeline, backoff, and answers of their solo runs — any cross-node clock
// sharing would inflate elapsed time and flip deadline decisions.
TEST(ScaleoutTest, ConcurrentRetryBackoffDoesNotCrossInflateSimClocks) {
  constexpr uint32_t kNodes = 4;
  constexpr uint64_t kPlanSeed = 31;

  struct Obs {
    uint64_t sim_ns = 0;
    uint64_t backoff_ns = 0;
    uint64_t retries = 0;
    uint64_t round_trips = 0;
    uint64_t injected_faults = 0;
    BatchResult result;
  };

  RetryPolicy retry = RetryPolicy::Default();
  retry.max_attempts = ChaosHarness::kTransientTriggerBudget + 4;
  retry.deadline_ns = 10'000'000;  // exercises the elapsed-time check

  const auto observe = [](ChaosHarness& h, size_t i) {
    Obs obs;
    ComputeNode& node = h.engine().compute(i);
    obs.sim_ns = node.clock().now_ns();
    obs.backoff_ns = 0;  // filled from the breakdown below
    obs.round_trips = node.qp_stats().round_trips;
    obs.injected_faults = node.qp_stats().injected_faults;
    return obs;
  };

  const auto prep_node = [&retry](ChaosHarness& h, size_t i) {
    ComputeNode& node = h.engine().compute(i);
    node.mutable_options()->retry = retry;
    node.InvalidateCache();
  };

  // Solo baselines: one node at a time, fresh deployment each, same plan.
  std::vector<Obs> solo(kNodes);
  for (size_t i = 0; i < kNodes; ++i) {
    ChaosHarness h({.num_compute_nodes = kNodes,
                    .transport = rdma::TransportOptions::Sim()});
    prep_node(h, i);
    ASSERT_TRUE(h.engine().fabric().ArmFaults(h.MakeTransientPlan(kPlanSeed)).ok());
    auto run = h.engine().compute(i).SearchAll(h.dataset().queries, h.config().k,
                                               h.config().ef_search);
    h.engine().fabric().ClearFaults();
    ASSERT_TRUE(run.ok()) << "solo node " << i << ": " << run.status().ToString();
    solo[i] = observe(h, i);
    solo[i].backoff_ns = run.value().breakdown.backoff_ns;
    solo[i].retries = run.value().breakdown.retries;
    solo[i].result = std::move(run).value();
  }

  // Concurrent: all four nodes at once on one deployment.
  ChaosHarness h({.num_compute_nodes = kNodes,
                  .transport = rdma::TransportOptions::Sim()});
  for (size_t i = 0; i < kNodes; ++i) prep_node(h, i);
  ASSERT_TRUE(h.engine().fabric().ArmFaults(h.MakeTransientPlan(kPlanSeed)).ok());
  std::vector<Result<BatchResult>> runs(kNodes, Status::Internal("never ran"));
  {
    std::vector<std::thread> threads;
    for (size_t i = 0; i < kNodes; ++i) {
      threads.emplace_back([&, i] {
        runs[i] = h.engine().compute(i).SearchAll(h.dataset().queries, h.config().k,
                                                  h.config().ef_search);
      });
    }
    for (auto& t : threads) t.join();
  }
  h.engine().fabric().ClearFaults();

  uint64_t total_injected = 0;
  for (size_t i = 0; i < kNodes; ++i) {
    ASSERT_TRUE(runs[i].ok()) << "concurrent node " << i;
    Obs conc = observe(h, i);
    conc.backoff_ns = runs[i].value().breakdown.backoff_ns;
    conc.retries = runs[i].value().breakdown.retries;
    EXPECT_EQ(conc.sim_ns, solo[i].sim_ns) << "node " << i << " sim clock inflated";
    EXPECT_EQ(conc.backoff_ns, solo[i].backoff_ns) << "node " << i;
    EXPECT_EQ(conc.retries, solo[i].retries) << "node " << i;
    EXPECT_EQ(conc.round_trips, solo[i].round_trips) << "node " << i;
    EXPECT_EQ(conc.injected_faults, solo[i].injected_faults) << "node " << i;
    EXPECT_TRUE(SameResults(runs[i].value(), solo[i].result)) << "node " << i;
    total_injected += conc.injected_faults;
  }
  ASSERT_GT(total_injected, 0u) << "plan seed " << kPlanSeed << " never fired";
}

// Paced mode with starved queues must DROP at admission — with terminal
// outcomes for every op and consistent accounting — never block or lose ops.
TEST(ScaleoutTest, AdmissionControlDropsInsteadOfHanging) {
  const Dataset ds = ScaleData();
  WorkloadGenOptions wopt;
  wopt.seed = 13;
  wopt.num_ops = 300;
  wopt.target_qps = 2e6;  // far beyond serviceable: arrivals are immediate
  wopt.read_fraction = 1.0;
  wopt.num_tenants = kNumTenants;
  auto ops = WorkloadGenerator(ds.base, wopt).Generate();

  auto built = DhnswEngine::Build(ds.base, ScaleConfig(2));
  ASSERT_TRUE(built.ok());
  DhnswEngine& engine = built.value();

  ComputePoolOptions popt = ScalePoolOptions();
  popt.admission.node_queue_capacity = 2;
  popt.admission.tenant_inflight_limit = 3;
  ComputePool pool(engine.compute_nodes(), popt);

  std::vector<OpOutcome> outcomes;
  const PoolRunStats stats = pool.Run(ops, PoolRunMode::kPaced, &outcomes);

  EXPECT_EQ(stats.submitted, ops.size());
  EXPECT_EQ(stats.submitted, stats.admitted + stats.dropped());
  EXPECT_GT(stats.dropped(), 0u) << "starved queues never dropped";
  EXPECT_GT(stats.admitted, 0u);
  EXPECT_EQ(stats.admitted, stats.completed_ok + stats.failed);
  EXPECT_EQ(stats.latency_us.count(), stats.admitted);

  size_t dropped_seen = 0;
  for (const OpOutcome& out : outcomes) {
    if (out.dropped) {
      ++dropped_seen;
      EXPECT_EQ(out.status.code(), StatusCode::kCapacity);
    }
    // Terminal outcome for EVERY op: the sentinel must never survive a run.
    EXPECT_NE(out.status.message(), "op never completed");
  }
  EXPECT_EQ(dropped_seen, stats.dropped());

  uint64_t tenant_drops = 0;
  for (uint64_t d : stats.per_tenant_drops) tenant_drops += d;
  EXPECT_EQ(tenant_drops, stats.dropped());
}

// Load-aware sharding: idle pools get the even split; a backed-up instance
// gets proportionally fewer queries, and the merged answers are unchanged
// (searches are pure functions of the query).
TEST(ScaleoutTest, WeightedShardingBiasesAwayFromLoadedNodes) {
  const Dataset ds = ScaleData();
  auto built = DhnswEngine::Build(ds.base, ScaleConfig(4));
  ASSERT_TRUE(built.ok());
  DhnswEngine& engine = built.value();

  ClientRouter router(engine.compute_nodes(), RouterExecution::kIsolated);
  auto even = router.SearchBatch(ds.queries, kK, kEf);
  ASSERT_TRUE(even.ok());

  const std::vector<uint64_t> idle(4, 0);
  auto weighted_idle =
      router.SearchBatchWeighted(ds.queries, kK, kEf, idle);
  ASSERT_TRUE(weighted_idle.ok());
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(weighted_idle.value().per_instance[s].num_queries, 6u);
  }

  const std::vector<uint64_t> skewed = {0, 50, 50, 50};
  auto weighted = router.SearchBatchWeighted(ds.queries, kK, kEf, skewed);
  ASSERT_TRUE(weighted.ok());
  const auto& per = weighted.value().per_instance;
  EXPECT_GT(per[0].num_queries, per[1].num_queries * 3);
  size_t total = 0;
  for (size_t s = 0; s < 4; ++s) total += per[s].num_queries;
  EXPECT_EQ(total, ds.queries.size());

  // Same answers regardless of how the batch was sharded.
  ASSERT_EQ(weighted.value().results.size(), even.value().results.size());
  for (size_t q = 0; q < ds.queries.size(); ++q) {
    ASSERT_EQ(weighted.value().results[q].size(), even.value().results[q].size());
    for (size_t j = 0; j < even.value().results[q].size(); ++j) {
      EXPECT_EQ(weighted.value().results[q][j].id, even.value().results[q][j].id);
      EXPECT_EQ(weighted.value().results[q][j].distance,
                even.value().results[q][j].distance);
    }
  }

  // The pool front-end rides the same path end to end.
  ComputePool pool(engine.compute_nodes(), ScalePoolOptions());
  auto via_pool = pool.SearchSharded(ds.queries, kK, kEf);
  ASSERT_TRUE(via_pool.ok());
  for (size_t q = 0; q < ds.queries.size(); ++q) {
    ASSERT_EQ(via_pool.value().results[q].size(), even.value().results[q].size());
    for (size_t j = 0; j < even.value().results[q].size(); ++j) {
      EXPECT_EQ(via_pool.value().results[q][j].id, even.value().results[q][j].id);
    }
  }
}

// Pool telemetry: per-node counters/gauges and per-tenant accounting line up
// with the run stats, and queue-depth gauges return to zero at quiescence.
TEST(ScaleoutTest, PoolMetricsAccountForEveryOp) {
  const Dataset ds = ScaleData();
  const auto ops = ScaleOps(ds, /*read_fraction=*/0.9, /*num_ops=*/120);
  auto built = DhnswEngine::Build(ds.base, ScaleConfig(4));
  ASSERT_TRUE(built.ok());
  DhnswEngine& engine = built.value();

  telemetry::MetricRegistry& reg = telemetry::DefaultRegistry();
  const uint64_t admitted_before = reg.GetCounter("dhnsw_pool_admitted_total")->value();
  const uint64_t node0_before = reg.GetCounter("dhnsw_pool_node0_ops_total")->value();

  ComputePool pool(engine.compute_nodes(), ScalePoolOptions());
  const PoolRunStats stats = pool.Run(ops, PoolRunMode::kDrain);

  EXPECT_EQ(stats.admitted, ops.size());
  EXPECT_EQ(reg.GetCounter("dhnsw_pool_admitted_total")->value() - admitted_before,
            ops.size());
  EXPECT_EQ(reg.GetCounter("dhnsw_pool_node0_ops_total")->value() - node0_before,
            stats.per_node_ops[0]);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(pool.queue_depth(i), 0u);
    EXPECT_EQ(reg.GetGauge("dhnsw_pool_node" + std::to_string(i) + "_queue_depth")
                  ->value(),
              0);
  }
  uint64_t node_sum = 0;
  for (uint64_t n : stats.per_node_ops) node_sum += n;
  EXPECT_EQ(node_sum, stats.admitted);
  size_t tenant_samples = 0;
  for (const auto& rec : stats.per_tenant_latency_us) tenant_samples += rec.count();
  EXPECT_EQ(tenant_samples, stats.admitted);
  size_t want_inserts = 0;
  for (const WorkloadOp& op : ops) {
    if (op.kind == WorkloadOp::Kind::kInsert) ++want_inserts;
  }
  EXPECT_EQ(stats.inserts, want_inserts);
  EXPECT_EQ(stats.searches, ops.size() - want_inserts);
}

// Same-seed drain-mode runs export byte-identical wall-free traces across
// the dispatcher, every pool lane, and every node's sim-stamped spans — the
// scale-out analogue of the pipeline trace contract, byte-compared by CI.
TEST(ScaleoutTest, TraceJsonlByteIdenticalAcrossSameSeedDrainRuns) {
  const Dataset ds = ScaleData();
  const auto ops = ScaleOps(ds, /*read_fraction=*/1.0, /*num_ops=*/64);

  const auto run_traced = [&]() {
    // Byte-identical same-seed traces are a simulator-only contract.
    DhnswConfig traced_config = ScaleConfig(4);
    traced_config.transport = rdma::TransportOptions::Sim();
    auto built = DhnswEngine::Build(ds.base, traced_config);
    EXPECT_TRUE(built.ok());
    DhnswEngine& engine = built.value();
    engine.EnableTracing(1 << 14);

    ComputePoolOptions popt = ScalePoolOptions();
    popt.trace_capacity = 1 << 12;
    ComputePool pool(engine.compute_nodes(), popt);
    const PoolRunStats stats = pool.Run(ops, PoolRunMode::kDrain);
    EXPECT_EQ(stats.completed_ok, ops.size());

    const telemetry::TraceExportOptions wall_free{.include_wall = false};
    std::string text = TraceToJsonl(pool.dispatch_trace(), wall_free);
    for (size_t i = 0; i < pool.size(); ++i) {
      EXPECT_EQ(pool.lane_trace(i).dropped(), 0u);
      text += TraceToJsonl(pool.lane_trace(i), wall_free);
      text += TraceToJsonl(engine.trace(i), wall_free);
    }
    return text;
  };

  const std::string first = run_traced();
  const std::string second = run_traced();
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second) << "same-seed scale-out traces diverged";
  EXPECT_NE(first.find("\"pool.dispatch\""), std::string::npos);
  EXPECT_NE(first.find("\"pool.op\""), std::string::npos);
  EXPECT_NE(first.find("\"stage.load\""), std::string::npos);
  EXPECT_EQ(first.find("wall_ns"), std::string::npos);

  if (const char* dir = std::getenv("DHNSW_TRACE_ARTIFACT_DIR")) {
    const std::string path = std::string(dir) + "/scaleout_trace_seed21.jsonl";
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr) << path;
    ASSERT_EQ(std::fwrite(first.data(), 1, first.size(), f), first.size());
    ASSERT_EQ(std::fclose(f), 0);
  }
}

}  // namespace
}  // namespace dhnsw
