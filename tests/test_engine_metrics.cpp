#include <gtest/gtest.h>

#include "core/engine.h"
#include "dataset/synthetic.h"

namespace dhnsw {
namespace {

DhnswConfig SmallConfig() {
  DhnswConfig config = DhnswConfig::Defaults();
  config.meta.num_representatives = 8;
  config.sub_hnsw = HnswOptions{.M = 8, .ef_construction = 40};
  config.compute.clusters_per_query = 3;
  config.compute.cache_capacity = 3;
  return config;
}

TEST(EngineMetricsTest, TopologyCountsAreRight) {
  Dataset ds = MakeSynthetic({.dim = 8, .num_base = 500, .num_queries = 5,
                              .num_clusters = 4, .seed = 171});
  DhnswConfig config = SmallConfig();
  config.num_compute_nodes = 2;
  config.num_memory_nodes = 2;
  auto engine = DhnswEngine::Build(ds.base, config);
  ASSERT_TRUE(engine.ok());

  const auto m = engine.value().CollectMetrics();
  EXPECT_EQ(m.partitions, 8u);
  EXPECT_EQ(m.compute_nodes, 2u);
  EXPECT_EQ(m.memory_shards, 2u);
  EXPECT_GT(m.region_bytes_total, 0u);
}

TEST(EngineMetricsTest, CountersAdvanceWithTraffic) {
  Dataset ds = MakeSynthetic({.dim = 8, .num_base = 500, .num_queries = 10,
                              .num_clusters = 4, .seed = 172});
  auto engine = DhnswEngine::Build(ds.base, SmallConfig());
  ASSERT_TRUE(engine.ok());

  const auto before = engine.value().CollectMetrics();
  ASSERT_TRUE(engine.value().SearchAll(ds.queries, 5, 32).ok());
  const auto after = engine.value().CollectMetrics();

  EXPECT_GT(after.qp_total.round_trips, before.qp_total.round_trips);
  EXPECT_GT(after.qp_total.bytes_read, before.qp_total.bytes_read);
  EXPECT_GT(after.cache_entries, 0u);

  std::vector<float> v(8, 1.0f);
  ASSERT_TRUE(engine.value().Insert(v).ok());
  const auto with_write = engine.value().CollectMetrics();
  EXPECT_GT(with_write.qp_total.writes, after.qp_total.writes);
  EXPECT_GT(with_write.qp_total.atomics, after.qp_total.atomics);
  EXPECT_GT(with_write.qp_total.bytes_written, after.qp_total.bytes_written);
}

TEST(EngineMetricsTest, DebugStringMentionsKeyFacts) {
  Dataset ds = MakeSynthetic({.dim = 8, .num_base = 400, .num_queries = 3,
                              .num_clusters = 3, .seed = 173});
  auto engine = DhnswEngine::Build(ds.base, SmallConfig());
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine.value().SearchAll(ds.queries, 3, 16).ok());

  const std::string s = engine.value().DebugString();
  EXPECT_NE(s.find("8 partitions"), std::string::npos) << s;
  EXPECT_NE(s.find("round trips"), std::string::npos);
  EXPECT_NE(s.find("cluster cache"), std::string::npos);
}

}  // namespace
}  // namespace dhnsw
