// Proves the allocation-free search contract (index/hnsw.h): after warm-up,
// HnswIndex::Search(query, k, ef, out) performs zero heap allocations.
//
// Mechanism: global operator new/delete are replaced with counting versions
// (gtest and the index itself allocate freely outside the measured window;
// the counter is only compared across the steady-state window).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "common/rng.h"
#include "common/sim_clock.h"
#include "index/hnsw.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace {
std::atomic<uint64_t> g_allocations{0};
}  // namespace

void* operator new(size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }

namespace dhnsw {
namespace {

TEST(SearchAllocTest, SteadyStateSearchDoesNotAllocate) {
  constexpr uint32_t kDim = 32;
  constexpr size_t kCount = 2000;
  HnswOptions options;
  options.M = 8;
  options.ef_construction = 60;
  HnswIndex index(kDim, options);

  Xoshiro256 rng(0xa110cu);
  std::vector<float> v(kDim);
  for (size_t i = 0; i < kCount; ++i) {
    for (float& x : v) x = static_cast<float>(rng.NextDouble());
    index.Add(v);
  }

  std::vector<float> query(kDim);
  std::vector<Scored> out;
  // Warm-up: grows the scratch pool, the pooled containers, and `out`.
  for (int i = 0; i < 10; ++i) {
    for (float& x : query) x = static_cast<float>(rng.NextDouble());
    index.Search(query, 10, 50, &out);
    ASSERT_FALSE(out.empty());
  }

  const uint64_t before = g_allocations.load();
  for (int i = 0; i < 100; ++i) {
    for (float& x : query) x = static_cast<float>(rng.NextDouble());
    index.Search(query, 10, 50, &out);
    ASSERT_EQ(out.size(), 10u);
  }
  const uint64_t after = g_allocations.load();
  EXPECT_EQ(after - before, 0u)
      << (after - before) << " allocations in 100 steady-state searches";
}

// The telemetry record path must keep the same contract: with instruments
// resolved up front and a pre-reserved trace buffer, a fully instrumented
// steady-state search loop (spans + events + counter/gauge/histogram/sharded
// updates around every Search) performs zero heap allocations.
TEST(SearchAllocTest, InstrumentedSearchDoesNotAllocate) {
  constexpr uint32_t kDim = 32;
  HnswOptions options;
  options.M = 8;
  options.ef_construction = 60;
  HnswIndex index(kDim, options);

  Xoshiro256 rng(0x7e1eu);
  std::vector<float> v(kDim);
  for (size_t i = 0; i < 1000; ++i) {
    for (float& x : v) x = static_cast<float>(rng.NextDouble());
    index.Add(v);
  }

  // Control plane: registration may allocate, so it happens before the
  // measured window — exactly how components resolve instruments once.
  telemetry::MetricRegistry& registry = telemetry::DefaultRegistry();
  telemetry::Counter* searches = registry.GetCounter("alloc_test_searches_total");
  telemetry::Gauge* inflight = registry.GetGauge("alloc_test_inflight");
  telemetry::Histogram* latency = registry.GetHistogram("alloc_test_latency_ns");
  telemetry::ShardedCounter* visited = registry.GetShardedCounter("alloc_test_visited");
  SimClock clock;
  telemetry::TraceBuffer buffer(1024);
  telemetry::TraceContext ctx{&buffer, &clock, 1};

  std::vector<float> query(kDim);
  std::vector<Scored> out;
  for (int i = 0; i < 10; ++i) {  // warm-up (scratch pool + thread-local shard)
    for (float& x : query) x = static_cast<float>(rng.NextDouble());
    telemetry::TraceScope span(ctx, "warmup");
    index.Search(query, 10, 50, &out);
    visited->Add(1);
  }

  const uint64_t before = g_allocations.load();
  for (int i = 0; i < 100; ++i) {
    for (float& x : query) x = static_cast<float>(rng.NextDouble());
    inflight->Add(1);
    {
      telemetry::TraceScope span(ctx, "query.sub", static_cast<uint32_t>(i));
      index.Search(query, 10, 50, &out);
      span.set_args(out.size());
    }
    ctx.Event("cache.miss", telemetry::TraceEvent::kNoQuery, static_cast<uint64_t>(i));
    searches->Add(1);
    latency->Record(static_cast<uint64_t>(i) * 37);
    visited->Add(out.size());
    inflight->Add(-1);
    ASSERT_EQ(out.size(), 10u);
  }
  const uint64_t after = g_allocations.load();
  EXPECT_EQ(after - before, 0u)
      << (after - before) << " allocations in 100 instrumented searches";
  EXPECT_EQ(buffer.dropped(), 0u);
  EXPECT_EQ(searches->value(), 100u);
}

TEST(SearchAllocTest, AllocatingOverloadStillWorks) {
  constexpr uint32_t kDim = 8;
  HnswIndex index(kDim, HnswOptions{});
  Xoshiro256 rng(7);
  std::vector<float> v(kDim);
  for (int i = 0; i < 50; ++i) {
    for (float& x : v) x = static_cast<float>(rng.NextDouble());
    index.Add(v);
  }
  const std::vector<Scored> a = index.Search(v, 5, 20);
  std::vector<Scored> b;
  index.Search(v, 5, 20, &b);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].distance, b[i].distance);
  }
}

}  // namespace
}  // namespace dhnsw
