#include "core/partitioner.h"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "dataset/synthetic.h"

namespace dhnsw {
namespace {

struct Built {
  Dataset ds;
  MetaHnsw meta;
  Partitioning parts;
};

Built BuildSmall(uint32_t reps = 30, size_t threads = 1) {
  Dataset ds = MakeSynthetic({.dim = 8, .num_base = 1500, .num_queries = 10,
                              .num_clusters = 10, .seed = 21});
  MetaHnswOptions mopts;
  mopts.num_representatives = reps;
  auto meta = MetaHnsw::Build(ds.base, mopts);
  EXPECT_TRUE(meta.ok());
  PartitionerOptions popts;
  popts.sub_hnsw = HnswOptions{.M = 8, .ef_construction = 40};
  popts.num_threads = threads;
  auto parts = PartitionDataset(ds.base, meta.value(), popts);
  EXPECT_TRUE(parts.ok());
  return Built{std::move(ds), std::move(meta).value(), std::move(parts).value()};
}

TEST(PartitionerTest, EveryVectorAssignedExactlyOnce) {
  Built b = BuildSmall();
  EXPECT_EQ(b.parts.assignment.size(), b.ds.base.size());

  // Sum of cluster sizes == base size, and global ids partition the range.
  size_t total = 0;
  std::set<uint32_t> seen;
  for (const Cluster& c : b.parts.clusters) {
    total += c.global_ids.size();
    for (uint32_t gid : c.global_ids) {
      EXPECT_TRUE(seen.insert(gid).second) << "duplicate gid " << gid;
      EXPECT_LT(gid, b.ds.base.size());
    }
  }
  EXPECT_EQ(total, b.ds.base.size());
}

TEST(PartitionerTest, ClusterIdsAlignWithMetaPartitions) {
  Built b = BuildSmall();
  ASSERT_EQ(b.parts.clusters.size(), b.meta.num_partitions());
  for (uint32_t p = 0; p < b.parts.clusters.size(); ++p) {
    EXPECT_EQ(b.parts.clusters[p].partition_id, p);
  }
}

TEST(PartitionerTest, MembersMatchAssignment) {
  Built b = BuildSmall();
  for (const Cluster& c : b.parts.clusters) {
    for (uint32_t gid : c.global_ids) {
      EXPECT_EQ(b.parts.assignment[gid], c.partition_id);
    }
  }
}

TEST(PartitionerTest, RepresentativeLandsInOwnPartition) {
  Built b = BuildSmall();
  for (uint32_t p = 0; p < b.meta.num_partitions(); ++p) {
    const uint32_t rep_gid = b.meta.representative_global_id(p);
    EXPECT_EQ(b.parts.assignment[rep_gid], p)
        << "representative of partition " << p << " strayed";
  }
}

TEST(PartitionerTest, ClusterVectorsMatchBaseRows) {
  Built b = BuildSmall();
  const Cluster& c = b.parts.clusters[0];
  for (uint32_t local = 0; local < c.index.size(); ++local) {
    const auto stored = c.index.vector(local);
    const auto base_row = b.ds.base[c.global_ids[local]];
    for (uint32_t d = 0; d < 8; ++d) ASSERT_FLOAT_EQ(stored[d], base_row[d]);
  }
}

TEST(PartitionerTest, SubHnswsAreValid) {
  Built b = BuildSmall();
  for (const Cluster& c : b.parts.clusters) {
    EXPECT_TRUE(c.index.Validate().ok()) << "partition " << c.partition_id;
  }
}

TEST(PartitionerTest, ParallelBuildMatchesSerial) {
  Built serial = BuildSmall(30, 1);
  Built parallel = BuildSmall(30, 4);
  EXPECT_EQ(serial.parts.assignment, parallel.parts.assignment);
  ASSERT_EQ(serial.parts.clusters.size(), parallel.parts.clusters.size());
  for (size_t p = 0; p < serial.parts.clusters.size(); ++p) {
    EXPECT_EQ(serial.parts.clusters[p].global_ids, parallel.parts.clusters[p].global_ids);
    EXPECT_EQ(serial.parts.clusters[p].index.size(), parallel.parts.clusters[p].index.size());
  }
}

TEST(PartitionerTest, DimMismatchFails) {
  Built b = BuildSmall();
  VectorSet wrong(16);
  wrong.Append(std::vector<float>(16, 0.0f));
  PartitionerOptions popts;
  EXPECT_FALSE(PartitionDataset(wrong, b.meta, popts).ok());
}

TEST(PartitionerTest, EmptyBaseFails) {
  Built b = BuildSmall();
  VectorSet empty(8);
  PartitionerOptions popts;
  EXPECT_FALSE(PartitionDataset(empty, b.meta, popts).ok());
}

TEST(PartitionerTest, AssignmentIsNearestRepresentativeMostly) {
  Built b = BuildSmall(40);
  // Compare against exact nearest representative for a sample.
  int agree = 0;
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    float best_d = 1e30f;
    uint32_t best_p = 0;
    for (uint32_t p = 0; p < b.meta.num_partitions(); ++p) {
      const float d = L2Sq(b.meta.index().vector(p), b.ds.base[i]);
      if (d < best_d) {
        best_d = d;
        best_p = p;
      }
    }
    agree += (b.parts.assignment[i] == best_p);
  }
  EXPECT_GT(agree, n * 9 / 10);
}

}  // namespace
}  // namespace dhnsw
