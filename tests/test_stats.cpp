#include "common/stats.h"

#include <gtest/gtest.h>

#include "common/sim_clock.h"
#include "common/timer.h"

namespace dhnsw {
namespace {

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatTest, MatchesClosedForm) {
  RunningStat s;
  const double xs[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (double x : xs) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  // Sample variance of this classic set is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatTest, SingleSample) {
  RunningStat s;
  s.Add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStatTest, ResetClears) {
  RunningStat s;
  s.Add(1.0);
  s.Reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(LatencyRecorderTest, PercentilesOnKnownData) {
  LatencyRecorder rec;
  for (int i = 1; i <= 100; ++i) rec.Add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(rec.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(rec.percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(rec.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(rec.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(rec.min(), 1.0);
  EXPECT_DOUBLE_EQ(rec.max(), 100.0);
  EXPECT_DOUBLE_EQ(rec.mean(), 50.5);
}

TEST(LatencyRecorderTest, EmptyIsZero) {
  LatencyRecorder rec;
  EXPECT_DOUBLE_EQ(rec.percentile(99), 0.0);
  EXPECT_DOUBLE_EQ(rec.mean(), 0.0);
}

TEST(LatencyRecorderTest, UnsortedInsertOrder) {
  LatencyRecorder rec;
  rec.Add(5.0);
  rec.Add(1.0);
  rec.Add(3.0);
  EXPECT_DOUBLE_EQ(rec.min(), 1.0);
  EXPECT_DOUBLE_EQ(rec.percentile(50), 3.0);
  rec.Add(0.5);  // adding after a sorted query must still work
  EXPECT_DOUBLE_EQ(rec.min(), 0.5);
}

// Regression lock on the documented empty contract (stats.h): every accessor
// of an empty RunningStat / LatencyRecorder returns 0.0 — no NaN, no UB —
// so callers may print never-filled recorders unguarded.
TEST(RunningStatTest, EmptyContractCoversEveryAccessor) {
  const RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
  EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(LatencyRecorderTest, EmptyContractCoversEveryAccessor) {
  const LatencyRecorder rec;
  EXPECT_EQ(rec.count(), 0u);
  EXPECT_DOUBLE_EQ(rec.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rec.min(), 0.0);
  EXPECT_DOUBLE_EQ(rec.max(), 0.0);
  for (double p : {0.0, 50.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(rec.percentile(p), 0.0) << p;
  }
}

TEST(RunningStatTest, MergeMatchesSingleStream) {
  // Split one stream across three stats, merge, and compare against the
  // stat that saw everything — count/mean/sum/min/max exact, variance tight.
  const double xs[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0, -1.0, 12.5, 0.25};
  RunningStat whole;
  RunningStat parts[3];
  int i = 0;
  for (double x : xs) {
    whole.Add(x);
    parts[i++ % 3].Add(x);
  }
  RunningStat merged;
  for (const RunningStat& p : parts) merged.Merge(p);

  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_DOUBLE_EQ(merged.sum(), whole.sum());
  EXPECT_DOUBLE_EQ(merged.min(), whole.min());
  EXPECT_DOUBLE_EQ(merged.max(), whole.max());
  EXPECT_NEAR(merged.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(merged.variance(), whole.variance(), 1e-12);
}

TEST(RunningStatTest, MergeWithEmptySides) {
  RunningStat filled;
  filled.Add(3.0);
  filled.Add(5.0);

  RunningStat target;
  target.Merge(filled);  // into empty: copies
  EXPECT_EQ(target.count(), 2u);
  EXPECT_DOUBLE_EQ(target.mean(), 4.0);

  const RunningStat empty;
  target.Merge(empty);  // merging empty: no-op
  EXPECT_EQ(target.count(), 2u);
  EXPECT_DOUBLE_EQ(target.mean(), 4.0);
}

TEST(LatencyRecorderTest, MergePreservesPercentiles) {
  // Two shards each sorted (percentile queried), merged without re-sorting;
  // percentiles must equal those of a recorder that saw all samples.
  LatencyRecorder a, b, whole;
  for (int i = 1; i <= 100; ++i) {
    ((i % 2 == 0) ? a : b).Add(static_cast<double>(i));
    whole.Add(static_cast<double>(i));
  }
  EXPECT_GT(a.p50(), 0.0);  // forces both sides sorted before the merge
  EXPECT_GT(b.p50(), 0.0);

  LatencyRecorder merged;
  merged.Merge(a);
  merged.Merge(b);
  ASSERT_EQ(merged.count(), 100u);
  for (double p : {0.0, 25.0, 50.0, 90.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(merged.percentile(p), whole.percentile(p)) << p;
  }
  EXPECT_DOUBLE_EQ(merged.min(), 1.0);
  EXPECT_DOUBLE_EQ(merged.max(), 100.0);
}

TEST(LatencyRecorderTest, MergeUnsortedSidesStillCorrect) {
  LatencyRecorder a, b;
  a.Add(5.0);
  a.Add(1.0);  // never queried: stays unsorted
  b.Add(4.0);
  b.Add(2.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.percentile(50), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 5.0);
}

TEST(FormatRowTest, PadsCells) {
  const std::string row = FormatRow({"a", "bb"}, {3, 4});
  EXPECT_EQ(row, "  a    bb");
}

TEST(SimClockTest, AdvanceAccumulates) {
  SimClock clock;
  EXPECT_EQ(clock.now_ns(), 0u);
  clock.Advance(100);
  clock.Advance(250);
  EXPECT_EQ(clock.now_ns(), 350u);
  clock.Reset();
  EXPECT_EQ(clock.now_ns(), 0u);
}

TEST(SimClockTest, SpanMeasuresDelta) {
  SimClock clock;
  clock.Advance(10);
  SimSpan span(clock);
  clock.Advance(42);
  EXPECT_EQ(span.elapsed_ns(), 42u);
}

TEST(WallTimerTest, MeasuresNonNegativeMonotonicTime) {
  WallTimer t;
  const uint64_t a = t.elapsed_ns();
  const uint64_t b = t.elapsed_ns();
  EXPECT_GE(b, a);
  t.Restart();
  EXPECT_GE(t.elapsed_us(), 0.0);
}

TEST(TimeAccumulatorTest, MeanOverSpans) {
  TimeAccumulator acc;
  acc.Add(1000);
  acc.Add(3000);
  EXPECT_EQ(acc.count(), 2u);
  EXPECT_EQ(acc.total_ns(), 4000u);
  EXPECT_DOUBLE_EQ(acc.mean_us(), 2.0);
  acc.Reset();
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean_us(), 0.0);
}

}  // namespace
}  // namespace dhnsw
