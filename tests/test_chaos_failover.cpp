// Failover chaos acceptance (ISSUE 4 / S3): with a replicated memory pool
// (factor 2), killing the primary memory node in the middle of a query batch
// must
//   (a) yield complete, byte-correct results for EVERY query in the batch —
//       zero wrong results, recall unchanged vs the fault-free oracle;
//   (b) cost only bounded extra latency over the healthy run (detection
//       reports + backoff + one promotion, not an unbounded stall);
//   (c) replay byte-identically from the seed: the same kill schedule
//       serializes the same wall-free trace JSONL on every run (this is the
//       artifact the failover-chaos CI job archives and byte-compares).
// Plus: online re-replication restores the factor while search keeps being
// served, and the restored copy is a real serving replica (it survives a
// second primary kill). When every replica of a shard is gone, only
// allow_partial degrades queries — matching the router policy.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "chaos_harness.h"
#include "common/timer.h"
#include "core/compute_pool.h"
#include "core/workload_gen.h"
#include "telemetry/trace.h"

namespace dhnsw {
namespace {

ChaosHarness::Config ReplicatedConfig() {
  ChaosHarness::Config config;
  config.replication_factor = 2;
  return config;
}

/// Lets a couple of loads through before the crash — the batch is genuinely
/// mid-flight when the primary dies.
constexpr uint64_t kKillSkipFirst = 2;

/// Outlasts detection: the kill rule's per-QP skip window absorbs the first
/// confirm probes, then two more failed reports (two misses each) walk the
/// primary alive -> suspected -> dead. ~skip + 3 rounds; 12 is generous.
RetryPolicy FailoverRetry() {
  RetryPolicy retry = RetryPolicy::Default();
  retry.max_attempts = 12;
  return retry;
}

TEST(ChaosFailoverTest, KillPrimaryMidBatchConvergesToOracle) {
  ChaosHarness h(ReplicatedConfig());
  ReplicaManager* manager = h.engine().replication();
  ASSERT_NE(manager, nullptr);
  ASSERT_EQ(manager->AliveCount(0), 2u);
  ASSERT_EQ(manager->SlotEpoch(0), 1u);

  // Strict mode: any query that lost a routed cluster would fail the batch.
  auto run = h.RunUnderPlan(h.MakeKillPrimaryPlan(kKillSkipFirst), FailoverRetry(),
                            /*partial_results=*/false);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  const BatchResult& result = run.value();
  EXPECT_TRUE(SameResults(h.baseline(), result)) << "failover changed results";
  for (size_t qi = 0; qi < result.statuses.size(); ++qi) {
    EXPECT_TRUE(result.statuses[qi].ok()) << "query " << qi;
  }

  // The batch itself drove the failover: primary dead + revoked, secondary
  // promoted, epoch bumped, and the compute instance observed it.
  EXPECT_EQ(manager->health(0, 0), ReplicaHealth::kDead);
  EXPECT_EQ(manager->PrimaryRoute(0).replica, 1u);
  EXPECT_EQ(manager->SlotEpoch(0), 2u);
  EXPECT_GE(result.breakdown.failovers, 1u);
  EXPECT_GE(result.breakdown.retries, 1u);
}

TEST(ChaosFailoverTest, FailoverLatencyIsBounded) {
  // The bound below reasons about deterministic NicModel charges and
  // SimClock backoff; on a real socket the charge is measured wall time,
  // which is noisy enough that "killed > healthy" need not hold. The
  // latency *model* is a simulator contract, so pin sim here — the
  // content-oracle failover tests above run on whatever DHNSW_TRANSPORT
  // selects.
  ChaosHarness::Config config = ReplicatedConfig();
  config.transport = rdma::TransportOptions::Sim();
  ChaosHarness h(config);
  const RetryPolicy retry = FailoverRetry();

  const uint64_t t0 = h.engine().compute(0).clock().now_ns();
  auto healthy = h.RunUnderPlan(rdma::FaultPlan(0), retry, false);
  ASSERT_TRUE(healthy.ok()) << healthy.status().ToString();
  const uint64_t healthy_ns = h.engine().compute(0).clock().now_ns() - t0;

  const uint64_t t1 = h.engine().compute(0).clock().now_ns();
  auto killed = h.RunUnderPlan(h.MakeKillPrimaryPlan(kKillSkipFirst), retry, false);
  ASSERT_TRUE(killed.ok()) << killed.status().ToString();
  const uint64_t failover_ns = h.engine().compute(0).clock().now_ns() - t1;

  ASSERT_TRUE(SameResults(h.baseline(), killed.value()));
  EXPECT_GT(failover_ns, healthy_ns) << "the kill schedule never cost anything?";
  // Detection adds a handful of failed rounds plus exponential backoff
  // (20us * 2^k, capped at 5ms) before the promoted replica serves the
  // retried loads. Budget 3x the healthy batch plus the worst-case backoff
  // sum for the rounds the retry policy allows — deterministic, so this
  // bound either always holds or never does.
  uint64_t backoff_budget = 0;
  for (uint32_t k = 1; k < retry.max_attempts; ++k) backoff_budget += retry.BackoffNs(k);
  EXPECT_LT(failover_ns, 3 * healthy_ns + backoff_budget);
}

TEST(ChaosFailoverTest, TraceJsonlIsByteIdenticalAcrossSameSeedKillRuns) {
  // A failover run's span log — compute side AND the replica manager's
  // control-plane events — must be a pure function of the seeds, in the
  // wall-free export form. CI archives exactly this serialization.
  const auto run_traced = [] {
    // Byte-compared wall-free traces are a simulator contract: real-socket
    // runs retry/timeout on wall time, which perturbs span counts.
    ChaosHarness::Config config = ReplicatedConfig();
    config.transport = rdma::TransportOptions::Sim();
    ChaosHarness h(config);
    h.engine().EnableTracing(1 << 16);
    auto run = h.RunUnderPlan(h.MakeKillPrimaryPlan(kKillSkipFirst), FailoverRetry(), false);
    EXPECT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_TRUE(SameResults(h.baseline(), run.value()));
    const telemetry::TraceExportOptions wall_free{.include_wall = false};
    return TraceToJsonl(h.engine().compute(0).trace(), wall_free) +
           TraceToJsonl(h.engine().replication()->trace(), wall_free);
  };

  const std::string first = run_traced();
  const std::string second = run_traced();
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second) << "same-seed failover traces diverged";

  // The trace narrates the failover end to end: the compute instance's
  // observation and the manager's suspect -> death -> promotion sequence.
  EXPECT_NE(first.find("replication.failover_observed"), std::string::npos);
  EXPECT_NE(first.find("replication.suspect"), std::string::npos);
  EXPECT_NE(first.find("replication.death"), std::string::npos);
  EXPECT_NE(first.find("replication.failover"), std::string::npos);
  EXPECT_EQ(first.find("wall_ns"), std::string::npos);

  // CI artifact hook: archive the canonical failover trace when set.
  if (const char* dir = std::getenv("DHNSW_TRACE_ARTIFACT_DIR")) {
    const std::string path = std::string(dir) + "/failover_trace.jsonl";
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr) << path;
    ASSERT_EQ(std::fwrite(first.data(), 1, first.size(), f), first.size());
    ASSERT_EQ(std::fclose(f), 0);
  }
}

TEST(ChaosFailoverTest, RereplicationRestoresFactorOnlineAndCopyServes) {
  ChaosHarness h(ReplicatedConfig());
  ReplicaManager* manager = h.engine().replication();
  ASSERT_NE(manager, nullptr);

  // Round 1: kill the original primary; the batch converges on replica 1.
  auto first = h.RunUnderPlan(h.MakeKillPrimaryPlan(kKillSkipFirst), FailoverRetry(), false);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(SameResults(h.baseline(), first.value()));
  ASSERT_EQ(manager->AliveCount(0), 1u);

  // Restore the factor online: stream onto a fresh node, admit at epoch 3.
  ASSERT_TRUE(manager->RereplicateAll().ok());
  EXPECT_EQ(manager->AliveCount(0), 2u);
  EXPECT_EQ(manager->SlotEpoch(0), 3u);

  // Serving continued: the admission epoch bump only forces a route refresh.
  auto after = h.RunUnderPlan(rdma::FaultPlan(0), FailoverRetry(), false);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_TRUE(SameResults(h.baseline(), after.value()));

  // Round 2: kill the promoted primary too. Only the streamed copy remains —
  // correct results now prove the re-replicated bytes are a real replica.
  auto second = h.RunUnderPlan(h.MakeKillPrimaryPlan(kKillSkipFirst), FailoverRetry(), false);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_TRUE(SameResults(h.baseline(), second.value()));
  EXPECT_EQ(manager->AliveCount(0), 1u);
  EXPECT_EQ(manager->SlotEpoch(0), 4u);
  EXPECT_EQ(manager->PrimaryRoute(0).replica, 2u);
}

// Chaos UNDER LOAD (ISSUE 6): kill slot 0's primary while a 4-node compute
// pool serves an open-loop mixed schedule at a target rate far above what
// the pool can drain. Required behaviour while degraded:
//   - every op reaches a terminal outcome: OK, an explicit error (nack), or
//     an admission-control drop — never a hang, never a lost op;
//   - no lost acks: every insert the pool acked OK is retrievable at
//     quiescence from the promoted replica;
//   - the overload is shed by ADMISSION (kCapacity drops at dispatch), and
//   - the whole episode completes in bounded wall time with the failover
//     actually observed (epoch bumped, primary dead).
TEST(ChaosFailoverTest, KillPrimaryUnderOpenLoopLoadShedsButNeverLosesAcks) {
  ChaosHarness::Config config = ReplicatedConfig();
  config.num_compute_nodes = 4;
  ChaosHarness h(config);
  ReplicaManager* manager = h.engine().replication();
  ASSERT_NE(manager, nullptr);
  for (size_t i = 0; i < 4; ++i) {
    h.engine().compute(i).mutable_options()->retry = FailoverRetry();
  }

  WorkloadGenOptions wopt;
  wopt.seed = 43;
  wopt.num_ops = 400;
  wopt.target_qps = 500'000.0;  // >> serviceable: forces queue pressure
  wopt.read_fraction = 0.8;
  wopt.num_topics = config.num_clusters;
  wopt.num_tenants = 2;
  wopt.first_insert_id = static_cast<uint32_t>(config.num_base);
  auto ops = WorkloadGenerator(h.dataset().base, wopt).Generate();

  ComputePoolOptions popt;
  popt.dispatch = DispatchPolicy::kLeastLoaded;
  popt.k = config.k;
  popt.ef_search = config.ef_search;
  popt.num_tenants = 2;
  popt.admission.node_queue_capacity = 8;
  popt.admission.tenant_inflight_limit = 48;

  ASSERT_TRUE(h.engine().fabric().ArmFaults(h.MakeKillPrimaryPlan(/*skip_first=*/6)).ok());
  std::vector<OpOutcome> outcomes;
  PoolRunStats stats;
  {
    ComputePool pool(h.engine().compute_nodes(), popt);
    WallTimer wall;
    stats = pool.Run(ops, PoolRunMode::kPaced, &outcomes);
    EXPECT_LT(wall.elapsed_ns(), 60ull * 1'000'000'000) << "degraded pool stalled";
  }
  h.engine().fabric().ClearFaults();

  // Accounting closes: terminal fate for every op, no lost ops.
  EXPECT_EQ(stats.submitted, ops.size());
  EXPECT_EQ(stats.submitted, stats.admitted + stats.dropped());
  EXPECT_EQ(stats.admitted, stats.completed_ok + stats.failed);
  for (size_t i = 0; i < outcomes.size(); ++i) {
    EXPECT_NE(outcomes[i].status.message(), "op never completed") << "op " << i;
    if (outcomes[i].dropped) {
      EXPECT_EQ(outcomes[i].status.code(), StatusCode::kCapacity) << "op " << i;
    }
  }
  // The overload was shed at admission, not absorbed as unbounded queueing.
  EXPECT_GT(stats.dropped(), 0u);
  EXPECT_GT(stats.completed_ok, 0u);

  // The traffic drove the failover mid-run.
  EXPECT_EQ(manager->health(0, 0), ReplicaHealth::kDead);
  EXPECT_GE(manager->SlotEpoch(0), 2u);

  // No lost acks: every OK-acked insert is served from the promoted replica.
  h.engine().compute(0).InvalidateCache();
  size_t acked = 0;
  for (size_t i = 0; i < outcomes.size(); ++i) {
    if (ops[i].kind != WorkloadOp::Kind::kInsert) continue;
    if (outcomes[i].dropped || !outcomes[i].status.ok()) continue;
    ++acked;
    VectorSet one(h.engine().dim());
    one.Append(ops[i].vector);
    auto found = h.engine().compute(0).SearchBatch(one, 0, 1, config.k,
                                                   config.ef_search);
    ASSERT_TRUE(found.ok()) << "verification search failed for op " << i;
    bool present = false;
    for (const Scored& s : found.value().results[0]) {
      present = present || s.id == ops[i].global_id;
    }
    EXPECT_TRUE(present) << "acked insert op " << i << " (gid " << ops[i].global_id
                         << ") vanished after failover";
  }
  EXPECT_GT(acked, 0u) << "schedule never acked an insert; test proves nothing";

  // Post-episode the deployment still serves reads cleanly.
  auto after = h.engine().SearchAll(h.dataset().queries, config.k, config.ef_search);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  for (const Status& st : after.value().statuses) EXPECT_TRUE(st.ok());
}

TEST(ChaosFailoverTest, AllReplicasDeadDegradesOnlyUnderAllowPartial) {
  ChaosHarness h(ReplicatedConfig());
  ReplicaManager* manager = h.engine().replication();
  ASSERT_NE(manager, nullptr);

  // Kill the whole replica set of slot 0 at once (skip_first 0: immediate).
  rdma::FaultPlan wipeout(99);
  for (const ReplicaManager::Route& route : manager->WriteRoutes(0)) {
    rdma::FaultRule rule;
    rule.kind = rdma::FaultKind::kUnreachable;
    rule.rkey = route.rkey;
    wipeout.Add(rule);
  }

  // Compute level: with the metadata slot's whole replica set gone there is
  // nothing partial to serve — the batch fails in both modes.
  auto strict = h.RunUnderPlan(wipeout, FailoverRetry(), /*partial_results=*/false);
  EXPECT_FALSE(strict.ok());
  auto compute_partial = h.RunUnderPlan(wipeout, FailoverRetry(), /*partial_results=*/true);
  EXPECT_FALSE(compute_partial.ok());

  // Router level: degradation for a fully-dead shard is allow_partial's job.
  // Without it the request fails; with it every query of the wiped shard
  // comes back empty with the error attached instead of wrong data. (Both
  // replicas are dead + revoked by now, so no re-arming is needed.)
  auto router_strict = h.engine().SearchSharded(h.dataset().queries, h.config().k,
                                                h.config().ef_search, RouterOptions{});
  EXPECT_FALSE(router_strict.ok());
  auto degraded = h.engine().SearchSharded(h.dataset().queries, h.config().k,
                                           h.config().ef_search,
                                           RouterOptions{.allow_partial = true});
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  for (size_t qi = 0; qi < degraded.value().statuses.size(); ++qi) {
    EXPECT_FALSE(degraded.value().statuses[qi].ok()) << "query " << qi;
    EXPECT_TRUE(degraded.value().results[qi].empty()) << "query " << qi;
  }
}

}  // namespace
}  // namespace dhnsw
