// Oracle equivalence: d-HNSW's answer decomposes into (a) routing loss —
// the true neighbors living outside the b routed partitions — and (b) graph
// loss — the sub-HNSW search missing vectors inside them. With a generous
// efSearch, (b) must vanish: for every query, the engine's top-k must equal
// the EXACT top-k over the union of its routed partitions.
//
// This is the strongest end-to-end functional property of the system: it
// pins the entire pipeline (meta routing, layout, RDMA loads, blob decode,
// per-cluster search, cross-cluster merge) against a brute-force oracle.
#include <gtest/gtest.h>

#include <set>

#include "core/engine.h"
#include "dataset/synthetic.h"
#include "index/flat_index.h"

namespace dhnsw {
namespace {

class OracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OracleTest, TopKEqualsExactSearchOverRoutedPartitions) {
  Dataset ds = MakeSynthetic({.dim = 12, .num_base = 2500, .num_queries = 30,
                              .num_clusters = 10, .seed = GetParam()});

  DhnswConfig config = DhnswConfig::Defaults();
  config.meta.num_representatives = 25;
  config.sub_hnsw = HnswOptions{.M = 12, .ef_construction = 100};
  config.compute.clusters_per_query = 4;
  config.compute.cache_capacity = 8;
  auto engine = DhnswEngine::Build(ds.base, config);
  ASSERT_TRUE(engine.ok());
  ComputeNode& node = engine.value().compute(0);

  // Partition assignment exactly as the build pipeline derived it.
  std::vector<uint32_t> assignment(ds.base.size());
  for (size_t i = 0; i < ds.base.size(); ++i) {
    assignment[i] = node.meta().RouteOne(ds.base[i]);
  }

  constexpr size_t kK = 10;
  // Generous ef: sub-HNSW searches become exhaustive on partition scale.
  auto result = node.SearchAll(ds.queries, kK, /*ef_search=*/500);
  ASSERT_TRUE(result.ok());

  for (size_t qi = 0; qi < ds.queries.size(); ++qi) {
    const std::vector<uint32_t> routed =
        node.meta().RouteMany(ds.queries[qi], config.compute.clusters_per_query);
    const std::set<uint32_t> routed_set(routed.begin(), routed.end());

    // Oracle: exact scan over members of the routed partitions.
    TopKHeap oracle(kK);
    for (uint32_t gid = 0; gid < ds.base.size(); ++gid) {
      if (routed_set.count(assignment[gid])) {
        oracle.Push(L2Sq(ds.base[gid], ds.queries[qi]), gid);
      }
    }
    const std::vector<Scored> want = oracle.TakeSorted();
    const std::vector<Scored>& got = result.value().results[qi];

    ASSERT_EQ(got.size(), want.size()) << "query " << qi;
    for (size_t j = 0; j < want.size(); ++j) {
      EXPECT_EQ(got[j].id, want[j].id) << "query " << qi << " rank " << j;
      EXPECT_FLOAT_EQ(got[j].distance, want[j].distance) << "query " << qi;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleTest, ::testing::Values(11, 22, 33));

TEST(OracleTest, HoldsAfterInsertsToo) {
  Dataset ds = MakeSynthetic({.dim = 8, .num_base = 1200, .num_queries = 15,
                              .num_clusters = 6, .seed = 44});
  DhnswConfig config = DhnswConfig::Defaults();
  config.meta.num_representatives = 12;
  config.sub_hnsw = HnswOptions{.M = 8, .ef_construction = 60};
  config.compute.clusters_per_query = 3;
  config.compute.cache_capacity = 5;
  config.layout.overflow_bytes_per_group = 1 << 16;
  auto engine = DhnswEngine::Build(ds.base, config);
  ASSERT_TRUE(engine.ok());
  ComputeNode& node = engine.value().compute(0);

  // Insert 60 vectors; track their assignment like the base ones.
  std::vector<std::vector<float>> all_vectors;
  std::vector<uint32_t> assignment;
  for (size_t i = 0; i < ds.base.size(); ++i) {
    all_vectors.emplace_back(ds.base[i].begin(), ds.base[i].end());
    assignment.push_back(node.meta().RouteOne(ds.base[i]));
  }
  Xoshiro256 rng(45);
  for (int i = 0; i < 60; ++i) {
    std::vector<float> v = all_vectors[rng.NextBounded(ds.base.size())];
    v[1] += 0.5f;
    auto id = engine.value().Insert(v);
    ASSERT_TRUE(id.ok());
    ASSERT_EQ(id.value(), all_vectors.size());
    assignment.push_back(node.meta().RouteOne(v));
    all_vectors.push_back(std::move(v));
  }

  constexpr size_t kK = 5;
  auto result = node.SearchAll(ds.queries, kK, 500);
  ASSERT_TRUE(result.ok());
  for (size_t qi = 0; qi < ds.queries.size(); ++qi) {
    const auto routed = node.meta().RouteMany(ds.queries[qi], 3);
    const std::set<uint32_t> routed_set(routed.begin(), routed.end());
    TopKHeap oracle(kK);
    for (uint32_t gid = 0; gid < all_vectors.size(); ++gid) {
      if (routed_set.count(assignment[gid])) {
        oracle.Push(L2Sq(all_vectors[gid], ds.queries[qi]), gid);
      }
    }
    const auto want = oracle.TakeSorted();
    const auto& got = result.value().results[qi];
    ASSERT_EQ(got.size(), want.size());
    for (size_t j = 0; j < want.size(); ++j) {
      EXPECT_EQ(got[j].id, want[j].id) << "query " << qi << " rank " << j;
    }
  }
}

}  // namespace
}  // namespace dhnsw
