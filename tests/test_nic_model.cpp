#include "rdma/nic_model.h"

#include <gtest/gtest.h>

namespace dhnsw::rdma {
namespace {

NicModelConfig Default() { return NicModelConfig{}; }

TEST(NicModelTest, EmptyBatchCostsNothing) {
  EXPECT_EQ(CostOfBatch(Default(), {}), 0u);
}

TEST(NicModelTest, SingleSmallReadIsBaseRoundTrip) {
  const NicModelConfig config = Default();
  BatchShape shape{.num_wrs = 1, .payload_bytes = 0, .num_atomics = 0};
  EXPECT_EQ(CostOfBatch(config, shape), config.base_round_trip_ns);
}

TEST(NicModelTest, PayloadTimeMatchesBandwidth) {
  NicModelConfig config = Default();
  config.bandwidth_gbps = 100.0;
  // 100 Gb/s == 12.5 GB/s -> 1 MiB takes ~83.886 us.
  const uint64_t one_mib = 1 << 20;
  EXPECT_EQ(config.PayloadNs(one_mib), static_cast<uint64_t>(one_mib * 8.0 / 100.0));
}

TEST(NicModelTest, CostMonotonicInBytes) {
  const NicModelConfig config = Default();
  uint64_t prev = 0;
  for (uint64_t bytes : {0ull, 64ull, 4096ull, 1ull << 20, 16ull << 20}) {
    const uint64_t cost = CostOfBatch(config, {1, bytes, 0});
    EXPECT_GE(cost, prev);
    prev = cost;
  }
}

TEST(NicModelTest, CostMonotonicInWrs) {
  const NicModelConfig config = Default();
  uint64_t prev = 0;
  for (uint32_t wrs = 1; wrs <= 64; wrs *= 2) {
    const uint64_t cost = CostOfBatch(config, {wrs, 4096, 0});
    EXPECT_GT(cost, prev) << wrs;
    prev = cost;
  }
}

TEST(NicModelTest, DoorbellBatchBeatsIndividualRoundTrips) {
  // The whole point of doorbell batching (paper §3.2): N WRs in one ring are
  // much cheaper than N separate rings, because the base round trip is paid
  // once instead of N times.
  const NicModelConfig config = Default();
  const uint32_t n = 8;
  const uint64_t per_wr_bytes = 64 * 1024;
  const uint64_t batched = CostOfBatch(config, {n, n * per_wr_bytes, 0});
  uint64_t individual = 0;
  for (uint32_t i = 0; i < n; ++i) {
    individual += CostOfBatch(config, {1, per_wr_bytes, 0});
  }
  EXPECT_LT(batched, individual);
  // The saving is (n-1) base round trips minus (n-1) DMA fetches, up to
  // integer truncation of the per-ring payload term (< 1 ns per ring).
  const double expected =
      static_cast<double>((n - 1) * (config.base_round_trip_ns - config.per_wr_dma_ns));
  EXPECT_NEAR(static_cast<double>(individual - batched), expected, static_cast<double>(n));
}

TEST(NicModelTest, SaturationPenaltyBeyondLinearLimit) {
  NicModelConfig config = Default();
  config.doorbell_linear_limit = 4;
  const uint64_t at_limit = CostOfBatch(config, {4, 0, 0});
  const uint64_t above = CostOfBatch(config, {5, 0, 0});
  EXPECT_EQ(above - at_limit, config.per_wr_dma_ns + config.doorbell_saturated_ns);
}

TEST(NicModelTest, AtomicsCostExtra) {
  const NicModelConfig config = Default();
  const uint64_t plain = CostOfBatch(config, {1, 8, 0});
  const uint64_t atomic = CostOfBatch(config, {1, 8, 1});
  EXPECT_EQ(atomic - plain, config.atomic_extra_ns);
}

TEST(NicModelTest, ZeroBandwidthMeansNoPayloadTerm) {
  NicModelConfig config = Default();
  config.bandwidth_gbps = 0.0;
  EXPECT_EQ(config.PayloadNs(1 << 20), 0u);
}

TEST(NicModelTest, HigherBandwidthNeverSlower) {
  NicModelConfig slow = Default();
  slow.bandwidth_gbps = 25.0;
  NicModelConfig fast = Default();
  fast.bandwidth_gbps = 200.0;
  const BatchShape shape{4, 1 << 22, 0};
  EXPECT_GE(CostOfBatch(slow, shape), CostOfBatch(fast, shape));
}

}  // namespace
}  // namespace dhnsw::rdma
