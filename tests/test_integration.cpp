// Cross-module integration tests: the full d-HNSW pipeline at a moderately
// realistic (but CI-friendly) scale, checking the paper's qualitative claims
// end to end.
#include <gtest/gtest.h>

#include "core/compute_node.h"
#include "core/engine.h"
#include "dataset/ground_truth.h"
#include "dataset/synthetic.h"

namespace dhnsw {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ds_ = new Dataset(MakeSiftLike(6000, 60, /*seed=*/81));
    ComputeGroundTruth(ds_, 10);

    DhnswConfig config = DhnswConfig::Defaults();
    // The suite compares modeled network_us across modes (doorbell vs not,
    // warm vs cold cache) — deterministic only under the NicModel, so pin
    // the sim backend; measured loopback wall time is too noisy to order.
    config.transport = rdma::TransportOptions::Sim();
    config.meta.num_representatives = 50;
    config.sub_hnsw = HnswOptions{.M = 12, .ef_construction = 80};
    config.compute.clusters_per_query = 4;
    config.compute.cache_capacity = 10;   // 20% of 50 partitions
    config.compute.doorbell_batch = 8;
    auto engine = DhnswEngine::Build(ds_->base, config);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    engine_ = new DhnswEngine(std::move(engine).value());
  }

  static void TearDownTestSuite() {
    delete engine_;
    delete ds_;
  }

  static std::unique_ptr<ComputeNode> Attach(EngineMode mode) {
    ComputeOptions options;
    options.mode = mode;
    options.clusters_per_query = 4;
    options.cache_capacity = 10;
    options.doorbell_batch = 8;
    auto node = std::make_unique<ComputeNode>(&engine_->fabric(),
                                              engine_->memory_handle(), options);
    EXPECT_TRUE(node->Connect().ok());
    return node;
  }

  static Dataset* ds_;
  static DhnswEngine* engine_;
};

Dataset* IntegrationTest::ds_ = nullptr;
DhnswEngine* IntegrationTest::engine_ = nullptr;

TEST_F(IntegrationTest, RecallAtTenIsCompetitive) {
  auto result = engine_->SearchAll(ds_->queries, 10, 48);
  ASSERT_TRUE(result.ok());
  const double recall = MeanRecallAtK(*ds_, result.value().results, 10);
  // Paper reports ~0.86-0.87 on SIFT1M at efSearch 48 with b clusters; our
  // clustered synthetic stand-in routes more cleanly, so require >= 0.8.
  EXPECT_GT(recall, 0.8) << "recall@10 = " << recall;
}

TEST_F(IntegrationTest, RecallGrowsWithEfSearch) {
  double prev = -1.0;
  for (uint32_t ef : {1u, 8u, 48u}) {
    auto node = Attach(EngineMode::kFull);
    auto result = node->SearchAll(ds_->queries, 10, ef);
    ASSERT_TRUE(result.ok());
    const double recall = MeanRecallAtK(*ds_, result.value().results, 10);
    EXPECT_GE(recall, prev - 0.02) << "ef " << ef;  // allow tiny noise
    prev = recall;
  }
  EXPECT_GT(prev, 0.75);
}

TEST_F(IntegrationTest, NaiveLatencyGapIsLarge) {
  // Headline claim: d-HNSW vs naive is a 100x-class network-latency gap at
  // batch scale. Verify the simulated network times reproduce the ordering
  // and a substantial (>=10x) gap at this reduced scale.
  auto naive = Attach(EngineMode::kNaive);
  auto full = Attach(EngineMode::kFull);

  const double net_naive =
      naive->SearchAll(ds_->queries, 10, 48).value().breakdown.network_us;
  const double net_full =
      full->SearchAll(ds_->queries, 10, 48).value().breakdown.network_us;
  // At this CI scale (60-query batch, 50 partitions) the dedup ratio caps the
  // gap near ~8x; the paper's 117x needs 2000-query batches (see bench/).
  EXPECT_GT(net_naive / net_full, 5.0)
      << "naive " << net_naive << "us vs d-HNSW " << net_full << "us";
}

TEST_F(IntegrationTest, DoorbellBeatsNoDoorbellOnNetworkTime) {
  auto nodb = Attach(EngineMode::kNoDoorbell);
  auto full = Attach(EngineMode::kFull);
  const double net_nodb =
      nodb->SearchAll(ds_->queries, 10, 48).value().breakdown.network_us;
  const double net_full =
      full->SearchAll(ds_->queries, 10, 48).value().breakdown.network_us;
  // Paper: 1.12x-1.30x improvement. Same payload bytes, fewer round trips.
  EXPECT_GT(net_nodb, net_full);
}

TEST_F(IntegrationTest, RoundTripsPerQueryShrinkDramatically) {
  auto naive = Attach(EngineMode::kNaive);
  auto full = Attach(EngineMode::kFull);
  const auto bd_naive = naive->SearchAll(ds_->queries, 10, 48).value().breakdown;
  const auto bd_full = full->SearchAll(ds_->queries, 10, 48).value().breakdown;
  // Naive: b RTs per query (plus one refresh). d-HNSW amortizes loads across
  // the batch: well under one RT per query.
  EXPECT_NEAR(bd_naive.per_query_round_trips(), 4.0, 0.2);
  EXPECT_LT(bd_full.per_query_round_trips(), 1.0);
}

TEST_F(IntegrationTest, SecondBatchBenefitsFromWarmCache) {
  auto node = Attach(EngineMode::kFull);
  const auto cold = node->SearchAll(ds_->queries, 10, 48).value().breakdown;
  const auto warm = node->SearchAll(ds_->queries, 10, 48).value().breakdown;
  EXPECT_LE(warm.clusters_loaded, cold.clusters_loaded);
  EXPECT_LE(warm.network_us, cold.network_us);
  EXPECT_GT(warm.cache_hits, 0u);
}

TEST_F(IntegrationTest, BytesOnWireMatchClusterSizes) {
  auto node = Attach(EngineMode::kFull);
  const auto bd = node->SearchAll(ds_->queries, 10, 48).value().breakdown;
  // Every loaded cluster moved its blob (plus metadata refresh); bytes must
  // be positive and consistent with at most all clusters loading.
  uint64_t total_blob_bytes = 0;
  for (uint32_t c = 0; c < engine_->num_partitions(); ++c) {
    total_blob_bytes += engine_->memory_node()->plan().entries[c].blob_size;
  }
  EXPECT_GT(bd.bytes_read, 0u);
  EXPECT_LE(bd.bytes_read, total_blob_bytes + (1u << 20));
}

TEST_F(IntegrationTest, SmallBatchesStillCorrect) {
  // Batch size 1 (degenerate batching) must work and agree with full batch.
  auto batched = Attach(EngineMode::kFull);
  auto single = Attach(EngineMode::kFull);

  auto full_result = batched->SearchAll(ds_->queries, 10, 48);
  ASSERT_TRUE(full_result.ok());
  for (size_t qi = 0; qi < 10; ++qi) {
    auto one = single->SearchBatch(ds_->queries, qi, 1, 10, 48);
    ASSERT_TRUE(one.ok());
    const auto& a = one.value().results[0];
    const auto& b = full_result.value().results[qi];
    ASSERT_EQ(a.size(), b.size());
    for (size_t j = 0; j < a.size(); ++j) EXPECT_EQ(a[j].id, b[j].id);
  }
}

TEST_F(IntegrationTest, InsertThenQueryAcrossModes) {
  auto writer = Attach(EngineMode::kFull);
  std::vector<float> outlier(128, 1234.5f);
  ASSERT_TRUE(writer->Insert(outlier, 777777).ok());

  VectorSet probe(128);
  probe.Append(outlier);
  for (EngineMode mode : {EngineMode::kNaive, EngineMode::kNoDoorbell, EngineMode::kFull}) {
    auto node = Attach(mode);
    auto result = node->SearchAll(probe, 1, 32);
    ASSERT_TRUE(result.ok());
    ASSERT_FALSE(result.value().results[0].empty());
    EXPECT_EQ(result.value().results[0][0].id, 777777u)
        << "mode " << EngineModeName(mode);
  }
}

TEST_F(IntegrationTest, GistLikeHighDimensionalPipeline) {
  // 960-d end-to-end smoke: small scale, checks dimension handling + recall.
  Dataset gist = MakeGistLike(800, 10, /*seed=*/82);
  ComputeGroundTruth(&gist, 5);
  DhnswConfig config = DhnswConfig::Defaults();
  config.meta.num_representatives = 10;
  config.sub_hnsw = HnswOptions{.M = 8, .ef_construction = 40};
  config.compute.clusters_per_query = 3;
  auto engine = DhnswEngine::Build(gist.base, config);
  ASSERT_TRUE(engine.ok());
  auto result = engine.value().SearchAll(gist.queries, 5, 48);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(MeanRecallAtK(gist, result.value().results, 5), 0.7);
}

}  // namespace
}  // namespace dhnsw
