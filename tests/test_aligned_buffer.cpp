#include "common/aligned_buffer.h"

#include <gtest/gtest.h>

#include <cstdint>

namespace dhnsw {
namespace {

TEST(AlignedBufferTest, DefaultIsEmpty) {
  AlignedBuffer buf;
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(buf.data(), nullptr);
}

TEST(AlignedBufferTest, AlignmentHonored) {
  for (size_t alignment : {64u, 128u, 4096u}) {
    AlignedBuffer buf(1000, alignment);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(buf.data()) % alignment, 0u)
        << "alignment " << alignment;
    EXPECT_EQ(buf.size(), 1000u);
    EXPECT_EQ(buf.alignment(), alignment);
  }
}

TEST(AlignedBufferTest, ZeroInitialized) {
  AlignedBuffer buf(4096, 64);
  for (uint8_t b : buf.span()) ASSERT_EQ(b, 0);
}

TEST(AlignedBufferTest, SizeNotMultipleOfAlignmentWorks) {
  AlignedBuffer buf(100, 4096);  // aligned_alloc needs padding internally
  EXPECT_EQ(buf.size(), 100u);
  buf.span()[99] = 42;
  EXPECT_EQ(buf.span()[99], 42);
}

TEST(AlignedBufferTest, MoveTransfersOwnership) {
  AlignedBuffer a(256, 64);
  a.span()[0] = 7;
  const uint8_t* ptr = a.data();
  AlignedBuffer b(std::move(a));
  EXPECT_EQ(b.data(), ptr);
  EXPECT_EQ(b.span()[0], 7);
  EXPECT_EQ(a.data(), nullptr);  // NOLINT(bugprone-use-after-move): asserting moved-from state
  EXPECT_EQ(a.size(), 0u);

  AlignedBuffer c;
  c = std::move(b);
  EXPECT_EQ(c.data(), ptr);
  EXPECT_EQ(b.data(), nullptr);  // NOLINT(bugprone-use-after-move)
}

TEST(AlignedBufferTest, SubspanViewsData) {
  AlignedBuffer buf(128, 64);
  buf.span()[10] = 99;
  const auto sub = buf.subspan(10, 5);
  EXPECT_EQ(sub.size(), 5u);
  EXPECT_EQ(sub[0], 99);
}

TEST(AlignedBufferTest, ZeroSizeBuffer) {
  AlignedBuffer buf(0, 64);
  EXPECT_TRUE(buf.empty());
  EXPECT_TRUE(buf.span().empty());
}

}  // namespace
}  // namespace dhnsw
