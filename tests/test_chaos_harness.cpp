// Seeded chaos schedules against the fault-free oracle (ISSUE acceptance):
//   - transient schedules + an adequate retry budget CONVERGE: results are
//     byte-identical to the fault-free baseline;
//   - permanent schedules DEGRADE gracefully: the victim cluster's queries
//     carry non-OK statuses and keep candidates from healthy clusters, and
//     nothing crashes, hangs, or poisons the rest of the batch.
#include "chaos_harness.h"

#include <gtest/gtest.h>

#include <set>

namespace dhnsw {
namespace {

RetryPolicy AdequateRetry() {
  RetryPolicy retry = RetryPolicy::Default();
  // Strictly outlasts the bounded transient trigger budget even if every
  // trigger lands on the same work request.
  retry.max_attempts = ChaosHarness::kTransientTriggerBudget + 4;
  return retry;
}

/// Parameterized over fault-schedule seeds (>= 5 per the acceptance bar).
class ChaosScheduleTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  static ChaosHarness& harness() {
    static ChaosHarness* h = new ChaosHarness({});
    return *h;
  }
};

TEST_P(ChaosScheduleTest, TransientScheduleConvergesToOracle) {
  ChaosHarness& h = harness();
  const rdma::FaultPlan plan = h.MakeTransientPlan(GetParam());
  ASSERT_FALSE(plan.empty());

  auto faulty = h.RunUnderPlan(plan, AdequateRetry(), /*partial_results=*/false);
  ASSERT_TRUE(faulty.ok()) << faulty.status().ToString();
  EXPECT_TRUE(SameResults(faulty.value(), h.baseline()))
      << "schedule seed " << GetParam() << " diverged from the oracle";
  for (const Status& st : faulty.value().statuses) EXPECT_TRUE(st.ok());
}

TEST_P(ChaosScheduleTest, TransientScheduleWithoutRetriesSurfacesErrors) {
  // Sanity check that the schedules actually bite: with retries disabled, a
  // schedule must either fail the batch or (by luck of skip_first) still
  // converge — but never return silently wrong results.
  ChaosHarness& h = harness();
  const rdma::FaultPlan plan = h.MakeTransientPlan(GetParam());
  auto faulty = h.RunUnderPlan(plan, RetryPolicy::Disabled(), false);
  if (faulty.ok()) {
    EXPECT_TRUE(SameResults(faulty.value(), h.baseline()));
  } else {
    EXPECT_TRUE(IsRetryable(faulty.status()))
        << faulty.status().ToString();  // a retry budget would have cured it
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosScheduleTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77));

TEST(ChaosPermanentTest, VictimQueriesDegradeOthersMatchOracle) {
  ChaosHarness h({});
  uint32_t victim = 0;
  const rdma::FaultPlan plan = h.MakePermanentPlan(&victim);

  auto run = h.RunUnderPlan(plan, RetryPolicy::Default(), /*partial_results=*/true);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const BatchResult& got = run.value();
  ASSERT_EQ(got.results.size(), h.dataset().queries.size());
  ASSERT_EQ(got.statuses.size(), got.results.size());
  EXPECT_GT(got.breakdown.failed_loads, 0u);

  size_t degraded = 0;
  for (size_t qi = 0; qi < got.results.size(); ++qi) {
    const std::vector<uint32_t> routed = h.RoutesOf(qi);
    const bool hits_victim =
        std::find(routed.begin(), routed.end(), victim) != routed.end();
    if (!hits_victim) {
      // Untouched queries are bit-exact vs the oracle: the outage never
      // poisons the rest of the batch.
      EXPECT_TRUE(got.statuses[qi].ok()) << "query " << qi;
      ASSERT_EQ(got.results[qi].size(), h.baseline().results[qi].size());
      for (size_t j = 0; j < got.results[qi].size(); ++j) {
        EXPECT_EQ(got.results[qi][j].id, h.baseline().results[qi][j].id);
      }
      continue;
    }
    ++degraded;
    EXPECT_EQ(got.statuses[qi].code(), StatusCode::kUnavailable) << "query " << qi;
    // Partial results: candidates from the healthy routed clusters survive.
    if (routed.size() > 1) {
      EXPECT_FALSE(got.results[qi].empty()) << "query " << qi;
    }
  }
  EXPECT_GT(degraded, 0u) << "schedule failed to hit any query";
}

TEST(ChaosPermanentTest, WithoutPartialResultsTheBatchFailsCleanly) {
  ChaosHarness h({});
  uint32_t victim = 0;
  const rdma::FaultPlan plan = h.MakePermanentPlan(&victim);
  auto run = h.RunUnderPlan(plan, RetryPolicy::Default(), /*partial_results=*/false);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kUnavailable);
}

TEST(ChaosPermanentTest, DegradationIsIdenticalAcrossEngineModes) {
  // The partial-result contract is mode-independent: same victim, same
  // per-query statuses, same surviving ids in kNaive / kNoDoorbell / kFull.
  std::vector<std::vector<Status>> statuses;
  std::vector<std::vector<std::vector<uint32_t>>> ids;
  for (EngineMode mode :
       {EngineMode::kNaive, EngineMode::kNoDoorbell, EngineMode::kFull}) {
    ChaosHarness::Config config;
    config.mode = mode;
    ChaosHarness h(config);
    uint32_t victim = 0;
    auto run = h.RunUnderPlan(h.MakePermanentPlan(&victim), RetryPolicy::Default(),
                              /*partial_results=*/true);
    ASSERT_TRUE(run.ok()) << EngineModeName(mode) << ": " << run.status().ToString();
    statuses.push_back(run.value().statuses);
    std::vector<std::vector<uint32_t>> mode_ids;
    for (const auto& r : run.value().results) {
      std::vector<uint32_t> q;
      for (const Scored& s : r) q.push_back(s.id);
      mode_ids.push_back(std::move(q));
    }
    ids.push_back(std::move(mode_ids));
  }
  for (size_t m = 1; m < statuses.size(); ++m) {
    ASSERT_EQ(statuses[m].size(), statuses[0].size());
    for (size_t qi = 0; qi < statuses[0].size(); ++qi) {
      EXPECT_EQ(statuses[m][qi].code(), statuses[0][qi].code())
          << "mode " << m << " query " << qi;
      EXPECT_EQ(ids[m][qi], ids[0][qi]) << "mode " << m << " query " << qi;
    }
  }
}

TEST(ChaosScheduleModesTest, TransientConvergenceHoldsInEveryMode) {
  for (EngineMode mode :
       {EngineMode::kNaive, EngineMode::kNoDoorbell, EngineMode::kFull}) {
    ChaosHarness::Config config;
    config.mode = mode;
    config.num_queries = 12;  // keep the per-mode build cheap
    ChaosHarness h(config);
    auto run = h.RunUnderPlan(h.MakeTransientPlan(909), AdequateRetry(), false);
    ASSERT_TRUE(run.ok()) << EngineModeName(mode) << ": " << run.status().ToString();
    EXPECT_TRUE(SameResults(run.value(), h.baseline())) << EngineModeName(mode);
  }
}

}  // namespace
}  // namespace dhnsw
