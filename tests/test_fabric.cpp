#include "rdma/fabric.h"

#include <gtest/gtest.h>

namespace dhnsw::rdma {
namespace {

TEST(FabricTest, AddNodesAssignsSequentialIds) {
  Fabric fabric;
  const NodeId a = fabric.AddNode("mem");
  const NodeId b = fabric.AddNode("compute-0");
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(fabric.num_nodes(), 2u);
  EXPECT_EQ(fabric.NodeName(a), "mem");
  EXPECT_EQ(fabric.NodeName(b), "compute-0");
  EXPECT_EQ(fabric.NodeName(99), "<unknown>");
}

TEST(FabricTest, RegisterMemoryReturnsDistinctRkeys) {
  Fabric fabric;
  const NodeId node = fabric.AddNode("mem");
  auto r1 = fabric.RegisterMemory(node, 4096);
  auto r2 = fabric.RegisterMemory(node, 4096);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_NE(r1.value(), r2.value());
}

TEST(FabricTest, RegisterOnUnknownNodeFails) {
  Fabric fabric;
  EXPECT_EQ(fabric.RegisterMemory(5, 4096).status().code(), StatusCode::kInvalidArgument);
}

TEST(FabricTest, RegisterZeroSizeFails) {
  Fabric fabric;
  const NodeId node = fabric.AddNode("mem");
  EXPECT_FALSE(fabric.RegisterMemory(node, 0).ok());
}

TEST(FabricTest, FindRegionAndOwner) {
  Fabric fabric;
  const NodeId node = fabric.AddNode("mem");
  auto rkey = fabric.RegisterMemory(node, 1024);
  ASSERT_TRUE(rkey.ok());
  MemoryRegion* region = fabric.FindRegion(rkey.value());
  ASSERT_NE(region, nullptr);
  EXPECT_EQ(region->size(), 1024u);
  auto owner = fabric.OwnerOf(rkey.value());
  ASSERT_TRUE(owner.ok());
  EXPECT_EQ(owner.value(), node);
  EXPECT_EQ(fabric.FindRegion(999), nullptr);
  EXPECT_EQ(fabric.OwnerOf(999).status().code(), StatusCode::kNotFound);
}

TEST(FabricTest, ReachabilityToggle) {
  Fabric fabric;
  const NodeId node = fabric.AddNode("mem");
  EXPECT_TRUE(fabric.IsNodeReachable(node));
  fabric.SetNodeReachable(node, false);
  EXPECT_FALSE(fabric.IsNodeReachable(node));
  fabric.SetNodeReachable(node, true);
  EXPECT_TRUE(fabric.IsNodeReachable(node));
  EXPECT_FALSE(fabric.IsNodeReachable(42));  // unknown node is unreachable
}

TEST(FabricTest, NicConfigIsCarried) {
  NicModelConfig nic;
  nic.base_round_trip_ns = 4242;
  Fabric fabric(nic);
  EXPECT_EQ(fabric.nic_config().base_round_trip_ns, 4242u);
}

}  // namespace
}  // namespace dhnsw::rdma
