// In-process tests of the dhnsw_cli tool: build -> info -> query -> insert
// -> compact round trips over real fvecs/snapshot files.
#include "cli.h"

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>

#include "dataset/ground_truth.h"
#include "dataset/synthetic.h"
#include "dataset/vecs_io.h"

namespace dhnsw {
namespace {

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // A unique directory per test (name + pid): ctest runs each test as its
    // own process, possibly in parallel, and the fixture's fixed file names
    // would otherwise race across concurrent CliTest processes.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = ::testing::TempDir() + "dhnsw_cli_" + info->name() + "_" +
           std::to_string(static_cast<long>(::getpid()));
    ASSERT_EQ(::mkdir(dir_.c_str(), 0755), 0) << dir_;
    ds_ = MakeSynthetic({.dim = 8, .num_base = 600, .num_queries = 20,
                         .num_clusters = 5, .seed = 191});
    ComputeGroundTruth(&ds_, 10);
    ASSERT_TRUE(WriteFvecs(Path("base.fvecs"), ds_.base).ok());
    ASSERT_TRUE(WriteFvecs(Path("queries.fvecs"), ds_.queries).ok());
    IvecsData gt;
    gt.row_dim = ds_.gt_k;
    gt.values = ds_.ground_truth;
    ASSERT_TRUE(WriteIvecs(Path("gt.ivecs"), gt).ok());
  }

  void TearDown() override {
    for (const char* f : {"base.fvecs", "queries.fvecs", "gt.ivecs", "region.dsnp",
                          "updated.dsnp", "compacted.dsnp", "ids.ivecs", "new.fvecs",
                          "trace.jsonl"}) {
      std::remove(Path(f).c_str());
    }
    ::rmdir(dir_.c_str());
  }

  std::string Path(const std::string& name) const { return dir_ + "/" + name; }

  int Run(std::vector<std::string> args, std::string* out) {
    return cli::RunCli(args, out);
  }

  std::string dir_;
  Dataset ds_;
};

TEST_F(CliTest, NoArgsPrintsUsage) {
  std::string out;
  EXPECT_EQ(Run({}, &out), 2);
  EXPECT_NE(out.find("usage:"), std::string::npos);
}

TEST_F(CliTest, UnknownCommandFails) {
  std::string out;
  EXPECT_EQ(Run({"frobnicate"}, &out), 2);
  EXPECT_NE(out.find("unknown command"), std::string::npos);
}

TEST_F(CliTest, MalformedFlagFails) {
  std::string out;
  EXPECT_EQ(Run({"build", "--base"}, &out), 2);
}

TEST_F(CliTest, BuildQueryRoundTripWithRecall) {
  std::string out;
  ASSERT_EQ(Run({"build", "--base=" + Path("base.fvecs"), "--out=" + Path("region.dsnp"),
                 "--reps=10", "--m=8", "--efc=50"},
                &out), 0)
      << out;
  EXPECT_NE(out.find("built 10 partitions"), std::string::npos);
  EXPECT_NE(out.find("snapshot written"), std::string::npos);

  out.clear();
  ASSERT_EQ(Run({"query", "--snapshot=" + Path("region.dsnp"),
                 "--queries=" + Path("queries.fvecs"), "--k=10", "--ef=64", "--b=3",
                 "--gt=" + Path("gt.ivecs"), "--out=" + Path("ids.ivecs")},
                &out), 0)
      << out;
  EXPECT_NE(out.find("recall@10"), std::string::npos);

  // recall printed should be decent on clustered data.
  const auto pos = out.find("recall@10 = ");
  ASSERT_NE(pos, std::string::npos);
  const double recall = std::strtod(out.c_str() + pos + 12, nullptr);
  EXPECT_GT(recall, 0.75) << out;

  // Written ids decode and have the right shape.
  auto ids = ReadIvecs(Path("ids.ivecs"));
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(ids.value().row_dim, 10u);
  EXPECT_EQ(ids.value().rows(), ds_.queries.size());
}

TEST_F(CliTest, InfoShowsTopology) {
  std::string out;
  ASSERT_EQ(Run({"build", "--base=" + Path("base.fvecs"), "--out=" + Path("region.dsnp"),
                 "--reps=10"},
                &out), 0);
  out.clear();
  ASSERT_EQ(Run({"info", "--snapshot=" + Path("region.dsnp")}, &out), 0) << out;
  EXPECT_NE(out.find("10 partitions"), std::string::npos);
  EXPECT_NE(out.find("memory shard"), std::string::npos);
}

TEST_F(CliTest, InsertThenCompactPipeline) {
  std::string out;
  ASSERT_EQ(Run({"build", "--base=" + Path("base.fvecs"), "--out=" + Path("region.dsnp"),
                 "--reps=10", "--m=8"},
                &out), 0);

  // 30 new vectors to insert.
  VectorSet fresh(8);
  for (int i = 0; i < 30; ++i) {
    std::vector<float> v(ds_.base[i].begin(), ds_.base[i].end());
    v[0] += 0.5f;
    fresh.Append(v);
  }
  ASSERT_TRUE(WriteFvecs(Path("new.fvecs"), fresh).ok());

  out.clear();
  ASSERT_EQ(Run({"insert", "--snapshot=" + Path("region.dsnp"),
                 "--vectors=" + Path("new.fvecs"), "--out=" + Path("updated.dsnp")},
                &out), 0)
      << out;
  EXPECT_NE(out.find("inserted 30 vectors"), std::string::npos);

  out.clear();
  ASSERT_EQ(Run({"compact", "--snapshot=" + Path("updated.dsnp"),
                 "--out=" + Path("compacted.dsnp")},
                &out), 0)
      << out;
  EXPECT_NE(out.find("folded 30 inserts"), std::string::npos);

  // The compacted snapshot still answers queries.
  out.clear();
  ASSERT_EQ(Run({"query", "--snapshot=" + Path("compacted.dsnp"),
                 "--queries=" + Path("queries.fvecs"), "--k=5"},
                &out), 0)
      << out;
  EXPECT_NE(out.find("searched 20 queries"), std::string::npos);
}

TEST_F(CliTest, StatsEmitsPrometheusSnapshot) {
  std::string out;
  ASSERT_EQ(Run({"build", "--base=" + Path("base.fvecs"), "--out=" + Path("region.dsnp"),
                 "--reps=10", "--m=8"},
                &out), 0);

  out.clear();
  ASSERT_EQ(Run({"stats", "--snapshot=" + Path("region.dsnp"),
                 "--queries=" + Path("queries.fvecs"), "--k=5"},
                &out), 0)
      << out;
  // Drove a batch first, then sampled the registry.
  EXPECT_NE(out.find("ran 20 queries"), std::string::npos);
  // Prometheus exposition format with engine topology gauges and compute
  // counters that the query batch must have bumped.
  EXPECT_NE(out.find("# TYPE dhnsw_engine_partitions gauge"), std::string::npos);
  EXPECT_NE(out.find("dhnsw_engine_partitions 10"), std::string::npos);
  EXPECT_NE(out.find("# TYPE dhnsw_compute_batches_total counter"), std::string::npos);
  EXPECT_NE(out.find("dhnsw_rdma_round_trips_total"), std::string::npos);

  // Without --queries it still prints a (topology-only) snapshot.
  out.clear();
  ASSERT_EQ(Run({"stats", "--snapshot=" + Path("region.dsnp")}, &out), 0) << out;
  EXPECT_EQ(out.find("ran "), std::string::npos);
  EXPECT_NE(out.find("dhnsw_engine_compute_nodes"), std::string::npos);
}

TEST_F(CliTest, TraceDumpsJsonlSpans) {
  std::string out;
  ASSERT_EQ(Run({"build", "--base=" + Path("base.fvecs"), "--out=" + Path("region.dsnp"),
                 "--reps=10", "--m=8"},
                &out), 0);

  // To stdout: one JSON object per span, covering the batch stage taxonomy.
  out.clear();
  ASSERT_EQ(Run({"trace", "--snapshot=" + Path("region.dsnp"),
                 "--queries=" + Path("queries.fvecs"), "--k=5"},
                &out), 0)
      << out;
  EXPECT_NE(out.find("{\"name\":\"batch\""), std::string::npos);
  EXPECT_NE(out.find("\"stage.meta\""), std::string::npos);
  EXPECT_NE(out.find("\"stage.sub\""), std::string::npos);
  EXPECT_NE(out.find("\"rdma.ring\""), std::string::npos);

  // To a file, deterministic form: no wall_ns key anywhere.
  out.clear();
  ASSERT_EQ(Run({"trace", "--snapshot=" + Path("region.dsnp"),
                 "--queries=" + Path("queries.fvecs"), "--k=5", "--deterministic=1",
                 "--out=" + Path("trace.jsonl")},
                &out), 0)
      << out;
  EXPECT_NE(out.find("wrote "), std::string::npos);
  std::FILE* f = std::fopen(Path("trace.jsonl").c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) contents.append(buf, n);
  std::fclose(f);
  EXPECT_NE(contents.find("\"stage.load\""), std::string::npos);
  EXPECT_EQ(contents.find("wall_ns"), std::string::npos);

  // Missing --queries is a usage error.
  out.clear();
  EXPECT_EQ(Run({"trace", "--snapshot=" + Path("region.dsnp")}, &out), 1);
}

TEST_F(CliTest, TopologyPrintsReplicaHealthTable) {
  std::string out;
  ASSERT_EQ(Run({"topology", "--replicas=2"}, &out), 0) << out;
  EXPECT_NE(out.find("replication factor 2"), std::string::npos) << out;
  EXPECT_NE(out.find("slot 0: epoch 1"), std::string::npos) << out;
  EXPECT_NE(out.find("alive"), std::string::npos) << out;
  EXPECT_NE(out.find("search served 8/8 queries"), std::string::npos) << out;

  // Factor 1: the subsystem is off and the command says so.
  out.clear();
  ASSERT_EQ(Run({"topology", "--replicas=1"}, &out), 0) << out;
  EXPECT_NE(out.find("replication disabled"), std::string::npos) << out;
}

TEST_F(CliTest, TopologySurvivesAKilledMemoryNode) {
  // The README walkthrough: kill slot 0's primary, watch the probe loop
  // declare it dead, fail over, re-replicate, and keep serving.
  std::string out;
  ASSERT_EQ(Run({"topology", "--replicas=2", "--kill=0", "--rereplicate=1"}, &out), 0) << out;
  EXPECT_NE(out.find("killed memory-node"), std::string::npos) << out;
  EXPECT_NE(out.find("failed over"), std::string::npos) << out;
  EXPECT_NE(out.find("factor 2 restored online"), std::string::npos) << out;
  EXPECT_NE(out.find("search served 8/8 queries"), std::string::npos) << out;
  // Post-failover + admission: epoch 3, the dead primary visible + revoked.
  EXPECT_NE(out.find("slot 0: epoch 3"), std::string::npos) << out;
  EXPECT_NE(out.find("dead [revoked]"), std::string::npos) << out;
}

// The scaleout subcommand is synthetic-only (no snapshot files), so these
// run fixture-free: CliTest's SetUp/TearDown churns fixed-name files in the
// shared temp dir, which races against parallel CliTest processes.
TEST(CliScaleoutTest, DrainRunsEveryOpAndReportsPercentiles) {
  // Deterministic backpressure mode: every op admitted, none dropped, work
  // spread across all nodes by the least-assigned dispatcher.
  std::string out;
  ASSERT_EQ(cli::RunCli({"scaleout", "--nodes=3", "--ops=120", "--rows=600",
                         "--read_fraction=1.0", "--drain=1"},
                        &out), 0) << out;
  EXPECT_NE(out.find("scaleout: 3 nodes, 120 ops (100% reads)"),
            std::string::npos) << out;
  EXPECT_NE(out.find("drain (deterministic backpressure)"), std::string::npos)
      << out;
  EXPECT_NE(out.find("admitted 120  ok 120  failed 0  dropped 0"),
            std::string::npos) << out;
  EXPECT_NE(out.find("sojourn p50"), std::string::npos) << out;
  EXPECT_NE(out.find("node0=40 node1=40 node2=40"), std::string::npos) << out;
}

TEST(CliScaleoutTest, PacedOverloadShedsInsteadOfHanging) {
  // Paced mode at an absurd target QPS with tiny queues: admission control
  // must drop (queue-full), and the accounting must still close.
  std::string out;
  ASSERT_EQ(cli::RunCli({"scaleout", "--nodes=2", "--ops=200", "--rows=600",
                         "--qps=5000000", "--queue_capacity=2"},
                        &out), 0) << out;
  EXPECT_NE(out.find("paced open-loop with admission control"),
            std::string::npos) << out;
  EXPECT_EQ(out.find("dropped 0 "), std::string::npos) << out;

  out.clear();
  EXPECT_EQ(cli::RunCli({"scaleout", "--nodes=0"}, &out), 1);
  EXPECT_NE(out.find("--nodes must be >= 1"), std::string::npos) << out;
}

TEST(CliChaosTest, TransientDrillConvergesOnTcpAndSim) {
  // Fixture-free like CliScaleoutTest: synthetic-only, no snapshot files.
  // The transient schedule is a pure function of the seed, so both backends
  // inject the same fault sequence and both must converge to the oracle.
  for (const char* transport : {"sim", "tcp"}) {
    std::string out;
    ASSERT_EQ(cli::RunCli({"chaos", "--mode=transient", "--rows=900",
                           std::string("--transport=") + transport},
                          &out), 0) << out;
    EXPECT_NE(out.find(std::string("transport=") + transport),
              std::string::npos) << out;
    EXPECT_NE(out.find("transient rule(s)"), std::string::npos) << out;
    EXPECT_NE(out.find("converged: results byte-identical"), std::string::npos)
        << out;
    EXPECT_EQ(out.find("injected 0 fault"), std::string::npos)
        << "the plan never fired?\n" << out;
  }
}

TEST(CliChaosTest, KillDrillFailsOverOnRealSockets) {
  std::string out;
  ASSERT_EQ(cli::RunCli({"chaos", "--mode=kill", "--transport=tcp",
                         "--rows=900"},
                        &out), 0) << out;
  EXPECT_NE(out.find("slot-0 primary crashes"), std::string::npos) << out;
  EXPECT_NE(out.find("1 failover(s)"), std::string::npos) << out;
  EXPECT_NE(out.find("converged: results byte-identical"), std::string::npos)
      << out;

  out.clear();
  EXPECT_EQ(cli::RunCli({"chaos", "--mode=bogus"}, &out), 1);
  EXPECT_NE(out.find("--mode must be transient|kill"), std::string::npos) << out;
}

TEST_F(CliTest, MissingFilesSurfaceErrors) {
  std::string out;
  EXPECT_EQ(Run({"build", "--base=/nope.fvecs", "--out=" + Path("region.dsnp")}, &out), 1);
  EXPECT_NE(out.find("error:"), std::string::npos);
  out.clear();
  EXPECT_EQ(Run({"query", "--snapshot=/nope.dsnp", "--queries=" + Path("queries.fvecs")},
                &out), 1);
  out.clear();
  EXPECT_EQ(Run({"build", "--base=" + Path("base.fvecs"), "--out=" + Path("region.dsnp"),
                 "--metric=hamming"},
                &out), 1);
  EXPECT_NE(out.find("unknown metric"), std::string::npos);
}

}  // namespace
}  // namespace dhnsw
