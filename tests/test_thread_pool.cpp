#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace dhnsw {
namespace {

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, SubmitRunsTask) {
  ThreadPool pool(2);
  std::atomic<int> value{0};
  pool.Submit([&] { value.store(42); }).get();
  EXPECT_EQ(value.load(), 42);
}

TEST(ThreadPoolTest, ManyTasksAllRun) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.ParallelFor(0, [&](size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, ParallelForComputesCorrectSum) {
  ThreadPool pool(3);
  std::vector<long> partial(500);
  pool.ParallelFor(500, [&](size_t i) { partial[i] = static_cast<long>(i) * 2; });
  const long sum = std::accumulate(partial.begin(), partial.end(), 0L);
  EXPECT_EQ(sum, 499L * 500L);  // 2 * sum(0..499)
}

TEST(ThreadPoolTest, DestructorJoinsCleanlyWithPendingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&] { counter.fetch_add(1); });
    }
    // Pool destroyed here; queued tasks must all have been drained or run.
  }
  // Tasks submitted before shutdown are guaranteed to execute.
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace dhnsw
