#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace dhnsw {
namespace {

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, SubmitRunsTask) {
  ThreadPool pool(2);
  std::atomic<int> value{0};
  pool.Submit([&] { value.store(42); }).get();
  EXPECT_EQ(value.load(), 42);
}

TEST(ThreadPoolTest, ManyTasksAllRun) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.ParallelFor(0, [&](size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, ParallelForComputesCorrectSum) {
  ThreadPool pool(3);
  std::vector<long> partial(500);
  pool.ParallelFor(500, [&](size_t i) { partial[i] = static_cast<long>(i) * 2; });
  const long sum = std::accumulate(partial.begin(), partial.end(), 0L);
  EXPECT_EQ(sum, 499L * 500L);  // 2 * sum(0..499)
}

TEST(ThreadPoolTest, SubmitFutureCarriesTaskException) {
  ThreadPool pool(2);
  auto future = pool.Submit([] { throw std::runtime_error("task died"); });
  EXPECT_THROW(future.get(), std::runtime_error);
  // The worker survives the throw and keeps serving tasks.
  std::atomic<int> value{0};
  pool.Submit([&] { value.store(7); }).get();
  EXPECT_EQ(value.load(), 7);
}

// Regression: a throwing build task used to be "dropped" — the first
// future.get() rethrew while sibling shards still ran against the unwound
// stack frame. ParallelFor must drain every shard, then rethrow.
TEST(ThreadPoolTest, ParallelForPropagatesTaskException) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(pool.ParallelFor(200,
                                [&](size_t i) {
                                  if (i == 37) throw std::runtime_error("partition failed");
                                  completed.fetch_add(1);
                                }),
               std::runtime_error);
  // Every iteration either completed or was skipped after the failure; no
  // iteration is left in flight once ParallelFor returns.
  EXPECT_LE(completed.load(), 199);
  // The pool is still healthy: later parallel work runs to completion.
  std::atomic<int> after{0};
  pool.ParallelFor(50, [&](size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 50);
}

TEST(ThreadPoolTest, ParallelForRethrowsOneOfManyFailures) {
  ThreadPool pool(4);
  // Every iteration throws; exactly one exception must surface.
  EXPECT_THROW(
      pool.ParallelFor(64, [](size_t i) { throw std::invalid_argument(std::to_string(i)); }),
      std::invalid_argument);
}

TEST(ThreadPoolTest, ParallelForSequentialPathPropagatesToo) {
  ThreadPool pool(1);  // single worker takes the inline path
  EXPECT_THROW(pool.ParallelFor(10, [](size_t i) {
    if (i == 3) throw std::runtime_error("boom");
  }),
               std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForChunkedCoversEveryElementExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1003);  // non-multiple of grain
  pool.ParallelForChunked(1003, 64, [&](size_t begin, size_t end) {
    ASSERT_LT(begin, end);
    ASSERT_LE(end - begin, 64u);
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForChunkedBoundariesIndependentOfThreadCount) {
  // Chunk boundaries are a pure function of (n, grain): per-chunk sums merged
  // in chunk order must be bit-identical across pool sizes — the property the
  // deterministic k-means reduction relies on.
  auto chunk_starts = [](size_t threads) {
    ThreadPool pool(threads);
    std::mutex mu;
    std::vector<std::pair<size_t, size_t>> ranges;
    pool.ParallelForChunked(777, 50, [&](size_t b, size_t e) {
      std::lock_guard<std::mutex> lock(mu);
      ranges.emplace_back(b, e);
    });
    std::sort(ranges.begin(), ranges.end());
    return ranges;
  };
  const auto r1 = chunk_starts(1);
  const auto r2 = chunk_starts(2);
  const auto r8 = chunk_starts(8);
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(r1, r8);
}

TEST(ThreadPoolTest, DestructorJoinsCleanlyWithPendingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&] { counter.fetch_add(1); });
    }
    // Pool destroyed here; queued tasks must all have been drained or run.
  }
  // Tasks submitted before shutdown are guaranteed to execute.
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace dhnsw
