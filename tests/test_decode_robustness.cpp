// Robustness sweeps over the wire decoders: arbitrary corruption of bytes
// that cross the network (cluster blobs, region headers, metadata entries,
// overflow areas, snapshots) must never crash or return garbage silently —
// every mutation either round-trips to a valid object or yields an error.
#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.h"
#include "core/memory_layout.h"
#include "core/meta_hnsw.h"
#include "dataset/synthetic.h"
#include "serialize/cluster_blob.h"
#include "serialize/overflow.h"

namespace dhnsw {
namespace {

Cluster MakeCluster(uint64_t seed) {
  Xoshiro256 rng(seed);
  HnswIndex index(6, {.M = 6, .ef_construction = 30, .seed = seed});
  std::vector<uint32_t> gids;
  std::vector<float> v(6);
  for (uint32_t i = 0; i < 60; ++i) {
    for (auto& x : v) x = rng.NextFloat();
    index.Add(v);
    gids.push_back(i);
  }
  return Cluster(1, std::move(index), std::move(gids));
}

/// Parameterized over RNG seeds; each trial applies a different mutation.
class ClusterBlobFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ClusterBlobFuzzTest, RandomByteFlipsNeverCrash) {
  const Cluster cluster = MakeCluster(GetParam());
  const std::vector<uint8_t> clean = EncodeCluster(cluster);
  Xoshiro256 rng(GetParam() * 31 + 7);

  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> blob = clean;
    // Flip 1..8 random bytes.
    const int flips = 1 + static_cast<int>(rng.NextBounded(8));
    for (int i = 0; i < flips; ++i) {
      blob[rng.NextBounded(blob.size())] ^= static_cast<uint8_t>(1 + rng.NextBounded(255));
    }
    auto decoded = DecodeCluster(blob, HnswOptions{});
    if (decoded.ok()) {
      // A mutation that still decodes must yield a structurally valid graph
      // (e.g. the flip hit padding — CRC covers only the payload bytes).
      EXPECT_TRUE(decoded.value().index.Validate().ok());
    }
    // Either way: no crash, no UB (ASAN-clean under sanitizer builds).
  }
}

TEST_P(ClusterBlobFuzzTest, RandomTruncationsNeverCrash) {
  const Cluster cluster = MakeCluster(GetParam());
  const std::vector<uint8_t> clean = EncodeCluster(cluster);
  Xoshiro256 rng(GetParam() * 53 + 11);
  for (int trial = 0; trial < 100; ++trial) {
    const size_t keep = rng.NextBounded(clean.size());
    std::vector<uint8_t> blob(clean.begin(), clean.begin() + keep);
    auto decoded = DecodeCluster(blob, HnswOptions{});
    EXPECT_FALSE(decoded.ok()) << "decoded from " << keep << "/" << clean.size()
                               << " bytes";
  }
}

TEST_P(ClusterBlobFuzzTest, RandomGarbageNeverCrashes) {
  Xoshiro256 rng(GetParam() * 77 + 13);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<uint8_t> garbage(64 + rng.NextBounded(4096));
    for (auto& b : garbage) b = static_cast<uint8_t>(rng.Next());
    auto decoded = DecodeCluster(garbage, HnswOptions{});
    // Random bytes match magic+version+CRC with probability ~2^-80.
    EXPECT_FALSE(decoded.ok());
    (void)PeekClusterHeader(garbage);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusterBlobFuzzTest, ::testing::Values(1, 2, 3, 4, 5));

TEST(RegionHeaderFuzzTest, RandomBytesNeverCrash) {
  Xoshiro256 rng(991);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<uint8_t> bytes(RegionHeader::kEncodedSize);
    for (auto& b : bytes) b = static_cast<uint8_t>(rng.Next());
    (void)DecodeRegionHeader(bytes);  // must not crash
  }
}

TEST(ClusterMetaFuzzTest, RandomBytesEitherDecodeOrFail) {
  Xoshiro256 rng(992);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<uint8_t> bytes(ClusterMeta::kEncodedSize);
    for (auto& b : bytes) b = static_cast<uint8_t>(rng.Next());
    auto meta = DecodeClusterMeta(bytes);
    if (meta.ok()) {
      // Direction is validated; anything decoded must carry a legal one.
      EXPECT_LE(static_cast<uint32_t>(meta.value().direction), 1u);
    }
  }
}

TEST(ClusterMetaFuzzTest, RandomFieldsRoundTripThroughEncoder) {
  // Entries carry a static-field CRC, so arbitrary field values must
  // round-trip when produced by the encoder — and any single damaged byte
  // outside the FAA-mutated counter must be rejected.
  Xoshiro256 rng(996);
  for (int trial = 0; trial < 200; ++trial) {
    ClusterMeta m;
    m.blob_offset = rng.Next();
    m.blob_size = rng.Next();
    m.overflow_base = rng.Next();
    m.overflow_capacity = rng.Next();
    m.overflow_used = rng.Next();
    m.direction = static_cast<OverflowDirection>(rng.NextBounded(2));
    m.partner = static_cast<uint32_t>(rng.Next());
    m.record_size = static_cast<uint32_t>(rng.Next());
    m.node_slot = static_cast<uint32_t>(rng.Next());
    m.radius = rng.NextFloat();

    std::vector<uint8_t> bytes(ClusterMeta::kEncodedSize);
    EncodeClusterMeta(m, bytes);
    auto meta = DecodeClusterMeta(bytes);
    ASSERT_TRUE(meta.ok());
    EXPECT_EQ(static_cast<uint32_t>(meta.value().direction),
              static_cast<uint32_t>(m.direction));
    EXPECT_EQ(meta.value().blob_offset, m.blob_offset);
    EXPECT_EQ(meta.value().partner, m.partner);
  }
}

TEST(ClusterMetaFuzzTest, DamagedStaticBytesAreRejected) {
  ClusterMeta m;
  m.blob_offset = 4096;
  m.blob_size = 777;
  m.overflow_base = 8192;
  m.overflow_capacity = 1024;
  m.record_size = 40;
  std::vector<uint8_t> clean(ClusterMeta::kEncodedSize);
  EncodeClusterMeta(m, clean);

  for (size_t byte = 0; byte < ClusterMeta::kEncodedSize; ++byte) {
    std::vector<uint8_t> bytes = clean;
    bytes[byte] ^= 0x10;
    auto meta = DecodeClusterMeta(bytes);
    if (byte >= ClusterMeta::kUsedFieldOffset && byte < ClusterMeta::kUsedFieldOffset + 8) {
      // The FAA counter is outside the CRC by design: remote atomics mutate
      // it in place, so damage there is tolerated at this layer.
      EXPECT_TRUE(meta.ok()) << "byte " << byte;
    } else {
      EXPECT_FALSE(meta.ok()) << "byte " << byte;
    }
  }
}

TEST(RegionHeaderFuzzTest, DamagedHeaderBytesAreRejected) {
  RegionHeader h;
  h.num_clusters = 9;
  h.dim = 16;
  h.record_size = 80;
  h.table_offset = 64;
  h.meta_blob_offset = 1024;
  h.meta_blob_size = 512;
  std::vector<uint8_t> clean(RegionHeader::kEncodedSize);
  EncodeRegionHeader(h, clean);
  ASSERT_TRUE(DecodeRegionHeader(clean).ok());

  for (size_t byte = 0; byte < RegionHeader::kCrcOffset + 4; ++byte) {
    std::vector<uint8_t> bytes = clean;
    bytes[byte] ^= 0x01;
    EXPECT_FALSE(DecodeRegionHeader(bytes).ok()) << "byte " << byte;
  }
}

TEST(OverflowFuzzTest, RandomAreasNeverCrash) {
  Xoshiro256 rng(993);
  for (int trial = 0; trial < 300; ++trial) {
    const uint32_t dim = 1 + static_cast<uint32_t>(rng.NextBounded(16));
    std::vector<uint8_t> area(OverflowRecordSize(dim) * (1 + rng.NextBounded(8)));
    for (auto& b : area) b = static_cast<uint8_t>(rng.Next());
    const uint64_t used = rng.NextBounded(area.size() * 2);  // may exceed
    auto records = DecodeOverflowArea(area, used, dim);
    if (records.ok()) {
      EXPECT_LE(records.value().size() * OverflowRecordSize(dim), area.size());
    }
  }
}

TEST(MetaBlobFuzzTest, CorruptMetaBlobRejected) {
  const Dataset ds = MakeSynthetic({.dim = 8, .num_base = 300, .num_queries = 1,
                                    .num_clusters = 3, .seed = 994});
  MetaHnswOptions options;
  options.num_representatives = 20;
  auto meta = MetaHnsw::Build(ds.base, options);
  ASSERT_TRUE(meta.ok());
  std::vector<uint8_t> blob = meta.value().ToBlob();

  Xoshiro256 rng(995);
  int rejected = 0;
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<uint8_t> mutated = blob;
    // Corrupt within the payload (past the header) so the CRC must catch it.
    const size_t pos = ClusterHeader::kEncodedSize +
                       rng.NextBounded(mutated.size() - ClusterHeader::kEncodedSize);
    mutated[pos] ^= 0xFF;
    if (!MetaHnsw::FromBlob(mutated).ok()) ++rejected;
  }
  EXPECT_EQ(rejected, 100);
}

}  // namespace
}  // namespace dhnsw
