#include "core/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "core/engine.h"
#include "dataset/ground_truth.h"
#include "dataset/synthetic.h"

namespace dhnsw {
namespace {

DhnswConfig SmallConfig() {
  DhnswConfig config = DhnswConfig::Defaults();
  config.meta.num_representatives = 10;
  config.sub_hnsw = HnswOptions{.M = 8, .ef_construction = 50};
  config.compute.clusters_per_query = 3;
  config.compute.cache_capacity = 4;
  return config;
}

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(SnapshotTest, SaveLoadRoundTripAnswersIdentically) {
  Dataset ds = MakeSynthetic({.dim = 8, .num_base = 900, .num_queries = 12,
                              .num_clusters = 6, .seed = 111});
  auto original = DhnswEngine::Build(ds.base, SmallConfig());
  ASSERT_TRUE(original.ok());

  const std::string path = TempPath("region.dsnp");
  ASSERT_TRUE(original.value().SaveSnapshot(path).ok());

  auto restored = DhnswEngine::BuildFromSnapshot(
      path, SmallConfig(), static_cast<uint32_t>(ds.base.size()));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.value().num_partitions(), 10u);
  EXPECT_EQ(restored.value().dim(), 8u);

  auto r1 = original.value().SearchAll(ds.queries, 5, 48);
  auto r2 = restored.value().SearchAll(ds.queries, 5, 48);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  for (size_t qi = 0; qi < ds.queries.size(); ++qi) {
    ASSERT_EQ(r1.value().results[qi].size(), r2.value().results[qi].size());
    for (size_t j = 0; j < r1.value().results[qi].size(); ++j) {
      EXPECT_EQ(r1.value().results[qi][j].id, r2.value().results[qi][j].id);
    }
  }
  std::remove(path.c_str());
}

TEST(SnapshotTest, SnapshotCarriesOverflowState) {
  Dataset ds = MakeSynthetic({.dim = 8, .num_base = 600, .num_queries = 2,
                              .num_clusters = 4, .seed = 112});
  DhnswConfig config = SmallConfig();
  config.layout.overflow_bytes_per_group = 1 << 14;
  auto original = DhnswEngine::Build(ds.base, config);
  ASSERT_TRUE(original.ok());

  std::vector<float> outlier(8, 321.0f);
  auto id = original.value().Insert(outlier);
  ASSERT_TRUE(id.ok());

  const std::string path = TempPath("overflow.dsnp");
  ASSERT_TRUE(original.value().SaveSnapshot(path).ok());
  auto restored = DhnswEngine::BuildFromSnapshot(path, config, id.value() + 1);
  ASSERT_TRUE(restored.ok());

  VectorSet probe(8);
  probe.Append(outlier);
  auto result = restored.value().SearchAll(probe, 1, 32);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result.value().results[0].empty());
  EXPECT_EQ(result.value().results[0][0].id, id.value());
  std::remove(path.c_str());
}

TEST(SnapshotTest, RestoredEngineAcceptsInserts) {
  Dataset ds = MakeSynthetic({.dim = 8, .num_base = 500, .num_queries = 2,
                              .num_clusters = 4, .seed = 113});
  auto original = DhnswEngine::Build(ds.base, SmallConfig());
  ASSERT_TRUE(original.ok());
  const std::string path = TempPath("inserts.dsnp");
  ASSERT_TRUE(original.value().SaveSnapshot(path).ok());

  auto restored = DhnswEngine::BuildFromSnapshot(
      path, SmallConfig(), static_cast<uint32_t>(ds.base.size()));
  ASSERT_TRUE(restored.ok());
  std::vector<float> v(8, -50.0f);
  auto id = restored.value().Insert(v);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(id.value(), ds.base.size());
  std::remove(path.c_str());
}

TEST(SnapshotTest, MissingFileIsIoError) {
  rdma::Fabric fabric;
  EXPECT_EQ(LoadRegionSnapshot(&fabric, "/nonexistent/x.dsnp").status().code(),
            StatusCode::kIoError);
}

TEST(SnapshotTest, CorruptPayloadDetected) {
  Dataset ds = MakeSynthetic({.dim = 8, .num_base = 300, .num_queries = 1,
                              .num_clusters = 2, .seed = 114});
  auto engine = DhnswEngine::Build(ds.base, SmallConfig());
  ASSERT_TRUE(engine.ok());
  const std::string path = TempPath("corrupt.dsnp");
  ASSERT_TRUE(engine.value().SaveSnapshot(path).ok());

  // Flip one payload byte.
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 24 + 1000, SEEK_SET);
  const uint8_t bad = 0xFF;
  std::fwrite(&bad, 1, 1, f);
  std::fclose(f);

  rdma::Fabric fabric;
  EXPECT_EQ(LoadRegionSnapshot(&fabric, path).status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(SnapshotTest, TruncatedFileDetected) {
  Dataset ds = MakeSynthetic({.dim = 8, .num_base = 300, .num_queries = 1,
                              .num_clusters = 2, .seed = 115});
  auto engine = DhnswEngine::Build(ds.base, SmallConfig());
  ASSERT_TRUE(engine.ok());
  const std::string path = TempPath("trunc.dsnp");
  ASSERT_TRUE(engine.value().SaveSnapshot(path).ok());

  // Truncate the file to half.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long full = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), full / 2), 0);

  rdma::Fabric fabric;
  EXPECT_EQ(LoadRegionSnapshot(&fabric, path).status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(SnapshotTest, TruncationIsClassifiedWithByteOffsetAtEveryStage) {
  Dataset ds = MakeSynthetic({.dim = 8, .num_base = 300, .num_queries = 1,
                              .num_clusters = 2, .seed = 116});
  auto engine = DhnswEngine::Build(ds.base, SmallConfig());
  ASSERT_TRUE(engine.ok());
  const std::string path = TempPath("offsets.dsnp");
  ASSERT_TRUE(engine.value().SaveSnapshot(path).ok());

  const auto truncated_to = [&](long size) {
    const std::string copy = TempPath("offsets_cut.dsnp");
    std::FILE* in = std::fopen(path.c_str(), "rb");
    std::FILE* out = std::fopen(copy.c_str(), "wb");
    EXPECT_NE(in, nullptr);
    EXPECT_NE(out, nullptr);
    std::vector<uint8_t> bytes(static_cast<size_t>(size));
    EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), in), bytes.size());
    EXPECT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), out), bytes.size());
    std::fclose(in);
    std::fclose(out);
    rdma::Fabric fabric;
    return LoadRegionSnapshot(&fabric, copy).status();
  };

  // Mid-header: data ran out at byte 8 of the 16-byte fixed header.
  const Status header = truncated_to(8);
  EXPECT_EQ(header.code(), StatusCode::kCorruption);
  EXPECT_NE(header.message().find("truncated header"), std::string::npos) << header.ToString();
  EXPECT_NE(header.message().find("at byte offset 8"), std::string::npos) << header.ToString();

  // Mid-shard-table: the single-shard table spans bytes [16, 32).
  const Status table = truncated_to(20);
  EXPECT_EQ(table.code(), StatusCode::kCorruption);
  EXPECT_NE(table.message().find("truncated shard table"), std::string::npos)
      << table.ToString();
  EXPECT_NE(table.message().find("at byte offset 20"), std::string::npos) << table.ToString();

  // Mid-payload: 100 bytes past the headers, so shard 0's payload (which
  // starts at offset 32) runs out at byte 132.
  const Status payload = truncated_to(32 + 100);
  EXPECT_EQ(payload.code(), StatusCode::kCorruption);
  EXPECT_NE(payload.message().find("truncated payload of shard 0"), std::string::npos)
      << payload.ToString();
  EXPECT_NE(payload.message().find("at byte offset 132"), std::string::npos)
      << payload.ToString();

  std::remove(path.c_str());
  std::remove(TempPath("offsets_cut.dsnp").c_str());
}

TEST(SnapshotTest, RestoreRejectsConfigDisagreement) {
  Dataset ds = MakeSynthetic({.dim = 8, .num_base = 600, .num_queries = 2,
                              .num_clusters = 4, .seed = 117});
  auto engine = DhnswEngine::Build(ds.base, SmallConfig());  // dim 8, 10 partitions
  ASSERT_TRUE(engine.ok());
  const std::string path = TempPath("validated.dsnp");
  ASSERT_TRUE(engine.value().SaveSnapshot(path).ok());
  const uint32_t next_id = static_cast<uint32_t>(ds.base.size());

  // A snapshot whose stored dim disagrees with what the caller configured
  // must refuse to serve (queries could never match), not silently load.
  DhnswConfig wrong_dim = SmallConfig();
  wrong_dim.expected_dim = 128;
  auto by_dim = DhnswEngine::BuildFromSnapshot(path, wrong_dim, next_id);
  EXPECT_EQ(by_dim.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(by_dim.status().message().find("dim"), std::string::npos)
      << by_dim.status().ToString();

  DhnswConfig wrong_parts = SmallConfig();
  wrong_parts.expected_partitions = 99;
  auto by_parts = DhnswEngine::BuildFromSnapshot(path, wrong_parts, next_id);
  EXPECT_EQ(by_parts.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(by_parts.status().message().find("partitions"), std::string::npos)
      << by_parts.status().ToString();

  // Matching expectations admit; zero (the default) means unchecked.
  DhnswConfig right = SmallConfig();
  right.expected_dim = 8;
  right.expected_partitions = 10;
  EXPECT_TRUE(DhnswEngine::BuildFromSnapshot(path, right, next_id).ok());
  std::remove(path.c_str());
}

TEST(SnapshotTest, UnknownRegionFailsToSave) {
  rdma::Fabric fabric;
  MemoryNodeHandle bogus{0, 999, 1024};
  EXPECT_EQ(SaveRegionSnapshot(fabric, bogus, TempPath("never.dsnp")).code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace dhnsw
