// Chaos-on-the-wire tests (DESIGN.md §15).
//
// Proves the transport-agnostic fault layer on real sockets:
//   - ChaosChannel translates every FaultKind into the right connection-level
//     event on a TCP-backed fabric (drop, stall, delay, payload corruption,
//     forced disconnect mid-doorbell) with sim-identical determinism and
//     trigger-consumption ordering;
//   - the TCP client survives what the decorator throws: transparent
//     reconnect after a severed connection, fast kUnreachable from a refused
//     port (non-blocking connect with a deadline), and jittered backoff
//     between redial attempts;
//   - RetryBudget's wall-clock deadline actually expires against a hung TCP
//     server (the dual-clock contract of common/retry_policy.h);
//   - the memory-node server never crashes, hangs, or unbounded-allocates on
//     malformed frames (fuzz-style table test over the wire protocol).

#include "rdma/chaos_transport.h"

#include <gtest/gtest.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <string>
#include <vector>

#include "common/retry_policy.h"
#include "rdma/fabric.h"
#include "rdma/fault_injection.h"
#include "rdma/nic_model.h"
#include "rdma/queue_pair.h"
#include "rdma/tcp_transport.h"

namespace dhnsw {
namespace {

using rdma::ChaosTransport;
using rdma::Fabric;
using rdma::FaultKind;
using rdma::FaultPlan;
using rdma::FaultRule;
using rdma::NicModelConfig;
using rdma::TcpTransport;
using rdma::TransportKind;
using rdma::TransportOptions;
using rdma::WcStatus;

uint64_t WallNsSince(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now() - start)
                                   .count());
}

/// TCP-backed fabric + one registered region, the canvas every chaos test
/// paints on. Mirrors TcpTransportTest in test_transport.cpp.
class ChaosTcpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(fabric_.transport().kind(), TransportKind::kTcp);
    mem_node_ = fabric_.AddNode("mem");
    fabric_.AddNode("compute");
    auto rkey = fabric_.RegisterMemory(mem_node_, kRegionSize);
    ASSERT_TRUE(rkey.ok());
    rkey_ = rkey.value();
  }

  static FaultRule Rule(FaultKind kind) {
    FaultRule rule;
    rule.kind = kind;
    return rule;
  }

  static constexpr size_t kRegionSize = 1 << 20;
  Fabric fabric_{NicModelConfig{}, TransportOptions::Tcp()};
  rdma::NodeId mem_node_ = 0;
  rdma::RKey rkey_ = 0;
  SimClock clock_;
};

TEST_F(ChaosTcpTest, RealBackendIsWrappedInTheChaosDecorator) {
  // The decorator is invisible through the Transport interface (kind/name
  // forward), but present: real backends get it, the sim does not.
  auto* chaos = dynamic_cast<ChaosTransport*>(&fabric_.transport());
  ASSERT_NE(chaos, nullptr);
  EXPECT_EQ(chaos->kind(), TransportKind::kTcp);
  EXPECT_EQ(chaos->inner().kind(), TransportKind::kTcp);
  EXPECT_NE(dynamic_cast<TcpTransport*>(&chaos->inner()), nullptr);

  Fabric sim(NicModelConfig{}, TransportOptions::Sim());
  EXPECT_EQ(dynamic_cast<ChaosTransport*>(&sim.transport()), nullptr);
}

TEST_F(ChaosTcpTest, UnreachableFaultFiresOnTheWireAndClearsWithThePlan) {
  FaultPlan plan(7);
  FaultRule rule = Rule(FaultKind::kUnreachable);
  rule.max_triggers = 2;
  plan.Add(rule);
  ASSERT_TRUE(fabric_.ArmFaults(plan).ok());

  rdma::QueuePair qp(&fabric_, &clock_);
  std::vector<uint8_t> buf(64, 0);
  Status first = qp.Read(rkey_, 0, buf);
  EXPECT_EQ(first.code(), StatusCode::kUnavailable) << first.ToString();
  Status second = qp.Read(rkey_, 0, buf);
  EXPECT_EQ(second.code(), StatusCode::kUnavailable) << second.ToString();
  EXPECT_EQ(qp.stats().injected_faults, 2u);

  // Trigger budget spent: the wire is healthy again.
  EXPECT_TRUE(qp.Read(rkey_, 0, buf).ok());

  fabric_.ClearFaults();
  EXPECT_TRUE(qp.Read(rkey_, 0, buf).ok());
}

TEST_F(ChaosTcpTest, TimeoutFaultStallsForRealAndMapsToDeadlineExceeded) {
  FaultPlan plan(8);
  FaultRule rule = Rule(FaultKind::kTimeout);
  rule.max_triggers = 1;
  rule.delay_ns = 2'000'000;  // 2 ms: measurable, not slow
  plan.Add(rule);
  ASSERT_TRUE(fabric_.ArmFaults(plan).ok());

  rdma::QueuePair qp(&fabric_, &clock_);
  std::vector<uint8_t> buf(64, 0);
  const auto start = std::chrono::steady_clock::now();
  Status st = qp.Read(rkey_, 0, buf);
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded) << st.ToString();
  // Real backends charge measured wall time; the injected stall both
  // actually elapsed and got charged to the clock.
  EXPECT_GE(WallNsSince(start), 2'000'000u);
  EXPECT_GE(clock_.now_ns(), 2'000'000u);
  fabric_.ClearFaults();
}

TEST_F(ChaosTcpTest, DelayFaultExecutesTheOpSlowly) {
  FaultPlan plan(9);
  FaultRule rule = Rule(FaultKind::kDelay);
  rule.max_triggers = 1;
  rule.delay_ns = 2'000'000;
  plan.Add(rule);
  ASSERT_TRUE(fabric_.ArmFaults(plan).ok());

  rdma::QueuePair qp(&fabric_, &clock_);
  std::vector<uint8_t> payload(64, 0x5A);
  ASSERT_TRUE(qp.Write(rkey_, 0, payload).ok());  // slow but successful
  EXPECT_GE(clock_.now_ns(), 2'000'000u);
  EXPECT_EQ(qp.stats().injected_faults, 1u);

  std::vector<uint8_t> back(64, 0);
  ASSERT_TRUE(qp.Read(rkey_, 0, back).ok());
  EXPECT_EQ(back, payload);
  fabric_.ClearFaults();
}

TEST_F(ChaosTcpTest, BitFlipCorruptsReadPayloadAfterItCrossedTheSocket) {
  std::vector<uint8_t> payload(256, 0xAB);
  {
    rdma::QueuePair qp(&fabric_, &clock_);
    ASSERT_TRUE(qp.Write(rkey_, 0, payload).ok());
  }

  FaultPlan plan(10);
  FaultRule rule = Rule(FaultKind::kBitFlip);
  rule.opcode = rdma::Opcode::kRead;
  rule.max_triggers = 1;
  rule.bit_flips = 3;
  plan.Add(rule);
  ASSERT_TRUE(fabric_.ArmFaults(plan).ok());

  rdma::QueuePair qp(&fabric_, &clock_);
  std::vector<uint8_t> corrupted(256, 0);
  ASSERT_TRUE(qp.Read(rkey_, 0, corrupted).ok());  // success, damaged bytes
  EXPECT_NE(corrupted, payload);
  EXPECT_EQ(qp.stats().injected_faults, 1u);

  // The remote copy is intact — only the local destination was damaged.
  std::vector<uint8_t> clean(256, 0);
  ASSERT_TRUE(qp.Read(rkey_, 0, clean).ok());
  EXPECT_EQ(clean, payload);
  fabric_.ClearFaults();
}

TEST_F(ChaosTcpTest, BitFlipOnWriteDamagesTheBytesThatLanded) {
  FaultPlan plan(11);
  FaultRule rule = Rule(FaultKind::kBitFlip);
  rule.opcode = rdma::Opcode::kWrite;
  rule.max_triggers = 1;
  plan.Add(rule);
  ASSERT_TRUE(fabric_.ArmFaults(plan).ok());

  rdma::QueuePair qp(&fabric_, &clock_);
  std::vector<uint8_t> payload(128, 0xCD);
  ASSERT_TRUE(qp.Write(rkey_, 0, payload).ok());
  EXPECT_EQ(payload, std::vector<uint8_t>(128, 0xCD));  // source untouched
  fabric_.ClearFaults();

  std::vector<uint8_t> back(128, 0);
  ASSERT_TRUE(qp.Read(rkey_, 0, back).ok());
  EXPECT_NE(back, payload);  // what landed remotely is damaged
  size_t diffs = 0;
  for (size_t i = 0; i < back.size(); ++i) diffs += back[i] != payload[i];
  EXPECT_EQ(diffs, 1u);  // one trigger, default bit_flips = 1
}

TEST_F(ChaosTcpTest, DisconnectMidDoorbellFailsTheRestOfTheRingThenReconnects) {
  FaultPlan plan(12);
  FaultRule rule = Rule(FaultKind::kDisconnect);
  rule.skip_first = 1;  // WR 0 executes; WR 1 severs the connection
  rule.max_triggers = 1;
  plan.Add(rule);
  ASSERT_TRUE(fabric_.ArmFaults(plan).ok());

  rdma::QueuePair qp(&fabric_, &clock_);
  std::vector<uint8_t> a(32, 0x11), b(32, 0x22), c(32, 0x33);
  qp.PostWrite(rkey_, 0, a, /*wr_id=*/1);
  qp.PostWrite(rkey_, 64, b, /*wr_id=*/2);
  qp.PostWrite(rkey_, 128, c, /*wr_id=*/3);
  std::vector<rdma::Completion> completions = qp.Flush();
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_EQ(completions[0].status, WcStatus::kSuccess);
  EXPECT_EQ(completions[1].status, WcStatus::kRemoteUnreachable);
  // Collateral: posted after the connection died, failed unevaluated.
  EXPECT_EQ(completions[2].status, WcStatus::kRemoteUnreachable);
  EXPECT_EQ(qp.stats().injected_faults, 1u);  // only the trigger counts

  // The channel transparently reconnects on the next ring: the failed WRs
  // can simply be re-posted, and the first WR's bytes did land.
  ASSERT_TRUE(qp.Write(rkey_, 64, b).ok());
  ASSERT_TRUE(qp.Write(rkey_, 128, c).ok());
  std::vector<uint8_t> back(32, 0);
  ASSERT_TRUE(qp.Read(rkey_, 0, back).ok());
  EXPECT_EQ(back, a);
  fabric_.ClearFaults();
}

TEST_F(ChaosTcpTest, FenceRejectionsDoNotConsumeFaultTriggers) {
  // Same ordering contract as the sim: connection-manager rejections happen
  // before fault evaluation, so a fenced op must not eat the trigger budget.
  fabric_.SetRegionEpoch(rkey_, 5);

  FaultPlan plan(13);
  FaultRule rule = Rule(FaultKind::kUnreachable);
  rule.max_triggers = 1;
  plan.Add(rule);
  ASSERT_TRUE(fabric_.ArmFaults(plan).ok());

  rdma::QueuePair qp(&fabric_, &clock_);
  std::vector<uint8_t> buf(16, 0);
  // Stale-epoch access: rejected by the fence, not by the fault.
  qp.PostRead(rkey_, 0, buf, /*wr_id=*/1, /*expected_epoch=*/4);
  std::vector<rdma::Completion> fenced = qp.Flush();
  ASSERT_EQ(fenced.size(), 1u);
  EXPECT_EQ(fenced[0].status, WcStatus::kFenced);
  EXPECT_EQ(qp.stats().injected_faults, 0u);

  // The healthy access is the one that takes the (still unspent) trigger.
  Status st = qp.Read(rkey_, 0, buf, /*expected_epoch=*/5);
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_EQ(qp.stats().injected_faults, 1u);
  fabric_.ClearFaults();
}

TEST(ChaosDeterminismTest, SameSeedSamePlanInjectsIdenticalSequencesOnTcp) {
  // Determinism carries over to real sockets: decisions are a pure function
  // of (plan seed, qp id, WR sequence) — wall time plays no part. Two fresh
  // deployments replaying the same probabilistic plan must observe the
  // exact same success/failure string.
  const auto run = [](uint64_t seed) {
    Fabric fabric(NicModelConfig{}, TransportOptions::Tcp());
    const rdma::NodeId node = fabric.AddNode("mem");
    auto rkey = fabric.RegisterMemory(node, 4096);
    EXPECT_TRUE(rkey.ok());

    FaultPlan plan(seed);
    FaultRule rule;
    rule.kind = FaultKind::kUnreachable;
    rule.probability = 0.5;
    plan.Add(rule);
    EXPECT_TRUE(fabric.ArmFaults(plan).ok());

    SimClock clock;
    rdma::QueuePair qp(&fabric, &clock);  // first QP of its fabric: qp_id 0
    std::string outcome;
    std::vector<uint8_t> buf(32, 0);
    for (int i = 0; i < 24; ++i) {
      outcome += qp.Read(rkey.value(), 0, buf).ok() ? 'o' : 'x';
    }
    return outcome;
  };
  const std::string first = run(99);
  const std::string second = run(99);
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find('x'), std::string::npos);  // p=0.5 over 24 draws:
  EXPECT_NE(first.find('o'), std::string::npos);  // both outcomes occur
  EXPECT_NE(first, run(100));  // a different seed draws a different stream
}

// --- satellite 1: non-blocking connect with a deadline -----------------

TEST(ChaosTcpConnectTest, RefusedPortFailsFastWithUnreachable) {
  // Stand up a real server to learn a port, then tear it down: connects to
  // that port are refused (loopback RST), and the channel must surface
  // kRemoteUnreachable quickly — bounded by the connect deadline plus the
  // reconnect backoff, nowhere near a blocking-connect hang.
  TransportOptions options = TransportOptions::Tcp();
  options.tcp_connect_timeout_ms = 500;
  options.tcp_reconnect_initial_backoff_ns = 1'000'000;   // 1 ms
  options.tcp_reconnect_max_backoff_ns = 8'000'000;       // 8 ms cap

  auto made = TcpTransport::Create(options);
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  std::unique_ptr<TcpTransport> transport = std::move(made).value();
  const rdma::NodeId node = transport->AddNode("mem");
  auto rkey = transport->RegisterMemory(node, 4096, 64);
  ASSERT_TRUE(rkey.ok());
  auto channel = transport->CreateChannel();

  // Channel works while the server lives...
  std::vector<uint8_t> buf(16, 0x77);
  rdma::WorkRequest wr;
  wr.opcode = rdma::Opcode::kWrite;
  wr.rkey = rkey.value();
  wr.local = buf;
  rdma::Completion completion;
  channel->ExecuteRing({&wr, 1}, {&completion, 1}, {});
  ASSERT_EQ(completion.status, WcStatus::kSuccess);

  // ...then the memory node dies for good. The TcpChannel only holds the
  // port, so it outlives its transport; every retry redials a dead port.
  transport.reset();
  const auto start = std::chrono::steady_clock::now();
  for (int attempt = 0; attempt < 3; ++attempt) {
    channel->ExecuteRing({&wr, 1}, {&completion, 1}, {});
    EXPECT_EQ(completion.status, WcStatus::kRemoteUnreachable);
  }
  // 3 refused dials + jittered backoffs (≤ 1.5+3+6 ms) come back in well
  // under a second; a blocking connect would sit in SYN retries for minutes.
  EXPECT_LT(WallNsSince(start), 2'000'000'000u);
}

// --- satellite 2: wall-clock deadline vs a hung server ------------------

TEST(ChaosTcpHangTest, RetryDeadlineExpiresAgainstAHungServer) {
  TransportOptions options = TransportOptions::Tcp();
  options.tcp_recv_timeout_ms = 50;  // each stalled ring burns 50 ms of wall
  auto made = TcpTransport::Create(options);
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  std::unique_ptr<TcpTransport> transport = std::move(made).value();
  const rdma::NodeId node = transport->AddNode("mem");
  auto rkey = transport->RegisterMemory(node, 4096, 64);
  ASSERT_TRUE(rkey.ok());
  auto channel = transport->CreateChannel();

  transport->set_hang_handlers(true);  // alive at the TCP level, never answers

  RetryPolicy policy;
  policy.max_attempts = 1000;            // attempts would never stop us
  policy.initial_backoff_ns = 1'000'000; // 1 ms
  policy.max_backoff_ns = 4'000'000;
  policy.deadline_ns = 400'000'000;      // 400 ms of WALL time

  // Null SimClock + real_sleep: the deadline must be enforced from the wall
  // clock alone — this is the regression for the dual-clock contract (a
  // sim-clock-gated check would loop all 1000 attempts here).
  RetryBudget budget(policy, /*clock=*/nullptr, /*real_sleep=*/true);
  const auto start = std::chrono::steady_clock::now();
  std::vector<uint8_t> buf(16, 0);
  rdma::WorkRequest wr;
  wr.opcode = rdma::Opcode::kRead;
  wr.rkey = rkey.value();
  wr.local = buf;
  rdma::Completion completion;
  uint32_t failures = 0;
  for (;;) {
    channel->ExecuteRing({&wr, 1}, {&completion, 1}, {});
    EXPECT_EQ(completion.status, WcStatus::kTimeout);
    ++failures;
    if (!budget.AllowRetry(failures)) break;
    ASSERT_LT(failures, 1000u) << "deadline never expired";
  }
  const uint64_t elapsed = WallNsSince(start);
  // The deadline bit: we stopped after a handful of 50 ms stalls, not after
  // 1000 attempts, and roughly when the budget said so (generous upper bound
  // for loaded CI machines).
  EXPECT_GE(failures, 2u);
  EXPECT_LT(failures, 64u);
  EXPECT_GE(elapsed, 100'000'000u);
  EXPECT_LT(elapsed, 30'000'000'000u);

  // Un-hang and confirm the server survived its parked handlers: a fresh
  // connection serves normally (the old ones died with the client timeouts).
  transport->set_hang_handlers(false);
  auto healthy = transport->CreateChannel();
  wr.opcode = rdma::Opcode::kWrite;
  channel = nullptr;
  healthy->ExecuteRing({&wr, 1}, {&completion, 1}, {});
  EXPECT_EQ(completion.status, WcStatus::kSuccess);
}

// --- satellite 3: malformed frames never crash/hang/allocate the server --

/// Mirrors the private wire structs of tcp_transport.cpp. Kept in sync by
/// the asserts below; the protocol is internal, so this duplication is the
/// test's eyes into it.
struct RawWireWr {
  uint8_t opcode = 0;
  uint8_t pad[3] = {0, 0, 0};
  uint32_t rkey = 0;
  uint64_t remote_offset = 0;
  uint64_t length = 0;
  uint64_t expected_epoch = 0;
  uint64_t compare = 0;
  uint64_t swap_or_add = 0;
};
static_assert(sizeof(RawWireWr) == 48);

struct RawFrameHeader {
  uint32_t magic = 0x64524e47;
  uint32_t num_wrs = 0;
};
static_assert(sizeof(RawFrameHeader) == 8);

class RawSocket {
 public:
  explicit RawSocket(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~RawSocket() { Close(); }

  bool ok() const { return fd_ >= 0; }
  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }
  bool Send(const void* data, size_t len) {
    return fd_ >= 0 &&
           ::send(fd_, data, len, MSG_NOSIGNAL) == static_cast<ssize_t>(len);
  }
  /// True when the server closed its end (EOF within `timeout_ms`).
  bool ServerClosed(int timeout_ms = 5000) {
    if (fd_ < 0) return false;
    timeval tv{};
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = (timeout_ms % 1000) * 1000;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    char byte;
    return ::recv(fd_, &byte, 1, 0) == 0;
  }

 private:
  int fd_ = -1;
};

TEST(ChaosTcpMalformedFrameTest, ServerDropsViolatingConnectionsAndServesOn) {
  auto made = TcpTransport::Create(TransportOptions::Tcp());
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  std::unique_ptr<TcpTransport> transport = std::move(made).value();
  const rdma::NodeId node = transport->AddNode("mem");
  auto rkey = transport->RegisterMemory(node, 4096, 64);
  ASSERT_TRUE(rkey.ok());

  struct Case {
    const char* name;
    std::vector<uint8_t> bytes;  // sent, then the client goes silent
    /// True when the malformation IS the client dying mid-frame: the server
    /// sits in ReadFull until our close delivers EOF, so the test closes
    /// instead of waiting for the server's half-close.
    bool close_after_send = false;
  };
  const auto header_bytes = [](uint32_t magic, uint32_t num_wrs) {
    RawFrameHeader h;
    h.magic = magic;
    h.num_wrs = num_wrs;
    std::vector<uint8_t> out(sizeof h);
    std::memcpy(out.data(), &h, sizeof h);
    return out;
  };
  const auto with_descriptor = [&](RawWireWr w) {
    std::vector<uint8_t> out = header_bytes(0x64524e47, 1);
    out.resize(out.size() + sizeof w);
    std::memcpy(out.data() + sizeof(RawFrameHeader), &w, sizeof w);
    return out;
  };

  RawWireWr absurd_len;
  absurd_len.opcode = 0;                        // kRead
  absurd_len.rkey = rkey.value();
  absurd_len.length = (1ull << 32) + 1;         // > kMaxPayloadPerWr
  RawWireWr write_wr;
  write_wr.opcode = 1;                          // kWrite
  write_wr.rkey = rkey.value();
  write_wr.length = 1024;                       // promises a payload

  std::vector<Case> cases;
  cases.push_back({"truncated header", {0x47, 0x4e, 0x52}, true});
  cases.push_back({"bad magic", header_bytes(0xdeadbeef, 1)});
  cases.push_back({"zero wrs", header_bytes(0x64524e47, 0)});
  // Absurd num_wrs: the cap must reject it BEFORE the descriptor allocation
  // (num_wrs * 48 bytes would be ~200 GB here).
  cases.push_back({"absurd num_wrs", header_bytes(0x64524e47, 0xffffffffu)});
  cases.push_back({"absurd per-wr length", with_descriptor(absurd_len)});
  // Mid-payload disconnect: full header + descriptor, then the client dies
  // before sending the promised 1024 payload bytes.
  cases.push_back({"mid-payload disconnect", with_descriptor(write_wr), true});

  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    RawSocket raw(transport->port());
    ASSERT_TRUE(raw.ok());
    ASSERT_TRUE(raw.Send(c.bytes.data(), c.bytes.size()));
    if (c.close_after_send) {
      raw.Close();  // the client dying mid-frame IS the malformation
    } else {
      // The server must half-close (EOF to us) rather than answer, crash,
      // or hang — and without allocating what the frame claimed to need.
      EXPECT_TRUE(raw.ServerClosed());
    }

    // After every abuse, a well-formed client still gets served.
    auto channel = transport->CreateChannel();
    std::vector<uint8_t> buf(16, 0x42);
    rdma::WorkRequest wr;
    wr.opcode = rdma::Opcode::kWrite;
    wr.rkey = rkey.value();
    wr.local = buf;
    rdma::Completion completion;
    channel->ExecuteRing({&wr, 1}, {&completion, 1}, {});
    EXPECT_EQ(completion.status, WcStatus::kSuccess);
  }
}

// --- sim degrade path ----------------------------------------------------

TEST(ChaosSimTest, DisconnectDegradesToSingleWrUnreachableOnTheSimulator) {
  // The sim has no connection to sever: kDisconnect behaves as a per-WR
  // kUnreachable there, and sibling WRs in the same ring still execute —
  // preserving the byte-identical historical trace contract.
  Fabric fabric(NicModelConfig{}, TransportOptions::Sim());
  const rdma::NodeId node = fabric.AddNode("mem");
  fabric.AddNode("compute");
  auto rkey = fabric.RegisterMemory(node, 4096);
  ASSERT_TRUE(rkey.ok());

  FaultPlan plan(21);
  FaultRule rule;
  rule.kind = FaultKind::kDisconnect;
  rule.skip_first = 1;
  rule.max_triggers = 1;
  plan.Add(rule);
  ASSERT_TRUE(fabric.ArmFaults(plan).ok());

  SimClock clock;
  rdma::QueuePair qp(&fabric, &clock);
  std::vector<uint8_t> a(16, 0x01), b(16, 0x02), c(16, 0x03);
  qp.PostWrite(rkey.value(), 0, a, 1);
  qp.PostWrite(rkey.value(), 64, b, 2);
  qp.PostWrite(rkey.value(), 128, c, 3);
  std::vector<rdma::Completion> completions = qp.Flush();
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_EQ(completions[0].status, WcStatus::kSuccess);
  EXPECT_EQ(completions[1].status, WcStatus::kRemoteUnreachable);
  EXPECT_EQ(completions[2].status, WcStatus::kSuccess);  // sim: ring survives
  EXPECT_EQ(qp.stats().injected_faults, 1u);
  fabric.ClearFaults();
}

}  // namespace
}  // namespace dhnsw
