// End-to-end corruption handling: when bytes in remote memory are damaged
// (bit rot, torn concurrent rewrite), compute nodes must surface CORRUPTION
// from the CRC check instead of serving wrong answers — and recover once the
// damage is repaired.
#include <gtest/gtest.h>

#include "core/engine.h"
#include "dataset/synthetic.h"
#include <cstring>

#include "rdma/fault_injection.h"
#include "rdma/memory_region.h"
#include "serialize/overflow.h"

namespace dhnsw {
namespace {

struct Rig {
  Dataset ds;
  DhnswEngine engine;
};

Rig BuildRig() {
  Dataset ds = MakeSynthetic({.dim = 8, .num_base = 800, .num_queries = 10,
                              .num_clusters = 5, .seed = 161});
  DhnswConfig config = DhnswConfig::Defaults();
  // Wire bit-flips are injected via FaultPlan — simulator-only.
  config.transport = rdma::TransportOptions::Sim();
  config.meta.num_representatives = 8;
  config.sub_hnsw = HnswOptions{.M = 8, .ef_construction = 40};
  config.compute.clusters_per_query = 3;
  config.compute.cache_capacity = 3;
  auto engine = DhnswEngine::Build(ds.base, config);
  EXPECT_TRUE(engine.ok());
  return Rig{std::move(ds), std::move(engine).value()};
}

TEST(CorruptionPathTest, DamagedClusterPayloadSurfacesCorruption) {
  Rig rig = BuildRig();
  const MemoryNodeHandle& handle = rig.engine.memory_handle();
  const LayoutPlan& plan = rig.engine.memory_node()->plan();

  // Flip a byte inside cluster 0's blob payload (past its 48-byte header).
  rdma::MemoryRegion* region = rig.engine.fabric().FindRegion(handle.rkey);
  ASSERT_NE(region, nullptr);
  const uint64_t victim = plan.entries[0].blob_offset + 100;
  region->host_span()[victim] ^= 0xFF;

  rig.engine.compute(0).InvalidateCache();
  const auto result = rig.engine.SearchAll(rig.ds.queries, 5, 32);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);

  // Repair and retry: the system recovers without rebuilding.
  region->host_span()[victim] ^= 0xFF;
  rig.engine.compute(0).InvalidateCache();
  EXPECT_TRUE(rig.engine.SearchAll(rig.ds.queries, 5, 32).ok());
}

TEST(CorruptionPathTest, DamagedMetaBlobFailsConnect) {
  Rig rig = BuildRig();
  const MemoryNodeHandle& handle = rig.engine.memory_handle();
  const LayoutPlan& plan = rig.engine.memory_node()->plan();

  rdma::MemoryRegion* region = rig.engine.fabric().FindRegion(handle.rkey);
  ASSERT_NE(region, nullptr);
  region->host_span()[plan.header.meta_blob_offset + 200] ^= 0xFF;

  ComputeOptions options;
  options.clusters_per_query = 3;
  ComputeNode fresh(&rig.engine.fabric(), handle, options);
  const Status st = fresh.Connect();
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
}

TEST(CorruptionPathTest, DamagedRegionHeaderFailsConnect) {
  Rig rig = BuildRig();
  rdma::MemoryRegion* region =
      rig.engine.fabric().FindRegion(rig.engine.memory_handle().rkey);
  ASSERT_NE(region, nullptr);
  region->host_span()[0] ^= 0xFF;  // magic

  ComputeOptions options;
  ComputeNode fresh(&rig.engine.fabric(), rig.engine.memory_handle(), options);
  EXPECT_EQ(fresh.Connect().code(), StatusCode::kCorruption);
}

TEST(CorruptionPathTest, WrongBlobAtOffsetDetectedByPartitionCheck) {
  // Simulate a misdirected write: cluster 1's metadata points at cluster 0's
  // blob bytes. The partition-id check must catch the mismatch even though
  // the blob itself is internally consistent.
  Rig rig = BuildRig();
  const LayoutPlan& plan = rig.engine.memory_node()->plan();
  rdma::MemoryRegion* region =
      rig.engine.fabric().FindRegion(rig.engine.memory_handle().rkey);
  ASSERT_NE(region, nullptr);

  // Copy blob 0 over blob 1's location (both fit: copy min of sizes — only
  // the header + payload prefix matter for the check).
  const ClusterMeta& m0 = plan.entries[0];
  const ClusterMeta& m1 = plan.entries[1];
  const uint64_t n = std::min(m0.blob_size, m1.blob_size);
  auto mem = region->host_span();
  std::memmove(mem.data() + m1.blob_offset, mem.data() + m0.blob_offset, n);

  // A node that fans out to every partition is guaranteed to touch the
  // damaged cluster.
  ComputeOptions options;
  options.clusters_per_query = rig.engine.num_partitions();
  options.cache_capacity = rig.engine.num_partitions();
  ComputeNode wide(&rig.engine.fabric(), rig.engine.memory_handle(), options);
  ASSERT_TRUE(wide.Connect().ok());
  const auto result = wide.SearchAll(rig.ds.queries, 5, 32);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(CorruptionPathTest, WireBitFlipInOverflowRecordIsDetectedThenRetried) {
  // A record in the shared overflow region crosses the wire with a flipped
  // vector byte: the per-record CRC must surface kCorruption; since the
  // damage was transient (the bytes in remote memory are fine), a retry
  // budget re-reads cleanly and the search succeeds.
  Rig rig = BuildRig();
  ComputeNode& node = rig.engine.compute(0);

  std::vector<float> v(rig.ds.base[0].begin(), rig.ds.base[0].end());
  auto receipt = node.Insert(v, /*global_id=*/50'000);
  ASSERT_TRUE(receipt.ok());

  // Transient single-shot flip scoped to the record's vector bytes — the id
  // and flags (committed bit) stay intact, so detection is guaranteed.
  rdma::FaultRule rule;
  rule.kind = rdma::FaultKind::kBitFlip;
  rule.opcode = rdma::Opcode::kRead;
  rule.offset_lo = receipt.value().remote_offset + 12;
  rule.offset_hi = receipt.value().remote_offset + 12 + 4 * rig.engine.dim();
  rule.max_triggers = 1;

  // Fan out to every partition so the batch definitely loads the record's
  // cluster (overflow included) over the faulty wire.
  node.mutable_options()->clusters_per_query = rig.engine.num_partitions();
  node.mutable_options()->cache_capacity = rig.engine.num_partitions();

  ASSERT_TRUE(rig.engine.fabric().ArmFaults(rdma::FaultPlan(1).Add(rule)).ok());
  node.InvalidateCache();
  const auto detected = rig.engine.SearchAll(rig.ds.queries, 5, 32);
  ASSERT_FALSE(detected.ok());
  EXPECT_EQ(detected.status().code(), StatusCode::kCorruption);

  // Re-arm (fresh trigger budget) and enable retries: detect -> re-read ->
  // success, with the recovery visible in the breakdown.
  ASSERT_TRUE(rig.engine.fabric().ArmFaults(rdma::FaultPlan(1).Add(rule)).ok());
  node.mutable_options()->retry = RetryPolicy::Default();
  node.InvalidateCache();
  const auto healed = rig.engine.SearchAll(rig.ds.queries, 5, 32);
  rig.engine.fabric().ClearFaults();
  ASSERT_TRUE(healed.ok()) << healed.status().ToString();
  EXPECT_GT(healed.value().breakdown.retries, 0u);
}

TEST(CorruptionPathTest, WireBitFlipInMetadataBlockIsDetectedThenRetried) {
  // Same story for the global metadata block: a flip in a table entry's
  // CRC-covered static fields is caught by DecodeClusterMeta, and the
  // per-batch RefreshMetadata read retries through it.
  Rig rig = BuildRig();
  ComputeNode& node = rig.engine.compute(0);
  const LayoutPlan& plan = rig.engine.memory_node()->plan();

  rdma::FaultRule rule;
  rule.kind = rdma::FaultKind::kBitFlip;
  rule.opcode = rdma::Opcode::kRead;
  // First 32 bytes of entry 0: blob/overflow offsets, all CRC-covered.
  rule.offset_lo = plan.header.table_offset;
  rule.offset_hi = plan.header.table_offset + 32;
  rule.max_triggers = 1;

  ASSERT_TRUE(rig.engine.fabric().ArmFaults(rdma::FaultPlan(2).Add(rule)).ok());
  const auto detected = rig.engine.SearchAll(rig.ds.queries, 5, 32);
  ASSERT_FALSE(detected.ok());
  EXPECT_EQ(detected.status().code(), StatusCode::kCorruption);

  ASSERT_TRUE(rig.engine.fabric().ArmFaults(rdma::FaultPlan(2).Add(rule)).ok());
  node.mutable_options()->retry = RetryPolicy::Default();
  const auto healed = rig.engine.SearchAll(rig.ds.queries, 5, 32);
  rig.engine.fabric().ClearFaults();
  ASSERT_TRUE(healed.ok()) << healed.status().ToString();
  EXPECT_GT(healed.value().breakdown.retries, 0u);
}

}  // namespace
}  // namespace dhnsw
