#include "cli.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <map>

#include "common/rng.h"
#include "common/timer.h"
#include "core/compute_pool.h"
#include "core/engine.h"
#include "core/workload_gen.h"
#include "rdma/fault_injection.h"
#include "rdma/queue_pair.h"
#include "dataset/ground_truth.h"
#include "dataset/synthetic.h"
#include "dataset/vecs_io.h"

namespace dhnsw::cli {
namespace {

/// printf-append onto the output string.
void Emit(std::string* out, const char* fmt, ...) {
  char line[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(line, sizeof line, fmt, args);
  va_end(args);
  *out += line;
  *out += '\n';
}

struct Flags {
  std::map<std::string, std::string> values;

  std::string Get(const std::string& key, const std::string& fallback = "") const {
    auto it = values.find(key);
    return it == values.end() ? fallback : it->second;
  }
  uint64_t GetU64(const std::string& key, uint64_t fallback) const {
    auto it = values.find(key);
    return it == values.end() ? fallback : std::strtoull(it->second.c_str(), nullptr, 10);
  }
  double GetF64(const std::string& key, double fallback) const {
    auto it = values.find(key);
    return it == values.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
  }
  bool Has(const std::string& key) const { return values.count(key) != 0; }
};

Result<Flags> ParseFlags(const std::vector<std::string>& args, size_t first) {
  Flags flags;
  for (size_t i = first; i < args.size(); ++i) {
    const std::string& arg = args[i];
    const auto eq = arg.find('=');
    if (arg.rfind("--", 0) != 0 || eq == std::string::npos) {
      return Status::InvalidArgument("expected --key=value, got: " + arg);
    }
    flags.values[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
  }
  return flags;
}

Result<Metric> ParseMetric(const std::string& name) {
  if (name == "l2") return Metric::kL2;
  if (name == "ip") return Metric::kInnerProduct;
  if (name == "cosine") return Metric::kCosine;
  return Status::InvalidArgument("unknown metric: " + name + " (l2|ip|cosine)");
}

DhnswConfig ConfigFromFlags(const Flags& flags, Metric metric) {
  DhnswConfig config = DhnswConfig::Defaults(metric);
  config.meta.num_representatives =
      static_cast<uint32_t>(flags.GetU64("reps", 500));
  config.sub_hnsw.M = static_cast<uint32_t>(flags.GetU64("m", 16));
  config.sub_hnsw.ef_construction = static_cast<uint32_t>(flags.GetU64("efc", 100));
  config.compute.clusters_per_query = static_cast<uint32_t>(flags.GetU64("b", 4));
  config.compute.cache_capacity = static_cast<uint32_t>(flags.GetU64(
      "cache", std::max<uint64_t>(1, config.meta.num_representatives / 10)));
  config.num_memory_nodes = flags.GetU64("shards", 1);
  return config;
}

Status CmdBuild(const Flags& flags, std::string* out) {
  const std::string base_path = flags.Get("base");
  const std::string out_path = flags.Get("out");
  if (base_path.empty() || out_path.empty()) {
    return Status::InvalidArgument("build requires --base=<fvecs> and --out=<snapshot>");
  }
  DHNSW_ASSIGN_OR_RETURN(VectorSet base,
                         ReadFvecs(base_path, flags.GetU64("max_rows", 0)));
  DHNSW_ASSIGN_OR_RETURN(const Metric metric, ParseMetric(flags.Get("metric", "l2")));
  Emit(out, "loaded %zu vectors (dim %u) from %s", base.size(), base.dim(),
       base_path.c_str());

  WallTimer timer;
  DHNSW_ASSIGN_OR_RETURN(DhnswEngine engine,
                         DhnswEngine::Build(base, ConfigFromFlags(flags, metric)));
  Emit(out, "built %u partitions in %.1f ms (meta-HNSW %.1f KB)",
       engine.num_partitions(), timer.elapsed_ms(),
       static_cast<double>(engine.meta_blob_bytes()) / 1024.0);
  DHNSW_RETURN_IF_ERROR(engine.SaveSnapshot(out_path));
  Emit(out, "snapshot written to %s", out_path.c_str());
  return Status::Ok();
}

/// Shared open-from-snapshot helper. `next_global_id` conservatively starts
/// beyond any id a snapshot may hold (exact id continuity is persisted data
/// the CLI does not track across runs).
Result<DhnswEngine> OpenSnapshot(const Flags& flags, Metric metric) {
  const std::string path = flags.Get("snapshot");
  if (path.empty()) return Status::InvalidArgument("missing --snapshot=<file>");
  DhnswConfig config = ConfigFromFlags(flags, metric);
  return DhnswEngine::BuildFromSnapshot(
      path, config, static_cast<uint32_t>(flags.GetU64("next_id", 1u << 30)));
}

Status CmdQuery(const Flags& flags, std::string* out) {
  const std::string query_path = flags.Get("queries");
  if (query_path.empty()) return Status::InvalidArgument("missing --queries=<fvecs>");
  DHNSW_ASSIGN_OR_RETURN(const Metric metric, ParseMetric(flags.Get("metric", "l2")));
  DHNSW_ASSIGN_OR_RETURN(DhnswEngine engine, OpenSnapshot(flags, metric));
  DHNSW_ASSIGN_OR_RETURN(VectorSet queries,
                         ReadFvecs(query_path, flags.GetU64("max_rows", 0)));

  const size_t k = flags.GetU64("k", 10);
  const uint32_t ef = static_cast<uint32_t>(flags.GetU64("ef", 48));
  DHNSW_ASSIGN_OR_RETURN(BatchResult result, engine.SearchAll(queries, k, ef));

  const BatchBreakdown& b = result.breakdown;
  Emit(out, "searched %zu queries, k=%zu, efSearch=%u over %u partitions",
       queries.size(), k, ef, engine.num_partitions());
  Emit(out, "network %.1f us (%.4f RT/query), meta %.1f us, sub %.1f us, %lu loads",
       b.network_us, b.per_query_round_trips(), b.meta_us, b.sub_us,
       static_cast<unsigned long>(b.clusters_loaded));

  if (flags.Has("gt")) {
    DHNSW_ASSIGN_OR_RETURN(IvecsData gt, ReadIvecs(flags.Get("gt"), queries.size()));
    if (gt.rows() < queries.size() || gt.row_dim < k) {
      return Status::InvalidArgument("ground truth too small for this query set / k");
    }
    double total = 0.0;
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      total += RecallAtK(result.results[qi],
                         {gt.values.data() + qi * gt.row_dim, gt.row_dim}, k);
    }
    Emit(out, "recall@%zu = %.4f", k, total / static_cast<double>(queries.size()));
  }

  if (flags.Has("out")) {
    IvecsData ids;
    ids.row_dim = static_cast<uint32_t>(k);
    for (const auto& top : result.results) {
      for (size_t j = 0; j < k; ++j) {
        ids.values.push_back(j < top.size() ? top[j].id : 0xFFFFFFFFu);
      }
    }
    DHNSW_RETURN_IF_ERROR(WriteIvecs(flags.Get("out"), ids));
    Emit(out, "result ids written to %s", flags.Get("out").c_str());
  }
  return Status::Ok();
}

Status CmdInsert(const Flags& flags, std::string* out) {
  const std::string vec_path = flags.Get("vectors");
  const std::string out_path = flags.Get("out");
  if (vec_path.empty() || out_path.empty()) {
    return Status::InvalidArgument("insert requires --vectors=<fvecs> and --out=<snapshot>");
  }
  DHNSW_ASSIGN_OR_RETURN(const Metric metric, ParseMetric(flags.Get("metric", "l2")));
  DHNSW_ASSIGN_OR_RETURN(DhnswEngine engine, OpenSnapshot(flags, metric));
  DHNSW_ASSIGN_OR_RETURN(VectorSet vectors,
                         ReadFvecs(vec_path, flags.GetU64("max_rows", 0)));

  std::vector<size_t> rejected;
  DHNSW_ASSIGN_OR_RETURN(const uint32_t first_id, engine.InsertBatch(vectors, &rejected));
  Emit(out, "inserted %zu vectors (ids from %u), %zu rejected (overflow full)",
       vectors.size() - rejected.size(), first_id, rejected.size());
  if (!rejected.empty()) {
    Emit(out, "hint: run `compact` to fold overflow into the base blobs");
  }
  DHNSW_RETURN_IF_ERROR(engine.SaveSnapshot(out_path));
  Emit(out, "snapshot written to %s", out_path.c_str());
  return Status::Ok();
}

Status CmdCompact(const Flags& flags, std::string* out) {
  const std::string out_path = flags.Get("out");
  if (out_path.empty()) return Status::InvalidArgument("compact requires --out=<snapshot>");
  DHNSW_ASSIGN_OR_RETURN(const Metric metric, ParseMetric(flags.Get("metric", "l2")));
  DHNSW_ASSIGN_OR_RETURN(DhnswEngine engine, OpenSnapshot(flags, metric));

  DHNSW_ASSIGN_OR_RETURN(CompactionStats stats, engine.Compact());
  Emit(out, "compacted %u clusters: folded %u inserts, applied %u tombstones",
       stats.clusters, stats.live_records_folded, stats.tombstones_applied);
  DHNSW_RETURN_IF_ERROR(engine.SaveSnapshot(out_path));
  Emit(out, "snapshot written to %s", out_path.c_str());
  return Status::Ok();
}

Status CmdInfo(const Flags& flags, std::string* out) {
  DHNSW_ASSIGN_OR_RETURN(const Metric metric, ParseMetric(flags.Get("metric", "l2")));
  DHNSW_ASSIGN_OR_RETURN(DhnswEngine engine, OpenSnapshot(flags, metric));
  *out += engine.DebugString();
  *out += '\n';
  const auto& sizes = engine.partition_sizes();
  if (!sizes.empty()) {
    Emit(out, "partition sizes: %zu entries", sizes.size());
  } else {
    Emit(out, "dim %u, %u partitions (sizes live in the blobs)", engine.dim(),
         engine.num_partitions());
  }
  return Status::Ok();
}

Status CmdStats(const Flags& flags, std::string* out) {
  DHNSW_ASSIGN_OR_RETURN(const Metric metric, ParseMetric(flags.Get("metric", "l2")));
  DHNSW_ASSIGN_OR_RETURN(DhnswEngine engine, OpenSnapshot(flags, metric));

  // Optionally drive a query batch first so the snapshot shows live counters
  // (loads, rings, cache traffic), not just topology.
  if (flags.Has("queries")) {
    DHNSW_ASSIGN_OR_RETURN(VectorSet queries,
                           ReadFvecs(flags.Get("queries"), flags.GetU64("max_rows", 0)));
    const size_t k = flags.GetU64("k", 10);
    const uint32_t ef = static_cast<uint32_t>(flags.GetU64("ef", 48));
    DHNSW_ASSIGN_OR_RETURN(BatchResult result, engine.SearchAll(queries, k, ef));
    Emit(out, "# ran %zu queries (k=%zu, efSearch=%u) before sampling",
         queries.size(), k, ef);
    (void)result;
  }
  *out += engine.MetricsText();
  return Status::Ok();
}

Status CmdTrace(const Flags& flags, std::string* out) {
  const std::string query_path = flags.Get("queries");
  if (query_path.empty()) return Status::InvalidArgument("trace requires --queries=<fvecs>");
  DHNSW_ASSIGN_OR_RETURN(const Metric metric, ParseMetric(flags.Get("metric", "l2")));
  DHNSW_ASSIGN_OR_RETURN(DhnswEngine engine, OpenSnapshot(flags, metric));
  DHNSW_ASSIGN_OR_RETURN(VectorSet queries,
                         ReadFvecs(query_path, flags.GetU64("max_rows", 0)));

  engine.EnableTracing(flags.GetU64("capacity", 65536));
  const size_t k = flags.GetU64("k", 10);
  const uint32_t ef = static_cast<uint32_t>(flags.GetU64("ef", 48));
  DHNSW_ASSIGN_OR_RETURN(BatchResult result, engine.SearchAll(queries, k, ef));
  (void)result;

  // --deterministic=1 drops wall_ns so same-seed runs are byte-identical.
  telemetry::TraceExportOptions options;
  options.include_wall = flags.GetU64("deterministic", 0) == 0;
  const telemetry::TraceBuffer& trace = engine.trace(0);
  if (flags.Has("out")) {
    DHNSW_RETURN_IF_ERROR(telemetry::WriteTraceJsonl(trace, flags.Get("out"), options));
    Emit(out, "wrote %zu spans (%llu dropped) to %s", trace.size(),
         static_cast<unsigned long long>(trace.dropped()), flags.Get("out").c_str());
  } else {
    *out += telemetry::TraceToJsonl(trace, options);
  }
  return Status::Ok();
}

Status CmdTopology(const Flags& flags, std::string* out) {
  // Synthetic stand-in deployment: `topology` demonstrates the replication
  // control plane — per-node health, fence epochs, failover, and online
  // re-replication — without needing a snapshot on disk. `--kill=<slot>`
  // crashes that slot's current primary and lets the probe loop detect it;
  // `--rereplicate=1` then restores the configured factor.
  const uint32_t replicas = static_cast<uint32_t>(flags.GetU64("replicas", 2));
  const uint32_t clusters = static_cast<uint32_t>(flags.GetU64("clusters", 4));
  const Dataset ds =
      MakeSynthetic({.dim = static_cast<uint32_t>(flags.GetU64("dim", 8)),
                     .num_base = static_cast<uint32_t>(flags.GetU64("rows", 600)),
                     .num_queries = 8,
                     .num_clusters = clusters,
                     .seed = flags.GetU64("seed", 42)});
  DhnswConfig config = DhnswConfig::Defaults();
  config.meta.num_representatives = clusters;
  config.compute.cache_capacity = clusters;
  config.replication.factor = replicas;
  DHNSW_ASSIGN_OR_RETURN(DhnswEngine engine, DhnswEngine::Build(ds.base, config));

  ReplicaManager* manager = engine.replication();
  if (manager == nullptr) {
    Emit(out, "replication disabled (factor 1): single-copy memory pool");
    return Status::Ok();
  }

  if (flags.Has("kill")) {
    const uint32_t slot = static_cast<uint32_t>(flags.GetU64("kill", 0));
    if (slot >= manager->num_slots()) {
      return Status::InvalidArgument("--kill: no such slot");
    }
    DHNSW_ASSIGN_OR_RETURN(const rdma::NodeId owner,
                           engine.fabric().OwnerOf(manager->PrimaryRoute(slot).rkey));
    engine.fabric().SetNodeReachable(owner, false);
    Emit(out, "killed %s (slot %u primary)", engine.fabric().NodeName(owner).c_str(), slot);
    const uint32_t ticks = manager->options().dead_after_misses;
    for (uint32_t i = 0; i < ticks; ++i) manager->Tick();
    Emit(out, "probe loop declared it dead after %u tick(s); failed over", ticks);
    if (flags.GetU64("rereplicate", 0) != 0) {
      DHNSW_RETURN_IF_ERROR(manager->RereplicateAll());
      Emit(out, "re-replicated: factor %u restored online", manager->factor());
    }
  }

  // Prove the topology still serves before printing it.
  DHNSW_ASSIGN_OR_RETURN(const BatchResult probe, engine.SearchAll(ds.queries, 5, 64));
  Emit(out, "search served %zu/%zu queries through this topology",
       probe.statuses.size(), ds.queries.size());
  *out += manager->TopologyText();
  return Status::Ok();
}

Status CmdScaleout(const Flags& flags, std::string* out) {
  // Synthetic stand-in deployment for the compute pool (DESIGN.md §12):
  // N ComputeNode instances over one memory pool, driven by the open-loop
  // workload generator. `--drain=1` runs the deterministic backpressure mode
  // (kLeastAssigned dispatch); the default is paced open-loop at `--qps`
  // with load-aware dispatch and admission control, where drops under
  // overload are the expected signal.
  const uint32_t nodes = static_cast<uint32_t>(flags.GetU64("nodes", 4));
  const uint32_t clusters = static_cast<uint32_t>(flags.GetU64("clusters", 8));
  const uint32_t rows = static_cast<uint32_t>(flags.GetU64("rows", 3000));
  if (nodes == 0) return Status::InvalidArgument("--nodes must be >= 1");
  const Dataset ds =
      MakeSynthetic({.dim = static_cast<uint32_t>(flags.GetU64("dim", 16)),
                     .num_base = rows,
                     .num_queries = 8,
                     .num_clusters = clusters,
                     .seed = flags.GetU64("seed", 42)});
  DhnswConfig config = DhnswConfig::Defaults();
  config.meta.num_representatives = clusters;
  config.compute.cache_capacity = std::max(1u, clusters / 2);
  config.num_compute_nodes = nodes;
  DHNSW_ASSIGN_OR_RETURN(DhnswEngine engine, DhnswEngine::Build(ds.base, config));

  WorkloadGenOptions wopt;
  wopt.seed = flags.GetU64("seed", 42);
  wopt.num_ops = flags.GetU64("ops", 2000);
  wopt.target_qps = flags.GetF64("qps", 20000.0);
  wopt.read_fraction = flags.GetF64("read_fraction", 0.9);
  wopt.zipf_s = flags.GetF64("zipf", 1.1);
  wopt.num_topics = clusters;
  wopt.num_tenants = static_cast<uint32_t>(flags.GetU64("tenants", 2));
  wopt.first_insert_id = rows;
  WorkloadGenerator gen(ds.base, wopt);
  const auto ops = gen.Generate();

  const bool drain = flags.GetU64("drain", 0) != 0;
  ComputePoolOptions popt;
  popt.dispatch =
      drain ? DispatchPolicy::kLeastAssigned : DispatchPolicy::kLeastLoaded;
  popt.k = flags.GetU64("k", 10);
  popt.ef_search = static_cast<uint32_t>(flags.GetU64("ef", 48));
  popt.num_tenants = wopt.num_tenants;
  popt.admission.node_queue_capacity = flags.GetU64("queue_capacity", 64);
  popt.admission.tenant_inflight_limit = flags.GetU64("tenant_limit", 0);
  ComputePool pool(engine.compute_nodes(), popt);
  const PoolRunStats stats =
      pool.Run(ops, drain ? PoolRunMode::kDrain : PoolRunMode::kPaced);

  Emit(out, "scaleout: %u nodes, %zu ops (%.0f%% reads), %s", nodes, ops.size(),
       wopt.read_fraction * 100.0,
       drain ? "drain (deterministic backpressure)"
             : "paced open-loop with admission control");
  Emit(out, "admitted %llu  ok %llu  failed %llu  dropped %llu "
       "(queue %llu, tenant %llu, invalid %llu)",
       static_cast<unsigned long long>(stats.admitted),
       static_cast<unsigned long long>(stats.completed_ok),
       static_cast<unsigned long long>(stats.failed),
       static_cast<unsigned long long>(stats.dropped()),
       static_cast<unsigned long long>(stats.dropped_queue_full),
       static_cast<unsigned long long>(stats.dropped_tenant_limit),
       static_cast<unsigned long long>(stats.dropped_invalid));
  Emit(out, "offered %.0f ops/s  achieved %.0f ops/s", stats.offered_qps,
       stats.achieved_qps);
  Emit(out, "sojourn p50 %.1f us  p99 %.1f us  p999 %.1f us",
       stats.latency_us.p50(), stats.latency_us.p99(),
       stats.latency_us.percentile(99.9));
  std::string per_node = "per-node ops:";
  for (size_t i = 0; i < stats.per_node_ops.size(); ++i) {
    per_node += " node" + std::to_string(i) + "=" +
                std::to_string(stats.per_node_ops[i]);
  }
  Emit(out, "%s", per_node.c_str());
  for (uint32_t t = 0; t < wopt.num_tenants; ++t) {
    if (stats.per_tenant_drops[t] != 0) {
      Emit(out, "tenant %u: %llu drops", t,
           static_cast<unsigned long long>(stats.per_tenant_drops[t]));
    }
  }
  return Status::Ok();
}

Status CmdChaos(const Flags& flags, std::string* out) {
  // Chaos drill on a synthetic deployment: build, record the fault-free
  // oracle, arm a seeded FaultPlan on the fabric (any backend — the chaos
  // decorator injects on real sockets, the simulator in ExecuteWr), replay
  // the batch with retries, and report whether it converged. Two schedules:
  //   --mode=transient  bounded budget of unreachable/timeout/bit-flip/delay
  //                     rules; a retry policy that outlasts it must converge
  //   --mode=kill       the slot-0 primary dies mid-batch (every verb against
  //                     its region fails forever, probes included); with
  //                     --replicas>=2 the batch drives detection + epoch-
  //                     fenced failover and converges on the promoted copy
  const std::string mode = flags.Get("mode", "transient");
  if (mode != "transient" && mode != "kill") {
    return Status::InvalidArgument("--mode must be transient|kill, got: " + mode);
  }
  const uint32_t replicas = static_cast<uint32_t>(
      flags.GetU64("replicas", mode == "kill" ? 2 : 1));
  const uint32_t clusters = static_cast<uint32_t>(flags.GetU64("clusters", 6));
  const uint64_t seed = flags.GetU64("seed", 42);
  const Dataset ds =
      MakeSynthetic({.dim = static_cast<uint32_t>(flags.GetU64("dim", 8)),
                     .num_base = static_cast<uint32_t>(flags.GetU64("rows", 1500)),
                     .num_queries = static_cast<uint32_t>(flags.GetU64("queries", 16)),
                     .num_clusters = clusters,
                     .seed = seed});
  DhnswConfig config = DhnswConfig::Defaults();
  config.meta.num_representatives = clusters;
  config.compute.clusters_per_query = 3;
  config.compute.cache_capacity = clusters;
  config.replication.factor = replicas;
  if (flags.Has("transport")) {
    DHNSW_ASSIGN_OR_RETURN(config.transport.kind,
                           rdma::ParseTransportKind(flags.Get("transport")));
  }  // default: unset kind honours DHNSW_TRANSPORT
  DHNSW_ASSIGN_OR_RETURN(DhnswEngine engine, DhnswEngine::Build(ds.base, config));
  Emit(out, "chaos drill: mode=%s transport=%s replicas=%u seed=%llu",
       mode.c_str(), std::string(engine.fabric().transport().name()).c_str(),
       replicas, static_cast<unsigned long long>(seed));

  const size_t k = flags.GetU64("k", 5);
  const uint32_t ef = static_cast<uint32_t>(flags.GetU64("ef", 300));
  DHNSW_ASSIGN_OR_RETURN(const BatchResult baseline, engine.SearchAll(ds.queries, k, ef));

  rdma::FaultPlan plan(seed);
  if (mode == "kill") {
    const ReplicaManager* manager = engine.replication();
    rdma::FaultRule rule;
    rule.kind = rdma::FaultKind::kUnreachable;
    rule.rkey = manager != nullptr ? manager->PrimaryRoute(0).rkey
                                   : engine.memory_handle().rkey_for_slot(0);
    rule.skip_first = flags.GetU64("skip", 4);
    plan.Add(rule);  // max_triggers stays unbounded: the node never returns
    Emit(out, "armed: slot-0 primary crashes after %llu ops (probes included)",
         static_cast<unsigned long long>(rule.skip_first));
  } else {
    // Bounded transient schedule, bit-flips confined to CRC-protected blob
    // bytes (the metadata table's FAA counter is outside its CRC).
    uint64_t blob_area = UINT64_MAX;
    for (const ClusterMeta& e : engine.memory_node()->plan().entries) {
      blob_area = std::min(blob_area, e.blob_offset);
    }
    Xoshiro256 rng(seed * 0x9e3779b97f4a7c15ULL + 0x5bf0);
    uint64_t budget = flags.GetU64("budget", 6);
    uint32_t num_rules = 0;
    while (budget > 0) {
      rdma::FaultRule rule;
      rule.opcode = rdma::Opcode::kRead;
      rule.max_triggers = 1 + rng.NextBounded(std::min<uint64_t>(2, budget));
      budget -= rule.max_triggers;
      rule.skip_first = rng.NextBounded(4);
      switch (rng.NextBounded(4)) {
        case 0: rule.kind = rdma::FaultKind::kUnreachable; break;
        case 1:
          rule.kind = rdma::FaultKind::kTimeout;
          rule.delay_ns = 10'000 + rng.NextBounded(90'000);
          break;
        case 2:
          rule.kind = rdma::FaultKind::kBitFlip;
          rule.offset_lo = blob_area;
          rule.bit_flips = 1 + static_cast<uint32_t>(rng.NextBounded(3));
          break;
        default:
          rule.kind = rdma::FaultKind::kDelay;
          rule.delay_ns = 5'000 + rng.NextBounded(45'000);
          break;
      }
      plan.Add(rule);
      ++num_rules;
    }
    Emit(out, "armed: %u transient rule(s), total trigger budget %llu", num_rules,
         flags.GetU64("budget", 6));
  }

  ComputeNode& node = engine.compute(0);
  node.InvalidateCache();  // every cluster crosses the faulty wire again
  RetryPolicy retry = RetryPolicy::Default();
  retry.max_attempts = static_cast<uint32_t>(flags.GetU64("attempts", 12));
  node.mutable_options()->retry = retry;
  const uint64_t faults_before = node.qp_stats().injected_faults;

  DHNSW_RETURN_IF_ERROR(engine.fabric().ArmFaults(plan));
  auto run = node.SearchAll(ds.queries, k, ef);
  engine.fabric().ClearFaults();
  DHNSW_RETURN_IF_ERROR(run.status());
  const BatchResult& result = run.value();

  size_t ok = 0;
  for (const Status& st : result.statuses) ok += st.ok() ? 1 : 0;
  const BatchBreakdown& b = result.breakdown;
  Emit(out, "injected %llu fault(s); %llu retries, %llu failover(s), %llu failed load(s)",
       static_cast<unsigned long long>(node.qp_stats().injected_faults - faults_before),
       static_cast<unsigned long long>(b.retries),
       static_cast<unsigned long long>(b.failovers),
       static_cast<unsigned long long>(b.failed_loads));
  Emit(out, "queries ok: %zu/%zu", ok, result.statuses.size());

  bool converged = baseline.results.size() == result.results.size();
  for (size_t i = 0; converged && i < result.results.size(); ++i) {
    converged = baseline.results[i].size() == result.results[i].size();
    for (size_t j = 0; converged && j < result.results[i].size(); ++j) {
      converged = baseline.results[i][j].id == result.results[i][j].id &&
                  baseline.results[i][j].distance == result.results[i][j].distance;
    }
  }
  if (!converged || ok != result.statuses.size()) {
    Emit(out, "DIVERGED from the fault-free oracle");
    return Status::Corruption("chaos run diverged from oracle");
  }
  Emit(out, "converged: results byte-identical to the fault-free oracle");
  return Status::Ok();
}

/// Runs `iters` identical rings built by `post` and returns the median
/// per-ring network charge in ns — the NicModel cost on the simulator, the
/// measured wall time of the round trip on a real transport (tcp/verbs).
template <typename PostFn>
uint64_t MedianRingNs(rdma::QueuePair& qp, uint32_t iters, PostFn&& post) {
  std::vector<uint64_t> samples;
  samples.reserve(iters);
  for (uint32_t i = 0; i < iters + 1; ++i) {
    const uint64_t before = qp.stats().sim_network_ns;
    post();
    qp.RingDoorbell();
    rdma::Completion c;
    while (qp.PollCompletion(&c)) {
    }
    if (i == 0) continue;  // warm-up ring: connection setup, cold caches
    samples.push_back(qp.stats().sim_network_ns - before);
  }
  std::nth_element(samples.begin(), samples.begin() + samples.size() / 2, samples.end());
  return samples[samples.size() / 2];
}

Status CmdCalibrate(const Flags& flags, std::string* out) {
  DHNSW_ASSIGN_OR_RETURN(const rdma::TransportKind kind,
                         rdma::ParseTransportKind(flags.Get("transport", "tcp")));
  const uint32_t iters =
      static_cast<uint32_t>(std::max<uint64_t>(3, flags.GetU64("iters", 33)));
  const size_t large_bytes = std::max<uint64_t>(4096, flags.GetU64("bytes", 1u << 20));

  rdma::TransportOptions options;
  options.kind = kind;
  rdma::Fabric fabric(rdma::NicModelConfig{}, options);
  if (fabric.transport().kind() != kind) {
    return Status::Unavailable("requested transport failed to initialise");
  }
  const rdma::NodeId mem = fabric.AddNode("calib-mem");
  fabric.AddNode("calib-compute");
  DHNSW_ASSIGN_OR_RETURN(const rdma::RKey rkey,
                         fabric.RegisterMemory(mem, large_bytes + 4096));
  SimClock clock;
  rdma::QueuePair qp(&fabric, &clock);
  std::vector<uint8_t> buf(large_bytes);
  Emit(out, "calibrating on transport=%s iters=%u payload=%zuB",
       std::string(fabric.transport().name()).c_str(), iters, large_bytes);

  // 1. Base round trip: a single 8-byte READ per ring.
  const uint64_t t_small = MedianRingNs(
      qp, iters, [&] { qp.PostRead(rkey, 0, {buf.data(), 8}); });
  // 2. Per-byte bandwidth: one large READ per ring; the delta over the base
  //    round trip is pure payload time.
  const uint64_t t_large = MedianRingNs(
      qp, iters, [&] { qp.PostRead(rkey, 0, {buf.data(), large_bytes}); });
  // 3. Doorbell amortization, linear region: 16 small READs in one ring.
  const uint64_t t_batch16 = MedianRingNs(qp, iters, [&] {
    for (uint32_t w = 0; w < 16; ++w) qp.PostRead(rkey, w * 8, {buf.data() + w * 8, 8});
  });
  // 4. Saturated region: 64 small READs in one ring.
  const uint64_t t_batch64 = MedianRingNs(qp, iters, [&] {
    for (uint32_t w = 0; w < 64; ++w) qp.PostRead(rkey, w * 8, {buf.data() + w * 8, 8});
  });
  // 5. Atomic surcharge: one FAA per ring (offset 0 is 8-aligned).
  const uint64_t t_atomic = MedianRingNs(
      qp, iters, [&] { qp.PostFetchAdd(rkey, large_bytes, 0); });

  rdma::NicModelConfig fitted;
  fitted.base_round_trip_ns = t_small;
  const uint64_t payload_ns = t_large > t_small ? t_large - t_small : 1;
  fitted.bandwidth_gbps =
      static_cast<double>(large_bytes) * 8.0 / static_cast<double>(payload_ns);
  fitted.per_wr_dma_ns = t_batch16 > t_small ? (t_batch16 - t_small) / 15 : 0;
  // Model: cost(64) = base + 63*per_wr + (64 - limit)*saturated (+ payload,
  // negligible at 8B/WR). Anything the linear terms do not explain is the
  // saturated per-WR cost beyond the default window of 16.
  const uint64_t linear64 = t_small + 63 * fitted.per_wr_dma_ns;
  fitted.doorbell_saturated_ns = t_batch64 > linear64 ? (t_batch64 - linear64) / 48 : 0;
  fitted.atomic_extra_ns = t_atomic > t_small ? t_atomic - t_small : 0;
  fitted.source = "calibrated-" + std::string(rdma::TransportKindName(kind));

  Emit(out, "base_round_trip_ns=%llu bandwidth_gbps=%.3f per_wr_dma_ns=%llu",
       static_cast<unsigned long long>(fitted.base_round_trip_ns), fitted.bandwidth_gbps,
       static_cast<unsigned long long>(fitted.per_wr_dma_ns));
  Emit(out, "doorbell_saturated_ns=%llu atomic_extra_ns=%llu source=%s",
       static_cast<unsigned long long>(fitted.doorbell_saturated_ns),
       static_cast<unsigned long long>(fitted.atomic_extra_ns), fitted.source.c_str());

  const std::string json = fitted.ToJson();
  const std::string out_path = flags.Get("out", "nic_calibration.json");
  std::FILE* f = std::fopen(out_path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot open " + out_path);
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const int close_rc = std::fclose(f);
  if (written != json.size() || close_rc != 0) {
    return Status::IoError("short write to " + out_path);
  }
  Emit(out, "wrote %s", out_path.c_str());

  // Round-trip the artifact through the load path and drive one simulated
  // ring under the fitted constants — proof the simulator accepts them.
  DHNSW_ASSIGN_OR_RETURN(const rdma::NicModelConfig loaded,
                         rdma::NicModelConfig::LoadFromJson(json));
  rdma::Fabric sim(loaded, rdma::TransportOptions::Sim());
  const rdma::NodeId sim_mem = sim.AddNode("sim-mem");
  DHNSW_ASSIGN_OR_RETURN(const rdma::RKey sim_rkey, sim.RegisterMemory(sim_mem, 4096));
  SimClock sim_clock;
  rdma::QueuePair sim_qp(&sim, &sim_clock);
  DHNSW_RETURN_IF_ERROR(sim_qp.Read(sim_rkey, 0, {buf.data(), 8}));
  Emit(out, "sim reload check: 8B read costs %llu ns under source=%s",
       static_cast<unsigned long long>(sim_qp.stats().sim_network_ns),
       loaded.source.c_str());
  return Status::Ok();
}

const char kUsage[] =
    "usage: dhnsw_cli <build|query|insert|compact|info|stats|trace|topology|scaleout|chaos|calibrate> --key=value ...\n"
    "  build   --base=x.fvecs --out=region.dsnp [--reps --m --efc --metric --shards]\n"
    "  query   --snapshot=region.dsnp --queries=q.fvecs [--k --ef --gt --out]\n"
    "  insert  --snapshot=region.dsnp --vectors=new.fvecs --out=updated.dsnp\n"
    "  compact --snapshot=region.dsnp --out=compacted.dsnp\n"
    "  info    --snapshot=region.dsnp\n"
    "  stats   --snapshot=region.dsnp [--queries=q.fvecs --k --ef]  (Prometheus text)\n"
    "  trace   --snapshot=region.dsnp --queries=q.fvecs [--out=t.jsonl --capacity\n"
    "          --deterministic=1]  (per-query trace spans as JSONL)\n"
    "  topology [--replicas=2 --kill=<slot> --rereplicate=1 --dim --rows --clusters\n"
    "          --seed]  (per-node replica health/epoch table on a synthetic pool)\n"
    "  scaleout [--nodes=4 --ops=2000 --qps=20000 --read_fraction=0.9 --zipf=1.1\n"
    "          --tenants=2 --drain=1 --queue_capacity --tenant_limit --k --ef --dim\n"
    "          --rows --clusters --seed]  (compute-pool run on a synthetic pool)\n"
    "  chaos   [--mode=transient|kill --transport=sim|tcp|verbs --replicas --skip=4\n"
    "          --budget=6 --attempts=12 --dim --rows --queries --clusters --k --ef\n"
    "          --seed]  (seeded fault drill vs the fault-free oracle; exit 1 on divergence)\n"
    "  calibrate [--transport=tcp --iters=33 --bytes=1048576 --out=nic_calibration.json]\n"
    "          (measure real per-RT latency/bandwidth; write NicModelConfig JSON)";

}  // namespace

int RunCli(const std::vector<std::string>& args, std::string* out) {
  if (args.empty()) {
    Emit(out, "%s", kUsage);
    return 2;
  }
  auto flags = ParseFlags(args, 1);
  if (!flags.ok()) {
    Emit(out, "error: %s", flags.status().ToString().c_str());
    return 2;
  }

  Status st;
  const std::string& command = args[0];
  if (command == "build") {
    st = CmdBuild(flags.value(), out);
  } else if (command == "query") {
    st = CmdQuery(flags.value(), out);
  } else if (command == "insert") {
    st = CmdInsert(flags.value(), out);
  } else if (command == "compact") {
    st = CmdCompact(flags.value(), out);
  } else if (command == "info") {
    st = CmdInfo(flags.value(), out);
  } else if (command == "stats") {
    st = CmdStats(flags.value(), out);
  } else if (command == "trace") {
    st = CmdTrace(flags.value(), out);
  } else if (command == "topology") {
    st = CmdTopology(flags.value(), out);
  } else if (command == "scaleout") {
    st = CmdScaleout(flags.value(), out);
  } else if (command == "chaos") {
    st = CmdChaos(flags.value(), out);
  } else if (command == "calibrate") {
    st = CmdCalibrate(flags.value(), out);
  } else {
    Emit(out, "unknown command: %s\n%s", command.c_str(), kUsage);
    return 2;
  }
  if (!st.ok()) {
    Emit(out, "error: %s", st.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace dhnsw::cli
