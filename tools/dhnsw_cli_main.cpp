// Thin main for the d-HNSW CLI; the logic lives in cli.{h,cpp} so tests can
// drive every subcommand in-process.
#include <cstdio>
#include <string>
#include <vector>

#include "cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  std::string out;
  const int code = dhnsw::cli::RunCli(args, &out);
  std::fputs(out.c_str(), code == 0 ? stdout : stderr);
  return code;
}
