// d-HNSW command-line tool, as a library so tests drive it in-process.
//
// Subcommands:
//   build    --base=<fvecs> --out=<snapshot> [--reps=N] [--m=N] [--efc=N]
//            [--metric=l2|ip|cosine] [--max_rows=N] [--shards=N]
//            Build the full system from a vector file and persist the
//            provisioned region as a snapshot.
//   query    --snapshot=<file> --queries=<fvecs> [--k=N] [--ef=N] [--b=N]
//            [--gt=<ivecs>] [--max_rows=N] [--out=<ivecs>]
//            Batched top-k search; prints latency/traffic stats, recall when
//            ground truth is given, and optionally writes result ids.
//   insert   --snapshot=<file> --vectors=<fvecs> --out=<snapshot>
//            [--max_rows=N]  Batch-insert vectors, persist the result.
//   compact  --snapshot=<file> --out=<snapshot>
//            Fold overflow + tombstones into fresh blobs.
//   info     --snapshot=<file>
//            Print the region topology (partitions, shards, sizes).
#pragma once

#include <string>
#include <vector>

namespace dhnsw::cli {

/// Runs one CLI invocation. `args` excludes the program name. Output goes to
/// `out` (one string, newline separated) so tests can assert on it.
/// Returns a process exit code (0 = success).
int RunCli(const std::vector<std::string>& args, std::string* out);

}  // namespace dhnsw::cli
