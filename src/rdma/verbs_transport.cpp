#include "rdma/verbs_transport.h"

#if !DHNSW_HAVE_VERBS

namespace dhnsw::rdma {

std::unique_ptr<Transport> TryCreateVerbsTransport(const TransportOptions&) { return nullptr; }

}  // namespace dhnsw::rdma

#else  // DHNSW_HAVE_VERBS

#include <infiniband/verbs.h>

#include <chrono>
#include <cstring>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/logging.h"

namespace dhnsw::rdma {

namespace {

constexpr uint32_t kQpDepth = 128;
constexpr size_t kBounceBytes = 8u << 20;  // per-channel staging MR
constexpr uint8_t kIbPort = 1;

class VerbsTransport;

/// A self-connected RC QP pair plus a staging MR. One per QueuePair.
class VerbsChannel final : public TransportChannel {
 public:
  VerbsChannel(VerbsTransport* transport, ibv_context* ctx, ibv_pd* pd)
      : transport_(transport), ctx_(ctx), pd_(pd) {}

  ~VerbsChannel() override {
    if (qp_client_ != nullptr) ibv_destroy_qp(qp_client_);
    if (qp_server_ != nullptr) ibv_destroy_qp(qp_server_);
    if (cq_ != nullptr) ibv_destroy_cq(cq_);
    if (bounce_mr_ != nullptr) ibv_dereg_mr(bounce_mr_);
  }

  bool Init();

  uint64_t ExecuteRing(std::span<const WorkRequest> wrs, std::span<Completion> completions,
                       const RingFaultContext& faults) override;

 private:
  bool ConnectLoopback();

  VerbsTransport* transport_;
  ibv_context* ctx_;
  ibv_pd* pd_;
  ibv_cq* cq_ = nullptr;
  ibv_qp* qp_client_ = nullptr;
  ibv_qp* qp_server_ = nullptr;
  ibv_mr* bounce_mr_ = nullptr;
  bool connected_ = false;
  std::vector<uint8_t> bounce_;
};

class VerbsTransport final : public LocalTransport {
 public:
  static std::unique_ptr<VerbsTransport> TryCreate();

  ~VerbsTransport() override {
    {
      std::lock_guard<std::mutex> lock(mr_mutex_);
      for (auto& [rkey, mr] : mrs_) ibv_dereg_mr(mr);
      mrs_.clear();
    }
    if (pd_ != nullptr) ibv_dealloc_pd(pd_);
    if (ctx_ != nullptr) ibv_close_device(ctx_);
  }

  TransportKind kind() const noexcept override { return TransportKind::kVerbs; }

  Result<RKey> RegisterMemory(NodeId node, size_t size, size_t alignment) override {
    DHNSW_ASSIGN_OR_RETURN(RKey rkey, LocalTransport::RegisterMemory(node, size, alignment));
    MemoryRegion* region = FindRegion(rkey);
    std::span<uint8_t> host = region->host_span();
    ibv_mr* mr = ibv_reg_mr(pd_, host.data(), host.size(),
                            IBV_ACCESS_LOCAL_WRITE | IBV_ACCESS_REMOTE_READ |
                                IBV_ACCESS_REMOTE_WRITE | IBV_ACCESS_REMOTE_ATOMIC);
    if (mr == nullptr) {
      return Status::Internal("verbs: ibv_reg_mr failed for region");
    }
    std::lock_guard<std::mutex> lock(mr_mutex_);
    mrs_.emplace(rkey, mr);
    return rkey;
  }

  /// The verbs MR backing a fabric rkey, or nullptr.
  ibv_mr* VerbsMr(RKey rkey) const {
    std::lock_guard<std::mutex> lock(mr_mutex_);
    auto it = mrs_.find(rkey);
    return it == mrs_.end() ? nullptr : it->second;
  }

  std::unique_ptr<TransportChannel> CreateChannel() override {
    auto channel = std::make_unique<VerbsChannel>(this, ctx_, pd_);
    if (!channel->Init()) {
      DHNSW_LOG(kWarn) << "verbs: channel setup failed; ring ops will complete "
                          "as unreachable";
      // Returning the channel anyway keeps the QueuePair API total; every
      // ring on it completes kRemoteUnreachable.
    }
    return channel;
  }

  ibv_context* ctx_ = nullptr;
  ibv_pd* pd_ = nullptr;

 private:
  mutable std::mutex mr_mutex_;
  std::unordered_map<RKey, ibv_mr*> mrs_;
};

std::unique_ptr<VerbsTransport> VerbsTransport::TryCreate() {
  int num_devices = 0;
  ibv_device** devices = ibv_get_device_list(&num_devices);
  if (devices == nullptr || num_devices == 0) {
    if (devices != nullptr) ibv_free_device_list(devices);
    return nullptr;
  }
  auto transport = std::make_unique<VerbsTransport>();
  transport->ctx_ = ibv_open_device(devices[0]);
  ibv_free_device_list(devices);
  if (transport->ctx_ == nullptr) return nullptr;
  transport->pd_ = ibv_alloc_pd(transport->ctx_);
  if (transport->pd_ == nullptr) return nullptr;
  return transport;
}

bool VerbsChannel::Init() {
  bounce_.resize(kBounceBytes);
  bounce_mr_ = ibv_reg_mr(pd_, bounce_.data(), bounce_.size(), IBV_ACCESS_LOCAL_WRITE);
  if (bounce_mr_ == nullptr) return false;
  cq_ = ibv_create_cq(ctx_, static_cast<int>(kQpDepth) * 2, nullptr, nullptr, 0);
  if (cq_ == nullptr) return false;

  ibv_qp_init_attr init{};
  init.send_cq = cq_;
  init.recv_cq = cq_;
  init.cap.max_send_wr = kQpDepth;
  init.cap.max_recv_wr = 8;
  init.cap.max_send_sge = 1;
  init.cap.max_recv_sge = 1;
  init.qp_type = IBV_QPT_RC;
  qp_client_ = ibv_create_qp(pd_, &init);
  qp_server_ = ibv_create_qp(pd_, &init);
  if (qp_client_ == nullptr || qp_server_ == nullptr) return false;
  return ConnectLoopback();
}

bool VerbsChannel::ConnectLoopback() {
  ibv_port_attr port{};
  if (ibv_query_port(ctx_, kIbPort, &port) != 0) return false;
  ibv_gid gid{};
  const bool roce = port.link_layer == IBV_LINK_LAYER_ETHERNET;
  if (roce && ibv_query_gid(ctx_, kIbPort, 0, &gid) != 0) return false;

  auto to_init = [](ibv_qp* qp) {
    ibv_qp_attr attr{};
    attr.qp_state = IBV_QPS_INIT;
    attr.pkey_index = 0;
    attr.port_num = kIbPort;
    attr.qp_access_flags = IBV_ACCESS_LOCAL_WRITE | IBV_ACCESS_REMOTE_READ |
                           IBV_ACCESS_REMOTE_WRITE | IBV_ACCESS_REMOTE_ATOMIC;
    return ibv_modify_qp(qp, &attr,
                         IBV_QP_STATE | IBV_QP_PKEY_INDEX | IBV_QP_PORT |
                             IBV_QP_ACCESS_FLAGS) == 0;
  };
  auto to_rtr = [&](ibv_qp* qp, uint32_t dest_qpn) {
    ibv_qp_attr attr{};
    attr.qp_state = IBV_QPS_RTR;
    attr.path_mtu = port.active_mtu;
    attr.dest_qp_num = dest_qpn;
    attr.rq_psn = 0;
    attr.max_dest_rd_atomic = 16;
    attr.min_rnr_timer = 12;
    attr.ah_attr.port_num = kIbPort;
    if (roce) {
      attr.ah_attr.is_global = 1;
      attr.ah_attr.grh.dgid = gid;
      attr.ah_attr.grh.sgid_index = 0;
      attr.ah_attr.grh.hop_limit = 1;
    } else {
      attr.ah_attr.dlid = port.lid;
    }
    return ibv_modify_qp(qp, &attr,
                         IBV_QP_STATE | IBV_QP_AV | IBV_QP_PATH_MTU | IBV_QP_DEST_QPN |
                             IBV_QP_RQ_PSN | IBV_QP_MAX_DEST_RD_ATOMIC |
                             IBV_QP_MIN_RNR_TIMER) == 0;
  };
  auto to_rts = [](ibv_qp* qp) {
    ibv_qp_attr attr{};
    attr.qp_state = IBV_QPS_RTS;
    attr.timeout = 14;
    attr.retry_cnt = 7;
    attr.rnr_retry = 7;
    attr.sq_psn = 0;
    attr.max_rd_atomic = 16;
    return ibv_modify_qp(qp, &attr,
                         IBV_QP_STATE | IBV_QP_TIMEOUT | IBV_QP_RETRY_CNT |
                             IBV_QP_RNR_RETRY | IBV_QP_SQ_PSN | IBV_QP_MAX_QP_RD_ATOMIC) == 0;
  };

  connected_ = to_init(qp_client_) && to_init(qp_server_) &&
               to_rtr(qp_client_, qp_server_->qp_num) &&
               to_rtr(qp_server_, qp_client_->qp_num) && to_rts(qp_client_) &&
               to_rts(qp_server_);
  return connected_;
}

uint64_t VerbsChannel::ExecuteRing(std::span<const WorkRequest> wrs,
                                   std::span<Completion> completions,
                                   const RingFaultContext& faults) {
  (void)faults;  // injection happens in ChaosChannel before WRs get here
  const auto start = std::chrono::steady_clock::now();
  auto elapsed = [&] {
    return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                     std::chrono::steady_clock::now() - start)
                                     .count());
  };

  std::vector<ibv_send_wr> send_wrs(wrs.size());
  std::vector<ibv_sge> sges(wrs.size());
  // Index into wrs for each posted verb (fence/unreachable WRs are not posted).
  std::vector<size_t> posted;
  posted.reserve(wrs.size());
  size_t bounce_off = 0;

  for (size_t i = 0; i < wrs.size(); ++i) {
    const WorkRequest& wr = wrs[i];
    Completion& c = completions[i];
    c = Completion{wr.wr_id, wr.opcode, WcStatus::kSuccess, 0, 0};

    ibv_mr* mr = transport_->VerbsMr(wr.rkey);
    MemoryRegion* region = transport_->FindRegion(wr.rkey);
    if (!connected_ || mr == nullptr || region == nullptr) {
      c.status = connected_ ? WcStatus::kRemoteAccessError : WcStatus::kRemoteUnreachable;
      continue;
    }
    auto owner = transport_->OwnerOf(wr.rkey);
    if (!owner.ok() || !transport_->IsNodeReachable(owner.value())) {
      c.status = WcStatus::kRemoteUnreachable;
      continue;
    }
    if (!transport_->AdmitAccess(wr.rkey, wr.expected_epoch)) {
      c.status = WcStatus::kFenced;
      continue;
    }
    const bool atomic = wr.opcode == Opcode::kCompareSwap || wr.opcode == Opcode::kFetchAdd;
    const size_t need = atomic ? 8 : wr.local.size();
    if (!region->ValidateRange(wr.remote_offset, need).ok() ||
        (atomic && wr.remote_offset % 8 != 0)) {
      c.status = WcStatus::kRemoteAccessError;
      continue;
    }
    if (bounce_off + need > bounce_.size()) {
      c.status = WcStatus::kLocalLengthError;  // ring exceeds staging MR
      continue;
    }

    const size_t slot = posted.size();
    posted.push_back(i);
    ibv_sge& sge = sges[slot];
    sge.addr = reinterpret_cast<uint64_t>(bounce_.data() + bounce_off);
    sge.length = static_cast<uint32_t>(need);
    sge.lkey = bounce_mr_->lkey;
    ibv_send_wr& sw = send_wrs[slot];
    std::memset(&sw, 0, sizeof sw);
    sw.wr_id = i;
    sw.sg_list = &sge;
    sw.num_sge = 1;
    sw.send_flags = IBV_SEND_SIGNALED;
    const uint64_t remote_addr =
        reinterpret_cast<uint64_t>(region->host_span().data()) + wr.remote_offset;
    switch (wr.opcode) {
      case Opcode::kRead:
        sw.opcode = IBV_WR_RDMA_READ;
        sw.wr.rdma.remote_addr = remote_addr;
        sw.wr.rdma.rkey = mr->rkey;
        break;
      case Opcode::kWrite:
        sw.opcode = IBV_WR_RDMA_WRITE;
        sw.wr.rdma.remote_addr = remote_addr;
        sw.wr.rdma.rkey = mr->rkey;
        std::memcpy(bounce_.data() + bounce_off, wr.local.data(), wr.local.size());
        break;
      case Opcode::kCompareSwap:
        sw.opcode = IBV_WR_ATOMIC_CMP_AND_SWP;
        sw.wr.atomic.remote_addr = remote_addr;
        sw.wr.atomic.rkey = mr->rkey;
        sw.wr.atomic.compare_add = wr.compare;
        sw.wr.atomic.swap = wr.swap_or_add;
        break;
      case Opcode::kFetchAdd:
        sw.opcode = IBV_WR_ATOMIC_FETCH_AND_ADD;
        sw.wr.atomic.remote_addr = remote_addr;
        sw.wr.atomic.rkey = mr->rkey;
        sw.wr.atomic.compare_add = wr.swap_or_add;
        break;
    }
    if (slot > 0) send_wrs[slot - 1].next = &sw;
    bounce_off += need;
  }

  if (posted.empty()) return elapsed();

  ibv_send_wr* bad = nullptr;
  if (ibv_post_send(qp_client_, &send_wrs[0], &bad) != 0) {
    for (size_t i : posted) {
      completions[i].status = WcStatus::kRemoteUnreachable;
    }
    return elapsed();
  }

  // One doorbell ring == one chained post; drain exactly |posted| completions.
  size_t done = 0;
  ibv_wc wc[16];
  while (done < posted.size()) {
    const int n = ibv_poll_cq(cq_, 16, wc);
    if (n < 0) {
      for (size_t j = done; j < posted.size(); ++j) {
        completions[posted[j]].status = WcStatus::kRemoteUnreachable;
      }
      break;
    }
    for (int k = 0; k < n; ++k) {
      Completion& c = completions[wc[k].wr_id];
      if (wc[k].status != IBV_WC_SUCCESS) {
        c.status = wc[k].status == IBV_WC_RETRY_EXC_ERR ? WcStatus::kTimeout
                                                        : WcStatus::kRemoteAccessError;
      }
      ++done;
    }
  }

  // Copy bounced results back out.
  bounce_off = 0;
  for (size_t i : posted) {
    const WorkRequest& wr = wrs[i];
    Completion& c = completions[i];
    const bool atomic = wr.opcode == Opcode::kCompareSwap || wr.opcode == Opcode::kFetchAdd;
    const size_t need = atomic ? 8 : wr.local.size();
    if (c.status == WcStatus::kSuccess) {
      if (wr.opcode == Opcode::kRead) {
        std::memcpy(wr.local.data(), bounce_.data() + bounce_off, need);
        c.byte_len = static_cast<uint32_t>(need);
      } else if (wr.opcode == Opcode::kWrite) {
        c.byte_len = static_cast<uint32_t>(need);
      } else {
        std::memcpy(&c.atomic_result, bounce_.data() + bounce_off, 8);
        c.byte_len = 8;
      }
    }
    bounce_off += need;
  }
  return elapsed();
}

}  // namespace

std::unique_ptr<Transport> TryCreateVerbsTransport(const TransportOptions& options) {
  (void)options;
  std::unique_ptr<VerbsTransport> transport = VerbsTransport::TryCreate();
  if (transport == nullptr) return nullptr;
  DHNSW_LOG(kInfo) << "verbs transport: using device "
                   << ibv_get_device_name(transport->ctx_->device);
  return transport;
}

}  // namespace dhnsw::rdma

#endif  // DHNSW_HAVE_VERBS
