#include "rdma/memory_region.h"

#include <cassert>
#include <cstring>

namespace dhnsw::rdma {

void MemoryRegion::DmaRead(uint64_t offset, std::span<uint8_t> dst) const {
  assert(offset + dst.size() <= size());
  std::memcpy(dst.data(), storage_.data() + offset, dst.size());
}

void MemoryRegion::DmaWrite(uint64_t offset, std::span<const uint8_t> src) {
  assert(offset + src.size() <= size());
  std::memcpy(storage_.data() + offset, src.data(), src.size());
}

uint64_t MemoryRegion::AtomicCompareSwap(uint64_t offset, uint64_t compare, uint64_t swap) {
  assert(offset % 8 == 0 && offset + 8 <= size());
  std::lock_guard<std::mutex> lock(atomic_mutex_);
  uint64_t current;
  std::memcpy(&current, storage_.data() + offset, 8);
  if (current == compare) {
    std::memcpy(storage_.data() + offset, &swap, 8);
  }
  return current;
}

uint64_t MemoryRegion::AtomicFetchAdd(uint64_t offset, uint64_t add) {
  assert(offset % 8 == 0 && offset + 8 <= size());
  std::lock_guard<std::mutex> lock(atomic_mutex_);
  uint64_t current;
  std::memcpy(&current, storage_.data() + offset, 8);
  const uint64_t updated = current + add;
  std::memcpy(storage_.data() + offset, &updated, 8);
  return current;
}

}  // namespace dhnsw::rdma
