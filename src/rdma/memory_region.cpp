#include "rdma/memory_region.h"

#include <cassert>
#include <cstring>

#if defined(__SANITIZE_THREAD__)
#define DHNSW_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DHNSW_TSAN 1
#endif
#endif

namespace dhnsw::rdma {
namespace {

// DmaRead/DmaWrite model one-sided RDMA DMA: on real hardware a READ can
// race a concurrent WRITE to the same region and observe torn bytes — the
// d-HNSW protocol tolerates that by construction (per-record commit flags
// published after the payload lands, CRC checks on decode). The simulation
// keeps those semantics, so the payload copy is intentionally
// unsynchronized; control words go through the locked Atomic* verbs.
//
// Under TSan the copy is routed around the instrumented memcpy (volatile
// word loop in an uninstrumented function) so the modeled hardware race is
// not reported as a program bug. Everywhere else it is a plain memcpy.
#if defined(DHNSW_TSAN)
__attribute__((no_sanitize("thread")))
void DmaCopy(uint8_t* dst, const uint8_t* src, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    uint64_t word;
    std::memcpy(&word, const_cast<const uint8_t*>(src) + i, 8);
    volatile uint64_t* out = reinterpret_cast<volatile uint64_t*>(dst + i);
    *out = word;
  }
  for (; i < n; ++i) {
    const_cast<volatile uint8_t*>(dst)[i] = const_cast<const volatile uint8_t*>(src)[i];
  }
}
#else
inline void DmaCopy(uint8_t* dst, const uint8_t* src, size_t n) {
  std::memcpy(dst, src, n);
}
#endif

}  // namespace

void MemoryRegion::DmaRead(uint64_t offset, std::span<uint8_t> dst) const {
  assert(offset + dst.size() <= size());
  DmaCopy(dst.data(), storage_.data() + offset, dst.size());
}

void MemoryRegion::DmaWrite(uint64_t offset, std::span<const uint8_t> src) {
  assert(offset + src.size() <= size());
  DmaCopy(storage_.data() + offset, src.data(), src.size());
}

uint64_t MemoryRegion::AtomicCompareSwap(uint64_t offset, uint64_t compare, uint64_t swap) {
  assert(offset % 8 == 0 && offset + 8 <= size());
  std::lock_guard<std::mutex> lock(atomic_mutex_);
  uint64_t current;
  std::memcpy(&current, storage_.data() + offset, 8);
  if (current == compare) {
    std::memcpy(storage_.data() + offset, &swap, 8);
  }
  return current;
}

uint64_t MemoryRegion::AtomicFetchAdd(uint64_t offset, uint64_t add) {
  assert(offset % 8 == 0 && offset + 8 <= size());
  std::lock_guard<std::mutex> lock(atomic_mutex_);
  uint64_t current;
  std::memcpy(&current, storage_.data() + offset, 8);
  const uint64_t updated = current + add;
  std::memcpy(storage_.data() + offset, &updated, 8);
  return current;
}

}  // namespace dhnsw::rdma
