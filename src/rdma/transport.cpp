#include "rdma/transport.h"

#include <cstdlib>

#include "common/logging.h"
#include "rdma/fault_injection.h"
#include "rdma/sim_transport.h"
#include "rdma/tcp_transport.h"
#include "rdma/verbs_transport.h"

namespace dhnsw::rdma {

std::string_view TransportKindName(TransportKind kind) noexcept {
  switch (kind) {
    case TransportKind::kSim:
      return "sim";
    case TransportKind::kTcp:
      return "tcp";
    case TransportKind::kVerbs:
      return "verbs";
  }
  return "unknown";
}

Result<TransportKind> ParseTransportKind(std::string_view name) {
  if (name == "sim") return TransportKind::kSim;
  if (name == "tcp") return TransportKind::kTcp;
  if (name == "verbs") return TransportKind::kVerbs;
  return Status::InvalidArgument("unknown transport kind: \"" + std::string(name) +
                                 "\" (expected sim|tcp|verbs)");
}

TransportKind TransportOptions::Resolve() const {
  if (kind.has_value()) return *kind;
  const char* env = std::getenv("DHNSW_TRANSPORT");
  if (env != nullptr && env[0] != '\0') {
    Result<TransportKind> parsed = ParseTransportKind(env);
    if (parsed.ok()) return parsed.value();
    DHNSW_LOG(kWarn) << "ignoring invalid DHNSW_TRANSPORT=\"" << env
                     << "\": " << parsed.status().message();
  }
  return TransportKind::kSim;
}

NodeId LocalTransport::AddNode(std::string name) {
  std::lock_guard<std::mutex> lock(mutex_);
  nodes_.push_back(NodeState{std::move(name), /*reachable=*/true});
  return static_cast<NodeId>(nodes_.size() - 1);
}

size_t LocalTransport::num_nodes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return nodes_.size();
}

std::string LocalTransport::NodeName(NodeId node) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return node < nodes_.size() ? nodes_[node].name : std::string("<unknown>");
}

Result<RKey> LocalTransport::RegisterMemory(NodeId node, size_t size, size_t alignment) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (node >= nodes_.size()) {
    return Status::InvalidArgument("RegisterMemory: unknown node");
  }
  if (size == 0) {
    return Status::InvalidArgument("RegisterMemory: zero-size region");
  }
  const RKey rkey = next_rkey_++;
  regions_.emplace(rkey,
                   std::make_pair(node, std::make_unique<MemoryRegion>(rkey, size, alignment)));
  return rkey;
}

MemoryRegion* LocalTransport::FindRegion(RKey rkey) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = regions_.find(rkey);
  return it == regions_.end() ? nullptr : it->second.second.get();
}

const MemoryRegion* LocalTransport::FindRegion(RKey rkey) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = regions_.find(rkey);
  return it == regions_.end() ? nullptr : it->second.second.get();
}

Result<NodeId> LocalTransport::OwnerOf(RKey rkey) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = regions_.find(rkey);
  if (it == regions_.end()) return Status::NotFound("unknown rkey");
  return it->second.first;
}

void LocalTransport::SetNodeReachable(NodeId node, bool reachable) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (node < nodes_.size()) nodes_[node].reachable = reachable;
}

bool LocalTransport::IsNodeReachable(NodeId node) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return node < nodes_.size() && nodes_[node].reachable;
}

void LocalTransport::SetRegionEpoch(RKey rkey, uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (regions_.find(rkey) == regions_.end()) return;
  fences_[rkey].epoch = epoch;
}

uint64_t LocalTransport::RegionEpoch(RKey rkey) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = fences_.find(rkey);
  return it == fences_.end() ? 0 : it->second.epoch;
}

void LocalTransport::RevokeRegion(RKey rkey) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (regions_.find(rkey) == regions_.end()) return;
  fences_[rkey].revoked = true;
}

bool LocalTransport::IsRegionRevoked(RKey rkey) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = fences_.find(rkey);
  return it != fences_.end() && it->second.revoked;
}

bool LocalTransport::AdmitAccess(RKey rkey, uint64_t expected_epoch) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = fences_.find(rkey);
  if (it == fences_.end()) return true;  // never fenced: all traffic admitted
  if (it->second.revoked) return false;
  return expected_epoch == 0 || expected_epoch == it->second.epoch;
}

uint64_t LocalTransport::ExecuteRingLocal(std::span<const WorkRequest> wrs,
                                          std::span<Completion> completions,
                                          const RingFaultContext& faults) {
  uint64_t extra_ns = 0;
  for (size_t i = 0; i < wrs.size(); ++i) {
    completions[i] = ExecuteWr(wrs[i], faults, &extra_ns);
  }
  return extra_ns;
}

Completion LocalTransport::ExecuteWr(const WorkRequest& wr, const RingFaultContext& faults,
                                     uint64_t* extra_ns) {
  Completion c;
  c.wr_id = wr.wr_id;
  c.opcode = wr.opcode;

  MemoryRegion* region = FindRegion(wr.rkey);
  if (region == nullptr) {
    c.status = WcStatus::kRemoteAccessError;
    return c;
  }
  auto owner = OwnerOf(wr.rkey);
  if (!owner.ok() || !IsNodeReachable(owner.value())) {
    c.status = WcStatus::kRemoteUnreachable;
    return c;
  }
  // Epoch fence (replication failover): checked before fault injection — a
  // revoked/stale-epoch rejection is a deterministic connection-manager
  // property, not a wire event, so it must not consume fault triggers.
  if (!AdmitAccess(wr.rkey, wr.expected_epoch)) {
    c.status = WcStatus::kFenced;
    return c;
  }

  FaultDecision fault;
  if (faults.injector != nullptr) {
    fault = faults.injector->Evaluate(owner.value(), wr);
    if (fault.fired) {
      if (faults.injected_faults != nullptr) ++*faults.injected_faults;
      *extra_ns += fault.extra_ns;
      if (fault.kind == FaultKind::kUnreachable ||
          fault.kind == FaultKind::kDisconnect) {
        // kDisconnect degrades to a single-WR unreachable on sim: there is
        // no connection to sever, and failing the rest of the ring here
        // would change historical same-seed traces. Real backends get the
        // full mid-ring teardown via ChaosChannel.
        c.status = WcStatus::kRemoteUnreachable;
        return c;
      }
      if (fault.kind == FaultKind::kTimeout) {
        c.status = WcStatus::kTimeout;
        return c;
      }
      // kDelay / kBitFlip: the op still executes below.
    }
  }

  switch (wr.opcode) {
    case Opcode::kRead:
    case Opcode::kWrite: {
      if (!region->ValidateRange(wr.remote_offset, wr.local.size()).ok()) {
        c.status = WcStatus::kRemoteAccessError;
        return c;
      }
      if (wr.opcode == Opcode::kRead) {
        region->DmaRead(wr.remote_offset, wr.local);
      } else {
        region->DmaWrite(wr.remote_offset, {wr.local.data(), wr.local.size()});
      }
      c.byte_len = static_cast<uint32_t>(wr.local.size());
      break;
    }
    case Opcode::kCompareSwap: {
      if (wr.remote_offset % 8 != 0 || !region->ValidateRange(wr.remote_offset, 8).ok()) {
        c.status = WcStatus::kRemoteAccessError;
        return c;
      }
      c.atomic_result = region->AtomicCompareSwap(wr.remote_offset, wr.compare, wr.swap_or_add);
      c.byte_len = 8;
      break;
    }
    case Opcode::kFetchAdd: {
      if (wr.remote_offset % 8 != 0 || !region->ValidateRange(wr.remote_offset, 8).ok()) {
        c.status = WcStatus::kRemoteAccessError;
        return c;
      }
      c.atomic_result = region->AtomicFetchAdd(wr.remote_offset, wr.swap_or_add);
      c.byte_len = 8;
      break;
    }
  }

  // Payload bit-flips model on-the-wire corruption that slips past link-level
  // checks: a READ damages the local destination buffer, a WRITE damages the
  // bytes that landed in the remote region. The caller's source buffer is
  // never touched. CRC verification downstream is what catches these.
  if (fault.fired && fault.kind == FaultKind::kBitFlip && !fault.flips.empty()) {
    if (wr.opcode == Opcode::kRead) {
      for (const auto& [byte, mask] : fault.flips) {
        if (byte < wr.local.size()) wr.local[byte] ^= mask;
      }
    } else if (wr.opcode == Opcode::kWrite) {
      std::span<uint8_t> host = region->host_span();
      for (const auto& [byte, mask] : fault.flips) {
        const uint64_t off = wr.remote_offset + byte;
        if (off < host.size()) host[off] ^= mask;
      }
    }
  }

  c.status = WcStatus::kSuccess;
  return c;
}

Result<std::unique_ptr<Transport>> MakeTransport(const TransportOptions& options) {
  const TransportKind kind = options.Resolve();
  switch (kind) {
    case TransportKind::kSim:
      return {std::unique_ptr<Transport>(std::make_unique<SimTransport>())};
    case TransportKind::kTcp: {
      DHNSW_ASSIGN_OR_RETURN(std::unique_ptr<TcpTransport> tcp,
                             TcpTransport::Create(options));
      return {std::unique_ptr<Transport>(std::move(tcp))};
    }
    case TransportKind::kVerbs: {
      std::unique_ptr<Transport> verbs = TryCreateVerbsTransport(options);
      if (verbs != nullptr) return {std::move(verbs)};
      DHNSW_LOG(kWarn) << "verbs transport unavailable (not compiled in or no "
                          "RDMA device); falling back to tcp";
      DHNSW_ASSIGN_OR_RETURN(std::unique_ptr<TcpTransport> tcp,
                             TcpTransport::Create(options));
      return {std::unique_ptr<Transport>(std::move(tcp))};
    }
  }
  return Status::InvalidArgument("MakeTransport: unknown transport kind");
}

}  // namespace dhnsw::rdma
