// Queue pair: the compute-instance endpoint for one-sided verbs.
//
// Usage mirrors ibverbs: post one or more work requests, then ring the
// doorbell. All WRs posted before a ring execute in a single network round
// trip (doorbell batching); completions are polled from the completion queue.
// A QP charges simulated network time to the SimClock it was created with —
// that clock is the "network" column of the paper's latency breakdown.
//
// Concurrency: one QP belongs to one compute instance thread, as in the
// paper's per-instance worker design. Different QPs may be used from
// different threads; remote atomics are serialized by the memory region.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/sim_clock.h"
#include "common/status.h"
#include "rdma/fabric.h"
#include "rdma/rdma_types.h"
#include "telemetry/trace.h"

namespace dhnsw::rdma {

class QueuePair {
 public:
  /// `clock` may be null (network time is then simply not recorded).
  /// `max_doorbell_wrs` caps WRs per ring; a ring with more WRs is split into
  /// ceil(N / max) round trips, modeling a bounded NIC doorbell window.
  QueuePair(Fabric* fabric, SimClock* clock, uint32_t max_doorbell_wrs = 64);

  uint32_t max_doorbell_wrs() const noexcept { return max_doorbell_wrs_; }
  void set_max_doorbell_wrs(uint32_t n) noexcept { max_doorbell_wrs_ = n == 0 ? 1 : n; }

  /// --- posting (no network activity yet) ---
  /// `expected_epoch` carries the replication fence: 0 (default) posts an
  /// unfenced op — the seed behaviour; non-zero ops execute only when they
  /// match the target region's current fence epoch (else kFenced).
  void PostRead(RKey rkey, uint64_t remote_offset, std::span<uint8_t> dst, uint64_t wr_id = 0,
                uint64_t expected_epoch = 0);
  void PostWrite(RKey rkey, uint64_t remote_offset, std::span<const uint8_t> src, uint64_t wr_id = 0,
                 uint64_t expected_epoch = 0);
  void PostCompareSwap(RKey rkey, uint64_t remote_offset, uint64_t compare, uint64_t swap,
                       uint64_t wr_id = 0, uint64_t expected_epoch = 0);
  void PostFetchAdd(RKey rkey, uint64_t remote_offset, uint64_t add, uint64_t wr_id = 0,
                    uint64_t expected_epoch = 0);

  size_t pending_wrs() const noexcept { return send_queue_.size(); }

  /// Executes everything posted since the last ring. Returns the number of
  /// network round trips this ring consumed (>= 1 if anything was posted;
  /// > 1 when the doorbell window forced a split).
  uint32_t RingDoorbell();

  /// --- completion queue ---
  bool PollCompletion(Completion* out);
  /// Rings if needed, then drains the CQ into `out`. Convenience for callers
  /// that post a batch and want all results synchronously. Every posted WR
  /// gets its own entry with its own status — errors never swallow the
  /// completions of sibling WRs in the batch.
  std::vector<Completion> Flush();

  /// Maps a completion status to a Status. kRemoteUnreachable -> Unavailable
  /// and kTimeout -> DeadlineExceeded, both retryable under RetryPolicy.
  /// kFenced also maps to Unavailable (distinct message): the cure is the
  /// same — refresh the replica directory and retry against the new primary.
  static Status ToStatus(const Completion& c);

  /// --- one-shot conveniences (each is one round trip) ---
  /// Precondition: the CQ is drained (no stale completions); they return
  /// Internal otherwise rather than mis-attribute an old completion.
  Status Read(RKey rkey, uint64_t remote_offset, std::span<uint8_t> dst,
              uint64_t expected_epoch = 0);
  Status Write(RKey rkey, uint64_t remote_offset, std::span<const uint8_t> src,
               uint64_t expected_epoch = 0);
  Result<uint64_t> CompareSwap(RKey rkey, uint64_t remote_offset, uint64_t compare, uint64_t swap);
  Result<uint64_t> FetchAdd(RKey rkey, uint64_t remote_offset, uint64_t add,
                            uint64_t expected_epoch = 0);

  const QpStats& stats() const noexcept { return stats_; }
  void ResetStats() noexcept { stats_ = QpStats{}; }

  /// Attaches the owning instance's trace context: every doorbell ring then
  /// records an "rdma.ring" span (a = WRs in the ring, b = payload bytes)
  /// stamped with the ring's simulated start/end. Pass nullptr to detach.
  /// The context must outlive the QP (or a subsequent set_trace(nullptr)).
  void set_trace(const telemetry::TraceContext* trace) noexcept { trace_ = trace; }

  uint32_t qp_id() const noexcept { return qp_id_; }

 private:
  Completion ExecuteOne(const WorkRequest& wr, uint64_t* extra_ns);
  /// Installs/refreshes the injector when the fabric's armed plan changed.
  void RefreshInjector();

  Fabric* fabric_;
  SimClock* clock_;
  uint32_t max_doorbell_wrs_;
  uint32_t qp_id_;
  std::vector<WorkRequest> send_queue_;
  std::deque<Completion> completion_queue_;
  QpStats stats_;
  /// Plan the injector below was built from (pointer identity tracks re-arms).
  std::shared_ptr<const FaultPlan> armed_plan_;
  std::unique_ptr<FaultInjector> injector_;
  const telemetry::TraceContext* trace_ = nullptr;
};

}  // namespace dhnsw::rdma
