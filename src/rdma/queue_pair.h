// Queue pair: the compute-instance endpoint for one-sided verbs.
//
// Usage mirrors ibverbs: post one or more work requests, then ring the
// doorbell. All WRs posted before a ring execute in a single network round
// trip (doorbell batching); completions are polled from the completion queue.
// A QP charges network time to the SimClock it was created with — that clock
// is the "network" column of the paper's latency breakdown. Each doorbell
// chunk executes through one TransportChannel (transport.h): on the simulator
// the charge is the deterministic NicModel cost plus injected latency,
// exactly as before transports existed; on a real backend (tcp/verbs) it is
// the measured wall time of the round trip, so the clock tracks real elapsed
// network time and retry deadlines keep working.
//
// Concurrency: one QP belongs to one compute instance thread, as in the
// paper's per-instance worker design. Different QPs may be used from
// different threads; remote atomics are serialized by the memory region.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <vector>

#include "common/sim_clock.h"
#include "common/status.h"
#include "rdma/fabric.h"
#include "rdma/rdma_types.h"
#include "telemetry/trace.h"

namespace dhnsw::rdma {

/// A set of doorbell rings on the async issue/poll path (post now, reap
/// completions later). Lifecycle, all driven by the owning QueuePair:
///   1. owner thread: post WRs, mark ring boundaries with StageAsyncRing,
///      then detach the staged groups with TakeAsyncBatch;
///   2. any thread:   ExecuteAsyncBatch — data movement and fault evaluation
///      only, in posted order;
///   3. owner thread: ReapAsyncBatch — all deferred accounting (sim-clock
///      charges, QpStats, trace spans, metric mirroring) in exactly the
///      per-chunk order the synchronous RingDoorbell would have used, then
///      the completions land in the CQ for polling.
/// The split keeps every non-thread-safe QP resource (SimClock, QpStats,
/// TraceBuffer, CQ) on the owner thread, so the simulated timeline of an
/// async batch is bit-identical to ringing the same WRs synchronously.
class AsyncBatch {
 public:
  AsyncBatch() = default;
  AsyncBatch(const AsyncBatch&) = delete;
  AsyncBatch& operator=(const AsyncBatch&) = delete;

  size_t num_wrs() const noexcept { return wrs_.size(); }
  bool executed() const noexcept { return executed_; }
  /// Per-WR completions in posted order; meaningful only after execution.
  std::span<const Completion> completions() const noexcept { return completions_; }

 private:
  friend class QueuePair;
  /// One StageAsyncRing call: wrs_[begin, end). The doorbell window captured
  /// at take time further splits oversized groups at reap, mirroring
  /// RingDoorbell's chunking.
  struct RingGroup {
    size_t begin = 0;
    size_t end = 0;
  };
  std::vector<WorkRequest> wrs_;
  std::vector<RingGroup> groups_;
  uint32_t window_ = 1;
  std::vector<Completion> completions_;  ///< aligned with wrs_
  /// Raw ring charges (injected latency on sim, measured wall ns on real
  /// backends), aligned with wrs_: each doorbell chunk's charge is stored at
  /// the chunk's first WR index, zeros elsewhere, so reap-side per-chunk
  /// summation recovers exactly one charge per ring.
  std::vector<uint64_t> extra_ns_;
  uint64_t injected_faults_ = 0;
  bool executed_ = false;
};

class QueuePair {
 public:
  /// `clock` may be null (network time is then simply not recorded).
  /// `max_doorbell_wrs` caps WRs per ring; a ring with more WRs is split into
  /// ceil(N / max) round trips, modeling a bounded NIC doorbell window.
  QueuePair(Fabric* fabric, SimClock* clock, uint32_t max_doorbell_wrs = 64);

  uint32_t max_doorbell_wrs() const noexcept { return max_doorbell_wrs_; }
  void set_max_doorbell_wrs(uint32_t n) noexcept { max_doorbell_wrs_ = n == 0 ? 1 : n; }

  /// --- posting (no network activity yet) ---
  /// `expected_epoch` carries the replication fence: 0 (default) posts an
  /// unfenced op — the seed behaviour; non-zero ops execute only when they
  /// match the target region's current fence epoch (else kFenced).
  void PostRead(RKey rkey, uint64_t remote_offset, std::span<uint8_t> dst, uint64_t wr_id = 0,
                uint64_t expected_epoch = 0);
  void PostWrite(RKey rkey, uint64_t remote_offset, std::span<const uint8_t> src, uint64_t wr_id = 0,
                 uint64_t expected_epoch = 0);
  void PostCompareSwap(RKey rkey, uint64_t remote_offset, uint64_t compare, uint64_t swap,
                       uint64_t wr_id = 0, uint64_t expected_epoch = 0);
  void PostFetchAdd(RKey rkey, uint64_t remote_offset, uint64_t add, uint64_t wr_id = 0,
                    uint64_t expected_epoch = 0);

  size_t pending_wrs() const noexcept { return send_queue_.size(); }

  /// Executes everything posted since the last ring. Returns the number of
  /// network round trips this ring consumed (>= 1 if anything was posted;
  /// > 1 when the doorbell window forced a split).
  uint32_t RingDoorbell();

  /// --- async issue/poll path (see AsyncBatch) ---
  /// Moves everything posted since the last ring/stage into the pending async
  /// batch as ONE ring group — the async analogue of a RingDoorbell call
  /// boundary (used e.g. when the destination memory node changes mid-batch).
  void StageAsyncRing();
  /// Detaches the staged groups as an executable batch, capturing the current
  /// doorbell window and arming the fault injector NOW (owner thread), so
  /// fault decisions remain a pure function of this QP's WR sequence no
  /// matter which thread executes. Any posted-but-unstaged WRs are staged
  /// first. Returns nullptr when nothing is staged.
  std::unique_ptr<AsyncBatch> TakeAsyncBatch();
  /// Executes the batch's WRs in posted order: fabric data movement and fault
  /// evaluation ONLY — no clock, stats, trace, or CQ access — so it may run
  /// on a worker thread while the owner computes, PROVIDED the QP is
  /// otherwise idle (no posts, rings, one-shots, or reaps) until the matching
  /// ReapAsyncBatch. The caller supplies the happens-before edges (e.g. a
  /// future join) around this call.
  void ExecuteAsyncBatch(AsyncBatch* batch);
  /// Owner thread, after execution: performs the deferred accounting and
  /// pushes the batch's completions into the CQ. Returns the number of
  /// network round trips charged (same count RingDoorbell would return).
  uint32_t ReapAsyncBatch(AsyncBatch* batch);

  /// --- completion queue ---
  bool PollCompletion(Completion* out);
  /// Rings if needed, then drains the CQ into `out`. Convenience for callers
  /// that post a batch and want all results synchronously. Every posted WR
  /// gets its own entry with its own status — errors never swallow the
  /// completions of sibling WRs in the batch.
  std::vector<Completion> Flush();

  /// Maps a completion status to a Status. kRemoteUnreachable -> Unavailable
  /// and kTimeout -> DeadlineExceeded, both retryable under RetryPolicy.
  /// kFenced also maps to Unavailable (distinct message): the cure is the
  /// same — refresh the replica directory and retry against the new primary.
  static Status ToStatus(const Completion& c);

  /// --- one-shot conveniences (each is one round trip) ---
  /// Precondition: the CQ is drained (no stale completions); they return
  /// Internal otherwise rather than mis-attribute an old completion.
  Status Read(RKey rkey, uint64_t remote_offset, std::span<uint8_t> dst,
              uint64_t expected_epoch = 0);
  Status Write(RKey rkey, uint64_t remote_offset, std::span<const uint8_t> src,
               uint64_t expected_epoch = 0);
  Result<uint64_t> CompareSwap(RKey rkey, uint64_t remote_offset, uint64_t compare, uint64_t swap);
  Result<uint64_t> FetchAdd(RKey rkey, uint64_t remote_offset, uint64_t add,
                            uint64_t expected_epoch = 0);

  const QpStats& stats() const noexcept { return stats_; }
  void ResetStats() noexcept { stats_ = QpStats{}; }

  /// Attaches the owning instance's trace context: every doorbell ring then
  /// records an "rdma.ring" span (a = WRs in the ring, b = payload bytes)
  /// stamped with the ring's simulated start/end. Pass nullptr to detach.
  /// The context must outlive the QP (or a subsequent set_trace(nullptr)).
  void set_trace(const telemetry::TraceContext* trace) noexcept { trace_ = trace; }

  uint32_t qp_id() const noexcept { return qp_id_; }

 private:
  /// Executes one doorbell chunk through the transport channel: data movement
  /// and fault evaluation (sim: per-WR in the backend; real: client-side in
  /// the chaos decorator), no QP accounting. Returns the chunk's
  /// raw charge — injected latency on sim, measured wall ns on real backends.
  /// Fault hits are counted into `*injected_faults` (the sync path passes
  /// &stats_.injected_faults, the async path a batch-local count folded in at
  /// reap).
  uint64_t ExecuteRing(std::span<const WorkRequest> wrs, std::span<Completion> completions,
                       uint64_t* injected_faults);
  /// Shared reap-side accounting for one doorbell chunk whose WRs already
  /// executed: QpStats, clock charge (NicModel cost + `charge_ns` on sim,
  /// `charge_ns` verbatim on real backends), ring histogram, "rdma.ring"
  /// span, fenced-op counting.
  void AccountRing(std::span<const WorkRequest> wrs, std::span<const Completion> completions,
                   uint64_t charge_ns);
  /// Mirrors the QpStats delta since `before` into the process registry.
  void MirrorStatsDelta(const QpStats& before);
  /// Installs/refreshes the injector when the fabric's armed plan changed.
  /// On sim the injector is evaluated per-WR in the backend; on real
  /// transports the ChaosChannel decorator consumes it client-side.
  void RefreshInjector();

  Fabric* fabric_;
  SimClock* clock_;
  std::unique_ptr<TransportChannel> channel_;  ///< this QP's data-plane connection
  TransportKind kind_;
  bool sim_;
  uint32_t max_doorbell_wrs_;
  uint32_t qp_id_;
  std::vector<WorkRequest> send_queue_;
  std::unique_ptr<AsyncBatch> async_staging_;  ///< groups staged, not yet taken
  std::deque<Completion> completion_queue_;
  QpStats stats_;
  /// Plan the injector below was built from (pointer identity tracks re-arms).
  std::shared_ptr<const FaultPlan> armed_plan_;
  std::unique_ptr<FaultInjector> injector_;
  const telemetry::TraceContext* trace_ = nullptr;
};

}  // namespace dhnsw::rdma
