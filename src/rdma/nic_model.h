// Deterministic NIC/network cost model.
//
// The simulator executes the exact verb sequence the real system would issue;
// this model converts (round trips, bytes, work requests) into nanoseconds.
// Constants default to a ConnectX-6-class 100 Gb/s RoCE part, calibrated
// against the paper's measured numbers (Tables 1-2) and the design guidelines
// of Kalia et al. [11]:
//   - ~1.8 us base round-trip for a small READ,
//   - 100 Gb/s line rate,
//   - each extra WR in a doorbell batch adds a PCIe DMA fetch (~250 ns) but
//     no extra network round trip,
//   - beyond `doorbell_linear_limit` WRs per ring the NIC's WR-processing
//     pipeline saturates and each extra WR costs `doorbell_saturated_ns`
//     (the "scalability of the RDMA NIC" tradeoff in paper §3.2).
// The constants can also be measured instead of assumed: `dhnsw_cli
// calibrate` runs a microbenchmark over a real transport (tcp/verbs) and
// writes the fitted constants as a JSON artifact (ToJson), which LoadFromJson
// reads back into a NicModelConfig — grounding the simulated cost model in
// the hardware the calibration ran on. `source` records the provenance.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "common/status.h"

namespace dhnsw::rdma {

struct NicModelConfig {
  uint64_t base_round_trip_ns = 1800;   ///< propagation + NIC processing, per ring
  double bandwidth_gbps = 100.0;        ///< line rate for payload bytes
  uint64_t per_wr_dma_ns = 250;         ///< PCIe/DMA cost per additional WR in a ring
  uint32_t doorbell_linear_limit = 16;  ///< WRs per ring before saturation
  uint64_t doorbell_saturated_ns = 900; ///< per-WR cost beyond the linear limit
  uint64_t atomic_extra_ns = 400;       ///< extra latency of a remote atomic
  /// Where these constants came from: the default is the datasheet-derived
  /// ConnectX-6 model above; `dhnsw_cli calibrate` overwrites it with e.g.
  /// "calibrated-tcp" when the constants were measured on a real transport.
  std::string source = "connectx6-datasheet";

  /// Wire time for `bytes` of payload at the configured bandwidth.
  uint64_t PayloadNs(uint64_t bytes) const noexcept;

  /// Serializes every field as a flat JSON object (the calibration artifact).
  std::string ToJson() const;
  /// Parses a ToJson artifact. Unknown keys are ignored; missing keys keep
  /// their defaults; a malformed document is an error.
  static Result<NicModelConfig> LoadFromJson(std::string_view json);
};

/// Summary of one doorbell ring, fed to the model.
struct BatchShape {
  uint32_t num_wrs = 0;
  uint64_t payload_bytes = 0;
  uint32_t num_atomics = 0;
};

/// Simulated duration of one doorbell ring (== one network round trip).
uint64_t CostOfBatch(const NicModelConfig& config, const BatchShape& shape) noexcept;

}  // namespace dhnsw::rdma
