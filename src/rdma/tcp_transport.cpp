#include "rdma/tcp_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/logging.h"
#include "common/rng.h"

namespace dhnsw::rdma {

namespace {

constexpr uint32_t kFrameMagic = 0x64524e47;  // "dRNG"
/// Caps a frame a corrupted peer could make us allocate for.
constexpr uint32_t kMaxWrsPerFrame = 1u << 20;
constexpr uint64_t kMaxPayloadPerWr = 1ull << 32;

/// Fixed-size WR descriptor on the wire (host byte order: loopback only).
struct WireWr {
  uint8_t opcode = 0;
  uint8_t pad[3] = {0, 0, 0};
  uint32_t rkey = 0;
  uint64_t remote_offset = 0;
  uint64_t length = 0;  ///< local buffer size (payload for READ/WRITE)
  uint64_t expected_epoch = 0;
  uint64_t compare = 0;
  uint64_t swap_or_add = 0;
};
static_assert(sizeof(WireWr) == 48);

/// Per-WR completion on the wire.
struct WireCompletion {
  uint8_t status = 0;
  uint8_t opcode = 0;
  uint8_t pad[2] = {0, 0};
  uint32_t byte_len = 0;
  uint64_t atomic_result = 0;
};
static_assert(sizeof(WireCompletion) == 16);

struct FrameHeader {
  uint32_t magic = kFrameMagic;
  uint32_t num_wrs = 0;
};
static_assert(sizeof(FrameHeader) == 8);

/// Full-buffer read; false on EOF/error. EINTR is retried; a receive timeout
/// (EAGAIN/EWOULDBLOCK from SO_RCVTIMEO) sets `*timed_out` when non-null.
bool ReadFull(int fd, void* buf, size_t len, bool* timed_out = nullptr) {
  uint8_t* p = static_cast<uint8_t*>(buf);
  while (len > 0) {
    const ssize_t n = ::recv(fd, p, len, 0);
    if (n > 0) {
      p += n;
      len -= static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK) && timed_out != nullptr) {
      *timed_out = true;
    }
    return false;
  }
  return true;
}

bool WriteFull(int fd, const void* buf, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(buf);
  while (len > 0) {
    const ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
    if (n > 0) {
      p += n;
      len -= static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

void CloseFd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

/// One QueuePair's connection. Reuses its serialization buffers across rings
/// so steady-state execution performs no per-ring allocation once warmed.
class TcpChannel final : public TransportChannel {
 public:
  TcpChannel(uint16_t port, const TransportOptions& options, uint64_t jitter_seed)
      : port_(port),
        recv_timeout_ms_(options.tcp_recv_timeout_ms),
        connect_timeout_ms_(options.tcp_connect_timeout_ms),
        reconnect_initial_backoff_ns_(options.tcp_reconnect_initial_backoff_ns),
        reconnect_max_backoff_ns_(options.tcp_reconnect_max_backoff_ns),
        rng_(jitter_seed) {}

  ~TcpChannel() override { CloseFd(fd_); }

  uint64_t ExecuteRing(std::span<const WorkRequest> wrs, std::span<Completion> completions,
                       const RingFaultContext& faults) override {
    (void)faults;  // injection happens in ChaosChannel before WRs get here
    const auto start = std::chrono::steady_clock::now();
    const bool ok = RoundTrip(wrs, completions);
    const auto end = std::chrono::steady_clock::now();
    if (!ok) {
      // A failed round trip poisons the connection: drop it so the next ring
      // reconnects cleanly instead of desynchronizing on a half-read frame.
      CloseFd(fd_);
      ++consecutive_failures_;
      const WcStatus status = timed_out_ ? WcStatus::kTimeout : WcStatus::kRemoteUnreachable;
      for (size_t i = 0; i < wrs.size(); ++i) {
        completions[i] = Completion{wrs[i].wr_id, wrs[i].opcode, status, 0, 0};
      }
    } else {
      consecutive_failures_ = 0;
    }
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start).count());
  }

  /// Chaos hook: sever the connection. The next ring reconnects (with
  /// backoff once failures accumulate). Closing mid-ring from another thread
  /// is NOT supported — channels are single-threaded like their QP.
  void Disconnect() override { CloseFd(fd_); }

 private:
  /// Jittered exponential backoff between reconnect attempts: doubling from
  /// the configured initial to the cap, each wait drawn uniformly from
  /// [backoff/2, 3*backoff/2] so a herd of channels re-dialing a rebooted
  /// memory node decorrelates instead of synchronizing.
  void BackoffBeforeReconnect() {
    if (consecutive_failures_ == 0 || reconnect_initial_backoff_ns_ == 0) return;
    uint64_t backoff = reconnect_initial_backoff_ns_;
    for (uint32_t i = 1; i < consecutive_failures_ && backoff < reconnect_max_backoff_ns_;
         ++i) {
      backoff *= 2;
    }
    backoff = std::min(backoff, reconnect_max_backoff_ns_);
    const uint64_t jittered = backoff / 2 + rng_.NextBounded(backoff + 1);
    std::this_thread::sleep_for(std::chrono::nanoseconds(jittered));
  }

  /// Non-blocking connect + poll with a deadline: a black-holed address
  /// surfaces as a failed connect after connect_timeout_ms_ instead of
  /// wedging the compute thread in a blocking connect(2) for minutes.
  bool ConnectWithDeadline(const sockaddr_in& addr) {
    const int flags = ::fcntl(fd_, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK) != 0) return false;
    int rc = ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
    if (rc != 0 && errno != EINPROGRESS) return false;
    if (rc != 0) {
      pollfd pfd{};
      pfd.fd = fd_;
      pfd.events = POLLOUT;
      const int timeout_ms = connect_timeout_ms_ == 0
                                 ? -1
                                 : static_cast<int>(connect_timeout_ms_);
      int pr;
      do {
        pr = ::poll(&pfd, 1, timeout_ms);
      } while (pr < 0 && errno == EINTR);
      if (pr <= 0) return false;  // timeout (0) or poll error
      int err = 0;
      socklen_t len = sizeof err;
      if (::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
        return false;
      }
    }
    // Back to blocking; SO_RCVTIMEO governs the data-plane deadlines.
    return ::fcntl(fd_, F_SETFL, flags) == 0;
  }

  bool Connect() {
    if (fd_ >= 0) return true;
    BackoffBeforeReconnect();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    if (recv_timeout_ms_ > 0) {
      timeval tv{};
      tv.tv_sec = recv_timeout_ms_ / 1000;
      tv.tv_usec = static_cast<suseconds_t>((recv_timeout_ms_ % 1000) * 1000);
      ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port_);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (!ConnectWithDeadline(addr)) {
      CloseFd(fd_);
      return false;
    }
    return true;
  }

  bool RoundTrip(std::span<const WorkRequest> wrs, std::span<Completion> completions) {
    timed_out_ = false;
    if (!Connect()) return false;

    // --- request frame: header + descriptors + WRITE payloads ---
    size_t write_bytes = 0;
    for (const WorkRequest& wr : wrs) {
      if (wr.opcode == Opcode::kWrite) write_bytes += wr.local.size();
    }
    request_.clear();
    request_.resize(sizeof(FrameHeader) + wrs.size() * sizeof(WireWr) + write_bytes);
    FrameHeader header;
    header.num_wrs = static_cast<uint32_t>(wrs.size());
    std::memcpy(request_.data(), &header, sizeof header);
    size_t off = sizeof(FrameHeader);
    for (const WorkRequest& wr : wrs) {
      WireWr w;
      w.opcode = static_cast<uint8_t>(wr.opcode);
      w.rkey = wr.rkey;
      w.remote_offset = wr.remote_offset;
      w.length = wr.local.size();
      w.expected_epoch = wr.expected_epoch;
      w.compare = wr.compare;
      w.swap_or_add = wr.swap_or_add;
      std::memcpy(request_.data() + off, &w, sizeof w);
      off += sizeof w;
    }
    for (const WorkRequest& wr : wrs) {
      if (wr.opcode != Opcode::kWrite || wr.local.empty()) continue;
      std::memcpy(request_.data() + off, wr.local.data(), wr.local.size());
      off += wr.local.size();
    }
    if (!WriteFull(fd_, request_.data(), request_.size())) return false;

    // --- response frame: header + completions + READ payloads ---
    FrameHeader resp;
    if (!ReadFull(fd_, &resp, sizeof resp, &timed_out_)) return false;
    if (resp.magic != kFrameMagic || resp.num_wrs != wrs.size()) return false;
    response_.clear();
    response_.resize(wrs.size() * sizeof(WireCompletion));
    if (!ReadFull(fd_, response_.data(), response_.size(), &timed_out_)) return false;
    size_t read_bytes = 0;
    for (size_t i = 0; i < wrs.size(); ++i) {
      WireCompletion wc;
      std::memcpy(&wc, response_.data() + i * sizeof(WireCompletion), sizeof wc);
      Completion& c = completions[i];
      c.wr_id = wrs[i].wr_id;
      c.opcode = wrs[i].opcode;
      c.status = static_cast<WcStatus>(wc.status);
      c.byte_len = wc.byte_len;
      c.atomic_result = wc.atomic_result;
      if (wrs[i].opcode == Opcode::kRead && c.status == WcStatus::kSuccess) {
        if (c.byte_len != wrs[i].local.size()) {
          c.status = WcStatus::kLocalLengthError;
          return false;  // stream is desynchronized; drop the connection
        }
        read_bytes += c.byte_len;
      }
    }
    // READ payloads land straight into the posted local buffers.
    for (size_t i = 0; i < wrs.size(); ++i) {
      if (wrs[i].opcode != Opcode::kRead || completions[i].status != WcStatus::kSuccess) {
        continue;
      }
      if (!ReadFull(fd_, wrs[i].local.data(), wrs[i].local.size(), &timed_out_)) return false;
    }
    (void)read_bytes;
    return true;
  }

  uint16_t port_;
  uint32_t recv_timeout_ms_;
  uint32_t connect_timeout_ms_;
  uint64_t reconnect_initial_backoff_ns_;
  uint64_t reconnect_max_backoff_ns_;
  int fd_ = -1;
  bool timed_out_ = false;
  uint32_t consecutive_failures_ = 0;
  Xoshiro256 rng_;  ///< reconnect jitter, deterministic per channel
  std::vector<uint8_t> request_;
  std::vector<uint8_t> response_;
};

}  // namespace

Result<std::unique_ptr<TcpTransport>> TcpTransport::Create(const TransportOptions& options) {
  std::unique_ptr<TcpTransport> transport(new TcpTransport(options));
  Status st = Status::Ok();
  // Ephemeral-port retry: with tcp_port == 0 the kernel hands out a free
  // port, but a transient bind/listen failure under parallel ctest load is
  // still retried a few times rather than flaking the whole test binary.
  for (int attempt = 0; attempt < 4; ++attempt) {
    st = transport->Start();
    if (st.ok()) return transport;
  }
  return st;
}

Status TcpTransport::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("tcp transport: socket(): ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.tcp_port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(listen_fd_, 128) != 0) {
    const std::string err = std::strerror(errno);
    CloseFd(listen_fd_);
    return Status::Unavailable("tcp transport: bind/listen on loopback failed: " + err);
  }
  socklen_t len = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const std::string err = std::strerror(errno);
    CloseFd(listen_fd_);
    return Status::Internal("tcp transport: getsockname(): " + err);
  }
  port_ = ntohs(addr.sin_port);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

TcpTransport::~TcpTransport() { Shutdown(); }

void TcpTransport::set_hang_handlers(bool hang) {
  {
    std::lock_guard<std::mutex> lock(hang_mutex_);
    hang_handlers_ = hang;
  }
  hang_cv_.notify_all();
}

void TcpTransport::Shutdown() {
  if (stopping_.exchange(true)) return;
  hang_cv_.notify_all();  // release handlers parked by set_hang_handlers(true)
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    CloseFd(listen_fd_);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::unique_ptr<Conn>> handlers;
  {
    std::lock_guard<std::mutex> lock(handler_mutex_);
    handlers.swap(handlers_);
  }
  // Half-close every connection FIRST: a handler parked in recv() wakes with
  // EOF even when its client end is still open (e.g. the transport dies
  // before some QueuePair), so the joins below can never deadlock.
  for (const auto& conn : handlers) {
    ::shutdown(conn->fd, SHUT_RDWR);
  }
  for (auto& conn : handlers) {
    if (conn->thread.joinable()) conn->thread.join();
    ::close(conn->fd);
  }
}

void TcpTransport::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed (shutdown) or fatal error
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    std::lock_guard<std::mutex> lock(handler_mutex_);
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    Conn* raw = conn.get();
    handlers_.push_back(std::move(conn));
    raw->thread = std::thread([this, fd] { ServeConnection(fd); });
  }
}

void TcpTransport::ServeConnection(int fd) {
  std::vector<uint8_t> descriptors;
  std::vector<uint8_t> payload_in;    // WRITE payloads from the client
  std::vector<uint8_t> payload_out;   // READ payloads back to the client
  std::vector<WorkRequest> wrs;
  std::vector<Completion> completions;
  std::vector<uint8_t> response;

  for (;;) {
    FrameHeader header;
    if (!ReadFull(fd, &header, sizeof header)) break;
    if (header.magic != kFrameMagic || header.num_wrs == 0 ||
        header.num_wrs > kMaxWrsPerFrame) {
      break;  // protocol violation: drop the connection
    }
    descriptors.resize(header.num_wrs * sizeof(WireWr));
    if (!ReadFull(fd, descriptors.data(), descriptors.size())) break;

    uint64_t write_bytes = 0;
    uint64_t read_bytes = 0;
    bool sane = true;
    wrs.assign(header.num_wrs, WorkRequest{});
    for (uint32_t i = 0; i < header.num_wrs && sane; ++i) {
      WireWr w;
      std::memcpy(&w, descriptors.data() + i * sizeof(WireWr), sizeof w);
      if (w.length > kMaxPayloadPerWr) {
        sane = false;
        break;
      }
      WorkRequest& wr = wrs[i];
      wr.opcode = static_cast<Opcode>(w.opcode);
      wr.rkey = w.rkey;
      wr.remote_offset = w.remote_offset;
      wr.expected_epoch = w.expected_epoch;
      wr.compare = w.compare;
      wr.swap_or_add = w.swap_or_add;
      if (wr.opcode == Opcode::kWrite) {
        write_bytes += w.length;
      } else if (wr.opcode == Opcode::kRead) {
        read_bytes += w.length;
      }
      // Length is carried via the local span size, wired up below once the
      // payload buffers have their final size (resize may move them).
      wr.wr_id = w.length;
    }
    if (!sane) break;

    payload_in.resize(write_bytes);
    if (!ReadFull(fd, payload_in.data(), payload_in.size())) break;
    payload_out.resize(read_bytes);

    size_t in_off = 0;
    size_t out_off = 0;
    for (WorkRequest& wr : wrs) {
      const size_t length = static_cast<size_t>(wr.wr_id);
      wr.wr_id = 0;
      if (wr.opcode == Opcode::kWrite) {
        wr.local = {payload_in.data() + in_off, length};
        in_off += length;
      } else if (wr.opcode == Opcode::kRead) {
        wr.local = {payload_out.data() + out_off, length};
        out_off += length;
      }
    }

    // Chaos hook: a "hung" memory node has accepted and fully read the
    // request but never executes or answers — park here until released.
    {
      std::unique_lock<std::mutex> lock(hang_mutex_);
      hang_cv_.wait(lock, [this] { return !hang_handlers_ || stopping_.load(); });
      if (stopping_.load()) break;
    }

    completions.assign(wrs.size(), Completion{});
    ExecuteRingLocal(wrs, completions, RingFaultContext{});

    response.clear();
    response.resize(sizeof(FrameHeader) + wrs.size() * sizeof(WireCompletion));
    FrameHeader resp;
    resp.num_wrs = header.num_wrs;
    std::memcpy(response.data(), &resp, sizeof resp);
    size_t off = sizeof(FrameHeader);
    for (const Completion& c : completions) {
      WireCompletion wc;
      wc.status = static_cast<uint8_t>(c.status);
      wc.opcode = static_cast<uint8_t>(c.opcode);
      wc.byte_len = c.byte_len;
      wc.atomic_result = c.atomic_result;
      std::memcpy(response.data() + off, &wc, sizeof wc);
      off += sizeof wc;
    }
    if (!WriteFull(fd, response.data(), response.size())) break;
    // READ payloads, successful WRs only, posted order.
    bool write_ok = true;
    for (size_t i = 0; i < wrs.size() && write_ok; ++i) {
      if (wrs[i].opcode != Opcode::kRead || completions[i].status != WcStatus::kSuccess) {
        continue;
      }
      write_ok = WriteFull(fd, wrs[i].local.data(), wrs[i].local.size());
    }
    if (!write_ok) break;
  }
  // Half-close only: Shutdown() closes the fd after joining this thread.
  ::shutdown(fd, SHUT_RDWR);
}

std::unique_ptr<TransportChannel> TcpTransport::CreateChannel() {
  // Per-channel jitter seed: stable for a given (port, creation order), so
  // reconnect waits are reproducible within a process without being equal
  // across channels.
  static std::atomic<uint64_t> counter{0};
  const uint64_t seed =
      SplitMix64((uint64_t{port_} << 32) ^ counter.fetch_add(1)).Next();
  return std::make_unique<TcpChannel>(port_, options_, seed);
}

}  // namespace dhnsw::rdma
