#include "rdma/chaos_transport.h"

#include <chrono>
#include <thread>
#include <utility>
#include <vector>

#include "rdma/fault_injection.h"
#include "telemetry/metrics.h"

namespace dhnsw::rdma {

namespace {

// Injection counters, one per (transport, fault kind). Faults are cold by
// definition, so the per-injection registry lookup (a sharded hash probe)
// is fine; the hot no-fault path never touches the registry.
void CountInjection(TransportKind transport, FaultKind kind) {
  std::string name = "dhnsw_chaos_injected_total{transport=\"";
  name += TransportKindName(transport);
  name += "\",kind=\"";
  name += FaultKindName(kind);
  name += "\"}";
  telemetry::DefaultRegistry().GetCounter(name)->Add(1);
}

// A real stall on a real backend: the charge model for non-sim transports is
// measured wall time, so injected latency must actually elapse.
void StallNs(uint64_t ns) {
  if (ns == 0) return;
  std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
}

class ChaosChannel final : public TransportChannel {
 public:
  ChaosChannel(std::unique_ptr<TransportChannel> inner, Transport* transport)
      : inner_(std::move(inner)), transport_(transport) {}

  uint64_t ExecuteRing(std::span<const WorkRequest> wrs,
                       std::span<Completion> completions,
                       const RingFaultContext& faults) override;

  void Disconnect() override { inner_->Disconnect(); }

 private:
  std::unique_ptr<TransportChannel> inner_;
  Transport* transport_;  ///< the wrapping ChaosTransport's control plane
};

uint64_t ChaosChannel::ExecuteRing(std::span<const WorkRequest> wrs,
                                   std::span<Completion> completions,
                                   const RingFaultContext& faults) {
  // No plan armed on this QP: pure passthrough, zero overhead beyond the
  // virtual call. The inner channel always sees a null injector.
  if (faults.injector == nullptr) {
    return inner_->ExecuteRing(wrs, completions, RingFaultContext{});
  }

  const TransportKind kind = transport_->kind();
  uint64_t charge_ns = 0;
  size_t seg_start = 0;   // first WR of the pending passthrough segment
  bool disconnected = false;
  // Bit-flips recorded during evaluation, applied only after the inner
  // execution succeeded (a corrupted payload implies the bytes moved).
  struct PendingFlip {
    size_t index;
    std::vector<std::pair<uint32_t, uint8_t>> flips;
  };
  std::vector<PendingFlip> pending_flips;

  // Executes WRs [seg_start, end) through the inner channel as one wire
  // trip. Faults split a doorbell into contiguous posted-order segments;
  // WR order within and across segments is preserved.
  auto flush = [&](size_t end) {
    if (seg_start >= end) return;
    charge_ns += inner_->ExecuteRing(wrs.subspan(seg_start, end - seg_start),
                                     completions.subspan(seg_start, end - seg_start),
                                     RingFaultContext{});
  };

  auto complete_here = [&](size_t i, WcStatus status) {
    completions[i] = Completion{};
    completions[i].wr_id = wrs[i].wr_id;
    completions[i].opcode = wrs[i].opcode;
    completions[i].status = status;
  };

  auto count = [&](size_t, FaultKind fault_kind) {
    if (faults.injected_faults != nullptr) ++*faults.injected_faults;
    CountInjection(kind, fault_kind);
  };

  for (size_t i = 0; i < wrs.size(); ++i) {
    const WorkRequest& wr = wrs[i];

    if (disconnected) {
      // The connection died earlier in this ring; everything after the
      // severing WR fails without being evaluated (it never reached the
      // wire, and a dead wire consumes no fault triggers).
      complete_here(i, WcStatus::kRemoteUnreachable);
      continue;
    }

    // Connection-manager pre-checks, in the same order the sim applies them
    // (region -> reachability -> epoch fence): a WR the control plane would
    // reject is forwarded untouched — the inner backend produces the
    // authoritative error completion — and must not consume fault triggers.
    Result<NodeId> owner = transport_->OwnerOf(wr.rkey);
    if (!owner.ok() || transport_->FindRegion(wr.rkey) == nullptr ||
        !transport_->IsNodeReachable(owner.value()) ||
        !transport_->AdmitAccess(wr.rkey, wr.expected_epoch)) {
      continue;
    }

    FaultDecision d = faults.injector->Evaluate(owner.value(), wr);
    if (!d.fired) continue;

    switch (d.kind) {
      case FaultKind::kUnreachable:
        flush(i);
        complete_here(i, WcStatus::kRemoteUnreachable);
        count(i, d.kind);
        seg_start = i + 1;
        break;
      case FaultKind::kTimeout:
        flush(i);
        StallNs(d.extra_ns);
        charge_ns += d.extra_ns;
        complete_here(i, WcStatus::kTimeout);
        count(i, d.kind);
        seg_start = i + 1;
        break;
      case FaultKind::kDelay:
        // The op still executes (stays in the segment); the link was just
        // slow. Stall now so the measured charge reflects the spike.
        StallNs(d.extra_ns);
        charge_ns += d.extra_ns;
        count(i, d.kind);
        break;
      case FaultKind::kBitFlip:
        pending_flips.push_back(PendingFlip{i, std::move(d.flips)});
        count(i, d.kind);
        break;
      case FaultKind::kDisconnect:
        flush(i);
        inner_->Disconnect();
        complete_here(i, WcStatus::kRemoteUnreachable);
        count(i, d.kind);
        seg_start = i + 1;
        disconnected = true;
        break;
    }
  }
  if (!disconnected) flush(wrs.size());

  // On-the-wire corruption that slipped past link-level checks, applied the
  // same way the sim does: a READ damages the local destination buffer, a
  // WRITE damages the bytes that landed in the remote region (reached
  // through the shared in-process registry — the loopback memory node's own
  // DRAM). Downstream CRC verification is what catches these.
  for (const PendingFlip& pf : pending_flips) {
    if (completions[pf.index].status != WcStatus::kSuccess) continue;
    const WorkRequest& wr = wrs[pf.index];
    if (wr.opcode == Opcode::kRead) {
      for (const auto& [byte, mask] : pf.flips) {
        if (byte < wr.local.size()) wr.local[byte] ^= mask;
      }
    } else if (wr.opcode == Opcode::kWrite) {
      MemoryRegion* region = transport_->FindRegion(wr.rkey);
      if (region == nullptr) continue;
      std::span<uint8_t> host = region->host_span();
      for (const auto& [byte, mask] : pf.flips) {
        const uint64_t off = wr.remote_offset + byte;
        if (off < host.size()) host[off] ^= mask;
      }
    }
  }

  return charge_ns;
}

}  // namespace

std::unique_ptr<TransportChannel> ChaosTransport::CreateChannel() {
  return std::make_unique<ChaosChannel>(inner_->CreateChannel(), this);
}

}  // namespace dhnsw::rdma
