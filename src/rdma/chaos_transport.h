// Transport-agnostic chaos decorator (DESIGN.md §15).
//
// ChaosTransport wraps any real backend (tcp, verbs) and makes the seeded
// FaultPlan machinery — previously sim-by-construction — fire on real
// connections. The decorator sits between QueuePair and the wire:
//
//   QueuePair -> ChaosChannel -> TcpChannel/VerbsChannel -> socket/NIC
//
// The simulator does NOT get wrapped: it keeps its byte-identical per-WR
// injector inside LocalTransport::ExecuteWr, so same-seed wall-free traces
// are unchanged. On real backends the decorator evaluates each WR of a
// doorbell ring client-side, in posted order, against the armed
// FaultInjector (same determinism contract: plan seed × qp id × the QP's own
// WR sequence) and translates decisions into connection-level events:
//
//   kUnreachable — the WR never reaches the wire; completes
//                  kRemoteUnreachable (a black-holed ring).
//   kTimeout     — the WR never reaches the wire; the thread stalls for
//                  delay_ns of real wall time, then completes kTimeout
//                  (a lost response).
//   kDelay       — real wall-clock stall of delay_ns, then the WR executes
//                  normally (a slow link).
//   kBitFlip     — the WR executes; the moved payload is then corrupted
//                  exactly like the sim (READ: local destination buffer,
//                  WRITE: the bytes that landed remotely) so CRC paths fire.
//   kDisconnect  — the underlying connection is torn down mid-ring: the
//                  triggering WR and every later WR of the same doorbell
//                  complete kRemoteUnreachable without executing. The next
//                  ring reconnects (with jittered backoff on TCP).
//
// Ordering contract, mirrored from the sim: connection-manager rejections
// (unknown rkey, unreachable node, epoch fence) are checked BEFORE fault
// evaluation, so they never consume fault triggers; WRs the injector lets
// pass are forwarded to the inner channel in contiguous posted-order
// segments (a fault that kills WR i never reorders WRs around it).
//
// Injections are counted per (transport, kind) in
// dhnsw_chaos_injected_total{transport="...",kind="..."} and in the owning
// QP's injected_faults stat, same as the sim path.
#pragma once

#include <memory>

#include "rdma/transport.h"

namespace dhnsw::rdma {

class ChaosTransport final : public Transport {
 public:
  explicit ChaosTransport(std::unique_ptr<Transport> inner)
      : inner_(std::move(inner)) {}

  /// Reports the wrapped backend's kind: the decorator is invisible to
  /// callers that dispatch on kind()/is_sim()/name().
  TransportKind kind() const noexcept override { return inner_->kind(); }

  /// The wrapped backend (tests and backend-specific hooks).
  Transport& inner() noexcept { return *inner_; }
  const Transport& inner() const noexcept { return *inner_; }

  // --- control plane: pure forwarding ---
  NodeId AddNode(std::string name) override { return inner_->AddNode(std::move(name)); }
  size_t num_nodes() const override { return inner_->num_nodes(); }
  std::string NodeName(NodeId node) const override { return inner_->NodeName(node); }
  Result<RKey> RegisterMemory(NodeId node, size_t size, size_t alignment) override {
    return inner_->RegisterMemory(node, size, alignment);
  }
  MemoryRegion* FindRegion(RKey rkey) override { return inner_->FindRegion(rkey); }
  const MemoryRegion* FindRegion(RKey rkey) const override {
    return inner_->FindRegion(rkey);
  }
  Result<NodeId> OwnerOf(RKey rkey) const override { return inner_->OwnerOf(rkey); }
  void SetNodeReachable(NodeId node, bool reachable) override {
    inner_->SetNodeReachable(node, reachable);
  }
  bool IsNodeReachable(NodeId node) const override {
    return inner_->IsNodeReachable(node);
  }
  void SetRegionEpoch(RKey rkey, uint64_t epoch) override {
    inner_->SetRegionEpoch(rkey, epoch);
  }
  uint64_t RegionEpoch(RKey rkey) const override { return inner_->RegionEpoch(rkey); }
  void RevokeRegion(RKey rkey) override { inner_->RevokeRegion(rkey); }
  bool IsRegionRevoked(RKey rkey) const override {
    return inner_->IsRegionRevoked(rkey);
  }
  bool AdmitAccess(RKey rkey, uint64_t expected_epoch) const override {
    return inner_->AdmitAccess(rkey, expected_epoch);
  }

  /// Wraps the inner backend's channel in a ChaosChannel.
  std::unique_ptr<TransportChannel> CreateChannel() override;

 private:
  std::unique_ptr<Transport> inner_;
};

}  // namespace dhnsw::rdma
