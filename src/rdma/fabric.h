// The RDMA fabric: a set of nodes, each owning registered memory regions,
// connected by a pluggable transport backend (transport.h). Compute instances
// talk to the fabric through QueuePair objects (see queue_pair.h).
//
// By default the backend is the deterministic simulator (a modeled 100 Gb/s
// network); `DhnswConfig::transport` or the DHNSW_TRANSPORT environment
// variable selects the real TCP or verbs backend instead. Fabric itself is a
// façade: control-plane calls delegate to the transport's shared registry, so
// existing callers (memory nodes, snapshots, replication) are agnostic to the
// backend in use.
//
// Fault injection: tests can arm per-node failures so completions surface
// kRemoteUnreachable, exercising error paths that real deployments hit when a
// memory node reboots. Beyond the whole-node SetNodeReachable switch, a
// seedable FaultPlan (fault_injection.h) can be armed to inject per-verb
// transient/permanent failures, timeouts, latency spikes, disconnects, and
// payload bit-flips deterministically — on every backend. The simulator
// evaluates plans per-WR inside its ExecuteWr (byte-identical legacy path);
// real transports are wrapped in the ChaosTransport decorator at
// construction, which applies the same plans as connection-level events
// (chaos_transport.h, DESIGN.md §15).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"
#include "rdma/fault_injection.h"
#include "rdma/memory_region.h"
#include "rdma/nic_model.h"
#include "rdma/rdma_types.h"
#include "rdma/transport.h"

namespace dhnsw::rdma {

class Fabric {
 public:
  /// Builds the fabric over the transport `options` select (sim when
  /// defaulted). If the requested backend fails to initialise (e.g. the TCP
  /// server cannot bind), the fabric logs the error and falls back to the
  /// simulator rather than leaving callers with a null fabric.
  explicit Fabric(NicModelConfig nic = NicModelConfig{},
                  TransportOptions options = TransportOptions{});

  const NicModelConfig& nic_config() const noexcept { return nic_; }

  /// The backend this fabric runs on. Never null.
  Transport& transport() noexcept { return *transport_; }
  const Transport& transport() const noexcept { return *transport_; }

  /// Adds a node (memory or compute instance) to the fabric.
  NodeId AddNode(std::string name);

  size_t num_nodes() const;
  std::string NodeName(NodeId node) const;

  /// Registers `size` bytes of zeroed memory on `node`; returns its rkey.
  Result<RKey> RegisterMemory(NodeId node, size_t size, size_t alignment = 4096);

  /// Host-side (memory-node CPU) access to a region, e.g. for initial layout
  /// population by the memory node itself. Returns nullptr if unknown.
  MemoryRegion* FindRegion(RKey rkey);
  const MemoryRegion* FindRegion(RKey rkey) const;

  /// Node that owns `rkey`, or nullopt.
  Result<NodeId> OwnerOf(RKey rkey) const;

  /// Marks a node unreachable (true) / reachable (false). One-sided verbs
  /// against an unreachable node's regions complete with kRemoteUnreachable.
  void SetNodeReachable(NodeId node, bool reachable);
  bool IsNodeReachable(NodeId node) const;

  /// --- epoch fencing (replication failover; see core/replication.h) ---
  /// Installs/advances a region's fence epoch. Fenced work requests (those
  /// posted with a non-zero expected_epoch) execute only when their epoch
  /// matches; mismatches complete with kFenced. Unfenced requests (epoch 0)
  /// are unaffected, preserving single-replica behaviour byte-for-byte.
  void SetRegionEpoch(RKey rkey, uint64_t epoch);
  /// Current fence epoch of `rkey`; 0 = never fenced.
  uint64_t RegionEpoch(RKey rkey) const;
  /// Revokes a region's rkey, modeling the connection manager invalidating a
  /// dead replica's memory registration: EVERY subsequent access — fenced or
  /// not, read or write — completes with kFenced. Irreversible; a recovered
  /// node re-registers fresh memory instead. This is what makes a stale
  /// primary that comes back unable to serve reads or absorb writes.
  void RevokeRegion(RKey rkey);
  bool IsRegionRevoked(RKey rkey) const;
  /// Fence admission check for one access (used by queue pairs). True when
  /// the op may execute: region not revoked, and either the op is unfenced
  /// (expected_epoch == 0) or it matches the region's current epoch.
  bool AdmitAccess(RKey rkey, uint64_t expected_epoch) const;

  /// Arms a fault schedule: every queue pair on this fabric starts consulting
  /// it (each with fresh per-QP trigger state). Re-arming — even with an
  /// identical plan — resets all injector state. Works on every backend:
  /// the sim injects per-WR; real transports inject through the chaos
  /// decorator, in front of the real wire's own failures.
  [[nodiscard]] Status ArmFaults(FaultPlan plan);
  /// Removes the armed plan; subsequent verbs execute fault-free.
  void ClearFaults();
  /// The armed plan, or nullptr. Queue pairs detect re-arming by pointer
  /// identity, so each ArmFaults call installs a distinct object.
  std::shared_ptr<const FaultPlan> fault_plan() const;

  /// Hands out queue-pair ids in creation order (the per-QP seed component of
  /// deterministic fault injection).
  uint32_t AllocateQpId() noexcept { return next_qp_id_.fetch_add(1); }

 private:
  NicModelConfig nic_;
  std::unique_ptr<Transport> transport_;
  mutable std::mutex mutex_;  ///< guards fault_plan_
  std::shared_ptr<const FaultPlan> fault_plan_;
  std::atomic<uint32_t> next_qp_id_{0};
};

}  // namespace dhnsw::rdma
