// Core types of the simulated RDMA fabric.
//
// The API mirrors the one-sided ibverbs subset the paper relies on: RDMA_READ
// and RDMA_WRITE plus the two masked 64-bit atomics (Compare-And-Swap,
// Fetch-And-Add), posted as work requests to a queue pair and executed when
// the doorbell rings. Verbs executed in one doorbell ring share a single
// network round trip (doorbell batching, paper §3.2), which is exactly the
// behaviour d-HNSW exploits.
#pragma once

#include <cstdint>
#include <span>

namespace dhnsw::rdma {

/// Opaque node identifier inside a Fabric.
using NodeId = uint32_t;

/// Remote key naming a registered memory region on some node.
using RKey = uint32_t;

enum class Opcode : uint8_t {
  kRead,          ///< remote MR -> local buffer
  kWrite,         ///< local buffer -> remote MR
  kCompareSwap,   ///< 64-bit CAS on remote MR; original value -> local buffer
  kFetchAdd,      ///< 64-bit FAA on remote MR; original value -> local buffer
};

/// One work request. `local` must stay valid until the completion is polled.
struct WorkRequest {
  uint64_t wr_id = 0;            ///< caller cookie, echoed in the completion
  Opcode opcode = Opcode::kRead;
  RKey rkey = 0;                 ///< target region
  uint64_t remote_offset = 0;    ///< byte offset inside the region
  std::span<uint8_t> local;      ///< local buffer (src for WRITE, dst otherwise)
  uint64_t compare = 0;          ///< CAS: expected value
  uint64_t swap_or_add = 0;      ///< CAS: new value / FAA: addend
  /// Replication epoch fence: 0 = unfenced (legacy traffic, always admitted
  /// unless the region's rkey was revoked). Non-zero = the op executes only
  /// when it matches the region's current fence epoch; a mismatch completes
  /// with kFenced and the op does NOT execute. See Fabric::SetRegionEpoch.
  uint64_t expected_epoch = 0;
};

enum class WcStatus : uint8_t {
  kSuccess = 0,
  kRemoteAccessError,  ///< bad rkey or offset/length outside the region
  kRemoteUnreachable,  ///< node down / injected fault
  kLocalLengthError,   ///< local buffer length mismatch
  kTimeout,            ///< response lost / injected timeout; op did not execute
  kFenced,             ///< epoch fence rejected the op (stale epoch or revoked
                       ///< rkey); op did not execute
};

/// Work completion, one per posted WR.
struct Completion {
  uint64_t wr_id = 0;
  Opcode opcode = Opcode::kRead;
  WcStatus status = WcStatus::kSuccess;
  uint32_t byte_len = 0;      ///< bytes moved (READ/WRITE), 8 for atomics
  uint64_t atomic_result = 0; ///< original remote value for CAS/FAA
};

/// Per-queue-pair counters: the quantities the paper reports (round trips per
/// query, bytes on the wire) are derived from these.
struct QpStats {
  uint64_t round_trips = 0;   ///< doorbell rings that hit the network
  uint64_t work_requests = 0; ///< WRs executed
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t atomics = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t sim_network_ns = 0;///< simulated time charged to this QP
  uint64_t injected_faults = 0;///< WRs hit by the armed FaultPlan

  QpStats& operator-=(const QpStats& rhs) noexcept {
    round_trips -= rhs.round_trips;
    work_requests -= rhs.work_requests;
    reads -= rhs.reads;
    writes -= rhs.writes;
    atomics -= rhs.atomics;
    bytes_read -= rhs.bytes_read;
    bytes_written -= rhs.bytes_written;
    sim_network_ns -= rhs.sim_network_ns;
    injected_faults -= rhs.injected_faults;
    return *this;
  }
  friend QpStats operator-(QpStats lhs, const QpStats& rhs) noexcept {
    lhs -= rhs;
    return lhs;
  }
};

}  // namespace dhnsw::rdma
