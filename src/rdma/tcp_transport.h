// Real TCP backend: doorbell-batched one-sided ops over loopback sockets.
//
// A memory-node server thread owns the registered regions (it shares the
// LocalTransport registry with the control plane) and serves a framed binary
// protocol: one request frame per doorbell ring carrying every WR descriptor
// plus WRITE payloads, one response frame carrying per-WR statuses, atomic
// results, and READ payloads. One ring == one send+recv == one real network
// round trip, so the doorbell-batching contract of the paper (§3.2) holds on
// the wire, and every payload byte actually crosses the socket — which is
// what `dhnsw_cli calibrate` measures.
//
// Channels are one TCP connection each (the QueuePair's "RC connection");
// the server handles each connection on its own thread, serializing remote
// atomics through the MemoryRegion mutex exactly like the simulator.
//
// Error model: real socket failures surface as WcStatus — a broken/refused
// connection completes the ring's WRs with kRemoteUnreachable, a receive
// timeout with kTimeout, and connection establishment is non-blocking with a
// configurable deadline (a black-holed address surfaces kRemoteUnreachable
// instead of hanging the compute thread). A channel whose connection died
// reconnects transparently on the next ring, waiting a jittered exponential
// backoff (TransportOptions::tcp_reconnect_*) that resets on the first
// successful round trip. FaultPlan injection is layered on top by the
// ChaosTransport decorator (chaos_transport.h), which Fabric wraps around
// every real backend; this file stays fault-oblivious.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "rdma/transport.h"

namespace dhnsw::rdma {

class TcpTransport final : public LocalTransport {
 public:
  /// Binds the loopback listener (ephemeral port when options.tcp_port == 0,
  /// with a short retry loop so parallel test processes never flake on a
  /// transient bind failure) and starts the server thread.
  static Result<std::unique_ptr<TcpTransport>> Create(const TransportOptions& options);

  ~TcpTransport() override;

  TransportKind kind() const noexcept override { return TransportKind::kTcp; }
  std::unique_ptr<TransportChannel> CreateChannel() override;

  uint16_t port() const noexcept { return port_; }

  /// Chaos hook: when true, every handler parks after fully reading a
  /// request frame and before executing it — the memory node is alive at the
  /// TCP level (accepts, reads) but never answers, which is how a wedged
  /// remote peer actually looks. Clients hit their SO_RCVTIMEO receive
  /// deadline (kTimeout). Un-hanging releases all parked handlers; their
  /// connections were already poisoned by the clients' timeouts, so parked
  /// rings execute against whatever state remains and the response write
  /// fails harmlessly.
  void set_hang_handlers(bool hang);

 private:
  explicit TcpTransport(const TransportOptions& options) : options_(options) {}

  /// One accepted connection. The handler thread never closes the fd itself
  /// (only half-closes it with shutdown(2) on exit); Shutdown() owns the
  /// close after the join. That keeps the fd number valid for the whole
  /// connection lifetime, so Shutdown() can always shutdown(2) it to unblock
  /// a handler parked in recv() — without that, destroying the transport
  /// while a client keeps its end open would deadlock the join forever.
  struct Conn {
    int fd = -1;
    std::thread thread;
  };

  Status Start();
  void AcceptLoop();
  void ServeConnection(int fd);
  void Shutdown();

  TransportOptions options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::mutex handler_mutex_;
  std::vector<std::unique_ptr<Conn>> handlers_;
  std::mutex hang_mutex_;
  std::condition_variable hang_cv_;
  bool hang_handlers_ = false;
};

}  // namespace dhnsw::rdma
