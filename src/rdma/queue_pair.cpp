#include "rdma/queue_pair.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "telemetry/metrics.h"

namespace dhnsw::rdma {

namespace {

// Registry instruments mirroring QpStats across every QP in the process.
// Resolved once per transport kind (first ring pays the registration); the
// record path is pure relaxed atomics and never allocates. The simulator
// keeps the historical bare metric names; real backends register a separate
// `{transport="..."}`-labeled set, so sim metric output stays byte-identical
// while mixed-backend processes keep their streams apart.
struct RdmaInstruments {
  telemetry::Counter* round_trips;
  telemetry::Counter* work_requests;
  telemetry::Counter* reads;
  telemetry::Counter* writes;
  telemetry::Counter* atomics;
  telemetry::Counter* bytes_read;
  telemetry::Counter* bytes_written;
  telemetry::Counter* sim_network_ns;
  telemetry::Counter* injected_faults;
  telemetry::Counter* fenced_ops;
  telemetry::Histogram* ring_wrs;
};

RdmaInstruments MakeInstruments(const std::string& label) {
  telemetry::MetricRegistry& r = telemetry::DefaultRegistry();
  auto name = [&label](const char* base) { return std::string(base) + label; };
  return RdmaInstruments{
      r.GetCounter(name("dhnsw_rdma_round_trips_total")),
      r.GetCounter(name("dhnsw_rdma_work_requests_total")),
      r.GetCounter(name("dhnsw_rdma_reads_total")),
      r.GetCounter(name("dhnsw_rdma_writes_total")),
      r.GetCounter(name("dhnsw_rdma_atomics_total")),
      r.GetCounter(name("dhnsw_rdma_bytes_read_total")),
      r.GetCounter(name("dhnsw_rdma_bytes_written_total")),
      r.GetCounter(name("dhnsw_rdma_sim_network_ns_total")),
      r.GetCounter(name("dhnsw_rdma_injected_faults_total")),
      r.GetCounter(name("dhnsw_rdma_fenced_ops_total")),
      r.GetHistogram(name("dhnsw_rdma_ring_wrs")),
  };
}

const RdmaInstruments& Rdma(TransportKind kind) {
  static const RdmaInstruments sim = MakeInstruments("");
  static const RdmaInstruments tcp = MakeInstruments("{transport=\"tcp\"}");
  static const RdmaInstruments verbs = MakeInstruments("{transport=\"verbs\"}");
  switch (kind) {
    case TransportKind::kTcp:
      return tcp;
    case TransportKind::kVerbs:
      return verbs;
    case TransportKind::kSim:
      break;
  }
  return sim;
}

}  // namespace

QueuePair::QueuePair(Fabric* fabric, SimClock* clock, uint32_t max_doorbell_wrs)
    : fabric_(fabric), clock_(clock),
      channel_(fabric->transport().CreateChannel()),
      kind_(fabric->transport().kind()),
      sim_(kind_ == TransportKind::kSim),
      max_doorbell_wrs_(max_doorbell_wrs == 0 ? 1 : max_doorbell_wrs),
      qp_id_(fabric->AllocateQpId()) {}

void QueuePair::RefreshInjector() {
  std::shared_ptr<const FaultPlan> plan = fabric_->fault_plan();
  if (plan == armed_plan_) return;
  armed_plan_ = std::move(plan);
  injector_ = (armed_plan_ == nullptr || armed_plan_->empty())
                  ? nullptr
                  : std::make_unique<FaultInjector>(armed_plan_, qp_id_);
}

void QueuePair::PostRead(RKey rkey, uint64_t remote_offset, std::span<uint8_t> dst,
                         uint64_t wr_id, uint64_t expected_epoch) {
  send_queue_.push_back(WorkRequest{
      .wr_id = wr_id, .opcode = Opcode::kRead, .rkey = rkey,
      .remote_offset = remote_offset, .local = dst,
      .expected_epoch = expected_epoch});
}

void QueuePair::PostWrite(RKey rkey, uint64_t remote_offset, std::span<const uint8_t> src,
                          uint64_t wr_id, uint64_t expected_epoch) {
  // WRITE never modifies the local buffer; the non-const span in WorkRequest
  // is a convenience for sharing the struct with READ.
  send_queue_.push_back(WorkRequest{
      .wr_id = wr_id, .opcode = Opcode::kWrite, .rkey = rkey,
      .remote_offset = remote_offset,
      .local = {const_cast<uint8_t*>(src.data()), src.size()},
      .expected_epoch = expected_epoch});
}

void QueuePair::PostCompareSwap(RKey rkey, uint64_t remote_offset, uint64_t compare,
                                uint64_t swap, uint64_t wr_id, uint64_t expected_epoch) {
  send_queue_.push_back(WorkRequest{
      .wr_id = wr_id, .opcode = Opcode::kCompareSwap, .rkey = rkey,
      .remote_offset = remote_offset, .local = {},
      .compare = compare, .swap_or_add = swap,
      .expected_epoch = expected_epoch});
}

void QueuePair::PostFetchAdd(RKey rkey, uint64_t remote_offset, uint64_t add, uint64_t wr_id,
                             uint64_t expected_epoch) {
  send_queue_.push_back(WorkRequest{
      .wr_id = wr_id, .opcode = Opcode::kFetchAdd, .rkey = rkey,
      .remote_offset = remote_offset, .local = {},
      .swap_or_add = add,
      .expected_epoch = expected_epoch});
}

uint64_t QueuePair::ExecuteRing(std::span<const WorkRequest> wrs,
                                std::span<Completion> completions,
                                uint64_t* injected_faults) {
  // Sim consumes the injector per-WR in ExecuteWr; on real backends the
  // ChaosChannel decorator consumes it before WRs reach the wire.
  const RingFaultContext faults{injector_.get(), injected_faults};
  return channel_->ExecuteRing(wrs, completions, faults);
}

void QueuePair::AccountRing(std::span<const WorkRequest> wrs,
                            std::span<const Completion> completions, uint64_t charge_ns) {
  const uint64_t ring_sim_start = trace_ != nullptr ? trace_->now_ns() : 0;
  BatchShape shape;
  uint64_t fenced = 0;
  for (size_t i = 0; i < wrs.size(); ++i) {
    const WorkRequest& wr = wrs[i];
    const Completion& c = completions[i];
    ++shape.num_wrs;
    ++stats_.work_requests;
    if (c.status == WcStatus::kFenced) ++fenced;
    switch (wr.opcode) {
      case Opcode::kRead:
        ++stats_.reads;
        if (c.status == WcStatus::kSuccess) stats_.bytes_read += c.byte_len;
        shape.payload_bytes += wr.local.size();
        break;
      case Opcode::kWrite:
        ++stats_.writes;
        if (c.status == WcStatus::kSuccess) stats_.bytes_written += c.byte_len;
        shape.payload_bytes += wr.local.size();
        break;
      case Opcode::kCompareSwap:
      case Opcode::kFetchAdd:
        ++stats_.atomics;
        ++shape.num_atomics;
        shape.payload_bytes += 8;
        break;
    }
  }
  // Sim: deterministic NicModel cost plus injected latency. Real backends:
  // the measured wall time of the round trip, verbatim — no model on top of
  // real hardware, so sim_network_ns holds real network ns there.
  const uint64_t cost_ns =
      sim_ ? CostOfBatch(fabric_->nic_config(), shape) + charge_ns : charge_ns;
  if (clock_ != nullptr) clock_->Advance(cost_ns);
  stats_.sim_network_ns += cost_ns;
  ++stats_.round_trips;
  if (fenced > 0) Rdma(kind_).fenced_ops->Add(fenced);
  Rdma(kind_).ring_wrs->Record(shape.num_wrs);
  if (trace_ != nullptr && trace_->enabled()) {
    trace_->buffer->Append(telemetry::TraceEvent{
        "rdma.ring", trace_->batch, telemetry::TraceEvent::kNoQuery, ring_sim_start,
        trace_->now_ns(), 0, shape.num_wrs, shape.payload_bytes});
  }
}

void QueuePair::MirrorStatsDelta(const QpStats& before) {
  const RdmaInstruments& rdma = Rdma(kind_);
  rdma.round_trips->Add(stats_.round_trips - before.round_trips);
  rdma.work_requests->Add(stats_.work_requests - before.work_requests);
  rdma.reads->Add(stats_.reads - before.reads);
  rdma.writes->Add(stats_.writes - before.writes);
  rdma.atomics->Add(stats_.atomics - before.atomics);
  rdma.bytes_read->Add(stats_.bytes_read - before.bytes_read);
  rdma.bytes_written->Add(stats_.bytes_written - before.bytes_written);
  rdma.sim_network_ns->Add(stats_.sim_network_ns - before.sim_network_ns);
  rdma.injected_faults->Add(stats_.injected_faults - before.injected_faults);
}

uint32_t QueuePair::RingDoorbell() {
  if (send_queue_.empty()) return 0;
  RefreshInjector();

  const QpStats before = stats_;
  uint32_t rings = 0;
  size_t begin = 0;
  // Scratch kept per-call (not per-chunk): one execute pass fills it, then the
  // chunk is accounted and its completions land in the CQ.
  std::vector<Completion> chunk_completions;
  while (begin < send_queue_.size()) {
    const size_t end = std::min(send_queue_.size(),
                                begin + static_cast<size_t>(max_doorbell_wrs_));
    chunk_completions.resize(end - begin);
    const uint64_t charge_ns =
        ExecuteRing({send_queue_.data() + begin, end - begin}, chunk_completions,
                    &stats_.injected_faults);
    AccountRing({send_queue_.data() + begin, end - begin}, chunk_completions, charge_ns);
    completion_queue_.insert(completion_queue_.end(), chunk_completions.begin(),
                             chunk_completions.end());
    ++rings;
    begin = end;
  }
  send_queue_.clear();
  MirrorStatsDelta(before);
  return rings;
}

void QueuePair::StageAsyncRing() {
  if (send_queue_.empty()) return;
  if (async_staging_ == nullptr) async_staging_ = std::make_unique<AsyncBatch>();
  AsyncBatch& batch = *async_staging_;
  const size_t begin = batch.wrs_.size();
  batch.wrs_.insert(batch.wrs_.end(), send_queue_.begin(), send_queue_.end());
  batch.groups_.push_back(AsyncBatch::RingGroup{begin, batch.wrs_.size()});
  send_queue_.clear();
}

std::unique_ptr<AsyncBatch> QueuePair::TakeAsyncBatch() {
  StageAsyncRing();  // pick up posted-but-unstaged WRs as a final group
  if (async_staging_ == nullptr) return nullptr;
  // Arm on the owner thread: the injector's decision stream depends only on
  // this QP's WR sequence, so evaluating it later from a worker thread keeps
  // the same deterministic outcomes the sync path would have produced.
  RefreshInjector();
  async_staging_->window_ = max_doorbell_wrs_;
  return std::move(async_staging_);
}

void QueuePair::ExecuteAsyncBatch(AsyncBatch* batch) {
  assert(batch != nullptr && !batch->executed_);
  batch->completions_.resize(batch->wrs_.size());
  batch->extra_ns_.assign(batch->wrs_.size(), 0);
  // Execute per doorbell chunk — the same chunking ReapAsyncBatch will use
  // (window captured at take time) — so each chunk is one transport round
  // trip, and its raw charge lands at the chunk's first WR index where the
  // reap-side per-chunk summation recovers it.
  for (const AsyncBatch::RingGroup& group : batch->groups_) {
    size_t begin = group.begin;
    while (begin < group.end) {
      const size_t end =
          std::min(group.end, begin + static_cast<size_t>(batch->window_));
      batch->extra_ns_[begin] =
          ExecuteRing({batch->wrs_.data() + begin, end - begin},
                      {batch->completions_.data() + begin, end - begin},
                      &batch->injected_faults_);
      begin = end;
    }
  }
  batch->executed_ = true;
}

uint32_t QueuePair::ReapAsyncBatch(AsyncBatch* batch) {
  assert(batch != nullptr && batch->executed_);
  const QpStats before = stats_;
  uint32_t rings = 0;
  for (const AsyncBatch::RingGroup& group : batch->groups_) {
    size_t begin = group.begin;
    while (begin < group.end) {
      const size_t end =
          std::min(group.end, begin + static_cast<size_t>(batch->window_));
      uint64_t extra_ns = 0;
      for (size_t i = begin; i < end; ++i) extra_ns += batch->extra_ns_[i];
      AccountRing({batch->wrs_.data() + begin, end - begin},
                  {batch->completions_.data() + begin, end - begin}, extra_ns);
      completion_queue_.insert(completion_queue_.end(), batch->completions_.begin() + begin,
                               batch->completions_.begin() + end);
      ++rings;
      begin = end;
    }
  }
  stats_.injected_faults += batch->injected_faults_;
  MirrorStatsDelta(before);
  return rings;
}

bool QueuePair::PollCompletion(Completion* out) {
  if (completion_queue_.empty()) return false;
  *out = completion_queue_.front();
  completion_queue_.pop_front();
  return true;
}

std::vector<Completion> QueuePair::Flush() {
  RingDoorbell();
  std::vector<Completion> out(completion_queue_.begin(), completion_queue_.end());
  completion_queue_.clear();
  return out;
}

Status QueuePair::ToStatus(const Completion& c) {
  switch (c.status) {
    case WcStatus::kSuccess:
      return Status::Ok();
    case WcStatus::kRemoteAccessError:
      return Status::OutOfRange("rdma remote access error");
    case WcStatus::kRemoteUnreachable:
      return Status::Unavailable("rdma remote node unreachable");
    case WcStatus::kLocalLengthError:
      return Status::InvalidArgument("rdma local buffer length error");
    case WcStatus::kTimeout:
      return Status::DeadlineExceeded("rdma op timed out");
    case WcStatus::kFenced:
      return Status::Unavailable("rdma op fenced: stale epoch or revoked rkey");
  }
  return Status::Internal("unknown completion status");
}

Status QueuePair::Read(RKey rkey, uint64_t remote_offset, std::span<uint8_t> dst,
                       uint64_t expected_epoch) {
  if (!completion_queue_.empty() || !send_queue_.empty()) {
    return Status::Internal("Read: QP has pending WRs or undrained completions");
  }
  PostRead(rkey, remote_offset, dst, /*wr_id=*/0, expected_epoch);
  RingDoorbell();
  Completion c;
  const bool have = PollCompletion(&c);
  if (!have) return Status::Internal("missing completion after Read");
  return ToStatus(c);
}

Status QueuePair::Write(RKey rkey, uint64_t remote_offset, std::span<const uint8_t> src,
                        uint64_t expected_epoch) {
  if (!completion_queue_.empty() || !send_queue_.empty()) {
    return Status::Internal("Write: QP has pending WRs or undrained completions");
  }
  PostWrite(rkey, remote_offset, src, /*wr_id=*/0, expected_epoch);
  RingDoorbell();
  Completion c;
  const bool have = PollCompletion(&c);
  if (!have) return Status::Internal("missing completion after Write");
  return ToStatus(c);
}

Result<uint64_t> QueuePair::CompareSwap(RKey rkey, uint64_t remote_offset, uint64_t compare,
                                        uint64_t swap) {
  if (!completion_queue_.empty() || !send_queue_.empty()) {
    return Status::Internal("CompareSwap: QP has pending WRs or undrained completions");
  }
  PostCompareSwap(rkey, remote_offset, compare, swap);
  RingDoorbell();
  Completion c;
  if (!PollCompletion(&c)) return Status::Internal("missing completion after CAS");
  Status st = ToStatus(c);
  if (!st.ok()) return st;
  return c.atomic_result;
}

Result<uint64_t> QueuePair::FetchAdd(RKey rkey, uint64_t remote_offset, uint64_t add,
                                     uint64_t expected_epoch) {
  if (!completion_queue_.empty() || !send_queue_.empty()) {
    return Status::Internal("FetchAdd: QP has pending WRs or undrained completions");
  }
  PostFetchAdd(rkey, remote_offset, add, /*wr_id=*/0, expected_epoch);
  RingDoorbell();
  Completion c;
  if (!PollCompletion(&c)) return Status::Internal("missing completion after FAA");
  Status st = ToStatus(c);
  if (!st.ok()) return st;
  return c.atomic_result;
}

}  // namespace dhnsw::rdma
