#include "rdma/sim_transport.h"

namespace dhnsw::rdma {

namespace {

class SimChannel final : public TransportChannel {
 public:
  explicit SimChannel(SimTransport* transport) : transport_(transport) {}

  uint64_t ExecuteRing(std::span<const WorkRequest> wrs, std::span<Completion> completions,
                       const RingFaultContext& faults) override {
    // Returned ns = injected fault latency only; the QueuePair adds the
    // NicModel cost of the ring, exactly as the pre-transport simulator did.
    return transport_->ExecuteRingLocal(wrs, completions, faults);
  }

 private:
  SimTransport* transport_;
};

}  // namespace

std::unique_ptr<TransportChannel> SimTransport::CreateChannel() {
  return std::make_unique<SimChannel>(this);
}

}  // namespace dhnsw::rdma
