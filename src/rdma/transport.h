// Pluggable transport subsystem (DESIGN.md §14).
//
// A Transport is the backend behind the fabric API. It owns the two planes a
// disaggregated deployment needs:
//
//   control plane — the connection manager: node directory, memory
//     registration (rkeys), fence epochs and rkey revocation, reachability
//     administration. Real deployments run this over an out-of-band TCP RPC
//     before switching to one-sided verbs; here it is an in-process interface
//     either way.
//
//   data plane — doorbell-batched one-sided work requests. A QueuePair opens
//     one TransportChannel (its "connection") and executes each doorbell ring
//     through it: all WRs of one ring share one network round trip, exactly
//     the batching contract the paper's cost accounting relies on.
//
// Three backends:
//   kSim   — the deterministic simulator (default). Executes data movement
//            in-process and returns zero measured time; the QueuePair then
//            charges the NicModel cost, so behaviour, QpStats, and same-seed
//            wall-free traces stay byte-identical to the pre-transport code.
//            FaultPlans evaluate per-WR inside ExecuteWr; backoff is
//            SimClock-charged.
//   kTcp   — real sockets: a memory-node server thread owns the registered
//            regions and executes ring frames received over loopback TCP.
//            Every payload byte crosses the socket; one ring = one
//            send+recv = one real round trip. Errors surface as real
//            errno-derived WcStatus (kRemoteUnreachable / kTimeout).
//   kVerbs — libibverbs loopback RC queue pairs, compiled in when
//            <infiniband/verbs.h> is available; falls back to kTcp at
//            runtime when no RDMA device is present.
//
// Real backends are wrapped by the ChaosTransport decorator
// (src/rdma/chaos_transport.h) inside Fabric, so the same seeded FaultPlans
// the simulator honours also fire on real sockets (DESIGN.md §15).
//
// Selection: DhnswConfig::transport, or the DHNSW_TRANSPORT environment
// variable ("sim" | "tcp" | "verbs") when the config leaves the kind unset.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "rdma/memory_region.h"
#include "rdma/rdma_types.h"

namespace dhnsw::rdma {

class FaultInjector;

enum class TransportKind : uint8_t { kSim = 0, kTcp = 1, kVerbs = 2 };

std::string_view TransportKindName(TransportKind kind) noexcept;
Result<TransportKind> ParseTransportKind(std::string_view name);

struct TransportOptions {
  /// Backend to use. Unset = resolve from the DHNSW_TRANSPORT environment
  /// variable, defaulting to the simulator when that is unset/invalid.
  std::optional<TransportKind> kind;
  /// TCP backend: server listen port. 0 (default) binds an ephemeral
  /// loopback port, so parallel test processes never collide.
  uint16_t tcp_port = 0;
  /// TCP backend: per-ring receive timeout. A response that does not arrive
  /// in time completes every WR of the ring with kTimeout (the real-world
  /// analogue of a lost response). 0 = block forever.
  uint32_t tcp_recv_timeout_ms = 10'000;
  /// TCP backend: connection-establishment deadline. Non-blocking connect +
  /// poll; a black-holed address surfaces kRemoteUnreachable after this long
  /// instead of hanging the compute thread on a blocking connect(). 0 = OS
  /// default (minutes — do not use in tests).
  uint32_t tcp_connect_timeout_ms = 2'000;
  /// TCP backend: jittered exponential backoff between client reconnect
  /// attempts after a disconnect or connect failure. The first retry waits
  /// ~initial (±50% deterministic jitter), doubling up to max; the counter
  /// resets on any successful round trip.
  uint64_t tcp_reconnect_initial_backoff_ns = 1'000'000;     // 1 ms
  uint64_t tcp_reconnect_max_backoff_ns = 100'000'000;       // 100 ms

  /// The kind this options struct resolves to (env override applied).
  TransportKind Resolve() const;

  static TransportOptions Sim() {
    TransportOptions o;
    o.kind = TransportKind::kSim;
    return o;
  }
  static TransportOptions Tcp() {
    TransportOptions o;
    o.kind = TransportKind::kTcp;
    return o;
  }
};

/// Per-ring fault context: the owning QueuePair's armed fault injector and
/// where fault hits are counted. On sim the injector is evaluated per-WR
/// inside LocalTransport::ExecuteWr (byte-identical legacy path). On real
/// backends the ChaosTransport decorator consumes it client-side before WRs
/// reach the wire; the inner channel always sees a null injector.
struct RingFaultContext {
  FaultInjector* injector = nullptr;
  uint64_t* injected_faults = nullptr;
};

/// One queue pair's connection to the transport's data plane. Not thread-safe:
/// like the QueuePair that owns it, a channel executes one ring at a time
/// (the async path hands the whole channel to the worker between take/reap).
class TransportChannel {
 public:
  virtual ~TransportChannel() = default;

  /// Executes ONE doorbell ring: `wrs` in posted order, one network round
  /// trip. Fills `completions[i]` for `wrs[i]` (same length). Returns the
  /// nanoseconds the ring should be charged:
  ///   sim  — injected fault latency only; the caller adds the NicModel cost
  ///          (keeps the simulated timeline byte-identical);
  ///   real — measured wall time of the round trip; the caller charges it
  ///          as-is (no model on top of real hardware).
  virtual uint64_t ExecuteRing(std::span<const WorkRequest> wrs,
                               std::span<Completion> completions,
                               const RingFaultContext& faults) = 0;

  /// Forcibly severs the channel's connection, if it has one. The next ring
  /// transparently reconnects (with jittered backoff on TCP). No-op for
  /// connectionless backends (sim). Used by the chaos decorator's
  /// kDisconnect fault; safe to call from the channel's owning thread only.
  virtual void Disconnect() {}
};

class Transport {
 public:
  virtual ~Transport() = default;

  virtual TransportKind kind() const noexcept = 0;
  bool is_sim() const noexcept { return kind() == TransportKind::kSim; }
  std::string_view name() const noexcept { return TransportKindName(kind()); }

  /// --- control plane (connection manager) ---
  virtual NodeId AddNode(std::string name) = 0;
  virtual size_t num_nodes() const = 0;
  virtual std::string NodeName(NodeId node) const = 0;
  virtual Result<RKey> RegisterMemory(NodeId node, size_t size, size_t alignment) = 0;
  /// Host-side (memory-node CPU) view of a region, e.g. for provision-time
  /// population and snapshots. Both in-process backends expose the server's
  /// storage directly — the memory node touching its own DRAM.
  virtual MemoryRegion* FindRegion(RKey rkey) = 0;
  virtual const MemoryRegion* FindRegion(RKey rkey) const = 0;
  virtual Result<NodeId> OwnerOf(RKey rkey) const = 0;
  virtual void SetNodeReachable(NodeId node, bool reachable) = 0;
  virtual bool IsNodeReachable(NodeId node) const = 0;
  virtual void SetRegionEpoch(RKey rkey, uint64_t epoch) = 0;
  virtual uint64_t RegionEpoch(RKey rkey) const = 0;
  virtual void RevokeRegion(RKey rkey) = 0;
  virtual bool IsRegionRevoked(RKey rkey) const = 0;
  virtual bool AdmitAccess(RKey rkey, uint64_t expected_epoch) const = 0;

  /// --- data plane ---
  virtual std::unique_ptr<TransportChannel> CreateChannel() = 0;
};

/// Shared control-plane state + one-sided execution semantics for the
/// in-process backends (sim executes directly; the TCP server executes the
/// same logic after the request crossed the socket; verbs reuses the
/// registry for bookkeeping around real MRs). Thread-safe.
class LocalTransport : public Transport {
 public:
  NodeId AddNode(std::string name) override;
  size_t num_nodes() const override;
  std::string NodeName(NodeId node) const override;
  Result<RKey> RegisterMemory(NodeId node, size_t size, size_t alignment) override;
  MemoryRegion* FindRegion(RKey rkey) override;
  const MemoryRegion* FindRegion(RKey rkey) const override;
  Result<NodeId> OwnerOf(RKey rkey) const override;
  void SetNodeReachable(NodeId node, bool reachable) override;
  bool IsNodeReachable(NodeId node) const override;
  void SetRegionEpoch(RKey rkey, uint64_t epoch) override;
  uint64_t RegionEpoch(RKey rkey) const override;
  void RevokeRegion(RKey rkey) override;
  bool IsRegionRevoked(RKey rkey) const override;
  bool AdmitAccess(RKey rkey, uint64_t expected_epoch) const override;

  /// Backend-internal: executes one ring's WRs in posted order against the
  /// local region registry — region lookup, reachability, fence admission,
  /// bounds validation, data movement / atomics, and (when the ring context
  /// carries an injector — the sim path) fault
  /// evaluation. Returns accumulated injected latency ns. This is the single
  /// semantic definition of one-sided execution: the sim channel calls it
  /// directly; the TCP server calls it after the request crossed the socket.
  uint64_t ExecuteRingLocal(std::span<const WorkRequest> wrs,
                            std::span<Completion> completions,
                            const RingFaultContext& faults);

 protected:
  /// One WR of ExecuteRingLocal.
  Completion ExecuteWr(const WorkRequest& wr, const RingFaultContext& faults,
                       uint64_t* extra_ns);

 private:
  struct NodeState {
    std::string name;
    bool reachable = true;
  };
  /// Fence state per region. Absent entry = unfenced, never revoked.
  struct FenceState {
    uint64_t epoch = 0;
    bool revoked = false;
  };

  mutable std::mutex mutex_;
  std::vector<NodeState> nodes_;
  std::unordered_map<RKey, std::pair<NodeId, std::unique_ptr<MemoryRegion>>> regions_;
  std::unordered_map<RKey, FenceState> fences_;
  RKey next_rkey_ = 1;
};

/// Creates the requested backend. kVerbs falls back to kTcp when verbs
/// support is compiled out or no RDMA device initialises; kTcp fails only
/// when the loopback server cannot bind after retries.
Result<std::unique_ptr<Transport>> MakeTransport(const TransportOptions& options = {});

}  // namespace dhnsw::rdma
