#include "rdma/nic_model.h"

#include <cstdio>
#include <cstdlib>

namespace dhnsw::rdma {

namespace {

/// Finds `"key":` in a flat JSON object and returns the raw value text after
/// it (up to but excluding the next ',' or '}'), or empty if absent.
std::string_view RawValue(std::string_view json, std::string_view key) {
  std::string needle;
  needle.reserve(key.size() + 2);
  needle.push_back('"');
  needle.append(key);
  needle.push_back('"');
  size_t pos = json.find(needle);
  if (pos == std::string_view::npos) return {};
  pos = json.find(':', pos + needle.size());
  if (pos == std::string_view::npos) return {};
  ++pos;
  while (pos < json.size() && (json[pos] == ' ' || json[pos] == '\t' || json[pos] == '\n')) ++pos;
  size_t end = pos;
  if (pos < json.size() && json[pos] == '"') {
    end = json.find('"', pos + 1);
    if (end == std::string_view::npos) return {};
    ++end;  // include the closing quote
  } else {
    while (end < json.size() && json[end] != ',' && json[end] != '}' && json[end] != '\n') ++end;
  }
  return json.substr(pos, end - pos);
}

bool ParseU64(std::string_view json, std::string_view key, uint64_t* out) {
  const std::string_view raw = RawValue(json, key);
  if (raw.empty()) return true;  // absent: keep default
  char* end = nullptr;
  const std::string text(raw);
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str()) return false;
  *out = static_cast<uint64_t>(v);
  return true;
}

bool ParseDouble(std::string_view json, std::string_view key, double* out) {
  const std::string_view raw = RawValue(json, key);
  if (raw.empty()) return true;
  char* end = nullptr;
  const std::string text(raw);
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str()) return false;
  *out = v;
  return true;
}

bool ParseString(std::string_view json, std::string_view key, std::string* out) {
  const std::string_view raw = RawValue(json, key);
  if (raw.empty()) return true;
  if (raw.size() < 2 || raw.front() != '"' || raw.back() != '"') return false;
  *out = std::string(raw.substr(1, raw.size() - 2));
  return true;
}

}  // namespace

uint64_t NicModelConfig::PayloadNs(uint64_t bytes) const noexcept {
  if (bytes == 0 || bandwidth_gbps <= 0.0) return 0;
  // bits / (Gb/s) = ns.
  const double ns = static_cast<double>(bytes) * 8.0 / bandwidth_gbps;
  return static_cast<uint64_t>(ns);
}

uint64_t CostOfBatch(const NicModelConfig& config, const BatchShape& shape) noexcept {
  if (shape.num_wrs == 0) return 0;
  uint64_t cost = config.base_round_trip_ns;
  cost += config.PayloadNs(shape.payload_bytes);
  // First WR rides the doorbell write itself; the rest are DMA-fetched.
  cost += static_cast<uint64_t>(shape.num_wrs - 1) * config.per_wr_dma_ns;
  if (shape.num_wrs > config.doorbell_linear_limit) {
    cost += static_cast<uint64_t>(shape.num_wrs - config.doorbell_linear_limit) *
            config.doorbell_saturated_ns;
  }
  cost += static_cast<uint64_t>(shape.num_atomics) * config.atomic_extra_ns;
  return cost;
}

std::string NicModelConfig::ToJson() const {
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "{\"base_round_trip_ns\":%llu,\"bandwidth_gbps\":%.6f,"
                "\"per_wr_dma_ns\":%llu,\"doorbell_linear_limit\":%u,"
                "\"doorbell_saturated_ns\":%llu,\"atomic_extra_ns\":%llu,"
                "\"source\":\"%s\"}",
                static_cast<unsigned long long>(base_round_trip_ns), bandwidth_gbps,
                static_cast<unsigned long long>(per_wr_dma_ns), doorbell_linear_limit,
                static_cast<unsigned long long>(doorbell_saturated_ns),
                static_cast<unsigned long long>(atomic_extra_ns), source.c_str());
  return buf;
}

Result<NicModelConfig> NicModelConfig::LoadFromJson(std::string_view json) {
  if (json.find('{') == std::string_view::npos || json.find('}') == std::string_view::npos) {
    return Status::InvalidArgument("NicModelConfig: not a JSON object");
  }
  NicModelConfig config;
  uint64_t linear_limit = config.doorbell_linear_limit;
  const bool ok = ParseU64(json, "base_round_trip_ns", &config.base_round_trip_ns) &&
                  ParseDouble(json, "bandwidth_gbps", &config.bandwidth_gbps) &&
                  ParseU64(json, "per_wr_dma_ns", &config.per_wr_dma_ns) &&
                  ParseU64(json, "doorbell_linear_limit", &linear_limit) &&
                  ParseU64(json, "doorbell_saturated_ns", &config.doorbell_saturated_ns) &&
                  ParseU64(json, "atomic_extra_ns", &config.atomic_extra_ns) &&
                  ParseString(json, "source", &config.source);
  if (!ok) {
    return Status::InvalidArgument("NicModelConfig: malformed field value");
  }
  config.doorbell_linear_limit = static_cast<uint32_t>(linear_limit);
  if (config.bandwidth_gbps <= 0.0) {
    return Status::InvalidArgument("NicModelConfig: bandwidth_gbps must be positive");
  }
  return config;
}

}  // namespace dhnsw::rdma
