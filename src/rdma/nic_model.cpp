#include "rdma/nic_model.h"

namespace dhnsw::rdma {

uint64_t NicModelConfig::PayloadNs(uint64_t bytes) const noexcept {
  if (bytes == 0 || bandwidth_gbps <= 0.0) return 0;
  // bits / (Gb/s) = ns.
  const double ns = static_cast<double>(bytes) * 8.0 / bandwidth_gbps;
  return static_cast<uint64_t>(ns);
}

uint64_t CostOfBatch(const NicModelConfig& config, const BatchShape& shape) noexcept {
  if (shape.num_wrs == 0) return 0;
  uint64_t cost = config.base_round_trip_ns;
  cost += config.PayloadNs(shape.payload_bytes);
  // First WR rides the doorbell write itself; the rest are DMA-fetched.
  cost += static_cast<uint64_t>(shape.num_wrs - 1) * config.per_wr_dma_ns;
  if (shape.num_wrs > config.doorbell_linear_limit) {
    cost += static_cast<uint64_t>(shape.num_wrs - config.doorbell_linear_limit) *
            config.doorbell_saturated_ns;
  }
  cost += static_cast<uint64_t>(shape.num_atomics) * config.atomic_extra_ns;
  return cost;
}

}  // namespace dhnsw::rdma
