// Deterministic fault injection for the RDMA fabric — any backend.
//
// A FaultPlan is a seedable list of rules describing which work requests may
// fail and how: per-verb probabilities, every-Nth-op triggers, transient
// windows (max_triggers), permanent outages, injected latency spikes,
// forced disconnects, and payload bit-flips that exercise the CRC paths of
// cluster blobs, overflow records, and the global metadata block.
//
// On the simulator the plan is evaluated per-WR inside SimTransport's
// ExecuteWr. On real backends (tcp, verbs) the same plan drives the
// ChaosTransport decorator (src/rdma/chaos_transport.h), which evaluates
// WRs client-side in posted order before handing them to the wire.
//
// Determinism contract: decisions are a pure function of
//   (plan seed, queue-pair id, the QP's own WR sequence).
// Each QueuePair owns a FaultInjector — the per-QP mutable state (match
// counters, trigger counters, RNG stream). Because a QP is single-threaded
// by design and QP ids are assigned in creation order, the same
// configuration replays byte-identically across runs and across thread
// interleavings of *other* QPs (see tests/test_chaos_determinism.cpp).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "rdma/rdma_types.h"

namespace dhnsw::rdma {

/// What an armed rule does to a matching work request.
enum class FaultKind : uint8_t {
  kUnreachable = 0,  ///< complete with kRemoteUnreachable; op NOT executed
  kTimeout = 1,      ///< complete with kTimeout; op NOT executed
  kBitFlip = 2,      ///< execute, then flip bits in the moved payload
  kDelay = 3,        ///< execute normally but charge delay_ns extra
  /// Force the connection closed mid-ring: the op completes
  /// kRemoteUnreachable and is NOT executed; every later WR in the same
  /// doorbell fails unevaluated (the wire is gone). On real backends the
  /// decorator also tears down the channel's socket, exercising the
  /// reconnect-with-backoff path; on sim it degrades to kUnreachable
  /// for the single WR (the sim has no connection to sever).
  kDisconnect = 4,
};

std::string_view FaultKindName(FaultKind kind) noexcept;

/// One fault rule. A rule first *matches* a WR by scope (node / opcode /
/// rkey / byte window), then *triggers* by schedule (probability, every_nth,
/// skip_first, max_triggers). The first rule that triggers wins.
struct FaultRule {
  // --- scope: which WRs this rule can hit (all optional = match everything)
  std::optional<NodeId> node;    ///< owner of the target region
  std::optional<Opcode> opcode;  ///< verb filter
  std::optional<RKey> rkey;      ///< region filter
  /// Remote byte window [offset_lo, offset_hi); a READ/WRITE matches when its
  /// range intersects it (atomics: their 8 bytes). Defaults cover the region.
  uint64_t offset_lo = 0;
  uint64_t offset_hi = UINT64_MAX;

  // --- schedule: when a matching WR actually faults
  double probability = 1.0;   ///< chance per matching op
  uint64_t every_nth = 0;     ///< fire on every Nth match (1-based); 0 = off
  uint64_t skip_first = 0;    ///< matches to let through before arming
  /// Transient faults set a trigger budget; once spent the rule goes dormant.
  /// UINT64_MAX (default) = permanent.
  uint64_t max_triggers = UINT64_MAX;

  // --- effect
  FaultKind kind = FaultKind::kUnreachable;
  uint64_t delay_ns = 50'000;  ///< kTimeout: wait charged; kDelay: spike size
  uint32_t bit_flips = 1;      ///< kBitFlip: bits flipped per trigger
};

/// Immutable, seedable fault schedule. Arm on a Fabric with ArmFaults(); all
/// queue pairs of that fabric consult it.
class FaultPlan {
 public:
  explicit FaultPlan(uint64_t seed = 0) : seed_(seed) {}

  FaultPlan& Add(FaultRule rule) {
    rules_.push_back(rule);
    return *this;
  }

  uint64_t seed() const noexcept { return seed_; }
  const std::vector<FaultRule>& rules() const noexcept { return rules_; }
  bool empty() const noexcept { return rules_.empty(); }

 private:
  uint64_t seed_;
  std::vector<FaultRule> rules_;
};

/// Outcome of evaluating one WR against the plan.
struct FaultDecision {
  FaultKind kind = FaultKind::kDelay;  // meaningful only when fired
  bool fired = false;
  uint64_t extra_ns = 0;  ///< latency to charge to the ring (kTimeout/kDelay)
  /// kBitFlip: (byte offset within the WR's local payload, XOR mask) pairs.
  std::vector<std::pair<uint32_t, uint8_t>> flips;
};

/// Per-queue-pair mutable fault state. Not thread-safe; owned by one QP.
class FaultInjector {
 public:
  FaultInjector(std::shared_ptr<const FaultPlan> plan, uint32_t qp_id);

  /// Evaluates one WR (owner already resolved). Called once per executed WR.
  FaultDecision Evaluate(NodeId owner, const WorkRequest& wr);

  const FaultPlan& plan() const noexcept { return *plan_; }

 private:
  struct RuleState {
    uint64_t matches = 0;   ///< WRs that fell in the rule's scope
    uint64_t triggers = 0;  ///< times the rule fired
  };

  std::shared_ptr<const FaultPlan> plan_;
  std::vector<RuleState> state_;
  Xoshiro256 rng_;
};

}  // namespace dhnsw::rdma
