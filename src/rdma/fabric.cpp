#include "rdma/fabric.h"

#include "telemetry/metrics.h"

namespace dhnsw::rdma {

namespace {

// Fabric topology gauges/counters: control-plane only, so per-call registry
// lookups are fine here (AddNode/RegisterMemory sit nowhere near the query
// hot path).
struct FabricInstruments {
  telemetry::Gauge* nodes;
  telemetry::Gauge* regions;
  telemetry::Gauge* region_bytes;
  telemetry::Counter* reachability_flips;
  telemetry::Counter* fault_plans_armed;
  telemetry::Counter* epoch_bumps;
  telemetry::Counter* revocations;
};

const FabricInstruments& Instruments() {
  static const FabricInstruments instruments = [] {
    telemetry::MetricRegistry& r = telemetry::DefaultRegistry();
    return FabricInstruments{
        r.GetGauge("dhnsw_fabric_nodes"),
        r.GetGauge("dhnsw_fabric_regions"),
        r.GetGauge("dhnsw_fabric_region_bytes"),
        r.GetCounter("dhnsw_fabric_reachability_flips_total"),
        r.GetCounter("dhnsw_fabric_fault_plans_armed_total"),
        r.GetCounter("dhnsw_fabric_epoch_bumps_total"),
        r.GetCounter("dhnsw_fabric_region_revocations_total"),
    };
  }();
  return instruments;
}

}  // namespace

NodeId Fabric::AddNode(std::string name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto node = std::make_unique<Node>();
  node->name = std::move(name);
  nodes_.push_back(std::move(node));
  Instruments().nodes->Add(1);
  return static_cast<NodeId>(nodes_.size() - 1);
}

size_t Fabric::num_nodes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return nodes_.size();
}

std::string Fabric::NodeName(NodeId node) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return node < nodes_.size() ? nodes_[node]->name : std::string("<unknown>");
}

Result<RKey> Fabric::RegisterMemory(NodeId node, size_t size, size_t alignment) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (node >= nodes_.size()) {
    return Status::InvalidArgument("RegisterMemory: unknown node");
  }
  if (size == 0) {
    return Status::InvalidArgument("RegisterMemory: zero-size region");
  }
  const RKey rkey = next_rkey_++;
  regions_.emplace(rkey, std::make_pair(node, std::make_unique<MemoryRegion>(rkey, size, alignment)));
  Instruments().regions->Add(1);
  Instruments().region_bytes->Add(static_cast<int64_t>(size));
  return rkey;
}

MemoryRegion* Fabric::FindRegion(RKey rkey) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = regions_.find(rkey);
  return it == regions_.end() ? nullptr : it->second.second.get();
}

const MemoryRegion* Fabric::FindRegion(RKey rkey) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = regions_.find(rkey);
  return it == regions_.end() ? nullptr : it->second.second.get();
}

Result<NodeId> Fabric::OwnerOf(RKey rkey) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = regions_.find(rkey);
  if (it == regions_.end()) return Status::NotFound("unknown rkey");
  return it->second.first;
}

void Fabric::SetNodeReachable(NodeId node, bool reachable) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (node < nodes_.size() && nodes_[node]->reachable.load() != reachable) {
    nodes_[node]->reachable.store(reachable);
    Instruments().reachability_flips->Add(1);
  }
}

bool Fabric::IsNodeReachable(NodeId node) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return node < nodes_.size() && nodes_[node]->reachable.load();
}

void Fabric::SetRegionEpoch(RKey rkey, uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (regions_.find(rkey) == regions_.end()) return;
  fences_[rkey].epoch = epoch;
  Instruments().epoch_bumps->Add(1);
}

uint64_t Fabric::RegionEpoch(RKey rkey) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = fences_.find(rkey);
  return it == fences_.end() ? 0 : it->second.epoch;
}

void Fabric::RevokeRegion(RKey rkey) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (regions_.find(rkey) == regions_.end()) return;
  FenceState& fence = fences_[rkey];
  if (!fence.revoked) {
    fence.revoked = true;
    Instruments().revocations->Add(1);
  }
}

bool Fabric::IsRegionRevoked(RKey rkey) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = fences_.find(rkey);
  return it != fences_.end() && it->second.revoked;
}

bool Fabric::AdmitAccess(RKey rkey, uint64_t expected_epoch) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = fences_.find(rkey);
  if (it == fences_.end()) return true;  // never fenced: all traffic admitted
  if (it->second.revoked) return false;
  return expected_epoch == 0 || expected_epoch == it->second.epoch;
}

void Fabric::ArmFaults(FaultPlan plan) {
  std::lock_guard<std::mutex> lock(mutex_);
  fault_plan_ = std::make_shared<const FaultPlan>(std::move(plan));
  Instruments().fault_plans_armed->Add(1);
}

void Fabric::ClearFaults() {
  std::lock_guard<std::mutex> lock(mutex_);
  fault_plan_.reset();
}

std::shared_ptr<const FaultPlan> Fabric::fault_plan() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fault_plan_;
}

}  // namespace dhnsw::rdma
