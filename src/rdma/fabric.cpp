#include "rdma/fabric.h"

#include "common/logging.h"
#include "rdma/chaos_transport.h"
#include "rdma/sim_transport.h"
#include "telemetry/metrics.h"

namespace dhnsw::rdma {

namespace {

// Fabric topology gauges/counters: control-plane only, so per-call registry
// lookups are fine here (AddNode/RegisterMemory sit nowhere near the query
// hot path).
struct FabricInstruments {
  telemetry::Gauge* nodes;
  telemetry::Gauge* regions;
  telemetry::Gauge* region_bytes;
  telemetry::Counter* reachability_flips;
  telemetry::Counter* fault_plans_armed;
  telemetry::Counter* epoch_bumps;
  telemetry::Counter* revocations;
};

const FabricInstruments& Instruments() {
  static const FabricInstruments instruments = [] {
    telemetry::MetricRegistry& r = telemetry::DefaultRegistry();
    return FabricInstruments{
        r.GetGauge("dhnsw_fabric_nodes"),
        r.GetGauge("dhnsw_fabric_regions"),
        r.GetGauge("dhnsw_fabric_region_bytes"),
        r.GetCounter("dhnsw_fabric_reachability_flips_total"),
        r.GetCounter("dhnsw_fabric_fault_plans_armed_total"),
        r.GetCounter("dhnsw_fabric_epoch_bumps_total"),
        r.GetCounter("dhnsw_fabric_region_revocations_total"),
    };
  }();
  return instruments;
}

}  // namespace

Fabric::Fabric(NicModelConfig nic, TransportOptions options) : nic_(nic) {
  Result<std::unique_ptr<Transport>> made = MakeTransport(options);
  if (made.ok()) {
    transport_ = std::move(made.value());
    if (!transport_->is_sim()) {
      // Real backends get the chaos decorator so armed FaultPlans fire on
      // the wire. The sim keeps its in-ExecuteWr injector (byte-identical
      // same-seed traces) and stays unwrapped.
      transport_ = std::make_unique<ChaosTransport>(std::move(transport_));
    }
  } else {
    DHNSW_LOG(kError) << "transport \"" << TransportKindName(options.Resolve())
                      << "\" failed to initialise (" << made.status().message()
                      << "); falling back to the simulator";
    transport_ = std::make_unique<SimTransport>();
  }
}

NodeId Fabric::AddNode(std::string name) {
  const NodeId node = transport_->AddNode(std::move(name));
  Instruments().nodes->Add(1);
  return node;
}

size_t Fabric::num_nodes() const { return transport_->num_nodes(); }

std::string Fabric::NodeName(NodeId node) const { return transport_->NodeName(node); }

Result<RKey> Fabric::RegisterMemory(NodeId node, size_t size, size_t alignment) {
  DHNSW_ASSIGN_OR_RETURN(RKey rkey, transport_->RegisterMemory(node, size, alignment));
  Instruments().regions->Add(1);
  Instruments().region_bytes->Add(static_cast<int64_t>(size));
  return rkey;
}

MemoryRegion* Fabric::FindRegion(RKey rkey) { return transport_->FindRegion(rkey); }

const MemoryRegion* Fabric::FindRegion(RKey rkey) const { return transport_->FindRegion(rkey); }

Result<NodeId> Fabric::OwnerOf(RKey rkey) const { return transport_->OwnerOf(rkey); }

void Fabric::SetNodeReachable(NodeId node, bool reachable) {
  // Count a flip only when the setting actually changes, matching the
  // pre-transport metric semantics.
  if (node < transport_->num_nodes() && transport_->IsNodeReachable(node) != reachable) {
    Instruments().reachability_flips->Add(1);
  }
  transport_->SetNodeReachable(node, reachable);
}

bool Fabric::IsNodeReachable(NodeId node) const { return transport_->IsNodeReachable(node); }

void Fabric::SetRegionEpoch(RKey rkey, uint64_t epoch) {
  if (transport_->FindRegion(rkey) != nullptr) Instruments().epoch_bumps->Add(1);
  transport_->SetRegionEpoch(rkey, epoch);
}

uint64_t Fabric::RegionEpoch(RKey rkey) const { return transport_->RegionEpoch(rkey); }

void Fabric::RevokeRegion(RKey rkey) {
  if (transport_->FindRegion(rkey) != nullptr && !transport_->IsRegionRevoked(rkey)) {
    Instruments().revocations->Add(1);
  }
  transport_->RevokeRegion(rkey);
}

bool Fabric::IsRegionRevoked(RKey rkey) const { return transport_->IsRegionRevoked(rkey); }

bool Fabric::AdmitAccess(RKey rkey, uint64_t expected_epoch) const {
  return transport_->AdmitAccess(rkey, expected_epoch);
}

Status Fabric::ArmFaults(FaultPlan plan) {
  std::lock_guard<std::mutex> lock(mutex_);
  fault_plan_ = std::make_shared<const FaultPlan>(std::move(plan));
  Instruments().fault_plans_armed->Add(1);
  return Status::Ok();
}

void Fabric::ClearFaults() {
  std::lock_guard<std::mutex> lock(mutex_);
  fault_plan_.reset();
}

std::shared_ptr<const FaultPlan> Fabric::fault_plan() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fault_plan_;
}

}  // namespace dhnsw::rdma
