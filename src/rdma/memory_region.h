// Registered memory region living on a fabric node. One-sided verbs address a
// region by (rkey, offset); the region owns the aligned backing storage.
#pragma once

#include <cstdint>
#include <mutex>
#include <span>

#include "common/aligned_buffer.h"
#include "common/status.h"
#include "rdma/rdma_types.h"

namespace dhnsw::rdma {

class MemoryRegion {
 public:
  /// Registers `size` zeroed bytes; `alignment` defaults to a 4 KiB page.
  MemoryRegion(RKey rkey, size_t size, size_t alignment = 4096)
      : rkey_(rkey), storage_(size, alignment) {}

  // Not movable (holds a mutex); the fabric owns regions behind unique_ptr.
  MemoryRegion(const MemoryRegion&) = delete;
  MemoryRegion& operator=(const MemoryRegion&) = delete;

  RKey rkey() const noexcept { return rkey_; }
  size_t size() const noexcept { return storage_.size(); }

  /// Direct host access (the memory node's own CPU touching its DRAM).
  std::span<uint8_t> host_span() noexcept { return storage_.span(); }
  std::span<const uint8_t> host_span() const noexcept { return storage_.span(); }

  /// Bounds check for an incoming one-sided access.
  Status ValidateRange(uint64_t offset, uint64_t length) const {
    if (offset > size() || length > size() - offset) {
      return Status::OutOfRange("rdma access outside region bounds");
    }
    return Status::Ok();
  }

  /// DMA read: region -> local buffer. Caller must have validated the range.
  void DmaRead(uint64_t offset, std::span<uint8_t> dst) const;

  /// DMA write: local buffer -> region. Caller must have validated the range.
  void DmaWrite(uint64_t offset, std::span<const uint8_t> src);

  /// Atomically executes a 64-bit CAS at `offset` (8-byte aligned);
  /// returns the original value.
  uint64_t AtomicCompareSwap(uint64_t offset, uint64_t compare, uint64_t swap);

  /// Atomically executes a 64-bit FAA at `offset`; returns the original value.
  uint64_t AtomicFetchAdd(uint64_t offset, uint64_t add);

 private:
  RKey rkey_;
  AlignedBuffer storage_;
  /// Serializes remote atomics, mirroring NIC-side atomic execution units.
  std::mutex atomic_mutex_;
};

}  // namespace dhnsw::rdma
