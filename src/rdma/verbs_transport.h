// Optional libibverbs backend: real one-sided RDMA over loopback RC queue
// pairs when the build found <infiniband/verbs.h> AND the host exposes an
// RDMA device (hardware NIC or a soft-RoCE/rxe device).
//
// Layout mirrors the simulator's: the region registry lives in this process
// (LocalTransport), but every registered region is additionally pinned with
// ibv_reg_mr, and each channel drives a self-connected RC QP pair so READ /
// WRITE / CAS / FAA actually traverse the verbs stack — one ibv_post_send of
// a chained WR list per doorbell ring. Local buffers are bounced through a
// per-channel registered staging MR, since callers post arbitrary heap spans.
//
// Epoch fencing and reachability are enforced client-side before posting
// (they model connection-manager state, not wire behaviour). FaultPlans are
// NOT supported, same as TCP.
//
// TryCreateVerbsTransport returns nullptr whenever verbs is unavailable —
// not compiled in (DHNSW_HAVE_VERBS undefined), no device, or any setup step
// failing — and MakeTransport then falls back to the TCP backend.
#pragma once

#include <memory>

#include "rdma/transport.h"

namespace dhnsw::rdma {

std::unique_ptr<Transport> TryCreateVerbsTransport(const TransportOptions& options);

}  // namespace dhnsw::rdma
