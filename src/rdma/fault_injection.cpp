#include "rdma/fault_injection.h"

#include <algorithm>

namespace dhnsw::rdma {

std::string_view FaultKindName(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kUnreachable: return "unreachable";
    case FaultKind::kTimeout: return "timeout";
    case FaultKind::kBitFlip: return "bit-flip";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kDisconnect: return "disconnect";
  }
  return "?";
}

namespace {

/// Remote byte range a WR touches (atomics operate on 8 bytes).
std::pair<uint64_t, uint64_t> WrRange(const WorkRequest& wr) {
  const uint64_t len =
      (wr.opcode == Opcode::kCompareSwap || wr.opcode == Opcode::kFetchAdd)
          ? 8
          : wr.local.size();
  return {wr.remote_offset, wr.remote_offset + len};
}

}  // namespace

FaultInjector::FaultInjector(std::shared_ptr<const FaultPlan> plan, uint32_t qp_id)
    : plan_(std::move(plan)),
      state_(plan_->rules().size()),
      rng_(SplitMix64(plan_->seed() ^ (0x9e3779b97f4a7c15ULL * (qp_id + 1))).Next()) {}

FaultDecision FaultInjector::Evaluate(NodeId owner, const WorkRequest& wr) {
  FaultDecision decision;
  const auto [wr_lo, wr_hi] = WrRange(wr);

  for (size_t r = 0; r < plan_->rules().size(); ++r) {
    const FaultRule& rule = plan_->rules()[r];
    RuleState& st = state_[r];

    // --- scope ---
    if (rule.node.has_value() && *rule.node != owner) continue;
    if (rule.opcode.has_value() && *rule.opcode != wr.opcode) continue;
    if (rule.rkey.has_value() && *rule.rkey != wr.rkey) continue;
    const uint64_t isect_lo = std::max(wr_lo, rule.offset_lo);
    const uint64_t isect_hi = std::min(wr_hi, rule.offset_hi);
    if (isect_lo >= isect_hi) continue;

    const uint64_t match = ++st.matches;

    // --- schedule ---
    if (match <= rule.skip_first) continue;
    if (st.triggers >= rule.max_triggers) continue;
    if (rule.every_nth > 0 && (match - rule.skip_first) % rule.every_nth != 0) {
      continue;
    }
    // The RNG is consumed only on probabilistic rules, so deterministic
    // rules do not perturb other rules' streams.
    if (rule.probability < 1.0 && rng_.NextDouble() >= rule.probability) continue;

    ++st.triggers;
    decision.fired = true;
    decision.kind = rule.kind;
    switch (rule.kind) {
      case FaultKind::kUnreachable:
      case FaultKind::kDisconnect:
        break;
      case FaultKind::kTimeout:
      case FaultKind::kDelay:
        decision.extra_ns = rule.delay_ns;
        break;
      case FaultKind::kBitFlip: {
        // Flip bits inside the intersection of the WR payload and the rule
        // window, addressed relative to the WR's local buffer. Atomics have
        // no payload buffer to damage; treat as a no-op trigger.
        const uint64_t span = isect_hi - isect_lo;
        if (wr.local.empty() || span == 0) break;
        for (uint32_t f = 0; f < std::max<uint32_t>(rule.bit_flips, 1); ++f) {
          const uint64_t bit = rng_.NextBounded(span * 8);
          const uint32_t byte_in_wr =
              static_cast<uint32_t>(isect_lo - wr_lo + bit / 8);
          decision.flips.emplace_back(byte_in_wr,
                                      static_cast<uint8_t>(1u << (bit % 8)));
        }
        break;
      }
    }
    return decision;  // first triggered rule wins
  }
  return decision;
}

}  // namespace dhnsw::rdma
