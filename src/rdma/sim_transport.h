// The simulated backend: the default transport, preserving the pre-transport
// fabric behaviour byte-for-byte. Data movement executes in-process against
// the local region registry; ExecuteRing returns only injected fault latency,
// so the owning QueuePair charges the deterministic NicModel cost — same-seed
// wall-free traces and QpStats are identical to the original simulator.
//
// This is the only backend that evaluates FaultPlans: the injector decision
// stream stays a pure function of the QP's WR sequence because execution is
// an ordinary in-process call.
#pragma once

#include <memory>

#include "rdma/transport.h"

namespace dhnsw::rdma {

class SimTransport final : public LocalTransport {
 public:
  TransportKind kind() const noexcept override { return TransportKind::kSim; }
  std::unique_ptr<TransportChannel> CreateChannel() override;
};

}  // namespace dhnsw::rdma
