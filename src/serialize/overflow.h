// Overflow-record encoding for dynamically inserted vectors (paper §3.2).
//
// Each pair of adjacent clusters shares one overflow region; a record is
// appended with a remote Fetch-And-Add (space allocation) followed by a
// single RDMA_WRITE. Records are fixed-size for a given dimensionality so a
// reader can derive the record count from the used-byte counter alone:
//   record := global_id u32 | flags u32 | crc u32 | f32[dim]
// padded so the record size is a multiple of 8 (FAA alignment unit).
//
// `crc` is CRC32C over the whole record with the crc field zeroed; it is
// verified only for committed records (an in-flight slot is legitimately
// zero) and turns silent wire/bit-rot damage into StatusCode::kCorruption,
// which the compute path treats as retryable (re-read fetches a fresh copy).
//
// `flags` extends the paper's design with tombstones: a record with
// kTombstone marks `global_id` as deleted in this partition. Appending a
// tombstone costs the same two round trips as an insert; compaction
// physically removes both the tombstone and the vector it shadows.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"

namespace dhnsw {

/// Record flag bits.
enum OverflowFlags : uint32_t {
  kOverflowNone = 0,
  kOverflowTombstone = 1u << 0,  ///< deletes `global_id`; vector payload unused
  /// Set by every encoder. The insert protocol claims a slot with FAA
  /// *before* the RDMA_WRITE lands, so a concurrent reader can observe a
  /// claimed-but-unwritten (zero-filled) slot; records without this bit are
  /// in flight and must be skipped, not decoded as data.
  kOverflowCommitted = 1u << 1,
};

/// One decoded overflow record.
struct OverflowRecord {
  uint32_t global_id = 0;
  uint32_t flags = 0;
  std::vector<float> vector;

  bool is_tombstone() const noexcept { return (flags & kOverflowTombstone) != 0; }
  bool is_committed() const noexcept { return (flags & kOverflowCommitted) != 0; }
};

/// Bytes one record occupies for `dim`-dimensional vectors (multiple of 8).
constexpr size_t OverflowRecordSize(uint32_t dim) {
  const size_t raw = 12 + static_cast<size_t>(dim) * 4;
  return (raw + 7) / 8 * 8;
}

/// Encodes a record into exactly OverflowRecordSize(dim) bytes at `dst`.
void EncodeOverflowRecord(uint32_t global_id, std::span<const float> vector,
                          std::span<uint8_t> dst, uint32_t flags = kOverflowNone);

/// Encodes a tombstone for `global_id` (`dim` fixes the record stride).
void EncodeOverflowTombstone(uint32_t global_id, uint32_t dim, std::span<uint8_t> dst);

/// Decodes one record from `src` (must be >= OverflowRecordSize(dim)).
Result<OverflowRecord> DecodeOverflowRecord(std::span<const uint8_t> src, uint32_t dim);

/// Decodes `used_bytes / record_size` records from a raw overflow area,
/// silently dropping uncommitted (in-flight) slots.
Result<std::vector<OverflowRecord>> DecodeOverflowArea(std::span<const uint8_t> area,
                                                       uint64_t used_bytes, uint32_t dim);

}  // namespace dhnsw
