#include "serialize/overflow.h"

#include <cassert>
#include <cstring>

#include "common/crc32.h"

namespace dhnsw {

namespace {

/// CRC over the full record with the crc field (bytes [8, 12)) zeroed, so
/// the checksum covers id, flags, vector payload, and padding.
uint32_t RecordCrc(std::span<const uint8_t> record) {
  uint32_t crc = Crc32c(record.first(8));
  const uint8_t kZeros[4] = {0, 0, 0, 0};
  crc = Crc32c({kZeros, 4}, crc);
  return Crc32c(record.subspan(12), crc);
}

}  // namespace

void EncodeOverflowRecord(uint32_t global_id, std::span<const float> vector,
                          std::span<uint8_t> dst, uint32_t flags) {
  const uint32_t dim = static_cast<uint32_t>(vector.size());
  const size_t rec = OverflowRecordSize(dim);
  assert(dst.size() >= rec);
  std::memset(dst.data(), 0, rec);
  flags |= kOverflowCommitted;
  std::memcpy(dst.data(), &global_id, 4);
  std::memcpy(dst.data() + 4, &flags, 4);
  std::memcpy(dst.data() + 12, vector.data(), vector.size() * 4);
  const uint32_t crc = RecordCrc(dst.first(rec));
  std::memcpy(dst.data() + 8, &crc, 4);
}

void EncodeOverflowTombstone(uint32_t global_id, uint32_t dim, std::span<uint8_t> dst) {
  const size_t rec = OverflowRecordSize(dim);
  assert(dst.size() >= rec);
  std::memset(dst.data(), 0, rec);
  const uint32_t flags = kOverflowTombstone | kOverflowCommitted;
  std::memcpy(dst.data(), &global_id, 4);
  std::memcpy(dst.data() + 4, &flags, 4);
  const uint32_t crc = RecordCrc(dst.first(rec));
  std::memcpy(dst.data() + 8, &crc, 4);
}

Result<OverflowRecord> DecodeOverflowRecord(std::span<const uint8_t> src, uint32_t dim) {
  const size_t rec = OverflowRecordSize(dim);
  if (src.size() < rec) {
    return Status::Corruption("overflow record truncated");
  }
  OverflowRecord out;
  std::memcpy(&out.global_id, src.data(), 4);
  std::memcpy(&out.flags, src.data() + 4, 4);
  // An uncommitted slot is legitimately all-zero (FAA landed, WRITE in
  // flight); its crc field is meaningless and must not be checked.
  if (out.is_committed()) {
    uint32_t stored = 0;
    std::memcpy(&stored, src.data() + 8, 4);
    if (stored != RecordCrc(src.first(rec))) {
      return Status::Corruption("overflow record crc mismatch");
    }
  }
  out.vector.resize(dim);
  std::memcpy(out.vector.data(), src.data() + 12, static_cast<size_t>(dim) * 4);
  return out;
}

Result<std::vector<OverflowRecord>> DecodeOverflowArea(std::span<const uint8_t> area,
                                                       uint64_t used_bytes, uint32_t dim) {
  const size_t rec = OverflowRecordSize(dim);
  if (used_bytes > area.size()) {
    return Status::Corruption("overflow used_bytes exceeds area");
  }
  if (used_bytes % rec != 0) {
    return Status::Corruption("overflow used_bytes not a record multiple");
  }
  std::vector<OverflowRecord> out;
  out.reserve(used_bytes / rec);
  for (uint64_t off = 0; off < used_bytes; off += rec) {
    DHNSW_ASSIGN_OR_RETURN(OverflowRecord r,
                           DecodeOverflowRecord(area.subspan(off, rec), dim));
    // Claimed-but-unwritten slot (FAA landed, WRITE still in flight): skip.
    if (!r.is_committed()) continue;
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace dhnsw
