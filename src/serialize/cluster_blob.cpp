#include "serialize/cluster_blob.h"

#include <cassert>

#include "common/binary_io.h"
#include "common/crc32.h"

namespace dhnsw {
namespace {

constexpr uint32_t kNoMaxLevel = 0xFFFFFFFFu;  // empty-graph sentinel

void EncodeHeader(const ClusterHeader& h, BinaryWriter* w) {
  const size_t start = w->size();
  w->PutU32(h.magic);
  w->PutU16(h.version);
  w->PutU16(h.flags);
  w->PutU32(h.partition_id);
  w->PutU32(h.dim);
  w->PutU32(h.count);
  w->PutU32(h.m);
  w->PutU32(h.entry_point);
  w->PutU32(h.max_level);
  w->PutU64(h.payload_size);
  w->PutU32(h.payload_crc);
  w->PutU32(h.ext_size);
  while (w->size() - start < ClusterHeader::kEncodedSize) w->PutU8(0);
  assert(w->size() - start == ClusterHeader::kEncodedSize);
}

Status DecodeHeader(BinaryReader* r, ClusterHeader* h) {
  const size_t start = r->offset();
  DHNSW_RETURN_IF_ERROR(r->GetU32(&h->magic));
  if (h->magic != ClusterHeader::kMagic) {
    return Status::Corruption("cluster blob: bad magic");
  }
  DHNSW_RETURN_IF_ERROR(r->GetU16(&h->version));
  if (h->version != ClusterHeader::kVersion) {
    return Status::Corruption("cluster blob: unsupported version");
  }
  DHNSW_RETURN_IF_ERROR(r->GetU16(&h->flags));
  DHNSW_RETURN_IF_ERROR(r->GetU32(&h->partition_id));
  DHNSW_RETURN_IF_ERROR(r->GetU32(&h->dim));
  DHNSW_RETURN_IF_ERROR(r->GetU32(&h->count));
  DHNSW_RETURN_IF_ERROR(r->GetU32(&h->m));
  DHNSW_RETURN_IF_ERROR(r->GetU32(&h->entry_point));
  DHNSW_RETURN_IF_ERROR(r->GetU32(&h->max_level));
  DHNSW_RETURN_IF_ERROR(r->GetU64(&h->payload_size));
  DHNSW_RETURN_IF_ERROR(r->GetU32(&h->payload_crc));
  DHNSW_RETURN_IF_ERROR(r->GetU32(&h->ext_size));
  if ((h->flags & ClusterHeader::kFlagHasExtensions) == 0 && h->ext_size != 0) {
    return Status::Corruption("cluster blob: ext_size without extension flag");
  }
  if ((h->flags & ClusterHeader::kFlagHasExtensions) != 0 && h->ext_size == 0) {
    return Status::Corruption("cluster blob: extension flag without sections");
  }
  return r->Skip(ClusterHeader::kEncodedSize - (r->offset() - start));
}

/// One parsed extension section (body CRC already verified).
struct ExtSection {
  uint16_t kind = 0;
  uint16_t version = 0;
  std::span<const uint8_t> body;
};

constexpr uint16_t kExtKindPqCodes = 1;
constexpr uint16_t kExtKindPqCodebook = 2;

/// Walks the extension area [kEncodedSize, kEncodedSize + ext_size) of
/// `bytes`, verifying framing + per-section CRCs. Corruption messages carry
/// the absolute byte offset of the failure.
Status ParseExtSections(std::span<const uint8_t> bytes, const ClusterHeader& h,
                        std::vector<ExtSection>* out) {
  out->clear();
  if (h.ext_size == 0) return Status::Ok();
  const size_t ext_end = ClusterHeader::kEncodedSize + h.ext_size;
  if (bytes.size() < ext_end) {
    return Status::Corruption("cluster blob: extension area truncated at offset " +
                              std::to_string(bytes.size()));
  }
  BinaryReader r(bytes.first(ext_end));
  Status skip = r.Skip(ClusterHeader::kEncodedSize);
  assert(skip.ok());
  (void)skip;
  while (r.offset() < ext_end) {
    const size_t section_start = r.offset();
    ExtSection s;
    uint32_t body_size = 0;
    if (!r.GetU16(&s.kind).ok() || !r.GetU16(&s.version).ok() ||
        !r.GetU32(&body_size).ok()) {
      return Status::Corruption("cluster blob: extension header truncated at offset " +
                                std::to_string(section_start));
    }
    if (r.remaining() < static_cast<size_t>(body_size) + 4) {
      return Status::Corruption("cluster blob: extension body truncated at offset " +
                                std::to_string(r.offset()));
    }
    s.body = bytes.subspan(r.offset(), body_size);
    skip = r.Skip(body_size);
    assert(skip.ok());
    uint32_t stored_crc = 0;
    skip = r.GetU32(&stored_crc);
    assert(skip.ok());
    if (Crc32c(s.body) != stored_crc) {
      return Status::Corruption("cluster blob: extension CRC mismatch at offset " +
                                std::to_string(section_start));
    }
    out->push_back(s);
  }
  return Status::Ok();
}

}  // namespace

size_t EncodedClusterSize(const Cluster& cluster) {
  const HnswIndex& index = cluster.index;
  const size_t count = index.size();
  size_t payload = 0;
  payload += count * 4;                         // global ids
  payload += count * 4;                         // levels
  for (uint32_t id = 0; id < count; ++id) {     // adjacency
    for (uint32_t layer = 0; layer <= index.level(id); ++layer) {
      payload += 4 + index.neighbors(id, layer).size() * 4;
    }
  }
  payload += count * index.dim() * 4;           // vectors
  return ClusterHeader::kEncodedSize + payload;
}

ClusterSizePlan PlanClusterSize(const Cluster& cluster, uint32_t code_m) {
  const size_t count = cluster.index.size();
  const size_t payload_size = EncodedClusterSize(cluster) - ClusterHeader::kEncodedSize;
  const size_t vectors_offset = payload_size - count * cluster.index.dim() * 4;
  // Codes section: 8-byte framing + fixed 20-byte body head + codes + 4-byte CRC.
  const size_t ext_size = code_m > 0 ? 8 + 20 + count * code_m + 4 : 0;
  ClusterSizePlan plan;
  plan.total_size = ClusterHeader::kEncodedSize + ext_size + payload_size;
  plan.pq_head_size =
      code_m > 0 ? ClusterHeader::kEncodedSize + ext_size + vectors_offset : 0;
  return plan;
}

std::vector<uint8_t> EncodeCluster(const Cluster& cluster) {
  return EncodeCluster(cluster, ClusterPqExtensions{}, nullptr);
}

std::vector<uint8_t> EncodeCluster(const Cluster& cluster,
                                   const ClusterPqExtensions& ext,
                                   uint64_t* pq_head_size) {
  const HnswIndex& index = cluster.index;
  assert(cluster.global_ids.size() == index.size());

  // Payload first (header needs its size + CRC).
  std::vector<uint8_t> payload;
  payload.reserve(EncodedClusterSize(cluster) - ClusterHeader::kEncodedSize);
  {
    BinaryWriter w(&payload);
    w.PutU32Array(cluster.global_ids);
    for (uint32_t id = 0; id < index.size(); ++id) w.PutU32(index.level(id));
    for (uint32_t id = 0; id < index.size(); ++id) {
      for (uint32_t layer = 0; layer <= index.level(id); ++layer) {
        const auto nbs = index.neighbors(id, layer);
        w.PutU32(static_cast<uint32_t>(nbs.size()));
        w.PutU32Array(nbs);
      }
    }
    w.PutF32Array(index.vectors());
  }
  // The float rows always close the payload, so the graph prefix ends here.
  const uint64_t vectors_offset =
      payload.size() - static_cast<size_t>(index.size()) * index.dim() * 4;

  const bool has_codes = ext.code_m > 0;
  std::vector<uint8_t> ext_bytes;
  {
    BinaryWriter w(&ext_bytes);
    const auto append_section = [&w](uint16_t kind, std::span<const uint8_t> body) {
      w.PutU16(kind);
      w.PutU16(1);  // section version
      w.PutU32(static_cast<uint32_t>(body.size()));
      w.PutBytes(body);
      w.PutU32(Crc32c(body));
    };
    if (has_codes) {
      assert(ext.codes.size() ==
             static_cast<size_t>(index.size()) * ext.code_m);
      std::vector<uint8_t> body;
      BinaryWriter bw(&body);
      bw.PutU16(static_cast<uint16_t>(ext.code_m));
      bw.PutU16(0);  // reserved
      bw.PutU32(static_cast<uint32_t>(index.size()));
      bw.PutU64(vectors_offset);
      bw.PutU32(Crc32c(std::span<const uint8_t>(payload).first(vectors_offset)));
      bw.PutBytes(ext.codes);
      append_section(kExtKindPqCodes, body);
    }
    if (ext.codebook != nullptr) {
      append_section(kExtKindPqCodebook, ext.codebook->ToBytes());
    }
  }

  ClusterHeader h;
  // Blobs are self-describing: the metric rides in the flags field so a
  // decoder (or a compactor on another node) never guesses it.
  h.flags = static_cast<uint16_t>(index.options().metric);
  if (!ext_bytes.empty()) h.flags |= ClusterHeader::kFlagHasExtensions;
  h.partition_id = cluster.partition_id;
  h.dim = index.dim();
  h.count = static_cast<uint32_t>(index.size());
  h.m = index.options().M;
  h.entry_point = index.empty() ? 0 : index.entry_point();
  h.max_level = index.empty() ? kNoMaxLevel
                              : static_cast<uint32_t>(index.max_level_in_graph());
  h.payload_size = payload.size();
  h.payload_crc = Crc32c(payload);
  h.ext_size = static_cast<uint32_t>(ext_bytes.size());

  if (pq_head_size != nullptr) {
    *pq_head_size = has_codes
                        ? ClusterHeader::kEncodedSize + ext_bytes.size() + vectors_offset
                        : 0;
  }

  std::vector<uint8_t> out;
  out.reserve(ClusterHeader::kEncodedSize + ext_bytes.size() + payload.size());
  BinaryWriter w(&out);
  EncodeHeader(h, &w);
  w.PutBytes(ext_bytes);
  w.PutBytes(payload);
  // Keep the size predictor honest (codebook sections are out of its scope).
  assert(ext.codebook != nullptr ||
         out.size() == PlanClusterSize(cluster, ext.code_m).total_size);
  return out;
}

Result<ClusterHeader> PeekClusterHeader(std::span<const uint8_t> bytes) {
  BinaryReader r(bytes);
  ClusterHeader h;
  DHNSW_RETURN_IF_ERROR(DecodeHeader(&r, &h));
  return h;
}

Result<Cluster> DecodeCluster(std::span<const uint8_t> bytes,
                              const HnswOptions& options_template) {
  BinaryReader r(bytes);
  ClusterHeader h;
  DHNSW_RETURN_IF_ERROR(DecodeHeader(&r, &h));
  if (h.ext_size > 0) {
    // Verify framing/CRCs but otherwise skip: raw decoding ignores PQ
    // sections (the payload is unchanged by their presence).
    std::vector<ExtSection> sections;
    DHNSW_RETURN_IF_ERROR(ParseExtSections(bytes, h, &sections));
    DHNSW_RETURN_IF_ERROR(r.Skip(h.ext_size));
  }
  if (r.remaining() < h.payload_size) {
    return Status::Corruption("cluster blob: payload truncated");
  }
  const std::span<const uint8_t> payload =
      bytes.subspan(ClusterHeader::kEncodedSize + h.ext_size, h.payload_size);
  if (Crc32c(payload) != h.payload_crc) {
    return Status::Corruption("cluster blob: payload CRC mismatch");
  }

  const uint32_t count = h.count;
  std::vector<uint32_t> global_ids(count);
  DHNSW_RETURN_IF_ERROR(r.GetU32Array(global_ids));
  std::vector<uint32_t> levels(count);
  DHNSW_RETURN_IF_ERROR(r.GetU32Array(levels));

  std::vector<std::vector<std::vector<uint32_t>>> links(count);
  for (uint32_t id = 0; id < count; ++id) {
    links[id].resize(levels[id] + 1);
    for (uint32_t layer = 0; layer <= levels[id]; ++layer) {
      uint32_t degree = 0;
      DHNSW_RETURN_IF_ERROR(r.GetU32(&degree));
      if (degree > 4 * std::max<uint32_t>(h.m, 1)) {
        return Status::Corruption("cluster blob: implausible degree");
      }
      links[id][layer].resize(degree);
      DHNSW_RETURN_IF_ERROR(r.GetU32Array(links[id][layer]));
    }
  }

  std::vector<float> vectors(static_cast<size_t>(count) * h.dim);
  DHNSW_RETURN_IF_ERROR(r.GetF32Array(vectors));

  HnswOptions options = options_template;
  options.M = h.m;
  options.metric = static_cast<Metric>(h.flags & 0x7);
  DHNSW_ASSIGN_OR_RETURN(
      HnswIndex index,
      HnswIndex::FromRaw(h.dim, options, std::move(vectors), std::move(levels),
                         std::move(links), h.entry_point));
  return Cluster(h.partition_id, std::move(index), std::move(global_ids));
}

Result<std::optional<ProductQuantizer>> DecodeClusterCodebook(
    std::span<const uint8_t> bytes) {
  BinaryReader r(bytes);
  ClusterHeader h;
  DHNSW_RETURN_IF_ERROR(DecodeHeader(&r, &h));
  std::vector<ExtSection> sections;
  DHNSW_RETURN_IF_ERROR(ParseExtSections(bytes, h, &sections));
  for (const ExtSection& s : sections) {
    if (s.kind != kExtKindPqCodebook) continue;
    DHNSW_ASSIGN_OR_RETURN(ProductQuantizer pq,
                           ProductQuantizer::FromBytes(s.body));
    return std::optional<ProductQuantizer>(std::move(pq));
  }
  return std::optional<ProductQuantizer>();
}

Result<PqCluster> DecodePqCluster(std::span<const uint8_t> bytes) {
  BinaryReader r(bytes);
  ClusterHeader h;
  DHNSW_RETURN_IF_ERROR(DecodeHeader(&r, &h));
  std::vector<ExtSection> sections;
  DHNSW_RETURN_IF_ERROR(ParseExtSections(bytes, h, &sections));

  const ExtSection* codes_section = nullptr;
  for (const ExtSection& s : sections) {
    if (s.kind == kExtKindPqCodes) codes_section = &s;
  }
  if (codes_section == nullptr) {
    return Status::Corruption("cluster blob: no PQ codes section");
  }

  PqCluster pc;
  pc.partition_id = h.partition_id;
  pc.dim = h.dim;
  pc.count = h.count;
  pc.hnsw_m = h.m;
  pc.entry_point = h.entry_point;
  pc.max_level = h.max_level == kNoMaxLevel ? 0 : h.max_level;
  pc.metric = static_cast<Metric>(h.flags & 0x7);

  {
    BinaryReader br(codes_section->body);
    uint16_t code_m = 0, reserved = 0;
    uint32_t count = 0, graph_crc = 0;
    DHNSW_RETURN_IF_ERROR(br.GetU16(&code_m));
    DHNSW_RETURN_IF_ERROR(br.GetU16(&reserved));
    DHNSW_RETURN_IF_ERROR(br.GetU32(&count));
    DHNSW_RETURN_IF_ERROR(br.GetU64(&pc.vectors_offset));
    DHNSW_RETURN_IF_ERROR(br.GetU32(&graph_crc));
    if (code_m == 0 || count != h.count ||
        br.remaining() != static_cast<size_t>(count) * code_m) {
      return Status::Corruption("cluster blob: PQ codes section geometry mismatch");
    }
    if (pc.vectors_offset + static_cast<uint64_t>(h.count) * h.dim * 4 !=
        h.payload_size) {
      return Status::Corruption("cluster blob: PQ vectors_offset inconsistent");
    }
    pc.m = code_m;
    pc.codes.resize(static_cast<size_t>(count) * code_m);
    DHNSW_RETURN_IF_ERROR(br.GetBytes(pc.codes));

    const size_t graph_start = ClusterHeader::kEncodedSize + h.ext_size;
    if (bytes.size() < graph_start + pc.vectors_offset) {
      return Status::Corruption("cluster blob: PQ prefix truncated at offset " +
                                std::to_string(bytes.size()));
    }
    const std::span<const uint8_t> graph =
        bytes.subspan(graph_start, pc.vectors_offset);
    if (Crc32c(graph) != graph_crc) {
      return Status::Corruption("cluster blob: PQ graph CRC mismatch at offset " +
                                std::to_string(graph_start));
    }

    // Graph prefix: ids, levels, adjacency — same layout as the raw payload,
    // decoded into flat CSR adjacency instead of an HnswIndex.
    BinaryReader gr(graph);
    pc.global_ids.resize(h.count);
    DHNSW_RETURN_IF_ERROR(gr.GetU32Array(pc.global_ids));
    pc.levels.resize(h.count);
    DHNSW_RETURN_IF_ERROR(gr.GetU32Array(pc.levels));

    pc.span_index.resize(h.count);
    size_t slots = 0;
    for (uint32_t id = 0; id < h.count; ++id) {
      pc.span_index[id] = static_cast<uint32_t>(slots);
      slots += pc.levels[id] + 1;
    }
    pc.span_offsets.reserve(slots + 1);
    for (uint32_t id = 0; id < h.count; ++id) {
      for (uint32_t layer = 0; layer <= pc.levels[id]; ++layer) {
        uint32_t degree = 0;
        DHNSW_RETURN_IF_ERROR(gr.GetU32(&degree));
        if (degree > 4 * std::max<uint32_t>(h.m, 1)) {
          return Status::Corruption("cluster blob: implausible degree");
        }
        pc.span_offsets.push_back(static_cast<uint32_t>(pc.neighbor_ids.size()));
        const size_t start = pc.neighbor_ids.size();
        pc.neighbor_ids.resize(start + degree);
        DHNSW_RETURN_IF_ERROR(gr.GetU32Array(
            std::span<uint32_t>(pc.neighbor_ids).subspan(start, degree)));
        for (size_t i = start; i < pc.neighbor_ids.size(); ++i) {
          if (pc.neighbor_ids[i] >= h.count) {
            return Status::Corruption("cluster blob: PQ neighbor id out of range");
          }
        }
      }
    }
    pc.span_offsets.push_back(static_cast<uint32_t>(pc.neighbor_ids.size()));
    if (h.count > 0 && pc.entry_point >= h.count) {
      return Status::Corruption("cluster blob: PQ entry point out of range");
    }
  }
  return pc;
}

}  // namespace dhnsw
