#include "serialize/cluster_blob.h"

#include <cassert>

#include "common/binary_io.h"
#include "common/crc32.h"

namespace dhnsw {
namespace {

constexpr uint32_t kNoMaxLevel = 0xFFFFFFFFu;  // empty-graph sentinel

void EncodeHeader(const ClusterHeader& h, BinaryWriter* w) {
  const size_t start = w->size();
  w->PutU32(h.magic);
  w->PutU16(h.version);
  w->PutU16(h.flags);
  w->PutU32(h.partition_id);
  w->PutU32(h.dim);
  w->PutU32(h.count);
  w->PutU32(h.m);
  w->PutU32(h.entry_point);
  w->PutU32(h.max_level);
  w->PutU64(h.payload_size);
  w->PutU32(h.payload_crc);
  while (w->size() - start < ClusterHeader::kEncodedSize) w->PutU8(0);
  assert(w->size() - start == ClusterHeader::kEncodedSize);
}

Status DecodeHeader(BinaryReader* r, ClusterHeader* h) {
  const size_t start = r->offset();
  DHNSW_RETURN_IF_ERROR(r->GetU32(&h->magic));
  if (h->magic != ClusterHeader::kMagic) {
    return Status::Corruption("cluster blob: bad magic");
  }
  DHNSW_RETURN_IF_ERROR(r->GetU16(&h->version));
  if (h->version != ClusterHeader::kVersion) {
    return Status::Corruption("cluster blob: unsupported version");
  }
  DHNSW_RETURN_IF_ERROR(r->GetU16(&h->flags));
  DHNSW_RETURN_IF_ERROR(r->GetU32(&h->partition_id));
  DHNSW_RETURN_IF_ERROR(r->GetU32(&h->dim));
  DHNSW_RETURN_IF_ERROR(r->GetU32(&h->count));
  DHNSW_RETURN_IF_ERROR(r->GetU32(&h->m));
  DHNSW_RETURN_IF_ERROR(r->GetU32(&h->entry_point));
  DHNSW_RETURN_IF_ERROR(r->GetU32(&h->max_level));
  DHNSW_RETURN_IF_ERROR(r->GetU64(&h->payload_size));
  DHNSW_RETURN_IF_ERROR(r->GetU32(&h->payload_crc));
  return r->Skip(ClusterHeader::kEncodedSize - (r->offset() - start));
}

}  // namespace

size_t EncodedClusterSize(const Cluster& cluster) {
  const HnswIndex& index = cluster.index;
  const size_t count = index.size();
  size_t payload = 0;
  payload += count * 4;                         // global ids
  payload += count * 4;                         // levels
  for (uint32_t id = 0; id < count; ++id) {     // adjacency
    for (uint32_t layer = 0; layer <= index.level(id); ++layer) {
      payload += 4 + index.neighbors(id, layer).size() * 4;
    }
  }
  payload += count * index.dim() * 4;           // vectors
  return ClusterHeader::kEncodedSize + payload;
}

std::vector<uint8_t> EncodeCluster(const Cluster& cluster) {
  const HnswIndex& index = cluster.index;
  assert(cluster.global_ids.size() == index.size());

  // Payload first (header needs its size + CRC).
  std::vector<uint8_t> payload;
  payload.reserve(EncodedClusterSize(cluster) - ClusterHeader::kEncodedSize);
  {
    BinaryWriter w(&payload);
    w.PutU32Array(cluster.global_ids);
    for (uint32_t id = 0; id < index.size(); ++id) w.PutU32(index.level(id));
    for (uint32_t id = 0; id < index.size(); ++id) {
      for (uint32_t layer = 0; layer <= index.level(id); ++layer) {
        const auto nbs = index.neighbors(id, layer);
        w.PutU32(static_cast<uint32_t>(nbs.size()));
        w.PutU32Array(nbs);
      }
    }
    w.PutF32Array(index.vectors());
  }

  ClusterHeader h;
  // Blobs are self-describing: the metric rides in the flags field so a
  // decoder (or a compactor on another node) never guesses it.
  h.flags = static_cast<uint16_t>(index.options().metric);
  h.partition_id = cluster.partition_id;
  h.dim = index.dim();
  h.count = static_cast<uint32_t>(index.size());
  h.m = index.options().M;
  h.entry_point = index.empty() ? 0 : index.entry_point();
  h.max_level = index.empty() ? kNoMaxLevel
                              : static_cast<uint32_t>(index.max_level_in_graph());
  h.payload_size = payload.size();
  h.payload_crc = Crc32c(payload);

  std::vector<uint8_t> out;
  out.reserve(ClusterHeader::kEncodedSize + payload.size());
  BinaryWriter w(&out);
  EncodeHeader(h, &w);
  w.PutBytes(payload);
  return out;
}

Result<ClusterHeader> PeekClusterHeader(std::span<const uint8_t> bytes) {
  BinaryReader r(bytes);
  ClusterHeader h;
  DHNSW_RETURN_IF_ERROR(DecodeHeader(&r, &h));
  return h;
}

Result<Cluster> DecodeCluster(std::span<const uint8_t> bytes,
                              const HnswOptions& options_template) {
  BinaryReader r(bytes);
  ClusterHeader h;
  DHNSW_RETURN_IF_ERROR(DecodeHeader(&r, &h));
  if (r.remaining() < h.payload_size) {
    return Status::Corruption("cluster blob: payload truncated");
  }
  const std::span<const uint8_t> payload =
      bytes.subspan(ClusterHeader::kEncodedSize, h.payload_size);
  if (Crc32c(payload) != h.payload_crc) {
    return Status::Corruption("cluster blob: payload CRC mismatch");
  }

  const uint32_t count = h.count;
  std::vector<uint32_t> global_ids(count);
  DHNSW_RETURN_IF_ERROR(r.GetU32Array(global_ids));
  std::vector<uint32_t> levels(count);
  DHNSW_RETURN_IF_ERROR(r.GetU32Array(levels));

  std::vector<std::vector<std::vector<uint32_t>>> links(count);
  for (uint32_t id = 0; id < count; ++id) {
    links[id].resize(levels[id] + 1);
    for (uint32_t layer = 0; layer <= levels[id]; ++layer) {
      uint32_t degree = 0;
      DHNSW_RETURN_IF_ERROR(r.GetU32(&degree));
      if (degree > 4 * std::max<uint32_t>(h.m, 1)) {
        return Status::Corruption("cluster blob: implausible degree");
      }
      links[id][layer].resize(degree);
      DHNSW_RETURN_IF_ERROR(r.GetU32Array(links[id][layer]));
    }
  }

  std::vector<float> vectors(static_cast<size_t>(count) * h.dim);
  DHNSW_RETURN_IF_ERROR(r.GetF32Array(vectors));

  HnswOptions options = options_template;
  options.M = h.m;
  options.metric = static_cast<Metric>(h.flags & 0x7);
  DHNSW_ASSIGN_OR_RETURN(
      HnswIndex index,
      HnswIndex::FromRaw(h.dim, options, std::move(vectors), std::move(levels),
                         std::move(links), h.entry_point));
  return Cluster(h.partition_id, std::move(index), std::move(global_ids));
}

}  // namespace dhnsw
