// Compact, versioned, checksummed serialization of one sub-HNSW cluster —
// the unit that lives in remote memory and crosses the wire on every cluster
// load (paper Fig. 4: "metadata, neighbor array for HNSW, and the associated
// floating-point vectors").
//
// Layout (little-endian):
//   [48-byte header][extension sections, ext_size bytes][payload]
//   payload := global_ids u32[count]
//              levels     u32[count]
//              adjacency  per node, per layer 0..level: degree u32, u32[degree]
//              vectors    f32[count*dim]
// The header carries a CRC-32C of the payload so a torn RDMA read of a
// concurrently rebuilt cluster is detected instead of silently searched.
//
// Extension sections (version 1, present iff kFlagHasExtensions is set;
// ext_size == 0 keeps the byte stream identical to pre-extension blobs):
//   section := kind u16, version u16, body_size u32, body[body_size],
//              crc u32 (CRC-32C of body)
//   kind 1 (PQ codes):    m u16, reserved u16, count u32, vectors_offset u64,
//                         graph_crc u32 (CRC-32C of payload[0, vectors_offset)
//                         — validates a *prefix* read that stops before the
//                         float rows), codes u8[count*m]
//   kind 2 (PQ codebook): ProductQuantizer::ToBytes body (meta blob only)
// The payload itself is unchanged by extensions, so `payload=pq` readers can
// fetch just [0, pq_head_size) = header + extensions + payload up to
// vectors_offset, and raw readers skip the extension area entirely.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/status.h"
#include "index/hnsw.h"
#include "index/pq.h"

namespace dhnsw {

/// Fixed-size on-wire header of a serialized cluster.
struct ClusterHeader {
  static constexpr uint32_t kMagic = 0x44484E57;  // "DHNW"
  static constexpr uint16_t kVersion = 1;
  static constexpr size_t kEncodedSize = 48;
  /// flags bits 0..2 carry the Metric; bit 3 marks extension sections.
  static constexpr uint16_t kFlagHasExtensions = 0x8;

  uint32_t magic = kMagic;
  uint16_t version = kVersion;
  uint16_t flags = 0;
  uint32_t partition_id = 0;
  uint32_t dim = 0;
  uint32_t count = 0;
  uint32_t m = 0;            ///< HNSW M the graph was built with
  uint32_t entry_point = 0;
  uint32_t max_level = 0;
  uint64_t payload_size = 0;
  uint32_t payload_crc = 0;
  uint32_t ext_size = 0;     ///< bytes of extension sections after the header
};

/// A sub-HNSW cluster ready for serialization / freshly decoded: the graph
/// over partition-local ids plus the mapping back to dataset-global ids.
struct Cluster {
  uint32_t partition_id = 0;
  HnswIndex index;
  std::vector<uint32_t> global_ids;  ///< local id -> global id

  Cluster(uint32_t pid, HnswIndex idx, std::vector<uint32_t> gids)
      : partition_id(pid), index(std::move(idx)), global_ids(std::move(gids)) {}
};

/// Optional PQ material to ride along with a cluster blob as extension
/// sections. Both members are independent: sub-cluster blobs carry codes,
/// the meta blob carries the shared codebook.
struct ClusterPqExtensions {
  const ProductQuantizer* codebook = nullptr;  ///< kind-2 section when set
  std::span<const uint8_t> codes;              ///< count x code_m, kind-1 section
  uint32_t code_m = 0;                         ///< PQ subquantizers (codes row width)
};

/// Serializes `cluster` into a fresh byte vector.
std::vector<uint8_t> EncodeCluster(const Cluster& cluster);

/// Extension-aware encode. When `ext` has codes, `pq_head_size` (if non-null)
/// receives header + ext_size + vectors_offset — the prefix a `payload=pq`
/// reader fetches; otherwise it receives 0.
std::vector<uint8_t> EncodeCluster(const Cluster& cluster,
                                   const ClusterPqExtensions& ext,
                                   uint64_t* pq_head_size);

/// Exact encoded size without materializing the bytes (layout planning).
size_t EncodedClusterSize(const Cluster& cluster);

/// Exact sizes of the blob EncodeCluster would emit for `cluster` with a
/// codes section of `code_m` bytes/vector (0 = no PQ section), again without
/// materializing anything. Lets the provisioner plan the full region layout
/// first and then encode straight into each cluster's final offset — the
/// streamed build path never holds more than a few blobs in flight.
/// (Codebook sections are not covered; only the meta blob carries one.)
struct ClusterSizePlan {
  size_t total_size = 0;     ///< header + extensions + payload
  uint64_t pq_head_size = 0; ///< prefix a `payload=pq` reader fetches; 0 if no codes
};
ClusterSizePlan PlanClusterSize(const Cluster& cluster, uint32_t code_m);

/// Parses and CRC-verifies a blob. `bytes` may be longer than the blob
/// (e.g. a read that also covered the overflow region); trailing bytes are
/// ignored. HnswOptions besides M/metric come from `options_template`.
Result<Cluster> DecodeCluster(std::span<const uint8_t> bytes,
                              const HnswOptions& options_template);

/// Reads just the header (no CRC check) — used to size follow-up reads.
Result<ClusterHeader> PeekClusterHeader(std::span<const uint8_t> bytes);

/// Extracts the PQ codebook extension section, if present (meta-HNSW blob).
/// Returns nullopt for blobs without one; kCorruption for damaged sections.
Result<std::optional<ProductQuantizer>> DecodeClusterCodebook(
    std::span<const uint8_t> bytes);

/// Decodes a PQ *prefix* read — header + extensions + the payload up to (and
/// excluding) the float rows. `bytes` must cover at least pq_head_size;
/// trailing bytes are ignored. The graph prefix is validated against the
/// codes section's graph_crc (the full-payload CRC can't be checked without
/// the vectors). Fails kCorruption (with the byte offset) on truncation,
/// CRC mismatch, or a blob without a codes section.
Result<PqCluster> DecodePqCluster(std::span<const uint8_t> bytes);

}  // namespace dhnsw
