// Compact, versioned, checksummed serialization of one sub-HNSW cluster —
// the unit that lives in remote memory and crosses the wire on every cluster
// load (paper Fig. 4: "metadata, neighbor array for HNSW, and the associated
// floating-point vectors").
//
// Layout (little-endian):
//   [48-byte header][payload]
//   payload := global_ids u32[count]
//              levels     u32[count]
//              adjacency  per node, per layer 0..level: degree u32, u32[degree]
//              vectors    f32[count*dim]
// The header carries a CRC-32C of the payload so a torn RDMA read of a
// concurrently rebuilt cluster is detected instead of silently searched.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "index/hnsw.h"

namespace dhnsw {

/// Fixed-size on-wire header of a serialized cluster.
struct ClusterHeader {
  static constexpr uint32_t kMagic = 0x44484E57;  // "DHNW"
  static constexpr uint16_t kVersion = 1;
  static constexpr size_t kEncodedSize = 48;

  uint32_t magic = kMagic;
  uint16_t version = kVersion;
  uint16_t flags = 0;
  uint32_t partition_id = 0;
  uint32_t dim = 0;
  uint32_t count = 0;
  uint32_t m = 0;            ///< HNSW M the graph was built with
  uint32_t entry_point = 0;
  uint32_t max_level = 0;
  uint64_t payload_size = 0;
  uint32_t payload_crc = 0;
};

/// A sub-HNSW cluster ready for serialization / freshly decoded: the graph
/// over partition-local ids plus the mapping back to dataset-global ids.
struct Cluster {
  uint32_t partition_id = 0;
  HnswIndex index;
  std::vector<uint32_t> global_ids;  ///< local id -> global id

  Cluster(uint32_t pid, HnswIndex idx, std::vector<uint32_t> gids)
      : partition_id(pid), index(std::move(idx)), global_ids(std::move(gids)) {}
};

/// Serializes `cluster` into a fresh byte vector.
std::vector<uint8_t> EncodeCluster(const Cluster& cluster);

/// Exact encoded size without materializing the bytes (layout planning).
size_t EncodedClusterSize(const Cluster& cluster);

/// Parses and CRC-verifies a blob. `bytes` may be longer than the blob
/// (e.g. a read that also covered the overflow region); trailing bytes are
/// ignored. HnswOptions besides M/metric come from `options_template`.
Result<Cluster> DecodeCluster(std::span<const uint8_t> bytes,
                              const HnswOptions& options_template);

/// Reads just the header (no CRC check) — used to size follow-up reads.
Result<ClusterHeader> PeekClusterHeader(std::span<const uint8_t> bytes);

}  // namespace dhnsw
