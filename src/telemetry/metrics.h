// Lock-free runtime metrics: instruments + named registry (paper-adjacent
// observability; see DESIGN.md "Telemetry subsystem").
//
// Design contract, in order of importance:
//   1. The *record* path (Counter::Add, Gauge::Set, Histogram::Record,
//      ShardedCounter::Add) is lock-free, wait-free on x86/ARM, and performs
//      ZERO heap allocations — cheap enough for the allocation-free query
//      hot path (tests/test_search_alloc.cpp proves this).
//   2. Registration (GetCounter etc.) is idempotent by name, takes a mutex,
//      and may allocate; components resolve their instruments ONCE (at
//      construction / first use), never per operation. Returned pointers are
//      stable for the registry's lifetime.
//   3. Snapshots are point-in-time reads of relaxed atomics: each value is
//      individually coherent; the set is not a consistent cut (standard for
//      runtime metrics).
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace dhnsw::telemetry {

/// Monotonically increasing 64-bit counter.
class Counter {
 public:
  void Add(uint64_t n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const noexcept { return value_.load(std::memory_order_relaxed); }
  void Reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time signed value (resident entries, registered bytes, ...).
class Gauge {
 public:
  void Set(int64_t v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) noexcept { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const noexcept { return value_.load(std::memory_order_relaxed); }
  void Reset() noexcept { Set(0); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Counter sharded across cache-line-padded slots, keyed by calling thread.
/// Use for counters bumped from concurrent compute threads (e.g. per-work-item
/// sub-search counts under ComputeOptions::search_threads > 1) where a single
/// hot atomic would bounce between cores.
class ShardedCounter {
 public:
  static constexpr size_t kShards = 8;

  void Add(uint64_t n = 1) noexcept {
    slots_[ShardOfThisThread()].value.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const noexcept {
    uint64_t total = 0;
    for (const Slot& s : slots_) total += s.value.load(std::memory_order_relaxed);
    return total;
  }
  void Reset() noexcept {
    for (Slot& s : slots_) s.value.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> value{0};
  };

  static size_t ShardOfThisThread() noexcept {
    // Thread-local slot assignment: cheap, stable per thread, no hashing of
    // thread::id on the hot path.
    static std::atomic<size_t> next{0};
    thread_local const size_t shard = next.fetch_add(1, std::memory_order_relaxed) % kShards;
    return shard;
  }

  std::array<Slot, kShards> slots_{};
};

/// Bounded log2-bucketed histogram: value v lands in bucket bit_width(v)
/// (bucket 0 holds v == 0, bucket i holds [2^(i-1), 2^i - 1]). 64 buckets
/// cover the full uint64 range, so Record never branches on range and the
/// footprint is fixed. Count/sum ride along for exact means.
class Histogram {
 public:
  static constexpr size_t kBuckets = 65;  ///< bucket 0 + one per bit width

  void Record(uint64_t v) noexcept {
    buckets_[static_cast<size_t>(std::bit_width(v))].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  uint64_t count() const noexcept { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  double mean() const noexcept {
    const uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
  }
  uint64_t bucket_count(size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Inclusive upper bound of bucket i (0, 1, 3, 7, ...; UINT64_MAX for the last).
  static uint64_t BucketUpperBound(size_t i) noexcept {
    if (i == 0) return 0;
    if (i >= kBuckets - 1) return UINT64_MAX;
    return (uint64_t{1} << i) - 1;
  }
  /// Upper bound of the bucket holding the p-th percentile (p in [0,100]).
  /// Returns 0 when empty — same contract as LatencyRecorder (count()==0).
  uint64_t ApproxPercentile(double p) const noexcept;

  void Reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

/// One sampled instrument in a point-in-time snapshot.
struct MetricSample {
  enum class Kind : uint8_t { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  int64_t value = 0;  ///< counter/sharded-counter/gauge value; histogram count
  // Histogram-only extras:
  uint64_t sum = 0;
  std::vector<std::pair<uint64_t, uint64_t>> buckets;  ///< (upper bound, count), zero buckets elided
};

struct MetricsSnapshot {
  std::vector<MetricSample> samples;  ///< sorted by name

  /// nullptr when `name` is absent.
  const MetricSample* Find(std::string_view name) const;
  /// Counter/gauge value by name; `fallback` when absent.
  int64_t Value(std::string_view name, int64_t fallback = 0) const;
};

/// Named instrument registry. Get* is idempotent: the first call under a name
/// creates the instrument, later calls return the same pointer (mixing kinds
/// under one name is a programming error and asserts in debug). All returned
/// pointers stay valid for the registry's lifetime.
class MetricRegistry {
 public:
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);
  ShardedCounter* GetShardedCounter(std::string_view name);

  MetricsSnapshot Snapshot() const;

  /// Prometheus text exposition (counters as `# TYPE c counter`, gauges as
  /// gauge, histograms as cumulative `_bucket{le="..."}` + `_sum` + `_count`).
  std::string PrometheusText() const;

  /// Zeroes every instrument (tests / between benchmark phases). Pointers
  /// stay valid.
  void ResetAll();

 private:
  enum class Kind : uint8_t { kCounter, kGauge, kHistogram, kSharded };
  struct Slot {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::unique_ptr<ShardedCounter> sharded;
  };

  Slot* FindOrCreate(std::string_view name, Kind kind);

  mutable std::mutex mutex_;  ///< guards the map; never held on the record path
  std::unordered_map<std::string, std::unique_ptr<Slot>> slots_;
};

/// Process-wide registry the built-in instrumentation reports into. Tests
/// that assert on counters should read deltas (other engines in the same
/// process share these instruments) or ResetAll() first.
MetricRegistry& DefaultRegistry();

}  // namespace dhnsw::telemetry
