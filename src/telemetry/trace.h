// Per-query trace spans (see DESIGN.md "Telemetry subsystem").
//
// A TraceBuffer is a bounded, pre-allocated event log owned by one compute
// instance (single-writer, like its QueuePair). Spans carry TWO time bases:
//   - sim_start_ns / sim_end_ns: the instance's SimClock — deterministic, so
//     two same-seed chaos runs produce byte-identical traces;
//   - wall_ns: real elapsed time of the span — attributes compute cost
//     (meta descent, decode, sub-HNSW search) exactly like the paper's
//     breakdown tables, but is run-to-run noise.
// The JSONL exporter can omit wall_ns (TraceExportOptions::include_wall =
// false) to produce the deterministic form CI byte-compares.
//
// Appending to a reserved buffer performs zero heap allocations; when the
// buffer is full events are counted in dropped() and discarded, never
// reallocated — the hot-path contract of test_search_alloc.cpp.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/sim_clock.h"
#include "common/status.h"
#include "common/timer.h"

namespace dhnsw::telemetry {

/// One closed span (or instantaneous event: sim_start_ns == sim_end_ns,
/// wall_ns == 0). `name` must point at a string literal / static storage.
struct TraceEvent {
  static constexpr uint32_t kNoQuery = UINT32_MAX;

  const char* name = "";
  uint32_t batch = 0;             ///< batch sequence number on this instance
  uint32_t query = kNoQuery;      ///< query index within the batch, if any
  uint64_t sim_start_ns = 0;      ///< SimClock at open (deterministic)
  uint64_t sim_end_ns = 0;        ///< SimClock at close (deterministic)
  uint64_t wall_ns = 0;           ///< real duration (non-deterministic)
  uint64_t a = 0;                 ///< span-specific payload (see DESIGN.md)
  uint64_t b = 0;                 ///< span-specific payload
};

class TraceBuffer {
 public:
  TraceBuffer() = default;
  explicit TraceBuffer(size_t capacity) { Reserve(capacity); }

  /// Sets the capacity (allocates now, so steady-state appends never do).
  /// Capacity 0 disables tracing entirely.
  void Reserve(size_t capacity) {
    capacity_ = capacity;
    events_.clear();
    events_.shrink_to_fit();
    events_.reserve(capacity);
    dropped_ = 0;
  }

  bool enabled() const noexcept { return capacity_ > 0; }
  size_t capacity() const noexcept { return capacity_; }
  size_t size() const noexcept { return events_.size(); }
  uint64_t dropped() const noexcept { return dropped_; }
  std::span<const TraceEvent> events() const noexcept { return events_; }

  /// Appends one event; drops (and counts) when disabled or full.
  void Append(const TraceEvent& event) noexcept {
    if (events_.size() >= capacity_) {
      if (enabled()) ++dropped_;
      return;
    }
    events_.push_back(event);
  }

  /// Forgets recorded events; keeps the reservation.
  void Clear() noexcept {
    events_.clear();
    dropped_ = 0;
  }

  /// Transport backend label stamped on every exported span ("tcp",
  /// "verbs"). Empty (the default, and what the simulator keeps) emits no
  /// label field at all, so simulator trace JSONL stays byte-identical to
  /// the pre-transport format.
  void set_transport_label(std::string label) { transport_label_ = std::move(label); }
  const std::string& transport_label() const noexcept { return transport_label_; }

 private:
  std::vector<TraceEvent> events_;
  size_t capacity_ = 0;
  uint64_t dropped_ = 0;
  std::string transport_label_;
};

/// Identifies where spans land and which clock stamps them. Carried from the
/// ClientRouter / engine through ComputeNode down to the QueuePair; copyable,
/// does not own anything. A default-constructed context is disabled and every
/// operation on it is a no-op.
struct TraceContext {
  TraceBuffer* buffer = nullptr;
  const SimClock* clock = nullptr;  ///< may be null (sim timestamps stay 0)
  uint32_t batch = 0;

  bool enabled() const noexcept { return buffer != nullptr && buffer->enabled(); }
  uint64_t now_ns() const noexcept { return clock == nullptr ? 0 : clock->now_ns(); }

  /// Records an instantaneous event.
  void Event(const char* name, uint32_t query = TraceEvent::kNoQuery, uint64_t a = 0,
             uint64_t b = 0) const noexcept {
    if (!enabled()) return;
    const uint64_t now = now_ns();
    buffer->Append(TraceEvent{name, batch, query, now, now, 0, a, b});
  }
};

/// RAII span: opens on construction, closes + appends on destruction.
/// Construct with a disabled context for a zero-cost no-op.
class TraceScope {
 public:
  TraceScope(const TraceContext& context, const char* name,
             uint32_t query = TraceEvent::kNoQuery) noexcept
      : context_(context), live_(context.enabled()) {
    if (!live_) return;
    event_.name = name;
    event_.batch = context_.batch;
    event_.query = query;
    event_.sim_start_ns = context_.now_ns();
    timer_.Restart();
  }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  /// Attaches span-specific payload (bytes moved, cluster id, counts...).
  void set_args(uint64_t a, uint64_t b = 0) noexcept {
    event_.a = a;
    event_.b = b;
  }

  /// Closes + appends the span now; destruction becomes a no-op. For a stage
  /// that must end before a sibling stage opens in the same block.
  void Close() noexcept {
    if (!live_) return;
    live_ = false;
    event_.sim_end_ns = context_.now_ns();
    event_.wall_ns = timer_.elapsed_ns();
    context_.buffer->Append(event_);
  }

  ~TraceScope() { Close(); }

 private:
  TraceContext context_;
  TraceEvent event_;
  WallTimer timer_;
  bool live_;
};

struct TraceExportOptions {
  /// Emit wall_ns fields. Set false for the deterministic form (byte-identical
  /// across same-seed chaos runs).
  bool include_wall = true;
};

/// One JSON object per event, fixed key order, integers only — so equal event
/// sequences serialize to byte-identical text.
std::string TraceToJsonl(const TraceBuffer& buffer, const TraceExportOptions& options = {});

/// TraceToJsonl straight to a file.
Status WriteTraceJsonl(const TraceBuffer& buffer, const std::string& path,
                       const TraceExportOptions& options = {});

}  // namespace dhnsw::telemetry
