#include "telemetry/trace.h"

#include <cinttypes>
#include <cstdio>

namespace dhnsw::telemetry {

std::string TraceToJsonl(const TraceBuffer& buffer, const TraceExportOptions& options) {
  std::string out;
  out.reserve(buffer.size() * 96);
  char line[320];
  for (const TraceEvent& e : buffer.events()) {
    int n;
    if (e.query == TraceEvent::kNoQuery) {
      n = std::snprintf(line, sizeof line,
                        "{\"name\":\"%s\",\"batch\":%u,\"sim_start_ns\":%" PRIu64
                        ",\"sim_end_ns\":%" PRIu64 ",\"a\":%" PRIu64 ",\"b\":%" PRIu64,
                        e.name, e.batch, e.sim_start_ns, e.sim_end_ns, e.a, e.b);
    } else {
      n = std::snprintf(line, sizeof line,
                        "{\"name\":\"%s\",\"batch\":%u,\"query\":%u,\"sim_start_ns\":%" PRIu64
                        ",\"sim_end_ns\":%" PRIu64 ",\"a\":%" PRIu64 ",\"b\":%" PRIu64,
                        e.name, e.batch, e.query, e.sim_start_ns, e.sim_end_ns, e.a, e.b);
    }
    if (n < 0 || n >= static_cast<int>(sizeof line)) continue;  // oversized name: skip
    out += line;
    if (options.include_wall) {
      std::snprintf(line, sizeof line, ",\"wall_ns\":%" PRIu64, e.wall_ns);
      out += line;
    }
    // Transport label ("tcp"/"verbs") only when set: simulator buffers leave
    // it empty, keeping their JSONL byte-identical to the label-free format.
    if (!buffer.transport_label().empty()) {
      out += ",\"transport\":\"";
      out += buffer.transport_label();
      out += "\"";
    }
    out += "}\n";
  }
  return out;
}

Status WriteTraceJsonl(const TraceBuffer& buffer, const std::string& path,
                       const TraceExportOptions& options) {
  const std::string text = TraceToJsonl(buffer, options);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot open trace file: " + path);
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const int close_rc = std::fclose(f);
  if (written != text.size() || close_rc != 0) {
    return Status::IoError("short write to trace file: " + path);
  }
  return Status::Ok();
}

}  // namespace dhnsw::telemetry
