#include "telemetry/metrics.h"

#include <algorithm>
#include <cassert>
#include <cinttypes>
#include <cstdio>

namespace dhnsw::telemetry {

uint64_t Histogram::ApproxPercentile(double p) const noexcept {
  const uint64_t n = count();
  if (n == 0) return 0;
  const double clamped = std::clamp(p, 0.0, 100.0);
  // Nearest-rank over the cumulative bucket counts.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(clamped / 100.0 * static_cast<double>(n) + 0.5));
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    seen += bucket_count(i);
    if (seen >= rank) return BucketUpperBound(i);
  }
  return BucketUpperBound(kBuckets - 1);
}

const MetricSample* MetricsSnapshot::Find(std::string_view name) const {
  for (const MetricSample& s : samples) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

int64_t MetricsSnapshot::Value(std::string_view name, int64_t fallback) const {
  const MetricSample* s = Find(name);
  return s == nullptr ? fallback : s->value;
}

MetricRegistry::Slot* MetricRegistry::FindOrCreate(std::string_view name, Kind kind) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = slots_.find(std::string(name));
  if (it != slots_.end()) {
    assert(it->second->kind == kind && "metric re-registered under a different kind");
    return it->second.get();
  }
  auto slot = std::make_unique<Slot>();
  slot->kind = kind;
  switch (kind) {
    case Kind::kCounter: slot->counter = std::make_unique<Counter>(); break;
    case Kind::kGauge: slot->gauge = std::make_unique<Gauge>(); break;
    case Kind::kHistogram: slot->histogram = std::make_unique<Histogram>(); break;
    case Kind::kSharded: slot->sharded = std::make_unique<ShardedCounter>(); break;
  }
  Slot* raw = slot.get();
  slots_.emplace(std::string(name), std::move(slot));
  return raw;
}

Counter* MetricRegistry::GetCounter(std::string_view name) {
  return FindOrCreate(name, Kind::kCounter)->counter.get();
}

Gauge* MetricRegistry::GetGauge(std::string_view name) {
  return FindOrCreate(name, Kind::kGauge)->gauge.get();
}

Histogram* MetricRegistry::GetHistogram(std::string_view name) {
  return FindOrCreate(name, Kind::kHistogram)->histogram.get();
}

ShardedCounter* MetricRegistry::GetShardedCounter(std::string_view name) {
  return FindOrCreate(name, Kind::kSharded)->sharded.get();
}

MetricsSnapshot MetricRegistry::Snapshot() const {
  MetricsSnapshot snap;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    snap.samples.reserve(slots_.size());
    for (const auto& [name, slot] : slots_) {
      MetricSample s;
      s.name = name;
      switch (slot->kind) {
        case Kind::kCounter:
          s.kind = MetricSample::Kind::kCounter;
          s.value = static_cast<int64_t>(slot->counter->value());
          break;
        case Kind::kSharded:
          s.kind = MetricSample::Kind::kCounter;
          s.value = static_cast<int64_t>(slot->sharded->value());
          break;
        case Kind::kGauge:
          s.kind = MetricSample::Kind::kGauge;
          s.value = slot->gauge->value();
          break;
        case Kind::kHistogram: {
          s.kind = MetricSample::Kind::kHistogram;
          const Histogram& h = *slot->histogram;
          s.value = static_cast<int64_t>(h.count());
          s.sum = h.sum();
          for (size_t i = 0; i < Histogram::kBuckets; ++i) {
            const uint64_t c = h.bucket_count(i);
            if (c != 0) s.buckets.emplace_back(Histogram::BucketUpperBound(i), c);
          }
          break;
        }
      }
      snap.samples.push_back(std::move(s));
    }
  }
  std::sort(snap.samples.begin(), snap.samples.end(),
            [](const MetricSample& a, const MetricSample& b) { return a.name < b.name; });
  return snap;
}

std::string MetricRegistry::PrometheusText() const {
  const MetricsSnapshot snap = Snapshot();
  std::string out;
  char line[192];
  for (const MetricSample& s : snap.samples) {
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        std::snprintf(line, sizeof line, "# TYPE %s counter\n%s %" PRId64 "\n",
                      s.name.c_str(), s.name.c_str(), s.value);
        out += line;
        break;
      case MetricSample::Kind::kGauge:
        std::snprintf(line, sizeof line, "# TYPE %s gauge\n%s %" PRId64 "\n",
                      s.name.c_str(), s.name.c_str(), s.value);
        out += line;
        break;
      case MetricSample::Kind::kHistogram: {
        std::snprintf(line, sizeof line, "# TYPE %s histogram\n", s.name.c_str());
        out += line;
        uint64_t cumulative = 0;
        for (const auto& [le, count] : s.buckets) {
          cumulative += count;
          if (le == UINT64_MAX) continue;  // folded into +Inf below
          std::snprintf(line, sizeof line, "%s_bucket{le=\"%" PRIu64 "\"} %" PRIu64 "\n",
                        s.name.c_str(), le, cumulative);
          out += line;
        }
        std::snprintf(line, sizeof line, "%s_bucket{le=\"+Inf\"} %" PRId64 "\n",
                      s.name.c_str(), s.value);
        out += line;
        std::snprintf(line, sizeof line, "%s_sum %" PRIu64 "\n%s_count %" PRId64 "\n",
                      s.name.c_str(), s.sum, s.name.c_str(), s.value);
        out += line;
        break;
      }
    }
  }
  return out;
}

void MetricRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, slot] : slots_) {
    switch (slot->kind) {
      case Kind::kCounter: slot->counter->Reset(); break;
      case Kind::kGauge: slot->gauge->Reset(); break;
      case Kind::kHistogram: slot->histogram->Reset(); break;
      case Kind::kSharded: slot->sharded->Reset(); break;
    }
  }
}

MetricRegistry& DefaultRegistry() {
  static MetricRegistry* registry = new MetricRegistry();  // leaked: outlives statics
  return *registry;
}

}  // namespace dhnsw::telemetry
