// KD-tree nearest-neighbor index — one of the two classical baselines the
// paper's §2.1 motivates HNSW against ("Traditional methods like KD-trees
// [24] and LSH [7] struggle with scalability and search accuracy in
// high-dimensional spaces").
//
// Build: recursive median split on the dimension of largest spread.
// Search: best-first branch-and-bound over leaves with an exact distance
// bound per subtree; `max_leaves` caps the number of leaves visited, trading
// accuracy for time (the classical "defeatist"/limited-backtracking search).
// With max_leaves >= the leaf count the search is exact.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/topk.h"
#include "index/distance.h"

namespace dhnsw {

struct KdTreeOptions {
  uint32_t leaf_size = 16;  ///< max vectors per leaf
};

class KdTreeIndex {
 public:
  explicit KdTreeIndex(uint32_t dim, KdTreeOptions options = {});

  uint32_t dim() const noexcept { return dim_; }
  size_t size() const noexcept { return count_; }
  size_t num_leaves() const noexcept { return num_leaves_; }

  /// Builds the tree over row-major `vectors` (replaces previous contents).
  void Build(std::span<const float> vectors);

  /// Top-k search visiting at most `max_leaves` leaves (>= 1).
  /// Results sorted ascending by L2^2 distance.
  std::vector<Scored> Search(std::span<const float> query, size_t k,
                             size_t max_leaves) const;

  /// Exact search (visits as many leaves as the bound requires).
  std::vector<Scored> SearchExact(std::span<const float> query, size_t k) const {
    return Search(query, k, size() + 1);
  }

 private:
  struct Node {
    // Internal: split_dim >= 0; leaf: split_dim == -1 and [begin, end) into ids_.
    int32_t split_dim = -1;
    float split_value = 0.0f;
    uint32_t left = 0;    ///< child node indices (internal only)
    uint32_t right = 0;
    uint32_t begin = 0;   ///< leaf row range
    uint32_t end = 0;
  };

  uint32_t BuildNode(uint32_t begin, uint32_t end);
  std::span<const float> Vector(uint32_t id) const {
    return {data_.data() + static_cast<size_t>(id) * dim_, dim_};
  }

  uint32_t dim_;
  KdTreeOptions options_;
  size_t count_ = 0;
  size_t num_leaves_ = 0;
  std::vector<float> data_;      ///< row-major copy
  std::vector<uint32_t> ids_;    ///< permutation grouping leaf members
  std::vector<Node> nodes_;      ///< node 0 is the root (when count_ > 0)
};

}  // namespace dhnsw
