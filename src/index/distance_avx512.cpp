// AVX-512F kernel tier, compiled with -mavx512f (see src/index/CMakeLists.txt).
// Only reachable after cpuid reports avx512f. Remainder elements are handled
// with a masked load instead of a scalar tail — one code path for every dim.
//
// Accumulation: 4 independent 16-lane accumulators reduced pairwise, plus a
// masked-tail accumulator; balanced partial sums keep parity with the scalar
// reference within the 4-ULP budget.
#if defined(DHNSW_HAVE_AVX512)

// GCC's AVX-512 cast/extract intrinsics read a self-initialized __m256d and
// falsely trip -Wuninitialized under -O (GCC PR105593); silence for this TU.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

#include <immintrin.h>

#include "index/distance_kernels.h"

namespace dhnsw::detail {
namespace {

/// Balanced shuffle/add tree (no sequential chain), written out by hand:
/// GCC 12's _mm512_reduce_add_ps macro trips -Wuninitialized under -Werror.
inline float ReduceAdd16(__m512 v) noexcept {
  const __m256 lo = _mm512_castps512_ps256(v);
  const __m256 hi = _mm256_castpd_ps(
      _mm512_extractf64x4_pd(_mm512_castps_pd(v), 1));
  const __m256 s8 = _mm256_add_ps(lo, hi);            // lane i = v[i] + v[i+8]
  const __m128 s4 = _mm_add_ps(_mm256_castps256_ps128(s8),
                               _mm256_extractf128_ps(s8, 1));
  const __m128 s2 = _mm_add_ps(s4, _mm_movehl_ps(s4, s4));
  const __m128 s1 = _mm_add_ss(s2, _mm_shuffle_ps(s2, s2, 0x55));
  return _mm_cvtss_f32(s1);
}

float L2SqAvx512(const float* a, const float* b, size_t n) noexcept {
  __m512 acc0 = _mm512_setzero_ps(), acc1 = _mm512_setzero_ps();
  __m512 acc2 = _mm512_setzero_ps(), acc3 = _mm512_setzero_ps();
  size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m512 d0 = _mm512_sub_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i));
    const __m512 d1 = _mm512_sub_ps(_mm512_loadu_ps(a + i + 16), _mm512_loadu_ps(b + i + 16));
    const __m512 d2 = _mm512_sub_ps(_mm512_loadu_ps(a + i + 32), _mm512_loadu_ps(b + i + 32));
    const __m512 d3 = _mm512_sub_ps(_mm512_loadu_ps(a + i + 48), _mm512_loadu_ps(b + i + 48));
    acc0 = _mm512_fmadd_ps(d0, d0, acc0);
    acc1 = _mm512_fmadd_ps(d1, d1, acc1);
    acc2 = _mm512_fmadd_ps(d2, d2, acc2);
    acc3 = _mm512_fmadd_ps(d3, d3, acc3);
  }
  for (; i + 16 <= n; i += 16) {
    const __m512 d = _mm512_sub_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i));
    acc0 = _mm512_fmadd_ps(d, d, acc0);
  }
  if (i < n) {
    const __mmask16 m = static_cast<__mmask16>((1u << (n - i)) - 1u);
    const __m512 d = _mm512_sub_ps(_mm512_maskz_loadu_ps(m, a + i),
                                   _mm512_maskz_loadu_ps(m, b + i));
    acc1 = _mm512_fmadd_ps(d, d, acc1);
  }
  return ReduceAdd16(_mm512_add_ps(_mm512_add_ps(acc0, acc1),
                                   _mm512_add_ps(acc2, acc3)));
}

float IpAvx512(const float* a, const float* b, size_t n) noexcept {
  __m512 acc0 = _mm512_setzero_ps(), acc1 = _mm512_setzero_ps();
  __m512 acc2 = _mm512_setzero_ps(), acc3 = _mm512_setzero_ps();
  size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i), acc0);
    acc1 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i + 16), _mm512_loadu_ps(b + i + 16), acc1);
    acc2 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i + 32), _mm512_loadu_ps(b + i + 32), acc2);
    acc3 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i + 48), _mm512_loadu_ps(b + i + 48), acc3);
  }
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i), acc0);
  }
  if (i < n) {
    const __mmask16 m = static_cast<__mmask16>((1u << (n - i)) - 1u);
    acc1 = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(m, a + i),
                           _mm512_maskz_loadu_ps(m, b + i), acc1);
  }
  return -ReduceAdd16(_mm512_add_ps(_mm512_add_ps(acc0, acc1),
                                    _mm512_add_ps(acc2, acc3)));
}

float CosineAvx512(const float* a, const float* b, size_t n) noexcept {
  __m512 dot0 = _mm512_setzero_ps(), dot1 = _mm512_setzero_ps();
  __m512 na0 = _mm512_setzero_ps(), na1 = _mm512_setzero_ps();
  __m512 nb0 = _mm512_setzero_ps(), nb1 = _mm512_setzero_ps();
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m512 va0 = _mm512_loadu_ps(a + i), vb0 = _mm512_loadu_ps(b + i);
    const __m512 va1 = _mm512_loadu_ps(a + i + 16), vb1 = _mm512_loadu_ps(b + i + 16);
    dot0 = _mm512_fmadd_ps(va0, vb0, dot0);
    na0 = _mm512_fmadd_ps(va0, va0, na0);
    nb0 = _mm512_fmadd_ps(vb0, vb0, nb0);
    dot1 = _mm512_fmadd_ps(va1, vb1, dot1);
    na1 = _mm512_fmadd_ps(va1, va1, na1);
    nb1 = _mm512_fmadd_ps(vb1, vb1, nb1);
  }
  for (; i + 16 <= n; i += 16) {
    const __m512 va = _mm512_loadu_ps(a + i), vb = _mm512_loadu_ps(b + i);
    dot0 = _mm512_fmadd_ps(va, vb, dot0);
    na0 = _mm512_fmadd_ps(va, va, na0);
    nb0 = _mm512_fmadd_ps(vb, vb, nb0);
  }
  if (i < n) {
    const __mmask16 m = static_cast<__mmask16>((1u << (n - i)) - 1u);
    const __m512 va = _mm512_maskz_loadu_ps(m, a + i);
    const __m512 vb = _mm512_maskz_loadu_ps(m, b + i);
    dot1 = _mm512_fmadd_ps(va, vb, dot1);
    na1 = _mm512_fmadd_ps(va, va, na1);
    nb1 = _mm512_fmadd_ps(vb, vb, nb1);
  }
  return FinishCosine(ReduceAdd16(_mm512_add_ps(dot0, dot1)),
                      ReduceAdd16(_mm512_add_ps(na0, na1)),
                      ReduceAdd16(_mm512_add_ps(nb0, nb1)));
}

}  // namespace

const KernelTable& Avx512Kernels() noexcept {
  static constexpr KernelTable table = {
      SimdTier::kAvx512,
      &L2SqAvx512,
      &IpAvx512,
      &CosineAvx512,
      &GatherImpl<&L2SqAvx512>,
      &GatherImpl<&IpAvx512>,
      &GatherImpl<&CosineAvx512>,
      &RowsImpl<&L2SqAvx512>,
      &RowsImpl<&IpAvx512>,
      &RowsImpl<&CosineAvx512>,
      &AdcAvx2Body,
      &AdcGatherImpl<&AdcAvx2Body>,
      &AdcRowsImpl<&AdcAvx2Body>,
  };
  return table;
}

}  // namespace dhnsw::detail

#endif  // DHNSW_HAVE_AVX512
