#include "index/pq.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "common/binary_io.h"
#include "common/rng.h"

namespace dhnsw {
namespace {

/// Partial Fisher-Yates: `count` distinct indices from [0, n), sorted.
std::vector<uint32_t> SampleRows(size_t n, uint32_t count, uint64_t seed) {
  std::vector<uint32_t> all(n);
  for (size_t i = 0; i < n; ++i) all[i] = static_cast<uint32_t>(i);
  Xoshiro256 rng(seed);
  for (uint32_t i = 0; i < count; ++i) {
    const uint64_t j = i + rng.NextBounded(n - i);
    std::swap(all[i], all[j]);
  }
  all.resize(count);
  std::sort(all.begin(), all.end());
  return all;
}

/// Lloyd's k-means over one subspace (rows: n x dsub contiguous), writing
/// kKs centroid rows into `centroids`. Deterministic: seeded init, strict-<
/// argmin (first minimum wins), empty clusters keep their previous centroid.
void KmeansSubspace(std::span<const float> rows, size_t n, uint32_t dsub,
                    uint32_t iterations, uint64_t seed, float* centroids) {
  constexpr uint32_t ks = ProductQuantizer::kKs;
  if (n >= ks) {
    const std::vector<uint32_t> init = SampleRows(n, ks, seed);
    for (uint32_t c = 0; c < ks; ++c) {
      std::copy_n(rows.data() + static_cast<size_t>(init[c]) * dsub, dsub,
                  centroids + static_cast<size_t>(c) * dsub);
    }
  } else {
    // Fewer samples than centroid slots: seed cyclically; duplicates are
    // harmless (encode's strict-< argmin always picks the lowest index).
    for (uint32_t c = 0; c < ks; ++c) {
      std::copy_n(rows.data() + (c % n) * dsub, dsub,
                  centroids + static_cast<size_t>(c) * dsub);
    }
  }

  const RowsKernel l2_rows = ActiveKernels().l2_rows;
  std::vector<float> dists(ks);
  std::vector<uint32_t> assign(n, 0);
  std::vector<double> sums(static_cast<size_t>(ks) * dsub);
  std::vector<uint32_t> counts(ks);
  for (uint32_t iter = 0; iter < iterations; ++iter) {
    for (size_t i = 0; i < n; ++i) {
      l2_rows(rows.data() + i * dsub, centroids, dsub, ks, dists.data());
      float best = std::numeric_limits<float>::max();
      uint32_t best_c = 0;
      for (uint32_t c = 0; c < ks; ++c) {
        if (dists[c] < best) {
          best = dists[c];
          best_c = c;
        }
      }
      assign[i] = best_c;
    }
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0u);
    for (size_t i = 0; i < n; ++i) {
      double* sum = sums.data() + static_cast<size_t>(assign[i]) * dsub;
      const float* row = rows.data() + i * dsub;
      for (uint32_t d = 0; d < dsub; ++d) sum[d] += row[d];
      ++counts[assign[i]];
    }
    for (uint32_t c = 0; c < ks; ++c) {
      if (counts[c] == 0) continue;
      float* centroid = centroids + static_cast<size_t>(c) * dsub;
      const double* sum = sums.data() + static_cast<size_t>(c) * dsub;
      for (uint32_t d = 0; d < dsub; ++d) {
        centroid[d] = static_cast<float>(sum[d] / counts[c]);
      }
    }
  }
}

}  // namespace

Result<ProductQuantizer> ProductQuantizer::Train(uint32_t dim, uint32_t m,
                                                 std::span<const float> residuals,
                                                 uint32_t iterations,
                                                 uint64_t seed) {
  if (m == 0 || dim == 0 || dim % m != 0) {
    return Status::InvalidArgument("pq: m must be > 0 and divide dim");
  }
  if (residuals.empty() || residuals.size() % dim != 0) {
    return Status::InvalidArgument("pq: residual matrix empty or not n x dim");
  }
  const size_t n = residuals.size() / dim;
  const uint32_t dsub = dim / m;

  std::vector<float> centroids(static_cast<size_t>(m) * kKs * dsub);
  std::vector<float> sub(n * dsub);
  SplitMix64 sub_seeds(seed);
  for (uint32_t j = 0; j < m; ++j) {
    for (size_t i = 0; i < n; ++i) {
      std::copy_n(residuals.data() + i * dim + static_cast<size_t>(j) * dsub,
                  dsub, sub.data() + i * dsub);
    }
    KmeansSubspace(sub, n, dsub, iterations, sub_seeds.Next(),
                   centroids.data() + static_cast<size_t>(j) * kKs * dsub);
  }
  return ProductQuantizer(dim, m, std::move(centroids));
}

void ProductQuantizer::Encode(std::span<const float> residual,
                              std::span<uint8_t> code) const {
  assert(residual.size() == dim_ && code.size() == m_);
  const uint32_t ds = dsub();
  const RowsKernel l2_rows = ActiveKernels().l2_rows;
  float dists[kKs];
  for (uint32_t j = 0; j < m_; ++j) {
    l2_rows(residual.data() + static_cast<size_t>(j) * ds, codewords(j).data(),
            ds, kKs, dists);
    float best = std::numeric_limits<float>::max();
    uint32_t best_c = 0;
    for (uint32_t c = 0; c < kKs; ++c) {
      if (dists[c] < best) {
        best = dists[c];
        best_c = c;
      }
    }
    code[j] = static_cast<uint8_t>(best_c);
  }
}

void ProductQuantizer::Decode(std::span<const uint8_t> code,
                              std::span<float> residual) const {
  assert(code.size() == m_ && residual.size() == dim_);
  const uint32_t ds = dsub();
  for (uint32_t j = 0; j < m_; ++j) {
    const float* cw = codewords(j).data() + static_cast<size_t>(code[j]) * ds;
    std::copy_n(cw, ds, residual.data() + static_cast<size_t>(j) * ds);
  }
}

float ProductQuantizer::BuildAdcLut(Metric metric, std::span<const float> query,
                                    std::span<const float> centroid, float* lut,
                                    float* scratch) const {
  assert(query.size() == dim_ && centroid.size() == dim_);
  assert(metric != Metric::kCosine && "cosine is not supported over PQ codes");
  const uint32_t ds = dsub();
  const KernelTable& kt = ActiveKernels();
  if (metric == Metric::kL2) {
    // lut[j][c] = ||(q - centroid)_j - codeword_jc||^2, so the ADC sum is the
    // exact squared distance to the reconstructed vector.
    for (uint32_t d = 0; d < dim_; ++d) scratch[d] = query[d] - centroid[d];
    for (uint32_t j = 0; j < m_; ++j) {
      kt.l2_rows(scratch + static_cast<size_t>(j) * ds, codewords(j).data(), ds,
                 kKs, lut + static_cast<size_t>(j) * kKs);
    }
    return 0.0f;
  }
  // Inner product: -(q . x) = -(q . centroid) - sum_j q_j . codeword_jc.
  // The ip kernels already negate, so LUT entries are the per-sub terms and
  // the centroid term is the returned bias.
  for (uint32_t j = 0; j < m_; ++j) {
    kt.ip_rows(query.data() + static_cast<size_t>(j) * ds, codewords(j).data(),
               ds, kKs, lut + static_cast<size_t>(j) * kKs);
  }
  return kt.ip(query.data(), centroid.data(), dim_);
}

std::vector<uint8_t> ProductQuantizer::ToBytes() const {
  std::vector<uint8_t> out;
  out.reserve(8 + centroids_.size() * 4);
  BinaryWriter w(&out);
  w.PutU16(static_cast<uint16_t>(m_));
  w.PutU16(static_cast<uint16_t>(kKs));
  w.PutU32(dim_);
  w.PutF32Array(centroids_);
  return out;
}

Result<ProductQuantizer> ProductQuantizer::FromBytes(std::span<const uint8_t> bytes) {
  BinaryReader r(bytes);
  uint16_t m = 0, ks = 0;
  uint32_t dim = 0;
  DHNSW_RETURN_IF_ERROR(r.GetU16(&m));
  DHNSW_RETURN_IF_ERROR(r.GetU16(&ks));
  DHNSW_RETURN_IF_ERROR(r.GetU32(&dim));
  if (m == 0 || ks != kKs || dim == 0 || dim % m != 0) {
    return Status::Corruption("pq codebook: implausible geometry");
  }
  const size_t floats = static_cast<size_t>(m) * kKs * (dim / m);
  if (r.remaining() != floats * 4) {
    return Status::Corruption("pq codebook: centroid table size mismatch");
  }
  std::vector<float> centroids(floats);
  DHNSW_RETURN_IF_ERROR(r.GetF32Array(centroids));
  return ProductQuantizer(dim, m, std::move(centroids));
}

namespace {

/// Epoch-stamped visited set + reusable heap storage for the ADC graph
/// search; thread_local so pool workers never share or allocate per query.
struct AdcScratch {
  std::vector<uint32_t> visited;
  uint32_t epoch = 0;
  std::vector<float> dists;
  std::vector<Scored> frontier;  ///< min-heap storage (std::greater order)

  void Arm(uint32_t count) {
    if (visited.size() < count) visited.assign(count, 0);
    if (++epoch == 0) {  // wrap: restamp
      std::fill(visited.begin(), visited.end(), 0u);
      epoch = 1;
    }
    frontier.clear();
  }
  bool Visit(uint32_t id) {
    if (visited[id] == epoch) return false;
    visited[id] = epoch;
    return true;
  }
};

struct MinOrder {
  bool operator()(const Scored& a, const Scored& b) const noexcept {
    return b < a;  // reverse the max-heap ordering
  }
};

}  // namespace

void SearchPqCluster(const PqCluster& cluster, const float* lut, float bias,
                     uint32_t k, uint32_t ef, bool flat_scan,
                     std::vector<Scored>* out) {
  out->clear();
  if (cluster.count == 0 || k == 0) return;
  const KernelTable& kt = ActiveKernels();
  const size_t m = cluster.m;
  const uint8_t* codes = cluster.codes.data();

  if (flat_scan) {
    constexpr size_t kChunk = 256;
    thread_local std::vector<float> buf;
    thread_local TopKHeap heap(0);
    buf.resize(std::min<size_t>(kChunk, cluster.count));
    heap.Reset(k);
    for (size_t start = 0; start < cluster.count; start += kChunk) {
      const size_t n = std::min<size_t>(kChunk, cluster.count - start);
      kt.adc_rows(lut, codes + start * m, m, n, buf.data());
      for (size_t i = 0; i < n; ++i) {
        heap.Push(buf[i] + bias, static_cast<uint32_t>(start + i));
      }
    }
    const std::span<const Scored> sorted = heap.SortAscending();
    out->assign(sorted.begin(), sorted.end());
    return;
  }

  thread_local AdcScratch scratch;
  thread_local TopKHeap results(0);
  scratch.Arm(cluster.count);
  const uint32_t ef_search = std::max(ef, k);
  results.Reset(ef_search);

  const AdcKernel adc = kt.adc;
  const AdcGatherKernel adc_gather = kt.adc_gather;

  // Greedy descent through the upper layers.
  uint32_t cur = cluster.entry_point < cluster.count ? cluster.entry_point : 0;
  float cur_d = adc(lut, codes + static_cast<size_t>(cur) * m, m);
  for (uint32_t layer = cluster.max_level; layer > 0; --layer) {
    bool improved = true;
    while (improved) {
      improved = false;
      if (layer > cluster.levels[cur]) break;
      const std::span<const uint32_t> nbs = cluster.neighbors(cur, layer);
      if (nbs.empty()) break;
      if (scratch.dists.size() < nbs.size()) scratch.dists.resize(nbs.size());
      adc_gather(lut, codes, m, nbs.data(), nbs.size(), scratch.dists.data());
      for (size_t i = 0; i < nbs.size(); ++i) {
        if (scratch.dists[i] < cur_d) {
          cur_d = scratch.dists[i];
          cur = nbs[i];
          improved = true;
        }
      }
    }
  }

  // ef-bounded best-first expansion on layer 0.
  std::vector<Scored>& frontier = scratch.frontier;
  scratch.Visit(cur);
  frontier.push_back({cur_d, cur});
  results.Push(cur_d, cur);
  thread_local std::vector<uint32_t> fresh;
  while (!frontier.empty()) {
    std::pop_heap(frontier.begin(), frontier.end(), MinOrder{});
    const Scored best = frontier.back();
    frontier.pop_back();
    if (results.full() && best.distance > results.worst()) break;

    const std::span<const uint32_t> nbs = cluster.neighbors(best.id, 0);
    fresh.clear();
    for (uint32_t nb : nbs) {
      if (scratch.Visit(nb)) fresh.push_back(nb);
    }
    if (fresh.empty()) continue;
    if (scratch.dists.size() < fresh.size()) scratch.dists.resize(fresh.size());
    adc_gather(lut, codes, m, fresh.data(), fresh.size(), scratch.dists.data());
    for (size_t i = 0; i < fresh.size(); ++i) {
      const float d = scratch.dists[i];
      if (!results.full() || d < results.worst()) {
        results.Push(d, fresh[i]);
        frontier.push_back({d, fresh[i]});
        std::push_heap(frontier.begin(), frontier.end(), MinOrder{});
      }
    }
  }

  const std::span<const Scored> sorted = results.SortAscending();
  const size_t take = std::min<size_t>(k, sorted.size());
  out->reserve(take);
  for (size_t i = 0; i < take; ++i) {
    out->push_back({sorted[i].distance + bias, sorted[i].id});
  }
}

}  // namespace dhnsw
