// Reusable per-search scratch state for the HNSW hot path: an epoch-stamped
// visited list (O(1) reset instead of an O(n) allocation+memset per query)
// and the candidate/result containers, pooled per index so a steady-state
// Search performs no heap allocations at all.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/topk.h"

namespace dhnsw {

/// Visited-set with epoch stamps: Reset bumps the epoch instead of clearing
/// the array; the array is only zeroed when the 16-bit epoch wraps (every
/// 65535 resets) or the index grew past the array's size.
class VisitedList {
 public:
  void Reset(size_t n) {
    if (marks_.size() < n) {
      marks_.assign(n, 0);
      epoch_ = 1;
      return;
    }
    if (++epoch_ == 0) {
      std::fill(marks_.begin(), marks_.end(), uint16_t{0});
      epoch_ = 1;
    }
  }

  /// Marks `id` visited; returns whether it already was.
  bool TestAndSet(uint32_t id) noexcept {
    if (marks_[id] == epoch_) return true;
    marks_[id] = epoch_;
    return false;
  }

  bool Test(uint32_t id) const noexcept { return marks_[id] == epoch_; }

 private:
  std::vector<uint16_t> marks_;
  uint16_t epoch_ = 0;
};

/// Everything one in-flight search (or insert) needs. Containers keep their
/// capacity across uses, so after warm-up nothing here allocates.
struct SearchScratch {
  VisitedList visited;
  std::vector<Scored> frontier;  ///< min-heap (std::push_heap w/ reversed cmp)
  TopKHeap best{0};              ///< ef-bounded result heap
  std::vector<uint32_t> ids;     ///< unvisited-neighbor staging for batch scoring
  std::vector<float> dists;      ///< batch-kernel output
  // Construction-only working sets (insert path; not part of the
  // allocation-free Search contract).
  std::vector<Scored> candidates;    ///< per-layer ef_construction results
  std::vector<Scored> selected;      ///< SelectNeighbors output for the new node
  std::vector<Scored> shrink_scored; ///< back-link shrink candidate scores
  std::vector<Scored> shrink_out;    ///< back-link shrink re-selection
  std::vector<Scored> pruned;        ///< Algorithm 4 keepPrunedConnections pool
  std::vector<uint32_t> sel_ids;     ///< contiguous ids of selected (batch diversity)
  std::vector<uint32_t> nb_snapshot; ///< lock-held neighbor-list copy (parallel insert)

  /// Guarantees the batch-staging buffers can hold `n` entries.
  void EnsureBatchCapacity(size_t n) {
    if (ids.size() < n) ids.resize(n);
    if (dists.size() < n) dists.resize(n);
  }
};

/// Thread-safe freelist of SearchScratch. HnswIndex keeps one pool; each
/// Search leases a scratch (creating one only when all are in flight, i.e.
/// the pool grows to the peak concurrency and then stops allocating).
///
/// Copy/move intentionally transfer nothing: the pool is a cache, and a
/// copied or moved index simply warms its own.
class SearchScratchPool {
 public:
  SearchScratchPool() = default;
  SearchScratchPool(const SearchScratchPool&) noexcept {}
  SearchScratchPool& operator=(const SearchScratchPool&) noexcept { return *this; }
  SearchScratchPool(SearchScratchPool&&) noexcept {}
  SearchScratchPool& operator=(SearchScratchPool&&) noexcept { return *this; }

  std::unique_ptr<SearchScratch> Acquire() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!free_.empty()) {
        std::unique_ptr<SearchScratch> s = std::move(free_.back());
        free_.pop_back();
        return s;
      }
    }
    return std::make_unique<SearchScratch>();
  }

  void Release(std::unique_ptr<SearchScratch> s) {
    std::lock_guard<std::mutex> lock(mu_);
    free_.push_back(std::move(s));
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<SearchScratch>> free_;
};

/// RAII lease of a SearchScratch from a pool.
class ScratchLease {
 public:
  explicit ScratchLease(SearchScratchPool& pool)
      : pool_(&pool), scratch_(pool_->Acquire()) {}
  ~ScratchLease() { pool_->Release(std::move(scratch_)); }
  ScratchLease(const ScratchLease&) = delete;
  ScratchLease& operator=(const ScratchLease&) = delete;

  SearchScratch& operator*() noexcept { return *scratch_; }
  SearchScratch* operator->() noexcept { return scratch_.get(); }

 private:
  SearchScratchPool* pool_;
  std::unique_ptr<SearchScratch> scratch_;
};

}  // namespace dhnsw
