#include "index/hnsw.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>
#include <mutex>

#include "common/thread_pool.h"

namespace dhnsw {

namespace {
/// Reversed comparator turning std::push_heap/pop_heap into a min-heap on
/// Scored (same ordering std::priority_queue<_, _, decltype(b < a)> used).
struct MinCmp {
  bool operator()(const Scored& a, const Scored& b) const noexcept { return b < a; }
};
}  // namespace

/// One mutex per node, guarding that node's neighbor lists (all layers).
/// Allocated per batch — the table must cover the final node count before
/// the parallel phase starts, and per-node (not striped) locking is what
/// keeps contention proportional to true neighborhood overlap.
struct HnswNodeLocks {
  explicit HnswNodeLocks(size_t n) : locks(std::make_unique<std::mutex[]>(n)) {}
  std::mutex& Of(uint32_t id) { return locks[id]; }
  std::unique_ptr<std::mutex[]> locks;
};

HnswIndex::HnswIndex(uint32_t dim, HnswOptions options)
    : dim_(dim),
      options_(options),
      pair_(ActiveKernels().Pair(options.metric)),
      gather_(ActiveKernels().Gather(options.metric)),
      level_lambda_(1.0 / std::log(std::max<uint32_t>(2, options.M))),
      rng_(options.seed) {
  assert(dim > 0);
  if (options_.M < 2) options_.M = 2;
}

uint32_t HnswIndex::DrawLevel() {
  double u;
  do {
    u = rng_.NextDouble();
  } while (u <= 0.0);
  uint32_t level = static_cast<uint32_t>(-std::log(u) * level_lambda_);
  if (options_.max_level.has_value()) {
    level = std::min(level, *options_.max_level);
  }
  return level;
}

uint32_t HnswIndex::Add(std::span<const float> v) {
  return AddWithLevel(v, DrawLevel());
}

uint32_t HnswIndex::AddWithLevel(std::span<const float> v, uint32_t level) {
  assert(v.size() == dim_);
  if (options_.max_level.has_value()) level = std::min(level, *options_.max_level);

  const uint32_t id = static_cast<uint32_t>(levels_.size());
  vectors_.insert(vectors_.end(), v.begin(), v.end());
  levels_.push_back(level);
  links_.emplace_back(level + 1);

  if (id == 0) {
    entry_point_ = 0;
    max_level_ = static_cast<int32_t>(level);
    return id;
  }

  ScratchLease lease(scratch_pool_);
  SearchScratch& s = *lease;
  s.EnsureBatchCapacity(2 * options_.M + 2);

  const float* base = RowPtr(id);
  uint32_t current = entry_point_;

  // Phase 1: greedy descent through layers above the new node's top level.
  for (int32_t layer = max_level_; layer > static_cast<int32_t>(level); --layer) {
    current = GreedyClosest(base, current, static_cast<uint32_t>(layer), s);
  }

  // Phase 2: on each layer the node participates in, search with
  // ef_construction, pick diverse neighbors, and link bidirectionally.
  const int32_t top = std::min<int32_t>(static_cast<int32_t>(level), max_level_);
  for (int32_t layer = top; layer >= 0; --layer) {
    const uint32_t ulayer = static_cast<uint32_t>(layer);
    SearchLayerInto(base, current, options_.ef_construction, ulayer, s);
    const std::span<const Scored> found = s.best.SortAscending();
    s.candidates.assign(found.begin(), found.end());
    if (!s.candidates.empty()) {
      // Best candidate seeds the next (lower) layer's search.
      current = s.candidates.front().id;
    }
    const uint32_t m = options_.M;  // select M on every layer (cap applies on 0 too)
    SelectNeighbors(id, base, s.candidates, m, ulayer, s, &s.selected);

    std::vector<uint32_t>& own = links_[id][ulayer];
    own.clear();
    own.reserve(s.selected.size());
    for (const Scored& sc : s.selected) own.push_back(sc.id);

    // Back-links, shrinking the neighbor's list if it overflows. The
    // overflowed list is re-scored with ONE batched call over the
    // pre-existing neighbors; the distance to the just-linked node is reused
    // from selection (all kernels are symmetric), not recomputed.
    for (const Scored& sel : s.selected) {
      const uint32_t nb = sel.id;
      std::vector<uint32_t>& nb_links = links_[nb][ulayer];
      nb_links.push_back(id);
      const uint32_t cap = MaxDegree(ulayer);
      if (nb_links.size() > cap) {
        const float* nb_vec = RowPtr(nb);
        const size_t old_n = nb_links.size() - 1;
        s.EnsureBatchCapacity(old_n);
        gather_(nb_vec, vectors_.data(), dim_, nb_links.data(), old_n, s.dists.data());
        s.shrink_scored.clear();
        for (size_t j = 0; j < old_n; ++j) {
          s.shrink_scored.push_back({s.dists[j], nb_links[j]});
        }
        s.shrink_scored.push_back({sel.distance, id});  // cached, not recomputed
        SelectNeighbors(nb, nb_vec, s.shrink_scored, cap, ulayer, s, &s.shrink_out);
        nb_links.clear();
        for (const Scored& sc : s.shrink_out) nb_links.push_back(sc.id);
      }
    }
  }

  if (static_cast<int32_t>(level) > max_level_) {
    max_level_ = static_cast<int32_t>(level);
    entry_point_ = id;
  }
  return id;
}

uint32_t HnswIndex::AddBatchParallel(std::span<const float> rows, size_t count,
                                     ThreadPool* pool) {
  assert(rows.size() == static_cast<size_t>(count) * dim_);
  const uint32_t first_id = static_cast<uint32_t>(levels_.size());
  const bool sequential = pool == nullptr || pool->num_threads() < 2 ||
                          count < kParallelBatchMin || options_.extend_candidates;
  if (sequential) {
    // Same RNG consumption order as the parallel path's pre-draw, so the
    // level sequence is identical either way.
    for (size_t i = 0; i < count; ++i) Add(rows.subspan(i * dim_, dim_));
    return first_id;
  }

  // Pre-draw all levels in row order — bit-identical to sequential Add.
  std::vector<uint32_t> batch_levels(count);
  for (size_t i = 0; i < count; ++i) batch_levels[i] = DrawLevel();

  // Publish vectors, levels, and empty adjacency rows for the whole batch
  // before any linking: the parallel phase must never grow these outer
  // containers (inner neighbor lists are guarded by their node's lock).
  const size_t total = first_id + count;
  vectors_.insert(vectors_.end(), rows.begin(), rows.end());
  levels_.reserve(total);
  links_.reserve(total);
  for (size_t i = 0; i < count; ++i) {
    levels_.push_back(batch_levels[i]);
    links_.emplace_back(batch_levels[i] + 1);
  }

  size_t start = 0;
  if (first_id == 0) {
    // Seed node: the empty graph's entry point, placed before any
    // concurrency so every worker observes a valid entry.
    entry_point_ = 0;
    max_level_ = static_cast<int32_t>(batch_levels[0]);
    start = 1;
  }
  if (start >= count) return first_id;

  HnswNodeLocks locks(total);
  std::mutex top_mutex;
  pool->ParallelFor(count - start, [&](size_t t) {
    const uint32_t id = first_id + static_cast<uint32_t>(start + t);
    ScratchLease lease(scratch_pool_);
    SearchScratch& s = *lease;
    s.EnsureBatchCapacity(2 * options_.M + 2);
    InsertLinkedSync(id, levels_[id], s, locks, top_mutex);
  });
  return first_id;
}

void HnswIndex::SnapshotNeighborsSync(uint32_t id, uint32_t layer, HnswNodeLocks& locks,
                                      std::vector<uint32_t>* out) const {
  std::lock_guard<std::mutex> lock(locks.Of(id));
  const std::vector<uint32_t>& nbs = links_[id][layer];
  out->assign(nbs.begin(), nbs.end());
}

uint32_t HnswIndex::GreedyClosestSync(const float* query, uint32_t entry, uint32_t layer,
                                      SearchScratch& s, HnswNodeLocks& locks) const {
  uint32_t current = entry;
  float current_dist = pair_(query, RowPtr(current), dim_);
  bool improved = true;
  while (improved) {
    improved = false;
    SnapshotNeighborsSync(current, layer, locks, &s.nb_snapshot);
    if (s.nb_snapshot.empty()) break;
    s.EnsureBatchCapacity(s.nb_snapshot.size());
    gather_(query, vectors_.data(), dim_, s.nb_snapshot.data(), s.nb_snapshot.size(),
            s.dists.data());
    for (size_t j = 0; j < s.nb_snapshot.size(); ++j) {
      if (s.dists[j] < current_dist) {
        current = s.nb_snapshot[j];
        current_dist = s.dists[j];
        improved = true;
      }
    }
  }
  return current;
}

void HnswIndex::SearchLayerIntoSync(const float* query, uint32_t entry, uint32_t ef,
                                    uint32_t layer, SearchScratch& s,
                                    HnswNodeLocks& locks) const {
  if (ef == 0) ef = 1;
  s.visited.Reset(levels_.size());
  s.frontier.clear();
  s.best.Reset(ef);

  const float entry_dist = pair_(query, RowPtr(entry), dim_);
  s.frontier.push_back({entry_dist, entry});
  s.best.Push(entry_dist, entry);
  s.visited.TestAndSet(entry);

  while (!s.frontier.empty()) {
    std::pop_heap(s.frontier.begin(), s.frontier.end(), MinCmp{});
    const Scored candidate = s.frontier.back();
    s.frontier.pop_back();
    if (s.best.full() && candidate.distance > s.best.worst()) break;

    SnapshotNeighborsSync(candidate.id, layer, locks, &s.nb_snapshot);
    size_t n = 0;
    for (uint32_t nb : s.nb_snapshot) {
      if (!s.visited.TestAndSet(nb)) s.ids[n++] = nb;
    }
    if (n == 0) continue;
    gather_(query, vectors_.data(), dim_, s.ids.data(), n, s.dists.data());
    for (size_t j = 0; j < n; ++j) {
      const float d = s.dists[j];
      if (!s.best.full() || d < s.best.worst()) {
        s.frontier.push_back({d, s.ids[j]});
        std::push_heap(s.frontier.begin(), s.frontier.end(), MinCmp{});
        s.best.Push(d, s.ids[j]);
      }
    }
  }
}

void HnswIndex::InsertLinkedSync(uint32_t id, uint32_t level, SearchScratch& s,
                                 HnswNodeLocks& locks, std::mutex& top_mutex) {
  const float* base = RowPtr(id);
  uint32_t current;
  int32_t observed_top;
  {
    std::lock_guard<std::mutex> lock(top_mutex);
    current = entry_point_;
    observed_top = max_level_;
  }

  for (int32_t layer = observed_top; layer > static_cast<int32_t>(level); --layer) {
    current = GreedyClosestSync(base, current, static_cast<uint32_t>(layer), s, locks);
  }

  const int32_t top = std::min<int32_t>(static_cast<int32_t>(level), observed_top);
  for (int32_t layer = top; layer >= 0; --layer) {
    const uint32_t ulayer = static_cast<uint32_t>(layer);
    SearchLayerIntoSync(base, current, options_.ef_construction, ulayer, s, locks);
    const std::span<const Scored> found = s.best.SortAscending();
    s.candidates.assign(found.begin(), found.end());
    // A concurrent insert may already have linked to this node, so the search
    // can rediscover the node itself — never self-link.
    std::erase_if(s.candidates, [id](const Scored& c) { return c.id == id; });
    if (!s.candidates.empty()) {
      current = s.candidates.front().id;
    }
    // extend_candidates is rejected up-front by AddBatchParallel, so this
    // SelectNeighbors call reads only the immutable vector rows.
    SelectNeighbors(id, base, s.candidates, options_.M, ulayer, s, &s.selected);

    {
      std::lock_guard<std::mutex> lock(locks.Of(id));
      std::vector<uint32_t>& own = links_[id][ulayer];
      // Concurrent inserts may already have back-linked into our (initially
      // empty) list; keep those edges and fill the rest from our selection.
      own.reserve(std::min<size_t>(own.size() + s.selected.size(), MaxDegree(ulayer)));
      for (const Scored& sc : s.selected) {
        if (own.size() >= MaxDegree(ulayer)) break;
        if (std::find(own.begin(), own.end(), sc.id) == own.end()) own.push_back(sc.id);
      }
    }
    // LinkBackSync's shrink path reuses the shared scratch, so walk a private
    // copy of the selected ids+distances.
    s.candidates.assign(s.selected.begin(), s.selected.end());
    for (const Scored& sel : s.candidates) {
      LinkBackSync(id, sel, ulayer, s, locks);
    }
  }

  {
    std::lock_guard<std::mutex> lock(top_mutex);
    if (static_cast<int32_t>(level) > max_level_) {
      max_level_ = static_cast<int32_t>(level);
      entry_point_ = id;
    }
  }
}

void HnswIndex::LinkBackSync(uint32_t id, const Scored& sel, uint32_t layer,
                             SearchScratch& s, HnswNodeLocks& locks) {
  const uint32_t nb = sel.id;
  std::lock_guard<std::mutex> lock(locks.Of(nb));
  std::vector<uint32_t>& nb_links = links_[nb][layer];
  // Two in-flight nodes can select each other; nb's own insert may already
  // have written this edge — never duplicate it.
  if (std::find(nb_links.begin(), nb_links.end(), id) != nb_links.end()) return;
  const uint32_t cap = MaxDegree(layer);
  if (nb_links.size() < cap) {
    nb_links.push_back(id);
    return;
  }
  // Overflow: re-select from the list as it exists NOW, under this lock
  // hold. Concurrency audit of the PR 2 distance cache: the per-link score
  // sel.distance is a pure function of two immutable vector rows, so it can
  // never go stale and is safe to reuse; what CAN go stale is the neighbor
  // LIST a concurrent insert grew between our selection and this shrink —
  // hence the full re-gather over the lock-held snapshot rather than any
  // remembered list scores.
  const float* nb_vec = RowPtr(nb);
  const size_t old_n = nb_links.size();
  s.EnsureBatchCapacity(old_n + 1);
  gather_(nb_vec, vectors_.data(), dim_, nb_links.data(), old_n, s.dists.data());
  s.shrink_scored.clear();
  for (size_t j = 0; j < old_n; ++j) {
    s.shrink_scored.push_back({s.dists[j], nb_links[j]});
  }
  s.shrink_scored.push_back({sel.distance, id});
  SelectNeighbors(nb, nb_vec, s.shrink_scored, cap, layer, s, &s.shrink_out);
  nb_links.clear();
  for (const Scored& sc : s.shrink_out) nb_links.push_back(sc.id);
}

uint32_t HnswIndex::GreedyClosest(const float* query, uint32_t entry, uint32_t layer,
                                  SearchScratch& s) const {
  uint32_t current = entry;
  float current_dist = pair_(query, RowPtr(current), dim_);
  bool improved = true;
  while (improved) {
    improved = false;
    const std::vector<uint32_t>& nbs = links_[current][layer];
    if (nbs.empty()) break;
    gather_(query, vectors_.data(), dim_, nbs.data(), nbs.size(), s.dists.data());
    for (size_t j = 0; j < nbs.size(); ++j) {
      if (s.dists[j] < current_dist) {
        current = nbs[j];
        current_dist = s.dists[j];
        improved = true;
      }
    }
  }
  return current;
}

void HnswIndex::SearchLayerInto(const float* query, uint32_t entry, uint32_t ef,
                                uint32_t layer, SearchScratch& s) const {
  if (ef == 0) ef = 1;
  s.visited.Reset(levels_.size());
  s.frontier.clear();
  s.best.Reset(ef);

  const float entry_dist = pair_(query, RowPtr(entry), dim_);
  s.frontier.push_back({entry_dist, entry});
  s.best.Push(entry_dist, entry);
  s.visited.TestAndSet(entry);

  while (!s.frontier.empty()) {
    std::pop_heap(s.frontier.begin(), s.frontier.end(), MinCmp{});
    const Scored candidate = s.frontier.back();
    s.frontier.pop_back();
    if (s.best.full() && candidate.distance > s.best.worst()) break;

    // Stage unvisited neighbors, then score them with one batched call.
    const std::vector<uint32_t>& nbs = links_[candidate.id][layer];
    size_t n = 0;
    for (uint32_t nb : nbs) {
      if (!s.visited.TestAndSet(nb)) s.ids[n++] = nb;
    }
    if (n == 0) continue;
    gather_(query, vectors_.data(), dim_, s.ids.data(), n, s.dists.data());
    for (size_t j = 0; j < n; ++j) {
      const float d = s.dists[j];
      if (!s.best.full() || d < s.best.worst()) {
        s.frontier.push_back({d, s.ids[j]});
        std::push_heap(s.frontier.begin(), s.frontier.end(), MinCmp{});
        s.best.Push(d, s.ids[j]);
      }
    }
  }
}

void HnswIndex::SelectNeighbors(uint32_t base_id, const float* base,
                                std::vector<Scored>& candidates, uint32_t m,
                                uint32_t layer, SearchScratch& s,
                                std::vector<Scored>* out) const {
  // Algorithm 4 (heuristic): take candidates closest-first, but admit one only
  // if it is closer to the base than to every already-admitted neighbor —
  // this spreads links across directions instead of clustering them.
  std::sort(candidates.begin(), candidates.end());

  if (options_.extend_candidates) {
    s.visited.Reset(levels_.size());
    if (base_id < levels_.size()) s.visited.TestAndSet(base_id);  // never re-add the base
    for (const Scored& c : candidates) s.visited.TestAndSet(c.id);
    const size_t original = candidates.size();
    for (size_t i = 0; i < original; ++i) {
      for (uint32_t nb : links_[candidates[i].id][layer]) {
        if (s.visited.TestAndSet(nb)) continue;
        candidates.push_back({pair_(base, RowPtr(nb), dim_), nb});
      }
    }
    std::sort(candidates.begin(), candidates.end());
  }

  out->clear();
  s.pruned.clear();
  s.sel_ids.clear();

  for (const Scored& c : candidates) {
    if (out->size() >= m) break;
    bool diverse = true;
    if (!s.sel_ids.empty()) {
      // One batched call scores the candidate against every admitted
      // neighbor (their ids are kept contiguous for exactly this).
      gather_(RowPtr(c.id), vectors_.data(), dim_, s.sel_ids.data(),
              s.sel_ids.size(), s.dists.data());
      for (size_t j = 0; j < s.sel_ids.size(); ++j) {
        if (s.dists[j] < c.distance) {
          diverse = false;
          break;
        }
      }
    }
    if (diverse) {
      out->push_back(c);
      s.sel_ids.push_back(c.id);
    } else if (options_.keep_pruned_connections) {
      s.pruned.push_back(c);
    }
  }

  if (options_.keep_pruned_connections) {
    for (const Scored& c : s.pruned) {
      if (out->size() >= m) break;
      out->push_back(c);
    }
  }
}

std::vector<Scored> HnswIndex::Search(std::span<const float> query, size_t k,
                                      uint32_t ef) const {
  std::vector<Scored> out;
  Search(query, k, ef, &out);
  return out;
}

void HnswIndex::Search(std::span<const float> query, size_t k, uint32_t ef,
                       std::vector<Scored>* out) const {
  assert(query.size() == dim_);
  out->clear();
  if (empty() || k == 0) return;
  ef = std::max<uint32_t>(ef, static_cast<uint32_t>(k));

  ScratchLease lease(scratch_pool_);
  SearchScratch& s = *lease;
  s.EnsureBatchCapacity(2 * options_.M + 2);

  uint32_t current = entry_point_;
  for (int32_t layer = max_level_; layer > 0; --layer) {
    current = GreedyClosest(query.data(), current, static_cast<uint32_t>(layer), s);
  }
  SearchLayerInto(query.data(), current, ef, 0, s);

  std::span<const Scored> sorted = s.best.SortAscending();
  if (sorted.size() > k) sorted = sorted.first(k);
  out->assign(sorted.begin(), sorted.end());
}

std::span<const uint32_t> HnswIndex::neighbors(uint32_t id, uint32_t layer) const {
  assert(id < links_.size() && layer < links_[id].size());
  return links_[id][layer];
}

Status HnswIndex::SetNeighbors(uint32_t id, uint32_t layer, std::span<const uint32_t> ids) {
  if (id >= links_.size()) return Status::InvalidArgument("SetNeighbors: bad id");
  if (layer >= links_[id].size()) return Status::InvalidArgument("SetNeighbors: bad layer");
  if (ids.size() > MaxDegree(layer)) return Status::InvalidArgument("SetNeighbors: too many neighbors");
  for (uint32_t nb : ids) {
    if (nb >= links_.size()) return Status::InvalidArgument("SetNeighbors: bad neighbor id");
    if (levels_[nb] < layer) return Status::InvalidArgument("SetNeighbors: neighbor below layer");
  }
  links_[id][layer].assign(ids.begin(), ids.end());
  return Status::Ok();
}

Result<HnswIndex> HnswIndex::FromRaw(uint32_t dim, HnswOptions options,
                                     std::vector<float> vectors,
                                     std::vector<uint32_t> levels,
                                     std::vector<std::vector<std::vector<uint32_t>>> links,
                                     uint32_t entry_point) {
  if (dim == 0) return Status::InvalidArgument("FromRaw: dim == 0");
  if (vectors.size() != levels.size() * static_cast<size_t>(dim)) {
    return Status::InvalidArgument("FromRaw: vector payload size mismatch");
  }
  if (links.size() != levels.size()) {
    return Status::InvalidArgument("FromRaw: adjacency size mismatch");
  }

  HnswIndex index(dim, options);
  index.vectors_ = std::move(vectors);
  index.levels_ = std::move(levels);
  index.links_ = std::move(links);
  if (!index.levels_.empty()) {
    if (entry_point >= index.levels_.size()) {
      return Status::InvalidArgument("FromRaw: entry point out of range");
    }
    index.entry_point_ = entry_point;
    int32_t max_level = 0;
    for (uint32_t lvl : index.levels_) {
      max_level = std::max(max_level, static_cast<int32_t>(lvl));
    }
    index.max_level_ = max_level;
  }
  DHNSW_RETURN_IF_ERROR(index.Validate());
  return index;  // implicit move (C++20) into Result<HnswIndex>
}

Status HnswIndex::Validate() const {
  if (empty()) return Status::Ok();
  if (entry_point_ >= levels_.size()) return Status::Internal("entry point out of range");
  if (levels_[entry_point_] != static_cast<uint32_t>(max_level_)) {
    return Status::Internal("entry point is not on the top level");
  }
  for (uint32_t id = 0; id < levels_.size(); ++id) {
    if (links_[id].size() != levels_[id] + 1) {
      return Status::Internal("node layer count mismatch");
    }
    for (uint32_t layer = 0; layer <= levels_[id]; ++layer) {
      const auto& nbs = links_[id][layer];
      if (nbs.size() > MaxDegree(layer)) return Status::Internal("degree cap exceeded");
      for (uint32_t nb : nbs) {
        if (nb >= levels_.size()) return Status::Internal("neighbor id out of range");
        if (nb == id) return Status::Internal("self loop");
        if (levels_[nb] < layer) return Status::Internal("neighbor does not reach layer");
      }
    }
  }
  return Status::Ok();
}

}  // namespace dhnsw
