#include "index/hnsw.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <queue>

namespace dhnsw {

HnswIndex::HnswIndex(uint32_t dim, HnswOptions options)
    : dim_(dim),
      options_(options),
      dist_fn_(DistanceFunction(options.metric)),
      level_lambda_(1.0 / std::log(std::max<uint32_t>(2, options.M))),
      rng_(options.seed) {
  assert(dim > 0);
  if (options_.M < 2) options_.M = 2;
}

uint32_t HnswIndex::DrawLevel() {
  double u;
  do {
    u = rng_.NextDouble();
  } while (u <= 0.0);
  uint32_t level = static_cast<uint32_t>(-std::log(u) * level_lambda_);
  if (options_.max_level.has_value()) {
    level = std::min(level, *options_.max_level);
  }
  return level;
}

uint32_t HnswIndex::Add(std::span<const float> v) {
  return AddWithLevel(v, DrawLevel());
}

uint32_t HnswIndex::AddWithLevel(std::span<const float> v, uint32_t level) {
  assert(v.size() == dim_);
  if (options_.max_level.has_value()) level = std::min(level, *options_.max_level);

  const uint32_t id = static_cast<uint32_t>(levels_.size());
  vectors_.insert(vectors_.end(), v.begin(), v.end());
  levels_.push_back(level);
  links_.emplace_back(level + 1);

  if (id == 0) {
    entry_point_ = 0;
    max_level_ = static_cast<int32_t>(level);
    return id;
  }

  const std::span<const float> base = vector(id);
  uint32_t current = entry_point_;

  // Phase 1: greedy descent through layers above the new node's top level.
  for (int32_t layer = max_level_; layer > static_cast<int32_t>(level); --layer) {
    current = GreedyClosest(base, current, static_cast<uint32_t>(layer));
  }

  // Phase 2: on each layer the node participates in, search with
  // ef_construction, pick diverse neighbors, and link bidirectionally.
  const int32_t top = std::min<int32_t>(static_cast<int32_t>(level), max_level_);
  for (int32_t layer = top; layer >= 0; --layer) {
    const uint32_t ulayer = static_cast<uint32_t>(layer);
    std::vector<Scored> candidates =
        SearchLayer(base, current, options_.ef_construction, ulayer);
    if (!candidates.empty()) {
      // Best candidate seeds the next (lower) layer's search.
      current = std::min_element(candidates.begin(), candidates.end())->id;
    }
    const uint32_t m = options_.M;  // select M on every layer (cap applies on 0 too)
    std::vector<uint32_t> selected =
        SelectNeighbors(id, base, std::move(candidates), m, ulayer);

    links_[id][ulayer] = selected;
    // Back-links, shrinking the neighbor's list if it overflows.
    for (uint32_t nb : selected) {
      std::vector<uint32_t>& nb_links = links_[nb][ulayer];
      nb_links.push_back(id);
      const uint32_t cap = MaxDegree(ulayer);
      if (nb_links.size() > cap) {
        std::vector<Scored> scored;
        scored.reserve(nb_links.size());
        const std::span<const float> nb_vec = vector(nb);
        for (uint32_t cand : nb_links) {
          scored.push_back({Dist(nb_vec, vector(cand)), cand});
        }
        nb_links = SelectNeighbors(nb, nb_vec, std::move(scored), cap, ulayer);
      }
    }
  }

  if (static_cast<int32_t>(level) > max_level_) {
    max_level_ = static_cast<int32_t>(level);
    entry_point_ = id;
  }
  return id;
}

uint32_t HnswIndex::GreedyClosest(std::span<const float> query, uint32_t entry,
                                  uint32_t layer) const {
  uint32_t current = entry;
  float current_dist = Dist(query, vector(current));
  bool improved = true;
  while (improved) {
    improved = false;
    for (uint32_t nb : links_[current][layer]) {
      const float d = Dist(query, vector(nb));
      if (d < current_dist) {
        current = nb;
        current_dist = d;
        improved = true;
      }
    }
  }
  return current;
}

std::vector<Scored> HnswIndex::SearchLayer(std::span<const float> query, uint32_t entry,
                                           uint32_t ef, uint32_t layer) const {
  if (ef == 0) ef = 1;
  // visited bitmap: graphs here are partition-sized (10^3..10^5 nodes), so a
  // byte vector per call is cheap and keeps Search const + thread-safe.
  std::vector<uint8_t> visited(levels_.size(), 0);

  // Min-heap of candidates to expand; max-heap (TopKHeap) of results to keep.
  auto cmp_min = [](const Scored& a, const Scored& b) { return b < a; };
  std::priority_queue<Scored, std::vector<Scored>, decltype(cmp_min)> frontier(cmp_min);

  TopKHeap best(ef);
  const float entry_dist = Dist(query, vector(entry));
  frontier.push({entry_dist, entry});
  best.Push(entry_dist, entry);
  visited[entry] = 1;

  while (!frontier.empty()) {
    const Scored candidate = frontier.top();
    frontier.pop();
    if (best.full() && candidate.distance > best.worst()) break;

    for (uint32_t nb : links_[candidate.id][layer]) {
      if (visited[nb]) continue;
      visited[nb] = 1;
      const float d = Dist(query, vector(nb));
      if (!best.full() || d < best.worst()) {
        frontier.push({d, nb});
        best.Push(d, nb);
      }
    }
  }
  return best.TakeSorted();
}

std::vector<uint32_t> HnswIndex::SelectNeighbors(uint32_t base_id,
                                                 std::span<const float> base,
                                                 std::vector<Scored> candidates,
                                                 uint32_t m, uint32_t layer) const {
  // Algorithm 4 (heuristic): take candidates closest-first, but admit one only
  // if it is closer to the base than to every already-admitted neighbor —
  // this spreads links across directions instead of clustering them.
  std::sort(candidates.begin(), candidates.end());

  if (options_.extend_candidates) {
    std::vector<uint8_t> seen(levels_.size(), 0);
    if (base_id < seen.size()) seen[base_id] = 1;  // never re-add the base
    for (const Scored& c : candidates) seen[c.id] = 1;
    const size_t original = candidates.size();
    for (size_t i = 0; i < original; ++i) {
      for (uint32_t nb : links_[candidates[i].id][layer]) {
        if (seen[nb]) continue;
        seen[nb] = 1;
        candidates.push_back({Dist(base, vector(nb)), nb});
      }
    }
    std::sort(candidates.begin(), candidates.end());
  }

  std::vector<uint32_t> selected;
  selected.reserve(m);
  std::vector<Scored> pruned;

  for (const Scored& c : candidates) {
    if (selected.size() >= m) break;
    bool diverse = true;
    for (uint32_t s : selected) {
      if (Dist(vector(c.id), vector(s)) < c.distance) {
        diverse = false;
        break;
      }
    }
    if (diverse) {
      selected.push_back(c.id);
    } else if (options_.keep_pruned_connections) {
      pruned.push_back(c);
    }
  }

  if (options_.keep_pruned_connections) {
    for (const Scored& c : pruned) {
      if (selected.size() >= m) break;
      selected.push_back(c.id);
    }
  }
  return selected;
}

std::vector<Scored> HnswIndex::Search(std::span<const float> query, size_t k,
                                      uint32_t ef) const {
  assert(query.size() == dim_);
  if (empty() || k == 0) return {};
  ef = std::max<uint32_t>(ef, static_cast<uint32_t>(k));

  uint32_t current = entry_point_;
  for (int32_t layer = max_level_; layer > 0; --layer) {
    current = GreedyClosest(query, current, static_cast<uint32_t>(layer));
  }
  std::vector<Scored> found = SearchLayer(query, current, ef, 0);
  if (found.size() > k) found.resize(k);
  return found;
}

std::span<const uint32_t> HnswIndex::neighbors(uint32_t id, uint32_t layer) const {
  assert(id < links_.size() && layer < links_[id].size());
  return links_[id][layer];
}

Status HnswIndex::SetNeighbors(uint32_t id, uint32_t layer, std::span<const uint32_t> ids) {
  if (id >= links_.size()) return Status::InvalidArgument("SetNeighbors: bad id");
  if (layer >= links_[id].size()) return Status::InvalidArgument("SetNeighbors: bad layer");
  if (ids.size() > MaxDegree(layer)) return Status::InvalidArgument("SetNeighbors: too many neighbors");
  for (uint32_t nb : ids) {
    if (nb >= links_.size()) return Status::InvalidArgument("SetNeighbors: bad neighbor id");
    if (levels_[nb] < layer) return Status::InvalidArgument("SetNeighbors: neighbor below layer");
  }
  links_[id][layer].assign(ids.begin(), ids.end());
  return Status::Ok();
}

Result<HnswIndex> HnswIndex::FromRaw(uint32_t dim, HnswOptions options,
                                     std::vector<float> vectors,
                                     std::vector<uint32_t> levels,
                                     std::vector<std::vector<std::vector<uint32_t>>> links,
                                     uint32_t entry_point) {
  if (dim == 0) return Status::InvalidArgument("FromRaw: dim == 0");
  if (vectors.size() != levels.size() * static_cast<size_t>(dim)) {
    return Status::InvalidArgument("FromRaw: vector payload size mismatch");
  }
  if (links.size() != levels.size()) {
    return Status::InvalidArgument("FromRaw: adjacency size mismatch");
  }

  HnswIndex index(dim, options);
  index.vectors_ = std::move(vectors);
  index.levels_ = std::move(levels);
  index.links_ = std::move(links);
  if (!index.levels_.empty()) {
    if (entry_point >= index.levels_.size()) {
      return Status::InvalidArgument("FromRaw: entry point out of range");
    }
    index.entry_point_ = entry_point;
    int32_t max_level = 0;
    for (uint32_t lvl : index.levels_) {
      max_level = std::max(max_level, static_cast<int32_t>(lvl));
    }
    index.max_level_ = max_level;
  }
  DHNSW_RETURN_IF_ERROR(index.Validate());
  return index;  // implicit move (C++20) into Result<HnswIndex>
}

Status HnswIndex::Validate() const {
  if (empty()) return Status::Ok();
  if (entry_point_ >= levels_.size()) return Status::Internal("entry point out of range");
  if (levels_[entry_point_] != static_cast<uint32_t>(max_level_)) {
    return Status::Internal("entry point is not on the top level");
  }
  for (uint32_t id = 0; id < levels_.size(); ++id) {
    if (links_[id].size() != levels_[id] + 1) {
      return Status::Internal("node layer count mismatch");
    }
    for (uint32_t layer = 0; layer <= levels_[id]; ++layer) {
      const auto& nbs = links_[id][layer];
      if (nbs.size() > MaxDegree(layer)) return Status::Internal("degree cap exceeded");
      for (uint32_t nb : nbs) {
        if (nb >= levels_.size()) return Status::Internal("neighbor id out of range");
        if (nb == id) return Status::Internal("self loop");
        if (levels_[nb] < layer) return Status::Internal("neighbor does not reach layer");
      }
    }
  }
  return Status::Ok();
}

}  // namespace dhnsw
