// Internal glue between the dispatcher (distance.cpp) and the per-ISA kernel
// translation units (distance_avx512.cpp / distance_avx2.cpp /
// distance_neon.cpp). Each TU is compiled with its own -m flags and exposes
// exactly one KernelTable; the dispatcher picks one at startup via cpuid.
//
// The gather/rows loop shapes are identical across tiers, so they live here
// as templates over the tier's (inlined) pair kernels — instantiated inside
// each TU they compile under that TU's ISA flags and inline fully.
#pragma once

#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include "index/distance.h"

namespace dhnsw::detail {

/// Scalar reference tier — always available, and the baseline the parity
/// suite compares every other tier against.
const KernelTable& ScalarKernels() noexcept;

// Tier tables are only declared when CMake found compiler support
// (DHNSW_HAVE_* are private compile definitions of dhnsw_index). Calling one
// on a CPU without the ISA is undefined; the dispatcher checks cpuid first.
#if defined(DHNSW_HAVE_AVX2)
const KernelTable& Avx2Kernels() noexcept;
#endif
#if defined(DHNSW_HAVE_AVX512)
const KernelTable& Avx512Kernels() noexcept;
#endif
#if defined(DHNSW_HAVE_NEON)
const KernelTable& NeonKernels() noexcept;
#endif

/// Shared cosine epilogue — the single definition of the zero-vector
/// convention (distance.h "Numerical contract"): every tier reduces its
/// stripes to (dot, na, nb) floats and finishes through this exact
/// expression, so the convention cannot drift between tiers.
inline float FinishCosine(float dot, float na, float nb) noexcept {
  const float denom = __builtin_sqrtf(na) * __builtin_sqrtf(nb);
  if (!(denom > 0.0f) || __builtin_isinf(denom)) return 1.0f;
  return 1.0f - dot / denom;
}

/// Touches the first cache lines of an upcoming row so the scoring loop finds
/// them resident. Long rows (e.g. GIST's 960 floats) only prefetch their head
/// — the hardware streamer follows once the kernel walks the row.
inline void PrefetchRow(const float* row, size_t dim) noexcept {
  constexpr size_t kBytesPerLine = 64;
  constexpr size_t kMaxLines = 4;
  const size_t bytes = dim * sizeof(float);
  const size_t lines = bytes < kBytesPerLine * kMaxLines
                           ? (bytes + kBytesPerLine - 1) / kBytesPerLine
                           : kMaxLines;
  const char* p = reinterpret_cast<const char*>(row);
  for (size_t i = 0; i < lines; ++i) {
    __builtin_prefetch(p + i * kBytesPerLine, /*rw=*/0, /*locality=*/3);
  }
}

/// out[i] = Pair(query, base + ids[i]*dim). Bit-identical to calling the pair
/// kernel per element (the parity suite asserts this), plus prefetch of the
/// row kLookahead iterations ahead.
template <PairKernel Pair>
void GatherImpl(const float* query, const float* base, size_t dim,
                const uint32_t* ids, size_t n, float* out) noexcept {
  constexpr size_t kLookahead = 4;
  const size_t head = n < kLookahead ? n : kLookahead;
  for (size_t i = 0; i < head; ++i) {
    PrefetchRow(base + static_cast<size_t>(ids[i]) * dim, dim);
  }
  for (size_t i = 0; i < n; ++i) {
    if (i + kLookahead < n) {
      PrefetchRow(base + static_cast<size_t>(ids[i + kLookahead]) * dim, dim);
    }
    out[i] = Pair(query, base + static_cast<size_t>(ids[i]) * dim, dim);
  }
}

/// out[i] = Pair(query, rows + i*dim) over contiguous rows. The linear walk
/// is hardware-prefetcher friendly; no software prefetch needed.
template <PairKernel Pair>
void RowsImpl(const float* query, const float* rows, size_t dim, size_t n,
              float* out) noexcept {
  for (size_t i = 0; i < n; ++i) {
    out[i] = Pair(query, rows + i * dim, dim);
  }
}

/// --- ADC (asymmetric distance over PQ codes) bodies ---
///
/// Contract (distance.h "Numerical contract"): ADC results are bit-identical
/// across EVERY tier. Each body accumulates lookup i into stripe i%8 in block
/// order and reduces (((s0+s1)+(s2+s3))+((s4+s5)+(s6+s7)))+tail, exactly like
/// the scalar reference — the SIMD variants just compute the same stripes in
/// vector lanes. Tests assert UlpDiff == 0 between tiers.

/// Scalar/NEON reference body. The LUT is small enough (m*1KiB) to stay hot
/// in L1/L2, so plain loads are already fast; NEON has no gather anyway.
inline float AdcScalarBody(const float* lut, const uint8_t* code,
                           size_t m) noexcept {
  float acc[8] = {};
  size_t i = 0;
  for (; i + 8 <= m; i += 8) {
    for (size_t j = 0; j < 8; ++j) {
      acc[j] += lut[(i + j) * 256 + code[i + j]];
    }
  }
  float tail = 0.0f;
  for (; i < m; ++i) tail += lut[i * 256 + code[i]];
  return (((acc[0] + acc[1]) + (acc[2] + acc[3])) +
          ((acc[4] + acc[5]) + (acc[6] + acc[7]))) + tail;
}

#if defined(__AVX2__)
/// Pairwise reduce matching the scalar stripe tree bit-for-bit:
/// (((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))).
inline float AdcReduceAdd8(__m256 v) noexcept {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  const __m128 plo = _mm_hadd_ps(lo, lo);  // [l0+l1, l2+l3, ...]
  const __m128 phi = _mm_hadd_ps(hi, hi);  // [l4+l5, l6+l7, ...]
  const float l =
      _mm_cvtss_f32(plo) + _mm_cvtss_f32(_mm_shuffle_ps(plo, plo, 0x55));
  const float h =
      _mm_cvtss_f32(phi) + _mm_cvtss_f32(_mm_shuffle_ps(phi, phi, 0x55));
  return l + h;
}

/// Hardware-gather body shared by the AVX2 and AVX-512 TUs (both compile
/// with __AVX2__). One 8-lane accumulator — lane j holds scalar stripe j —
/// so the result is bit-identical to AdcScalarBody (adds only, no FMA).
inline float AdcAvx2Body(const float* lut, const uint8_t* code,
                         size_t m) noexcept {
  const __m256i lane_base =
      _mm256_setr_epi32(0, 256, 512, 768, 1024, 1280, 1536, 1792);
  __m256 acc = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= m; i += 8) {
    const __m128i bytes =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(code + i));
    const __m256i idx = _mm256_add_epi32(
        _mm256_add_epi32(_mm256_set1_epi32(static_cast<int>(i * 256)),
                         lane_base),
        _mm256_cvtepu8_epi32(bytes));
    acc = _mm256_add_ps(acc, _mm256_i32gather_ps(lut, idx, 4));
  }
  float tail = 0.0f;
  for (; i < m; ++i) tail += lut[i * 256 + code[i]];
  return AdcReduceAdd8(acc) + tail;
}
#endif  // __AVX2__

/// out[i] = Adc(lut, codes + i*m) over contiguous code rows.
template <AdcKernel Adc>
void AdcRowsImpl(const float* lut, const uint8_t* codes, size_t m, size_t n,
                 float* out) noexcept {
  for (size_t i = 0; i < n; ++i) {
    out[i] = Adc(lut, codes + i * m, m);
  }
}

/// out[i] = Adc(lut, codes + ids[i]*m) — the PQ neighbor-expansion shape.
/// Code rows are tiny (m bytes) and the LUT is resident; no prefetch.
template <AdcKernel Adc>
void AdcGatherImpl(const float* lut, const uint8_t* codes, size_t m,
                   const uint32_t* ids, size_t n, float* out) noexcept {
  for (size_t i = 0; i < n; ++i) {
    out[i] = Adc(lut, codes + static_cast<size_t>(ids[i]) * m, m);
  }
}

}  // namespace dhnsw::detail
