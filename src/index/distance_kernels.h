// Internal glue between the dispatcher (distance.cpp) and the per-ISA kernel
// translation units (distance_avx512.cpp / distance_avx2.cpp /
// distance_neon.cpp). Each TU is compiled with its own -m flags and exposes
// exactly one KernelTable; the dispatcher picks one at startup via cpuid.
//
// The gather/rows loop shapes are identical across tiers, so they live here
// as templates over the tier's (inlined) pair kernels — instantiated inside
// each TU they compile under that TU's ISA flags and inline fully.
#pragma once

#include "index/distance.h"

namespace dhnsw::detail {

/// Scalar reference tier — always available, and the baseline the parity
/// suite compares every other tier against.
const KernelTable& ScalarKernels() noexcept;

// Tier tables are only declared when CMake found compiler support
// (DHNSW_HAVE_* are private compile definitions of dhnsw_index). Calling one
// on a CPU without the ISA is undefined; the dispatcher checks cpuid first.
#if defined(DHNSW_HAVE_AVX2)
const KernelTable& Avx2Kernels() noexcept;
#endif
#if defined(DHNSW_HAVE_AVX512)
const KernelTable& Avx512Kernels() noexcept;
#endif
#if defined(DHNSW_HAVE_NEON)
const KernelTable& NeonKernels() noexcept;
#endif

/// Shared cosine epilogue — the single definition of the zero-vector
/// convention (distance.h "Numerical contract"): every tier reduces its
/// stripes to (dot, na, nb) floats and finishes through this exact
/// expression, so the convention cannot drift between tiers.
inline float FinishCosine(float dot, float na, float nb) noexcept {
  const float denom = __builtin_sqrtf(na) * __builtin_sqrtf(nb);
  if (!(denom > 0.0f) || __builtin_isinf(denom)) return 1.0f;
  return 1.0f - dot / denom;
}

/// Touches the first cache lines of an upcoming row so the scoring loop finds
/// them resident. Long rows (e.g. GIST's 960 floats) only prefetch their head
/// — the hardware streamer follows once the kernel walks the row.
inline void PrefetchRow(const float* row, size_t dim) noexcept {
  constexpr size_t kBytesPerLine = 64;
  constexpr size_t kMaxLines = 4;
  const size_t bytes = dim * sizeof(float);
  const size_t lines = bytes < kBytesPerLine * kMaxLines
                           ? (bytes + kBytesPerLine - 1) / kBytesPerLine
                           : kMaxLines;
  const char* p = reinterpret_cast<const char*>(row);
  for (size_t i = 0; i < lines; ++i) {
    __builtin_prefetch(p + i * kBytesPerLine, /*rw=*/0, /*locality=*/3);
  }
}

/// out[i] = Pair(query, base + ids[i]*dim). Bit-identical to calling the pair
/// kernel per element (the parity suite asserts this), plus prefetch of the
/// row kLookahead iterations ahead.
template <PairKernel Pair>
void GatherImpl(const float* query, const float* base, size_t dim,
                const uint32_t* ids, size_t n, float* out) noexcept {
  constexpr size_t kLookahead = 4;
  const size_t head = n < kLookahead ? n : kLookahead;
  for (size_t i = 0; i < head; ++i) {
    PrefetchRow(base + static_cast<size_t>(ids[i]) * dim, dim);
  }
  for (size_t i = 0; i < n; ++i) {
    if (i + kLookahead < n) {
      PrefetchRow(base + static_cast<size_t>(ids[i + kLookahead]) * dim, dim);
    }
    out[i] = Pair(query, base + static_cast<size_t>(ids[i]) * dim, dim);
  }
}

/// out[i] = Pair(query, rows + i*dim) over contiguous rows. The linear walk
/// is hardware-prefetcher friendly; no software prefetch needed.
template <PairKernel Pair>
void RowsImpl(const float* query, const float* rows, size_t dim, size_t n,
              float* out) noexcept {
  for (size_t i = 0; i < n; ++i) {
    out[i] = Pair(query, rows + i * dim, dim);
  }
}

}  // namespace dhnsw::detail
