#include "index/kdtree.h"

#include <algorithm>
#include <cassert>
#include <queue>

namespace dhnsw {

KdTreeIndex::KdTreeIndex(uint32_t dim, KdTreeOptions options)
    : dim_(dim), options_(options) {
  assert(dim > 0);
  if (options_.leaf_size == 0) options_.leaf_size = 1;
}

void KdTreeIndex::Build(std::span<const float> vectors) {
  assert(vectors.size() % dim_ == 0);
  data_.assign(vectors.begin(), vectors.end());
  count_ = vectors.size() / dim_;
  num_leaves_ = 0;
  ids_.resize(count_);
  for (size_t i = 0; i < count_; ++i) ids_[i] = static_cast<uint32_t>(i);
  nodes_.clear();
  if (count_ == 0) return;
  nodes_.reserve(2 * count_ / options_.leaf_size + 2);
  BuildNode(0, static_cast<uint32_t>(count_));
}

uint32_t KdTreeIndex::BuildNode(uint32_t begin, uint32_t end) {
  const uint32_t node_index = static_cast<uint32_t>(nodes_.size());
  nodes_.emplace_back();

  if (end - begin <= options_.leaf_size) {
    nodes_[node_index].split_dim = -1;
    nodes_[node_index].begin = begin;
    nodes_[node_index].end = end;
    ++num_leaves_;
    return node_index;
  }

  // Split on the dimension with the largest spread in this slice.
  uint32_t best_dim = 0;
  float best_spread = -1.0f;
  for (uint32_t d = 0; d < dim_; ++d) {
    float lo = Vector(ids_[begin])[d], hi = lo;
    for (uint32_t i = begin + 1; i < end; ++i) {
      const float v = Vector(ids_[i])[d];
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    if (hi - lo > best_spread) {
      best_spread = hi - lo;
      best_dim = d;
    }
  }

  const uint32_t mid = begin + (end - begin) / 2;
  std::nth_element(ids_.begin() + begin, ids_.begin() + mid, ids_.begin() + end,
                   [&](uint32_t a, uint32_t b) {
                     return Vector(a)[best_dim] < Vector(b)[best_dim];
                   });
  const float split_value = Vector(ids_[mid])[best_dim];

  // Children are built after this node; store indices once known.
  const uint32_t left = BuildNode(begin, mid);
  const uint32_t right = BuildNode(mid, end);
  Node& node = nodes_[node_index];
  node.split_dim = static_cast<int32_t>(best_dim);
  node.split_value = split_value;
  node.left = left;
  node.right = right;
  return node_index;
}

std::vector<Scored> KdTreeIndex::Search(std::span<const float> query, size_t k,
                                        size_t max_leaves) const {
  assert(query.size() == dim_);
  if (count_ == 0 || k == 0) return {};
  max_leaves = std::max<size_t>(max_leaves, 1);

  TopKHeap best(k);
  // Best-first frontier over nodes, keyed by a lower bound on the squared
  // distance from the query to the node's half-space region.
  struct Entry {
    float bound;
    uint32_t node;
    bool operator>(const Entry& other) const { return bound > other.bound; }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> frontier;
  frontier.push({0.0f, 0});

  size_t leaves_visited = 0;
  while (!frontier.empty() && leaves_visited < max_leaves) {
    const Entry entry = frontier.top();
    frontier.pop();
    if (best.full() && entry.bound >= best.worst()) break;  // provably done

    const Node& node = nodes_[entry.node];
    if (node.split_dim < 0) {
      ++leaves_visited;
      for (uint32_t i = node.begin; i < node.end; ++i) {
        const uint32_t id = ids_[i];
        best.Push(L2Sq(Vector(id), query), id);
      }
      continue;
    }
    // Children: the near side keeps the parent's bound; the far side adds
    // the squared plane distance (valid lower-bound accumulation per axis
    // would track per-dim offsets; the single-plane bound is looser but
    // correct, and standard for limited-backtracking KD search).
    const float delta = query[node.split_dim] - node.split_value;
    const float plane_sq = delta * delta;
    const uint32_t near = delta <= 0.0f ? node.left : node.right;
    const uint32_t far = delta <= 0.0f ? node.right : node.left;
    frontier.push({entry.bound, near});
    frontier.push({std::max(entry.bound, plane_sq), far});
  }
  return best.TakeSorted();
}

}  // namespace dhnsw
