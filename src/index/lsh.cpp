#include "index/lsh.h"

#include <cassert>

#include "common/rng.h"

namespace dhnsw {

LshIndex::LshIndex(uint32_t dim, LshOptions options) : dim_(dim), options_(options) {
  assert(dim > 0);
  if (options_.num_tables == 0) options_.num_tables = 1;
  options_.num_bits = std::min<uint32_t>(std::max<uint32_t>(options_.num_bits, 1), 63);

  // Random Gaussian hyperplanes, fixed at construction for determinism.
  Xoshiro256 rng(options_.seed);
  hyperplanes_.resize(static_cast<size_t>(options_.num_tables) * options_.num_bits * dim_);
  for (float& x : hyperplanes_) x = static_cast<float>(rng.NextGaussian());
  tables_.resize(options_.num_tables);
}

uint64_t LshIndex::HashInto(std::span<const float> v, uint32_t table) const {
  uint64_t signature = 0;
  const float* plane = hyperplanes_.data() +
                       static_cast<size_t>(table) * options_.num_bits * dim_;
  for (uint32_t bit = 0; bit < options_.num_bits; ++bit, plane += dim_) {
    float dot = 0.0f;
    for (uint32_t d = 0; d < dim_; ++d) dot += plane[d] * v[d];
    signature = (signature << 1) | (dot >= 0.0f ? 1u : 0u);
  }
  return signature;
}

void LshIndex::Build(std::span<const float> vectors) {
  assert(vectors.size() % dim_ == 0);
  data_.assign(vectors.begin(), vectors.end());
  count_ = vectors.size() / dim_;
  for (auto& table : tables_) table.clear();
  for (size_t i = 0; i < count_; ++i) {
    const std::span<const float> v{data_.data() + i * dim_, dim_};
    for (uint32_t t = 0; t < options_.num_tables; ++t) {
      tables_[t][HashInto(v, t)].push_back(static_cast<uint32_t>(i));
    }
  }
}

std::vector<Scored> LshIndex::Search(std::span<const float> query, size_t k,
                                     size_t* candidates) const {
  assert(query.size() == dim_);
  if (count_ == 0 || k == 0) {
    if (candidates != nullptr) *candidates = 0;
    return {};
  }

  // Gather candidate ids across tables (dedup via a stamp array).
  std::vector<uint8_t> seen(count_, 0);
  std::vector<uint32_t> pool;
  auto probe = [&](uint32_t t, uint64_t signature) {
    auto it = tables_[t].find(signature);
    if (it == tables_[t].end()) return;
    for (uint32_t id : it->second) {
      if (!seen[id]) {
        seen[id] = 1;
        pool.push_back(id);
      }
    }
  };
  for (uint32_t t = 0; t < options_.num_tables; ++t) {
    const uint64_t signature = HashInto(query, t);
    probe(t, signature);
    if (options_.multiprobe >= 1) {
      for (uint32_t bit = 0; bit < options_.num_bits; ++bit) {
        probe(t, signature ^ (1ull << bit));
      }
    }
  }
  if (candidates != nullptr) *candidates = pool.size();

  // Exact re-rank of the candidate pool.
  TopKHeap best(k);
  for (uint32_t id : pool) {
    best.Push(L2Sq({data_.data() + static_cast<size_t>(id) * dim_, dim_}, query), id);
  }
  return best.TakeSorted();
}

}  // namespace dhnsw
