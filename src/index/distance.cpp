// Scalar reference kernels + the startup ISA dispatcher.
//
// The scalar kernels accumulate in 8 balanced stripes (not one running sum):
// striping bounds the summation error random-walk so wide-SIMD tiers, which
// also use balanced partial sums, stay within the 4-ULP parity budget even at
// dim 960 — and it lets the compiler auto-vectorize the baseline to SSE2.
#include "index/distance.h"

#include <cmath>
#include <cstdlib>
#include <vector>

#include "index/distance_kernels.h"

namespace dhnsw {

std::string_view MetricName(Metric metric) noexcept {
  switch (metric) {
    case Metric::kL2: return "l2";
    case Metric::kInnerProduct: return "ip";
    case Metric::kCosine: return "cosine";
  }
  return "?";
}

std::string_view SimdTierName(SimdTier tier) noexcept {
  switch (tier) {
    case SimdTier::kScalar: return "scalar";
    case SimdTier::kNeon: return "neon";
    case SimdTier::kAvx2: return "avx2";
    case SimdTier::kAvx512: return "avx512";
  }
  return "?";
}

namespace detail {
namespace {

float L2SqScalar(const float* a, const float* b, size_t n) noexcept {
  float acc[8] = {};
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (size_t j = 0; j < 8; ++j) {
      const float d = a[i + j] - b[i + j];
      acc[j] += d * d;
    }
  }
  float tail = 0.0f;
  for (; i < n; ++i) {
    const float d = a[i] - b[i];
    tail += d * d;
  }
  return (((acc[0] + acc[1]) + (acc[2] + acc[3])) +
          ((acc[4] + acc[5]) + (acc[6] + acc[7]))) + tail;
}

float IpScalar(const float* a, const float* b, size_t n) noexcept {
  float acc[8] = {};
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (size_t j = 0; j < 8; ++j) acc[j] += a[i + j] * b[i + j];
  }
  float tail = 0.0f;
  for (; i < n; ++i) tail += a[i] * b[i];
  return -((((acc[0] + acc[1]) + (acc[2] + acc[3])) +
            ((acc[4] + acc[5]) + (acc[6] + acc[7]))) + tail);
}

float CosineScalar(const float* a, const float* b, size_t n) noexcept {
  float dot[8] = {}, na[8] = {}, nb[8] = {};
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (size_t j = 0; j < 8; ++j) {
      dot[j] += a[i + j] * b[i + j];
      na[j] += a[i + j] * a[i + j];
      nb[j] += b[i + j] * b[i + j];
    }
  }
  float dot_t = 0.0f, na_t = 0.0f, nb_t = 0.0f;
  for (; i < n; ++i) {
    dot_t += a[i] * b[i];
    na_t += a[i] * a[i];
    nb_t += b[i] * b[i];
  }
  const auto reduce = [](const float* s, float tail) {
    return (((s[0] + s[1]) + (s[2] + s[3])) + ((s[4] + s[5]) + (s[6] + s[7]))) + tail;
  };
  return FinishCosine(reduce(dot, dot_t), reduce(na, na_t), reduce(nb, nb_t));
}

}  // namespace

const KernelTable& ScalarKernels() noexcept {
  static constexpr KernelTable table = {
      SimdTier::kScalar,
      &L2SqScalar,
      &IpScalar,
      &CosineScalar,
      &GatherImpl<&L2SqScalar>,
      &GatherImpl<&IpScalar>,
      &GatherImpl<&CosineScalar>,
      &RowsImpl<&L2SqScalar>,
      &RowsImpl<&IpScalar>,
      &RowsImpl<&CosineScalar>,
      &AdcScalarBody,
      &AdcGatherImpl<&AdcScalarBody>,
      &AdcRowsImpl<&AdcScalarBody>,
  };
  return table;
}

}  // namespace detail

namespace {

bool CpuHasTier(SimdTier tier) noexcept {
  switch (tier) {
    case SimdTier::kScalar:
      return true;
#if defined(__x86_64__) || defined(__i386__)
    case SimdTier::kAvx2:
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
    case SimdTier::kAvx512:
      return __builtin_cpu_supports("avx512f");
#endif
#if defined(__aarch64__)
    case SimdTier::kNeon:
      return true;  // NEON is baseline on aarch64
#endif
    default:
      return false;
  }
}

/// Compiled-in tiers, widest last. Scalar is always slot 0.
std::vector<SimdTier> ComputeAvailableTiers() {
  std::vector<SimdTier> tiers = {SimdTier::kScalar};
#if defined(DHNSW_HAVE_NEON)
  if (CpuHasTier(SimdTier::kNeon)) tiers.push_back(SimdTier::kNeon);
#endif
#if defined(DHNSW_HAVE_AVX2)
  if (CpuHasTier(SimdTier::kAvx2)) tiers.push_back(SimdTier::kAvx2);
#endif
#if defined(DHNSW_HAVE_AVX512)
  if (CpuHasTier(SimdTier::kAvx512)) tiers.push_back(SimdTier::kAvx512);
#endif
  return tiers;
}

bool ForceScalarFromEnv() noexcept {
  const char* env = std::getenv("DHNSW_FORCE_SCALAR");
  return env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
}

}  // namespace

std::span<const SimdTier> AvailableTiers() noexcept {
  static const std::vector<SimdTier> tiers = ComputeAvailableTiers();
  return tiers;
}

const KernelTable& KernelsForTier(SimdTier tier) noexcept {
  switch (tier) {
#if defined(DHNSW_HAVE_AVX512)
    case SimdTier::kAvx512: return detail::Avx512Kernels();
#endif
#if defined(DHNSW_HAVE_AVX2)
    case SimdTier::kAvx2: return detail::Avx2Kernels();
#endif
#if defined(DHNSW_HAVE_NEON)
    case SimdTier::kNeon: return detail::NeonKernels();
#endif
    default: return detail::ScalarKernels();
  }
}

const KernelTable& ActiveKernels() noexcept {
  static const KernelTable& table = []() -> const KernelTable& {
    if (ForceScalarFromEnv()) return detail::ScalarKernels();
    return KernelsForTier(AvailableTiers().back());
  }();
  return table;
}

SimdTier ActiveTier() noexcept { return ActiveKernels().tier; }

float L2Sq(std::span<const float> a, std::span<const float> b) noexcept {
  return ActiveKernels().l2(a.data(), b.data(), a.size());
}

float InnerProduct(std::span<const float> a, std::span<const float> b) noexcept {
  return ActiveKernels().ip(a.data(), b.data(), a.size());
}

float CosineDistance(std::span<const float> a, std::span<const float> b) noexcept {
  return ActiveKernels().cosine(a.data(), b.data(), a.size());
}

float Distance(Metric metric, std::span<const float> a, std::span<const float> b) noexcept {
  return ActiveKernels().Pair(metric)(a.data(), b.data(), a.size());
}

DistanceFn DistanceFunction(Metric metric) noexcept {
  switch (metric) {
    case Metric::kL2: return &L2Sq;
    case Metric::kInnerProduct: return &InnerProduct;
    case Metric::kCosine: return &CosineDistance;
  }
  return &L2Sq;
}

void DistanceBatch(Metric metric, std::span<const float> query, const float* base,
                   size_t dim, std::span<const uint32_t> ids, float* out) noexcept {
  ActiveKernels().Gather(metric)(query.data(), base, dim, ids.data(), ids.size(), out);
}

int32_t UlpDiff(float a, float b) noexcept {
  if (std::isnan(a) || std::isnan(b)) {
    return (std::isnan(a) && std::isnan(b)) ? 0 : INT32_MAX;
  }
  if (std::isinf(a) || std::isinf(b)) {
    return a == b ? 0 : INT32_MAX;
  }
  // Map the float line onto a monotone integer line: positive floats keep
  // their bit pattern, negative floats are mirrored below zero. Adjacent
  // representable floats are then adjacent integers.
  const auto to_ordered = [](float f) -> int64_t {
    int32_t bits;
    __builtin_memcpy(&bits, &f, sizeof(bits));
    return bits >= 0 ? static_cast<int64_t>(bits)
                     : -static_cast<int64_t>(bits & 0x7FFFFFFF);
  };
  const int64_t diff = to_ordered(a) - to_ordered(b);
  const int64_t mag = diff < 0 ? -diff : diff;
  return mag > INT32_MAX ? INT32_MAX : static_cast<int32_t>(mag);
}

bool UlpClose(float a, float b, int32_t max_ulps) noexcept {
  return UlpDiff(a, b) <= max_ulps;
}

}  // namespace dhnsw
