#include "index/distance.h"

#include <cassert>
#include <cmath>

namespace dhnsw {

std::string_view MetricName(Metric metric) noexcept {
  switch (metric) {
    case Metric::kL2: return "l2";
    case Metric::kInnerProduct: return "ip";
    case Metric::kCosine: return "cosine";
  }
  return "?";
}

float L2Sq(std::span<const float> a, std::span<const float> b) noexcept {
  assert(a.size() == b.size());
  float acc = 0.0f;
  for (size_t i = 0; i < a.size(); ++i) {
    const float d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

float InnerProduct(std::span<const float> a, std::span<const float> b) noexcept {
  assert(a.size() == b.size());
  float acc = 0.0f;
  for (size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return -acc;
}

float CosineDistance(std::span<const float> a, std::span<const float> b) noexcept {
  assert(a.size() == b.size());
  float dot = 0.0f, na = 0.0f, nb = 0.0f;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  const float denom = std::sqrt(na) * std::sqrt(nb);
  if (denom == 0.0f) return 1.0f;  // convention: zero vector is maximally far
  return 1.0f - dot / denom;
}

float Distance(Metric metric, std::span<const float> a, std::span<const float> b) noexcept {
  switch (metric) {
    case Metric::kL2: return L2Sq(a, b);
    case Metric::kInnerProduct: return InnerProduct(a, b);
    case Metric::kCosine: return CosineDistance(a, b);
  }
  return 0.0f;
}

DistanceFn DistanceFunction(Metric metric) noexcept {
  switch (metric) {
    case Metric::kL2: return &L2Sq;
    case Metric::kInnerProduct: return &InnerProduct;
    case Metric::kCosine: return &CosineDistance;
  }
  return &L2Sq;
}

}  // namespace dhnsw
