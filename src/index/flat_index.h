// Exact (brute-force) nearest-neighbor index. Serves two roles:
//  - ground truth for recall measurement,
//  - the trivial baseline any ANN index must beat.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "common/topk.h"
#include "index/distance.h"

namespace dhnsw {

class FlatIndex {
 public:
  FlatIndex(uint32_t dim, Metric metric = Metric::kL2)
      : dim_(dim), metric_(metric) {}

  uint32_t dim() const noexcept { return dim_; }
  Metric metric() const noexcept { return metric_; }
  size_t size() const noexcept { return count_; }

  /// Appends a vector; returns its id (dense, starting at 0).
  uint32_t Add(std::span<const float> v);

  /// Appends many row-major vectors at once.
  void AddBatch(std::span<const float> vectors);

  std::span<const float> vector(uint32_t id) const {
    return {data_.data() + static_cast<size_t>(id) * dim_, dim_};
  }

  /// Exact top-k by linear scan, sorted ascending by distance.
  std::vector<Scored> Search(std::span<const float> query, size_t k) const;

 private:
  uint32_t dim_;
  Metric metric_;
  size_t count_ = 0;
  std::vector<float> data_;
};

}  // namespace dhnsw
