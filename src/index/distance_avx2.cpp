// AVX2+FMA kernel tier. This translation unit is compiled with
// -mavx2 -mfma (see src/index/CMakeLists.txt); nothing here may be called
// unless cpuid reported AVX2+FMA — the dispatcher in distance.cpp checks.
//
// Accumulation: 4 independent 8-lane accumulators in the main loop (breaking
// the FMA latency chain), reduced pairwise — balanced partial sums that stay
// within the 4-ULP parity budget against the 8-stripe scalar reference.
#if defined(DHNSW_HAVE_AVX2)

#include <immintrin.h>

#include "index/distance_kernels.h"

namespace dhnsw::detail {
namespace {

/// Pairwise-tree horizontal sum: ((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7)),
/// matching the scalar reference's stripe-reduction order.
inline float ReduceAdd8(__m256 v) noexcept {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  const __m128 lo2 = _mm_hadd_ps(lo, lo);   // (0+1, 2+3, ..)
  const __m128 lo1 = _mm_hadd_ps(lo2, lo2); // ((0+1)+(2+3), ..)
  const __m128 hi2 = _mm_hadd_ps(hi, hi);
  const __m128 hi1 = _mm_hadd_ps(hi2, hi2);
  return _mm_cvtss_f32(_mm_add_ss(lo1, hi1));
}

float L2SqAvx2(const float* a, const float* b, size_t n) noexcept {
  __m256 acc0 = _mm256_setzero_ps(), acc1 = _mm256_setzero_ps();
  __m256 acc2 = _mm256_setzero_ps(), acc3 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256 d0 = _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    const __m256 d1 = _mm256_sub_ps(_mm256_loadu_ps(a + i + 8), _mm256_loadu_ps(b + i + 8));
    const __m256 d2 = _mm256_sub_ps(_mm256_loadu_ps(a + i + 16), _mm256_loadu_ps(b + i + 16));
    const __m256 d3 = _mm256_sub_ps(_mm256_loadu_ps(a + i + 24), _mm256_loadu_ps(b + i + 24));
    acc0 = _mm256_fmadd_ps(d0, d0, acc0);
    acc1 = _mm256_fmadd_ps(d1, d1, acc1);
    acc2 = _mm256_fmadd_ps(d2, d2, acc2);
    acc3 = _mm256_fmadd_ps(d3, d3, acc3);
  }
  for (; i + 8 <= n; i += 8) {
    const __m256 d = _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    acc0 = _mm256_fmadd_ps(d, d, acc0);
  }
  float sum = ReduceAdd8(_mm256_add_ps(_mm256_add_ps(acc0, acc1),
                                       _mm256_add_ps(acc2, acc3)));
  for (; i < n; ++i) {
    const float d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

float IpAvx2(const float* a, const float* b, size_t n) noexcept {
  __m256 acc0 = _mm256_setzero_ps(), acc1 = _mm256_setzero_ps();
  __m256 acc2 = _mm256_setzero_ps(), acc3 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i), acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8), _mm256_loadu_ps(b + i + 8), acc1);
    acc2 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 16), _mm256_loadu_ps(b + i + 16), acc2);
    acc3 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 24), _mm256_loadu_ps(b + i + 24), acc3);
  }
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i), acc0);
  }
  float sum = ReduceAdd8(_mm256_add_ps(_mm256_add_ps(acc0, acc1),
                                       _mm256_add_ps(acc2, acc3)));
  for (; i < n; ++i) sum += a[i] * b[i];
  return -sum;
}

float CosineAvx2(const float* a, const float* b, size_t n) noexcept {
  __m256 dot0 = _mm256_setzero_ps(), dot1 = _mm256_setzero_ps();
  __m256 na0 = _mm256_setzero_ps(), na1 = _mm256_setzero_ps();
  __m256 nb0 = _mm256_setzero_ps(), nb1 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256 va0 = _mm256_loadu_ps(a + i), vb0 = _mm256_loadu_ps(b + i);
    const __m256 va1 = _mm256_loadu_ps(a + i + 8), vb1 = _mm256_loadu_ps(b + i + 8);
    dot0 = _mm256_fmadd_ps(va0, vb0, dot0);
    na0 = _mm256_fmadd_ps(va0, va0, na0);
    nb0 = _mm256_fmadd_ps(vb0, vb0, nb0);
    dot1 = _mm256_fmadd_ps(va1, vb1, dot1);
    na1 = _mm256_fmadd_ps(va1, va1, na1);
    nb1 = _mm256_fmadd_ps(vb1, vb1, nb1);
  }
  for (; i + 8 <= n; i += 8) {
    const __m256 va = _mm256_loadu_ps(a + i), vb = _mm256_loadu_ps(b + i);
    dot0 = _mm256_fmadd_ps(va, vb, dot0);
    na0 = _mm256_fmadd_ps(va, va, na0);
    nb0 = _mm256_fmadd_ps(vb, vb, nb0);
  }
  float dot = ReduceAdd8(_mm256_add_ps(dot0, dot1));
  float na = ReduceAdd8(_mm256_add_ps(na0, na1));
  float nb = ReduceAdd8(_mm256_add_ps(nb0, nb1));
  for (; i < n; ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  return FinishCosine(dot, na, nb);
}

}  // namespace

const KernelTable& Avx2Kernels() noexcept {
  static constexpr KernelTable table = {
      SimdTier::kAvx2,
      &L2SqAvx2,
      &IpAvx2,
      &CosineAvx2,
      &GatherImpl<&L2SqAvx2>,
      &GatherImpl<&IpAvx2>,
      &GatherImpl<&CosineAvx2>,
      &RowsImpl<&L2SqAvx2>,
      &RowsImpl<&IpAvx2>,
      &RowsImpl<&CosineAvx2>,
      &AdcAvx2Body,
      &AdcGatherImpl<&AdcAvx2Body>,
      &AdcRowsImpl<&AdcAvx2Body>,
  };
  return table;
}

}  // namespace dhnsw::detail

#endif  // DHNSW_HAVE_AVX2
