// Locality-sensitive hashing index (signed random projections) — the second
// classical baseline of the paper's §2.1 [7].
//
// L hash tables, each with K random hyperplanes: a vector's bucket in table
// t is the K-bit sign pattern of its projections. A query gathers the
// candidates in its bucket across all tables (optionally multiprobing
// Hamming-1 neighbor buckets) and re-ranks them exactly. Recall rises with
// L and probes; cost rises with candidate count.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/topk.h"
#include "index/distance.h"

namespace dhnsw {

struct LshOptions {
  uint32_t num_tables = 8;   ///< L
  uint32_t num_bits = 12;    ///< K (<= 63)
  uint32_t multiprobe = 0;   ///< also probe buckets at Hamming distance 1..this (0 or 1)
  uint64_t seed = 0x15489ULL;
};

class LshIndex {
 public:
  LshIndex(uint32_t dim, LshOptions options = {});

  uint32_t dim() const noexcept { return dim_; }
  size_t size() const noexcept { return count_; }

  /// Builds the tables over row-major `vectors` (replaces previous contents).
  void Build(std::span<const float> vectors);

  /// Top-k search; results sorted ascending by L2^2 distance. `candidates`
  /// (if non-null) receives the number of re-ranked candidates.
  std::vector<Scored> Search(std::span<const float> query, size_t k,
                             size_t* candidates = nullptr) const;

 private:
  uint64_t HashInto(std::span<const float> v, uint32_t table) const;

  uint32_t dim_;
  LshOptions options_;
  size_t count_ = 0;
  std::vector<float> data_;                 ///< row-major copy
  std::vector<float> hyperplanes_;          ///< L * K * dim
  std::vector<std::unordered_map<uint64_t, std::vector<uint32_t>>> tables_;
};

}  // namespace dhnsw
