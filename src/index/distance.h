// Distance kernels for vector search. All kernels return a value where
// *smaller is closer*, so inner product and cosine are negated/flipped into
// distances.
//
// The kernels come in ISA tiers (scalar / NEON / AVX2+FMA / AVX-512) compiled
// into separate translation units and selected ONCE at startup via cpuid
// (`ActiveKernels()`). Setting the environment variable `DHNSW_FORCE_SCALAR`
// to anything but "0" pins the process to the scalar tier — the parity tests
// and CI run both ways.
//
// Four kernel shapes:
//  - pair:    one (query, vector) pair -> one distance,
//  - gather:  one query against n rows of a row-major base matrix addressed
//             by id (out[i] = dist(q, base + ids[i]*dim)), with software
//             prefetch of upcoming rows — the HNSW neighbor-expansion shape,
//  - rows:    one query against n *contiguous* rows — the flat-scan shape,
//  - adc:     asymmetric distance computation for product-quantized codes —
//             sum m per-subquantizer lookup-table entries selected by an
//             m-byte code (lut is m x 256 row-major, built per query by
//             ProductQuantizer::BuildLut*). Metric-agnostic: the metric is
//             baked into the LUT values. Comes in pair/gather/rows shapes
//             like the float kernels.
//
// Numerical contract (holds for every tier):
//  - all tiers accumulate in balanced partial sums (8/16 stripes), so any two
//    tiers agree within a few ULPs; the parity suite enforces <= 4 ULPs
//    against the scalar reference (use `UlpDiff` for principled comparison),
//  - within one tier, gather/rows results are bit-identical to the pair
//    kernel applied per element,
//  - the adc kernels are *bit-identical across every tier* (stronger than
//    the 4-ULP pair budget): each tier accumulates the m lookups in the same
//    8 balanced stripes and reduces them in the same pairwise order, so a
//    PQ-scored search gives byte-identical results under DHNSW_FORCE_SCALAR,
//  - cosine zero-vector convention: whenever the norm product is not a
//    positive finite number (either vector has zero norm, or the product
//    underflows/overflows to 0/inf/NaN), the distance is exactly 1.0f —
//    "maximally unrelated", matching an orthogonal pair. Every tier
//    implements this by checking `!(norm_product > 0) || isinf` on the same
//    float expression sqrt(na)*sqrt(nb).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace dhnsw {

enum class Metric : uint8_t {
  kL2,            ///< squared Euclidean distance
  kInnerProduct,  ///< -(a . b): maximizing IP == minimizing this
  kCosine,        ///< 1 - cos(a, b)
};

std::string_view MetricName(Metric metric) noexcept;

/// ISA tier of a kernel table. Order = preference (higher is wider).
enum class SimdTier : uint8_t { kScalar = 0, kNeon = 1, kAvx2 = 2, kAvx512 = 3 };

std::string_view SimdTierName(SimdTier tier) noexcept;

/// Raw kernel signatures — pointer + dim, no span bookkeeping in hot loops.
using PairKernel = float (*)(const float* a, const float* b, size_t dim) noexcept;
using GatherKernel = void (*)(const float* query, const float* base, size_t dim,
                              const uint32_t* ids, size_t n, float* out) noexcept;
using RowsKernel = void (*)(const float* query, const float* rows, size_t dim,
                            size_t n, float* out) noexcept;

/// ADC signatures. `lut` is the per-query table, m x 256 row-major floats;
/// `code`/`codes` are m-byte PQ codes (row-major for the batched shapes).
/// Returns/writes the LUT sum; the caller adds any metric bias (IP) itself.
using AdcKernel = float (*)(const float* lut, const uint8_t* code,
                            size_t m) noexcept;
using AdcGatherKernel = void (*)(const float* lut, const uint8_t* codes,
                                 size_t m, const uint32_t* ids, size_t n,
                                 float* out) noexcept;
using AdcRowsKernel = void (*)(const float* lut, const uint8_t* codes, size_t m,
                               size_t n, float* out) noexcept;

/// One ISA tier's full kernel set. Hot paths hoist the table (or individual
/// function pointers) out of their loops once instead of re-dispatching.
struct KernelTable {
  SimdTier tier;
  PairKernel l2, ip, cosine;
  GatherKernel l2_gather, ip_gather, cosine_gather;
  RowsKernel l2_rows, ip_rows, cosine_rows;
  AdcKernel adc;
  AdcGatherKernel adc_gather;
  AdcRowsKernel adc_rows;

  PairKernel Pair(Metric m) const noexcept {
    switch (m) {
      case Metric::kL2: return l2;
      case Metric::kInnerProduct: return ip;
      case Metric::kCosine: return cosine;
    }
    return l2;
  }
  GatherKernel Gather(Metric m) const noexcept {
    switch (m) {
      case Metric::kL2: return l2_gather;
      case Metric::kInnerProduct: return ip_gather;
      case Metric::kCosine: return cosine_gather;
    }
    return l2_gather;
  }
  RowsKernel Rows(Metric m) const noexcept {
    switch (m) {
      case Metric::kL2: return l2_rows;
      case Metric::kInnerProduct: return ip_rows;
      case Metric::kCosine: return cosine_rows;
    }
    return l2_rows;
  }
};

/// The tier selected once at startup: the widest tier this binary was
/// compiled with AND this CPU supports, unless DHNSW_FORCE_SCALAR pins it.
const KernelTable& ActiveKernels() noexcept;
SimdTier ActiveTier() noexcept;

/// Every tier usable in this process (compiled in and CPU-supported), scalar
/// first. The parity suite iterates this.
std::span<const SimdTier> AvailableTiers() noexcept;
const KernelTable& KernelsForTier(SimdTier tier) noexcept;

/// --- span-based compatibility API (routes through ActiveKernels) ---

float L2Sq(std::span<const float> a, std::span<const float> b) noexcept;
float InnerProduct(std::span<const float> a, std::span<const float> b) noexcept;
float CosineDistance(std::span<const float> a, std::span<const float> b) noexcept;

/// Dispatches on `metric`. Hot loops should hoist the dispatch by grabbing
/// ActiveKernels() once; this is for generic code paths.
float Distance(Metric metric, std::span<const float> a, std::span<const float> b) noexcept;

/// Function-pointer form for hoisting dispatch out of loops.
using DistanceFn = float (*)(std::span<const float>, std::span<const float>) noexcept;
DistanceFn DistanceFunction(Metric metric) noexcept;

/// Batched one-to-many scoring: out[i] = dist(query, base + ids[i]*dim) for
/// each of ids.size() rows of the row-major `base` matrix, prefetching
/// upcoming rows. Generic entry point; hot loops hoist via ActiveKernels().
void DistanceBatch(Metric metric, std::span<const float> query, const float* base,
                   size_t dim, std::span<const uint32_t> ids, float* out) noexcept;

/// --- ULP comparison helpers (parity tests, benches) ---

/// Distance in units-in-the-last-place between two floats: 0 for bitwise
/// equality (also +0 vs -0), saturating at INT32_MAX when either is NaN (two
/// NaNs compare as 0 apart) or the values straddle infinity.
int32_t UlpDiff(float a, float b) noexcept;

/// True when UlpDiff(a, b) <= max_ulps.
bool UlpClose(float a, float b, int32_t max_ulps) noexcept;

}  // namespace dhnsw
