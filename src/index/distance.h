// Distance kernels for vector search. All kernels return a value where
// *smaller is closer*, so inner product and cosine are negated/flipped into
// distances. Plain loops; the compiler auto-vectorizes at -O2/-O3.
#pragma once

#include <cstddef>
#include <span>
#include <string_view>

namespace dhnsw {

enum class Metric : uint8_t {
  kL2,            ///< squared Euclidean distance
  kInnerProduct,  ///< -(a . b): maximizing IP == minimizing this
  kCosine,        ///< 1 - cos(a, b)
};

std::string_view MetricName(Metric metric) noexcept;

float L2Sq(std::span<const float> a, std::span<const float> b) noexcept;
float InnerProduct(std::span<const float> a, std::span<const float> b) noexcept;
float CosineDistance(std::span<const float> a, std::span<const float> b) noexcept;

/// Dispatches on `metric`. Hot loops should hoist the switch by calling the
/// specific kernel; this is for generic code paths.
float Distance(Metric metric, std::span<const float> a, std::span<const float> b) noexcept;

/// Function-pointer form for hoisting dispatch out of loops.
using DistanceFn = float (*)(std::span<const float>, std::span<const float>) noexcept;
DistanceFn DistanceFunction(Metric metric) noexcept;

}  // namespace dhnsw
