// Product quantization for compressed cluster payloads (ivf-hnsw recipe,
// ROADMAP "PQ-compressed cluster payloads"): vectors are encoded as m-byte
// codes of their *residual* against the owning cluster's representative, one
// shared codebook (m subquantizers x 256 centroids x dsub floats) trained by
// k-means over sampled residuals. Search scores codes with asymmetric
// distance computation (ADC): per (query, cluster) a LUT of m x 256 partial
// distances is built once, then every candidate costs m table lookups — the
// `adc*` kernels in the dispatch table (distance.h).
//
// Exactness: for L2 the ADC sum equals the squared distance between the
// query and the *reconstructed* vector (centroid + decoded residual), so the
// only error is quantization error. For inner product the LUT carries the
// residual term and BuildAdcLut returns the -(q . centroid) bias to add to
// every sum. Cosine is not supported over PQ codes (the norm of the
// reconstruction is not decomposable per subquantizer); callers reject it.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "common/topk.h"
#include "index/distance.h"

namespace dhnsw {

/// One shared codebook: m subquantizers, 256 centroids each, over
/// dsub = dim/m float slices. Trained once per engine build on residuals;
/// serialized into the meta-HNSW blob so every compute node gets it at
/// connect time.
class ProductQuantizer {
 public:
  static constexpr uint32_t kKs = 256;  ///< centroids per subquantizer (u8 codes)

  /// Trains the codebook with seeded Lloyd's k-means per subspace.
  /// `residuals` is n x dim row-major; n may be smaller than kKs (centroid
  /// slots are then seeded cyclically from the samples). `m` must divide
  /// `dim` and n must be > 0.
  static Result<ProductQuantizer> Train(uint32_t dim, uint32_t m,
                                        std::span<const float> residuals,
                                        uint32_t iterations, uint64_t seed);

  uint32_t dim() const noexcept { return dim_; }
  uint32_t m() const noexcept { return m_; }
  uint32_t dsub() const noexcept { return dim_ / m_; }
  size_t code_size() const noexcept { return m_; }          ///< bytes per vector
  size_t lut_floats() const noexcept { return static_cast<size_t>(m_) * kKs; }

  /// The full centroid table, m * kKs * dsub floats; subquantizer j's kKs
  /// codewords are the contiguous rows at [j*kKs*dsub, (j+1)*kKs*dsub).
  std::span<const float> centroids() const noexcept { return centroids_; }
  std::span<const float> codewords(uint32_t sub) const noexcept {
    const size_t block = static_cast<size_t>(kKs) * dsub();
    return std::span<const float>(centroids_).subspan(sub * block, block);
  }

  /// Nearest-codeword encode of one residual (dim floats) into m bytes.
  void Encode(std::span<const float> residual, std::span<uint8_t> code) const;
  /// Reconstructs the residual approximation from a code.
  void Decode(std::span<const uint8_t> code, std::span<float> residual) const;

  /// Builds the per-(query, cluster) ADC LUT (lut_floats() floats) and
  /// returns the additive bias for this metric: 0 for L2, -(q . centroid)
  /// for inner product. `scratch` must hold dim floats.
  /// adc(lut, code) + bias == Pair(metric)(query, centroid + Decode(code))
  /// up to summation-order ULPs. Cosine is a caller error (asserts).
  float BuildAdcLut(Metric metric, std::span<const float> query,
                    std::span<const float> centroid, float* lut,
                    float* scratch) const;

  /// Codebook body serialization (framed + CRC'd by the cluster-blob
  /// extension codec, serialize/cluster_blob.h).
  std::vector<uint8_t> ToBytes() const;
  static Result<ProductQuantizer> FromBytes(std::span<const uint8_t> bytes);

 private:
  ProductQuantizer(uint32_t dim, uint32_t m, std::vector<float> centroids)
      : dim_(dim), m_(m), centroids_(std::move(centroids)) {}

  uint32_t dim_ = 0;
  uint32_t m_ = 0;
  std::vector<float> centroids_;  ///< m * kKs * dsub
};

/// A cluster decoded from a PQ *prefix* read: the graph (ids, levels,
/// adjacency) plus PQ codes — no float vectors. Adjacency is stored flat
/// (CSR-style) so the ADC graph search chases no nested-vector pointers.
struct PqCluster {
  uint32_t partition_id = 0;
  uint32_t dim = 0;
  uint32_t count = 0;
  uint32_t m = 0;            ///< PQ subquantizers (code bytes per vector)
  uint32_t hnsw_m = 0;       ///< HNSW M of the serialized graph
  uint32_t entry_point = 0;
  uint32_t max_level = 0;
  Metric metric = Metric::kL2;
  std::vector<uint32_t> global_ids;   ///< local id -> global id
  std::vector<uint32_t> levels;       ///< local id -> top layer
  std::vector<uint32_t> span_index;   ///< node -> first (node,layer) slot
  std::vector<uint32_t> span_offsets; ///< slot -> start in neighbor_ids; +1 sentinel
  std::vector<uint32_t> neighbor_ids; ///< flat adjacency
  std::vector<uint8_t> codes;         ///< count x m
  /// Offset of the float-vector rows inside the *payload* — rerank reads
  /// fetch raw vector i at blob_offset + pq_head_size + i*dim*4, where
  /// pq_head_size = header + extensions + vectors_offset.
  uint64_t vectors_offset = 0;

  std::span<const uint32_t> neighbors(uint32_t id, uint32_t layer) const noexcept {
    const uint32_t slot = span_index[id] + layer;
    return std::span<const uint32_t>(neighbor_ids)
        .subspan(span_offsets[slot], span_offsets[slot + 1] - span_offsets[slot]);
  }

  size_t memory_bytes() const noexcept {
    return codes.size() + 4 * (global_ids.size() + levels.size() +
                               span_index.size() + span_offsets.size() +
                               neighbor_ids.size());
  }
};

/// ADC search over a PqCluster. Emits up to `k` results ordered by ascending
/// (distance, local id); distances are ADC sums + `bias`. `flat_scan` scores
/// every code (naive / kFlatScan sub-search); otherwise a greedy layered
/// descent plus an ef-bounded layer-0 expansion mirrors HnswIndex::Search.
/// Deterministic for fixed inputs; uses thread-local scratch (safe to call
/// from pool workers, not reentrant).
void SearchPqCluster(const PqCluster& cluster, const float* lut, float bias,
                     uint32_t k, uint32_t ef, bool flat_scan,
                     std::vector<Scored>* out);

}  // namespace dhnsw
