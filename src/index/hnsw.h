// Hierarchical Navigable Small World graph index, implemented from scratch
// after Malkov & Yashunin (TPAMI 2018) [paper ref 20].
//
// Supported:
//  - dynamic insertion with exponentially distributed level assignment,
//  - neighbor selection by the diversity heuristic (paper's Algorithm 4),
//    with the `extend_candidates` / `keep_pruned_connections` switches,
//  - layered greedy search with an `ef` dynamic candidate list,
//  - an optional hard cap on the top level (d-HNSW's meta-HNSW is exactly a
//    3-layer HNSW, paper §3.1),
//  - full structural introspection so the serializer can lay the graph out
//    for one-sided RDMA access.
//
// Hot path: all distance evaluations go through the startup-dispatched SIMD
// kernel table (index/distance.h), neighbor lists are scored with the batched
// one-to-many kernel (dispatch hoisted out of every loop), and each search
// leases a pooled SearchScratch (epoch-stamped visited list + reusable
// heaps), so a steady-state Search performs no heap allocations.
//
// Concurrency: `Search` is const and safe to call from many threads
// concurrently; `Add` requires external exclusion (d-HNSW serializes inserts
// per partition, so the index itself stays single-writer). The bulk-build
// path `AddBatchParallel` is the one exception: it inserts a whole batch
// concurrently under per-node neighbor-list locks (see its contract below);
// no other mutation — and no Search — may run against the index while a
// batch is in flight.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/topk.h"
#include "index/distance.h"
#include "index/search_scratch.h"

namespace dhnsw {

class ThreadPool;       // common/thread_pool.h
struct HnswNodeLocks;   // per-node neighbor-list mutexes (hnsw.cpp)

struct HnswOptions {
  uint32_t M = 16;                ///< max out-degree on layers > 0 (layer 0: 2M)
  uint32_t ef_construction = 200; ///< candidate-list width during insertion
  Metric metric = Metric::kL2;
  uint64_t seed = 0x5eedULL;      ///< level-assignment RNG seed
  /// If set, levels are clamped so the graph has at most `max_level+1`
  /// layers. d-HNSW's meta-HNSW uses max_level = 2 (three layers).
  std::optional<uint32_t> max_level;
  bool extend_candidates = false;     ///< Algorithm 4's extendCandidates flag
  bool keep_pruned_connections = true;///< Algorithm 4's keepPrunedConnections
};

class HnswIndex {
 public:
  HnswIndex(uint32_t dim, HnswOptions options = {});

  uint32_t dim() const noexcept { return dim_; }
  const HnswOptions& options() const noexcept { return options_; }
  size_t size() const noexcept { return levels_.size(); }
  bool empty() const noexcept { return levels_.empty(); }

  /// Max out-degree at `layer` (2M at layer 0, M above — HNSW convention).
  uint32_t MaxDegree(uint32_t layer) const noexcept {
    return layer == 0 ? 2 * options_.M : options_.M;
  }

  /// Inserts a vector; returns its dense id. O(log n) expected.
  uint32_t Add(std::span<const float> v);

  /// Inserts a vector at a forced level (used by deserialization to rebuild a
  /// structurally identical graph, and by tests).
  uint32_t AddWithLevel(std::span<const float> v, uint32_t level);

  /// Batch-parallel bulk insertion (build path). Appends `count` vectors
  /// stored row-major in `rows` (rows.size() == count * dim). Levels are
  /// drawn from the index RNG up-front in row order, so the level SEQUENCE
  /// is bit-identical to what `count` sequential Add calls would draw; the
  /// links are then built concurrently on `pool` under per-node
  /// neighbor-list locks, so the graph STRUCTURE depends on insert
  /// interleaving (recall is statistically unchanged; bytes are not
  /// reproducible across runs). Falls back to the exact sequential Add loop
  /// — and its reproducible graphs — when `pool` is null or single-threaded,
  /// when `count` < kParallelBatchMin, or when extend_candidates is set
  /// (candidate extension reads foreign neighbor lists mid-selection, which
  /// the one-lock-at-a-time discipline does not cover).
  /// The caller must not run any other operation on the index while the
  /// batch is in flight. Returns the id of the first inserted row.
  static constexpr size_t kParallelBatchMin = 128;
  uint32_t AddBatchParallel(std::span<const float> rows, size_t count, ThreadPool* pool);

  /// Top-k approximate search with dynamic candidate list `ef`
  /// (ef is clamped up to k). Results sorted ascending by distance.
  std::vector<Scored> Search(std::span<const float> query, size_t k, uint32_t ef) const;

  /// Allocation-free form: results replace `out`'s contents, reusing its
  /// capacity. After the first few queries warmed the scratch pool and
  /// `out`, a call performs no heap allocations at all.
  void Search(std::span<const float> query, size_t k, uint32_t ef,
              std::vector<Scored>* out) const;

  /// --- structural introspection (serializer, tests, layout code) ---
  uint32_t entry_point() const noexcept { return entry_point_; }
  int32_t max_level_in_graph() const noexcept { return max_level_; }
  uint32_t level(uint32_t id) const { return levels_[id]; }
  std::span<const uint32_t> neighbors(uint32_t id, uint32_t layer) const;
  std::span<const float> vector(uint32_t id) const {
    return {vectors_.data() + static_cast<size_t>(id) * dim_, dim_};
  }
  std::span<const float> vectors() const noexcept { return vectors_; }

  /// Structural invariant check (degrees within bounds, links bidirectional
  /// where required, ids valid, entry point on top level). For tests.
  Status Validate() const;

  /// Raw adjacency mutation used by the deserializer: replaces the neighbor
  /// list wholesale. `ids` must be valid and fit the layer's degree cap.
  Status SetNeighbors(uint32_t id, uint32_t layer, std::span<const uint32_t> ids);

  /// Reconstructs a structurally *identical* graph from serialized parts —
  /// no insertion heuristics are re-run. `links[id][layer]` must satisfy the
  /// same invariants Validate() checks; on violation an error is returned.
  static Result<HnswIndex> FromRaw(uint32_t dim, HnswOptions options,
                                   std::vector<float> vectors,
                                   std::vector<uint32_t> levels,
                                   std::vector<std::vector<std::vector<uint32_t>>> links,
                                   uint32_t entry_point);

 private:
  /// Greedy walk on one layer from `entry`, returning the closest node found
  /// (ef = 1 search; used for the descent through upper layers). Each hop
  /// scores the full neighbor list with one batched-kernel call.
  uint32_t GreedyClosest(const float* query, uint32_t entry, uint32_t layer,
                         SearchScratch& scratch) const;

  /// Algorithm 2: layer-restricted best-first search; leaves up to `ef`
  /// candidates in scratch.best. Unvisited neighbors are staged into
  /// scratch.ids and scored with one batched-kernel call per expansion.
  void SearchLayerInto(const float* query, uint32_t entry, uint32_t ef,
                       uint32_t layer, SearchScratch& scratch) const;

  /// Algorithm 4: diversity-preserving neighbor selection into `*out`
  /// (sorted candidates with their distances kept, so callers can reuse the
  /// scores). `base_id` is the node the links are being chosen for;
  /// candidate extension must never reintroduce it (back-links would create
  /// self loops). `candidates` is a scratch working set and is clobbered.
  void SelectNeighbors(uint32_t base_id, const float* base,
                       std::vector<Scored>& candidates, uint32_t m,
                       uint32_t layer, SearchScratch& scratch,
                       std::vector<Scored>* out) const;

  /// --- batch-parallel insert internals (AddBatchParallel) ---
  /// All *Sync helpers read neighbor lists only as lock-held snapshots
  /// (copied into scratch.nb_snapshot) and never hold two node locks at
  /// once, so the lock order is trivially acyclic.
  /// Copies links_[id][layer] into *out under the node's lock.
  void SnapshotNeighborsSync(uint32_t id, uint32_t layer, HnswNodeLocks& locks,
                             std::vector<uint32_t>* out) const;
  uint32_t GreedyClosestSync(const float* query, uint32_t entry, uint32_t layer,
                             SearchScratch& scratch, HnswNodeLocks& locks) const;
  void SearchLayerIntoSync(const float* query, uint32_t entry, uint32_t ef,
                           uint32_t layer, SearchScratch& scratch,
                           HnswNodeLocks& locks) const;
  /// Full phase-1 + phase-2 insertion of a pre-allocated node (vector,
  /// level, and empty adjacency rows already published).
  void InsertLinkedSync(uint32_t id, uint32_t level, SearchScratch& scratch,
                        HnswNodeLocks& locks, std::mutex& top_mutex);
  /// Bidirectional back-link with overflow shrink, entirely under the
  /// neighbor's lock: the candidate set is the list as snapshotted in this
  /// lock hold, so two concurrent inserts shrinking the same node each
  /// select against the list as it actually was at their turn.
  void LinkBackSync(uint32_t id, const Scored& sel, uint32_t layer,
                    SearchScratch& scratch, HnswNodeLocks& locks);

  /// Draws a level ~ floor(-ln(U) * 1/ln(M)), clamped by options_.max_level.
  uint32_t DrawLevel();

  const float* RowPtr(uint32_t id) const noexcept {
    return vectors_.data() + static_cast<size_t>(id) * dim_;
  }

  uint32_t dim_;
  HnswOptions options_;
  PairKernel pair_;      ///< hoisted (metric, tier) pairwise kernel
  GatherKernel gather_;  ///< hoisted one-to-many kernel
  double level_lambda_;  ///< 1 / ln(M)
  Xoshiro256 rng_;

  std::vector<float> vectors_;          ///< row-major, id-indexed
  std::vector<uint32_t> levels_;        ///< top layer of each node
  /// links_[id][layer] = neighbor ids. Outer indexed by node, inner by layer
  /// (0..levels_[id]).
  std::vector<std::vector<std::vector<uint32_t>>> links_;

  uint32_t entry_point_ = 0;
  int32_t max_level_ = -1;  ///< -1 while empty

  /// Scratch pool for the allocation-free search path; grows to the peak
  /// number of concurrent searches, then stops allocating.
  mutable SearchScratchPool scratch_pool_;
};

}  // namespace dhnsw
