// NEON kernel tier for aarch64, where NEON is baseline (no extra -m flags
// and no cpuid gate needed). 4 independent 4-lane accumulators, reduced
// pairwise via vpaddq — balanced partial sums within the 4-ULP parity budget
// against the scalar reference.
#if defined(DHNSW_HAVE_NEON)

#include <arm_neon.h>

#include "index/distance_kernels.h"

namespace dhnsw::detail {
namespace {

/// Pairwise horizontal sum: (l0+l1) + (l2+l3).
inline float ReduceAdd4(float32x4_t v) noexcept {
  const float32x2_t sum = vadd_f32(vget_low_f32(v), vget_high_f32(v));
  return vget_lane_f32(vpadd_f32(sum, sum), 0);
}

float L2SqNeon(const float* a, const float* b, size_t n) noexcept {
  float32x4_t acc0 = vdupq_n_f32(0.0f), acc1 = vdupq_n_f32(0.0f);
  float32x4_t acc2 = vdupq_n_f32(0.0f), acc3 = vdupq_n_f32(0.0f);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const float32x4_t d0 = vsubq_f32(vld1q_f32(a + i), vld1q_f32(b + i));
    const float32x4_t d1 = vsubq_f32(vld1q_f32(a + i + 4), vld1q_f32(b + i + 4));
    const float32x4_t d2 = vsubq_f32(vld1q_f32(a + i + 8), vld1q_f32(b + i + 8));
    const float32x4_t d3 = vsubq_f32(vld1q_f32(a + i + 12), vld1q_f32(b + i + 12));
    acc0 = vfmaq_f32(acc0, d0, d0);
    acc1 = vfmaq_f32(acc1, d1, d1);
    acc2 = vfmaq_f32(acc2, d2, d2);
    acc3 = vfmaq_f32(acc3, d3, d3);
  }
  for (; i + 4 <= n; i += 4) {
    const float32x4_t d = vsubq_f32(vld1q_f32(a + i), vld1q_f32(b + i));
    acc0 = vfmaq_f32(acc0, d, d);
  }
  float sum = ReduceAdd4(vaddq_f32(vaddq_f32(acc0, acc1), vaddq_f32(acc2, acc3)));
  for (; i < n; ++i) {
    const float d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

float IpNeon(const float* a, const float* b, size_t n) noexcept {
  float32x4_t acc0 = vdupq_n_f32(0.0f), acc1 = vdupq_n_f32(0.0f);
  float32x4_t acc2 = vdupq_n_f32(0.0f), acc3 = vdupq_n_f32(0.0f);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = vfmaq_f32(acc0, vld1q_f32(a + i), vld1q_f32(b + i));
    acc1 = vfmaq_f32(acc1, vld1q_f32(a + i + 4), vld1q_f32(b + i + 4));
    acc2 = vfmaq_f32(acc2, vld1q_f32(a + i + 8), vld1q_f32(b + i + 8));
    acc3 = vfmaq_f32(acc3, vld1q_f32(a + i + 12), vld1q_f32(b + i + 12));
  }
  for (; i + 4 <= n; i += 4) {
    acc0 = vfmaq_f32(acc0, vld1q_f32(a + i), vld1q_f32(b + i));
  }
  float sum = ReduceAdd4(vaddq_f32(vaddq_f32(acc0, acc1), vaddq_f32(acc2, acc3)));
  for (; i < n; ++i) sum += a[i] * b[i];
  return -sum;
}

float CosineNeon(const float* a, const float* b, size_t n) noexcept {
  float32x4_t dot0 = vdupq_n_f32(0.0f), dot1 = vdupq_n_f32(0.0f);
  float32x4_t na0 = vdupq_n_f32(0.0f), na1 = vdupq_n_f32(0.0f);
  float32x4_t nb0 = vdupq_n_f32(0.0f), nb1 = vdupq_n_f32(0.0f);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const float32x4_t va0 = vld1q_f32(a + i), vb0 = vld1q_f32(b + i);
    const float32x4_t va1 = vld1q_f32(a + i + 4), vb1 = vld1q_f32(b + i + 4);
    dot0 = vfmaq_f32(dot0, va0, vb0);
    na0 = vfmaq_f32(na0, va0, va0);
    nb0 = vfmaq_f32(nb0, vb0, vb0);
    dot1 = vfmaq_f32(dot1, va1, vb1);
    na1 = vfmaq_f32(na1, va1, va1);
    nb1 = vfmaq_f32(nb1, vb1, vb1);
  }
  float dot = ReduceAdd4(vaddq_f32(dot0, dot1));
  float na = ReduceAdd4(vaddq_f32(na0, na1));
  float nb = ReduceAdd4(vaddq_f32(nb0, nb1));
  for (; i < n; ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  return FinishCosine(dot, na, nb);
}

}  // namespace

const KernelTable& NeonKernels() noexcept {
  static constexpr KernelTable table = {
      SimdTier::kNeon,
      &L2SqNeon,
      &IpNeon,
      &CosineNeon,
      &GatherImpl<&L2SqNeon>,
      &GatherImpl<&IpNeon>,
      &GatherImpl<&CosineNeon>,
      &RowsImpl<&L2SqNeon>,
      &RowsImpl<&IpNeon>,
      &RowsImpl<&CosineNeon>,
      &AdcScalarBody,
      &AdcGatherImpl<&AdcScalarBody>,
      &AdcRowsImpl<&AdcScalarBody>,
  };
  return table;
}

}  // namespace dhnsw::detail

#endif  // DHNSW_HAVE_NEON
