#include "index/flat_index.h"

#include <cassert>

namespace dhnsw {

uint32_t FlatIndex::Add(std::span<const float> v) {
  assert(v.size() == dim_);
  data_.insert(data_.end(), v.begin(), v.end());
  return static_cast<uint32_t>(count_++);
}

void FlatIndex::AddBatch(std::span<const float> vectors) {
  assert(vectors.size() % dim_ == 0);
  data_.insert(data_.end(), vectors.begin(), vectors.end());
  count_ += vectors.size() / dim_;
}

std::vector<Scored> FlatIndex::Search(std::span<const float> query, size_t k) const {
  assert(query.size() == dim_);
  const DistanceFn dist = DistanceFunction(metric_);
  TopKHeap heap(k);
  for (size_t i = 0; i < count_; ++i) {
    const float d = dist({data_.data() + i * dim_, dim_}, query);
    heap.Push(d, static_cast<uint32_t>(i));
  }
  return heap.TakeSorted();
}

}  // namespace dhnsw
