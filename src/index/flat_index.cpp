#include "index/flat_index.h"

#include <algorithm>
#include <cassert>

namespace dhnsw {

uint32_t FlatIndex::Add(std::span<const float> v) {
  assert(v.size() == dim_);
  data_.insert(data_.end(), v.begin(), v.end());
  return static_cast<uint32_t>(count_++);
}

void FlatIndex::AddBatch(std::span<const float> vectors) {
  assert(vectors.size() % dim_ == 0);
  data_.insert(data_.end(), vectors.begin(), vectors.end());
  count_ += vectors.size() / dim_;
}

std::vector<Scored> FlatIndex::Search(std::span<const float> query, size_t k) const {
  assert(query.size() == dim_);
  // Contiguous rows: score a chunk at a time with the one-to-many kernel
  // (dispatch hoisted), then fold the chunk into the heap.
  constexpr size_t kChunk = 256;
  const RowsKernel rows = ActiveKernels().Rows(metric_);
  float dists[kChunk];
  TopKHeap heap(k);
  for (size_t i = 0; i < count_; i += kChunk) {
    const size_t n = std::min(kChunk, count_ - i);
    rows(query.data(), data_.data() + i * dim_, dim_, n, dists);
    for (size_t j = 0; j < n; ++j) {
      heap.Push(dists[j], static_cast<uint32_t>(i + j));
    }
  }
  return heap.TakeSorted();
}

}  // namespace dhnsw
