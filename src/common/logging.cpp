#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace dhnsw {
namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::mutex& LogMutex() {
  static std::mutex m;
  return m;
}
const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) noexcept { g_level.store(static_cast<int>(level)); }
LogLevel GetLogLevel() noexcept { return static_cast<LogLevel>(g_level.load()); }

void LogLine(LogLevel level, const char* file, int line, const std::string& message) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) return;
  // Strip directories from __FILE__ for readability.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  std::lock_guard<std::mutex> lock(LogMutex());
  std::fprintf(stderr, "[%s] %s:%d %s\n", LevelName(level), base, line, message.c_str());
}

}  // namespace dhnsw
