#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace dhnsw {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = num_threads == 0 ? 1 : num_threads;
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (n == 1 || workers_.size() == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);  // a throw propagates directly
    return;
  }
  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::vector<std::future<void>> futures;
  const size_t shards = std::min(n, workers_.size());
  futures.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    futures.push_back(Submit([&] {
      for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        if (failed.load(std::memory_order_relaxed)) return;
        try {
          fn(i);
        } catch (...) {
          {
            std::lock_guard<std::mutex> lock(error_mutex);
            if (first_error == nullptr) first_error = std::current_exception();
          }
          failed.store(true, std::memory_order_relaxed);
          return;
        }
      }
    }));
  }
  // Drain EVERY shard before unwinding: the shard lambdas reference this
  // frame's locals (next/failed/fn), so returning — or rethrowing — while a
  // shard still runs would leave workers touching a dead stack. The old
  // `f.get()` loop did exactly that when the first shard threw.
  for (auto& f : futures) f.wait();
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

void ThreadPool::ParallelForChunked(size_t n, size_t grain,
                                    const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  const size_t chunks = (n + grain - 1) / grain;
  ParallelFor(chunks, [&](size_t c) {
    const size_t begin = c * grain;
    fn(begin, std::min(n, begin + grain));
  });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

}  // namespace dhnsw
