#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace dhnsw {

void RunningStat::Add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStat::Reset() noexcept { *this = RunningStat(); }

void RunningStat::Merge(const RunningStat& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  // Chan et al.: combined M2 adds the between-group term delta^2 * na*nb/n.
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  mean_ += delta * nb / (na + nb);
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStat::variance() const noexcept {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

void LatencyRecorder::Add(double value_us) {
  samples_.push_back(value_us);
  sorted_ = false;
}

void LatencyRecorder::Reset() {
  samples_.clear();
  sorted_ = true;
}

void LatencyRecorder::Merge(const LatencyRecorder& other) {
  if (other.samples_.empty()) return;
  if (samples_.empty()) {
    samples_ = other.samples_;
    sorted_ = other.sorted_;
    return;
  }
  if (sorted_ && other.sorted_) {
    // Two sorted runs: one linear pass keeps the result sorted, so the next
    // percentile() query pays no O(n log n) re-sort of the merged set.
    std::vector<double> merged;
    merged.reserve(samples_.size() + other.samples_.size());
    std::merge(samples_.begin(), samples_.end(), other.samples_.begin(),
               other.samples_.end(), std::back_inserter(merged));
    samples_ = std::move(merged);
    return;
  }
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  sorted_ = false;
}

void LatencyRecorder::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double LatencyRecorder::mean() const {
  if (samples_.empty()) return 0.0;
  double total = 0.0;
  for (double s : samples_) total += s;
  return total / static_cast<double>(samples_.size());
}

double LatencyRecorder::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  const double clamped = std::clamp(p, 0.0, 100.0);
  const size_t rank = static_cast<size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(samples_.size())));
  const size_t index = rank == 0 ? 0 : rank - 1;
  return samples_[std::min(index, samples_.size() - 1)];
}

double LatencyRecorder::min() const {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  return samples_.front();
}

double LatencyRecorder::max() const {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  return samples_.back();
}

std::string FormatRow(const std::vector<std::string>& cells,
                      const std::vector<int>& widths) {
  std::string row;
  for (size_t i = 0; i < cells.size(); ++i) {
    const int width = i < widths.size() ? widths[i] : 12;
    std::string cell = cells[i];
    if (static_cast<int>(cell.size()) < width) {
      cell.insert(0, static_cast<size_t>(width) - cell.size(), ' ');
    }
    row += cell;
    if (i + 1 < cells.size()) row += "  ";
  }
  return row;
}

}  // namespace dhnsw
