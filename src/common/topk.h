// Bounded top-k selection for nearest-neighbor search.
//
// TopKHeap keeps the k smallest (distance, id) pairs seen so far using a
// max-heap: the root is the current k-th best, so a candidate worse than the
// root is rejected in O(1).
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

namespace dhnsw {

/// One scored candidate.
struct Scored {
  float distance;
  uint32_t id;

  friend bool operator<(const Scored& a, const Scored& b) noexcept {
    // Max-heap by distance; tie-break on id for determinism.
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.id < b.id;
  }
};

/// Fixed-capacity "k smallest distances" accumulator.
class TopKHeap {
 public:
  explicit TopKHeap(size_t k) : k_(k) { heap_.reserve(k + 1); }

  size_t k() const noexcept { return k_; }
  size_t size() const noexcept { return heap_.size(); }
  bool full() const noexcept { return heap_.size() >= k_; }

  /// Largest retained distance; only meaningful when !empty().
  float worst() const noexcept { return heap_.front().distance; }
  bool empty() const noexcept { return heap_.empty(); }

  /// Returns true if the candidate was retained.
  bool Push(float distance, uint32_t id) {
    if (k_ == 0) return false;
    if (heap_.size() < k_) {
      heap_.push_back({distance, id});
      std::push_heap(heap_.begin(), heap_.end());
      return true;
    }
    if (distance >= heap_.front().distance) return false;
    std::pop_heap(heap_.begin(), heap_.end());
    heap_.back() = {distance, id};
    std::push_heap(heap_.begin(), heap_.end());
    return true;
  }

  /// Would a candidate at `distance` be retained right now?
  bool WouldAccept(float distance) const noexcept {
    return heap_.size() < k_ || distance < heap_.front().distance;
  }

  /// Re-arms the heap for a new bound without releasing capacity — the
  /// allocation-free search path Reset()s a pooled heap instead of
  /// constructing a fresh one per query.
  void Reset(size_t k) {
    k_ = k;
    heap_.clear();
  }

  /// Sorts the retained entries ascending *in place* and returns a view into
  /// them. Allocation-free. The heap invariant is destroyed: call Reset()
  /// before pushing again.
  std::span<const Scored> SortAscending() {
    std::sort_heap(heap_.begin(), heap_.end());
    return heap_;
  }

  /// Drains the heap into a vector sorted by ascending distance.
  std::vector<Scored> TakeSorted() {
    std::sort_heap(heap_.begin(), heap_.end());
    std::vector<Scored> out = std::move(heap_);
    heap_.clear();
    return out;
  }

  /// Non-destructive sorted snapshot.
  std::vector<Scored> Sorted() const {
    std::vector<Scored> out = heap_;
    std::sort(out.begin(), out.end());
    return out;
  }

  void Clear() noexcept { heap_.clear(); }

 private:
  size_t k_;
  std::vector<Scored> heap_;
};

}  // namespace dhnsw
