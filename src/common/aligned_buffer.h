// Cache-line/page-aligned byte buffer. RDMA registered memory and the
// compute-side staging buffers are allocated through this so simulated DMA
// targets have realistic alignment, and so reads/writes can assert alignment
// invariants the real NIC would require.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace dhnsw {

/// Owning, aligned, fixed-size byte buffer (zero-initialized).
class AlignedBuffer {
 public:
  AlignedBuffer() noexcept = default;
  /// Allocates `size` bytes aligned to `alignment` (power of two, >= 64).
  AlignedBuffer(size_t size, size_t alignment);
  ~AlignedBuffer();

  AlignedBuffer(AlignedBuffer&& other) noexcept;
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept;
  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  uint8_t* data() noexcept { return data_; }
  const uint8_t* data() const noexcept { return data_; }
  size_t size() const noexcept { return size_; }
  size_t alignment() const noexcept { return alignment_; }
  bool empty() const noexcept { return size_ == 0; }

  std::span<uint8_t> span() noexcept { return {data_, size_}; }
  std::span<const uint8_t> span() const noexcept { return {data_, size_}; }

  /// Bounds-checked subspan; terminates on violation (programming error).
  std::span<uint8_t> subspan(size_t offset, size_t length);
  std::span<const uint8_t> subspan(size_t offset, size_t length) const;

 private:
  uint8_t* data_ = nullptr;
  size_t size_ = 0;
  size_t alignment_ = 0;
};

}  // namespace dhnsw
