// Simulated time accounting for the RDMA fabric.
//
// The fabric executes real data movement but *models* time: each verb charges
// a deterministic number of simulated nanoseconds onto a SimClock. Callers
// read deltas around an operation to attribute simulated network time, the
// same way a wall timer attributes compute time.
#pragma once

#include <cstdint>

namespace dhnsw {

/// Monotonic simulated clock in nanoseconds. Not thread-safe by design: each
/// compute instance owns its own clock (its own view of elapsed network time),
/// matching per-instance latency accounting in the paper.
class SimClock {
 public:
  /// Current simulated time.
  uint64_t now_ns() const noexcept { return now_ns_; }

  /// Advances time by `delta_ns`.
  void Advance(uint64_t delta_ns) noexcept { now_ns_ += delta_ns; }

  /// Resets to zero (used between benchmark phases).
  void Reset() noexcept { now_ns_ = 0; }

 private:
  uint64_t now_ns_ = 0;
};

/// Measures a simulated-time span on a clock, RAII-style.
class SimSpan {
 public:
  explicit SimSpan(const SimClock& clock) noexcept
      : clock_(clock), start_ns_(clock.now_ns()) {}
  uint64_t elapsed_ns() const noexcept { return clock_.now_ns() - start_ns_; }

 private:
  const SimClock& clock_;
  uint64_t start_ns_;
};

}  // namespace dhnsw
