// Streaming statistics and latency histograms for the benchmark harness.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dhnsw {

/// Welford-style running mean/variance plus min/max.
class RunningStat {
 public:
  void Add(double x) noexcept;
  void Reset() noexcept;

  uint64_t count() const noexcept { return count_; }
  double mean() const noexcept { return mean_; }
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double sum() const noexcept { return sum_; }

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Exact-percentile latency recorder: stores all samples (benchmark scale is
/// small enough), sorts lazily on query.
class LatencyRecorder {
 public:
  void Add(double value_us);
  void Reset();

  size_t count() const noexcept { return samples_.size(); }
  double mean() const;
  /// Percentile in [0,100]; nearest-rank on the sorted sample set.
  double percentile(double p) const;
  double p50() const { return percentile(50.0); }
  double p99() const { return percentile(99.0); }
  double min() const;
  double max() const;

 private:
  void EnsureSorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Formats a row of fixed-width columns for bench table output.
std::string FormatRow(const std::vector<std::string>& cells,
                      const std::vector<int>& widths);

}  // namespace dhnsw
