// Streaming statistics and latency histograms for the benchmark harness.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dhnsw {

/// Welford-style running mean/variance plus min/max.
///
/// Empty contract: with count() == 0, every accessor returns 0.0 (mean, min,
/// max, sum, variance, stddev) rather than NaN or garbage.
class RunningStat {
 public:
  void Add(double x) noexcept;
  void Reset() noexcept;

  /// Folds `other` into this stat, as if every sample of `other` had been
  /// Add()ed here (Chan et al.'s parallel combine — exact for count/mean/
  /// sum/min/max, numerically stable for variance). Merging an empty stat is
  /// a no-op; merging into an empty stat copies `other`.
  void Merge(const RunningStat& other) noexcept;

  uint64_t count() const noexcept { return count_; }
  double mean() const noexcept { return mean_; }
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double sum() const noexcept { return sum_; }

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Exact-percentile latency recorder: stores all samples (benchmark scale is
/// small enough), sorts lazily on query.
///
/// Empty contract: with count() == 0, mean(), percentile(p) for any p,
/// min(), and max() all return 0.0 — callers can print a recorder that never
/// saw a sample without guarding every accessor.
class LatencyRecorder {
 public:
  void Add(double value_us);
  void Reset();

  /// Folds `other`'s samples into this recorder. When both sides are already
  /// sorted the merge is a linear two-way merge of sorted runs — no re-sort
  /// of the combined set (the per-shard recorders benches merge are exactly
  /// that case). Unsorted sides fall back to the usual lazy sort-on-query.
  void Merge(const LatencyRecorder& other);

  size_t count() const noexcept { return samples_.size(); }
  double mean() const;
  /// Percentile in [0,100]; nearest-rank on the sorted sample set.
  double percentile(double p) const;
  double p50() const { return percentile(50.0); }
  double p99() const { return percentile(99.0); }
  double min() const;
  double max() const;

 private:
  void EnsureSorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Formats a row of fixed-width columns for bench table output.
std::string FormatRow(const std::vector<std::string>& cells,
                      const std::vector<int>& widths);

}  // namespace dhnsw
