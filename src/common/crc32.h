// CRC-32C (Castagnoli) used to checksum serialized cluster blobs so a torn or
// corrupt remote read is detected at deserialization time.
#pragma once

#include <cstdint>
#include <span>

namespace dhnsw {

/// Computes CRC-32C over `data`, chained from `seed` (pass 0 to start).
uint32_t Crc32c(std::span<const uint8_t> data, uint32_t seed = 0) noexcept;

}  // namespace dhnsw
