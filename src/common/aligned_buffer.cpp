#include "common/aligned_buffer.h"

#include <cassert>
#include <cstdlib>
#include <cstring>
#include <new>
#include <utility>

namespace dhnsw {

AlignedBuffer::AlignedBuffer(size_t size, size_t alignment)
    : size_(size), alignment_(alignment) {
  assert(alignment >= 64 && (alignment & (alignment - 1)) == 0 &&
         "alignment must be a power of two >= 64");
  if (size == 0) return;
  // std::aligned_alloc requires size to be a multiple of alignment.
  const size_t padded = (size + alignment - 1) / alignment * alignment;
  data_ = static_cast<uint8_t*>(std::aligned_alloc(alignment, padded));
  if (data_ == nullptr) throw std::bad_alloc();
  std::memset(data_, 0, padded);
}

AlignedBuffer::~AlignedBuffer() { std::free(data_); }

AlignedBuffer::AlignedBuffer(AlignedBuffer&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      alignment_(std::exchange(other.alignment_, 0)) {}

AlignedBuffer& AlignedBuffer::operator=(AlignedBuffer&& other) noexcept {
  if (this != &other) {
    std::free(data_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    alignment_ = std::exchange(other.alignment_, 0);
  }
  return *this;
}

std::span<uint8_t> AlignedBuffer::subspan(size_t offset, size_t length) {
  assert(offset <= size_ && length <= size_ - offset && "subspan out of bounds");
  return {data_ + offset, length};
}

std::span<const uint8_t> AlignedBuffer::subspan(size_t offset, size_t length) const {
  assert(offset <= size_ && length <= size_ - offset && "subspan out of bounds");
  return {data_ + offset, length};
}

}  // namespace dhnsw
