// Minimal leveled logger. Single process, thread-safe line output, no
// dependencies. Intended for examples, benches and error paths — hot paths
// must not log.
#pragma once

#include <sstream>
#include <string>

namespace dhnsw {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level) noexcept;
LogLevel GetLogLevel() noexcept;

/// Emits one formatted line (`[LEVEL] file:line message`) to stderr under a
/// global mutex. Prefer the DHNSW_LOG macro below.
void LogLine(LogLevel level, const char* file, int line, const std::string& message);

namespace detail {
/// Stream collector that emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { LogLine(level_, file_, line_, stream_.str()); }
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};
}  // namespace detail

#define DHNSW_LOG(level)                                                   \
  if (static_cast<int>(::dhnsw::LogLevel::level) <                         \
      static_cast<int>(::dhnsw::GetLogLevel())) {                          \
  } else                                                                   \
    ::dhnsw::detail::LogMessage(::dhnsw::LogLevel::level, __FILE__, __LINE__).stream()

}  // namespace dhnsw
