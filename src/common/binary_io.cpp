#include "common/binary_io.h"

// All members are defined inline in the header; this TU exists so the target
// has an object file and the header gets compiled standalone at least once.
namespace dhnsw {}
