#include "common/status.h"

namespace dhnsw {

std::string_view StatusCodeName(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kCapacity: return "CAPACITY";
    case StatusCode::kCorruption: return "CORRUPTION";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
    case StatusCode::kIoError: return "IO_ERROR";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace dhnsw
