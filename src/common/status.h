// Lightweight error-handling primitives for the d-HNSW codebase.
//
// The library avoids exceptions on hot paths: fallible operations return a
// `Status`, and fallible producers return a `Result<T>` (a tagged union of a
// value and a Status). Both are cheap to move and self-describing.
#pragma once

#include <cassert>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace dhnsw {

/// Coarse error taxonomy. Mirrors the failure classes the system actually
/// produces; keep it small so call sites can switch exhaustively.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< caller passed something malformed
  kNotFound,          ///< lookup missed (key, file, cluster id, ...)
  kOutOfRange,        ///< offset/length outside a region or file
  kCapacity,          ///< fixed-size region/queue is full
  kCorruption,        ///< checksum/format mismatch while decoding
  kUnavailable,       ///< transient: remote node down, QP disconnected
  kDeadlineExceeded,  ///< op or batch ran past its deadline / timed out
  kInternal,          ///< invariant violation; a bug if it ever fires
  kUnimplemented,     ///< feature intentionally not built
  kIoError,           ///< filesystem-level failure
};

/// Human-readable name for a StatusCode ("OK", "INVALID_ARGUMENT", ...).
std::string_view StatusCodeName(StatusCode code) noexcept;

/// Value-semantic status: either OK (no message allocated) or an error code
/// plus a context message. Copyable, movable, cheap when OK.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() noexcept : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() noexcept { return Status(); }
  static Status InvalidArgument(std::string m) { return {StatusCode::kInvalidArgument, std::move(m)}; }
  static Status NotFound(std::string m) { return {StatusCode::kNotFound, std::move(m)}; }
  static Status OutOfRange(std::string m) { return {StatusCode::kOutOfRange, std::move(m)}; }
  static Status Capacity(std::string m) { return {StatusCode::kCapacity, std::move(m)}; }
  static Status Corruption(std::string m) { return {StatusCode::kCorruption, std::move(m)}; }
  static Status Unavailable(std::string m) { return {StatusCode::kUnavailable, std::move(m)}; }
  static Status DeadlineExceeded(std::string m) { return {StatusCode::kDeadlineExceeded, std::move(m)}; }
  static Status Internal(std::string m) { return {StatusCode::kInternal, std::move(m)}; }
  static Status Unimplemented(std::string m) { return {StatusCode::kUnimplemented, std::move(m)}; }
  static Status IoError(std::string m) { return {StatusCode::kIoError, std::move(m)}; }

  bool ok() const noexcept { return code_ == StatusCode::kOk; }
  StatusCode code() const noexcept { return code_; }
  const std::string& message() const noexcept { return message_; }

  /// "OK" or "CODE: message" — for logs and test failure output.
  std::string ToString() const;

  bool operator==(const Status& other) const noexcept {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Result<T>: holds either a T or an error Status. Accessing the value of an
/// error result is a programming error (asserts in debug builds).
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : storage_(std::move(value)) {}            // NOLINT(google-explicit-constructor)
  Result(Status status) : storage_(std::move(status)) {      // NOLINT(google-explicit-constructor)
    assert(!std::get<Status>(storage_).ok() && "Result constructed from OK status");
  }

  bool ok() const noexcept { return std::holds_alternative<T>(storage_); }

  const Status& status() const noexcept {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(storage_);
  }

  T& value() & {
    assert(ok());
    return std::get<T>(storage_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(storage_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(storage_));
  }

  T value_or(T fallback) const& { return ok() ? std::get<T>(storage_) : std::move(fallback); }

 private:
  std::variant<T, Status> storage_;
};

/// Propagate-on-error helper: `DHNSW_RETURN_IF_ERROR(DoThing());`
#define DHNSW_RETURN_IF_ERROR(expr)                  \
  do {                                               \
    ::dhnsw::Status _st = (expr);                    \
    if (!_st.ok()) return _st;                       \
  } while (0)

/// Assign-or-propagate helper for Result<T> producers:
/// `DHNSW_ASSIGN_OR_RETURN(auto blob, Decode(bytes));`
#define DHNSW_ASSIGN_OR_RETURN(decl, expr)           \
  DHNSW_ASSIGN_OR_RETURN_IMPL_(decl, expr, DHNSW_CONCAT_(_res, __LINE__))
#define DHNSW_CONCAT_INNER_(a, b) a##b
#define DHNSW_CONCAT_(a, b) DHNSW_CONCAT_INNER_(a, b)
#define DHNSW_ASSIGN_OR_RETURN_IMPL_(decl, expr, tmp) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  decl = std::move(tmp).value()

}  // namespace dhnsw
