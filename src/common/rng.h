// Deterministic, fast pseudo-random generators used everywhere randomness is
// needed (dataset synthesis, HNSW level assignment, sampling). We avoid
// std::mt19937 so that streams are reproducible across standard libraries and
// cheap to seed/split.
#pragma once

#include <cmath>
#include <cstdint>

namespace dhnsw {

/// SplitMix64 — tiny generator, mainly used to seed Xoshiro and to hash seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) noexcept : state_(seed) {}

  uint64_t Next() noexcept {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// xoshiro256** — the workhorse generator: fast, 256-bit state, passes BigCrush.
class Xoshiro256 {
 public:
  explicit Xoshiro256(uint64_t seed = 0x8534a7d81c3f09e5ULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.Next();
  }

  uint64_t Next() noexcept {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() noexcept {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [0, 1).
  float NextFloat() noexcept {
    return static_cast<float>(Next() >> 40) * 0x1.0p-24f;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  uint64_t NextBounded(uint64_t bound) noexcept {
    if (bound == 0) return 0;
    // 128-bit multiply rejection sampling.
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < bound) {
      uint64_t t = (0 - bound) % bound;
      while (l < t) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Standard normal via Box–Muller (caches the second deviate).
  double NextGaussian() noexcept {
    if (have_cached_) {
      have_cached_ = false;
      return cached_;
    }
    double u1 = 0.0;
    do {
      u1 = NextDouble();
    } while (u1 <= 1e-300);
    const double u2 = NextDouble();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    cached_ = r * std::sin(theta);
    have_cached_ = true;
    return r * std::cos(theta);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) noexcept { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
  double cached_ = 0.0;
  bool have_cached_ = false;
};

}  // namespace dhnsw
