// Wall-clock timing helpers used to attribute real compute time
// (meta-HNSW search, sub-HNSW search, (de)serialization) in benches.
#pragma once

#include <chrono>
#include <cstdint>

namespace dhnsw {

/// Simple monotonic stopwatch. Started on construction.
class WallTimer {
 public:
  WallTimer() noexcept : start_(Clock::now()) {}

  void Restart() noexcept { start_ = Clock::now(); }

  uint64_t elapsed_ns() const noexcept {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start_).count());
  }
  double elapsed_us() const noexcept { return static_cast<double>(elapsed_ns()) / 1e3; }
  double elapsed_ms() const noexcept { return static_cast<double>(elapsed_ns()) / 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates wall time across many disjoint spans (e.g. total sub-HNSW
/// compute time over a batch).
class TimeAccumulator {
 public:
  void Add(uint64_t ns) noexcept {
    total_ns_ += ns;
    ++count_;
  }
  void Reset() noexcept {
    total_ns_ = 0;
    count_ = 0;
  }
  uint64_t total_ns() const noexcept { return total_ns_; }
  uint64_t count() const noexcept { return count_; }
  double mean_us() const noexcept {
    return count_ == 0 ? 0.0 : static_cast<double>(total_ns_) / (1e3 * static_cast<double>(count_));
  }

 private:
  uint64_t total_ns_ = 0;
  uint64_t count_ = 0;
};

}  // namespace dhnsw
