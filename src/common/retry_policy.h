// Retry with exponential backoff for transient fabric failures.
//
// The compute path treats three status codes as retryable:
//   kUnavailable       — remote node unreachable (possibly transient)
//   kDeadlineExceeded  — an op timed out (response lost; safe to re-issue
//                        because all verbs here are idempotent reads or the
//                        caller re-validates, see compute_node.cpp)
//   kCorruption        — a CRC mismatch on decoded bytes; re-reading fetches
//                        a fresh, hopefully undamaged copy
//
// Dual-clock contract (one budget, two time bases — DESIGN.md §15):
//
//   sim  (real_sleep = false) — backoff is charged to the instance's
//     SimClock, so recovery cost shows up in the same simulated-latency
//     accounting as the verbs themselves, and results stay deterministic:
//     no wall-clock sleeping, no timers. The deadline is simulated-ns
//     elapsed on that clock.
//
//   real (real_sleep = true) — the backoff actually sleeps (charging
//     simulated time instead of waiting would retry a still-down server
//     instantly), and the deadline is measured WALL ns since the budget was
//     constructed — covering ring round trips, backoff sleeps, and
//     everything between. A hung TCP server therefore cannot outlive the
//     deadline: each stalled ring burns real time the next AllowRetry sees
//     (tests/test_chaos_transport.cpp pins this with a hung-server
//     regression). The SimClock, when present, still accumulates the
//     QueuePair's measured ring charges for reporting, but deadline
//     decisions never read it in this mode.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>

#include "common/sim_clock.h"
#include "common/status.h"

namespace dhnsw {

/// Knobs for the retry loop around fabric operations. The default policy is
/// disabled (one attempt, no backoff) so fault-free workloads and existing
/// tests keep byte-identical behaviour and timing.
struct RetryPolicy {
  /// Total attempts including the first one. 1 = no retries.
  uint32_t max_attempts = 1;
  /// Backoff before retry k (1-based) is
  /// min(initial_backoff_ns * multiplier^(k-1), max_backoff_ns).
  uint64_t initial_backoff_ns = 20'000;
  double backoff_multiplier = 2.0;
  uint64_t max_backoff_ns = 5'000'000;
  /// Deadline budget for one logical operation (e.g. one batch's cluster
  /// loads), measured from RetryBudget construction: simulated ns on sim,
  /// wall ns on real transports (see the dual-clock contract above).
  /// 0 = unbounded. When the budget is exhausted, AllowRetry refuses and the
  /// last error stands.
  uint64_t deadline_ns = 0;

  bool enabled() const noexcept { return max_attempts > 1; }

  /// Backoff charged before the retry following `failures` failed attempts.
  /// Saturates at max_backoff_ns. The clamp happens in the double domain:
  /// with large attempt counts/multipliers the product exceeds the uint64_t
  /// range, and casting such a double is undefined behaviour — the cap must
  /// be applied before the cast, not after.
  uint64_t BackoffNs(uint32_t failures) const noexcept {
    if (failures == 0) return 0;
    const double cap = static_cast<double>(max_backoff_ns);
    double ns = static_cast<double>(initial_backoff_ns);
    for (uint32_t i = 1; i < failures && ns < cap; ++i) ns *= backoff_multiplier;
    if (!(ns < cap)) return max_backoff_ns;  // also catches NaN/inf products
    return static_cast<uint64_t>(ns);
  }

  static RetryPolicy Disabled() noexcept { return RetryPolicy{}; }
  static RetryPolicy Default() noexcept {
    RetryPolicy p;
    p.max_attempts = 4;
    return p;
  }
};

/// True for errors that a retry can plausibly cure.
inline bool IsRetryable(StatusCode code) noexcept {
  return code == StatusCode::kUnavailable ||
         code == StatusCode::kDeadlineExceeded ||
         code == StatusCode::kCorruption;
}
inline bool IsRetryable(const Status& st) noexcept { return IsRetryable(st.code()); }

/// Tracks attempts + deadline for one logical operation. Charges backoff to
/// the clock (nullptr clock = accounting skipped, decisions unchanged).
///
/// The clock MUST be the one owned by the instance running the operation
/// (each ComputeNode constructs budgets against its own SimClock, and the
/// ReplicaManager against its own): a clock shared across concurrent
/// instances would charge every instance's backoff into every other's
/// elapsed time, exhausting deadlines that were never actually spent.
/// tests/test_scaleout.cpp's cross-inflation regression pins this down.
class RetryBudget {
 public:
  /// `real_sleep` selects the time base: false (sim) advances the clock by
  /// the backoff and enforces the deadline in simulated ns; true (real
  /// transports) sleeps the backoff for real and enforces the deadline in
  /// wall ns since construction — the SimClock (which may be null here) is
  /// never consulted for deadline decisions.
  RetryBudget(const RetryPolicy& policy, SimClock* clock, bool real_sleep = false) noexcept
      : policy_(policy), clock_(clock), real_sleep_(real_sleep),
        start_ns_(clock != nullptr ? clock->now_ns() : 0),
        wall_start_(real_sleep ? std::chrono::steady_clock::now()
                               : std::chrono::steady_clock::time_point{}) {}

  /// Decides whether a retry is allowed after `failures` failed attempts
  /// (1-based: pass 1 after the first failure). On true, the backoff has been
  /// charged to the clock; `backoff_out` (optional) reports the charged ns.
  bool AllowRetry(uint32_t failures, uint64_t* backoff_out = nullptr) noexcept {
    if (backoff_out != nullptr) *backoff_out = 0;
    if (failures + 1 > policy_.max_attempts) return false;
    const uint64_t backoff = policy_.BackoffNs(failures);
    if (policy_.deadline_ns > 0) {
      uint64_t elapsed = 0;
      if (real_sleep_) {
        // Wall-clock accounting: ring round trips, earlier backoff sleeps,
        // and compute all count, so a hung server exhausts the deadline.
        elapsed = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - wall_start_)
                .count());
      } else if (clock_ != nullptr) {
        // Saturating elapsed: a clock Reset() between construction and this
        // check would otherwise wrap (now < start) to a huge unsigned
        // elapsed and falsely exhaust the deadline forever.
        const uint64_t now = clock_->now_ns();
        elapsed = now >= start_ns_ ? now - start_ns_ : 0;
      }
      if (elapsed + backoff > policy_.deadline_ns) return false;
    }
    if (real_sleep_) {
      if (backoff > 0) std::this_thread::sleep_for(std::chrono::nanoseconds(backoff));
    } else if (clock_ != nullptr) {
      clock_->Advance(backoff);
    }
    if (backoff_out != nullptr) *backoff_out = backoff;
    return true;
  }

 private:
  RetryPolicy policy_;
  SimClock* clock_;
  bool real_sleep_ = false;
  uint64_t start_ns_;
  std::chrono::steady_clock::time_point wall_start_;
};

}  // namespace dhnsw
