// Little-endian binary encoding over growable byte buffers, used by the
// cluster-blob serializer and the remote-memory metadata block.
//
// Encoding is explicit (no struct memcpy of host layouts) so blobs are
// portable and versionable.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"

namespace dhnsw {

/// Appends primitive values to a byte vector in little-endian order.
class BinaryWriter {
 public:
  explicit BinaryWriter(std::vector<uint8_t>* out) : out_(out) {}

  void PutU8(uint8_t v) { out_->push_back(v); }
  void PutU16(uint16_t v) { PutLE(v); }
  void PutU32(uint32_t v) { PutLE(v); }
  void PutU64(uint64_t v) { PutLE(v); }
  void PutI32(int32_t v) { PutLE(static_cast<uint32_t>(v)); }
  void PutF32(float v) {
    uint32_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    PutLE(bits);
  }
  void PutBytes(std::span<const uint8_t> bytes) {
    out_->insert(out_->end(), bytes.begin(), bytes.end());
  }
  void PutF32Array(std::span<const float> values) {
    for (float v : values) PutF32(v);
  }
  void PutU32Array(std::span<const uint32_t> values) {
    for (uint32_t v : values) PutU32(v);
  }

  /// Pads with zero bytes until the buffer size is a multiple of `alignment`.
  void AlignTo(size_t alignment) {
    while (out_->size() % alignment != 0) out_->push_back(0);
  }

  size_t size() const noexcept { return out_->size(); }

 private:
  template <typename T>
  void PutLE(T v) {
    for (size_t i = 0; i < sizeof(T); ++i) {
      out_->push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }
  std::vector<uint8_t>* out_;
};

/// Reads primitives back; every read is bounds-checked and returns a Status
/// on truncation so corrupt remote reads fail loudly instead of UB.
class BinaryReader {
 public:
  explicit BinaryReader(std::span<const uint8_t> data) : data_(data) {}

  size_t offset() const noexcept { return pos_; }
  size_t remaining() const noexcept { return data_.size() - pos_; }
  bool exhausted() const noexcept { return pos_ >= data_.size(); }

  Status GetU8(uint8_t* v) { return GetLE(v); }
  Status GetU16(uint16_t* v) { return GetLE(v); }
  Status GetU32(uint32_t* v) { return GetLE(v); }
  Status GetU64(uint64_t* v) { return GetLE(v); }
  Status GetI32(int32_t* v) {
    uint32_t bits;
    DHNSW_RETURN_IF_ERROR(GetLE(&bits));
    *v = static_cast<int32_t>(bits);
    return Status::Ok();
  }
  Status GetF32(float* v) {
    uint32_t bits = 0;
    DHNSW_RETURN_IF_ERROR(GetLE(&bits));
    std::memcpy(v, &bits, sizeof *v);
    return Status::Ok();
  }
  Status GetBytes(std::span<uint8_t> out) {
    if (remaining() < out.size()) return Truncated("bytes");
    std::memcpy(out.data(), data_.data() + pos_, out.size());
    pos_ += out.size();
    return Status::Ok();
  }
  Status GetF32Array(std::span<float> out) {
    if (remaining() < out.size() * 4) return Truncated("f32 array");
    for (float& v : out) DHNSW_RETURN_IF_ERROR(GetF32(&v));
    return Status::Ok();
  }
  Status GetU32Array(std::span<uint32_t> out) {
    if (remaining() < out.size() * 4) return Truncated("u32 array");
    for (uint32_t& v : out) DHNSW_RETURN_IF_ERROR(GetU32(&v));
    return Status::Ok();
  }
  Status Skip(size_t n) {
    if (remaining() < n) return Truncated("skip");
    pos_ += n;
    return Status::Ok();
  }
  Status AlignTo(size_t alignment) {
    size_t rem = pos_ % alignment;
    return rem == 0 ? Status::Ok() : Skip(alignment - rem);
  }

 private:
  template <typename T>
  Status GetLE(T* v) {
    if (remaining() < sizeof(T)) return Truncated("primitive");
    T out = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      out = static_cast<T>(out | (static_cast<T>(data_[pos_ + i]) << (8 * i)));
    }
    pos_ += sizeof(T);
    *v = out;
    return Status::Ok();
  }
  Status Truncated(const char* what) {
    return Status::Corruption(std::string("binary read past end while reading ") + what);
  }

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

}  // namespace dhnsw
