// Generic weighted LRU cache with entry pinning, used by ComputeNode to hold
// the most recently loaded sub-HNSW clusters (paper §3.3: "retain the most
// recently loaded c sub-HNSWs for the next batch").
//
// Capacity is a total-*weight* budget. The default weight of 1 per entry
// gives classic max-entry-count semantics; ComputeNode passes the loaded
// buffer size instead when a byte budget (cache_budget_bytes) is configured,
// so compressed (PQ) clusters pack proportionally more entries into the same
// budget.
//
// Pinning exists because within one batch every cluster currently being
// traversed must stay resident even if it is the least recently used; eviction
// only considers unpinned entries.
#pragma once

#include <cassert>
#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>

#include "telemetry/metrics.h"

namespace dhnsw {

template <typename K, typename V>
class LruCache {
 public:
  /// `capacity` = max total weight (entry count with default weights);
  /// 0 means caching disabled.
  explicit LruCache(size_t capacity) : capacity_(capacity) {}

  size_t capacity() const noexcept { return capacity_; }
  size_t size() const noexcept { return map_.size(); }
  /// Sum of the weights of all resident entries (== size() when every entry
  /// used the default weight).
  size_t total_weight() const noexcept { return total_weight_; }

  /// Shrinking below the current weight evicts unpinned entries immediately;
  /// pinned entries survive, so the total weight may exceed the new capacity
  /// — but only by the weight of the pinned entries. The remainder of the
  /// shrink is deferred: it completes as the blocking pins are released (see
  /// Unpin).
  void set_capacity(size_t capacity) {
    capacity_ = capacity;
    EvictToCapacity();
  }

  bool Contains(const K& key) const { return map_.count(key) != 0; }

  /// Mirrors this cache's accounting into shared registry instruments: Get
  /// hits/misses bump the counters, and every size change moves the entries
  /// gauge by a delta (so several caches can share one gauge and it reads as
  /// the fleet-wide resident total). Any pointer may be null; instruments must
  /// outlive the cache (registry instruments do).
  void AttachTelemetry(telemetry::Counter* hit_counter, telemetry::Counter* miss_counter,
                       telemetry::Gauge* entries_gauge) {
    hit_counter_ = hit_counter;
    miss_counter_ = miss_counter;
    entries_gauge_ = entries_gauge;
  }

  /// Looks up and marks as most-recently-used. Returns nullptr on miss.
  V* Get(const K& key) {
    auto it = map_.find(key);
    if (it == map_.end()) {
      ++misses_;
      if (miss_counter_ != nullptr) miss_counter_->Add(1);
      return nullptr;
    }
    ++hits_;
    if (hit_counter_ != nullptr) hit_counter_->Add(1);
    order_.splice(order_.begin(), order_, it->second.order_it);
    return &it->second.value;
  }

  /// Looks up without touching recency or stats (for tests/introspection).
  const V* Peek(const K& key) const {
    auto it = map_.find(key);
    return it == map_.end() ? nullptr : &it->second.value;
  }

  /// Inserts or overwrites; marks most-recently-used; may evict. Returns a
  /// pointer to the stored value (valid until eviction). If capacity is 0, or
  /// the entry alone outweighs the whole budget, the value is not stored and
  /// nullptr is returned (the caller keeps its own copy for the batch).
  V* Put(const K& key, V value, size_t weight = 1) {
    if (capacity_ == 0 || weight > capacity_) return nullptr;
    auto it = map_.find(key);
    if (it != map_.end()) {
      it->second.value = std::move(value);
      total_weight_ += weight - it->second.weight;
      it->second.weight = weight;
      order_.splice(order_.begin(), order_, it->second.order_it);
      // A heavier replacement can push the cache over budget.
      ++it->second.pins;
      EvictToCapacity();
      --it->second.pins;
      return &it->second.value;
    }
    order_.push_front(key);
    auto [ins, fresh] =
        map_.emplace(key, Entry{std::move(value), order_.begin(), 0, weight});
    assert(fresh);
    (void)fresh;
    total_weight_ += weight;
    if (entries_gauge_ != nullptr) entries_gauge_->Add(1);
    // Hold a transient pin so the entry being inserted is never the eviction
    // victim, even when every other entry is pinned.
    ++ins->second.pins;
    EvictToCapacity();
    --ins->second.pins;
    return &ins->second.value;
  }

  /// Pin/unpin an entry against eviction. Pins nest.
  bool Pin(const K& key) {
    auto it = map_.find(key);
    if (it == map_.end()) return false;
    ++it->second.pins;
    return true;
  }
  bool Unpin(const K& key) {
    auto it = map_.find(key);
    if (it == map_.end() || it->second.pins == 0) return false;
    --it->second.pins;
    // Deferred eviction: a shrink (or over-capacity Put) that was blocked by
    // pins resumes the moment an entry becomes evictable again, restoring the
    // weight <= capacity invariant as early as the pinning contract allows.
    if (it->second.pins == 0 && total_weight_ > capacity_) EvictToCapacity();
    return true;
  }

  /// Removes an entry (even if pinned — caller's responsibility).
  bool Erase(const K& key) {
    auto it = map_.find(key);
    if (it == map_.end()) return false;
    total_weight_ -= it->second.weight;
    order_.erase(it->second.order_it);
    map_.erase(it);
    if (entries_gauge_ != nullptr) entries_gauge_->Add(-1);
    return true;
  }

  void Clear() {
    if (entries_gauge_ != nullptr) entries_gauge_->Add(-static_cast<int64_t>(map_.size()));
    map_.clear();
    order_.clear();
    total_weight_ = 0;
  }

  uint64_t hits() const noexcept { return hits_; }
  uint64_t misses() const noexcept { return misses_; }
  void ResetStats() noexcept { hits_ = misses_ = 0; }

  /// Keys from most- to least-recently used (test hook).
  std::list<K> KeysByRecency() const { return order_; }

 private:
  struct Entry {
    V value;
    typename std::list<K>::iterator order_it;
    uint32_t pins;
    size_t weight;
  };

  void EvictToCapacity() {
    // Scan from the LRU end, skipping pinned entries. If everything is pinned
    // the cache may transiently exceed capacity; that mirrors a compute
    // instance that must hold all clusters of an in-flight doorbell read.
    // The scan is bounded: `it` strictly approaches order_.begin() on every
    // iteration (erase returns the successor, i.e. the element after the
    // erased one — and we step back before each probe), so an all-pinned
    // cache terminates after one pass instead of spinning.
    auto it = order_.end();
    while (total_weight_ > capacity_ && it != order_.begin()) {
      --it;
      auto map_it = map_.find(*it);
      assert(map_it != map_.end());
      if (map_it->second.pins > 0) continue;
      total_weight_ -= map_it->second.weight;
      it = order_.erase(it);
      map_.erase(map_it);
      if (entries_gauge_ != nullptr) entries_gauge_->Add(-1);
    }
  }

  size_t capacity_;
  size_t total_weight_ = 0;
  std::list<K> order_;  // front = MRU
  std::unordered_map<K, Entry> map_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  telemetry::Counter* hit_counter_ = nullptr;
  telemetry::Counter* miss_counter_ = nullptr;
  telemetry::Gauge* entries_gauge_ = nullptr;
};

}  // namespace dhnsw
