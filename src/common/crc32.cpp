#include "common/crc32.h"

#include <array>

namespace dhnsw {
namespace {

// Table-driven CRC-32C, polynomial 0x1EDC6F41 (reflected 0x82F63B78).
constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int j = 0; j < 8; ++j) {
      crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

constexpr auto kTable = MakeTable();

}  // namespace

uint32_t Crc32c(std::span<const uint8_t> data, uint32_t seed) noexcept {
  uint32_t crc = ~seed;
  for (uint8_t byte : data) {
    crc = (crc >> 8) ^ kTable[(crc ^ byte) & 0xFF];
  }
  return ~crc;
}

}  // namespace dhnsw
