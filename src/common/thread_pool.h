// Fixed-size thread pool used for intra-instance parallel sub-HNSW search
// (the paper uses 18 OpenMP threads per compute instance; we expose the same
// degree of parallelism as a configurable pool) and for the parallel build
// pipeline (k-means assignment, per-partition graph builds, batch-parallel
// insertion, streamed serialization).
//
// Nesting rule: ParallelFor/ParallelForChunked must not be called from inside
// a task running on the SAME pool — the calling shard would block on work
// queued behind itself. The build pipeline keeps one level of pool
// parallelism per stage for exactly this reason.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dhnsw {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 is clamped to 1.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const noexcept { return workers_.size(); }

  /// Enqueues a task; returns a future for its completion. A task that
  /// throws stores the exception in the future — callers that discard the
  /// future discard the error with it, so build-path work goes through
  /// ParallelFor, which cannot lose an exception.
  std::future<void> Submit(std::function<void()> task);

  /// Runs `fn(i)` for i in [0, n) across the pool and blocks until every
  /// iteration has finished or been cancelled. If an iteration throws, the
  /// remaining un-started iterations are skipped, every in-flight shard is
  /// still drained (no shard may outlive this call — they reference the
  /// caller's stack), and the first captured exception is rethrown to the
  /// caller. A partition build that dies therefore surfaces as an error
  /// instead of hanging or silently dropping the partition.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Chunked variant for cheap per-element bodies: runs `fn(begin, end)`
  /// over consecutive ranges of at most `grain` elements. Chunk boundaries
  /// depend only on `grain` — never on the worker count — so reductions
  /// that accumulate per chunk and merge in chunk-index order produce
  /// bit-identical results across thread counts. Same exception contract
  /// as ParallelFor.
  void ParallelForChunked(size_t n, size_t grain,
                          const std::function<void(size_t, size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace dhnsw
