// Fixed-size thread pool used for intra-instance parallel sub-HNSW search
// (the paper uses 18 OpenMP threads per compute instance; we expose the same
// degree of parallelism as a configurable pool).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dhnsw {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 is clamped to 1.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const noexcept { return workers_.size(); }

  /// Enqueues a task; returns a future for its completion.
  std::future<void> Submit(std::function<void()> task);

  /// Runs `fn(i)` for i in [0, n) across the pool and blocks until all done.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace dhnsw
