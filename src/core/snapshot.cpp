#include "core/snapshot.h"

#include <cstdio>
#include <memory>
#include <vector>

#include "common/binary_io.h"
#include "common/crc32.h"

namespace dhnsw {
namespace {

constexpr uint32_t kSnapshotMagic = 0x44534E50;  // "DSNP"
constexpr uint32_t kSnapshotVersion = 2;         // v2: multi-shard pools
constexpr size_t kFixedHeaderSize = 16;          // magic, version, shards, reserved
constexpr size_t kPerShardHeaderSize = 16;       // size u64, crc u32, pad u32

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

/// Reads exactly `want` bytes (expected at absolute file offset `offset`)
/// into `dst`. A short read is classified: a real stream error is kIoError;
/// end-of-file is a truncated snapshot — kCorruption, reporting the exact
/// byte offset where data ran out so the operator can tell a clipped copy
/// from a wrong file.
Status ReadExact(std::FILE* f, void* dst, size_t want, uint64_t offset, const char* what,
                 const std::string& path) {
  const size_t got = std::fread(dst, 1, want, f);
  if (got == want) return Status::Ok();
  if (std::ferror(f) != 0) {
    return Status::IoError("snapshot: read error in " + std::string(what) + " of " + path);
  }
  return Status::Corruption("snapshot: truncated " + std::string(what) + " in " + path +
                            " at byte offset " + std::to_string(offset + got) + " (wanted " +
                            std::to_string(want) + " bytes at offset " +
                            std::to_string(offset) + ")");
}

}  // namespace

Status SaveRegionSnapshot(const rdma::Fabric& fabric, const MemoryNodeHandle& handle,
                          const std::string& path) {
  // Collect every shard region (slot 0 first).
  std::vector<const rdma::MemoryRegion*> regions;
  for (uint32_t s = 0; s < handle.num_shards(); ++s) {
    const rdma::MemoryRegion* region = fabric.FindRegion(handle.rkey_for_slot(s));
    if (region == nullptr) return Status::NotFound("snapshot: unknown region");
    regions.push_back(region);
  }

  std::vector<uint8_t> header;
  BinaryWriter w(&header);
  w.PutU32(kSnapshotMagic);
  w.PutU32(kSnapshotVersion);
  w.PutU32(static_cast<uint32_t>(regions.size()));
  w.PutU32(0);  // reserved
  for (const rdma::MemoryRegion* region : regions) {
    w.PutU64(region->size());
    w.PutU32(Crc32c(region->host_span()));
    w.PutU32(0);  // pad
  }
  if (header.size() != kFixedHeaderSize + regions.size() * kPerShardHeaderSize) {
    return Status::Internal("snapshot header size drifted");
  }

  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IoError("snapshot: cannot open " + path + " for writing");
  if (std::fwrite(header.data(), 1, header.size(), f.get()) != header.size()) {
    return Status::IoError("snapshot: short write to " + path);
  }
  for (const rdma::MemoryRegion* region : regions) {
    const auto bytes = region->host_span();
    if (std::fwrite(bytes.data(), 1, bytes.size(), f.get()) != bytes.size()) {
      return Status::IoError("snapshot: short write to " + path);
    }
  }
  return Status::Ok();
}

Result<MemoryNodeHandle> LoadRegionSnapshot(rdma::Fabric* fabric, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IoError("snapshot: cannot open " + path);

  uint64_t file_offset = 0;
  std::vector<uint8_t> fixed(kFixedHeaderSize);
  DHNSW_RETURN_IF_ERROR(
      ReadExact(f.get(), fixed.data(), fixed.size(), file_offset, "header", path));
  file_offset += fixed.size();
  BinaryReader r(fixed);
  uint32_t magic = 0, version = 0, shards = 0, reserved = 0;
  DHNSW_RETURN_IF_ERROR(r.GetU32(&magic));
  if (magic != kSnapshotMagic) return Status::Corruption("snapshot: bad magic");
  DHNSW_RETURN_IF_ERROR(r.GetU32(&version));
  if (version != kSnapshotVersion) return Status::Corruption("snapshot: unsupported version");
  DHNSW_RETURN_IF_ERROR(r.GetU32(&shards));
  DHNSW_RETURN_IF_ERROR(r.GetU32(&reserved));
  if (shards == 0 || shards > 4096) {
    return Status::Corruption("snapshot: implausible shard count");
  }

  std::vector<uint64_t> sizes(shards);
  std::vector<uint32_t> crcs(shards);
  {
    std::vector<uint8_t> per_shard(shards * kPerShardHeaderSize);
    DHNSW_RETURN_IF_ERROR(
        ReadExact(f.get(), per_shard.data(), per_shard.size(), file_offset, "shard table", path));
    file_offset += per_shard.size();
    BinaryReader sr(per_shard);
    for (uint32_t s = 0; s < shards; ++s) {
      uint32_t pad = 0;
      DHNSW_RETURN_IF_ERROR(sr.GetU64(&sizes[s]));
      DHNSW_RETURN_IF_ERROR(sr.GetU32(&crcs[s]));
      DHNSW_RETURN_IF_ERROR(sr.GetU32(&pad));
    }
  }

  MemoryNodeHandle handle;
  for (uint32_t s = 0; s < shards; ++s) {
    const rdma::NodeId node =
        fabric->AddNode("memory-node-restored-" + std::to_string(s));
    DHNSW_ASSIGN_OR_RETURN(const rdma::RKey rkey, fabric->RegisterMemory(node, sizes[s]));
    rdma::MemoryRegion* region = fabric->FindRegion(rkey);
    if (region == nullptr) return Status::Internal("snapshot: fresh region vanished");

    const std::span<uint8_t> dst = region->host_span().subspan(0, sizes[s]);
    const std::string what = "payload of shard " + std::to_string(s);
    DHNSW_RETURN_IF_ERROR(
        ReadExact(f.get(), dst.data(), sizes[s], file_offset, what.c_str(), path));
    file_offset += sizes[s];
    if (Crc32c({dst.data(), sizes[s]}) != crcs[s]) {
      return Status::Corruption("snapshot: payload CRC mismatch in " + path);
    }
    if (s == 0) {
      handle.node = node;
      handle.rkey = rkey;
      handle.region_size = sizes[s];
    }
    handle.shard_rkeys.push_back(rkey);
    handle.shard_nodes.push_back(node);
  }
  return handle;
}

}  // namespace dhnsw
