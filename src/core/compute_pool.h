// ComputePool: N ComputeNode instances served concurrently by worker threads
// behind a front-end dispatcher with admission control (DESIGN.md §12).
//
// The paper's deployment is "multiple CPU instances sharing one memory pool"
// behind a client load balancer; ClientRouter models the batch-sharding half
// of that, and this class models the other half — a live pool where every
// node has its own worker thread, a bounded FIFO queue, and an independent
// op stream, so cache interference, overflow-FAA contention, and failover
// under traffic actually happen concurrently.
//
// Two run modes:
//   - kDrain: the dispatcher blocks when a queue is full (backpressure) and
//     every op is admitted. With DispatchPolicy::kLeastAssigned the
//     node assignment is a pure function of the op sequence, so the set of
//     (node, op) executions — and therefore the state at quiescence — is
//     deterministic. This is the differential-testing mode.
//   - kPaced: the dispatcher releases ops at their schedule arrival_ns
//     (open-loop). Admission control applies: a full node queue or a tenant
//     over its inflight limit DROPS the op with kCapacity — the
//     latency-under-load mode, where drops are the signal, not a bug.
//
// Determinism argument (kDrain + kLeastAssigned): assignment depends only on
// cumulative per-node assigned counts (ties to the lowest index); each lane
// is FIFO; each ComputeNode owns its clock/QP/cache, so a node's execution
// is a pure function of its op subsequence. Cross-node effects go through
// the shared memory region, where inserts allocate disjoint overflow slots
// via remote FAA — the slot ORDER may interleave differently run to run, but
// the record SET at quiescence is schedule-determined, which is why the
// scale-out suite compares quiescence-time search results against a
// single-node sequential oracle (tests/test_scaleout.cpp).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "common/topk.h"
#include "core/client_router.h"
#include "core/compute_node.h"
#include "core/workload_gen.h"
#include "telemetry/trace.h"

namespace dhnsw {

/// How the dispatcher picks a node for the next op.
enum class DispatchPolicy : uint8_t {
  /// Fewest ops assigned so far, ties to the lowest index. Load-aware in the
  /// cumulative sense and a pure function of the op sequence — the only
  /// policy that keeps kDrain runs deterministic.
  kLeastAssigned = 0,
  /// Fewest ops queued right now (live depth). Adapts to slow nodes under
  /// paced load, but depends on wall-clock service times.
  kLeastLoaded = 1,
  kRoundRobin = 2,
};

struct AdmissionOptions {
  /// Bound on each node's FIFO. kPaced drops on overflow; kDrain blocks.
  size_t node_queue_capacity = 256;
  /// Max ops a tenant may have admitted-but-unfinished across the pool
  /// (kPaced only; kDrain admits everything). 0 = unlimited.
  size_t tenant_inflight_limit = 64;
};

struct ComputePoolOptions {
  DispatchPolicy dispatch = DispatchPolicy::kLeastAssigned;
  AdmissionOptions admission;
  /// Top-k and ef applied to every search op.
  size_t k = 10;
  uint32_t ef_search = 64;
  /// Tenants the stats/limits arrays are sized for; ops with tenant >= this
  /// are rejected with kInvalidArgument.
  uint32_t num_tenants = 1;
  /// Per-lane + dispatcher trace buffers (0 disables pool spans).
  size_t trace_capacity = 0;
};

enum class PoolRunMode : uint8_t { kDrain = 0, kPaced = 1 };

/// Terminal fate of one scheduled op. Every op gets exactly one.
struct OpOutcome {
  Status status = Status::Internal("op never completed");
  std::vector<Scored> results;     ///< searches only
  uint32_t node = UINT32_MAX;      ///< executing node, UINT32_MAX when dropped
  bool dropped = false;            ///< refused at admission (status says why)
  uint64_t queue_wall_ns = 0;      ///< admission -> execution start
  uint64_t total_wall_ns = 0;      ///< admission -> completion (sojourn)
};

struct PoolRunStats {
  uint64_t submitted = 0;
  uint64_t admitted = 0;
  uint64_t completed_ok = 0;
  uint64_t failed = 0;  ///< executed but returned an error
  uint64_t dropped_queue_full = 0;
  uint64_t dropped_tenant_limit = 0;
  uint64_t dropped_invalid = 0;
  uint64_t searches = 0;  ///< executed (admitted) only
  uint64_t inserts = 0;
  double wall_seconds = 0.0;
  double offered_qps = 0.0;   ///< submitted / schedule span (kPaced) or wall
  double achieved_qps = 0.0;  ///< admitted completions / wall
  /// Sojourn latency (queue wait + service) of admitted ops, microseconds.
  LatencyRecorder latency_us;
  std::vector<LatencyRecorder> per_tenant_latency_us;  ///< size num_tenants
  std::vector<uint64_t> per_tenant_drops;              ///< size num_tenants
  std::vector<uint64_t> per_node_ops;                  ///< size pool

  uint64_t dropped() const noexcept {
    return dropped_queue_full + dropped_tenant_limit + dropped_invalid;
  }
};

class ComputePool {
 public:
  /// The pool does not own the nodes; all must be connected. Workers start
  /// immediately and idle until Run().
  ComputePool(std::vector<ComputeNode*> nodes, ComputePoolOptions options);
  ~ComputePool();

  ComputePool(const ComputePool&) = delete;
  ComputePool& operator=(const ComputePool&) = delete;

  size_t size() const noexcept { return lanes_.size(); }
  const ComputePoolOptions& options() const noexcept { return options_; }

  /// Executes the schedule. kDrain ignores arrival_ns and applies
  /// backpressure; kPaced sleeps the dispatcher to each op's arrival_ns and
  /// applies admission control. `outcomes` (optional) receives one terminal
  /// OpOutcome per op, index-aligned with `ops`. One Run at a time.
  PoolRunStats Run(std::span<const WorkloadOp> ops, PoolRunMode mode,
                   std::vector<OpOutcome>* outcomes = nullptr);

  /// Front-end batch search: shards `queries` over the pool via
  /// ClientRouter::SearchBatchWeighted, weighting shards inversely to each
  /// node's current queue depth so a backed-up node gets less synchronous
  /// work. With idle queues this degenerates to the even split.
  Result<RouterResult> SearchSharded(const VectorSet& queries, size_t k,
                                     uint32_t ef_search,
                                     const RouterOptions& router_options = {});

  /// Live queue depth of node `i` (racy snapshot; exact once quiescent).
  size_t queue_depth(size_t i) const noexcept {
    return lanes_[i]->depth.load(std::memory_order_relaxed);
  }

  /// Pool-level spans: "pool.dispatch"/"pool.drop" events from the
  /// dispatcher, "pool.op" spans from each lane's worker. Buffers are
  /// single-writer; exports are wall-free-deterministic in kDrain mode with
  /// kLeastAssigned (the byte-compare contract of the scale-out CI job).
  void EnableTracing(size_t capacity);
  void ClearTraces();
  const telemetry::TraceBuffer& dispatch_trace() const noexcept { return dispatch_trace_; }
  const telemetry::TraceBuffer& lane_trace(size_t i) const { return lanes_[i]->trace; }

 private:
  struct QueuedOp {
    const WorkloadOp* op = nullptr;
    size_t index = 0;
    std::chrono::steady_clock::time_point admitted;
  };

  /// One node's worker lane. Queue state is mutex-protected; the stats block
  /// is worker-private during a run and read by Run() only after quiescence
  /// (the completion handshake provides the happens-before edge).
  struct Lane {
    ComputeNode* node = nullptr;
    uint32_t index = 0;
    std::mutex mutex;
    std::condition_variable cv_nonempty;  ///< dispatcher -> worker
    std::condition_variable cv_room;      ///< worker -> blocked dispatcher
    std::deque<QueuedOp> queue;
    std::atomic<size_t> depth{0};
    bool stop = false;
    std::thread thread;

    // Worker-private per-run accumulators (merged by Run() at quiescence).
    uint64_t ops = 0, ok = 0, failed = 0, searches = 0, inserts = 0;
    LatencyRecorder latency_us;
    std::vector<LatencyRecorder> tenant_latency_us;
    telemetry::TraceBuffer trace;
    telemetry::Gauge* depth_gauge = nullptr;
    telemetry::Counter* ops_counter = nullptr;
  };

  void WorkerLoop(Lane* lane);
  void ExecuteOp(Lane* lane, const QueuedOp& item);
  uint32_t PickNode(uint32_t tenant);
  /// Records a dispatcher-side drop (kPaced admission refusals).
  void DropOp(size_t index, uint32_t tenant, Status status, uint64_t* stat);

  std::vector<std::unique_ptr<Lane>> lanes_;
  ComputePoolOptions options_;
  std::vector<uint64_t> assigned_;  ///< dispatcher-only cumulative counts
  uint32_t round_robin_next_ = 0;
  std::unique_ptr<std::atomic<int64_t>[]> tenant_inflight_;

  // Per-run shared state (set by Run before dispatch, cleared after).
  std::span<const WorkloadOp> run_ops_;
  std::vector<OpOutcome>* run_outcomes_ = nullptr;
  std::mutex done_mutex_;
  std::condition_variable done_cv_;
  size_t done_count_ = 0;   ///< guarded by done_mutex_
  size_t done_target_ = 0;  ///< guarded by done_mutex_
  bool run_active_ = false;

  telemetry::TraceBuffer dispatch_trace_;
  uint32_t run_seq_ = 0;

  // Process-registry instruments (registered once per pool construction).
  telemetry::Counter* ops_total_ = nullptr;
  telemetry::Counter* admitted_total_ = nullptr;
  telemetry::Counter* dropped_total_ = nullptr;
  telemetry::Counter* dropped_queue_full_total_ = nullptr;
  telemetry::Counter* dropped_tenant_limit_total_ = nullptr;
  telemetry::Counter* failures_total_ = nullptr;
  telemetry::Histogram* latency_us_hist_ = nullptr;
  telemetry::Gauge* nodes_gauge_ = nullptr;
  std::vector<telemetry::Counter*> tenant_drop_counters_;
};

}  // namespace dhnsw
