// Open-loop workload generator for the compute-pool scale-out harness
// (DESIGN.md §12).
//
// Produces a fully materialized, seeded schedule of search/insert operations
// with arrival timestamps — the arrival process is decided by the generator,
// not by the service rate, so the harness can drive the pool open-loop (ops
// arrive whether or not the pool keeps up, exposing the queueing p99/p999
// cliffs closed-loop benches hide). Everything is a pure function of the
// seed: two generators with identical options emit bit-identical schedules
// (tests/test_workload_gen.cpp), which is what lets the scale-out
// differential suite compare an N-node concurrent run against a single-node
// sequential replay of the very same operation list.
//
// Knobs mirror the evaluation axes of the paper and its follow-ups:
//   - arrivals: Poisson (the open-loop default), bursty (two-state modulated
//     Poisson whose on/off dwell times make p999 interesting), or uniform
//     (fixed spacing, the closed-loop-like control);
//   - skew: queries/inserts target Zipfian topics over contiguous base-row
//     slices, so hot clusters see cache contention across compute nodes;
//   - mix: read_fraction is honored EXACTLY via an error-accumulator walk
//     (floor((i+1)*w) - floor(i*w)), not by coin flips — deterministic
//     positions, exact counts;
//   - inserts carry pre-assigned dense global ids starting at
//     first_insert_id, so any schedule prefix is replayable on any topology
//     without an id-allocation race.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "dataset/dataset.h"

namespace dhnsw {

/// Arrival process shaping the open-loop schedule.
enum class ArrivalProcess : uint8_t {
  kPoisson = 0,  ///< exponential interarrivals at target_qps
  kBursty = 1,   ///< two-state modulated Poisson (on/off), same mean rate
  kUniform = 2,  ///< fixed 1/target_qps spacing
};

struct WorkloadGenOptions {
  uint64_t seed = 1;
  size_t num_ops = 1000;
  /// Mean arrival rate in operations per second (all processes honor it).
  double target_qps = 50'000.0;
  ArrivalProcess arrivals = ArrivalProcess::kPoisson;
  /// kBursty: burst-state rate = burst_factor * target_qps, and the process
  /// spends ~burst_fraction of the time bursting; the quiet-state rate is
  /// derived so the overall mean stays target_qps. Requires
  /// burst_factor * burst_fraction < 1 (clamped otherwise).
  double burst_factor = 3.0;
  double burst_fraction = 0.2;
  /// kBursty: mean burst dwell is burst_period_ns * burst_fraction, mean
  /// quiet dwell burst_period_ns * (1 - burst_fraction).
  uint64_t burst_period_ns = 2'000'000;
  /// Zipf exponent over topics; 0 = uniform topic popularity.
  double zipf_s = 1.1;
  /// Topics = contiguous equal slices of base rows (matches the synthetic
  /// datasets' cluster-major row order, so a topic ~= a cluster).
  uint32_t num_topics = 32;
  /// Query/insert payloads are base rows + N(0, (noise_stddev*scale)^2)
  /// per-dimension noise, scale estimated from the data's spread.
  float noise_stddev = 0.05f;
  /// Fraction of operations that are searches (exact, see above).
  double read_fraction = 0.9;
  /// Operations round-robin-with-jitter over this many tenants.
  uint32_t num_tenants = 1;
  /// First pre-assigned insert id; callers pass engine.next_global_id().
  uint32_t first_insert_id = 0;
};

struct WorkloadOp {
  enum class Kind : uint8_t { kSearch = 0, kInsert = 1 };
  Kind kind = Kind::kSearch;
  uint64_t arrival_ns = 0;  ///< offset from schedule start
  uint32_t tenant = 0;
  uint32_t topic = 0;       ///< Zipf-drawn topic the payload came from
  uint32_t global_id = 0;   ///< pre-assigned id (inserts only)
  std::vector<float> vector;
};

class WorkloadGenerator {
 public:
  /// `base` must stay alive while Generate() runs; payloads are copies.
  WorkloadGenerator(const VectorSet& base, WorkloadGenOptions options);

  /// Materializes the whole schedule, sorted by arrival_ns (arrivals are
  /// generated in order, so no sort happens). Deterministic per options.
  std::vector<WorkloadOp> Generate();

  /// Exact number of inserts Generate() emits for these options.
  size_t NumInserts() const noexcept;
  /// Topic of a base row under the contiguous-slice mapping.
  uint32_t TopicOfRow(size_t row) const noexcept;

  const WorkloadGenOptions& options() const noexcept { return options_; }

 private:
  uint64_t NextInterarrivalNs();
  uint32_t DrawTopic();
  size_t DrawRowInTopic(uint32_t topic);
  std::vector<float> NoisyCopy(size_t row);

  const VectorSet& base_;
  WorkloadGenOptions options_;
  Xoshiro256 rng_;
  std::vector<double> zipf_cdf_;  ///< empty when zipf_s == 0
  float noise_scale_ = 0.0f;
  // kBursty state machine.
  bool in_burst_ = false;
  double burst_quiet_qps_ = 0.0;
  double burst_hot_qps_ = 0.0;
  double dwell_left_ns_ = 0.0;
};

}  // namespace dhnsw
