// Client-side load balancer (paper Fig. 2: "the client load balancer
// distributes the workload across multiple CPU instances").
//
// Splits a query batch into per-instance shards, runs them concurrently on
// the compute pool (each instance has its own QP, cache, and sim clock, as
// in the paper), and merges results back into request order. Because shards
// execute in parallel on independent hardware, the batch's latency is the
// *slowest shard's* latency, while throughput scales with the pool size —
// the quantity the paper's multi-instance evaluation exercises.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "core/compute_node.h"

namespace dhnsw {

/// Router-level failure handling.
struct RouterOptions {
  /// When true, a shard whose instance fails outright (e.g. its memory node
  /// is unreachable past the retry budget) degrades to empty results with
  /// that error in `statuses` for its queries, instead of failing the whole
  /// request. Per-query degradation inside a healthy shard is governed by
  /// ComputeOptions::partial_results.
  bool allow_partial = false;
};

struct RouterResult {
  /// results[i] = top-k for queries[i], merged back into request order.
  std::vector<std::vector<Scored>> results;
  /// statuses[i]: OK, or why query i's results are partial/empty.
  std::vector<Status> statuses;
  /// Per-instance breakdowns, index-aligned with the pool.
  std::vector<BatchBreakdown> per_instance;
  /// Max over instances of (network + meta + sub + deserialize): the batch's
  /// wall-clock latency under parallel execution.
  double batch_latency_us = 0.0;
  /// num_queries / batch_latency: aggregate throughput in queries/second.
  double throughput_qps = 0.0;
};

/// How shards execute on this host. In the real deployment every compute
/// instance has dedicated cores, so shard wall-times are independent.
enum class RouterExecution : uint8_t {
  /// Run shards one after another, timing each alone. Each shard sees the
  /// full host CPU — faithful to dedicated-hardware instances even when this
  /// process has fewer cores than instances. Default.
  kIsolated,
  /// Run shards on real threads concurrently. Faithful only when the host
  /// has at least one core per instance.
  kConcurrent,
};

class ClientRouter {
 public:
  /// The router does not own the nodes; all must be connected.
  explicit ClientRouter(std::vector<ComputeNode*> pool,
                        RouterExecution execution = RouterExecution::kIsolated)
      : pool_(std::move(pool)), execution_(execution) {}

  size_t pool_size() const noexcept { return pool_.size(); }

  /// Routes router-level spans ("router.request" umbrella plus one
  /// "router.shard" span per shard) into `buffer`; nullptr detaches. The
  /// buffer is written from the router's calling thread only, never from
  /// shard threads, so kConcurrent execution stays race-free.
  void set_trace(telemetry::TraceBuffer* buffer) noexcept { trace_buffer_ = buffer; }

  /// Shards `queries` across the pool in contiguous chunks; the batch's
  /// latency is the slowest shard's latency (instances run in parallel in a
  /// real pool regardless of the local execution policy).
  Result<RouterResult> SearchBatch(const VectorSet& queries, size_t k, uint32_t ef_search,
                                   const RouterOptions& router_options = {});

  /// Load-aware sharding: shard sizes are proportional to 1/(1+outstanding),
  /// where `outstanding[i]` is instance i's queued/inflight op count (the
  /// ComputePool's live queue depths), distributed to exactly the query count
  /// by largest remainder with ties to the lowest index. All-idle pools get
  /// the even split; a backed-up instance gets proportionally fewer of this
  /// batch's queries. `outstanding` must be pool-sized.
  Result<RouterResult> SearchBatchWeighted(const VectorSet& queries, size_t k,
                                           uint32_t ef_search,
                                           std::span<const uint64_t> outstanding,
                                           const RouterOptions& router_options = {});

 private:
  struct ShardPlan {
    size_t begin = 0;
    size_t count = 0;
  };
  /// Shared execution tail: runs the planned contiguous shards on the pool
  /// and merges results back into request order.
  Result<RouterResult> RunShards(const VectorSet& queries, size_t k, uint32_t ef_search,
                                 const RouterOptions& router_options,
                                 const std::vector<ShardPlan>& plan);

  std::vector<ComputeNode*> pool_;
  RouterExecution execution_;
  telemetry::TraceBuffer* trace_buffer_ = nullptr;
  uint32_t request_seq_ = 0;
};

}  // namespace dhnsw
