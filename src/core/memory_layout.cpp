#include "core/memory_layout.h"

#include <cassert>
#include <cstring>

#include "common/binary_io.h"
#include "common/crc32.h"

namespace dhnsw {
namespace {

uint64_t AlignUp(uint64_t value, uint64_t alignment) {
  return (value + alignment - 1) / alignment * alignment;
}

/// CRC over a ClusterMeta entry's static fields: everything except the
/// FAA-mutated overflow_used word and the CRC word itself.
uint32_t ClusterMetaCrc(std::span<const uint8_t> entry) {
  uint32_t crc = Crc32c(entry.first(ClusterMeta::kUsedFieldOffset));
  return Crc32c(entry.subspan(ClusterMeta::kUsedFieldOffset + 8,
                              ClusterMeta::kCrcOffset -
                                  (ClusterMeta::kUsedFieldOffset + 8)),
                crc);
}

}  // namespace

Result<LayoutPlan> PlanLayout(uint32_t dim, Metric metric, uint32_t record_size,
                              uint64_t meta_blob_size,
                              std::span<const uint64_t> blob_sizes,
                              const LayoutConfig& config, uint32_t num_shards) {
  if (blob_sizes.empty()) return Status::InvalidArgument("PlanLayout: no clusters");
  if (record_size == 0 || record_size % 8 != 0) {
    return Status::InvalidArgument("PlanLayout: record_size must be a positive multiple of 8");
  }
  if (config.alignment < 64 || (config.alignment & (config.alignment - 1)) != 0) {
    return Status::InvalidArgument("PlanLayout: alignment must be a power of two >= 64");
  }
  if (num_shards == 0) return Status::InvalidArgument("PlanLayout: zero shards");

  LayoutPlan plan;
  const uint32_t nc = static_cast<uint32_t>(blob_sizes.size());
  plan.header.num_clusters = nc;
  plan.header.dim = dim;
  plan.header.metric = static_cast<uint32_t>(metric);
  plan.header.record_size = record_size;
  plan.header.table_offset = RegionHeader::kEncodedSize;

  // Per-shard allocation cursors. Shard 0 starts after header+table+meta.
  std::vector<uint64_t> cursors(num_shards, 0);
  uint64_t primary_front = plan.header.table_offset +
                           static_cast<uint64_t>(nc) * ClusterMeta::kEncodedSize;
  primary_front = AlignUp(primary_front, config.alignment);
  plan.header.meta_blob_offset = primary_front;
  plan.header.meta_blob_size = meta_blob_size;
  cursors[0] = AlignUp(primary_front + meta_blob_size, config.alignment);

  // Overflow area must hold at least one record so inserts are possible.
  const uint64_t overflow = AlignUp(
      std::max<uint64_t>(config.overflow_bytes_per_group, record_size), 8);

  plan.entries.resize(nc);
  uint32_t group_index = 0;
  for (uint32_t a = 0; a < nc; a += 2, ++group_index) {
    const bool has_b = a + 1 < nc;
    const uint32_t slot = group_index % num_shards;
    uint64_t& cursor = cursors[slot];
    const uint64_t group_start = AlignUp(cursor, config.alignment);

    ClusterMeta& ma = plan.entries[a];
    ma.blob_offset = group_start;
    ma.blob_size = blob_sizes[a];
    ma.direction = OverflowDirection::kForward;
    ma.overflow_base = AlignUp(ma.blob_offset + ma.blob_size, 8);
    ma.overflow_capacity = overflow;
    ma.record_size = record_size;
    ma.partner = has_b ? a + 1 : ClusterMeta::kNoPartner;
    ma.node_slot = slot;

    uint64_t group_end = ma.overflow_base + overflow;
    if (has_b) {
      ClusterMeta& mb = plan.entries[a + 1];
      mb.blob_offset = group_end;  // records grow downward from blob start
      mb.blob_size = blob_sizes[a + 1];
      mb.direction = OverflowDirection::kBackward;
      mb.overflow_base = mb.blob_offset;
      mb.overflow_capacity = overflow;
      mb.record_size = record_size;
      mb.partner = a;
      mb.node_slot = slot;
      group_end = mb.blob_offset + mb.blob_size;
    }
    cursor = group_end;
  }

  plan.shard_sizes.assign(num_shards, 0);
  for (uint32_t s = 0; s < num_shards; ++s) {
    // Even a shard that received no groups gets a minimal valid region.
    plan.shard_sizes[s] = AlignUp(std::max<uint64_t>(cursors[s], config.alignment),
                                  config.alignment);
  }
  plan.total_size = plan.shard_sizes[0];
  return plan;
}

void EncodeRegionHeader(const RegionHeader& h, std::span<uint8_t> dst) {
  assert(dst.size() >= RegionHeader::kEncodedSize);
  std::vector<uint8_t> buf;
  buf.reserve(RegionHeader::kEncodedSize);
  BinaryWriter w(&buf);
  w.PutU32(h.magic);
  w.PutU32(h.version);
  w.PutU32(h.num_clusters);
  w.PutU32(h.dim);
  w.PutU32(h.metric);
  w.PutU32(h.record_size);
  w.PutU64(h.table_offset);
  w.PutU64(h.meta_blob_offset);
  w.PutU64(h.meta_blob_size);
  w.PutU64(h.layout_version);
  assert(buf.size() == RegionHeader::kCrcOffset);
  w.PutU32(Crc32c({buf.data(), RegionHeader::kCrcOffset}));
  while (buf.size() < RegionHeader::kEncodedSize) buf.push_back(0);
  std::copy(buf.begin(), buf.end(), dst.begin());
}

Result<RegionHeader> DecodeRegionHeader(std::span<const uint8_t> src) {
  if (src.size() < RegionHeader::kEncodedSize) {
    return Status::Corruption("region header truncated");
  }
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, src.data() + RegionHeader::kCrcOffset, 4);
  if (stored_crc != Crc32c(src.first(RegionHeader::kCrcOffset))) {
    return Status::Corruption("region header crc mismatch");
  }
  BinaryReader r(src);
  RegionHeader h;
  DHNSW_RETURN_IF_ERROR(r.GetU32(&h.magic));
  if (h.magic != RegionHeader::kMagic) return Status::Corruption("region header: bad magic");
  DHNSW_RETURN_IF_ERROR(r.GetU32(&h.version));
  if (h.version != RegionHeader::kVersion) {
    return Status::Corruption("region header: unsupported version");
  }
  DHNSW_RETURN_IF_ERROR(r.GetU32(&h.num_clusters));
  DHNSW_RETURN_IF_ERROR(r.GetU32(&h.dim));
  DHNSW_RETURN_IF_ERROR(r.GetU32(&h.metric));
  DHNSW_RETURN_IF_ERROR(r.GetU32(&h.record_size));
  DHNSW_RETURN_IF_ERROR(r.GetU64(&h.table_offset));
  DHNSW_RETURN_IF_ERROR(r.GetU64(&h.meta_blob_offset));
  DHNSW_RETURN_IF_ERROR(r.GetU64(&h.meta_blob_size));
  DHNSW_RETURN_IF_ERROR(r.GetU64(&h.layout_version));
  return h;
}

void EncodeClusterMeta(const ClusterMeta& m, std::span<uint8_t> dst) {
  assert(dst.size() >= ClusterMeta::kEncodedSize);
  std::vector<uint8_t> buf;
  buf.reserve(ClusterMeta::kEncodedSize);
  BinaryWriter w(&buf);
  w.PutU64(m.blob_offset);
  w.PutU64(m.blob_size);
  w.PutU64(m.overflow_base);
  w.PutU64(m.overflow_capacity);
  // offset 32: overflow_used — keep in sync with kUsedFieldOffset.
  static_assert(ClusterMeta::kUsedFieldOffset == 32);
  w.PutU64(m.overflow_used);
  w.PutU32(static_cast<uint32_t>(m.direction));
  w.PutU32(m.partner);
  w.PutU32(m.record_size);
  w.PutU32(m.node_slot);
  w.PutF32(m.radius);
  w.PutU64(m.pq_head_size);
  assert(buf.size() == ClusterMeta::kCrcOffset);
  w.PutU32(ClusterMetaCrc({buf.data(), buf.size()}));
  while (buf.size() < ClusterMeta::kEncodedSize) buf.push_back(0);
  std::copy(buf.begin(), buf.end(), dst.begin());
}

Result<ClusterMeta> DecodeClusterMeta(std::span<const uint8_t> src) {
  if (src.size() < ClusterMeta::kEncodedSize) {
    return Status::Corruption("cluster meta entry truncated");
  }
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, src.data() + ClusterMeta::kCrcOffset, 4);
  if (stored_crc != ClusterMetaCrc(src)) {
    return Status::Corruption("cluster meta crc mismatch");
  }
  BinaryReader r(src);
  ClusterMeta m;
  DHNSW_RETURN_IF_ERROR(r.GetU64(&m.blob_offset));
  DHNSW_RETURN_IF_ERROR(r.GetU64(&m.blob_size));
  DHNSW_RETURN_IF_ERROR(r.GetU64(&m.overflow_base));
  DHNSW_RETURN_IF_ERROR(r.GetU64(&m.overflow_capacity));
  DHNSW_RETURN_IF_ERROR(r.GetU64(&m.overflow_used));
  uint32_t direction = 0;
  DHNSW_RETURN_IF_ERROR(r.GetU32(&direction));
  if (direction > 1) return Status::Corruption("cluster meta: bad direction");
  m.direction = static_cast<OverflowDirection>(direction);
  DHNSW_RETURN_IF_ERROR(r.GetU32(&m.partner));
  DHNSW_RETURN_IF_ERROR(r.GetU32(&m.record_size));
  DHNSW_RETURN_IF_ERROR(r.GetU32(&m.node_slot));
  DHNSW_RETURN_IF_ERROR(r.GetF32(&m.radius));
  DHNSW_RETURN_IF_ERROR(r.GetU64(&m.pq_head_size));
  return m;
}

}  // namespace dhnsw
