// RDMA-friendly remote-memory layout (paper §3.2, Fig. 4).
//
// One contiguous registered region:
//
//   offset 0    RegionHeader (64 B)
//   64          metadata table: one 64-B entry per cluster ("global metadata
//               block [that] records the offsets of each sub-HNSW cluster")
//   ...         serialized meta-HNSW blob (fetched once per compute instance)
//   ...         groups; each group holds TWO clusters at its two ends with a
//               SHARED overflow area between them:
//
//               [ blob A | A records -> ... free ... <- B records | blob B ]
//
// Cluster A's overflow grows upward from the end of blob A; cluster B's grows
// downward from the start of blob B. Either cluster plus its own overflow is
// therefore one contiguous byte range — readable with a single RDMA_READ —
// while the pair shares one free area instead of each reserving its own
// (paper: 0.75 MB per group for SIFT1M, 3.92 MB for GIST1M).
//
// The `overflow_used` field of each entry is the FAA target used by the
// lock-free insert protocol; it sits at an 8-aligned offset by construction.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "index/distance.h"

namespace dhnsw {

/// Fixed 64-byte header at region offset 0. The last padding word carries a
/// CRC32C over the preceding 56 bytes; decoders verify it, so a bit-flip
/// anywhere in the header surfaces as kCorruption instead of a bad offset.
struct RegionHeader {
  static constexpr uint32_t kMagic = 0x44484E52;  // "DHNR"
  static constexpr uint32_t kVersion = 1;
  static constexpr size_t kEncodedSize = 64;
  /// Byte offset of the CRC32C inside an encoded header.
  static constexpr size_t kCrcOffset = 56;

  uint32_t magic = kMagic;
  uint32_t version = kVersion;
  uint32_t num_clusters = 0;
  uint32_t dim = 0;
  uint32_t metric = 0;            ///< Metric enum value
  uint32_t record_size = 0;       ///< overflow record stride for this dim
  uint64_t table_offset = 0;      ///< metadata table start
  uint64_t meta_blob_offset = 0;  ///< serialized meta-HNSW
  uint64_t meta_blob_size = 0;
  uint64_t layout_version = 0;    ///< bumped by rebuild/compaction
};

/// Which end of its group a cluster occupies.
enum class OverflowDirection : uint32_t {
  kForward = 0,   ///< "A" side: records grow upward after the blob
  kBackward = 1,  ///< "B" side: records grow downward before the blob
};

/// Fixed 72-byte per-cluster metadata entry. The final word carries a CRC32C
/// over the *static* fields — bytes [0, 32) and [40, 68) — skipping
/// `overflow_used` at [32, 40), which the insert protocol mutates in place
/// with remote FAA and therefore cannot be covered by a write-once checksum.
struct ClusterMeta {
  static constexpr size_t kEncodedSize = 72;
  /// Byte offset of `overflow_used` inside an encoded entry (FAA target).
  static constexpr uint64_t kUsedFieldOffset = 32;
  /// Byte offset of the static-field CRC32C inside an encoded entry.
  static constexpr size_t kCrcOffset = 68;

  uint64_t blob_offset = 0;        ///< within the owning shard's region
  uint64_t blob_size = 0;
  uint64_t overflow_base = 0;      ///< kForward: records start; kBackward: records *end*
  uint64_t overflow_capacity = 0;  ///< shared capacity of the whole group
  uint64_t overflow_used = 0;      ///< bytes this cluster has consumed
  OverflowDirection direction = OverflowDirection::kForward;
  uint32_t partner = kNoPartner;   ///< other cluster in the group
  uint32_t record_size = 0;
  /// Which memory instance of the pool stores this cluster's group. Slot 0
  /// is the primary (which also hosts the header/table/meta-HNSW); single-
  /// memory-node deployments use slot 0 everywhere.
  uint32_t node_slot = 0;
  /// Max L2 distance (not squared) from the partition's meta-HNSW
  /// representative to any member — the cluster's covering radius. Enables
  /// sound triangle-inequality pruning: no member can be closer to a query
  /// than dist(q, rep) - radius. 0 when unknown / non-L2 metric.
  float radius = 0.0f;
  /// Byte length of the blob's PQ prefix (header + extension sections +
  /// payload up to the float rows). A `payload=pq` reader fetches exactly
  /// [blob_offset, blob_offset + pq_head_size); raw vector i for re-rank
  /// lives at blob_offset + pq_head_size + i*dim*4. 0 when the region was
  /// provisioned without PQ codes.
  uint64_t pq_head_size = 0;

  static constexpr uint32_t kNoPartner = 0xFFFFFFFFu;

  /// Contiguous range covering blob + currently used overflow, given a
  /// possibly fresher `used` value.
  struct Range {
    uint64_t offset;
    uint64_t length;
  };
  Range ReadRange(uint64_t used) const noexcept {
    if (direction == OverflowDirection::kForward) {
      // overflow_base may sit a few alignment-pad bytes past the blob end;
      // the contiguous read must cover that gap too.
      return {blob_offset, (overflow_base - blob_offset) + used};
    }
    return {overflow_base - used, used + blob_size};
  }

  /// Byte offset of the overflow records *within* a ReadRange buffer.
  uint64_t OverflowOffsetInRead() const noexcept {
    return direction == OverflowDirection::kForward ? overflow_base - blob_offset : 0;
  }
  /// Byte offset of the blob within a ReadRange(used) buffer.
  uint64_t BlobOffsetInRead(uint64_t used) const noexcept {
    return direction == OverflowDirection::kForward ? 0 : used;
  }
  /// Remote offset where the record at byte-position `old_used` lands.
  uint64_t RecordOffset(uint64_t old_used) const noexcept {
    if (direction == OverflowDirection::kForward) {
      return overflow_base + old_used;
    }
    return overflow_base - old_used - record_size;
  }
};

/// Complete layout plan for a deployment (one or more shard regions).
struct LayoutPlan {
  RegionHeader header;
  std::vector<ClusterMeta> entries;
  uint64_t total_size = 0;           ///< primary (slot 0) region size
  /// Region size per memory instance; shard_sizes[0] == total_size. Groups
  /// are assigned to shards round-robin; the primary additionally carries
  /// the header, metadata table and meta-HNSW blob.
  std::vector<uint64_t> shard_sizes = {0};

  size_t num_shards() const noexcept { return shard_sizes.size(); }

  uint64_t TableEntryOffset(uint32_t cluster) const noexcept {
    return header.table_offset + static_cast<uint64_t>(cluster) * ClusterMeta::kEncodedSize;
  }
  /// Remote offset of cluster's FAA counter.
  uint64_t UsedCounterOffset(uint32_t cluster) const noexcept {
    return TableEntryOffset(cluster) + ClusterMeta::kUsedFieldOffset;
  }
};

struct LayoutConfig {
  /// Shared overflow bytes per group (per *pair* of clusters).
  uint64_t overflow_bytes_per_group = 768 * 1024;
  /// Alignment of blobs and groups inside the region.
  uint64_t alignment = 64;
};

/// Computes the layout from blob sizes. `blob_sizes[i]` is the encoded size
/// of cluster i; clusters are paired (0,1), (2,3), ... in order. An odd last
/// cluster gets a group of its own with the full overflow area. With
/// `num_shards` > 1 the groups are distributed round-robin across shard
/// regions (multi-instance memory pool); the header/table/meta blob always
/// live at the front of shard 0.
Result<LayoutPlan> PlanLayout(uint32_t dim, Metric metric, uint32_t record_size,
                              uint64_t meta_blob_size,
                              std::span<const uint64_t> blob_sizes,
                              const LayoutConfig& config, uint32_t num_shards = 1);

/// --- wire codecs (64 B each, little-endian) ---
void EncodeRegionHeader(const RegionHeader& h, std::span<uint8_t> dst);
Result<RegionHeader> DecodeRegionHeader(std::span<const uint8_t> src);
void EncodeClusterMeta(const ClusterMeta& m, std::span<uint8_t> dst);
Result<ClusterMeta> DecodeClusterMeta(std::span<const uint8_t> src);

}  // namespace dhnsw
