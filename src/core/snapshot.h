// Region snapshots: persist a provisioned memory region to disk and restore
// it later without re-running sampling/partitioning/graph construction.
//
// The snapshot is the byte-exact registered region prefixed by a small
// header (magic, version, region size, CRC-32C of the payload). Restoring
// registers a fresh region on the target fabric and memcpy's the bytes in —
// the moral equivalent of a memory node warm-booting its DRAM contents from
// local NVMe (each paper testbed node carries a 1.6 TB NVMe SSD).
#pragma once

#include <string>

#include "common/status.h"
#include "core/memory_node.h"
#include "rdma/fabric.h"

namespace dhnsw {

/// Writes the region behind `handle` to `path`. Fails on I/O errors.
Status SaveRegionSnapshot(const rdma::Fabric& fabric, const MemoryNodeHandle& handle,
                          const std::string& path);

/// Reads a snapshot, registers a new region on `node` (a fresh fabric node
/// is created), and returns the handle compute nodes can Connect() to.
/// CRC-verified: a corrupt or truncated file yields kCorruption.
Result<MemoryNodeHandle> LoadRegionSnapshot(rdma::Fabric* fabric, const std::string& path);

}  // namespace dhnsw
