#include "core/workload_gen.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace dhnsw {

WorkloadGenerator::WorkloadGenerator(const VectorSet& base, WorkloadGenOptions options)
    : base_(base), options_(options), rng_(options.seed) {
  assert(!base.empty());
  options_.num_topics = std::max<uint32_t>(
      1, std::min<uint32_t>(options_.num_topics, static_cast<uint32_t>(base.size())));
  options_.target_qps = std::max(options_.target_qps, 1.0);
  options_.read_fraction = std::clamp(options_.read_fraction, 0.0, 1.0);
  options_.num_tenants = std::max<uint32_t>(1, options_.num_tenants);

  if (options_.zipf_s > 0.0) {
    zipf_cdf_.resize(options_.num_topics);
    double total = 0.0;
    for (uint32_t t = 0; t < options_.num_topics; ++t) {
      total += 1.0 / std::pow(static_cast<double>(t + 1), options_.zipf_s);
      zipf_cdf_[t] = total;
    }
    for (double& v : zipf_cdf_) v /= total;
  }

  // Per-dimension data spread, so payload noise is proportional regardless of
  // the dataset's scale (SIFT-like ~100s vs GIST-like ~0.5).
  double abs_sum = 0.0;
  const size_t probe = std::min<size_t>(base.size(), 100);
  for (size_t i = 0; i < probe; ++i) {
    for (float x : base_[i]) abs_sum += std::fabs(x);
  }
  noise_scale_ = static_cast<float>(
      abs_sum / (static_cast<double>(probe) * base_.dim()) + 1e-6);

  // Derive the two bursty rates so the time-weighted mean stays target_qps:
  // f*hot + (1-f)*quiet = target, hot = factor*target. The quiet rate must
  // stay positive, so factor*fraction is capped just under 1.
  double f = std::clamp(options_.burst_fraction, 0.01, 0.99);
  double factor = std::max(options_.burst_factor, 1.0);
  if (factor * f >= 0.95) factor = 0.95 / f;
  burst_hot_qps_ = factor * options_.target_qps;
  burst_quiet_qps_ = options_.target_qps * (1.0 - f * factor) / (1.0 - f);
  options_.burst_fraction = f;
  options_.burst_factor = factor;
}

size_t WorkloadGenerator::NumInserts() const noexcept {
  const double w = 1.0 - options_.read_fraction;
  return static_cast<size_t>(std::floor(static_cast<double>(options_.num_ops) * w));
}

uint32_t WorkloadGenerator::TopicOfRow(size_t row) const noexcept {
  return static_cast<uint32_t>(row * options_.num_topics / base_.size());
}

uint64_t WorkloadGenerator::NextInterarrivalNs() {
  const auto exp_ns = [this](double qps) {
    const double mean_ns = 1e9 / qps;
    // 1 - U avoids log(0); U in [0,1) so 1-U in (0,1].
    return -std::log(1.0 - rng_.NextDouble()) * mean_ns;
  };
  switch (options_.arrivals) {
    case ArrivalProcess::kUniform:
      return static_cast<uint64_t>(1e9 / options_.target_qps);
    case ArrivalProcess::kPoisson:
      return static_cast<uint64_t>(exp_ns(options_.target_qps));
    case ArrivalProcess::kBursty: {
      // Two-state MMPP: draw at the current state's rate, consuming dwell
      // time; state flips (with a fresh exponential dwell) whenever the draw
      // overruns what is left of the current dwell.
      double waited = 0.0;
      for (;;) {
        if (dwell_left_ns_ <= 0.0) {
          const double mean_dwell =
              static_cast<double>(options_.burst_period_ns) *
              (in_burst_ ? options_.burst_fraction : 1.0 - options_.burst_fraction);
          dwell_left_ns_ = -std::log(1.0 - rng_.NextDouble()) * mean_dwell;
        }
        const double rate = in_burst_ ? burst_hot_qps_ : burst_quiet_qps_;
        const double dt = exp_ns(std::max(rate, 1e-3));
        if (dt <= dwell_left_ns_) {
          dwell_left_ns_ -= dt;
          return static_cast<uint64_t>(waited + dt);
        }
        waited += dwell_left_ns_;
        dwell_left_ns_ = 0.0;
        in_burst_ = !in_burst_;
      }
    }
  }
  return 0;
}

uint32_t WorkloadGenerator::DrawTopic() {
  if (zipf_cdf_.empty()) {
    return static_cast<uint32_t>(rng_.NextBounded(options_.num_topics));
  }
  const double u = rng_.NextDouble();
  // CDF is tiny (<= num_topics entries); linear scan is fine.
  for (uint32_t t = 0; t < zipf_cdf_.size(); ++t) {
    if (u <= zipf_cdf_[t]) return t;
  }
  return static_cast<uint32_t>(zipf_cdf_.size() - 1);
}

size_t WorkloadGenerator::DrawRowInTopic(uint32_t topic) {
  const size_t n = base_.size();
  const size_t begin = static_cast<size_t>(topic) * n / options_.num_topics;
  const size_t end = static_cast<size_t>(topic + 1) * n / options_.num_topics;
  const size_t width = std::max<size_t>(1, end - begin);
  return std::min(begin + rng_.NextBounded(width), n - 1);
}

std::vector<float> WorkloadGenerator::NoisyCopy(size_t row) {
  std::span<const float> src = base_[row];
  std::vector<float> v(src.begin(), src.end());
  const float sigma = options_.noise_stddev * noise_scale_;
  for (float& x : v) {
    x += sigma * static_cast<float>(rng_.NextGaussian());
  }
  return v;
}

std::vector<WorkloadOp> WorkloadGenerator::Generate() {
  std::vector<WorkloadOp> ops;
  ops.reserve(options_.num_ops);

  const double w = 1.0 - options_.read_fraction;  // insert weight
  uint64_t t_ns = 0;
  size_t inserts_emitted = 0;
  uint32_t next_insert_id = options_.first_insert_id;

  for (size_t i = 0; i < options_.num_ops; ++i) {
    t_ns += NextInterarrivalNs();

    WorkloadOp op;
    op.arrival_ns = t_ns;
    // Exact mix: op i is an insert iff the integer staircase floor((i+1)*w)
    // advances — deterministic positions, exactly floor(n*w) inserts total.
    const auto stair = [w](size_t idx) {
      return static_cast<size_t>(std::floor(static_cast<double>(idx) * w));
    };
    const bool is_insert = stair(i + 1) > stair(i);
    op.kind = is_insert ? WorkloadOp::Kind::kInsert : WorkloadOp::Kind::kSearch;
    op.tenant = static_cast<uint32_t>(rng_.NextBounded(options_.num_tenants));
    op.topic = DrawTopic();
    op.vector = NoisyCopy(DrawRowInTopic(op.topic));
    if (is_insert) {
      op.global_id = next_insert_id++;
      ++inserts_emitted;
    }
    ops.push_back(std::move(op));
  }
  assert(inserts_emitted == NumInserts());
  (void)inserts_emitted;
  return ops;
}

}  // namespace dhnsw
