#include "core/batch_scheduler.h"

#include <algorithm>
#include <unordered_map>

#include "telemetry/metrics.h"

namespace dhnsw {

namespace {

struct SchedulerInstruments {
  telemetry::Counter* plans;
  telemetry::Counter* waves;
  telemetry::Counter* unique_clusters;
  telemetry::Counter* dedup_saved_loads;
};

const SchedulerInstruments& Scheduler() {
  static const SchedulerInstruments instruments = [] {
    telemetry::MetricRegistry& r = telemetry::DefaultRegistry();
    return SchedulerInstruments{
        r.GetCounter("dhnsw_scheduler_plans_total"),
        r.GetCounter("dhnsw_scheduler_waves_total"),
        r.GetCounter("dhnsw_scheduler_unique_clusters_total"),
        r.GetCounter("dhnsw_scheduler_dedup_saved_loads_total"),
    };
  }();
  return instruments;
}

}  // namespace

BatchPlan PlanBatch(const std::vector<std::vector<uint32_t>>& clusters_per_query,
                    const std::function<bool(uint32_t)>& is_cached,
                    uint32_t cache_capacity) {
  const uint32_t capacity = std::max<uint32_t>(cache_capacity, 1);

  // Demand map: cluster -> queries wanting it (deduplicated per query).
  std::unordered_map<uint32_t, std::vector<uint32_t>> demand;
  uint64_t total_pairs = 0;
  for (uint32_t qi = 0; qi < clusters_per_query.size(); ++qi) {
    for (uint32_t cluster : clusters_per_query[qi]) {
      std::vector<uint32_t>& queries = demand[cluster];
      if (queries.empty() || queries.back() != qi) {
        queries.push_back(qi);
        ++total_pairs;
      }
    }
  }

  BatchPlan plan;
  plan.unique_clusters = demand.size();

  std::vector<uint32_t> hits;
  std::vector<uint32_t> misses;
  for (const auto& [cluster, queries] : demand) {
    (is_cached(cluster) ? hits : misses).push_back(cluster);
  }
  plan.cache_hits = hits.size();
  plan.dedup_saved_loads = total_pairs - misses.size();

  // Deterministic order; most-demanded misses first so popular clusters are
  // available earliest (helps latency of the many queries sharing them).
  auto by_demand_desc = [&](uint32_t a, uint32_t b) {
    const size_t da = demand[a].size(), db = demand[b].size();
    if (da != db) return da > db;
    return a < b;
  };
  std::sort(misses.begin(), misses.end(), by_demand_desc);
  std::sort(hits.begin(), hits.end());

  // Wave 0: all cache-hit work (nothing to load), plus the first chunk of
  // misses if that keeps the resident set within capacity.
  auto emit_wave = [&](std::vector<uint32_t> to_load, const std::vector<uint32_t>& usable) {
    LoadWave wave;
    wave.to_load = std::move(to_load);
    for (uint32_t cluster : usable) {
      for (uint32_t qi : demand[cluster]) {
        wave.work.push_back({qi, cluster});
      }
    }
    // Group by query for cache-friendly heap updates.
    std::stable_sort(wave.work.begin(), wave.work.end(),
                     [](const WorkItem& a, const WorkItem& b) {
                       return a.query_index < b.query_index;
                     });
    plan.waves.push_back(std::move(wave));
  };

  if (!hits.empty()) {
    emit_wave({}, hits);
  }
  for (size_t begin = 0; begin < misses.size(); begin += capacity) {
    const size_t end = std::min(misses.size(), begin + capacity);
    std::vector<uint32_t> chunk(misses.begin() + begin, misses.begin() + end);
    emit_wave(chunk, chunk);
  }

  const SchedulerInstruments& metrics = Scheduler();
  metrics.plans->Add(1);
  metrics.waves->Add(plan.waves.size());
  metrics.unique_clusters->Add(plan.unique_clusters);
  metrics.dedup_saved_loads->Add(plan.dedup_saved_loads);
  return plan;
}

}  // namespace dhnsw
