#include "core/meta_hnsw.h"

#include <algorithm>
#include <limits>
#include <memory>

#include "common/thread_pool.h"
#include "serialize/cluster_blob.h"

namespace dhnsw {
namespace {

/// The meta graph is serialized with the generic cluster codec; this sentinel
/// partition id marks a blob as "the meta-HNSW", not a sub-HNSW.
constexpr uint32_t kMetaPartitionId = 0xFFFFFFFFu;

/// Uniform sample of `count` distinct indices from [0, n) (partial
/// Fisher-Yates over an index array).
std::vector<uint32_t> SampleIndices(size_t n, uint32_t count, uint64_t seed) {
  std::vector<uint32_t> all(n);
  for (size_t i = 0; i < n; ++i) all[i] = static_cast<uint32_t>(i);
  Xoshiro256 rng(seed);
  for (uint32_t i = 0; i < count; ++i) {
    const uint64_t j = i + rng.NextBounded(n - i);
    std::swap(all[i], all[j]);
  }
  all.resize(count);
  std::sort(all.begin(), all.end());  // deterministic, cache-friendly order
  return all;
}

/// Fixed work-splitting grain for the k-means scans. Chunk boundaries are a
/// pure function of (n, grain) — never of the worker count — so every
/// parallel stage below produces bit-identical output on 1, 2, or 64 threads.
constexpr size_t kKmeansGrain = 2048;

/// Lloyd's k-means over the base set, seeded by a uniform sample; returns
/// the base-row index nearest each final centroid (medoid snap) so that
/// representatives stay actual data points, preserving the paper's "each
/// vector in L0 defines a partition and serves as an entry point" semantics.
///
/// `pool` (optional) parallelizes the two O(n·r·d) scans — assignment and
/// medoid snap. The result is bit-identical to the sequential run: assignment
/// writes are disjoint per row, the centroid-update reduction stays
/// sequential, and the medoid argmin conflicts are resolved sequentially in
/// centroid order (see below).
std::vector<uint32_t> KmeansRepresentatives(const VectorSet& base, uint32_t r,
                                            uint32_t iterations, uint64_t seed,
                                            ThreadPool* pool) {
  const uint32_t dim = base.dim();
  const size_t n = base.size();
  const bool parallel = pool != nullptr && pool->num_threads() > 1;

  std::vector<uint32_t> init = SampleIndices(n, r, seed);
  std::vector<float> centroids(static_cast<size_t>(r) * dim);
  for (uint32_t c = 0; c < r; ++c) {
    const auto v = base[init[c]];
    std::copy(v.begin(), v.end(), centroids.begin() + static_cast<size_t>(c) * dim);
  }

  // k-means is L2 by definition regardless of the index metric; the centroid
  // block is contiguous, so each row is assigned with one batched-kernel call.
  const RowsKernel l2_rows = ActiveKernels().l2_rows;
  std::vector<float> dists(std::max<size_t>(r, n));

  std::vector<uint32_t> assign(n, 0);
  std::vector<double> sums(static_cast<size_t>(r) * dim);
  std::vector<uint32_t> counts(r);
  const auto assign_rows = [&](size_t begin, size_t end, float* row_dists) {
    for (size_t i = begin; i < end; ++i) {
      l2_rows(base[i].data(), centroids.data(), dim, r, row_dists);
      float best = std::numeric_limits<float>::max();
      uint32_t best_c = 0;
      for (uint32_t c = 0; c < r; ++c) {
        if (row_dists[c] < best) {
          best = row_dists[c];
          best_c = c;
        }
      }
      assign[i] = best_c;
    }
  };
  for (uint32_t iter = 0; iter < iterations; ++iter) {
    // Assign (parallel; per-row writes, so chunking cannot change the result).
    if (parallel) {
      pool->ParallelForChunked(n, kKmeansGrain, [&](size_t begin, size_t end) {
        std::vector<float> local(r);
        assign_rows(begin, end, local.data());
      });
    } else {
      assign_rows(0, n, dists.data());
    }
    // Update: sequential on purpose — the float accumulation order is part of
    // the deterministic-build contract, and it is O(n·d) against the
    // assignment's O(n·r·d).
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0u);
    for (size_t i = 0; i < n; ++i) {
      const auto v = base[i];
      double* sum = sums.data() + static_cast<size_t>(assign[i]) * dim;
      for (uint32_t d = 0; d < dim; ++d) sum[d] += v[d];
      ++counts[assign[i]];
    }
    for (uint32_t c = 0; c < r; ++c) {
      if (counts[c] == 0) continue;  // re-seeded below, from the largest cluster
      float* centroid = centroids.data() + static_cast<size_t>(c) * dim;
      const double* sum = sums.data() + static_cast<size_t>(c) * dim;
      for (uint32_t d = 0; d < dim; ++d) {
        centroid[d] = static_cast<float>(sum[d] / counts[c]);
      }
    }
    // Empty clusters: the old behavior silently kept the stale centroid, so a
    // cluster that lost all members stayed dead for every remaining round and
    // the medoid snap later collapsed it onto an already-taken row. Re-seed
    // each empty cluster (in index order, deterministically) from the point
    // farthest from the largest cluster's centroid — the classic split of the
    // heaviest cluster.
    for (uint32_t c = 0; c < r; ++c) {
      if (counts[c] != 0) continue;
      uint32_t donor = 0;
      for (uint32_t d = 1; d < r; ++d) {
        if (counts[d] > counts[donor]) donor = d;  // lowest index wins ties
      }
      if (counts[donor] < 2) break;  // nothing left to split
      l2_rows(centroids.data() + static_cast<size_t>(donor) * dim,
              base.flat().data(), dim, n, dists.data());
      float worst = -1.0f;
      uint32_t worst_row = 0;
      for (size_t i = 0; i < n; ++i) {
        if (assign[i] != donor) continue;
        if (dists[i] > worst) {  // strict >: lowest index wins ties
          worst = dists[i];
          worst_row = static_cast<uint32_t>(i);
        }
      }
      const auto v = base[worst_row];
      std::copy(v.begin(), v.end(),
                centroids.begin() + static_cast<size_t>(c) * dim);
      assign[worst_row] = c;
      counts[c] = 1;
      --counts[donor];
    }
  }

  // Medoid snap: nearest base row per centroid, de-duplicated. The base set
  // is contiguous, so each centroid's scan is one batched-kernel call.
  //
  // Parallel form: each centroid's UNCONSTRAINED argmin (no taken mask) is
  // computed concurrently, then conflicts are resolved sequentially in
  // centroid order — a centroid whose global argmin is already taken rescans
  // under the mask. Proof of equivalence to the old sequential loop: the
  // strict-< scan picks the lowest-index minimum; if that row is untaken it
  // is also the lowest-index minimum over untaken rows (the old answer), and
  // if taken, the masked rescan IS the old scan.
  std::vector<uint32_t> snap_row(r, 0);
  const auto snap_centroids = [&](size_t begin, size_t end, float* row_dists) {
    for (size_t c = begin; c < end; ++c) {
      l2_rows(centroids.data() + c * dim, base.flat().data(), dim, n, row_dists);
      float best = std::numeric_limits<float>::max();
      uint32_t best_row = 0;
      for (size_t i = 0; i < n; ++i) {
        if (row_dists[i] < best) {
          best = row_dists[i];
          best_row = static_cast<uint32_t>(i);
        }
      }
      snap_row[c] = best_row;
    }
  };
  if (parallel) {
    // Grain 1: each centroid scan is already a large batched-kernel call.
    pool->ParallelForChunked(r, 1, [&](size_t begin, size_t end) {
      std::vector<float> local(n);
      snap_centroids(begin, end, local.data());
    });
  } else {
    snap_centroids(0, r, dists.data());
  }

  std::vector<uint32_t> reps;
  std::vector<uint8_t> taken(n, 0);
  for (uint32_t c = 0; c < r; ++c) {
    uint32_t row = snap_row[c];
    if (taken[row]) {
      // Conflict: rescan this centroid under the taken mask (rare).
      l2_rows(centroids.data() + static_cast<size_t>(c) * dim,
              base.flat().data(), dim, n, dists.data());
      float best = std::numeric_limits<float>::max();
      bool found = false;
      for (size_t i = 0; i < n; ++i) {
        if (taken[i]) continue;
        if (dists[i] < best) {
          best = dists[i];
          row = static_cast<uint32_t>(i);
          found = true;
        }
      }
      if (!found) continue;
    }
    taken[row] = 1;
    reps.push_back(row);
  }
  std::sort(reps.begin(), reps.end());
  return reps;
}

HnswOptions MetaGraphOptions(const MetaHnswOptions& options) {
  HnswOptions h;
  h.M = options.m;
  h.ef_construction = options.ef_construction;
  h.metric = options.metric;
  h.seed = options.seed;
  h.max_level = 2;  // paper §3.1: a three-layer representative HNSW
  return h;
}

}  // namespace

Result<MetaHnsw> MetaHnsw::Build(const VectorSet& base, const MetaHnswOptions& options) {
  if (base.empty()) return Status::InvalidArgument("meta-HNSW: empty base set");
  const uint32_t r = static_cast<uint32_t>(
      std::min<size_t>(options.num_representatives, base.size()));
  if (r == 0) return Status::InvalidArgument("meta-HNSW: zero representatives");

  std::vector<uint32_t> rep_ids;
  if (options.selection == RepresentativeSelection::kKmeans) {
    std::unique_ptr<ThreadPool> pool;
    if (options.build_threads > 1) {
      pool = std::make_unique<ThreadPool>(options.build_threads);
    }
    rep_ids = KmeansRepresentatives(base, r, options.kmeans_iterations,
                                    options.seed, pool.get());
  } else {
    rep_ids = SampleIndices(base.size(), r, options.seed);
  }

  HnswIndex index(base.dim(), MetaGraphOptions(options));
  for (uint32_t id : rep_ids) index.Add(base[id]);
  DHNSW_RETURN_IF_ERROR(index.Validate());
  return MetaHnsw(std::move(index), std::move(rep_ids), options.ef_route);
}

Result<MetaHnsw> MetaHnsw::FromBlob(std::span<const uint8_t> blob) {
  HnswOptions options_template;  // M/metric come from the blob header
  DHNSW_ASSIGN_OR_RETURN(Cluster cluster, DecodeCluster(blob, options_template));
  if (cluster.partition_id != kMetaPartitionId) {
    return Status::Corruption("blob is not a meta-HNSW");
  }
  DHNSW_ASSIGN_OR_RETURN(std::optional<ProductQuantizer> codebook,
                         DecodeClusterCodebook(blob));
  // ef_route is a local search knob, not graph state; start from the default.
  MetaHnsw meta(std::move(cluster.index), std::move(cluster.global_ids),
                MetaHnswOptions{}.ef_route);
  if (codebook) meta.set_quantizer(*std::move(codebook));
  return meta;
}

std::vector<uint8_t> MetaHnsw::ToBlob() const {
  // Cheap structural copy through the generic codec: build a Cluster view.
  // (Encode only reads through const accessors, but Cluster owns its parts,
  // so serialize via a temporary raw rebuild.)
  std::vector<std::vector<std::vector<uint32_t>>> links(index_.size());
  std::vector<uint32_t> levels(index_.size());
  for (uint32_t id = 0; id < index_.size(); ++id) {
    levels[id] = index_.level(id);
    links[id].resize(levels[id] + 1);
    for (uint32_t layer = 0; layer <= levels[id]; ++layer) {
      const auto nbs = index_.neighbors(id, layer);
      links[id][layer].assign(nbs.begin(), nbs.end());
    }
  }
  auto copy = HnswIndex::FromRaw(
      index_.dim(), index_.options(),
      std::vector<float>(index_.vectors().begin(), index_.vectors().end()),
      std::move(levels), std::move(links), index_.entry_point());
  Cluster view(kMetaPartitionId, std::move(copy).value(), rep_global_ids_);
  ClusterPqExtensions ext;
  if (quantizer_) ext.codebook = &*quantizer_;
  return EncodeCluster(view, ext, nullptr);
}

uint32_t MetaHnsw::RouteOne(std::span<const float> v) const {
  const std::vector<Scored> top = index_.Search(v, 1, ef_route_);
  return top.empty() ? 0 : top.front().id;
}

std::vector<uint32_t> MetaHnsw::RouteMany(std::span<const float> v, uint32_t b) const {
  const std::vector<Scored> top = RouteManyScored(v, b);
  std::vector<uint32_t> out;
  out.reserve(top.size());
  for (const Scored& s : top) out.push_back(s.id);
  return out;
}

std::vector<Scored> MetaHnsw::RouteManyScored(std::span<const float> v, uint32_t b) const {
  const uint32_t ef = std::max(ef_route_, b);
  return index_.Search(v, b, ef);
}

}  // namespace dhnsw
