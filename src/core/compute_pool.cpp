#include "core/compute_pool.h"

#include <algorithm>
#include <cassert>
#include <string>

#include "common/timer.h"
#include "telemetry/metrics.h"

namespace dhnsw {

namespace {

/// Tenants beyond this many get stats but no dedicated registry counter
/// (instrument names are per-tenant and the registry lives process-wide).
constexpr uint32_t kMaxTenantInstruments = 16;

}  // namespace

ComputePool::ComputePool(std::vector<ComputeNode*> nodes, ComputePoolOptions options)
    : options_(options) {
  assert(!nodes.empty());
  options_.num_tenants = std::max<uint32_t>(1, options_.num_tenants);
  options_.admission.node_queue_capacity =
      std::max<size_t>(1, options_.admission.node_queue_capacity);

  telemetry::MetricRegistry& reg = telemetry::DefaultRegistry();
  ops_total_ = reg.GetCounter("dhnsw_pool_ops_total");
  admitted_total_ = reg.GetCounter("dhnsw_pool_admitted_total");
  dropped_total_ = reg.GetCounter("dhnsw_pool_dropped_total");
  dropped_queue_full_total_ = reg.GetCounter("dhnsw_pool_dropped_queue_full_total");
  dropped_tenant_limit_total_ = reg.GetCounter("dhnsw_pool_dropped_tenant_limit_total");
  failures_total_ = reg.GetCounter("dhnsw_pool_op_failures_total");
  latency_us_hist_ = reg.GetHistogram("dhnsw_pool_op_latency_us");
  nodes_gauge_ = reg.GetGauge("dhnsw_pool_nodes");
  nodes_gauge_->Set(static_cast<int64_t>(nodes.size()));
  for (uint32_t t = 0; t < std::min(options_.num_tenants, kMaxTenantInstruments); ++t) {
    tenant_drop_counters_.push_back(reg.GetCounter(
        "dhnsw_pool_tenant" + std::to_string(t) + "_drops_total"));
  }

  assigned_.assign(nodes.size(), 0);
  tenant_inflight_ = std::make_unique<std::atomic<int64_t>[]>(options_.num_tenants);
  for (uint32_t t = 0; t < options_.num_tenants; ++t) tenant_inflight_[t].store(0);

  lanes_.reserve(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    auto lane = std::make_unique<Lane>();
    lane->node = nodes[i];
    lane->depth_gauge = reg.GetGauge(
        "dhnsw_pool_node" + std::to_string(i) + "_queue_depth");
    lane->ops_counter = reg.GetCounter(
        "dhnsw_pool_node" + std::to_string(i) + "_ops_total");
    lane->depth_gauge->Set(0);
    lanes_.push_back(std::move(lane));
  }
  if (options_.trace_capacity > 0) EnableTracing(options_.trace_capacity);
  for (auto& lane : lanes_) {
    lane->thread = std::thread([this, lane = lane.get()] { WorkerLoop(lane); });
  }
}

ComputePool::~ComputePool() {
  for (auto& lane : lanes_) {
    {
      std::lock_guard<std::mutex> lock(lane->mutex);
      lane->stop = true;
    }
    lane->cv_nonempty.notify_all();
    lane->cv_room.notify_all();
  }
  for (auto& lane : lanes_) {
    if (lane->thread.joinable()) lane->thread.join();
  }
}

void ComputePool::EnableTracing(size_t capacity) {
  dispatch_trace_.Reserve(capacity);
  for (auto& lane : lanes_) lane->trace.Reserve(capacity);
}

void ComputePool::ClearTraces() {
  dispatch_trace_.Clear();
  for (auto& lane : lanes_) lane->trace.Clear();
}

uint32_t ComputePool::PickNode(uint32_t /*tenant*/) {
  switch (options_.dispatch) {
    case DispatchPolicy::kRoundRobin:
      return round_robin_next_++ % static_cast<uint32_t>(lanes_.size());
    case DispatchPolicy::kLeastLoaded: {
      uint32_t best = 0;
      size_t best_depth = lanes_[0]->depth.load(std::memory_order_relaxed);
      for (uint32_t i = 1; i < lanes_.size(); ++i) {
        const size_t d = lanes_[i]->depth.load(std::memory_order_relaxed);
        if (d < best_depth) {
          best = i;
          best_depth = d;
        }
      }
      return best;
    }
    case DispatchPolicy::kLeastAssigned:
      break;
  }
  uint32_t best = 0;
  for (uint32_t i = 1; i < lanes_.size(); ++i) {
    if (assigned_[i] < assigned_[best]) best = i;
  }
  return best;
}

void ComputePool::ExecuteOp(Lane* lane, const QueuedOp& item) {
  const WorkloadOp& op = *item.op;
  const auto start = std::chrono::steady_clock::now();
  const uint64_t queue_wall_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(start - item.admitted)
          .count());

  telemetry::TraceContext ctx{&lane->trace, nullptr, run_seq_};
  Status status;
  std::vector<Scored> results;
  {
    telemetry::TraceScope span(ctx, "pool.op", static_cast<uint32_t>(item.index));
    span.set_args(static_cast<uint64_t>(op.kind), op.tenant);
    if (op.kind == WorkloadOp::Kind::kSearch) {
      VectorSet one(lane->node->dim());
      one.Append(op.vector);
      auto run = lane->node->SearchBatch(one, 0, 1, options_.k, options_.ef_search);
      if (!run.ok()) {
        status = run.status();
      } else {
        status = run.value().statuses.empty() ? Status::Ok() : run.value().statuses[0];
        results = std::move(run.value().results[0]);
      }
      ++lane->searches;
    } else {
      auto run = lane->node->Insert(op.vector, op.global_id);
      status = run.status();
      ++lane->inserts;
    }
  }

  const uint64_t total_wall_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - item.admitted)
          .count());

  ++lane->ops;
  if (status.ok()) {
    ++lane->ok;
  } else {
    ++lane->failed;
    failures_total_->Add(1);
  }
  const double sojourn_us = static_cast<double>(total_wall_ns) / 1e3;
  lane->latency_us.Add(sojourn_us);
  if (op.tenant < lane->tenant_latency_us.size()) {
    lane->tenant_latency_us[op.tenant].Add(sojourn_us);
  }
  lane->ops_counter->Add(1);
  latency_us_hist_->Record(static_cast<uint64_t>(sojourn_us));

  if (run_outcomes_ != nullptr) {
    OpOutcome& out = (*run_outcomes_)[item.index];
    out.status = std::move(status);
    out.results = std::move(results);
    out.node = lane->index;
    out.queue_wall_ns = queue_wall_ns;
    out.total_wall_ns = total_wall_ns;
  }
  if (op.tenant < options_.num_tenants) {
    tenant_inflight_[op.tenant].fetch_sub(1, std::memory_order_relaxed);
  }
}

void ComputePool::WorkerLoop(Lane* lane) {
  for (;;) {
    QueuedOp item;
    {
      std::unique_lock<std::mutex> lock(lane->mutex);
      lane->cv_nonempty.wait(lock, [lane] { return lane->stop || !lane->queue.empty(); });
      if (lane->queue.empty()) return;  // stop requested, queue drained
      item = lane->queue.front();
      lane->queue.pop_front();
      lane->depth.store(lane->queue.size(), std::memory_order_relaxed);
      lane->depth_gauge->Set(static_cast<int64_t>(lane->queue.size()));
    }
    lane->cv_room.notify_one();

    ExecuteOp(lane, item);

    {
      std::lock_guard<std::mutex> lock(done_mutex_);
      ++done_count_;
    }
    done_cv_.notify_all();
  }
}

PoolRunStats ComputePool::Run(std::span<const WorkloadOp> ops, PoolRunMode mode,
                              std::vector<OpOutcome>* outcomes) {
  PoolRunStats stats;
  stats.submitted = ops.size();
  stats.per_tenant_latency_us.resize(options_.num_tenants);
  stats.per_tenant_drops.assign(options_.num_tenants, 0);
  stats.per_node_ops.assign(lanes_.size(), 0);

  {
    std::lock_guard<std::mutex> lock(done_mutex_);
    assert(!run_active_ && "one Run at a time");
    run_active_ = true;
    done_count_ = 0;
  }
  ++run_seq_;
  std::fill(assigned_.begin(), assigned_.end(), 0);
  round_robin_next_ = 0;
  for (uint32_t t = 0; t < options_.num_tenants; ++t) tenant_inflight_[t].store(0);
  for (uint32_t i = 0; i < lanes_.size(); ++i) {
    Lane* lane = lanes_[i].get();
    lane->index = i;
    lane->ops = lane->ok = lane->failed = lane->searches = lane->inserts = 0;
    lane->latency_us.Reset();
    lane->tenant_latency_us.assign(options_.num_tenants, LatencyRecorder{});
  }
  if (outcomes != nullptr) outcomes->assign(ops.size(), OpOutcome{});
  run_ops_ = ops;
  run_outcomes_ = outcomes;

  telemetry::TraceContext dispatch_ctx{&dispatch_trace_, nullptr, run_seq_};
  const bool paced = mode == PoolRunMode::kPaced;
  const size_t capacity = options_.admission.node_queue_capacity;
  const size_t tenant_limit = options_.admission.tenant_inflight_limit;

  WallTimer wall;
  const auto start_tp = std::chrono::steady_clock::now();
  size_t admitted = 0;

  for (size_t i = 0; i < ops.size(); ++i) {
    const WorkloadOp& op = ops[i];
    if (paced) {
      const auto due = start_tp + std::chrono::nanoseconds(op.arrival_ns);
      if (due > std::chrono::steady_clock::now()) std::this_thread::sleep_until(due);
    }
    ops_total_->Add(1);

    const auto drop = [&](Status st, uint64_t* bucket, uint64_t reason) {
      ++*bucket;
      if (op.tenant < stats.per_tenant_drops.size()) ++stats.per_tenant_drops[op.tenant];
      if (op.tenant < tenant_drop_counters_.size()) tenant_drop_counters_[op.tenant]->Add(1);
      dropped_total_->Add(1);
      dispatch_ctx.Event("pool.drop", static_cast<uint32_t>(i), reason, op.tenant);
      if (outcomes != nullptr) {
        OpOutcome& out = (*outcomes)[i];
        out.status = std::move(st);
        out.dropped = true;
      }
    };

    if (op.tenant >= options_.num_tenants) {
      drop(Status::InvalidArgument("pool: tenant out of range"),
           &stats.dropped_invalid, 0);
      continue;
    }
    if (paced && tenant_limit > 0 &&
        tenant_inflight_[op.tenant].load(std::memory_order_relaxed) >=
            static_cast<int64_t>(tenant_limit)) {
      drop(Status::Capacity("pool: tenant inflight limit"),
           &stats.dropped_tenant_limit, 1);
      dropped_tenant_limit_total_->Add(1);
      continue;
    }

    const uint32_t node = PickNode(op.tenant);
    Lane* lane = lanes_[node].get();
    {
      std::unique_lock<std::mutex> lock(lane->mutex);
      if (paced) {
        if (lane->queue.size() >= capacity) {
          lock.unlock();
          drop(Status::Capacity("pool: node queue full"),
               &stats.dropped_queue_full, 2);
          dropped_queue_full_total_->Add(1);
          continue;
        }
      } else {
        lane->cv_room.wait(lock, [lane, capacity] {
          return lane->stop || lane->queue.size() < capacity;
        });
      }
      lane->queue.push_back(QueuedOp{&op, i, std::chrono::steady_clock::now()});
      lane->depth.store(lane->queue.size(), std::memory_order_relaxed);
      lane->depth_gauge->Set(static_cast<int64_t>(lane->queue.size()));
    }
    lane->cv_nonempty.notify_one();

    ++admitted;
    ++assigned_[node];
    tenant_inflight_[op.tenant].fetch_add(1, std::memory_order_relaxed);
    admitted_total_->Add(1);
    dispatch_ctx.Event("pool.dispatch", static_cast<uint32_t>(i), node, op.tenant);
  }

  {
    std::unique_lock<std::mutex> lock(done_mutex_);
    done_cv_.wait(lock, [this, admitted] { return done_count_ == admitted; });
    run_active_ = false;
  }
  stats.wall_seconds = static_cast<double>(wall.elapsed_ns()) / 1e9;

  stats.admitted = admitted;
  for (uint32_t i = 0; i < lanes_.size(); ++i) {
    Lane* lane = lanes_[i].get();
    stats.completed_ok += lane->ok;
    stats.failed += lane->failed;
    stats.searches += lane->searches;
    stats.inserts += lane->inserts;
    stats.per_node_ops[i] = lane->ops;
    stats.latency_us.Merge(lane->latency_us);
    for (uint32_t t = 0; t < options_.num_tenants; ++t) {
      stats.per_tenant_latency_us[t].Merge(lane->tenant_latency_us[t]);
    }
  }
  const uint64_t schedule_span_ns = ops.empty() ? 0 : ops.back().arrival_ns;
  stats.offered_qps =
      paced && schedule_span_ns > 0
          ? static_cast<double>(stats.submitted) * 1e9 / static_cast<double>(schedule_span_ns)
          : (stats.wall_seconds > 0.0
                 ? static_cast<double>(stats.submitted) / stats.wall_seconds
                 : 0.0);
  stats.achieved_qps =
      stats.wall_seconds > 0.0
          ? static_cast<double>(stats.completed_ok + stats.failed) / stats.wall_seconds
          : 0.0;

  run_ops_ = {};
  run_outcomes_ = nullptr;
  return stats;
}

Result<RouterResult> ComputePool::SearchSharded(const VectorSet& queries, size_t k,
                                                uint32_t ef_search,
                                                const RouterOptions& router_options) {
  std::vector<ComputeNode*> nodes;
  std::vector<uint64_t> outstanding;
  nodes.reserve(lanes_.size());
  outstanding.reserve(lanes_.size());
  for (auto& lane : lanes_) {
    nodes.push_back(lane->node);
    outstanding.push_back(lane->depth.load(std::memory_order_relaxed));
  }
  ClientRouter router(std::move(nodes), RouterExecution::kConcurrent);
  return router.SearchBatchWeighted(queries, k, ef_search, outstanding, router_options);
}

}  // namespace dhnsw
