// Overflow compaction — the maintenance path the paper leaves as future work
// ("a production system would trigger cluster compaction when the shared
// overflow fills").
//
// A compute-side job reads every cluster plus its overflow through the same
// one-sided verbs queries use, folds live inserted vectors into the sub-HNSW
// graphs, drops tombstoned ids, re-serializes, and provisions a FRESH region
// with empty overflow areas (layout_version bumped). Compute instances then
// Reconnect() to the new handle — the moral equivalent of the connection
// manager pushing a new memory-region lease.
//
// Compaction never mutates the old region, so queries against it remain
// correct until the switch; the old region is simply abandoned (a real
// deployment would deregister it).
#pragma once

#include <cstdint>

#include "common/status.h"
#include "core/memory_node.h"
#include "rdma/fabric.h"

namespace dhnsw {

struct CompactionStats {
  uint32_t clusters = 0;
  uint32_t live_records_folded = 0;   ///< inserts now first-class graph nodes
  uint32_t tombstones_applied = 0;    ///< base/overflow vectors removed
  uint64_t bytes_read = 0;            ///< one-sided traffic of the job
  uint64_t old_region_bytes = 0;
  uint64_t new_region_bytes = 0;
};

class Compactor {
 public:
  /// `sub_hnsw_template` supplies metric/ef_construction for re-inserting
  /// folded vectors (M comes from each blob).
  Compactor(rdma::Fabric* fabric, HnswOptions sub_hnsw_template)
      : fabric_(fabric), sub_hnsw_template_(sub_hnsw_template) {}

  /// Reads the region at `old_handle`, rebuilds all clusters, and provisions
  /// a new memory node on the same fabric. On success `*new_node` owns the
  /// new region and `stats` describes the work done.
  Result<CompactionStats> Run(const MemoryNodeHandle& old_handle,
                              std::unique_ptr<MemoryNode>* new_node,
                              const LayoutConfig& layout);

 private:
  rdma::Fabric* fabric_;
  HnswOptions sub_hnsw_template_;
};

}  // namespace dhnsw
