// Build-time partitioning: classify every base vector with the meta-HNSW and
// construct one sub-HNSW per partition (paper §3.1: "All vectors assigned to
// the same partition will be used to construct their respective sub-HNSW").
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/meta_hnsw.h"
#include "dataset/dataset.h"
#include "serialize/cluster_blob.h"

namespace dhnsw {

struct PartitionerOptions {
  HnswOptions sub_hnsw;        ///< build parameters for every sub-HNSW
  size_t num_threads = 1;      ///< parallel classification + sub-HNSW construction
  /// Force reproducible graphs: restrict parallelism to the order-free stages
  /// (classification and the partition-level fan-out, which are deterministic
  /// by construction) and keep every individual sub-HNSW insertion
  /// sequential. When false and the partition count cannot saturate
  /// `num_threads`, the partitioner switches to batch-parallel insertion
  /// WITHIN each sub-HNSW (HnswIndex::AddBatchParallel), which builds faster
  /// but makes link structure dependent on thread interleaving.
  bool deterministic = false;
};

/// Result of partitioning: the clusters, aligned with meta partition ids
/// (clusters[i].partition_id == i), plus the assignment for inspection.
struct Partitioning {
  std::vector<Cluster> clusters;
  std::vector<uint32_t> assignment;  ///< base id -> partition id
};

/// Assigns every vector of `base` to its nearest representative and builds
/// the per-partition sub-HNSW graphs. Every partition contains at least its
/// own representative.
Result<Partitioning> PartitionDataset(const VectorSet& base, const MetaHnsw& meta,
                                      const PartitionerOptions& options);

}  // namespace dhnsw
