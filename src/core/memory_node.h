// The memory instance: registers one contiguous region on the fabric and
// populates it with the global metadata block, the serialized meta-HNSW, and
// all sub-HNSW cluster blobs per the RDMA-friendly layout (paper §3.2).
//
// Matching the paper's assumption that memory instances have "extremely weak
// computational power, handling lightweight memory registration tasks", this
// class does no search work: after Provision() it is entirely passive, and
// compute instances interact with the region through one-sided verbs only.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/memory_layout.h"
#include "core/meta_hnsw.h"
#include "rdma/fabric.h"
#include "serialize/cluster_blob.h"

namespace dhnsw {

/// The out-of-band bootstrap info a compute instance needs to connect —
/// exactly what a real connection manager would exchange over TCP before
/// switching to one-sided verbs. `node`/`rkey` name the PRIMARY memory
/// instance (header, metadata table, meta-HNSW blob); `shard_rkeys[slot]`
/// names the region holding the cluster groups of that slot
/// (shard_rkeys[0] == rkey for single-instance deployments and pools alike).
struct MemoryNodeHandle {
  rdma::NodeId node = 0;
  rdma::RKey rkey = 0;
  uint64_t region_size = 0;
  std::vector<rdma::RKey> shard_rkeys;
  std::vector<rdma::NodeId> shard_nodes;

  rdma::RKey rkey_for_slot(uint32_t slot) const {
    return shard_rkeys.empty() ? rkey : shard_rkeys[slot];
  }
  size_t num_shards() const noexcept {
    return shard_rkeys.empty() ? 1 : shard_rkeys.size();
  }
};

class MemoryNode {
 public:
  /// Creates the node on the fabric (no memory yet).
  explicit MemoryNode(rdma::Fabric* fabric, std::string name = "memory-node");

  /// Lays out, registers, and populates the region(s) from the built
  /// clusters and meta index. Population uses host (memory-node CPU) stores
  /// — the paper's setup phase; steady-state access is all one-sided.
  /// `layout_version` stamps the region header (compaction bumps it).
  /// With `num_shards` > 1 this provisions a memory POOL: cluster groups are
  /// spread round-robin over that many memory instances, while the header,
  /// table, and meta-HNSW stay on the primary (paper Fig. 2's memory pool).
  /// `encode_threads` > 1 parallelizes the per-cluster work (size analysis,
  /// PQ encode, serialization) over that many workers; the layout is planned
  /// from exact predicted sizes and each blob is encoded straight into its
  /// final region offset, so peak memory is ~encode_threads blobs instead of
  /// all of them, and the provisioned bytes are identical for every thread
  /// count.
  Status Provision(const MetaHnsw& meta, const std::vector<Cluster>& clusters,
                   const LayoutConfig& config, uint64_t layout_version = 0,
                   uint32_t num_shards = 1, size_t encode_threads = 1);

  const MemoryNodeHandle& handle() const noexcept { return handle_; }
  const LayoutPlan& plan() const noexcept { return plan_; }
  bool provisioned() const noexcept { return handle_.rkey != 0; }

  /// Host-side view of a cluster's current metadata entry (tests/inspection;
  /// a real memory node's CPU could serve this, but compute nodes read it
  /// via RDMA instead).
  Result<ClusterMeta> InspectClusterMeta(uint32_t cluster) const;

 private:
  rdma::Fabric* fabric_;
  rdma::NodeId node_;
  MemoryNodeHandle handle_;
  LayoutPlan plan_;
};

}  // namespace dhnsw
