#include "core/partitioner.h"

#include <cassert>
#include <memory>
#include <optional>
#include <string>

#include "common/thread_pool.h"

namespace dhnsw {

Result<Partitioning> PartitionDataset(const VectorSet& base, const MetaHnsw& meta,
                                      const PartitionerOptions& options) {
  if (base.empty()) return Status::InvalidArgument("partitioner: empty base set");
  if (base.dim() != meta.dim()) {
    return Status::InvalidArgument("partitioner: dim mismatch with meta-HNSW");
  }
  const uint32_t num_parts = meta.num_partitions();

  Partitioning out;
  out.assignment.resize(base.size());

  // One pool serves every phase (the old per-phase pools paid thread spawn +
  // join twice per build).
  std::unique_ptr<ThreadPool> pool;
  if (options.num_threads > 1) pool = std::make_unique<ThreadPool>(options.num_threads);

  // A throwing build task (OOM, kernel assertion) used to vanish inside the
  // pool — ParallelFor now rethrows after draining, and we surface it as a
  // Status instead of unwinding through the caller.
  try {
    // Phase 1: classify. Each base vector goes to its nearest representative.
    // (Representatives classify to themselves: distance 0 to their own node.)
    // Per-row writes — deterministic regardless of scheduling.
    {
      auto classify = [&](size_t i) { out.assignment[i] = meta.RouteOne(base[i]); };
      if (pool) {
        pool->ParallelFor(base.size(), classify);
      } else {
        for (size_t i = 0; i < base.size(); ++i) classify(i);
      }
    }

    // Phase 2: bucket members per partition (partition order == meta id order).
    std::vector<std::vector<uint32_t>> members(num_parts);
    for (size_t i = 0; i < base.size(); ++i) {
      assert(out.assignment[i] < num_parts);
      members[out.assignment[i]].push_back(static_cast<uint32_t>(i));
    }

    // Phase 3: build one sub-HNSW per partition. Two parallel schedules:
    //  - ACROSS partitions (default): each pool worker builds whole
    //    sub-HNSWs sequentially. Order-free and deterministic — every
    //    partition's graph depends only on its own seed and member order.
    //  - WITHIN partitions: when there are too few partitions to keep the
    //    pool busy (and determinism is not requested), the partition loop
    //    runs sequentially on this thread and each sub-HNSW is built with
    //    batch-parallel insertion on the pool. ParallelFor must never be
    //    entered from inside a pool task, so exactly one of the two
    //    schedules drives the pool.
    const bool intra_graph =
        pool != nullptr && !options.deterministic && num_parts < options.num_threads;
    std::vector<std::optional<Cluster>> built(num_parts);
    std::vector<float> rows;  // intra-graph row staging, reused per partition
    auto build_one = [&](size_t p) {
      HnswOptions sub_options = options.sub_hnsw;
      // Decorrelate level assignment across partitions while staying
      // deterministic for a fixed top-level seed.
      sub_options.seed = options.sub_hnsw.seed * 0x9e3779b97f4a7c15ULL + p;
      HnswIndex index(base.dim(), sub_options);
      if (intra_graph) {
        rows.clear();
        rows.reserve(members[p].size() * base.dim());
        for (uint32_t gid : members[p]) {
          const auto v = base[gid];
          rows.insert(rows.end(), v.begin(), v.end());
        }
        index.AddBatchParallel(rows, members[p].size(), pool.get());
      } else {
        for (uint32_t gid : members[p]) index.Add(base[gid]);
      }
      built[p].emplace(static_cast<uint32_t>(p), std::move(index), std::move(members[p]));
    };
    if (intra_graph || pool == nullptr) {
      for (uint32_t p = 0; p < num_parts; ++p) build_one(p);
    } else {
      pool->ParallelFor(num_parts, build_one);
    }

    out.clusters.reserve(num_parts);
    for (uint32_t p = 0; p < num_parts; ++p) {
      out.clusters.push_back(std::move(*built[p]));
    }
  } catch (const std::exception& e) {
    return Status::Internal(std::string("partition build failed: ") + e.what());
  }
  return out;
}

}  // namespace dhnsw
